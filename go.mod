module greengpu

go 1.22
