package greengpu

// This file is the benchmark harness for the paper's evaluation: one
// testing.B benchmark per table and figure (DESIGN.md §4). Each benchmark
// regenerates its experiment end to end on the simulated testbed and
// reports, alongside ns/op, the headline metric the paper's figure shows
// (savings in percent, convergence points, etc.) as custom benchmark
// metrics. Run with:
//
//	go test -bench=. -benchmem
//
// Shape validation (who wins, where the knees and optima fall) lives in
// internal/experiments tests; the benchmarks here are the regeneration
// entry points and record the measured values for EXPERIMENTS.md.

import (
	"testing"

	"greengpu/internal/experiments"
)

// benchEnv is shared: experiments are deterministic and every run uses a
// fresh machine internally.
var benchEnv = func() *experiments.Env {
	e, err := experiments.NewEnv()
	if err != nil {
		panic(err)
	}
	return e
}()

// BenchmarkTable2 regenerates Table II (workload characterization at peak
// clocks).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchEnv.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(len(res.Rows)), "workloads")
		}
	}
}

// BenchmarkFig1 regenerates Fig. 1: normalized execution time and relative
// GPU energy across both frequency-domain sweeps for nbody and
// streamcluster.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchEnv.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			// The memory-sweep knee metric: nbody's slowdown at the
			// lowest memory clock (paper: negligible).
			p := res.Select("nbody", experiments.DomainMemory)
			b.ReportMetric((p[0].NormTime-1)*100, "nbody-mem-slowdown-%")
			b.ReportMetric((1-p[0].RelEnergy)*100, "nbody-mem-saving-%")
		}
	}
}

// BenchmarkFig2 regenerates Fig. 2: the kmeans static-division energy
// sweep with its U-shape and small-CPU-share optimum.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchEnv.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.OptimalShare*100, "optimal-cpu-share-%")
		}
	}
}

// BenchmarkFig5 regenerates Fig. 5: the streamcluster DVFS trace and its
// power/time comparison against best-performance.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchEnv.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.AvgPowerBase.Watts()-res.AvgPowerScaled.Watts(), "avg-power-drop-W")
			b.ReportMetric(res.Samples[len(res.Samples)-1].MemMHz, "converged-mem-MHz")
		}
	}
}

// BenchmarkFig6 regenerates Fig. 6: per-workload frequency-scaling savings
// (a: GPU energy, b: dynamic energy and execution delta, c: emulated
// CPU+GPU throttling).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchEnv.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			s := res.Summary
			b.ReportMetric(s.AvgGPUSaving*100, "avg-gpu-saving-%")
			b.ReportMetric(s.MaxGPUSaving*100, "max-gpu-saving-%")
			b.ReportMetric(s.AvgDynamicSaving*100, "avg-dynamic-saving-%")
			b.ReportMetric(s.AvgExecDelta*100, "avg-exec-delta-%")
			b.ReportMetric(s.AvgSystemSaving*100, "avg-cpu+gpu-saving-%")
		}
	}
}

// BenchmarkFig7Kmeans regenerates Fig. 7a: the kmeans division trace
// (paper: 30% start, converges to 20/80 after ~4 iterations).
func BenchmarkFig7Kmeans(b *testing.B) { benchFig7(b, "kmeans") }

// BenchmarkFig7Hotspot regenerates Fig. 7b: the hotspot division trace
// (paper: converges to 50/50).
func BenchmarkFig7Hotspot(b *testing.B) { benchFig7(b, "hotspot") }

func benchFig7(b *testing.B, name string) {
	for i := 0; i < b.N; i++ {
		res, err := benchEnv.Fig7(name)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.ConvergedRatio*100, "converged-cpu-share-%")
			b.ReportMetric(float64(res.ConvergedAfter), "converged-after-iters")
		}
	}
}

// BenchmarkFig8Hotspot regenerates Fig. 8a: hotspot under GreenGPU vs
// division-only vs frequency-scaling-only.
func BenchmarkFig8Hotspot(b *testing.B) { benchFig8(b, "hotspot") }

// BenchmarkFig8Kmeans regenerates Fig. 8b for kmeans.
func BenchmarkFig8Kmeans(b *testing.B) { benchFig8(b, "kmeans") }

func benchFig8(b *testing.B, name string) {
	for i := 0; i < b.N; i++ {
		res, err := benchEnv.Fig8(name)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.SavingVsDivision*100, "saving-vs-division-%")
			b.ReportMetric(res.SavingVsFreqScaling*100, "saving-vs-freqscaling-%")
			b.ReportMetric(res.SavingVsBaseline*100, "saving-vs-default-%")
		}
	}
}

// BenchmarkStaticSweep regenerates the §VII-B optimality study: dynamic
// division scored against the best static division on a 5% grid.
func BenchmarkStaticSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchEnv.StaticSweep("kmeans", "hotspot")
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, row := range res.Rows {
				if row.Workload == "hotspot" {
					b.ReportMetric(row.SavingShare*100, "hotspot-captured-saving-%")
					b.ReportMetric(row.ExecDeltaVsOptimal*100, "hotspot-exec-delta-%")
				}
			}
		}
	}
}

// BenchmarkAblations regenerates the DESIGN.md §6 ablation suite (step
// size, safeguard, WMA constants, tier decoupling, sensor noise, γ).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := benchEnv.AblationTables("kmeans")
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(len(tables)), "studies")
		}
	}
}

// BenchmarkHolisticRun measures the cost of one full holistic framework
// run (20 iterations of kmeans) on the discrete-event testbed — the
// simulator's end-to-end throughput.
func BenchmarkHolisticRun(b *testing.B) {
	profiles := benchEnv.Profiles
	var kmeans *WorkloadProfile
	for _, p := range profiles {
		if p.Name == "kmeans" {
			kmeans = p
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(NewTestbed(), kmeans, DefaultConfig(Holistic))
		if err != nil {
			b.Fatal(err)
		}
		if res.Energy <= 0 {
			b.Fatal("no energy accounted")
		}
	}
}
