package greengpu_test

import (
	"fmt"
	"log"

	"greengpu"
)

// ExampleRun demonstrates the README quick start: the holistic framework
// on kmeans, on a fresh simulated testbed. The simulation is
// deterministic, so the converged division ratio is exact.
func ExampleRun() {
	profiles, err := greengpu.Rodinia()
	if err != nil {
		log.Fatal(err)
	}
	kmeans, err := greengpu.Profile(profiles, "kmeans")
	if err != nil {
		log.Fatal(err)
	}
	res, err := greengpu.Run(greengpu.NewTestbed(), kmeans,
		greengpu.DefaultConfig(greengpu.Holistic))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("division converged to %.0f/%.0f (CPU/GPU)\n",
		res.FinalRatio*100, (1-res.FinalRatio)*100)
	fmt.Printf("iterations: %d\n", len(res.Iterations))
	// Output:
	// division converged to 20/80 (CPU/GPU)
	// iterations: 20
}

// ExampleRodinia lists the evaluation workload set.
func ExampleRodinia() {
	profiles, err := greengpu.Rodinia()
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range profiles {
		fmt.Println(p.Name)
	}
	// Output:
	// PF
	// QG
	// bfs
	// hotspot
	// kmeans
	// lud
	// nbody
	// srad_v2
	// streamcluster
}

// ExampleDefaultConfig shows the paper's published tuning constants.
func ExampleDefaultConfig() {
	cfg := greengpu.DefaultConfig(greengpu.Holistic)
	fmt.Printf("DVFS interval: %v\n", cfg.DVFSInterval)
	fmt.Printf("WMA: alpha_c=%.2f alpha_m=%.2f phi=%.2f beta=%.2f\n",
		cfg.GPUScaler.AlphaCore, cfg.GPUScaler.AlphaMem,
		cfg.GPUScaler.Phi, cfg.GPUScaler.Beta)
	fmt.Printf("division: step=%.0f%% initial=%.0f%% safeguard=%v\n",
		cfg.Division.Step*100, cfg.Division.Initial*100, cfg.Division.Safeguard)
	// Output:
	// DVFS interval: 3s
	// WMA: alpha_c=0.15 alpha_m=0.02 phi=0.30 beta=0.20
	// division: step=5% initial=30% safeguard=true
}
