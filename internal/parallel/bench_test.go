package parallel

import (
	"context"
	"fmt"
	"runtime"
	"testing"
)

// spin burns deterministic CPU work, standing in for one simulated
// experiment point.
func spin(n int) float64 {
	x := 1.0
	for i := 0; i < n; i++ {
		x = x*1.0000001 + float64(i%7)
	}
	return x
}

// BenchmarkMapSpeedup measures the worker pool on CPU-bound tasks; the
// jobs=N variants should approach N× the jobs=1 throughput up to the
// machine's core count.
func BenchmarkMapSpeedup(b *testing.B) {
	items := make([]int, 64)
	for i := range items {
		items[i] = 200000
	}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("jobs=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := Map(context.Background(), items, func(_ context.Context, _ int, n int) (float64, error) {
					return spin(n), nil
				}, Workers(workers))
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMapOverhead measures pure scheduling cost with no-op tasks.
func BenchmarkMapOverhead(b *testing.B) {
	items := make([]int, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := Map(context.Background(), items, func(_ context.Context, i int, _ int) (int, error) {
			return i, nil
		}, Workers(8))
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTaskSeed(b *testing.B) {
	var s uint64
	for i := 0; i < b.N; i++ {
		s ^= TaskSeed(42, i)
	}
	_ = s
}
