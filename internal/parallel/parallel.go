// Package parallel is the bounded worker-pool scheduler behind the
// experiment engine: it fans independent experiment points out over a
// fixed number of workers while keeping every observable result — output
// order, error selection, and random streams — identical to a sequential
// run.
//
// The determinism contract has three legs:
//
//   - Map and Grid return results indexed by input position, so the output
//     layout never depends on completion order.
//   - Errors aggregate by input position, not by time: when several tasks
//     fail, the error of the lowest-indexed failing task is returned, and
//     the shared context is cancelled after the first observed failure so
//     in-flight work can stop early. Which tasks were skipped may vary
//     between runs, but the returned error never does.
//   - TaskSeed/TaskRand/Uniform (seed.go) derive independent random
//     streams from (base seed, task index) so no task reads another's
//     stream, regardless of scheduling.
//
// Tasks must not share mutable state; each should build whatever machinery
// it needs (a fresh simulation engine, a private policy instance) from
// plain-value inputs. See docs/MODEL.md for the fresh-machine contract the
// experiments layer relies on.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"greengpu/internal/telemetry"
)

// Package metrics (see docs/OBSERVABILITY.md). No-ops unless telemetry is
// enabled; the worker loop stays allocation-free either way, and the wall
// clock is only read when telemetry is on.
var (
	metricTasks = telemetry.NewCounter("greengpu_parallel_tasks_total",
		"Tasks executed by the worker pool (skipped tasks excluded).")
	metricTaskErrors = telemetry.NewCounter("greengpu_parallel_task_errors_total",
		"Tasks that returned an error.")
	metricSkipped = telemetry.NewCounter("greengpu_parallel_tasks_skipped_total",
		"Tasks skipped because the shared context was already cancelled.")
	metricTaskSeconds = telemetry.NewHistogram("greengpu_parallel_task_seconds",
		"Wall-clock task duration in seconds.",
		telemetry.ExpBuckets(100e-6, 4, 12)) // 100µs .. ~420s
)

// observeTask records one executed task's outcome and duration. start is
// the zero Time when telemetry was off at task start; the duration is then
// skipped rather than fabricated.
func observeTask(start time.Time, err error) {
	if !telemetry.Enabled() {
		return
	}
	metricTasks.Inc()
	if err != nil {
		metricTaskErrors.Inc()
	}
	if !start.IsZero() {
		metricTaskSeconds.Observe(time.Since(start).Seconds())
	}
}

// taskStart reads the wall clock only when telemetry is on, so the disabled
// path never issues a clock syscall.
func taskStart() time.Time {
	if !telemetry.Enabled() {
		return time.Time{}
	}
	return time.Now()
}

// config carries the resolved scheduling options.
type config struct {
	workers    int
	onProgress func(done, total int)
}

// Option customizes a Map or Grid call.
type Option func(*config)

// Workers bounds the number of concurrent tasks. n <= 0 selects one worker
// per available CPU (runtime.GOMAXPROCS); n == 1 runs the tasks inline on
// the calling goroutine, in input order.
func Workers(n int) Option {
	return func(c *config) { c.workers = n }
}

// OnProgress registers a callback invoked after each task finishes (or is
// skipped due to cancellation), with the number of settled tasks and the
// total. Calls are serialized and done is strictly increasing, but the
// tasks they report on may complete in any order.
func OnProgress(fn func(done, total int)) Option {
	return func(c *config) { c.onProgress = fn }
}

func resolve(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	if c.workers <= 0 {
		c.workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Map runs fn over every item on a bounded worker pool and returns the
// results in input order. On failure it returns the error of the
// lowest-indexed failing task; the context passed to fn is cancelled as
// soon as any task fails, and tasks not yet started are skipped. A nil or
// empty item slice returns (nil, ctx.Err()).
func Map[T, R any](ctx context.Context, items []T, fn func(ctx context.Context, index int, item T) (R, error), opts ...Option) ([]R, error) {
	n := len(items)
	if n == 0 {
		return nil, ctx.Err()
	}
	c := resolve(opts)
	if c.workers > n {
		c.workers = n
	}

	results := make([]R, n)
	errs := make([]error, n)

	if c.workers == 1 {
		// Inline sequential path: no goroutines, strict input order.
		for i := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			start := taskStart()
			r, err := fn(ctx, i, items[i])
			observeTask(start, err)
			if err != nil {
				return nil, err
			}
			results[i] = r
			if c.onProgress != nil {
				c.onProgress(i+1, n)
			}
		}
		return results, nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		settled int
	)
	next.Store(-1)
	progress := func() {
		mu.Lock()
		settled++
		done := settled
		mu.Unlock()
		if c.onProgress != nil {
			c.onProgress(done, n)
		}
	}

	for w := 0; w < c.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if cctx.Err() != nil {
					// Skipped: leave errs[i] nil so error selection
					// stays deterministic (only genuine task failures
					// participate).
					metricSkipped.Inc()
					progress()
					continue
				}
				start := taskStart()
				r, err := fn(cctx, i, items[i])
				observeTask(start, err)
				if err != nil {
					errs[i] = err
					cancel()
				} else {
					results[i] = r
				}
				progress()
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Grid runs fn over the cartesian product rows × cols and returns the
// results as a row-major matrix (result[i][j] corresponds to rows[i],
// cols[j]). Scheduling, error aggregation and options behave exactly as in
// Map over the flattened product.
func Grid[A, B, R any](ctx context.Context, rows []A, cols []B, fn func(ctx context.Context, i, j int, row A, col B) (R, error), opts ...Option) ([][]R, error) {
	nr, nc := len(rows), len(cols)
	if nr == 0 || nc == 0 {
		return nil, ctx.Err()
	}
	flat := make([]int, nr*nc)
	for i := range flat {
		flat[i] = i
	}
	out, err := Map(ctx, flat, func(ctx context.Context, k int, _ int) (R, error) {
		i, j := k/nc, k%nc
		return fn(ctx, i, j, rows[i], cols[j])
	}, opts...)
	if err != nil {
		return nil, err
	}
	m := make([][]R, nr)
	for i := 0; i < nr; i++ {
		m[i] = out[i*nc : (i+1)*nc : (i+1)*nc]
	}
	return m, nil
}
