package parallel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedResults(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 7, 100} {
		got, err := Map(context.Background(), items, func(_ context.Context, i, v int) (int, error) {
			return v * v, nil
		}, Workers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), nil, func(_ context.Context, i, v int) (int, error) {
		t.Fatal("fn called on empty input")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Fatalf("empty map: got %v, %v", got, err)
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	// Several tasks fail; the returned error must always be the one from
	// the lowest failing index, not whichever failed first in time.
	items := make([]int, 64)
	for range [20]int{} {
		_, err := Map(context.Background(), items, func(_ context.Context, i, _ int) (int, error) {
			switch i {
			case 5:
				time.Sleep(2 * time.Millisecond) // deliberately the slowest failure
				return 0, errors.New("error at 5")
			case 6, 40:
				return 0, fmt.Errorf("error at %d", i)
			}
			return i, nil
		}, Workers(8))
		if err == nil || err.Error() != "error at 5" {
			t.Fatalf("got %v, want error at 5", err)
		}
	}
}

func TestMapCancelsAfterFailure(t *testing.T) {
	var started atomic.Int64
	items := make([]int, 1000)
	_, err := Map(context.Background(), items, func(ctx context.Context, i, _ int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, errors.New("boom")
		}
		select {
		case <-ctx.Done():
		case <-time.After(50 * time.Millisecond):
		}
		return 0, nil
	}, Workers(4))
	if err == nil {
		t.Fatal("want error")
	}
	if n := started.Load(); n == 1000 {
		t.Error("no task was skipped after the failure")
	}
}

func TestMapParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, []int{1, 2, 3}, func(ctx context.Context, i, v int) (int, error) {
		return v, ctx.Err()
	}, Workers(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// Sequential path too.
	_, err = Map(ctx, []int{1, 2, 3}, func(ctx context.Context, i, v int) (int, error) {
		return v, nil
	}, Workers(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential: got %v, want context.Canceled", err)
	}
}

func TestMapBoundsWorkers(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	items := make([]int, 50)
	_, err := Map(context.Background(), items, func(_ context.Context, i, _ int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0, nil
	}, Workers(workers))
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestMapProgress(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	items := make([]int, 20)
	_, err := Map(context.Background(), items, func(_ context.Context, i, _ int) (int, error) {
		return i, nil
	}, Workers(4), OnProgress(func(done, total int) {
		if total != 20 {
			t.Errorf("total = %d, want 20", total)
		}
		mu.Lock()
		seen = append(seen, done)
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 20 {
		t.Fatalf("got %d progress calls, want 20", len(seen))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress out of order: call %d reported done=%d", i, d)
		}
	}
}

func TestGridShapeAndValues(t *testing.T) {
	rows := []int{10, 20, 30}
	cols := []int{1, 2}
	for _, workers := range []int{1, 4} {
		m, err := Grid(context.Background(), rows, cols, func(_ context.Context, i, j, r, c int) (int, error) {
			return r + c, nil
		}, Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if len(m) != 3 || len(m[0]) != 2 {
			t.Fatalf("shape %dx%d, want 3x2", len(m), len(m[0]))
		}
		for i, r := range rows {
			for j, c := range cols {
				if m[i][j] != r+c {
					t.Errorf("m[%d][%d] = %d, want %d", i, j, m[i][j], r+c)
				}
			}
		}
	}
}

func TestGridEmpty(t *testing.T) {
	m, err := Grid(context.Background(), []int{}, []int{1}, func(_ context.Context, i, j, r, c int) (int, error) {
		return 0, nil
	})
	if m != nil || err != nil {
		t.Fatalf("empty grid: got %v, %v", m, err)
	}
}

func TestTaskSeedStableAndDistinct(t *testing.T) {
	a := TaskSeed(42, 0)
	if a != TaskSeed(42, 0) {
		t.Error("TaskSeed not stable")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := TaskSeed(42, i)
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
	if TaskSeed(42, 1) == TaskSeed(43, 1) {
		t.Error("base seed ignored")
	}
}

func TestTaskRandIndependentOfOrder(t *testing.T) {
	// Drawing from task 5's stream must not depend on whether other tasks
	// drew first.
	first := TaskRand(7, 5).Float64()
	TaskRand(7, 3).Float64()
	TaskRand(7, 4).Float64()
	if got := TaskRand(7, 5).Float64(); got != first {
		t.Errorf("task stream depends on other tasks: %v vs %v", got, first)
	}
}

func TestUniformRangeAndMoments(t *testing.T) {
	const n = 100000
	var sum float64
	for k := uint64(0); k < n; k++ {
		u := Uniform(123, k)
		if u < 0 || u >= 1 {
			t.Fatalf("Uniform out of range: %v", u)
		}
		sum += u
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v far from 0.5", mean)
	}
	if Uniform(1, 0) == Uniform(2, 0) {
		t.Error("Uniform ignores seed")
	}
	if Uniform(1, 0) != Uniform(1, 0) {
		t.Error("Uniform not stable")
	}
}

func TestPickRangeAndDistribution(t *testing.T) {
	const n, choices = 60000, 7
	counts := make([]int, choices)
	for k := uint64(0); k < n; k++ {
		i := Pick(99, k, choices)
		if i < 0 || i >= choices {
			t.Fatalf("Pick out of range: %d", i)
		}
		counts[i]++
	}
	// Each choice should land near n/choices; a 15% band catches a biased
	// or collapsed mapping without flaking on a fixed seed.
	want := float64(n) / choices
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.15*want {
			t.Errorf("choice %d drawn %d times, want ~%.0f", i, c, want)
		}
	}
	if Pick(1, 0, 5) != Pick(1, 0, 5) {
		t.Error("Pick not stable")
	}
	if Pick(1, 0, 1) != 0 {
		t.Error("single-choice Pick must return 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("Pick(seed, k, 0) did not panic")
		}
	}()
	Pick(1, 0, 0)
}
