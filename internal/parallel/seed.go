package parallel

import "math/rand"

// Deterministic per-task randomness. Experiments that inject randomness
// (sensor noise, fault timing) must not share one sequential PRNG stream
// across tasks: under a worker pool the interleaving — and therefore every
// task's draws — would depend on scheduling. Instead each task derives its
// own stream from (base seed, task index) with SplitMix64, so any execution
// order produces identical draws.

// splitmix64 is the SplitMix64 mixing function (Steele, Lea & Flood 2014):
// a bijective avalanche mix whose outputs pass BigCrush. It is the standard
// way to spawn independent seeds from sequential indices.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TaskSeed derives a stable, well-mixed seed for task index from a base
// seed. Nearby indices yield statistically independent seeds.
func TaskSeed(base uint64, index int) uint64 {
	return splitmix64(base ^ splitmix64(uint64(index)+0x632be59bd9b4e019))
}

// TaskRand returns a PRNG seeded by TaskSeed(base, index). The returned
// source is not safe for concurrent use; it is meant to live inside one
// task.
func TaskRand(base uint64, index int) *rand.Rand {
	return rand.New(rand.NewSource(int64(TaskSeed(base, index))))
}

// Uniform maps (seed, draw index) to a uniform float64 in [0, 1) without
// any stream state: draw k of a task is the same value no matter how many
// other tasks ran, or in what order. Use consecutive k for consecutive
// draws.
func Uniform(seed, k uint64) float64 {
	return float64(splitmix64(seed^splitmix64(k))>>11) / (1 << 53)
}

// Pick maps (seed, draw index) to a uniform choice in [0, n) with the same
// stateless guarantee as Uniform: draw k depends only on (seed, k, n),
// never on other draws or execution order. n must be positive.
func Pick(seed, k uint64, n int) int {
	if n <= 0 {
		panic("parallel: Pick needs a positive choice count")
	}
	i := int(Uniform(seed, k) * float64(n))
	if i >= n { // guard the (unreachable in practice) rounding edge
		i = n - 1
	}
	return i
}
