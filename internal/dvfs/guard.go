package dvfs

import (
	"fmt"

	"greengpu/internal/telemetry"
)

// Guard metrics (see docs/OBSERVABILITY.md). No-ops unless telemetry is
// enabled; Sample and Step stay allocation-free either way.
var (
	metricGuardHeldSamples = telemetry.NewCounter("greengpu_guard_held_samples_total",
		"Dropped sensor samples replaced by the last good reading (hold-last-good).")
	metricGuardRetries = telemetry.NewCounter("greengpu_guard_retries_total",
		"Frequency-transition attempts re-issued after a failure.")
	metricGuardDeferred = telemetry.NewCounter("greengpu_guard_deferred_applies_total",
		"Delayed frequency transitions that eventually landed.")
	metricGuardWatchdog = telemetry.NewCounter("greengpu_guard_watchdog_trips_total",
		"Watchdog activations: K consecutive transition failures forced the failsafe levels.")
)

// TransitionResult is a gate's report for one attempted frequency
// transition (see Guard.Step). It mirrors the failure modes a real driver
// write exhibits: it takes effect now, it silently does nothing, or it
// lands late.
type TransitionResult int

// Gate outcomes.
const (
	// TransitionApplied takes effect immediately.
	TransitionApplied TransitionResult = iota
	// TransitionFailed leaves the clock at the old level; the guard will
	// retry with backoff.
	TransitionFailed
	// TransitionDeferred accepts the write but applies it N epochs later.
	TransitionDeferred
)

// GuardConfig tunes the recovery state machine. The zero value selects the
// documented defaults; Failsafe should be the platform's performance-safe
// decision (highest core and memory levels) and has no useful zero value,
// so NewGuard requires it explicitly.
type GuardConfig struct {
	// WatchdogK is the number of consecutive failed transition attempts
	// that trips the watchdog. Default 3.
	WatchdogK int
	// BackoffMax caps the retry backoff, in epochs between attempts.
	// Backoff starts at 1 epoch and doubles per failure. Default 8.
	BackoffMax int
	// FailsafeHold is how many epochs the guard pins the failsafe decision
	// after a watchdog trip before resuming normal control. Default 8.
	FailsafeHold int
	// Failsafe is the decision enforced when the watchdog trips. Falling
	// back to the highest frequencies trades energy for safety, as the
	// paper's real testbed does implicitly: the card's reset state is its
	// shipped (peak) clocks.
	Failsafe Decision
}

func (c *GuardConfig) withDefaults() GuardConfig {
	out := *c
	if out.WatchdogK == 0 {
		out.WatchdogK = 3
	}
	if out.BackoffMax == 0 {
		out.BackoffMax = 8
	}
	if out.FailsafeHold == 0 {
		out.FailsafeHold = 8
	}
	return out
}

// Validate reports the first problem with the configuration, if any.
// Zero fields are valid (defaults fill them in).
func (c *GuardConfig) Validate() error {
	if c.WatchdogK < 0 {
		return fmt.Errorf("dvfs: GuardConfig.WatchdogK = %d, must be non-negative", c.WatchdogK)
	}
	if c.BackoffMax < 0 {
		return fmt.Errorf("dvfs: GuardConfig.BackoffMax = %d, must be non-negative", c.BackoffMax)
	}
	if c.FailsafeHold < 0 {
		return fmt.Errorf("dvfs: GuardConfig.FailsafeHold = %d, must be non-negative", c.FailsafeHold)
	}
	return nil
}

// GuardCounts tallies the guard's recovery actions.
type GuardCounts struct {
	// HeldSamples is sensor samples replaced by the last good reading.
	HeldSamples uint64
	// Retries is transition attempts re-issued after a failure.
	Retries uint64
	// DeferredApplies is delayed transitions that eventually landed.
	DeferredApplies uint64
	// WatchdogTrips is watchdog activations (K consecutive failures).
	WatchdogTrips uint64
}

// Total returns the number of recovery actions across all kinds.
func (c GuardCounts) Total() uint64 {
	return c.HeldSamples + c.Retries + c.DeferredApplies + c.WatchdogTrips
}

// Sub returns the per-kind difference c − earlier, for windowed counts.
func (c GuardCounts) Sub(earlier GuardCounts) GuardCounts {
	return GuardCounts{
		HeldSamples:     c.HeldSamples - earlier.HeldSamples,
		Retries:         c.Retries - earlier.Retries,
		DeferredApplies: c.DeferredApplies - earlier.DeferredApplies,
		WatchdogTrips:   c.WatchdogTrips - earlier.WatchdogTrips,
	}
}

// Guard hardens a frequency-control loop against sensor and actuator
// faults. It sits between a controller (Scaler, or a CPU governor using
// only the CoreLevel field) and the hardware it actuates, providing:
//
//   - hold-last-good: Sample substitutes the previous good utilization
//     reading for dropped (non-finite) samples, so one failed poll does not
//     yank the controller toward idle;
//   - bounded retry with backoff: a failed transition is retried after 1
//     epoch, then 2, 4, … up to BackoffMax, holding the old level in
//     between, so a flapping driver is not hammered every epoch;
//   - watchdog failsafe: after WatchdogK consecutive failures the guard
//     pins the Failsafe (performance-safe) decision for FailsafeHold
//     epochs, then resumes normal control.
//
// The guard is not safe for concurrent use; like the controllers it wraps
// it belongs to one simulated machine's event loop. All methods are
// allocation-free.
type Guard struct {
	cfg    GuardConfig
	counts GuardCounts

	last Decision // level pair the guard believes is in force

	pending   Decision // deferred transition in flight
	pendingIn int      // epochs until pending lands; 0 = none

	fails        int // consecutive failed attempts
	backoff      int // next backoff length in epochs
	wait         int // epochs left before another attempt is allowed
	failsafeLeft int // epochs of failsafe pinning remaining

	lastUc, lastUm float64 // most recent good sample, for Sample
}

// NewGuard creates a guard that assumes initial is currently in force —
// typically the run's initial frequency levels. Zero GuardConfig fields
// take the documented defaults. It panics on an invalid configuration; use
// GuardConfig.Validate to check first.
func NewGuard(cfg GuardConfig, initial Decision) *Guard {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Guard{cfg: cfg.withDefaults(), last: initial, backoff: 1}
}

// Counts returns the recovery actions taken so far.
func (g *Guard) Counts() GuardCounts { return g.counts }

// Enforced returns the decision the guard currently believes is in force.
func (g *Guard) Enforced() Decision { return g.last }

// InFailsafe reports whether the watchdog currently pins the failsafe
// decision.
func (g *Guard) InFailsafe() bool { return g.failsafeLeft > 0 }

// Sample passes a (core, mem) utilization pair through hold-last-good: a
// pair containing any non-finite reading is replaced wholesale by the last
// good pair (0, 0 before the first good sample — the same idle fallback
// sanitizeUtil uses) and held reports the substitution. CPU callers pass
// their single utilization as uc with um = 0.
func (g *Guard) Sample(uc, um float64) (float64, float64, bool) {
	if isFinite(uc) && isFinite(um) {
		g.lastUc, g.lastUm = uc, um
		return uc, um, false
	}
	g.counts.HeldSamples++
	metricGuardHeldSamples.Inc()
	return g.lastUc, g.lastUm, true
}

// Step runs one epoch of the recovery machine. want is the controller's
// desired decision; gate attempts the hardware transition and reports its
// fate (plus the delay, in epochs, for TransitionDeferred). Step returns
// the decision actually in force for the coming epoch. gate is called at
// most once per Step, and only when a transition is genuinely attempted.
func (g *Guard) Step(want Decision, gate func() (TransitionResult, int)) Decision {
	// Watchdog failsafe pins the safe decision; normal control resumes
	// only after the hold expires.
	if g.failsafeLeft > 0 {
		g.failsafeLeft--
		return g.last
	}

	// A deferred transition lands regardless of what the controller wants
	// now: the hardware is completing an already-accepted write. While one
	// is still in flight no new write is issued — the driver owns the
	// clock until the accepted transition completes.
	if g.pendingIn > 0 {
		g.pendingIn--
		if g.pendingIn > 0 {
			return g.last
		}
		g.last = g.pending
		g.counts.DeferredApplies++
		metricGuardDeferred.Inc()
	}

	// Nothing to change.
	if want == g.last {
		g.fails = 0
		g.backoff = 1
		g.wait = 0
		return g.last
	}

	// Backing off after a failure: hold the old level, don't attempt.
	if g.wait > 0 {
		g.wait--
		return g.last
	}

	retrying := g.fails > 0
	outcome, delay := gate()
	switch outcome {
	case TransitionApplied:
		if retrying {
			g.counts.Retries++
			metricGuardRetries.Inc()
		}
		g.last = want
		g.pendingIn = 0
		g.fails = 0
		g.backoff = 1
	case TransitionDeferred:
		if retrying {
			g.counts.Retries++
			metricGuardRetries.Inc()
		}
		if delay <= 0 {
			delay = 1
		}
		g.pending = want
		g.pendingIn = delay
		g.fails = 0
		g.backoff = 1
	case TransitionFailed:
		if retrying {
			g.counts.Retries++
			metricGuardRetries.Inc()
		}
		g.fails++
		g.wait = g.backoff
		g.backoff *= 2
		if g.backoff > g.cfg.BackoffMax {
			g.backoff = g.cfg.BackoffMax
		}
		if g.fails >= g.cfg.WatchdogK {
			g.counts.WatchdogTrips++
			metricGuardWatchdog.Inc()
			g.failsafeLeft = g.cfg.FailsafeHold
			// The failsafe is the platform's reset state and is modelled
			// as always reachable — it does not pass through the gate.
			g.last = g.cfg.Failsafe
			g.pendingIn = 0
			g.fails = 0
			g.backoff = 1
			g.wait = 0
		}
	}
	return g.last
}

func isFinite(f float64) bool {
	// NaN != NaN; the subtraction overflows only for ±Inf.
	return f == f && f-f == 0
}
