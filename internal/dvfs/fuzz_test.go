package dvfs

import (
	"math"
	"testing"

	"greengpu/internal/units"
)

// TestSanitizeUtil pins the sensor-sanitizing contract every controller
// entry point relies on: NaN and ±Inf read as idle, finite values clamp to
// [0,1], in-range values pass through untouched.
func TestSanitizeUtil(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{math.NaN(), 0},
		{math.Inf(1), 0},
		{math.Inf(-1), 0},
		{-0.5, 0},
		{-math.SmallestNonzeroFloat64, 0},
		{0, 0},
		{0.37, 0.37},
		{1, 1},
		{1.0000001, 1},
		{1e300, 1},
	}
	for _, c := range cases {
		if got := sanitizeUtil(c.in); got != c.want {
			t.Errorf("sanitizeUtil(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// FuzzScalerStep feeds arbitrary (including non-finite) utilizations into
// the scaler and asserts it never panics, always returns in-range levels,
// and keeps its weight table finite.
func FuzzScalerStep(f *testing.F) {
	f.Add(0.5, 0.5)
	f.Add(math.NaN(), math.Inf(1))
	f.Add(math.Inf(-1), -3.7)
	f.Add(1e308, -1e308)
	f.Add(-0.0, 2.0)

	core := []units.Frequency{200e6, 300e6, 400e6, 500e6}
	mem := []units.Frequency{600e6, 800e6, 900e6}
	s := NewScaler(core, mem, DefaultParams())
	f.Fuzz(func(t *testing.T, uc, um float64) {
		d := s.Step(uc, um)
		if d.CoreLevel < 0 || d.CoreLevel >= len(core) {
			t.Fatalf("Step(%v,%v) core level %d out of range [0,%d)", uc, um, d.CoreLevel, len(core))
		}
		if d.MemLevel < 0 || d.MemLevel >= len(mem) {
			t.Fatalf("Step(%v,%v) mem level %d out of range [0,%d)", uc, um, d.MemLevel, len(mem))
		}
		for i := 0; i < len(core); i++ {
			for j := 0; j < len(mem); j++ {
				if w := s.Weight(i, j); math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
					t.Fatalf("Step(%v,%v) left weight(%d,%d) = %v", uc, um, i, j, w)
				}
			}
		}
	})
}

// FuzzGuardSample asserts hold-last-good always yields finite in-range
// utilizations no matter what the sensor delivers.
func FuzzGuardSample(f *testing.F) {
	f.Add(0.5, 0.5)
	f.Add(math.NaN(), 0.2)
	f.Add(math.Inf(1), math.Inf(-1))
	g := NewGuard(GuardConfig{Failsafe: Decision{CoreLevel: 3, MemLevel: 2}}, Decision{})
	f.Fuzz(func(t *testing.T, uc, um float64) {
		guc, gum, _ := g.Sample(uc, um)
		if math.IsNaN(guc) || math.IsInf(guc, 0) || math.IsNaN(gum) || math.IsInf(gum, 0) {
			t.Fatalf("Sample(%v,%v) delivered non-finite (%v,%v)", uc, um, guc, gum)
		}
	})
}
