package dvfs

import (
	"math"
	"testing"
)

func alwaysFail() (TransitionResult, int)  { return TransitionFailed, 0 }
func alwaysApply() (TransitionResult, int) { return TransitionApplied, 0 }

// TestGuardWatchdogFiresAfterK: exactly K consecutive transition failures
// trip the watchdog — not K−1 — and the failsafe decision is pinned for
// FailsafeHold epochs before normal control resumes.
func TestGuardWatchdogFiresAfterK(t *testing.T) {
	const k, hold = 3, 4
	failsafe := Decision{CoreLevel: 9, MemLevel: 9}
	g := NewGuard(GuardConfig{WatchdogK: k, BackoffMax: 1, FailsafeHold: hold, Failsafe: failsafe},
		Decision{CoreLevel: 0, MemLevel: 0})
	want := Decision{CoreLevel: 2, MemLevel: 1}

	attempts := 0
	gate := func() (TransitionResult, int) {
		attempts++
		return TransitionFailed, 0
	}
	// BackoffMax=1 means every epoch retries; drive epochs until the
	// watchdog fires and check it took exactly k failed attempts.
	for epoch := 0; epoch < 50 && g.Counts().WatchdogTrips == 0; epoch++ {
		d := g.Step(want, gate)
		if g.Counts().WatchdogTrips == 0 && d != (Decision{CoreLevel: 0, MemLevel: 0}) {
			t.Fatalf("epoch %d: enforced %+v before watchdog, want old level", epoch, d)
		}
	}
	if got := g.Counts().WatchdogTrips; got != 1 {
		t.Fatalf("WatchdogTrips = %d, want 1", got)
	}
	if attempts != k {
		t.Fatalf("watchdog tripped after %d failed attempts, want exactly %d", attempts, k)
	}
	if !g.InFailsafe() {
		t.Fatal("not in failsafe immediately after trip")
	}
	if g.Enforced() != failsafe {
		t.Fatalf("Enforced = %+v after trip, want failsafe %+v", g.Enforced(), failsafe)
	}
	// The failsafe is pinned for `hold` epochs: the gate must not be
	// consulted and the decision must stay failsafe.
	for i := 0; i < hold; i++ {
		if d := g.Step(want, func() (TransitionResult, int) {
			t.Fatal("gate called during failsafe hold")
			return TransitionApplied, 0
		}); d != failsafe {
			t.Fatalf("hold epoch %d: enforced %+v, want failsafe", i, d)
		}
	}
	// Hold expired: normal control resumes and a healthy gate applies.
	if d := g.Step(want, alwaysApply); d != want {
		t.Fatalf("after hold: enforced %+v, want %+v", d, want)
	}
	if g.InFailsafe() {
		t.Fatal("still in failsafe after hold expired and control resumed")
	}
}

// TestGuardBackoff: after a failure the guard holds for 1 epoch, then 2,
// then 4… capped at BackoffMax, calling the gate only when an attempt is
// due.
func TestGuardBackoff(t *testing.T) {
	g := NewGuard(GuardConfig{WatchdogK: 100, BackoffMax: 4, FailsafeHold: 1,
		Failsafe: Decision{CoreLevel: 5}}, Decision{})
	want := Decision{CoreLevel: 3, MemLevel: 2}
	var attemptEpochs []int
	gate := func() (TransitionResult, int) { return TransitionFailed, 0 }
	for epoch := 0; epoch < 20; epoch++ {
		calls := 0
		g.Step(want, func() (TransitionResult, int) { calls++; return gate() })
		if calls > 0 {
			attemptEpochs = append(attemptEpochs, epoch)
		}
	}
	// Attempt at 0, wait 1 → attempt at 2, wait 2 → 5, wait 4 → 10, wait 4
	// (capped) → 15.
	wantEpochs := []int{0, 2, 5, 10, 15}
	if len(attemptEpochs) < len(wantEpochs) {
		t.Fatalf("attempts at %v, want prefix %v", attemptEpochs, wantEpochs)
	}
	for i, e := range wantEpochs {
		if attemptEpochs[i] != e {
			t.Fatalf("attempts at %v, want %v", attemptEpochs[:len(wantEpochs)], wantEpochs)
		}
	}
	// All attempts after the first are retries.
	if got := g.Counts().Retries; got != uint64(len(attemptEpochs)-1) {
		t.Fatalf("Retries = %d, want %d", got, len(attemptEpochs)-1)
	}
}

// TestGuardDeferredLands: a deferred transition takes effect exactly delay
// epochs later, holding the old level in between.
func TestGuardDeferredLands(t *testing.T) {
	g := NewGuard(GuardConfig{Failsafe: Decision{CoreLevel: 5}}, Decision{CoreLevel: 1})
	want := Decision{CoreLevel: 4, MemLevel: 3}
	const delay = 3
	d := g.Step(want, func() (TransitionResult, int) { return TransitionDeferred, delay })
	if d != (Decision{CoreLevel: 1}) {
		t.Fatalf("deferred write enforced %+v immediately, want old level", d)
	}
	// While the write is in flight the guard must not issue another: the
	// gate would fail the test if consulted. The transition lands on the
	// delay-th subsequent epoch.
	noGate := func() (TransitionResult, int) {
		t.Fatal("gate called while a deferred write was in flight")
		return TransitionApplied, 0
	}
	for i := 1; i <= delay; i++ {
		d = g.Step(want, noGate)
		if i < delay && d != (Decision{CoreLevel: 1}) {
			t.Fatalf("epoch %d: enforced %+v, want old level", i, d)
		}
	}
	if d != want {
		t.Fatalf("after %d epochs: enforced %+v, want %+v landed", delay, d, want)
	}
	if g.Counts().DeferredApplies != 1 {
		t.Fatalf("DeferredApplies = %d, want 1", g.Counts().DeferredApplies)
	}
}

// TestGuardSampleHoldLastGood: non-finite samples are replaced by the last
// good pair; before any good sample the fallback is idle (0, 0).
func TestGuardSampleHoldLastGood(t *testing.T) {
	g := NewGuard(GuardConfig{Failsafe: Decision{}}, Decision{})
	uc, um, held := g.Sample(math.NaN(), 0.5)
	if !held || uc != 0 || um != 0 {
		t.Fatalf("first dropped sample: (%v,%v,held=%v), want (0,0,true)", uc, um, held)
	}
	if uc, um, held = g.Sample(0.7, 0.4); held || uc != 0.7 || um != 0.4 {
		t.Fatalf("good sample: (%v,%v,held=%v)", uc, um, held)
	}
	if uc, um, held = g.Sample(math.Inf(1), math.NaN()); !held || uc != 0.7 || um != 0.4 {
		t.Fatalf("dropped sample after good: (%v,%v,held=%v), want (0.7,0.4,true)", uc, um, held)
	}
	if g.Counts().HeldSamples != 2 {
		t.Fatalf("HeldSamples = %d, want 2", g.Counts().HeldSamples)
	}
}

// TestGuardStableWantIsFree: when the controller keeps wanting the level
// already in force, the gate is never consulted and failure state resets.
func TestGuardStableWantIsFree(t *testing.T) {
	g := NewGuard(GuardConfig{WatchdogK: 3, Failsafe: Decision{CoreLevel: 5}}, Decision{CoreLevel: 2})
	// Two failures toward level 3 (not enough to trip)…
	g.Step(Decision{CoreLevel: 3}, alwaysFail)
	g.Step(Decision{CoreLevel: 3}, alwaysFail) // backoff epoch, no attempt
	// …then the controller changes its mind back to the in-force level.
	for i := 0; i < 5; i++ {
		if d := g.Step(Decision{CoreLevel: 2}, func() (TransitionResult, int) {
			t.Fatal("gate called for a no-op decision")
			return TransitionApplied, 0
		}); d != (Decision{CoreLevel: 2}) {
			t.Fatalf("no-op epoch enforced %+v", d)
		}
	}
	// The earlier failures must not count toward a later episode.
	g.Step(Decision{CoreLevel: 4}, alwaysFail)
	if g.Counts().WatchdogTrips != 0 {
		t.Fatal("watchdog tripped across a reset episode")
	}
}

// TestGuardAllocFree: Sample and Step run inside the DVFS epoch tick and
// must not allocate.
func TestGuardAllocFree(t *testing.T) {
	g := NewGuard(GuardConfig{Failsafe: Decision{CoreLevel: 5, MemLevel: 5}}, Decision{})
	want := Decision{CoreLevel: 1, MemLevel: 1}
	gate := func() (TransitionResult, int) { return TransitionFailed, 0 }
	var i int
	allocs := testing.AllocsPerRun(1000, func() {
		g.Sample(float64(i%3)/3, math.NaN())
		g.Step(want, gate)
		want.CoreLevel = (want.CoreLevel + 1) % 4
		i++
	})
	if allocs != 0 {
		t.Fatalf("guard hot path allocates %.1f times per epoch, want 0", allocs)
	}
}
