package dvfs

import (
	"fmt"
	"math"
)

// SMPolicy is a core-count throttling policy in the spirit of the paper's
// related work ([9] Hong & Kim; [12] Lee et al.): instead of (or in
// addition to) scaling the core clock, power-gate stream multiprocessors
// the workload does not use. The policy sizes the active set to the
// measured core utilization plus headroom, with hysteresis so it does not
// flap on noise.
//
// GreenGPU's argument against core-count-only management is that it
// ignores the memory domain and the CPU; the extension experiments run
// this policy head-to-head so that argument is quantified rather than
// asserted.
type SMPolicy struct {
	// Total is the device's SM count.
	Total int
	// Headroom multiplies the utilization-implied demand before rounding
	// up, keeping slack so the gated device does not become the
	// bottleneck. Default 1.25.
	Headroom float64
	// Hysteresis suppresses changes smaller than this many SMs.
	// Default 1.
	Hysteresis int
}

// NewSMPolicy returns a policy with default tuning for a device with the
// given SM count.
func NewSMPolicy(total int) *SMPolicy {
	return &SMPolicy{Total: total, Headroom: 1.25, Hysteresis: 1}
}

// Validate reports the first problem with the policy, if any.
func (p *SMPolicy) Validate() error {
	if p.Total < 1 {
		return fmt.Errorf("dvfs: SMPolicy.Total = %d, must be >= 1", p.Total)
	}
	if p.Headroom < 1 {
		return fmt.Errorf("dvfs: SMPolicy.Headroom = %v, must be >= 1", p.Headroom)
	}
	if p.Hysteresis < 0 {
		return fmt.Errorf("dvfs: SMPolicy.Hysteresis = %v, must be >= 0", p.Hysteresis)
	}
	return nil
}

// Next returns the active-SM count for the coming interval, given the
// measured core utilization (relative to the currently active set) and
// the count in force.
//
// The demand estimate converts the relative utilization back to absolute
// SM-equivalents: u_core · current active SMs. Headroom and ceiling
// rounding keep the gated set from becoming the bottleneck; hysteresis
// keeps it stable.
func (p *SMPolicy) Next(uCore float64, current int) int {
	if current < 1 {
		current = 1
	}
	if current > p.Total {
		current = p.Total
	}
	if math.IsNaN(uCore) || math.IsInf(uCore, 0) {
		return current // sensor fault: hold
	}
	if uCore < 0 {
		uCore = 0
	}
	if uCore > 1 {
		uCore = 1
	}
	// Saturation jumps straight to the full device, ondemand-style: an
	// incremental ramp would crawl through several intervals while a new
	// compute-heavy phase starves (catastrophic on phase-fluctuating
	// workloads like QG).
	if uCore >= 0.95 {
		return p.Total
	}
	demand := uCore * float64(current) * p.Headroom
	next := int(math.Ceil(demand))
	if next < 1 {
		next = 1
	}
	if next > p.Total {
		next = p.Total
	}
	// Hysteresis damps only downward moves: shrinking the active set is
	// an energy optimization that can wait out noise, but growing it is
	// performance-critical (the device is saturated) and must never be
	// suppressed.
	if next < current && current-next <= p.Hysteresis {
		return current
	}
	return next
}
