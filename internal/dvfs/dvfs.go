// Package dvfs implements GreenGPU's coordinated frequency-scaling
// algorithm for GPU cores and memory (paper §V-A, Algorithm 1, Table I).
//
// The scaler maintains a weight for every (core level, memory level) pair.
// Each scaling interval it reads the measured core and memory utilizations,
// charges every pair a loss describing how badly that pair suits the
// observed utilizations, updates the weights multiplicatively (Weighted
// Majority Algorithm), and enforces the highest-weighted pair for the next
// interval.
//
// The per-level suitability reference umean maps frequency levels linearly
// onto utilization: the peak level is most suitable at utilization 1, the
// lowest level at utilization 0 (the mapping of Dhiman & Rosing validated on
// CPUs, which the paper adopts). Table I's loss then splits into an energy
// loss (running faster than the workload needs: u < umean) and a
// performance loss (running slower than the workload needs: u > umean),
// blended by α per domain:
//
//	l_c = α_c·l_ce + (1−α_c)·l_cp      (Eq. 1)
//	l_m = α_m·l_me + (1−α_m)·l_mp      (Eq. 2)
//	TotalLoss = φ·l_c + (1−φ)·l_m      (Eq. 3)
//	w ← w·(1 − (1−β)·TotalLoss)        (Eq. 4)
//
// with the paper's manually tuned constants α_c = 0.15, α_m = 0.02,
// φ = 0.3, β = 0.2. Small α favours performance: the paper's stated target
// is saving energy with only negligible performance degradation.
package dvfs

import (
	"fmt"
	"math"

	"greengpu/internal/telemetry"
	"greengpu/internal/units"
	"greengpu/internal/wma"
)

// Package metrics (see docs/OBSERVABILITY.md). No-ops unless telemetry is
// enabled; Step stays allocation-free either way.
var (
	metricSteps = telemetry.NewCounter("greengpu_dvfs_steps_total",
		"Tier-2 epoch decisions taken (Scaler.Step calls) across all runs.")
	metricLevelChanges = telemetry.NewCounter("greengpu_dvfs_level_changes_total",
		"Tier-2 decisions that changed the enforced (core, mem) level pair.")
)

// Params are the tuning constants of the scaling algorithm.
type Params struct {
	AlphaCore float64 // energy-vs-performance blend for the core domain
	AlphaMem  float64 // energy-vs-performance blend for the memory domain
	Phi       float64 // core-vs-memory blend in the total loss
	Beta      float64 // WMA update parameter
}

// DefaultParams returns the constants the paper derived experimentally for
// the GeForce 8800 GTX testbed.
func DefaultParams() Params {
	return Params{AlphaCore: 0.15, AlphaMem: 0.02, Phi: 0.3, Beta: 0.2}
}

// Validate reports the first problem with the parameters, if any.
func (p *Params) Validate() error {
	check := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("dvfs: %s = %v, must be in [0,1]", name, v)
		}
		return nil
	}
	if err := check("AlphaCore", p.AlphaCore); err != nil {
		return err
	}
	if err := check("AlphaMem", p.AlphaMem); err != nil {
		return err
	}
	if err := check("Phi", p.Phi); err != nil {
		return err
	}
	if p.Beta <= 0 || p.Beta >= 1 {
		return fmt.Errorf("dvfs: Beta = %v, must be in (0,1)", p.Beta)
	}
	return nil
}

// UMeans maps a frequency ladder onto most-suitable utilizations: lowest
// level ↦ 0, peak ↦ 1, linear in between. A single-level ladder maps to 1
// (that level must serve every utilization).
func UMeans(levels []units.Frequency) []float64 {
	n := len(levels)
	if n == 0 {
		panic("dvfs: UMeans on empty ladder")
	}
	out := make([]float64, n)
	lo, hi := float64(levels[0]), float64(levels[n-1])
	if hi <= lo {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	for i, f := range levels {
		out[i] = (float64(f) - lo) / (hi - lo)
	}
	return out
}

// Loss computes Table I's blended loss for one domain level: u is the
// measured utilization, umean the level's most-suitable utilization, alpha
// the energy-vs-performance blend. The result is in [0,1] whenever the
// inputs are.
func Loss(u, umean, alpha float64) float64 {
	var le, lp float64
	if u > umean {
		lp = u - umean // level too slow for the load: performance loss
	} else {
		le = umean - u // level too fast for the load: energy loss
	}
	return alpha*le + (1-alpha)*lp
}

// Decision is one scaling step's outcome.
type Decision struct {
	CoreLevel int
	MemLevel  int
}

// PreferredPair returns the (core, mem) level pair minimizing Eq. 3's
// blended loss for one static utilization sample — the open-loop answer the
// WMA scaler converges to when the sample repeats. Ties keep the lowest
// level of each domain. Utilizations are sanitized like live sensor
// samples: non-finite values read as 0, everything clamps to [0,1].
func PreferredPair(coreLevels, memLevels []units.Frequency, p Params, uCore, uMem float64) Decision {
	uCore, uMem = sanitizeUtil(uCore), sanitizeUtil(uMem)
	// Eq. 3 is separable: Phi and (1-Phi) are non-negative constant
	// weights, so the pair argmin is each domain's argmin.
	argmin := func(levels []units.Frequency, u, alpha float64) int {
		umeans := UMeans(levels)
		best, bestLoss := 0, math.Inf(1)
		for i, um := range umeans {
			if l := Loss(u, um, alpha); l < bestLoss {
				best, bestLoss = i, l
			}
		}
		return best
	}
	return Decision{
		CoreLevel: argmin(coreLevels, uCore, p.AlphaCore),
		MemLevel:  argmin(memLevels, uMem, p.AlphaMem),
	}
}

// PairDistance returns the ladder distance between two level pairs: the
// Chebyshev metric max(|Δcore|, |Δmem|), in ladder steps. A distance of 0
// is the same pair; 1 means both domains are within one level — the
// "sweet-spot error ≤ 1 ladder step" criterion the prediction validation
// gate enforces (see cmd/predictgate).
func PairDistance(a, b Decision) int {
	dc := a.CoreLevel - b.CoreLevel
	if dc < 0 {
		dc = -dc
	}
	dm := a.MemLevel - b.MemLevel
	if dm < 0 {
		dm = -dm
	}
	if dm > dc {
		return dm
	}
	return dc
}

// weightTable abstracts the WMA storage so the scaler can run on either
// the float table or the §VI-style 8-bit fixed-point table.
type weightTable interface {
	Update(loss func(i int) float64)
	Best() int
	Reset()
	Weight(i int) float64
}

// Scaler is the coordinated core+memory frequency scaler.
type Scaler struct {
	params Params

	coreUMean []float64
	memUMean  []float64
	table     weightTable

	// Scratch buffers reused across Steps so the per-interval update is
	// allocation-free: per-level domain losses and the combined per-pair
	// loss vector. Eq. 3 is separable in (i, j), so the N·M pair losses
	// need only N+M Loss evaluations.
	lcBuf   []float64
	lmBuf   []float64
	lossBuf []float64
	lossAt  func(idx int) float64 // reads lossBuf; bound once, reused by Update

	steps int
	// lastBest tracks the previous decision's flat pair index (-1 before
	// the first Step) so metricLevelChanges counts enforced transitions.
	lastBest int
}

// NewScaler creates a scaler for the given frequency ladders (both sorted
// ascending, as in gpusim). It panics on invalid parameters or empty
// ladders; use Params.Validate to check parameters first.
func NewScaler(coreLevels, memLevels []units.Frequency, p Params) *Scaler {
	return newScaler(coreLevels, memLevels, p, func(n int) weightTable {
		return wma.New(n, p.Beta)
	})
}

// NewScalerFixed8 creates a scaler whose weight table uses the 8-bit
// fixed-point arithmetic of the paper's §VI on-chip implementation sketch
// (a 6×6 table in tens of bytes, multiply-shift updates). Decisions track
// the float scaler's; the experiments harness quantifies the gap.
func NewScalerFixed8(coreLevels, memLevels []units.Frequency, p Params) *Scaler {
	return newScaler(coreLevels, memLevels, p, func(n int) weightTable {
		return wma.NewFixed8(n, p.Beta)
	})
}

func newScaler(coreLevels, memLevels []units.Frequency, p Params, mk func(n int) weightTable) *Scaler {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	cu := UMeans(coreLevels)
	mu := UMeans(memLevels)
	s := &Scaler{
		params:    p,
		coreUMean: cu,
		memUMean:  mu,
		table:     mk(len(cu) * len(mu)),
		lcBuf:     make([]float64, len(cu)),
		lmBuf:     make([]float64, len(mu)),
		lossBuf:   make([]float64, len(cu)*len(mu)),
		lastBest:  -1,
	}
	s.lossAt = func(idx int) float64 { return s.lossBuf[idx] }
	return s
}

// Params returns the scaler's tuning constants.
func (s *Scaler) Params() Params { return s.params }

// Levels returns the ladder sizes (N core levels, M memory levels).
func (s *Scaler) Levels() (core, mem int) { return len(s.coreUMean), len(s.memUMean) }

// Steps returns the number of Step calls since creation or Reset.
func (s *Scaler) Steps() int { return s.steps }

// Reset restores the weight table to indifference.
func (s *Scaler) Reset() {
	s.table.Reset()
	s.steps = 0
	s.lastBest = -1
}

// TotalLoss returns Eq. 3's combined loss for the (core i, mem j) pair under
// measured utilizations (uCore, uMem). Utilizations are clamped to [0,1];
// non-finite readings (a failed sensor sample) are treated as 0, i.e. idle.
func (s *Scaler) TotalLoss(i, j int, uCore, uMem float64) float64 {
	uCore = sanitizeUtil(uCore)
	uMem = sanitizeUtil(uMem)
	lc := Loss(uCore, s.coreUMean[i], s.params.AlphaCore)
	lm := Loss(uMem, s.memUMean[j], s.params.AlphaMem)
	return s.params.Phi*lc + (1-s.params.Phi)*lm
}

// Step runs one interval of Algorithm 1: update every pair's weight from
// the measured utilizations, then return the highest-weighted pair to
// enforce for the next interval.
//
// The pair losses are assembled from per-level domain losses (Eq. 3 is
// separable) into a reused scratch vector, with the same operation order as
// TotalLoss — Step(u_c, u_m) agrees bit-for-bit with charging TotalLoss
// pair by pair, at N+M rather than 2·N·M Loss evaluations and zero
// allocations.
func (s *Scaler) Step(uCore, uMem float64) Decision {
	uCore = sanitizeUtil(uCore)
	uMem = sanitizeUtil(uMem)
	for i, um := range s.coreUMean {
		s.lcBuf[i] = Loss(uCore, um, s.params.AlphaCore)
	}
	for j, um := range s.memUMean {
		s.lmBuf[j] = Loss(uMem, um, s.params.AlphaMem)
	}
	phi, oneMinusPhi := s.params.Phi, 1-s.params.Phi
	k := 0
	for i := range s.coreUMean {
		lc := phi * s.lcBuf[i]
		for j := range s.memUMean {
			s.lossBuf[k] = lc + oneMinusPhi*s.lmBuf[j]
			k++
		}
	}
	s.table.Update(s.lossAt)
	s.steps++
	best := s.table.Best()
	metricSteps.Inc()
	if best != s.lastBest && s.lastBest >= 0 {
		metricLevelChanges.Inc()
	}
	s.lastBest = best
	m := len(s.memUMean)
	return Decision{CoreLevel: best / m, MemLevel: best % m}
}

// Weight returns the current weight of the (core i, mem j) pair, for
// tracing and tests.
func (s *Scaler) Weight(i, j int) float64 {
	return s.table.Weight(i*len(s.memUMean) + j)
}

func sanitizeUtil(u float64) float64 {
	if math.IsNaN(u) || math.IsInf(u, 0) {
		return 0
	}
	return units.Clamp(u, 0, 1)
}

// CoreUMean returns level i's most-suitable core utilization.
func (s *Scaler) CoreUMean(i int) float64 { return s.coreUMean[i] }

// MemUMean returns level j's most-suitable memory utilization.
func (s *Scaler) MemUMean(j int) float64 { return s.memUMean[j] }
