package dvfs

import (
	"testing"

	"greengpu/internal/units"
)

func benchLadder(n int) []units.Frequency {
	out := make([]units.Frequency, n)
	for i := range out {
		out[i] = units.Frequency(400+i*40) * units.Megahertz
	}
	return out
}

// BenchmarkScalerStep measures one full Algorithm 1 interval on the
// testbed-sized 6×6 pair table: 36 loss evaluations, 36 multiplicative
// updates, one argmax.
func BenchmarkScalerStep(b *testing.B) {
	s := NewScaler(benchLadder(6), benchLadder(6), DefaultParams())
	for i := 0; i < b.N; i++ {
		s.Step(0.6, 0.4)
	}
}

// BenchmarkScalerStepLarge measures a modern-GPU-sized 16×16 table.
func BenchmarkScalerStepLarge(b *testing.B) {
	s := NewScaler(benchLadder(16), benchLadder(16), DefaultParams())
	for i := 0; i < b.N; i++ {
		s.Step(0.6, 0.4)
	}
}

// BenchmarkLoss measures the Table I loss kernel alone — the paper's §VI
// argues it reduces to shift-add hardware; this is its software cost.
func BenchmarkLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Loss(0.73, 0.6, 0.15)
	}
}
