package dvfs

import (
	"math"
	"testing"
	"testing/quick"

	"greengpu/internal/units"
)

// ladders mirroring the testbed: 6 core levels 411..576, 6 memory 500..900.
func coreLadder() []units.Frequency {
	return []units.Frequency{411, 444, 477, 510, 543, 576}
}

func memLadder() []units.Frequency {
	return []units.Frequency{500, 580, 660, 740, 820, 900}
}

func mhz(fs []units.Frequency) []units.Frequency {
	out := make([]units.Frequency, len(fs))
	for i, f := range fs {
		out[i] = f * units.Megahertz
	}
	return out
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.AlphaCore != 0.15 || p.AlphaMem != 0.02 || p.Phi != 0.3 || p.Beta != 0.2 {
		t.Errorf("DefaultParams = %+v, want paper constants", p)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
}

func TestParamsValidate(t *testing.T) {
	bads := []Params{
		{AlphaCore: -0.1, AlphaMem: 0.02, Phi: 0.3, Beta: 0.2},
		{AlphaCore: 0.15, AlphaMem: 1.5, Phi: 0.3, Beta: 0.2},
		{AlphaCore: 0.15, AlphaMem: 0.02, Phi: -1, Beta: 0.2},
		{AlphaCore: 0.15, AlphaMem: 0.02, Phi: 0.3, Beta: 0},
		{AlphaCore: 0.15, AlphaMem: 0.02, Phi: 0.3, Beta: 1},
	}
	for i, p := range bads {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
}

func TestUMeansLinearMap(t *testing.T) {
	um := UMeans(mhz(memLadder()))
	if um[0] != 0 {
		t.Errorf("lowest umean = %v, want 0", um[0])
	}
	if um[len(um)-1] != 1 {
		t.Errorf("peak umean = %v, want 1", um[len(um)-1])
	}
	// 740 MHz is (740-500)/(900-500) = 0.6.
	if math.Abs(um[3]-0.6) > 1e-12 {
		t.Errorf("umean[3] = %v, want 0.6", um[3])
	}
	// Monotone ascending.
	for i := 1; i < len(um); i++ {
		if um[i] <= um[i-1] {
			t.Errorf("umean not ascending at %d: %v", i, um)
		}
	}
}

func TestUMeansSingleLevel(t *testing.T) {
	um := UMeans([]units.Frequency{500 * units.Megahertz})
	if len(um) != 1 || um[0] != 1 {
		t.Errorf("single-level UMeans = %v, want [1]", um)
	}
}

func TestUMeansEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UMeans(nil)
}

// Table I: u > umean gives pure performance loss; u < umean pure energy loss.
func TestLossTableI(t *testing.T) {
	alpha := 0.15
	// Over-utilized level: perf loss = u - umean, weighted (1-alpha).
	if got, want := Loss(0.8, 0.5, alpha), (1-alpha)*0.3; math.Abs(got-want) > 1e-12 {
		t.Errorf("over-util loss = %v, want %v", got, want)
	}
	// Under-utilized level: energy loss = umean - u, weighted alpha.
	if got, want := Loss(0.2, 0.5, alpha), alpha*0.3; math.Abs(got-want) > 1e-12 {
		t.Errorf("under-util loss = %v, want %v", got, want)
	}
	// Exact match: zero loss.
	if got := Loss(0.5, 0.5, alpha); got != 0 {
		t.Errorf("matched loss = %v, want 0", got)
	}
}

func TestLossAsymmetry(t *testing.T) {
	// With small alpha, running too slow (perf loss) must hurt much more
	// than running too fast (energy loss) — the paper's performance-first
	// tuning.
	tooSlow := Loss(0.9, 0.4, 0.15)
	tooFast := Loss(0.4, 0.9, 0.15)
	if tooSlow <= tooFast {
		t.Errorf("perf loss %v should exceed energy loss %v for alpha=0.15", tooSlow, tooFast)
	}
}

func newTestScaler() *Scaler {
	return NewScaler(mhz(coreLadder()), mhz(memLadder()), DefaultParams())
}

func TestScalerDimensions(t *testing.T) {
	s := newTestScaler()
	n, m := s.Levels()
	if n != 6 || m != 6 {
		t.Errorf("Levels = (%d,%d), want (6,6)", n, m)
	}
}

func TestHighUtilizationSelectsPeak(t *testing.T) {
	s := newTestScaler()
	var d Decision
	for i := 0; i < 50; i++ {
		d = s.Step(1.0, 1.0)
	}
	if d.CoreLevel != 5 || d.MemLevel != 5 {
		t.Errorf("decision for u=(1,1) = %+v, want peak (5,5)", d)
	}
}

func TestLowUtilizationSelectsLowest(t *testing.T) {
	s := newTestScaler()
	var d Decision
	for i := 0; i < 50; i++ {
		d = s.Step(0.0, 0.0)
	}
	if d.CoreLevel != 0 || d.MemLevel != 0 {
		t.Errorf("decision for u=(0,0) = %+v, want lowest (0,0)", d)
	}
}

func TestMidUtilizationSelectsMatchingLevels(t *testing.T) {
	s := newTestScaler()
	// u_core = 0.6 maps to core umean 0.6 -> level 3 (411+0.6*165=510).
	// u_mem = 0.4 maps to mem umean 0.4 -> level 2 (660 MHz).
	var d Decision
	for i := 0; i < 50; i++ {
		d = s.Step(0.6, 0.4)
	}
	if d.CoreLevel != 3 {
		t.Errorf("core level = %d, want 3", d.CoreLevel)
	}
	if d.MemLevel != 2 {
		t.Errorf("mem level = %d, want 2", d.MemLevel)
	}
}

func TestCoordination(t *testing.T) {
	// Core-bounded load (high u_core, low u_mem) must keep core high and
	// throttle memory — the Fig. 1 behaviour.
	s := newTestScaler()
	var d Decision
	for i := 0; i < 50; i++ {
		d = s.Step(0.95, 0.2)
	}
	if d.CoreLevel < 4 {
		t.Errorf("core-bounded: core level %d too low", d.CoreLevel)
	}
	if d.MemLevel > 2 {
		t.Errorf("core-bounded: mem level %d not throttled", d.MemLevel)
	}
	// Memory-bounded load: the opposite.
	s = newTestScaler()
	for i := 0; i < 50; i++ {
		d = s.Step(0.25, 0.9)
	}
	if d.MemLevel < 4 {
		t.Errorf("mem-bounded: mem level %d too low", d.MemLevel)
	}
	if d.CoreLevel > 2 {
		t.Errorf("mem-bounded: core level %d not throttled", d.CoreLevel)
	}
}

func TestAdaptsToPhaseChange(t *testing.T) {
	s := newTestScaler()
	for i := 0; i < 30; i++ {
		s.Step(0.1, 0.1)
	}
	// With performance-favouring alpha the scaler settles on the level just
	// above the load (umean 0.2 > u = 0.1), not the absolute lowest.
	if d := s.Step(0.1, 0.1); d.CoreLevel > 1 || d.MemLevel > 1 {
		t.Fatalf("low phase decision = %+v, want levels <= 1", d)
	}
	// Utilization ramps up (the Fig. 5 streamcluster scenario): decision
	// must move to high levels within a bounded number of intervals.
	var d Decision
	for i := 0; i < 60; i++ {
		d = s.Step(0.95, 0.85)
	}
	if d.CoreLevel < 4 || d.MemLevel < 4 {
		t.Errorf("after ramp-up decision = %+v, want high levels", d)
	}
}

func TestTotalLossBlends(t *testing.T) {
	s := newTestScaler()
	// At pair (5,5): umeans are (1,1); with u = (0.5, 0.5) both domains have
	// pure energy loss 0.5.
	want := 0.3*(0.15*0.5) + 0.7*(0.02*0.5)
	if got := s.TotalLoss(5, 5, 0.5, 0.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("TotalLoss = %v, want %v", got, want)
	}
}

func TestTotalLossClampsUtilization(t *testing.T) {
	s := newTestScaler()
	if got := s.TotalLoss(0, 0, -0.5, 1.7); got != s.TotalLoss(0, 0, 0, 1) {
		t.Errorf("clamping failed: %v", got)
	}
}

func TestStepCountAndReset(t *testing.T) {
	s := newTestScaler()
	s.Step(0.5, 0.5)
	s.Step(0.5, 0.5)
	if s.Steps() != 2 {
		t.Errorf("Steps = %d", s.Steps())
	}
	s.Reset()
	if s.Steps() != 0 {
		t.Errorf("Steps after Reset = %d", s.Steps())
	}
	if w := s.Weight(0, 0); w != 1 {
		t.Errorf("weight after Reset = %v", w)
	}
}

func TestUMeanAccessors(t *testing.T) {
	s := newTestScaler()
	if got := s.CoreUMean(5); got != 1 {
		t.Errorf("CoreUMean(5) = %v", got)
	}
	if got := s.MemUMean(0); got != 0 {
		t.Errorf("MemUMean(0) = %v", got)
	}
}

// Property: the chosen pair is always in range and TotalLoss is in [0,1].
func TestDecisionRangeProperty(t *testing.T) {
	f := func(steps []float64) bool {
		s := newTestScaler()
		for _, v := range steps {
			uc := math.Abs(math.Mod(v, 1))
			um := math.Abs(math.Mod(v*1.7, 1))
			d := s.Step(uc, um)
			if d.CoreLevel < 0 || d.CoreLevel > 5 || d.MemLevel < 0 || d.MemLevel > 5 {
				return false
			}
			for i := 0; i < 6; i++ {
				for j := 0; j < 6; j++ {
					l := s.TotalLoss(i, j, uc, um)
					if l < 0 || l > 1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: for a steady utilization, the converged decision picks the pair
// whose umeans minimize the total loss — Algorithm 1 converges to the
// best frequency pair for the load.
func TestConvergesToMinLossProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		uc := float64(a) / 255
		um := float64(b) / 255
		s := newTestScaler()
		var d Decision
		for i := 0; i < 80; i++ {
			d = s.Step(uc, um)
		}
		// Find the true argmin of TotalLoss.
		bi, bj, best := 0, 0, math.Inf(1)
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				if l := s.TotalLoss(i, j, uc, um); l < best {
					bi, bj, best = i, j, l
				}
			}
		}
		return d.CoreLevel == bi && d.MemLevel == bj
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSMPolicyValidation(t *testing.T) {
	good := NewSMPolicy(16)
	if err := good.Validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
	bads := []SMPolicy{
		{Total: 0, Headroom: 1.25, Hysteresis: 1},
		{Total: 16, Headroom: 0.5, Hysteresis: 1},
		{Total: 16, Headroom: 1.25, Hysteresis: -1},
	}
	for i, p := range bads {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
}

func TestSMPolicyShrinksIdleDevice(t *testing.T) {
	p := NewSMPolicy(16)
	next := p.Next(0.25, 16)
	if next >= 16 {
		t.Errorf("low utilization kept %d SMs", next)
	}
	// 0.25·16·1.25 = 5.
	if next != 5 {
		t.Errorf("Next = %d, want 5", next)
	}
}

func TestSMPolicyGrowsSaturatedDevice(t *testing.T) {
	p := NewSMPolicy(16)
	// Saturated at 4 active: utilization 1 relative to the active set.
	cur := 4
	for i := 0; i < 10 && cur < 16; i++ {
		cur = p.Next(1.0, cur)
	}
	if cur != 16 {
		t.Errorf("saturated device never regrew to 16 (got %d)", cur)
	}
}

func TestSMPolicyHysteresisHoldsSmallShrink(t *testing.T) {
	p := NewSMPolicy(16)
	// From 8 active, demand 8·0.7·1.25 = 7 — a one-step shrink within
	// hysteresis: hold.
	if got := p.Next(0.70, 8); got != 8 {
		t.Errorf("Next = %d, want hold at 8", got)
	}
	// Growth is never suppressed, even by one step.
	if got := p.Next(0.85, 8); got != 9 {
		t.Errorf("Next = %d, want 9 (growth must not be damped)", got)
	}
}

func TestSMPolicyBounds(t *testing.T) {
	p := NewSMPolicy(16)
	if got := p.Next(0, 16); got < 1 {
		t.Errorf("Next = %d, want >= 1", got)
	}
	if got := p.Next(1, 99); got > 16 {
		t.Errorf("Next = %d, want <= 16", got)
	}
	if got := p.Next(math.NaN(), 8); got != 8 {
		t.Errorf("NaN utilization moved the count to %d", got)
	}
}

// TestPreferredPair pins the open-loop argmin against the levels the WMA
// scaler converges to for the same repeated sample.
func TestPreferredPair(t *testing.T) {
	cores, mems := mhz(coreLadder()), mhz(memLadder())
	p := DefaultParams()
	for _, tc := range []struct {
		uCore, uMem float64
		want        Decision
	}{
		{1.0, 1.0, Decision{CoreLevel: 5, MemLevel: 5}},
		{0.0, 0.0, Decision{CoreLevel: 0, MemLevel: 0}},
		{0.6, 0.4, Decision{CoreLevel: 3, MemLevel: 2}},
		{math.NaN(), math.Inf(1), Decision{CoreLevel: 0, MemLevel: 0}},
		{-3, 7, Decision{CoreLevel: 0, MemLevel: 5}},
	} {
		if got := PreferredPair(cores, mems, p, tc.uCore, tc.uMem); got != tc.want {
			t.Errorf("PreferredPair(u=%v,%v) = %+v, want %+v", tc.uCore, tc.uMem, got, tc.want)
		}
	}
}

// TestPreferredPairMatchesScaler cross-checks the closed form against the
// scaler's converged decision across the utilization grid.
func TestPreferredPairMatchesScaler(t *testing.T) {
	cores, mems := mhz(coreLadder()), mhz(memLadder())
	p := DefaultParams()
	for uc := 0.0; uc <= 1.0; uc += 0.25 {
		for um := 0.0; um <= 1.0; um += 0.25 {
			s := NewScaler(cores, mems, p)
			var d Decision
			for i := 0; i < 200; i++ {
				d = s.Step(uc, um)
			}
			if want := PreferredPair(cores, mems, p, uc, um); d != want {
				t.Errorf("u=(%v,%v): scaler converged to %+v, PreferredPair says %+v", uc, um, d, want)
			}
		}
	}
}

// TestPairDistance pins the Chebyshev ladder metric used by the
// prediction-accuracy gate.
func TestPairDistance(t *testing.T) {
	for _, tc := range []struct {
		a, b Decision
		want int
	}{
		{Decision{CoreLevel: 0, MemLevel: 0}, Decision{CoreLevel: 0, MemLevel: 0}, 0},
		{Decision{CoreLevel: 3, MemLevel: 2}, Decision{CoreLevel: 3, MemLevel: 2}, 0},
		{Decision{CoreLevel: 1, MemLevel: 0}, Decision{CoreLevel: 0, MemLevel: 0}, 1},
		{Decision{CoreLevel: 0, MemLevel: 5}, Decision{CoreLevel: 0, MemLevel: 1}, 4},
		{Decision{CoreLevel: 2, MemLevel: 5}, Decision{CoreLevel: 5, MemLevel: 4}, 3},
		{Decision{CoreLevel: 5, MemLevel: 0}, Decision{CoreLevel: 0, MemLevel: 5}, 5},
	} {
		if got := PairDistance(tc.a, tc.b); got != tc.want {
			t.Errorf("PairDistance(%+v, %+v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		// The metric is symmetric by construction; pin it anyway.
		if got := PairDistance(tc.b, tc.a); got != tc.want {
			t.Errorf("PairDistance(%+v, %+v) = %d, want %d (symmetry)", tc.b, tc.a, got, tc.want)
		}
	}
}

// TestPreferredPairSingleLevel covers degenerate one-level ladders.
func TestPreferredPairSingleLevel(t *testing.T) {
	one := []units.Frequency{500 * units.Megahertz}
	got := PreferredPair(one, one, DefaultParams(), 0.5, 0.5)
	if got.CoreLevel != 0 || got.MemLevel != 0 {
		t.Errorf("single-level ladders gave %+v", got)
	}
}
