//go:build !race

package core

// raceEnabled reports whether this test binary was built with the race
// detector, whose runtime perturbs whole-run allocation counts.
const raceEnabled = false
