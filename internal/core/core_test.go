package core

import (
	"math"
	"testing"
	"time"

	"greengpu/internal/cpusim"
	"greengpu/internal/division"
	"greengpu/internal/dvfs"
	"greengpu/internal/governor"
	"greengpu/internal/testbed"
	"greengpu/internal/workload"
)

func profileByName(t *testing.T, name string) *workload.Profile {
	t.Helper()
	profiles, err := workload.Rodinia(testbed.GeForce8800GTX(), testbed.PhenomIIX2())
	if err != nil {
		t.Fatalf("Rodinia: %v", err)
	}
	p, err := workload.ByName(profiles, name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runMode(t *testing.T, name string, mode Mode, mut func(*Config)) *Result {
	t.Helper()
	p := profileByName(t, name)
	cfg := DefaultConfig(mode)
	if mut != nil {
		mut(&cfg)
	}
	res, err := Run(testbed.New(), p, cfg)
	if err != nil {
		t.Fatalf("Run(%s, %v): %v", name, mode, err)
	}
	return res
}

func TestModeString(t *testing.T) {
	cases := map[Mode]string{
		Baseline:    "baseline",
		FreqScaling: "frequency-scaling",
		Division:    "division",
		Holistic:    "greengpu",
		Mode(42):    "Mode(42)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(Holistic)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	muts := []struct {
		name string
		mut  func(*Config)
	}{
		{"bad mode", func(c *Config) { c.Mode = Mode(9) }},
		{"zero dvfs interval", func(c *Config) { c.DVFSInterval = 0 }},
		{"zero governor interval", func(c *Config) { c.CPUGovernorInterval = 0 }},
		{"bad scaler", func(c *Config) { c.GPUScaler.Beta = 2 }},
		{"bad division", func(c *Config) { c.Division.Step = 0 }},
		{"negative iterations", func(c *Config) { c.Iterations = -1 }},
	}
	for _, m := range muts {
		c := DefaultConfig(Holistic)
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
	// Scaling parameters are irrelevant (and unchecked) for baseline mode.
	c := DefaultConfig(Baseline)
	c.DVFSInterval = 0
	if err := c.Validate(); err != nil {
		t.Errorf("baseline config rejected scaling params: %v", err)
	}
}

func TestBaselineRun(t *testing.T) {
	res := runMode(t, "kmeans", Baseline, func(c *Config) { c.Iterations = 3 })
	if len(res.Iterations) != 3 {
		t.Fatalf("iterations = %d, want 3", len(res.Iterations))
	}
	// All work on GPU: tc = 0 every iteration, ratio 0.
	for _, it := range res.Iterations {
		if it.R != 0 || it.TC != 0 {
			t.Errorf("iter %d: r=%v tc=%v, want all-GPU", it.Index, it.R, it.TC)
		}
		if it.CoreLevel != 5 || it.MemLevel != 5 || it.CPULevel != 3 {
			t.Errorf("iter %d: levels (%d,%d,%d), want peak (5,5,3)", it.Index, it.CoreLevel, it.MemLevel, it.CPULevel)
		}
	}
	// Iteration wall time ≈ profile's 120 s + transfer.
	w := res.Iterations[0].WallTime
	if w < 119*time.Second || w > 125*time.Second {
		t.Errorf("iteration wall time = %v, want ~120s", w)
	}
	if res.Energy <= 0 || res.EnergyGPU <= 0 || res.EnergyCPU <= 0 {
		t.Error("energy accounting missing")
	}
	if res.DVFSSteps != 0 {
		t.Errorf("baseline made %d DVFS steps", res.DVFSSteps)
	}
	// All-GPU runs spin the CPU the whole time.
	if res.SpinTime <= 0 {
		t.Error("baseline recorded no spin time despite synchronous waits")
	}
}

func TestFreqScalingSavesGPUEnergy(t *testing.T) {
	// Fig. 6a's headline: tier 2 alone saves GPU energy vs
	// best-performance with only marginal slowdown, here on the
	// memory-light lud workload.
	base := runMode(t, "lud", Baseline, func(c *Config) { c.Iterations = 4 })
	scaled := runMode(t, "lud", FreqScaling, func(c *Config) { c.Iterations = 4 })
	if scaled.EnergyGPU >= base.EnergyGPU {
		t.Errorf("frequency scaling saved no GPU energy: %v -> %v", base.EnergyGPU, scaled.EnergyGPU)
	}
	slowdown := float64(scaled.TotalTime-base.TotalTime) / float64(base.TotalTime)
	if slowdown > 0.10 {
		t.Errorf("slowdown %.1f%% exceeds 10%%", slowdown*100)
	}
	if scaled.DVFSSteps == 0 {
		t.Error("no DVFS steps recorded")
	}
}

func TestDivisionConvergesKmeans(t *testing.T) {
	// Fig. 7a: kmeans converges to 20/80 (CPU/GPU) from a 30% start.
	res := runMode(t, "kmeans", Division, nil)
	if math.Abs(res.FinalRatio-0.20) > 0.051 {
		t.Errorf("kmeans converged to %v, want ~0.20", res.FinalRatio)
	}
	if len(res.DivisionHistory) != len(res.Iterations) {
		t.Errorf("history %d entries, iterations %d", len(res.DivisionHistory), len(res.Iterations))
	}
	// Balanced: final iterations have similar tc and tg.
	last := res.Iterations[len(res.Iterations)-1]
	imbalance := math.Abs(float64(last.TC-last.TG)) / float64(last.WallTime)
	if imbalance > 0.25 {
		t.Errorf("final imbalance %.2f, want balanced sides", imbalance)
	}
}

func TestDivisionConvergesHotspot(t *testing.T) {
	// Fig. 7b: hotspot converges to 50/50.
	res := runMode(t, "hotspot", Division, nil)
	if math.Abs(res.FinalRatio-0.50) > 0.051 {
		t.Errorf("hotspot converged to %v, want ~0.50", res.FinalRatio)
	}
}

func TestDivisionConvergenceFromAnyStart(t *testing.T) {
	for _, init := range []float64{0.05, 0.50, 0.80} {
		res := runMode(t, "hotspot", Division, func(c *Config) {
			c.Division.Initial = init
		})
		if math.Abs(res.FinalRatio-0.50) > 0.051 {
			t.Errorf("start %v: converged to %v, want ~0.50", init, res.FinalRatio)
		}
	}
}

func TestDivisionBeatsBaselineEnergy(t *testing.T) {
	// The motivation case study (Fig. 2): cooperating beats GPU-only.
	base := runMode(t, "kmeans", Baseline, func(c *Config) { c.Iterations = 8 })
	div := runMode(t, "kmeans", Division, func(c *Config) { c.Iterations = 8 })
	if div.Energy >= base.Energy {
		t.Errorf("division saved no energy: baseline %v, division %v", base.Energy, div.Energy)
	}
	if div.TotalTime >= base.TotalTime {
		t.Errorf("division did not shorten the run: %v vs %v", div.TotalTime, base.TotalTime)
	}
}

func TestHolisticBeatsBothSingleTiers(t *testing.T) {
	// Fig. 8: GreenGPU outperforms division-only and frequency-scaling-
	// only on hotspot.
	iters := func(c *Config) { c.Iterations = 12 }
	hol := runMode(t, "hotspot", Holistic, iters)
	div := runMode(t, "hotspot", Division, iters)
	fs := runMode(t, "hotspot", FreqScaling, iters)
	if hol.Energy >= div.Energy {
		t.Errorf("holistic (%v) not better than division-only (%v)", hol.Energy, div.Energy)
	}
	if hol.Energy >= fs.Energy {
		t.Errorf("holistic (%v) not better than frequency-scaling-only (%v)", hol.Energy, fs.Energy)
	}
}

func TestHolisticSavesVsBaseline(t *testing.T) {
	// §VII-C: GreenGPU saves 21.04% on average vs the Rodinia default
	// configuration across kmeans and hotspot. We assert each workload
	// saves meaningfully (> 5%) and the average lands in the paper's
	// neighbourhood (> 15%).
	var savings []float64
	for _, name := range []string{"kmeans", "hotspot"} {
		base := runMode(t, name, Baseline, nil)
		hol := runMode(t, name, Holistic, nil)
		saving := 1 - float64(hol.Energy)/float64(base.Energy)
		if saving < 0.05 {
			t.Errorf("%s: holistic saving %.1f%%, want > 5%%", name, saving*100)
		}
		savings = append(savings, saving)
	}
	avg := (savings[0] + savings[1]) / 2
	if avg < 0.15 {
		t.Errorf("average holistic saving %.1f%%, want > 15%% (paper: 21.04%%)", avg*100)
	}
}

func TestIterationStatsConsistency(t *testing.T) {
	res := runMode(t, "hotspot", Holistic, func(c *Config) { c.Iterations = 5 })
	var sumE float64
	for _, it := range res.Iterations {
		if it.WallTime < it.TC || it.WallTime < it.TG {
			t.Errorf("iter %d: wall %v < max(tc %v, tg %v)", it.Index, it.WallTime, it.TC, it.TG)
		}
		if math.Abs(float64(it.Energy-(it.EnergyGPU+it.EnergyCPU))) > 1e-6 {
			t.Errorf("iter %d: energy split inconsistent", it.Index)
		}
		sumE += float64(it.Energy)
	}
	// Iteration energies sum to the run total (no gaps between iterations).
	if math.Abs(sumE-float64(res.Energy)) > 1e-3*float64(res.Energy) {
		t.Errorf("iteration energies sum %.1f != total %.1f", sumE, float64(res.Energy))
	}
}

func TestObserverCallbacks(t *testing.T) {
	dvfsCalls, govCalls, iterCalls := 0, 0, 0
	runMode(t, "hotspot", Holistic, func(c *Config) {
		c.Iterations = 3
		c.OnDVFS = func(_ time.Duration, _, _ float64, _ dvfs.Decision) { dvfsCalls++ }
		c.OnCPUGovernor = func(_ time.Duration, _ float64, _ int) { govCalls++ }
		c.OnIteration = func(_ IterationStats) { iterCalls++ }
	})
	if dvfsCalls == 0 {
		t.Error("OnDVFS never fired")
	}
	if govCalls == 0 {
		t.Error("OnCPUGovernor never fired")
	}
	if iterCalls != 3 {
		t.Errorf("OnIteration fired %d times, want 3", iterCalls)
	}
}

func TestRunOnBusyMachinePanics(t *testing.T) {
	m := testbed.New()
	p := profileByName(t, "hotspot")
	cfg := DefaultConfig(Baseline)
	cfg.Iterations = 1
	// Occupy the CPU.
	m.CPU.Run(&cpusim.Job{Name: "hog", Ops: 1e12})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(m, p, cfg)
}

func TestInvalidConfigReturnsError(t *testing.T) {
	m := testbed.New()
	p := profileByName(t, "hotspot")
	cfg := DefaultConfig(Holistic)
	cfg.Division.Step = -1
	if _, err := Run(m, p, cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSpinWaitDisabled(t *testing.T) {
	res := runMode(t, "lud", Baseline, func(c *Config) {
		c.Iterations = 2
		c.SpinWait = false
	})
	if res.SpinTime != 0 {
		t.Errorf("SpinTime = %v with SpinWait disabled", res.SpinTime)
	}
}

func TestEmulatedEnergyCPUThrottled(t *testing.T) {
	res := runMode(t, "lud", Baseline, func(c *Config) { c.Iterations = 2 })
	m := testbed.New()
	idle := m.CPU.IdlePowerAt(0)
	emulated := res.EmulatedEnergyCPUThrottled(idle)
	if emulated >= res.Energy {
		t.Errorf("emulation did not reduce energy: %v -> %v", res.Energy, emulated)
	}
	// Sanity: replaced energy equals spin accounting.
	want := res.Energy - res.SpinEnergy + idle.Over(res.SpinTime)
	if math.Abs(float64(emulated-want)) > 1e-9 {
		t.Errorf("emulated = %v, want %v", emulated, want)
	}
}

func TestAveragePower(t *testing.T) {
	res := runMode(t, "lud", Baseline, func(c *Config) { c.Iterations = 2 })
	want := res.Energy.Div(res.TotalTime)
	if res.AveragePower() != want {
		t.Errorf("AveragePower = %v, want %v", res.AveragePower(), want)
	}
}

func TestOscillationSafeguardEngagesOnTestbed(t *testing.T) {
	// Force a workload whose balance point falls between grid points and
	// check the safeguard holds the ratio (no sustained flip-flop).
	p := profileByName(t, "kmeans")
	cfg := DefaultConfig(Division)
	cfg.Iterations = 20
	res, err := Run(testbed.New(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	flips := 0
	for i := len(res.Iterations) - 6; i < len(res.Iterations)-1; i++ {
		if res.Iterations[i].R != res.Iterations[i+1].R {
			flips++
		}
	}
	if flips > 2 {
		t.Errorf("division ratio still flapping at end of run (%d flips in last 6 iters)", flips)
	}
}

func TestActuatorFilterApplied(t *testing.T) {
	// Pin the memory actuator at its boot level; the run must proceed
	// and the enforced memory level must never leave 0.
	p := profileByName(t, "lud")
	cfg := DefaultConfig(FreqScaling)
	cfg.Iterations = 4
	cfg.ActuatorFilter = func(d dvfs.Decision) dvfs.Decision {
		d.MemLevel = 0
		return d
	}
	res, err := Run(testbed.New(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Iterations {
		if it.MemLevel != 0 {
			t.Errorf("iteration %d: mem level %d escaped the stuck actuator", it.Index, it.MemLevel)
		}
	}
}

func TestActuatorFilterOutOfRangeClamped(t *testing.T) {
	p := profileByName(t, "lud")
	cfg := DefaultConfig(FreqScaling)
	cfg.Iterations = 2
	cfg.ActuatorFilter = func(d dvfs.Decision) dvfs.Decision {
		return dvfs.Decision{CoreLevel: 99, MemLevel: -7}
	}
	// Must not panic: the framework clamps hostile filter output.
	if _, err := Run(testbed.New(), p, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDivisionPolicyOverride(t *testing.T) {
	// Plug the Qilin adaptive mapper into the framework; it must reach
	// the same balance point as the step heuristic.
	p := profileByName(t, "hotspot")
	cfg := DefaultConfig(Division)
	cfg.DivisionPolicy = division.NewQilin(division.DefaultQilinConfig())
	res, err := Run(testbed.New(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FinalRatio-0.50) > 0.02 {
		t.Errorf("qilin converged to %v, want ~0.50", res.FinalRatio)
	}
	if len(res.DivisionHistory) != len(res.Iterations) {
		t.Errorf("policy history %d entries, iterations %d", len(res.DivisionHistory), len(res.Iterations))
	}
}

func TestDivisionPolicySkipsConfigValidation(t *testing.T) {
	// An explicit policy makes cfg.Division irrelevant; a bogus Division
	// config must not block the run.
	p := profileByName(t, "hotspot")
	cfg := DefaultConfig(Division)
	cfg.Division.Step = -1 // invalid, but unused
	cfg.DivisionPolicy = division.NewQilin(division.DefaultQilinConfig())
	cfg.Iterations = 3
	if _, err := Run(testbed.New(), p, cfg); err != nil {
		t.Fatalf("policy override still validated unused config: %v", err)
	}
}

func TestConservativeGovernorIntegration(t *testing.T) {
	p := profileByName(t, "lud")
	cfg := DefaultConfig(FreqScaling)
	cfg.Iterations = 4
	cfg.CPUGovernor = governor.NewConservative()
	levels := map[int]bool{}
	cfg.OnCPUGovernor = func(_ time.Duration, _ float64, level int) {
		levels[level] = true
	}
	if _, err := Run(testbed.New(), p, cfg); err != nil {
		t.Fatal(err)
	}
	// Conservative climbs one step at a time from the boot level (0), so
	// every level above it must have been enforced on the way up.
	for want := 1; want < 4; want++ {
		if !levels[want] {
			t.Errorf("conservative governor never enforced level %d (visited %v)", want, levels)
		}
	}
}

func TestMetersMatchAnalyticEnergyUnderDVFS(t *testing.T) {
	// Cross-module physics check: the Wattsup-style 1 Hz sampled meters
	// must agree with the simulator's exact analytic energy integrals to
	// within sampling error, across a full holistic run with live
	// frequency transitions on both devices.
	m := testbed.New()
	p := profileByName(t, "hotspot")
	m.StartMeters()
	cfg := DefaultConfig(Holistic)
	cfg.Iterations = 6
	res, err := Run(m, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.StopMeters()

	sampledGPU := m.MeterGPU.Energy()
	if rel := math.Abs(float64(sampledGPU-res.EnergyGPU)) / float64(res.EnergyGPU); rel > 0.02 {
		t.Errorf("GPU meter off by %.2f%% from analytic energy", rel*100)
	}
	sampledCPU := m.MeterCPU.Energy()
	if rel := math.Abs(float64(sampledCPU-res.EnergyCPU)) / float64(res.EnergyCPU); rel > 0.02 {
		t.Errorf("CPU meter off by %.2f%% from analytic energy", rel*100)
	}
}

func TestSingleIterationRun(t *testing.T) {
	res := runMode(t, "PF", Holistic, func(c *Config) { c.Iterations = 1 })
	if len(res.Iterations) != 1 {
		t.Fatalf("iterations = %d", len(res.Iterations))
	}
	if res.Energy <= 0 {
		t.Error("no energy accounted")
	}
}

func TestDivisionBoundsRespectedInHolistic(t *testing.T) {
	res := runMode(t, "kmeans", Holistic, func(c *Config) {
		c.Division.Min = 0.10
		c.Division.Max = 0.15
		c.Division.Initial = 0.10
	})
	for _, it := range res.Iterations {
		if it.R < 0.10-1e-9 || it.R > 0.15+1e-9 {
			t.Errorf("iteration %d ratio %v escaped [0.10, 0.15]", it.Index, it.R)
		}
	}
}

func TestLongRunStability(t *testing.T) {
	// Soak test: 200 iterations of the holistic framework. The division
	// ratio must stay at its converged point, per-iteration energy must
	// be flat in steady state, and the WMA weight table must not
	// degenerate (decisions keep being made).
	res := runMode(t, "hotspot", Holistic, func(c *Config) { c.Iterations = 200 })
	if len(res.Iterations) != 200 {
		t.Fatalf("ran %d iterations", len(res.Iterations))
	}
	tail := res.Iterations[100:]
	first := tail[0]
	for _, it := range tail {
		if it.R != first.R {
			t.Fatalf("ratio moved in steady state: %v -> %v at iteration %d", first.R, it.R, it.Index)
		}
		if rel := math.Abs(float64(it.Energy-first.Energy)) / float64(first.Energy); rel > 0.01 {
			t.Fatalf("iteration energy drifted %.2f%% at iteration %d", rel*100, it.Index)
		}
	}
	if res.DVFSSteps < 1000 {
		t.Errorf("DVFS made only %d decisions over 200 iterations", res.DVFSSteps)
	}
}
