// Package core implements the GreenGPU framework itself — the paper's
// primary contribution (§IV, §V): a holistic, two-tier energy-management
// loop for GPU-CPU heterogeneous systems.
//
// Tier 1 (workload division) runs once per iteration: it splits each
// iteration's work between the CPU and the GPU so both sides finish at
// about the same time, minimizing the energy one side wastes idling (or
// spin-waiting) for the other.
//
// Tier 2 (frequency scaling) runs on a much shorter period: the coordinated
// WMA scaler assigns GPU core and memory frequency levels from their
// measured utilizations, and a CPU governor (Linux ondemand by default)
// drives the processor P-state. The division period is kept much longer
// than the scaling period (the paper uses ≥ 40×) so the WMA loop converges
// within one division interval and the two tiers do not interfere.
//
// The framework runs a workload.Profile on a testbed.Machine under one of
// four modes mirroring the paper's evaluation configurations:
//
//	Baseline     all work on the GPU, every clock at its peak — the
//	             Rodinia default configuration (§VII-C).
//	FreqScaling  all work on the GPU, tier 2 active, tier 1 off (§VII-A).
//	Division     tier 1 active, all clocks pinned at peak (§VII-B).
//	Holistic     both tiers active — GreenGPU proper (§VII-C).
package core

import (
	"fmt"
	"time"

	"greengpu/internal/cpusim"
	"greengpu/internal/division"
	"greengpu/internal/dvfs"
	"greengpu/internal/faultinject"
	"greengpu/internal/governor"
	"greengpu/internal/sim"
	"greengpu/internal/telemetry"
	"greengpu/internal/testbed"
	"greengpu/internal/units"
	"greengpu/internal/workload"
)

// Package metrics (see docs/OBSERVABILITY.md). No-ops unless telemetry is
// enabled.
var (
	metricRunsStarted = telemetry.NewCounter("greengpu_core_runs_total",
		"Framework runs started (core.Run calls past validation).")
	metricIterations = telemetry.NewCounter("greengpu_core_iterations_total",
		"Workload iterations completed across all runs.")
)

// Mode selects which tiers are active.
type Mode int

// Framework modes.
const (
	Baseline Mode = iota
	FreqScaling
	Division
	Holistic
)

// String returns the mode's name as used in the paper's figures.
func (m Mode) String() string {
	switch m {
	case Baseline:
		return "baseline"
	case FreqScaling:
		return "frequency-scaling"
	case Division:
		return "division"
	case Holistic:
		return "greengpu"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// divides reports whether tier 1 is active in this mode.
func (m Mode) divides() bool { return m == Division || m == Holistic }

// scales reports whether tier 2 is active in this mode.
func (m Mode) scales() bool { return m == FreqScaling || m == Holistic }

// Config parameterizes a framework run.
type Config struct {
	Mode Mode

	// DVFSInterval is tier 2's period. The paper uses 3 s.
	DVFSInterval time.Duration
	// GPUScaler holds the WMA constants (defaults: the paper's).
	GPUScaler dvfs.Params
	// Fixed8Scaler runs tier 2 on the 8-bit fixed-point weight table of
	// the paper's §VI on-chip implementation sketch instead of float64.
	Fixed8Scaler bool
	// SMScaling additionally power-gates stream multiprocessors every
	// scaling interval (dvfs.SMPolicy) — the core-count-throttling
	// comparator from the paper's related work ([9], [12]). It only
	// affects energy on devices with PowerParams.CoreGatable > 0.
	SMScaling bool
	// CPUGovernor drives the processor P-state when tier 2 is active.
	// Nil selects the Linux ondemand governor, as in the paper.
	CPUGovernor governor.Policy
	// CPUGovernorInterval is the governor's sampling period.
	CPUGovernorInterval time.Duration

	// Division holds tier 1's parameters (step, initial ratio, safeguard).
	Division division.Config

	// DivisionPolicy overrides tier 1's strategy entirely (nil uses the
	// paper's step heuristic configured by Division). This is the
	// integration point §V-B mentions for more sophisticated division
	// algorithms, e.g. division.Qilin's adaptive mapping.
	DivisionPolicy division.Policy

	// Iterations overrides the profile's default iteration count when > 0.
	Iterations int

	// SpinWait models the synchronous CUDA communication of the paper's
	// benchmarks: while the GPU computes and the CPU has nothing left, one
	// CPU core spins at 100% utilization. Disabling it models ideal
	// blocking waits.
	SpinWait bool

	// InitialLevels overrides the starting clock levels. For modes
	// without tier 2 the levels persist for the whole run, which is how
	// the fixed-frequency sweeps of the paper's Fig. 1 are produced.
	// Nil keeps the mode's default (peak for non-scaling modes, lowest
	// for scaling modes).
	InitialLevels *Levels

	// StaticRatio pins the CPU share of every iteration without tier 1 —
	// the paper's static-division sweeps (Fig. 2 and §VII-B's
	// optimality study). Only meaningful for modes without dynamic
	// division; must be in [0,1].
	StaticRatio *float64

	// SensorFilter, if non-nil, transforms the GPU utilization readings
	// before they reach the scaler. It exists for fault injection —
	// noisy or dropped nvidia-smi samples — in robustness studies.
	SensorFilter func(uCore, uMem float64) (float64, float64)

	// ActuatorFilter, if non-nil, transforms the scaler's decision before
	// it is enforced on the device. It exists for fault injection —
	// stuck or clamped clock actuators (a flaky nvidia-settings) — in
	// robustness studies. The scaler keeps learning from real
	// utilizations; only the enforcement is perturbed.
	ActuatorFilter func(d dvfs.Decision) dvfs.Decision

	// FaultPlan, when non-nil and not Zero, injects the deterministic
	// sensor, actuator, meter and straggler faults of internal/faultinject
	// and arms the hardened recovery paths (hold-last-good, retry with
	// backoff, watchdog failsafe — see Recovery). Unlike SensorFilter and
	// ActuatorFilter the plan is pure data, so faulty runs stay cacheable:
	// the run cache fingerprints the plan into the point key. A nil or
	// Zero plan leaves the control loop byte-identical to a build without
	// fault injection.
	FaultPlan *faultinject.Plan

	// Recovery tunes the hardened recovery paths armed by FaultPlan. The
	// zero value selects the documented defaults.
	Recovery RecoveryConfig

	// OnDVFS, if non-nil, observes every tier 2 decision.
	OnDVFS func(at time.Duration, uCore, uMem float64, d dvfs.Decision)
	// OnCPUGovernor, if non-nil, observes every CPU governor decision.
	OnCPUGovernor func(at time.Duration, util float64, level int)
	// OnIteration, if non-nil, observes every completed iteration.
	OnIteration func(IterationStats)
}

// Levels names a clock operating point across the machine's domains.
type Levels struct {
	Core, Mem, CPU int
}

// RecoveryConfig tunes the hardened control paths used when a fault plan
// is armed. Zero fields take the dvfs.GuardConfig defaults.
type RecoveryConfig struct {
	// WatchdogK is the consecutive-transition-failure count that trips
	// the watchdog onto the failsafe (peak) levels. Default 3.
	WatchdogK int
	// BackoffMax caps the transition-retry backoff in epochs. Default 8.
	BackoffMax int
	// FailsafeHold is how many epochs the failsafe levels are pinned
	// after a watchdog trip. Default 8.
	FailsafeHold int
}

// Validate reports the first problem with the configuration, if any.
func (c *RecoveryConfig) Validate() error {
	g := dvfs.GuardConfig{WatchdogK: c.WatchdogK, BackoffMax: c.BackoffMax, FailsafeHold: c.FailsafeHold}
	return g.Validate()
}

// guardConfig builds the dvfs guard configuration for the given failsafe.
func (c *RecoveryConfig) guardConfig(failsafe dvfs.Decision) dvfs.GuardConfig {
	return dvfs.GuardConfig{
		WatchdogK:    c.WatchdogK,
		BackoffMax:   c.BackoffMax,
		FailsafeHold: c.FailsafeHold,
		Failsafe:     failsafe,
	}
}

// RecoveryCounts tallies the recovery actions the hardened control paths
// took, summed over the GPU guard, the CPU guard, and the hardened CPU
// governor.
type RecoveryCounts struct {
	// HeldSamples is sensor samples replaced by the last good reading.
	HeldSamples uint64
	// Retries is frequency-transition attempts re-issued after a failure.
	Retries uint64
	// DeferredApplies is delayed transitions that eventually landed.
	DeferredApplies uint64
	// WatchdogTrips is watchdog activations onto the failsafe levels.
	WatchdogTrips uint64
}

// Total returns the number of recovery actions across all kinds.
func (c RecoveryCounts) Total() uint64 {
	return c.HeldSamples + c.Retries + c.DeferredApplies + c.WatchdogTrips
}

// Sub returns the per-kind difference c − earlier, for windowed counts.
func (c RecoveryCounts) Sub(earlier RecoveryCounts) RecoveryCounts {
	return RecoveryCounts{
		HeldSamples:     c.HeldSamples - earlier.HeldSamples,
		Retries:         c.Retries - earlier.Retries,
		DeferredApplies: c.DeferredApplies - earlier.DeferredApplies,
		WatchdogTrips:   c.WatchdogTrips - earlier.WatchdogTrips,
	}
}

// DefaultConfig returns the paper's settings for the given mode.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:                mode,
		DVFSInterval:        3 * time.Second,
		GPUScaler:           dvfs.DefaultParams(),
		CPUGovernorInterval: time.Second,
		Division:            division.DefaultConfig(),
		SpinWait:            true,
	}
}

// Validate reports the first problem with the configuration, if any.
func (c *Config) Validate() error {
	if c.Mode < Baseline || c.Mode > Holistic {
		return fmt.Errorf("core: unknown mode %d", int(c.Mode))
	}
	if c.Mode.scales() {
		if c.DVFSInterval <= 0 {
			return fmt.Errorf("core: DVFSInterval must be positive")
		}
		if c.CPUGovernorInterval <= 0 {
			return fmt.Errorf("core: CPUGovernorInterval must be positive")
		}
		if err := c.GPUScaler.Validate(); err != nil {
			return err
		}
	}
	if c.Mode.divides() && c.DivisionPolicy == nil {
		if err := c.Division.Validate(); err != nil {
			return err
		}
	}
	if c.Iterations < 0 {
		return fmt.Errorf("core: Iterations must be non-negative")
	}
	if c.StaticRatio != nil {
		if c.Mode.divides() {
			return fmt.Errorf("core: StaticRatio conflicts with dynamic division in mode %v", c.Mode)
		}
		if *c.StaticRatio < 0 || *c.StaticRatio > 1 {
			return fmt.Errorf("core: StaticRatio = %v, must be in [0,1]", *c.StaticRatio)
		}
	}
	if c.FaultPlan != nil {
		if err := c.FaultPlan.Validate(); err != nil {
			return err
		}
	}
	if err := c.Recovery.Validate(); err != nil {
		return err
	}
	return nil
}

// IterationStats describes one completed iteration.
type IterationStats struct {
	Index int
	// R is the CPU share in force during the iteration.
	R float64
	// TC and TG are the CPU-side and GPU-side completion times measured
	// from the iteration start. TG includes the host→device transfer, as
	// the GPU pipeline cannot start without it.
	TC, TG time.Duration
	// WallTime is the iteration's total duration, max(TC, TG).
	WallTime time.Duration
	// Energy is the whole-system energy spent during the iteration;
	// EnergyGPU and EnergyCPU split it by measurement boundary.
	Energy    units.Energy
	EnergyGPU units.Energy
	EnergyCPU units.Energy
	// CoreLevel and MemLevel are the GPU levels at iteration end.
	CoreLevel, MemLevel int
	// CPULevel is the processor P-state at iteration end.
	CPULevel int
	// Faults counts the faults injected during the iteration by class
	// (zero unless a fault plan is armed).
	Faults faultinject.Counts
	// Recoveries counts the recovery actions the hardened control paths
	// took during the iteration (zero unless a fault plan is armed).
	Recoveries RecoveryCounts
}

// Result summarizes a framework run.
type Result struct {
	Workload string
	Mode     Mode

	Iterations []IterationStats

	TotalTime time.Duration
	Energy    units.Energy
	EnergyGPU units.Energy
	EnergyCPU units.Energy

	// SpinTime and SpinEnergy cover CPU busy-waiting on the GPU, the
	// quantities the paper's Fig. 6c emulation substitutes.
	SpinTime   time.Duration
	SpinEnergy units.Energy

	// FinalRatio is the division ratio after the last iteration.
	FinalRatio float64
	// DivisionHistory is tier 1's decision log (empty unless dividing).
	DivisionHistory []division.Observation
	// DVFSSteps counts tier 2 decisions taken.
	DVFSSteps int

	// Faults totals the faults injected over the run by class (zero
	// unless a fault plan was armed).
	Faults faultinject.Counts
	// Recoveries totals the recovery actions the hardened control paths
	// took over the run (zero unless a fault plan was armed).
	Recoveries RecoveryCounts
}

// AveragePower returns the run's mean system power.
func (r *Result) AveragePower() units.Power {
	return r.Energy.Div(r.TotalTime)
}

// EmulatedEnergyCPUThrottled reapplies the paper's Fig. 6c emulation: CPU
// energy during provably idle spin-waits is replaced by idle energy at the
// lowest P-state, modelling a CPU that could be throttled during
// asynchronous GPU phases.
func (r *Result) EmulatedEnergyCPUThrottled(idleAtLowest units.Power) units.Energy {
	return r.Energy - r.SpinEnergy + idleAtLowest.Over(r.SpinTime)
}

// Run executes the profile on the machine under cfg and returns the result.
// The machine must be freshly assembled (devices idle); Run panics
// otherwise, because reusing a half-consumed machine silently corrupts the
// energy accounting.
func Run(m *testbed.Machine, p *workload.Profile, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m.GPU.Busy() || m.CPU.Busy() {
		panic("core: Run on a busy machine")
	}
	metricRunsStarted.Inc()
	f := &framework{machine: m, profile: p, cfg: cfg}
	return f.run()
}

// framework carries one run's mutable state.
type framework struct {
	machine *testbed.Machine
	profile *workload.Profile
	cfg     Config

	divider division.Policy
	scaler  *dvfs.Scaler
	cpuGov  governor.Policy

	// Fault-injection state, all nil/zero unless a non-Zero FaultPlan is
	// armed. The fault-free path never touches any of it beyond nil checks.
	injector *faultinject.Injector
	gpuGuard *dvfs.Guard
	cpuGuard *dvfs.Guard
	hardGov  *governor.Hardened
	gpuGate  func() (dvfs.TransitionResult, int)
	cpuGate  func() (dvfs.TransitionResult, int)
	// Totals at the start of the current iteration, for per-iteration
	// deltas.
	faultsAtIter faultinject.Counts
	recovAtIter  RecoveryCounts

	ratio      float64
	iterations int

	iterIndex  int
	iterStart  time.Duration
	iterStartE testbed.EnergySnapshot
	cpuDoneAt  time.Duration
	gpuDoneAt  time.Duration
	cpuPending bool
	gpuPending bool
	result     *Result
	dvfsTicker *sim.Ticker
	govTicker  *sim.Ticker
}

func (f *framework) run() (*Result, error) {
	m := f.machine
	cfg := f.cfg

	f.iterations = f.profile.Iterations
	if cfg.Iterations > 0 {
		f.iterations = cfg.Iterations
	}
	f.result = &Result{Workload: f.profile.Name, Mode: cfg.Mode}

	// Arm fault injection. A nil or Zero plan arms nothing: the control
	// loop below then follows the exact fault-free path (the guards and
	// gates stay nil), preserving the zero-cost-off contract.
	if cfg.FaultPlan != nil && !cfg.FaultPlan.Zero() {
		f.injector = faultinject.New(*cfg.FaultPlan)
		f.gpuGate = func() (dvfs.TransitionResult, int) {
			return gateResult(f.injector.GPUTransition())
		}
		f.cpuGate = func() (dvfs.TransitionResult, int) {
			return gateResult(f.injector.CPUTransition())
		}
	}

	// Initial clocks: modes without tier 2 pin everything at peak (the
	// Rodinia default / best-performance configuration); modes with
	// tier 2 start from the card's default lowest levels and let the
	// scaler ramp up, as in the paper's Fig. 5 runs. The CPU mirrors it.
	gpu, cpu := m.GPU, m.CPU
	switch {
	case cfg.InitialLevels != nil:
		l := cfg.InitialLevels
		if l.Core < 0 || l.Core >= len(gpu.CoreLevels()) ||
			l.Mem < 0 || l.Mem >= len(gpu.MemLevels()) ||
			l.CPU < 0 || l.CPU >= cpu.Levels() {
			return nil, fmt.Errorf("core: InitialLevels %+v out of range", *l)
		}
		gpu.SetLevels(l.Core, l.Mem)
		cpu.SetLevel(l.CPU)
	case cfg.Mode.scales():
		gpu.SetLevels(0, 0)
		cpu.SetLevel(0)
	default:
		gpu.SetLevels(len(gpu.CoreLevels())-1, len(gpu.MemLevels())-1)
		cpu.SetLevel(cpu.Levels() - 1)
	}

	// Tier 1 setup.
	switch {
	case cfg.Mode.divides():
		if cfg.DivisionPolicy != nil {
			f.divider = cfg.DivisionPolicy
		} else {
			f.divider = division.New(cfg.Division)
		}
		f.ratio = f.divider.Ratio()
	case cfg.StaticRatio != nil:
		f.ratio = *cfg.StaticRatio
	default:
		f.ratio = 0 // all work on the GPU
	}

	// Tier 2 setup.
	if cfg.Mode.scales() {
		if cfg.Fixed8Scaler {
			f.scaler = dvfs.NewScalerFixed8(gpu.CoreLevels(), gpu.MemLevels(), cfg.GPUScaler)
		} else {
			f.scaler = dvfs.NewScaler(gpu.CoreLevels(), gpu.MemLevels(), cfg.GPUScaler)
		}
		f.cpuGov = cfg.CPUGovernor
		if f.cpuGov == nil {
			f.cpuGov = governor.NewOndemand()
		}
		if f.injector != nil {
			// Harden both control loops: guards gate every transition and
			// hold-last-good covers dropped samples; the failsafe is the
			// peak (performance-safe) operating point of each domain.
			f.gpuGuard = dvfs.NewGuard(
				cfg.Recovery.guardConfig(dvfs.Decision{
					CoreLevel: len(gpu.CoreLevels()) - 1,
					MemLevel:  len(gpu.MemLevels()) - 1,
				}),
				dvfs.Decision{CoreLevel: gpu.CoreLevel(), MemLevel: gpu.MemLevel()})
			f.cpuGuard = dvfs.NewGuard(
				cfg.Recovery.guardConfig(dvfs.Decision{CoreLevel: cpu.Levels() - 1}),
				dvfs.Decision{CoreLevel: cpu.Level()})
			f.hardGov = governor.Harden(f.cpuGov)
			f.cpuGov = f.hardGov
		}
		var smPolicy *dvfs.SMPolicy
		if cfg.SMScaling {
			smPolicy = dvfs.NewSMPolicy(gpu.Config().SMs)
		}
		lastCnt := gpu.Counters()
		f.dvfsTicker = m.Engine.Every(cfg.DVFSInterval, "tier2:gpu-dvfs", func() {
			cnt := gpu.Counters()
			w := cnt.Since(lastCnt)
			lastCnt = cnt
			uc, um := w.CoreUtil, w.MemUtil
			var meterFault faultinject.MeterFault
			if f.injector != nil {
				// The meter's fate is drawn every epoch, observed or not,
				// so fault counts never depend on who is watching.
				meterFault = f.injector.Meter()
				uc, um = f.injector.GPUSensor(uc, um)
			}
			if cfg.SensorFilter != nil {
				uc, um = cfg.SensorFilter(uc, um)
			}
			held := false
			if f.gpuGuard != nil {
				uc, um, held = f.gpuGuard.Sample(uc, um)
			}
			if smPolicy != nil {
				gpu.SetActiveSMs(smPolicy.Next(uc, gpu.ActiveSMs()))
			}
			d := f.scaler.Step(uc, um)
			if cfg.ActuatorFilter != nil {
				d = cfg.ActuatorFilter(d)
				nc, nm := len(gpu.CoreLevels()), len(gpu.MemLevels())
				d.CoreLevel = clampInt(d.CoreLevel, 0, nc-1)
				d.MemLevel = clampInt(d.MemLevel, 0, nm-1)
			}
			if f.gpuGuard != nil {
				d = f.gpuGuard.Step(d, f.gpuGate)
			}
			gpu.SetLevels(d.CoreLevel, d.MemLevel)
			f.result.DVFSSteps++
			if cfg.OnDVFS != nil {
				cfg.OnDVFS(m.Engine.Now(), w.CoreUtil, w.MemUtil, d)
			}
			// Flight recorder: one structured record per epoch. The
			// nil check is the entire cost when recording is off; the
			// record carries exactly what the controller saw and did,
			// so a bad decision can be audited after the fact.
			if rec := telemetry.Recorder(); rec != nil {
				power := m.SystemPower().Watts()
				var faults uint64
				failsafe := false
				if f.injector != nil {
					power = f.injector.ApplyMeter(meterFault, power)
					faults = f.injector.Counts().Total()
					failsafe = f.gpuGuard.InFailsafe()
				}
				rec.Record(telemetry.EpochRecord{
					Workload:  f.profile.Name,
					Mode:      cfg.Mode.String(),
					Epoch:     f.result.DVFSSteps - 1,
					At:        m.Engine.Now(),
					UCore:     uc,
					UMem:      um,
					CoreLevel: d.CoreLevel,
					MemLevel:  d.MemLevel,
					CoreMHz:   gpu.CoreLevels()[d.CoreLevel].MHz(),
					MemMHz:    gpu.MemLevels()[d.MemLevel].MHz(),
					CPULevel:  cpu.Level(),
					Ratio:     f.ratio,
					PowerW:    power,
					Faults:    faults,
					Held:      held,
					Failsafe:  failsafe,
				})
			}
		})
		f.govTicker = m.Engine.Every(cfg.CPUGovernorInterval, "tier2:cpu-governor", func() {
			u := cpu.MaxCoreUtilization()
			if f.injector != nil {
				u = f.injector.CPUSensor(u)
			}
			next := f.cpuGov.Next(u, cpu.Level(), cpu.Levels())
			if f.cpuGuard != nil {
				// The guard gates the P-state write like a GPU transition;
				// the unused memory domain stays at level 0.
				next = f.cpuGuard.Step(dvfs.Decision{CoreLevel: next}, f.cpuGate).CoreLevel
			}
			cpu.SetLevel(next)
			if cfg.OnCPUGovernor != nil {
				cfg.OnCPUGovernor(m.Engine.Now(), u, next)
			}
		})
	}

	startSnap := m.Snapshot()
	cpuCnt0 := cpu.Counters()

	f.startIteration()
	m.Engine.Run()

	if f.dvfsTicker != nil {
		f.dvfsTicker.Stop()
	}
	if f.govTicker != nil {
		f.govTicker.Stop()
	}

	endSnap := m.Snapshot()
	cpuCnt1 := cpu.Counters()
	r := f.result
	r.TotalTime = endSnap.At - startSnap.At
	r.EnergyGPU = endSnap.GPU - startSnap.GPU
	r.EnergyCPU = endSnap.CPU - startSnap.CPU
	r.Energy = r.EnergyGPU + r.EnergyCPU
	r.SpinTime = cpuCnt1.SpinTime - cpuCnt0.SpinTime
	r.SpinEnergy = cpuCnt1.SpinEnergy - cpuCnt0.SpinEnergy
	r.FinalRatio = f.ratio
	if f.divider != nil {
		r.DivisionHistory = f.divider.History()
	}
	if f.injector != nil {
		r.Faults = f.injector.Counts()
		r.Recoveries = f.recoverySnapshot()
	}
	return r, nil
}

// gateResult adapts a faultinject transition verdict to the guard's gate
// contract.
func gateResult(o faultinject.TransitionOutcome, delay int) (dvfs.TransitionResult, int) {
	switch o {
	case faultinject.TransitionRejected:
		return dvfs.TransitionFailed, 0
	case faultinject.TransitionDelayed:
		return dvfs.TransitionDeferred, delay
	default:
		return dvfs.TransitionApplied, 0
	}
}

// recoverySnapshot sums the recovery counters across the hardened paths.
func (f *framework) recoverySnapshot() RecoveryCounts {
	var rc RecoveryCounts
	for _, g := range []*dvfs.Guard{f.gpuGuard, f.cpuGuard} {
		if g == nil {
			continue
		}
		c := g.Counts()
		rc.HeldSamples += c.HeldSamples
		rc.Retries += c.Retries
		rc.DeferredApplies += c.DeferredApplies
		rc.WatchdogTrips += c.WatchdogTrips
	}
	if f.hardGov != nil {
		rc.HeldSamples += f.hardGov.Holds()
	}
	return rc
}

// startIteration launches both sides of iteration f.iterIndex.
func (f *framework) startIteration() {
	m := f.machine
	f.iterStart = m.Engine.Now()
	f.iterStartE = m.Snapshot()
	f.cpuPending, f.gpuPending = true, true

	r := f.ratio
	gpuUnits := (1 - r) * workload.UnitsPerIteration
	cpuUnits := r * workload.UnitsPerIteration

	// Repartitioning traffic when the ratio moved since last iteration.
	if f.iterIndex > 0 && f.divider != nil {
		h := f.divider.History()
		last := h[len(h)-1]
		if bytes := f.profile.RepartitionTraffic(last.R, last.NewR); bytes > 0 {
			m.Bus.Transfer(bytes, fmt.Sprintf("%s:iter%d:repartition", f.profile.Name, f.iterIndex), nil)
		}
	}

	// GPU side: host→device transfer, then the kernel. A straggler
	// iteration inflates the kernel's work (it runs long) but not the
	// transfer (no extra data moves).
	if gpuUnits > 1e-9 {
		kernelUnits := gpuUnits
		if f.injector != nil {
			kernelUnits *= f.injector.Straggler()
		}
		name := fmt.Sprintf("%s:iter%d", f.profile.Name, f.iterIndex)
		k := f.profile.GPUKernel(name, kernelUnits)
		k.OnComplete = func() { f.sideDone(&f.gpuPending, &f.gpuDoneAt) }
		xfer := f.profile.TransferBytes(gpuUnits)
		m.Bus.Transfer(xfer, name+":h2d", func() { m.GPU.Submit(k) })
	} else {
		f.sideDone(&f.gpuPending, &f.gpuDoneAt)
	}

	// CPU side.
	if cpuUnits > 1e-9 {
		m.CPU.Run(&cpusim.Job{
			Name:       fmt.Sprintf("%s:iter%d:cpu", f.profile.Name, f.iterIndex),
			Ops:        f.profile.CPUOps(cpuUnits),
			OnComplete: func() { f.sideDone(&f.cpuPending, &f.cpuDoneAt) },
		})
	} else {
		f.sideDone(&f.cpuPending, &f.cpuDoneAt)
	}

	f.updateSpin()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// sideDone marks one side complete and ends the iteration when both are.
func (f *framework) sideDone(pending *bool, doneAt *time.Duration) {
	if !*pending {
		return
	}
	*pending = false
	*doneAt = f.machine.Engine.Now()
	if !f.cpuPending && !f.gpuPending {
		f.endIteration()
	} else {
		f.updateSpin()
	}
}

// updateSpin keeps one CPU core busy-waiting whenever the CPU side is done
// but the GPU side is not — the synchronous-communication behaviour that
// pins CPU utilization at 100% in the paper's benchmarks.
func (f *framework) updateSpin() {
	if !f.cfg.SpinWait {
		return
	}
	cpu := f.machine.CPU
	if f.gpuPending && !f.cpuPending {
		// CPU side finished (or has no work): one core busy-waits on the
		// synchronous GPU completion.
		cpu.SetSpin(1)
	} else {
		cpu.SetSpin(0)
	}
}

func (f *framework) endIteration() {
	m := f.machine
	f.machine.CPU.SetSpin(0)

	stats := IterationStats{
		Index:     f.iterIndex,
		R:         f.ratio,
		TC:        f.cpuDoneAt - f.iterStart,
		TG:        f.gpuDoneAt - f.iterStart,
		WallTime:  m.Engine.Now() - f.iterStart,
		CoreLevel: m.GPU.CoreLevel(),
		MemLevel:  m.GPU.MemLevel(),
		CPULevel:  m.CPU.Level(),
	}
	cur := m.Snapshot()
	stats.EnergyGPU = cur.GPU - f.iterStartE.GPU
	stats.EnergyCPU = cur.CPU - f.iterStartE.CPU
	stats.Energy = stats.EnergyGPU + stats.EnergyCPU
	if f.injector != nil {
		curF := f.injector.Counts()
		stats.Faults = curF.Sub(f.faultsAtIter)
		f.faultsAtIter = curF
		curR := f.recoverySnapshot()
		stats.Recoveries = curR.Sub(f.recovAtIter)
		f.recovAtIter = curR
	}
	f.result.Iterations = append(f.result.Iterations, stats)
	metricIterations.Inc()
	if f.cfg.OnIteration != nil {
		f.cfg.OnIteration(stats)
	}

	if f.divider != nil {
		f.ratio = f.divider.Observe(stats.TC, stats.TG)
	}

	f.iterIndex++
	if f.iterIndex < f.iterations {
		f.startIteration()
		return
	}
	// Run complete: silence tier 2 and stop the engine so callers with
	// their own periodic events (meters, monitors) regain control.
	if f.dvfsTicker != nil {
		f.dvfsTicker.Stop()
	}
	if f.govTicker != nil {
		f.govTicker.Stop()
	}
	f.machine.Engine.Stop()
}
