package core

import (
	"reflect"
	"testing"
	"time"

	"greengpu/internal/faultinject"
	"greengpu/internal/testbed"
	"greengpu/internal/workload"
)

// TestNilAndZeroPlansAreIdentical: a nil FaultPlan and the Zero plan must
// both leave the run bit-identical to the legacy fault-free path.
func TestNilAndZeroPlansAreIdentical(t *testing.T) {
	base := runMode(t, "kmeans", Holistic, nil)
	zero := runMode(t, "kmeans", Holistic, func(c *Config) {
		c.FaultPlan = &faultinject.Plan{}
	})
	if !reflect.DeepEqual(base, zero) {
		t.Fatal("Zero fault plan changed the result vs nil plan")
	}
	if base.Faults.Total() != 0 || base.Recoveries.Total() != 0 {
		t.Fatalf("fault-free run reported faults %+v recoveries %+v", base.Faults, base.Recoveries)
	}
}

// TestFaultRunsAreDeterministic: the same plan and configuration replay to
// deeply equal results — fault sequences are pure functions of the seed.
func TestFaultRunsAreDeterministic(t *testing.T) {
	plan := faultinject.Default(99)
	mut := func(c *Config) { c.FaultPlan = &plan }
	a := runMode(t, "kmeans", Holistic, mut)
	b := runMode(t, "kmeans", Holistic, mut)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two runs under the same fault plan diverged")
	}
	if a.Faults.Total() == 0 {
		t.Fatal("default plan injected no faults")
	}
}

// TestWatchdogFiresUnderTotalTransitionFailure: with every GPU transition
// rejected, the watchdog must trip after K consecutive failures, pin the
// failsafe levels, and the run must still complete without error.
func TestWatchdogFiresUnderTotalTransitionFailure(t *testing.T) {
	plan := faultinject.Plan{Seed: 1, TransitionRejectRate: 1}
	res := runMode(t, "kmeans", Holistic, func(c *Config) {
		c.FaultPlan = &plan
		c.Recovery = RecoveryConfig{WatchdogK: 3, FailsafeHold: 4}
	})
	if res.Recoveries.WatchdogTrips == 0 {
		t.Fatal("watchdog never tripped with 100% transition rejection")
	}
	if res.Faults.TransRejected == 0 {
		t.Fatal("no rejected transitions counted")
	}
	// Scaling modes start at the lowest levels; every honest transition
	// fails, so only watchdog failsafes can move the clocks. The final
	// levels must be either the initial lowest or the failsafe peak.
	last := res.Iterations[len(res.Iterations)-1]
	gpu := testbed.GeForce8800GTX()
	atLowest := last.CoreLevel == 0 && last.MemLevel == 0
	atPeak := last.CoreLevel == len(gpu.CoreLevels)-1 && last.MemLevel == len(gpu.MemLevels)-1
	if !atLowest && !atPeak {
		t.Fatalf("final levels (%d,%d): transitions leaked past a fully rejecting actuator",
			last.CoreLevel, last.MemLevel)
	}
}

// TestDefaultPlanCompletesEveryWorkload: the headline resilience claim —
// under the moderate all-classes plan, hardened Holistic finishes every
// Rodinia workload without error and still does real work.
func TestDefaultPlanCompletesEveryWorkload(t *testing.T) {
	profiles, err := workload.Rodinia(testbed.GeForce8800GTX(), testbed.PhenomIIX2())
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range profiles {
		plan := faultinject.Default(uint64(100 + i))
		cfg := DefaultConfig(Holistic)
		cfg.FaultPlan = &plan
		res, err := Run(testbed.New(), p, cfg)
		if err != nil {
			t.Fatalf("%s: run failed under default fault plan: %v", p.Name, err)
		}
		if res.Energy <= 0 || res.TotalTime <= 0 {
			t.Fatalf("%s: degenerate result under faults: %+v", p.Name, res)
		}
		if res.Faults.Total() == 0 {
			t.Errorf("%s: default plan injected nothing", p.Name)
		}
	}
}

// TestIterationFaultCountsSumToRunTotals: per-iteration deltas must
// partition the run totals exactly.
func TestIterationFaultCountsSumToRunTotals(t *testing.T) {
	plan := faultinject.Default(7)
	res := runMode(t, "hotspot", Holistic, func(c *Config) { c.FaultPlan = &plan })
	var f faultinject.Counts
	var r RecoveryCounts
	for _, it := range res.Iterations {
		f.GPUSensorNoisy += it.Faults.GPUSensorNoisy
		f.GPUSensorDropped += it.Faults.GPUSensorDropped
		f.GPUSensorStale += it.Faults.GPUSensorStale
		f.CPUSensorNoisy += it.Faults.CPUSensorNoisy
		f.CPUSensorDropped += it.Faults.CPUSensorDropped
		f.CPUSensorStale += it.Faults.CPUSensorStale
		f.TransRejected += it.Faults.TransRejected
		f.TransDelayed += it.Faults.TransDelayed
		f.MeterDropouts += it.Faults.MeterDropouts
		f.MeterSpikes += it.Faults.MeterSpikes
		f.Stragglers += it.Faults.Stragglers
		r.HeldSamples += it.Recoveries.HeldSamples
		r.Retries += it.Recoveries.Retries
		r.DeferredApplies += it.Recoveries.DeferredApplies
		r.WatchdogTrips += it.Recoveries.WatchdogTrips
	}
	// Faults injected after the last iteration ends (none: tickers stop
	// with the run) would show up here as a mismatch.
	if f != res.Faults {
		t.Fatalf("iteration fault sums %+v != run totals %+v", f, res.Faults)
	}
	if r != res.Recoveries {
		t.Fatalf("iteration recovery sums %+v != run totals %+v", r, res.Recoveries)
	}
}

// TestStragglerStretchesIterations: a guaranteed straggler on every
// iteration must lengthen the run relative to fault-free, and must count.
func TestStragglerStretchesIterations(t *testing.T) {
	base := runMode(t, "kmeans", Baseline, nil)
	plan := faultinject.Plan{Seed: 3, StragglerRate: 1, StragglerFactor: 2}
	slow := runMode(t, "kmeans", Baseline, func(c *Config) { c.FaultPlan = &plan })
	if slow.TotalTime <= base.TotalTime {
		t.Fatalf("stragglers did not stretch the run: %v vs %v", slow.TotalTime, base.TotalTime)
	}
	if got, want := slow.Faults.Stragglers, uint64(len(slow.Iterations)); got != want {
		t.Fatalf("Stragglers = %d, want one per iteration (%d)", got, want)
	}
}

// TestSensorDropsAreHeld: with every GPU sample dropped, hold-last-good
// must absorb every epoch (held samples == epochs) and the run completes.
func TestSensorDropsAreHeld(t *testing.T) {
	plan := faultinject.Plan{Seed: 5, GPUDropRate: 1}
	res := runMode(t, "kmeans", FreqScaling, func(c *Config) { c.FaultPlan = &plan })
	if res.Recoveries.HeldSamples == 0 {
		t.Fatal("no held samples with 100% sensor drop")
	}
	if res.Recoveries.HeldSamples != res.Faults.GPUSensorDropped {
		t.Fatalf("held %d samples but dropped %d", res.Recoveries.HeldSamples, res.Faults.GPUSensorDropped)
	}
}

// TestFaultFreeEpochPathAddsNoAllocations pins the zero-cost-off contract
// at the whole-run level: doubling the number of DVFS epochs (halving the
// interval) must not change the run's allocation count when no fault plan
// is armed — the per-epoch control path, including the fault-injection nil
// checks, is allocation-free.
func TestFaultFreeEpochPathAddsNoAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector runtime perturbs whole-run allocation counts")
	}
	p := profileByName(t, "kmeans")
	run := func(interval time.Duration) func() {
		return func() {
			cfg := DefaultConfig(Holistic)
			cfg.DVFSInterval = interval
			cfg.Iterations = 2
			if _, err := Run(testbed.New(), p, cfg); err != nil {
				t.Fatal(err)
			}
		}
	}
	few := testing.AllocsPerRun(10, run(3*time.Second))
	many := testing.AllocsPerRun(10, run(time.Second))
	if many > few {
		t.Fatalf("tripling DVFS epochs grew allocations %.0f → %.0f; the epoch path must be allocation-free", few, many)
	}
}
