package sweep

import (
	"context"
	"fmt"
	"time"

	"greengpu/internal/bus"
	"greengpu/internal/core"
	"greengpu/internal/cpusim"
	"greengpu/internal/faultinject"
	"greengpu/internal/gpusim"
	"greengpu/internal/parallel"
	"greengpu/internal/runcache"
	"greengpu/internal/sim"
	"greengpu/internal/telemetry"
	"greengpu/internal/testbed"
	"greengpu/internal/trace"
	"greengpu/internal/units"
	"greengpu/internal/workload"
)

// Package metrics (see docs/OBSERVABILITY.md). No-ops unless telemetry is
// enabled.
var (
	metricPoints = telemetry.NewCounter(telemetry.MetricSweepPoints,
		"Simulation points evaluated by the batch sweep engine.")
	metricFastPath = telemetry.NewCounter(telemetry.MetricSweepFastPath,
		"Sweep points served by the closed-form batch evaluator.")
	metricFallback = telemetry.NewCounter(telemetry.MetricSweepFallback,
		"Sweep points that fell back to a full per-point simulation.")
	metricBatches = telemetry.NewCounter(telemetry.MetricSweepBatches,
		"Sweep batches evaluated (Engine.Run calls).")
)

// Engine evaluates sweep specs against one set of device configurations
// and calibrated workloads. The zero value is not usable; fill every
// exported field (Jobs, Cache and FaultPlan are optional).
//
// An Engine is safe for concurrent use: the configurations and profiles
// are treated as immutable, and each batch builds its own shared tables.
type Engine struct {
	GPU      gpusim.Config
	CPU      cpusim.Config
	Bus      bus.Config
	Profiles []*workload.Profile

	// Jobs bounds how many points evaluate concurrently; 0 selects one
	// worker per CPU, 1 forces sequential execution. Results are
	// byte-identical for every value.
	Jobs int

	// Cache, when non-nil, memoizes eligible points under exactly the
	// runcache keys the per-point studies use, so sweeps and studies
	// share hits.
	Cache *runcache.Cache

	// FaultPlan, when non-nil, is the ambient chaos plan: points whose
	// configuration carries no plan of their own inject this one,
	// mirroring experiments.Env.
	FaultPlan *faultinject.Plan
}

// PointResult pairs a point with its run result.
type PointResult struct {
	Point
	Result *core.Result
	// Fast reports whether the closed-form batch evaluator produced the
	// result (false: full simulation, possibly via the run cache).
	Fast bool
}

// Expand resolves a spec into its ordered point list: workloads outermost,
// then the core ladder, then the memory ladder (draws replace the ladder).
// The order is part of the engine's determinism contract — results are
// returned in exactly this order at any Jobs value.
func (e *Engine) Expand(spec Spec) ([]Point, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	names := spec.Workloads
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		names = make([]string, len(e.Profiles))
		for i, p := range e.Profiles {
			names[i] = p.Name
		}
	}
	for _, n := range names {
		if _, err := workload.ByName(e.Profiles, n); err != nil {
			return nil, err
		}
	}

	if spec.Draws > 0 {
		pts := make([]Point, 0, len(names)*spec.Draws)
		for _, n := range names {
			for d := 0; d < spec.Draws; d++ {
				pts = append(pts, Point{Workload: n, Draw: d, Core: -1, Mem: -1, CPU: -1})
			}
		}
		return pts, nil
	}

	cores, err := resolveLadder(spec.CoreLevels, len(e.GPU.CoreLevels), "core")
	if err != nil {
		return nil, err
	}
	mems, err := resolveLadder(spec.MemLevels, len(e.GPU.MemLevels), "mem")
	if err != nil {
		return nil, err
	}
	cpuLvl := spec.CPULevel
	if cpuLvl == -1 {
		cpuLvl = len(e.CPU.PStates) - 1
	}
	if cpuLvl >= len(e.CPU.PStates) {
		return nil, fmt.Errorf("sweep: CPU P-state %d out of range [0,%d)", cpuLvl, len(e.CPU.PStates))
	}
	pts := make([]Point, 0, len(names)*len(cores)*len(mems))
	for _, n := range names {
		for _, c := range cores {
			for _, m := range mems {
				pts = append(pts, Point{Workload: n, Draw: -1, Core: c, Mem: m, CPU: cpuLvl})
			}
		}
	}
	return pts, nil
}

// resolveLadder checks explicit indices against the device ladder, or
// materializes the full ladder when none were given.
func resolveLadder(sel []int, n int, domain string) ([]int, error) {
	if sel == nil {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	for _, l := range sel {
		if l >= n {
			return nil, fmt.Errorf("sweep: %s level %d out of range [0,%d)", domain, l, n)
		}
	}
	return sel, nil
}

// baseConfig builds the batch's shared framework configuration — the
// exact shape the per-point studies use (core.DefaultConfig plus
// Iterations), so eligible points share their run-cache keys. The ambient
// chaos plan applies here; per-draw plans override it in config.
func (e *Engine) baseConfig(spec *Spec) core.Config {
	cfg := core.DefaultConfig(spec.Mode)
	cfg.Iterations = spec.Iterations
	if e.FaultPlan != nil {
		cfg.FaultPlan = e.FaultPlan
	}
	return cfg
}

// config specializes the batch's base configuration for one point.
func (e *Engine) config(spec *Spec, pt Point) core.Config {
	cfg := e.baseConfig(spec)
	var lv core.Levels
	specialize(&cfg, spec, pt, &lv)
	return cfg
}

// specialize pins a ladder point's initial levels, or installs a draw
// point's per-draw fault plan (which wins over the ambient one). lv is
// caller-provided storage for the levels, so the hot path's copy can live
// on its evaluator's stack.
func specialize(cfg *core.Config, spec *Spec, pt Point, lv *core.Levels) {
	if pt.Draw >= 0 {
		plan := faultinject.Default(parallel.TaskSeed(spec.Seed, pt.Draw))
		cfg.FaultPlan = &plan
	} else {
		*lv = core.Levels{Core: pt.Core, Mem: pt.Mem, CPU: pt.CPU}
		cfg.InitialLevels = lv
	}
}

// Batch is one batch's shared precomputation — the validated device level
// tables plus the per-workload phase columns — detached from any particular
// spec so external callers (the fleet engine) can evaluate ad-hoc
// configurations through the same fast-or-fallback machinery Engine.Run
// uses. A Batch is immutable after construction and safe for concurrent
// use.
type Batch struct {
	e   *Engine
	gt  *gpusim.Tables
	ct  *cpusim.Tables
	wts map[string]*workloadTables
}

// deviceTables validates the bus and builds both devices' frequency-level
// tables — the spec-independent half of a batch's shared precomputation.
func (e *Engine) deviceTables() (*gpusim.Tables, *cpusim.Tables, error) {
	if err := e.Bus.Validate(); err != nil {
		return nil, nil, err
	}
	gt, err := gpusim.BuildTables(e.GPU)
	if err != nil {
		return nil, nil, err
	}
	ct, err := cpusim.BuildTables(e.CPU)
	if err != nil {
		return nil, nil, err
	}
	return gt, ct, nil
}

// NewBatch validates the engine's device configurations and precomputes
// the shared tables for the named workloads (every profile the engine
// knows when none are named).
func (e *Engine) NewBatch(names ...string) (*Batch, error) {
	gt, ct, err := e.deviceTables()
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		names = make([]string, len(e.Profiles))
		for i, p := range e.Profiles {
			names[i] = p.Name
		}
	}
	wts := make(map[string]*workloadTables, len(names))
	for _, n := range names {
		if _, ok := wts[n]; ok {
			continue
		}
		prof, err := workload.ByName(e.Profiles, n)
		if err != nil {
			return nil, err
		}
		wts[n] = newWorkloadTables(prof, gt, &e.Bus)
	}
	return &Batch{e: e, gt: gt, ct: ct, wts: wts}, nil
}

// Eval evaluates the named workload under one explicit configuration:
// closed form when the configuration is expressible, full simulation
// otherwise, through the run cache when one is attached and the
// configuration is cacheable. A nil cfg.FaultPlan inherits the engine's
// ambient plan, mirroring Engine.Run. The bool reports whether the
// closed-form evaluator produced the result.
func (b *Batch) Eval(name string, cfg core.Config) (*core.Result, bool, error) {
	e := b.e
	wt, ok := b.wts[name]
	if !ok {
		return nil, false, fmt.Errorf("sweep: workload %q not in batch", name)
	}
	if cfg.FaultPlan == nil && e.FaultPlan != nil {
		cfg.FaultPlan = e.FaultPlan
	}
	if err := cfg.Validate(); err != nil {
		return nil, false, err
	}
	fast := fastEligible(&cfg)
	metricPoints.Inc()
	if fast {
		metricFastPath.Inc()
	} else {
		metricFallback.Inc()
	}
	compute := func() (*core.Result, error) {
		if fast {
			return e.fastRun(wt, b.gt, b.ct, &cfg)
		}
		return core.Run(testbed.NewFrom(e.GPU, e.CPU, e.Bus), wt.prof, cfg)
	}
	if e.Cache == nil || !runcache.Cacheable(&cfg) {
		r, err := compute()
		return r, fast, err
	}
	key := runcache.KeyOf(&e.GPU, &e.CPU, &e.Bus, wt.prof, &cfg, "")
	v, err := e.Cache.Do(key, func() (runcache.Value, error) {
		r, err := compute()
		return runcache.Value{Result: r}, err
	})
	if err != nil {
		return nil, false, err
	}
	return v.Result, fast, nil
}

// Key returns the run-cache fingerprint the batch would use for the named
// workload under cfg (after inheriting the engine's ambient fault plan),
// or false when the configuration is not cacheable. External dedup layers
// group by this key so their groups collapse exactly when the cache would
// collapse them.
func (b *Batch) Key(name string, cfg core.Config) (runcache.Key, bool) {
	wt, ok := b.wts[name]
	if !ok {
		return runcache.Key{}, false
	}
	if cfg.FaultPlan == nil && b.e.FaultPlan != nil {
		cfg.FaultPlan = b.e.FaultPlan
	}
	if !runcache.Cacheable(&cfg) {
		return runcache.Key{}, false
	}
	return runcache.KeyOf(&b.e.GPU, &b.e.CPU, &b.e.Bus, wt.prof, &cfg, ""), true
}

// Run expands and evaluates the spec, returning results in Expand order.
// It is RunContext under a background context.
func (e *Engine) Run(spec Spec) ([]PointResult, error) {
	return e.RunContext(context.Background(), spec)
}

// RunContext is Run with request-scoped cancellation: when ctx is
// canceled, points that have not started are skipped, points already
// running complete (so an attached run cache never holds partial
// entries), and the error is ctx.Err(). The daemon routes client
// disconnects through this path.
func (e *Engine) RunContext(ctx context.Context, spec Spec) ([]PointResult, error) {
	pts, err := e.Expand(spec)
	if err != nil {
		return nil, err
	}
	gt, ct, err := e.deviceTables()
	if err != nil {
		return nil, err
	}
	wts := make(map[string]*workloadTables)
	for _, pt := range pts {
		if _, ok := wts[pt.Workload]; ok {
			continue
		}
		prof, err := workload.ByName(e.Profiles, pt.Workload)
		if err != nil {
			return nil, err
		}
		wts[pt.Workload] = newWorkloadTables(prof, gt, &e.Bus)
	}
	// A value batch, captured by value in the map closure: same allocation
	// profile as capturing the tables individually.
	b := Batch{e: e, gt: gt, ct: ct, wts: wts}
	base := e.baseConfig(&spec)
	if err := base.Validate(); err != nil {
		return nil, err
	}
	baseFast := fastEligible(&base)
	metricBatches.Inc()
	metricPoints.Add(uint64(len(pts)))
	return parallel.Map(ctx, pts,
		func(_ context.Context, _ int, pt Point) (PointResult, error) {
			return b.evalPoint(&spec, &base, baseFast, pt)
		}, parallel.Workers(e.Jobs))
}

// evalPoint evaluates one point: closed form when the configuration is
// expressible, full simulation otherwise, through the run cache when one
// is attached and the point is cacheable. Value receivers keep a
// stack-constructed batch out of the heap when closures capture it.
func (b Batch) evalPoint(spec *Spec, base *core.Config, baseFast bool, pt Point) (PointResult, error) {
	return b.evalPointWT(b.wts[pt.Workload], spec, base, baseFast, pt)
}

// evalPointWT is evalPoint against an explicit workload table — the form
// the predicted search uses, where tables are built lazily per workload
// instead of batched in the map.
func (b Batch) evalPointWT(wt *workloadTables, spec *Spec, base *core.Config, baseFast bool, pt Point) (PointResult, error) {
	e := b.e
	cfg := *base
	var lv core.Levels
	specialize(&cfg, spec, pt, &lv)
	// Per-draw plans (validated by core.Run on the fallback path) are the
	// only per-point deviation from the batch-validated base config.
	fast := baseFast && pt.Draw < 0
	if fast {
		metricFastPath.Inc()
	} else {
		metricFallback.Inc()
	}
	compute := func() (*core.Result, error) {
		if fast {
			return e.fastRun(wt, b.gt, b.ct, &cfg)
		}
		return core.Run(testbed.NewFrom(e.GPU, e.CPU, e.Bus), wt.prof, cfg)
	}
	if e.Cache == nil || !runcache.Cacheable(&cfg) {
		r, err := compute()
		return PointResult{Point: pt, Result: r, Fast: fast}, err
	}
	key := runcache.KeyOf(&e.GPU, &e.CPU, &e.Bus, wt.prof, &cfg, "")
	v, err := e.Cache.Do(key, func() (runcache.Value, error) {
		r, err := compute()
		return runcache.Value{Result: r}, err
	})
	if err != nil {
		return PointResult{}, err
	}
	return PointResult{Point: pt, Result: v.Result, Fast: fast}, nil
}

// fastEligible reports whether the closed-form evaluator expresses the
// configuration exactly: the baseline mode's event sequence with no
// dynamic control, no fault injection, and no observers. Everything else
// falls back to a full simulation.
func fastEligible(cfg *core.Config) bool {
	return cfg.Mode == core.Baseline &&
		(cfg.StaticRatio == nil || *cfg.StaticRatio == 0) &&
		(cfg.FaultPlan == nil || cfg.FaultPlan.Zero()) &&
		cfg.SensorFilter == nil &&
		cfg.ActuatorFilter == nil &&
		cfg.DivisionPolicy == nil &&
		cfg.CPUGovernor == nil &&
		cfg.OnDVFS == nil &&
		cfg.OnCPUGovernor == nil &&
		cfg.OnIteration == nil
}

// workloadTables is the per-workload shared precomputation of a batch:
// the host→device bus time and, per kernel phase, the per-domain busy
// times tabulated against each ladder (the separable halves of the phase
// timing model). Points that differ in one knob index the other domain's
// unchanged column — the incremental-recompute mechanism.
type workloadTables struct {
	prof    *workload.Profile
	busTime time.Duration // host→device transfer service time
	gamma   float64
	phases  []phaseTables
}

type phaseTables struct {
	stall float64
	tc    []time.Duration // core busy time per core level
	tm    []time.Duration // memory busy time per memory level
}

// newWorkloadTables precomputes the profile's batch tables, with exactly
// the arithmetic (and operation order) the live path uses in
// Profile.GPUKernel, Bus.TransferTime and GPU.startSegment.
func newWorkloadTables(prof *workload.Profile, gt *gpusim.Tables, b *bus.Config) *workloadTables {
	const gpuUnits = (1 - 0) * workload.UnitsPerIteration // baseline: r = 0
	xfer := prof.TransferBytes(gpuUnits)
	wt := &workloadTables{
		prof:    prof,
		busTime: b.Latency + b.Bandwidth.TransferTime(xfer),
		gamma:   gt.Gamma(),
		phases:  make([]phaseTables, len(prof.Phases)),
	}
	nc, nm := len(gt.CoreDenom), len(gt.MemDenom)
	for i, ph := range prof.Phases {
		u := gpuUnits * ph.Fraction
		ops := ph.OpsPerUnit * u
		bytes := ph.BytesPerUnit * u
		pt := phaseTables{
			stall: ph.StallPerUnit * u,
			tc:    make([]time.Duration, nc),
			tm:    make([]time.Duration, nm),
		}
		for c := 0; c < nc; c++ {
			pt.tc[c] = gt.CoreTime(ops, c)
		}
		for m := 0; m < nm; m++ {
			pt.tm[m] = gt.MemTime(bytes, m)
		}
		wt.phases[i] = pt
	}
	return wt
}

// fastRun replays the baseline event sequence in closed form, with the
// engine's exact accrual arithmetic (same operands, same order, same
// saturation rule), so the Result is byte-identical to core.Run on a fresh
// machine.
//
// Every baseline iteration is identical — same levels, same demands, same
// bus window — so the per-phase durations and energy increments are
// derived once per point and replayed per iteration as pure accumulation.
// The one thing that could differ between iterations is clock saturation
// near MaxTime; when the run could get anywhere near it, the evaluator
// uses the exact per-event loop instead.
func (e *Engine) fastRun(wt *workloadTables, gt *gpusim.Tables, ct *cpusim.Tables, cfg *core.Config) (*core.Result, error) {
	c := len(e.GPU.CoreLevels) - 1
	m := len(e.GPU.MemLevels) - 1
	cpuLvl := len(e.CPU.PStates) - 1
	if l := cfg.InitialLevels; l != nil {
		if l.Core < 0 || l.Core >= len(e.GPU.CoreLevels) ||
			l.Mem < 0 || l.Mem >= len(e.GPU.MemLevels) ||
			l.CPU < 0 || l.CPU >= len(e.CPU.PStates) {
			return nil, fmt.Errorf("core: InitialLevels %+v out of range", *l)
		}
		c, m, cpuLvl = l.Core, l.Mem, l.CPU
	}
	iters := wt.prof.Iterations
	if cfg.Iterations > 0 {
		iters = cfg.Iterations
	}
	if iters < 1 {
		iters = 1 // the framework loop always runs one iteration
	}

	cpuBusy := 0
	if cfg.SpinWait {
		cpuBusy = 1
	}
	pe := pointEval{
		core: c, mem: m, cpu: cpuLvl,
		idleP: gt.Power(c, m, 0, 0),
		cpuP:  ct.PowerAt(cpuLvl, cpuBusy),
		spin:  cfg.SpinWait,
	}

	// Per-point precompute: phase durations and energies at (c, m),
	// pulled from the batch's shared per-domain columns. A point with an
	// oversized phase list or a run long enough to approach the clock's
	// saturation range takes the per-event evaluator instead.
	exact := len(wt.phases) > len(pe.phases)
	span := wt.busTime
	if !exact {
		for p := range wt.phases {
			ph := &wt.phases[p]
			tc, tm := ph.tc[c], ph.tm[m]
			t := gpusim.UnifyPhaseTime(tc, tm, ph.stall, wt.gamma)
			if t <= 0 {
				continue // zero-length phase: completes without accrual
			}
			uc := units.Clamp(tc.Seconds()/t.Seconds(), 0, 1)
			um := units.Clamp(tm.Seconds()/t.Seconds(), 0, 1)
			pe.phases[pe.nPhases] = phaseEval{
				dt:     t,
				energy: gt.Power(c, m, uc, um).Over(t),
			}
			pe.nPhases++
			if t > sim.MaxTime-span {
				exact = true
				break
			}
			span += t
		}
	}
	if exact || (span > 0 && time.Duration(iters) > sim.MaxTime/span) {
		return e.fastRunExact(wt, gt, &pe, cfg, iters), nil
	}
	iterWall := span
	idleE := pe.idleP.Over(wt.busTime)
	cpuEIter := pe.cpuP.Over(span)

	res := newFastResult(wt.prof.Name, cfg.Mode, iters)
	var now time.Duration
	var gpuE, cpuE, spinE units.Energy
	var spinT time.Duration
	for i := 0; i < iters; i++ {
		startGPU, startCPU := gpuE, cpuE
		// Host→device transfer window: the GPU accrues it idle when the
		// kernel starts; then one accrual per positive-length phase.
		if wt.busTime > 0 {
			gpuE += idleE
		}
		for p := 0; p < pe.nPhases; p++ {
			gpuE += pe.phases[p].energy
		}
		// The CPU side has no work (r = 0): it accrues once per
		// iteration over the whole wall time, spinning one core when
		// SpinWait models the synchronous CUDA wait.
		if iterWall > 0 {
			cpuE += cpuEIter
			if pe.spin {
				spinT += iterWall
				spinE += cpuEIter
			}
		}
		now += iterWall
		st := &res.Iterations[i]
		st.Index = i
		st.TG = iterWall
		st.WallTime = iterWall
		st.CoreLevel = c
		st.MemLevel = m
		st.CPULevel = cpuLvl
		st.EnergyGPU = gpuE - startGPU
		st.EnergyCPU = cpuE - startCPU
		st.Energy = st.EnergyGPU + st.EnergyCPU
	}
	res.TotalTime = now
	res.EnergyGPU = gpuE
	res.EnergyCPU = cpuE
	res.Energy = res.EnergyGPU + res.EnergyCPU
	res.SpinTime = spinT
	res.SpinEnergy = spinE
	return res, nil
}

// pointEval is one point's evaluation state. The phase array is fixed-size
// so the whole struct lives on the evaluator's stack; profiles with more
// phases (none on the testbed) use the per-event evaluator.
type pointEval struct {
	core, mem, cpu int
	idleP          units.Power
	cpuP           units.Power
	spin           bool
	nPhases        int
	phases         [16]phaseEval
}

// phaseEval is one positive-length phase at the point's levels.
type phaseEval struct {
	dt     time.Duration
	energy units.Energy
}

// resultBuf backs a result and its iteration stats with one allocation.
type resultBuf struct {
	res   core.Result
	stats [4]core.IterationStats
}

// newFastResult allocates a result whose Iterations slice shares the
// result's allocation for runs short enough (the common case).
func newFastResult(name string, mode core.Mode, iters int) *core.Result {
	buf := &resultBuf{}
	buf.res.Workload = name
	buf.res.Mode = mode
	if iters <= len(buf.stats) {
		buf.res.Iterations = buf.stats[:iters:iters]
	} else {
		buf.res.Iterations = make([]core.IterationStats, iters)
	}
	return &buf.res
}

// fastRunExact is the saturation-safe evaluator: it advances the clock
// event by event with the engine's saturation rule (sim.AddTime for phase
// ends, the bus's plain add for transfer windows), re-deriving each
// phase's time and utilizations per iteration exactly as the device does.
func (e *Engine) fastRunExact(wt *workloadTables, gt *gpusim.Tables, pe *pointEval, cfg *core.Config, iters int) *core.Result {
	res := newFastResult(wt.prof.Name, cfg.Mode, iters)
	c, m := pe.core, pe.mem
	var now time.Duration
	var gpuE, cpuE, spinE units.Energy
	var spinT time.Duration
	for i := 0; i < iters; i++ {
		startGPU, startCPU := gpuE, cpuE
		iterStart := now
		busEnd := iterStart + wt.busTime
		if dt := busEnd - now; dt > 0 {
			gpuE += pe.idleP.Over(dt)
		}
		now = busEnd
		for p := range wt.phases {
			ph := &wt.phases[p]
			tc, tm := ph.tc[c], ph.tm[m]
			t := gpusim.UnifyPhaseTime(tc, tm, ph.stall, wt.gamma)
			if t <= 0 {
				continue
			}
			next := sim.AddTime(now, t)
			if dt := next - now; dt > 0 {
				uc := units.Clamp(tc.Seconds()/t.Seconds(), 0, 1)
				um := units.Clamp(tm.Seconds()/t.Seconds(), 0, 1)
				gpuE += gt.Power(c, m, uc, um).Over(dt)
			}
			now = next
		}
		iterWall := now - iterStart
		if iterWall > 0 {
			cpuEIter := pe.cpuP.Over(iterWall)
			cpuE += cpuEIter
			if pe.spin {
				spinT += iterWall
				spinE += cpuEIter
			}
		}
		st := &res.Iterations[i]
		st.Index = i
		st.TG = iterWall
		st.WallTime = iterWall
		st.CoreLevel = c
		st.MemLevel = m
		st.CPULevel = pe.cpu
		st.EnergyGPU = gpuE - startGPU
		st.EnergyCPU = cpuE - startCPU
		st.Energy = st.EnergyGPU + st.EnergyCPU
	}
	res.TotalTime = now
	res.EnergyGPU = gpuE
	res.EnergyCPU = cpuE
	res.Energy = res.EnergyGPU + res.EnergyCPU
	res.SpinTime = spinT
	res.SpinEnergy = spinE
	return res
}

// Table renders results as the suite's standard trace table: one row per
// point with its levels, wall time and energy split.
func Table(e *Engine, results []PointResult) *trace.Table {
	t := trace.NewTable("Sweep points",
		"workload", "draw", "core_mhz", "mem_mhz", "cpu_mhz",
		"exec_s", "energy_j", "energy_gpu_j", "energy_cpu_j")
	for _, pr := range results {
		coreMHz, memMHz, cpuMHz := "", "", ""
		if pr.Draw < 0 {
			coreMHz = fmt.Sprintf("%.0f", e.GPU.CoreLevels[pr.Core].MHz())
			memMHz = fmt.Sprintf("%.0f", e.GPU.MemLevels[pr.Mem].MHz())
			cpuMHz = fmt.Sprintf("%.0f", e.CPU.PStates[pr.CPU].Frequency.MHz())
		}
		r := pr.Result
		t.AddRowf(pr.Workload, pr.Draw, coreMHz, memMHz, cpuMHz,
			r.TotalTime.Seconds(), r.Energy.Joules(),
			r.EnergyGPU.Joules(), r.EnergyCPU.Joules())
	}
	return t
}
