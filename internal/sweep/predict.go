// Analytic sweet-spot prediction over sweep ladders: instead of evaluating
// the full core×memory cross product, fit the cross-frequency model of
// internal/predict from a handful of anchor points and verify only its
// best-ranked candidates. Anchor and verification evaluations flow through
// the ordinary point evaluator (closed form where expressible, run-cache
// memoized), and the whole search outcome is itself memoized under a
// "predict:" cache variant so warm runs replay the cold search's exact
// decision — including its deterministic full-evaluation count.

package sweep

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"greengpu/internal/core"
	"greengpu/internal/predict"
	"greengpu/internal/runcache"
	"greengpu/internal/telemetry"
	"greengpu/internal/trace"
	"greengpu/internal/units"
	"greengpu/internal/workload"
)

// SpotResult pairs one workload with its sweet-spot search outcome. Core
// and Mem in the outcome are device-ladder indices (into Engine.GPU's
// CoreLevels/MemLevels), even when the spec swept a sub-ladder.
type SpotResult struct {
	Workload string
	Outcome  predict.Outcome
}

// PredictSweetSpots finds each selected workload's sweet spot with
// O(anchors) full evaluations instead of the spec's full ladder cross
// product. The spec selects workloads, mode, iterations and the ladder
// subset exactly as Run does; Monte Carlo draw specs have no ladder to
// search and are rejected.
//
// When the search's verified set contains the true optimum (the normal
// case — a degenerate fit falls back to exhaustive evaluation), the
// outcome is byte-identical to brute force: point evaluations share Run's
// closed-form arithmetic and cache keys, and ties break in the exhaustive
// studies' grid order.
//
// Each workload's search emits one flight-recorder record (Mode
// "predict") when a recorder is installed, with Predicted set on
// unverified (model-only) outcomes.
func (e *Engine) PredictSweetSpots(spec Spec, opts predict.Options) ([]SpotResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Draws > 0 {
		return nil, fmt.Errorf("sweep: predict needs a ladder spec, not Monte Carlo draws")
	}
	names := spec.Workloads
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		names = make([]string, len(e.Profiles))
		for i, p := range e.Profiles {
			names[i] = p.Name
		}
	}
	cores, err := resolveLadder(spec.CoreLevels, len(e.GPU.CoreLevels), "core")
	if err != nil {
		return nil, err
	}
	mems, err := resolveLadder(spec.MemLevels, len(e.GPU.MemLevels), "mem")
	if err != nil {
		return nil, err
	}
	cpuLvl := spec.CPULevel
	if cpuLvl == -1 {
		cpuLvl = len(e.CPU.PStates) - 1
	}
	if cpuLvl >= len(e.CPU.PStates) {
		return nil, fmt.Errorf("sweep: CPU P-state %d out of range [0,%d)", cpuLvl, len(e.CPU.PStates))
	}
	gt, ct, err := e.deviceTables()
	if err != nil {
		return nil, err
	}
	// Workload tables are built lazily per workload below; the value batch
	// carries only the shared device tables so the sample closure captures
	// it without a heap allocation.
	b := Batch{e: e, gt: gt, ct: ct}
	base := e.baseConfig(&spec)
	if err := base.Validate(); err != nil {
		return nil, err
	}
	baseFast := fastEligible(&base)

	coreF := make([]units.Frequency, len(cores))
	for i, c := range cores {
		coreF[i] = e.GPU.CoreLevels[c]
	}
	memF := make([]units.Frequency, len(mems))
	for i, m := range mems {
		memF[i] = e.GPU.MemLevels[m]
	}
	variant := predictVariant(opts, cores, mems, cpuLvl)

	out := make([]SpotResult, 0, len(names))
	for _, n := range names {
		prof, err := workload.ByName(e.Profiles, n)
		if err != nil {
			return nil, err
		}
		wt := newWorkloadTables(prof, gt, &e.Bus)
		search := func() (predict.Outcome, error) {
			oc, err := predict.SweetSpot(coreF, memF, func(ci, mi int) (predict.Sample, error) {
				pt := Point{Workload: n, Draw: -1, Core: cores[ci], Mem: mems[mi], CPU: cpuLvl}
				pr, err := b.evalPointWT(wt, &spec, &base, baseFast, pt)
				if err != nil {
					return predict.Sample{}, err
				}
				return predict.Sample{Core: ci, Mem: mi,
					Time: pr.Result.TotalTime, Energy: pr.Result.Energy}, nil
			}, opts)
			if err != nil {
				return oc, err
			}
			// Map the resolved-ladder indices back onto the device ladder
			// before the outcome is returned (or memoized).
			oc.Core, oc.Mem = cores[oc.Core], mems[oc.Mem]
			return oc, nil
		}
		oc, err := e.memoizedSearch(&base, prof, variant, search)
		if err != nil {
			return nil, err
		}
		e.stampPredict(n, oc, cpuLvl)
		out = append(out, SpotResult{Workload: n, Outcome: oc})
	}
	return out, nil
}

// memoizedSearch runs (or replays) one workload's search through the run
// cache. The stored value is the whole outcome: anchors must stay in the
// verified set (a corner anchor may be the optimum), so memoizing only the
// fitted coefficients would change warm-run outcomes; memoizing the search
// itself keeps warm and cold runs byte-identical.
func (e *Engine) memoizedSearch(base *core.Config, prof *workload.Profile, variant string, search func() (predict.Outcome, error)) (predict.Outcome, error) {
	if e.Cache == nil || !runcache.Cacheable(base) {
		return search()
	}
	key := runcache.KeyOf(&e.GPU, &e.CPU, &e.Bus, prof, base, variant)
	v, err := e.Cache.Do(key, func() (runcache.Value, error) {
		oc, err := search()
		if err != nil {
			return runcache.Value{}, err
		}
		return runcache.Value{Predict: &oc}, nil
	})
	if err != nil {
		return predict.Outcome{}, err
	}
	return *v.Predict, nil
}

// predictVariant names the search flavour for the run cache: everything
// that shapes the outcome beyond the fingerprinted device/workload/config —
// the anchor strategy, objective, verification budget and the swept
// sub-ladder.
func predictVariant(opts predict.Options, cores, mems []int, cpuLvl int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "predict:%s:%s:topm=%d:refine=%d:cpu=%d:cores=",
		opts.Strategy, opts.Objective, opts.TopM, opts.MaxRefine, cpuLvl)
	for i, c := range cores {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
	b.WriteString(":mems=")
	for i, m := range mems {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(m))
	}
	return b.String()
}

// SpotsTable renders a PredictSweetSpots batch as one table, one row per
// workload: the chosen pair, how it was decided (verified / model-only /
// exhaustive fallback), and the evaluation economics.
func SpotsTable(e *Engine, opts predict.Options, spots []SpotResult) *trace.Table {
	t := trace.NewTable("Predicted sweet spots",
		"workload", "strategy", "objective", "core_mhz", "mem_mhz",
		"exec_s", "energy_j", "verified", "fallback",
		"full_evals", "points", "eval_reduction")
	for _, s := range spots {
		oc := s.Outcome
		t.AddRow(s.Workload, opts.Strategy.String(), opts.Objective.String(),
			fmt.Sprintf("%.0f", e.GPU.CoreLevels[oc.Core].MHz()),
			fmt.Sprintf("%.0f", e.GPU.MemLevels[oc.Mem].MHz()),
			fmt.Sprintf("%.6f", oc.Time.Seconds()),
			fmt.Sprintf("%.6f", oc.Energy.Joules()),
			strconv.FormatBool(oc.Verified), strconv.FormatBool(oc.Fallback),
			strconv.Itoa(oc.FullEvals), strconv.Itoa(oc.Points),
			fmt.Sprintf("%.2f", float64(oc.Points)/float64(oc.FullEvals)))
	}
	return t
}

// stampPredict emits one flight-recorder record for a finished search:
// the chosen levels, the predicted (or measured) runtime as the epoch
// time, the implied average power, and the Predicted flag for outcomes
// the model chose without simulation verification.
func (e *Engine) stampPredict(name string, oc predict.Outcome, cpuLvl int) {
	fr := telemetry.Recorder()
	if fr == nil {
		return
	}
	power := math.NaN()
	if oc.Time > 0 {
		power = oc.Energy.Joules() / oc.Time.Seconds()
	}
	fr.Record(telemetry.EpochRecord{
		Workload:  name,
		Mode:      "predict",
		At:        oc.Time,
		CoreLevel: oc.Core,
		MemLevel:  oc.Mem,
		CoreMHz:   e.GPU.CoreLevels[oc.Core].MHz(),
		MemMHz:    e.GPU.MemLevels[oc.Mem].MHz(),
		CPULevel:  cpuLvl,
		PowerW:    power,
		Predicted: !oc.Verified,
	})
}
