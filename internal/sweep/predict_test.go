package sweep

import (
	"math"
	"reflect"
	"testing"

	"greengpu/internal/core"
	"greengpu/internal/faultinject"
	"greengpu/internal/predict"
	"greengpu/internal/runcache"
	"greengpu/internal/telemetry"
	"greengpu/internal/testbed"
	"greengpu/internal/workload"
)

// denseEngine builds an engine on the synthetic 24×24 dense-ladder card,
// with the workloads recalibrated against it.
func denseEngine(t testing.TB) *Engine {
	t.Helper()
	gpu, cpu, b := testbed.GeForce8800GTXDense(24, 24), testbed.PhenomIIX2(), testbed.PCIe()
	profiles, err := workload.Rodinia(gpu, cpu)
	if err != nil {
		t.Fatal(err)
	}
	return &Engine{GPU: gpu, CPU: cpu, Bus: b, Profiles: profiles, Jobs: 1}
}

// bruteSpots exhaustively evaluates the spec and returns each workload's
// minimum-energy point in the studies' convention: grid order (core outer,
// memory inner), strict less-than keeps the earliest.
func bruteSpots(t testing.TB, e *Engine, spec Spec) map[string]PointResult {
	t.Helper()
	results, err := e.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	best := map[string]PointResult{}
	for _, pr := range results {
		if b, ok := best[pr.Workload]; !ok || pr.Result.Energy < b.Result.Energy {
			best[pr.Workload] = pr
		}
	}
	return best
}

// TestPredictSweetSpotsMatchBruteForce is the predictor's headline
// contract on the paper's 6×6 ladder: for every workload and every anchor
// strategy, the O(anchors) search must return the exhaustive sweep's exact
// sweet spot — same point, byte-identical measured time and energy. The
// verification budget is TopM=12: on this small grid the model's crossover
// error can rank the true optimum as deep as 11th-12th among candidates
// (memory-level crossovers are the piecewise-linear model's blind spot),
// so exactness costs 17 of 36 evaluations here; the dense-ladder test
// below shows the default budget's 64× reduction where the grid is large
// enough for prediction to pay.
func TestPredictSweetSpotsMatchBruteForce(t *testing.T) {
	e := testEngine(t)
	spec := Spec{Iterations: 4, CPULevel: -1}
	want := bruteSpots(t, e, spec)
	for _, strat := range []predict.Strategy{predict.CornersCenter, predict.DOptimalLite, predict.Adaptive} {
		spots, err := e.PredictSweetSpots(spec, predict.Options{Strategy: strat, TopM: 12})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if len(spots) != len(e.Profiles) {
			t.Fatalf("%v: got %d spots, want %d", strat, len(spots), len(e.Profiles))
		}
		for _, s := range spots {
			w := want[s.Workload]
			oc := s.Outcome
			if !oc.Verified || oc.Fallback {
				t.Errorf("%v/%s: outcome not simulation-verified: %+v", strat, s.Workload, oc)
			}
			if oc.Core != w.Core || oc.Mem != w.Mem {
				t.Errorf("%v/%s: spot (%d,%d), brute force found (%d,%d)",
					strat, s.Workload, oc.Core, oc.Mem, w.Core, w.Mem)
			}
			if oc.Time != w.Result.TotalTime || oc.Energy != w.Result.Energy {
				t.Errorf("%v/%s: measurements (%v, %v) differ from brute force (%v, %v)",
					strat, s.Workload, oc.Time, oc.Energy, w.Result.TotalTime, w.Result.Energy)
			}
			if oc.Points != 36 || oc.FullEvals >= oc.Points {
				t.Errorf("%v/%s: FullEvals=%d Points=%d", strat, s.Workload, oc.FullEvals, oc.Points)
			}
		}
	}
}

// TestPredictSweetSpotsDenseReduction pins the perf claim on the synthetic
// 24×24 ladder: the search still lands on the exhaustive sweet spot while
// requesting at least 50× fewer full evaluations than the 576-point sweep.
func TestPredictSweetSpotsDenseReduction(t *testing.T) {
	e := denseEngine(t)
	spec := Spec{Workloads: []string{"kmeans"}, Iterations: 4, CPULevel: -1}
	want := bruteSpots(t, e, spec)["kmeans"]
	spots, err := e.PredictSweetSpots(spec, predict.Options{})
	if err != nil {
		t.Fatal(err)
	}
	oc := spots[0].Outcome
	if oc.Points != 576 {
		t.Fatalf("Points = %d, want 576", oc.Points)
	}
	if oc.FullEvals*50 > oc.Points {
		t.Errorf("FullEvals = %d on %d points: reduction %.1fx < 50x",
			oc.FullEvals, oc.Points, float64(oc.Points)/float64(oc.FullEvals))
	}
	if oc.Core != want.Core || oc.Mem != want.Mem {
		t.Errorf("spot (%d,%d), brute force found (%d,%d)", oc.Core, oc.Mem, want.Core, want.Mem)
	}
	if oc.Time != want.Result.TotalTime || oc.Energy != want.Result.Energy {
		t.Errorf("measurements diverge from brute force")
	}
}

// TestPredictSweetSpotsSubLadder: a spec sweeping ladder subsets searches
// only those levels, and the outcome reports device-ladder indices.
func TestPredictSweetSpotsSubLadder(t *testing.T) {
	e := testEngine(t)
	spec := Spec{Workloads: []string{"nbody"}, Iterations: 4, CPULevel: -1,
		CoreLevels: []int{0, 2, 4}, MemLevels: []int{1, 3, 5}}
	want := bruteSpots(t, e, spec)["nbody"]
	spots, err := e.PredictSweetSpots(spec, predict.Options{})
	if err != nil {
		t.Fatal(err)
	}
	oc := spots[0].Outcome
	if oc.Points != 9 {
		t.Errorf("Points = %d, want 9", oc.Points)
	}
	if oc.Core != want.Core || oc.Mem != want.Mem {
		t.Errorf("spot (%d,%d), brute force found (%d,%d)", oc.Core, oc.Mem, want.Core, want.Mem)
	}
}

// TestPredictSweetSpotsCacheReplay: with a cache attached, a repeated
// search replays the memoized outcome byte-identically — including the
// deterministic FullEvals request count — without recomputing anything.
func TestPredictSweetSpotsCacheReplay(t *testing.T) {
	e := testEngine(t)
	cache, err := runcache.New(runcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.Cache = cache
	spec := Spec{Workloads: []string{"kmeans"}, Iterations: 4, CPULevel: -1}
	cold, err := e.PredictSweetSpots(spec, predict.Options{Strategy: predict.Adaptive})
	if err != nil {
		t.Fatal(err)
	}
	misses := cache.Stats().Misses
	warm, err := e.PredictSweetSpots(spec, predict.Options{Strategy: predict.Adaptive})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm replay diverged:\ncold: %+v\nwarm: %+v", cold, warm)
	}
	if s := cache.Stats(); s.Misses != misses {
		t.Errorf("warm search recomputed: misses %d -> %d", misses, s.Misses)
	}
	// A different search flavour must not collide with the memoized one.
	edp, err := e.PredictSweetSpots(spec, predict.Options{Strategy: predict.Adaptive, Objective: predict.MinEDP})
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Misses == misses {
		t.Errorf("EDP search served from the energy search's cache entry: %+v", edp[0].Outcome)
	}
}

// TestPredictSweetSpotsRejectsDraws: Monte Carlo specs have no ladder to
// search.
func TestPredictSweetSpotsRejectsDraws(t *testing.T) {
	e := testEngine(t)
	if _, err := e.PredictSweetSpots(Spec{Draws: 3, CPULevel: -1}, predict.Options{}); err == nil {
		t.Fatal("draw spec accepted")
	}
}

// TestPredictFlightRecord: each search stamps one flight-recorder epoch in
// mode "predict", with the Predicted flag set exactly on model-only
// (unverified) outcomes.
func TestPredictFlightRecord(t *testing.T) {
	e := testEngine(t)
	fr := telemetry.NewFlightRecorder(8)
	telemetry.SetFlightRecorder(fr)
	defer telemetry.SetFlightRecorder(nil)

	spec := Spec{Workloads: []string{"kmeans"}, Iterations: 4, CPULevel: -1}
	verified, err := e.PredictSweetSpots(spec, predict.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.PredictSweetSpots(spec, predict.Options{TopM: -1}); err != nil {
		t.Fatal(err)
	}
	recs := fr.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d flight records, want 2", len(recs))
	}
	for i, rec := range recs {
		if rec.Workload != "kmeans" || rec.Mode != "predict" {
			t.Errorf("record %d = %+v, want workload kmeans mode predict", i, rec)
		}
	}
	if recs[0].Predicted {
		t.Error("verified search stamped Predicted=true")
	}
	if !recs[1].Predicted {
		t.Error("unverified (TopM<0) search did not stamp Predicted")
	}
	oc := verified[0].Outcome
	if recs[0].CoreLevel != oc.Core || recs[0].MemLevel != oc.Mem || recs[0].At != oc.Time {
		t.Errorf("record %+v does not match outcome %+v", recs[0], oc)
	}
	if wantP := oc.Energy.Joules() / oc.Time.Seconds(); math.Abs(recs[0].PowerW-wantP) > 1e-9 {
		t.Errorf("record power %v, want %v", recs[0].PowerW, wantP)
	}
}

// TestRunFallbackMatrix drives every spec-reachable configuration that the
// closed-form evaluator cannot express — dynamic control modes, an armed
// ambient fault plan, Monte Carlo draws — and checks each point both
// bypasses the fast path and is counted on the fallback telemetry metric.
// A baseline control row pins the complementary fast-path count, and a
// clock-saturating profile shows horizon saturation stays on the fast path
// (the exact evaluator) while still matching the per-point engine.
func TestRunFallbackMatrix(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	armed := faultinject.Default(7)
	for _, tc := range []struct {
		name     string
		spec     Spec
		plan     *faultinject.Plan
		wantFast bool
	}{
		{"baseline-ladder", Spec{Workloads: []string{"kmeans"}, Iterations: 2, CPULevel: -1,
			CoreLevels: []int{0, 5}, MemLevels: []int{0, 5}}, nil, true},
		{"mode-scaling", Spec{Workloads: []string{"kmeans"}, Mode: core.FreqScaling, Iterations: 2, CPULevel: -1,
			CoreLevels: []int{5}, MemLevels: []int{5}}, nil, false},
		{"mode-division", Spec{Workloads: []string{"kmeans"}, Mode: core.Division, Iterations: 2, CPULevel: -1,
			CoreLevels: []int{5}, MemLevels: []int{5}}, nil, false},
		{"mode-holistic", Spec{Workloads: []string{"kmeans"}, Mode: core.Holistic, Iterations: 2, CPULevel: -1,
			CoreLevels: []int{5}, MemLevels: []int{5}}, nil, false},
		{"ambient-fault-plan", Spec{Workloads: []string{"kmeans"}, Iterations: 2, CPULevel: -1,
			CoreLevels: []int{5}, MemLevels: []int{5}}, &armed, false},
		{"monte-carlo-draws", Spec{Workloads: []string{"kmeans"}, Iterations: 2, CPULevel: -1,
			Draws: 2}, nil, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := testEngine(t)
			e.FaultPlan = tc.plan
			fastBefore := telemetry.Default.CounterValue(telemetry.MetricSweepFastPath)
			fallBefore := telemetry.Default.CounterValue(telemetry.MetricSweepFallback)
			results, err := e.Run(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			for i, pr := range results {
				if pr.Fast != tc.wantFast {
					t.Errorf("point %d (%+v): Fast=%v, want %v", i, pr.Point, pr.Fast, tc.wantFast)
				}
			}
			n := uint64(len(results))
			fastN := telemetry.Default.CounterValue(telemetry.MetricSweepFastPath) - fastBefore
			fallN := telemetry.Default.CounterValue(telemetry.MetricSweepFallback) - fallBefore
			wantFastN, wantFallN := uint64(0), n
			if tc.wantFast {
				wantFastN, wantFallN = n, 0
			}
			if fastN != wantFastN || fallN != wantFallN {
				t.Errorf("metrics: fast +%d fallback +%d, want +%d/+%d", fastN, fallN, wantFastN, wantFallN)
			}
		})
	}
}

// TestRunSaturationStaysFast: a profile whose span drives the clock into
// its saturation range takes the exact closed-form evaluator — still the
// fast path — and remains byte-identical to the per-point engine.
func TestRunSaturationStaysFast(t *testing.T) {
	e := testEngine(t)
	// 4 × 2.4e9 s crosses the ~292-year clock horizon inside the FINAL
	// iteration's kernel phase: the phase end saturates (sim.AddTime) but
	// no later bus event needs scheduling past it, so the per-point engine
	// completes and the two paths can be compared.
	sat, err := workload.Calibrate(workload.Spec{
		Name:             "saturate",
		IterationSeconds: 2.4e9,
		Iterations:       4,
		Phases:           []workload.PhaseTarget{{Label: "p", Fraction: 1, CoreUtil: 0.7, MemUtil: 0.2}},
		CPUSlowdown:      5,
		TransferMB:       1,
	}, e.GPU, e.CPU)
	if err != nil {
		t.Fatal(err)
	}
	e.Profiles = append(e.Profiles, sat)
	spec := Spec{Workloads: []string{"saturate"}, Iterations: 4, CPULevel: -1,
		CoreLevels: []int{0, 5}, MemLevels: []int{0, 5}}
	got, err := e.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveRun(t, e, spec)
	for i := range got {
		if !got[i].Fast {
			t.Errorf("point %d (%+v) left the fast path", i, got[i].Point)
		}
		if !reflect.DeepEqual(got[i].Result, want[i]) {
			t.Errorf("point %d (%+v): saturated result diverges from per-point run", i, got[i].Point)
		}
	}
}
