package sweep

import (
	"testing"

	"greengpu/internal/core"
	"greengpu/internal/predict"
	"greengpu/internal/testbed"
	"greengpu/internal/workload"
)

// ladderSpec is the ladder² benchmark workload: the paper's full 6×6 GPU
// ladder on one profile at the frequency-study iteration count.
func ladderSpec() Spec {
	return Spec{Workloads: []string{"kmeans"}, Iterations: 4, CPULevel: -1}
}

// BenchmarkSweepBatched measures the batch engine over the 6×6 ladder:
// shared tables plus the closed-form evaluator, no cache, sequential — the
// points/s this reports is pure per-point throughput.
func BenchmarkSweepBatched(b *testing.B) {
	e := testEngine(b)
	spec := ladderSpec()
	pts, err := e.Expand(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(pts)*b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkSweepPredicted measures the analytic sweet-spot search on the
// synthetic 24×24 ladder: anchors plus top-M verification instead of the
// 576-point cross product. points/s counts ladder points *decided* per
// second (the search's coverage), fullevals the deterministic number of
// full evaluations one search requests, and evalreduction their ratio —
// the committed BENCH_sweep.json pins evalreduction ≥ 50.
func BenchmarkSweepPredicted(b *testing.B) {
	e := denseEngine(b)
	spec := Spec{Workloads: []string{"kmeans"}, Iterations: 4, CPULevel: -1}
	b.ReportAllocs()
	b.ResetTimer()
	var last SpotResult
	for i := 0; i < b.N; i++ {
		spots, err := e.PredictSweetSpots(spec, predict.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = spots[0]
	}
	b.StopTimer()
	oc := last.Outcome
	if !oc.Verified || oc.Fallback {
		b.Fatalf("search did not verify: %+v", oc)
	}
	b.ReportMetric(float64(oc.Points*b.N)/b.Elapsed().Seconds(), "points/s")
	b.ReportMetric(float64(oc.FullEvals), "fullevals")
	b.ReportMetric(float64(oc.Points)/float64(oc.FullEvals), "evalreduction")
}

// BenchmarkSweepNaive measures the same 36 points evaluated the pre-batch
// way: one fresh machine and one full event-driven simulation per point.
// The committed BENCH_sweep.json pins the batched engine at ≥10× this
// baseline's points/s.
func BenchmarkSweepNaive(b *testing.B) {
	e := testEngine(b)
	spec := ladderSpec()
	pts, err := e.Expand(spec)
	if err != nil {
		b.Fatal(err)
	}
	prof, err := workload.ByName(e.Profiles, "kmeans")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pt := range pts {
			cfg := e.config(&spec, pt)
			if _, err := core.Run(testbed.NewFrom(e.GPU, e.CPU, e.Bus), prof, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(pts)*b.N)/b.Elapsed().Seconds(), "points/s")
}
