// Package sweep evaluates batches of simulation points — cartesian
// frequency ladders, explicit point lists, Monte Carlo fault-plan draws —
// as a unit instead of N independent core.Run calls.
//
// Three mechanisms make a batch cheaper than its points run one at a time:
//
//  1. Shared level tables. The per-frequency-level constants of the GPU
//     and CPU (gpusim.Tables, cpusim.Tables) are built once per batch and
//     shared read-only across every point, so per-point setup collapses to
//     index arithmetic.
//
//  2. Incremental recomputation. Per workload, each kernel phase's
//     per-domain busy times are tabulated separately against the core and
//     memory ladders (the timing model is separable below the final
//     max+γ·min combine). Neighboring points that differ in one knob reuse
//     the unchanged domain's column outright; the closed-form evaluator
//     then replays the engine's accrual arithmetic in event order, which a
//     golden test pins byte-identical to the one-at-a-time path.
//
//  3. A shared run-cache tier. Eligible points are keyed with exactly the
//     same runcache fingerprints the per-point studies use, so sweeps,
//     repeated CI runs, and concurrent processes (see runcache file
//     locking) share hits.
//
// Points whose configuration the closed form cannot express — scaling or
// dividing modes, armed fault plans — fall back to a full simulation on a
// fresh machine, preserving correctness for every spec.
package sweep

import (
	"fmt"
	"strconv"
	"strings"

	"greengpu/internal/core"
)

// Spec describes a batch of simulation points.
type Spec struct {
	// Workloads selects profiles by name; empty or ["all"] selects every
	// profile the engine knows.
	Workloads []string

	// Mode is the framework mode every point runs under.
	Mode core.Mode

	// Iterations overrides each profile's iteration count when > 0.
	Iterations int

	// CPULevel is the processor P-state for ladder points; -1 selects the
	// top state.
	CPULevel int

	// CoreLevels and MemLevels are GPU ladder indices to sweep; nil means
	// the device's full ladder.
	CoreLevels []int
	MemLevels  []int

	// Draws, when positive, replaces the ladder with Monte Carlo
	// fault-plan draws: each point runs the mode's default levels under
	// faultinject.Default seeded from Seed and the draw index.
	Draws int

	// Seed is the base seed for Monte Carlo draws.
	Seed uint64
}

// DefaultSeed seeds Monte Carlo draws when a spec does not name one. It
// matches the suite's chaos-mode seed so sweep draws and the resilience
// study stay comparable.
const DefaultSeed = 2012

// Validate reports the first statically checkable problem with the spec.
// Level indices and workload names are resolved against a concrete engine
// by Engine.Expand.
func (s *Spec) Validate() error {
	switch {
	case s.Mode < core.Baseline || s.Mode > core.Holistic:
		return fmt.Errorf("sweep: unknown mode %d", int(s.Mode))
	case s.Iterations < 0:
		return fmt.Errorf("sweep: Iterations must be non-negative")
	case s.CPULevel < -1:
		return fmt.Errorf("sweep: CPULevel must be -1 (peak) or a P-state index")
	case s.Draws < 0:
		return fmt.Errorf("sweep: Draws must be non-negative")
	}
	for _, w := range s.Workloads {
		if strings.TrimSpace(w) == "" {
			return fmt.Errorf("sweep: empty workload name")
		}
	}
	for _, dom := range [][]int{s.CoreLevels, s.MemLevels} {
		for _, l := range dom {
			if l < 0 {
				return fmt.Errorf("sweep: negative ladder index %d", l)
			}
		}
	}
	return nil
}

// Point is one simulation point of an expanded spec.
type Point struct {
	Workload string
	// Draw is the Monte Carlo draw index, or -1 for a ladder point.
	Draw int
	// Core, Mem and CPU are the pinned initial levels of a ladder point;
	// all -1 for a draw point, which runs the mode's default levels.
	Core, Mem, CPU int
}

// ParseSpec parses the cmd/experiments -sweep mini-language: whitespace
// separated key=value tokens.
//
//	workloads=kmeans,nbody | all   profiles to sweep        (default all)
//	core=all | 2 | 0-3 | 0,2,5     GPU core ladder indices  (default all)
//	mem=all | 2 | 0-3 | 0,2,5      GPU memory ladder indices(default all)
//	cpu=peak | 3                   processor P-state        (default peak)
//	iters=4                        iterations per point     (default 4)
//	mode=baseline | scaling | division | holistic  (default baseline)
//	draws=100                      Monte Carlo draws, replaces the ladder
//	seed=2012                      base seed for draws
//
// The default iteration count matches the per-point frequency studies
// (Fig. 1), so ladder points share their run-cache keys.
func ParseSpec(s string) (Spec, error) {
	spec := Spec{CPULevel: -1, Iterations: 4, Seed: DefaultSeed}
	for _, tok := range strings.Fields(s) {
		k, v, ok := strings.Cut(tok, "=")
		if !ok || v == "" {
			return Spec{}, fmt.Errorf("sweep: token %q is not key=value", tok)
		}
		var err error
		switch k {
		case "workloads":
			if v != "all" {
				spec.Workloads = strings.Split(v, ",")
				for _, w := range spec.Workloads {
					if w == "" {
						return Spec{}, fmt.Errorf("sweep: empty workload in %q", tok)
					}
				}
			}
		case "core":
			spec.CoreLevels, err = parseLevels(v)
		case "mem":
			spec.MemLevels, err = parseLevels(v)
		case "cpu":
			if v == "peak" {
				spec.CPULevel = -1
			} else {
				spec.CPULevel, err = parseIndex(v)
			}
		case "iters":
			spec.Iterations, err = parseIndex(v)
		case "draws":
			spec.Draws, err = parseIndex(v)
		case "seed":
			spec.Seed, err = strconv.ParseUint(v, 10, 64)
		case "mode":
			spec.Mode, err = ParseMode(v)
		default:
			return Spec{}, fmt.Errorf("sweep: unknown key %q", k)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("sweep: bad value in %q: %w", tok, err)
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// parseLevels parses a ladder selector: "all", a single index, an
// inclusive range "a-b", or a comma list of both.
func parseLevels(v string) ([]int, error) {
	if v == "all" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(v, ",") {
		if a, b, ok := strings.Cut(part, "-"); ok {
			lo, err := parseIndex(a)
			if err != nil {
				return nil, err
			}
			hi, err := parseIndex(b)
			if err != nil {
				return nil, err
			}
			if hi < lo {
				return nil, fmt.Errorf("range %q is descending", part)
			}
			if hi-lo >= maxRangeSpan {
				return nil, fmt.Errorf("range %q spans more than %d levels", part, maxRangeSpan)
			}
			for l := lo; l <= hi; l++ {
				out = append(out, l)
			}
			continue
		}
		l, err := parseIndex(part)
		if err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	return out, nil
}

// maxRangeSpan bounds a single a-b ladder range. Real ladders have a
// handful of levels; the bound keeps a typo ("0-999999999") from
// materializing a giant slice before Expand rejects the indices.
const maxRangeSpan = 4096

func parseIndex(v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("negative index %d", n)
	}
	return n, nil
}

// ParseMode resolves a framework-mode name as the sweep and fleet spec
// mini-languages spell them, accepting the paper's aliases
// ("frequency-scaling", "greengpu") alongside the short forms.
func ParseMode(v string) (core.Mode, error) {
	switch v {
	case "baseline":
		return core.Baseline, nil
	case "scaling", "frequency-scaling":
		return core.FreqScaling, nil
	case "division":
		return core.Division, nil
	case "holistic", "greengpu":
		return core.Holistic, nil
	}
	return 0, fmt.Errorf("unknown mode %q", v)
}
