package sweep

import (
	"reflect"
	"testing"
)

// FuzzSweepSpec drives ParseSpec with arbitrary input: parsing must never
// panic, accepted specs must validate, and expansion against a fixed
// engine must be deterministic across calls.
func FuzzSweepSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"workloads=all core=all mem=all cpu=peak iters=4",
		"workloads=kmeans,nbody core=0-2 mem=1,3,5 cpu=0 mode=holistic",
		"draws=8 seed=2012 mode=scaling",
		"core=0-99999999999",
		"core=2-0 bogus==x",
	} {
		f.Add(seed)
	}
	e := testEngine(f)
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted a spec that fails Validate: %v", s, verr)
		}
		a, errA := e.Expand(spec)
		b, errB := e.Expand(spec)
		if (errA == nil) != (errB == nil) || !reflect.DeepEqual(a, b) {
			t.Fatalf("Expand(%q) is not deterministic", s)
		}
	})
}
