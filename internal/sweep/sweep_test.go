package sweep

import (
	"bytes"
	"reflect"
	"testing"

	"greengpu/internal/core"
	"greengpu/internal/cpusim"
	"greengpu/internal/faultinject"
	"greengpu/internal/gpusim"
	"greengpu/internal/runcache"
	"greengpu/internal/testbed"
	"greengpu/internal/workload"
)

// testEngine builds an engine on the paper's testbed and workloads.
func testEngine(t testing.TB) *Engine {
	t.Helper()
	gpu, cpu, b := testbed.GeForce8800GTX(), testbed.PhenomIIX2(), testbed.PCIe()
	profiles, err := workload.Rodinia(gpu, cpu)
	if err != nil {
		t.Fatal(err)
	}
	return &Engine{GPU: gpu, CPU: cpu, Bus: b, Profiles: profiles, Jobs: 1}
}

// naiveRun evaluates the expanded points one at a time on fresh machines —
// the exact per-point path the batch evaluator must reproduce.
func naiveRun(t testing.TB, e *Engine, spec Spec) []*core.Result {
	t.Helper()
	pts, err := e.Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*core.Result, len(pts))
	for i, pt := range pts {
		prof, err := workload.ByName(e.Profiles, pt.Workload)
		if err != nil {
			t.Fatal(err)
		}
		cfg := e.config(&spec, pt)
		r, err := core.Run(testbed.NewFrom(e.GPU, e.CPU, e.Bus), prof, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = r
	}
	return out
}

// TestFastPathMatchesNaive is the batch engine's golden contract: over the
// paper's full 6×6 ladder, every workload's closed-form result must be
// byte-identical (DeepEqual over float fields — no tolerance) to running
// the same configuration through core.Run on a fresh machine.
func TestFastPathMatchesNaive(t *testing.T) {
	e := testEngine(t)
	spec := Spec{Iterations: 4, CPULevel: -1}
	got, err := e.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveRun(t, e, spec)
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	fast := 0
	for i := range got {
		if got[i].Fast {
			fast++
		}
		if !reflect.DeepEqual(got[i].Result, want[i]) {
			t.Errorf("point %d (%+v): batched result diverges from per-point run\n got: %+v\nwant: %+v",
				i, got[i].Point, got[i].Result, want[i])
		}
	}
	if fast != len(got) {
		t.Errorf("only %d/%d ladder points took the fast path", fast, len(got))
	}
}

// TestFastPathIterationDefaults pins the profile-default and single
// iteration paths (Iterations == 0 uses the profile's count; the loop runs
// at least once).
func TestFastPathIterationDefaults(t *testing.T) {
	e := testEngine(t)
	for _, iters := range []int{0, 1, 7} {
		spec := Spec{Workloads: []string{"kmeans"}, Iterations: iters, CPULevel: 0,
			CoreLevels: []int{0, 5}, MemLevels: []int{0, 5}}
		got, err := e.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveRun(t, e, spec)
		for i := range got {
			if !reflect.DeepEqual(got[i].Result, want[i]) {
				t.Errorf("iters=%d point %d diverges", iters, i)
			}
		}
	}
}

// TestSpinWaitOff covers the non-spinning CPU accrual path.
func TestSpinWaitOff(t *testing.T) {
	e := testEngine(t)
	spec := Spec{Workloads: []string{"nbody"}, Iterations: 2, CPULevel: -1,
		CoreLevels: []int{2}, MemLevels: []int{3}}
	pts, err := e.Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	gt, ct, wt := mustTables(t, e, "nbody")
	for _, pt := range pts {
		cfg := e.config(&spec, pt)
		cfg.SpinWait = false
		prof, _ := workload.ByName(e.Profiles, pt.Workload)
		want, err := core.Run(testbed.NewFrom(e.GPU, e.CPU, e.Bus), prof, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.fastRun(wt, gt, ct, &cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("SpinWait=false result diverges:\n got %+v\nwant %+v", got, want)
		}
		if got.SpinTime != 0 || got.SpinEnergy != 0 {
			t.Errorf("SpinWait=false accrued spin: %v %v", got.SpinTime, got.SpinEnergy)
		}
	}
}

func mustTables(t testing.TB, e *Engine, name string) (*gpusim.Tables, *cpusim.Tables, *workloadTables) {
	t.Helper()
	gt, err := gpusim.BuildTables(e.GPU)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := cpusim.BuildTables(e.CPU)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := workload.ByName(e.Profiles, name)
	if err != nil {
		t.Fatal(err)
	}
	return gt, ct, newWorkloadTables(prof, gt, &e.Bus)
}

// TestJobsDeterminism pins the sharding contract: identical results at any
// worker count, with and without an ambient chaos plan.
func TestJobsDeterminism(t *testing.T) {
	for _, chaos := range []bool{false, true} {
		spec := Spec{Iterations: 4, CPULevel: -1}
		if chaos {
			// Chaos points fall back to full simulation; keep the matrix
			// to one workload's ladder.
			spec.Workloads = []string{"kmeans"}
		}
		var runs [][]PointResult
		for _, jobs := range []int{1, 8} {
			e := testEngine(t)
			e.Jobs = jobs
			if chaos {
				plan := faultinject.Default(2012)
				e.FaultPlan = &plan
			}
			got, err := e.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			runs = append(runs, got)
		}
		if !reflect.DeepEqual(runs[0], runs[1]) {
			t.Errorf("chaos=%v: results differ between jobs=1 and jobs=8", chaos)
		}
		if chaos {
			for _, pr := range runs[0] {
				if pr.Fast {
					t.Errorf("chaos point %+v took the fast path", pr.Point)
				}
			}
		}
	}
}

// TestDraws covers Monte Carlo expansion: per-draw plans are
// seed-deterministic and never take the closed form.
func TestDraws(t *testing.T) {
	spec := Spec{Workloads: []string{"kmeans"}, Mode: core.Holistic, Iterations: 2, Draws: 3, Seed: 7}
	var runs [][]PointResult
	for _, jobs := range []int{1, 8} {
		e := testEngine(t)
		e.Jobs = jobs
		got, err := e.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 3 {
			t.Fatalf("got %d results, want 3", len(got))
		}
		runs = append(runs, got)
	}
	if !reflect.DeepEqual(runs[0], runs[1]) {
		t.Error("draw results differ between jobs=1 and jobs=8")
	}
	var faults uint64
	for d, pr := range runs[0] {
		if pr.Draw != d {
			t.Errorf("result %d has draw index %d", d, pr.Draw)
		}
		if pr.Fast {
			t.Errorf("draw %d took the fast path", d)
		}
		faults += pr.Result.Faults.Total()
	}
	if faults == 0 {
		t.Error("no faults injected across any draw")
	}
}

// TestCacheSharing verifies sweeps populate and consume the run cache
// under the same keys: a second identical batch is all hits.
func TestCacheSharing(t *testing.T) {
	e := testEngine(t)
	cache, err := runcache.New(runcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.Cache = cache
	spec := Spec{Workloads: []string{"kmeans"}, Iterations: 4, CPULevel: -1}
	first, err := e.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	miss := cache.Stats().Misses
	if miss == 0 {
		t.Fatal("first batch recorded no misses")
	}
	second, err := e.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Misses != miss {
		t.Errorf("second batch missed: %d -> %d", miss, st.Misses)
	}
	if st.Hits == 0 {
		t.Error("second batch recorded no hits")
	}
	for i := range first {
		if !reflect.DeepEqual(first[i].Result, second[i].Result) {
			t.Errorf("cached result %d diverges", i)
		}
	}
}

func TestExpandErrors(t *testing.T) {
	e := testEngine(t)
	for _, spec := range []Spec{
		{Workloads: []string{"nope"}},
		{CoreLevels: []int{99}},
		{MemLevels: []int{99}},
		{CPULevel: 99},
		{Iterations: -1},
		{Draws: -1},
		{Mode: core.Mode(42)},
	} {
		if _, err := e.Run(spec); err == nil {
			t.Errorf("spec %+v: expected error", spec)
		}
	}
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("workloads=kmeans,nbody core=0-2 mem=all cpu=1 iters=6 mode=baseline")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		Workloads:  []string{"kmeans", "nbody"},
		CoreLevels: []int{0, 1, 2},
		CPULevel:   1,
		Iterations: 6,
		Seed:       DefaultSeed,
	}
	if !reflect.DeepEqual(spec, want) {
		t.Errorf("got %+v, want %+v", spec, want)
	}

	spec, err = ParseSpec("draws=10 seed=99 mode=holistic")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Draws != 10 || spec.Seed != 99 || spec.Mode != core.Holistic || spec.CPULevel != -1 {
		t.Errorf("got %+v", spec)
	}

	if _, err := ParseSpec(""); err != nil {
		t.Errorf("empty spec: %v", err)
	}
	for _, bad := range []string{
		"core", "core=", "core=x", "core=2-0", "core=-1", "core=0-99999999999",
		"cpu=x", "mode=warp", "bogus=1", "workloads=a,,b", "seed=-1", "iters=-2",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): expected error", bad)
		}
	}
}

// TestTableByteIdentity is the rendered golden: the batch's table must be
// byte-identical to one built from per-point core.Run results.
func TestTableByteIdentity(t *testing.T) {
	e := testEngine(t)
	spec := Spec{Iterations: 4, CPULevel: -1}
	got, err := e.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := e.Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveRun(t, e, spec)
	naivePRs := make([]PointResult, len(want))
	for i := range want {
		naivePRs[i] = PointResult{Point: pts[i], Result: want[i]}
	}
	var a, b bytes.Buffer
	if err := Table(e, got).WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := Table(e, naivePRs).WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("batched sweep table differs from per-point table")
	}
}
