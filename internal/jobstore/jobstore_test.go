package jobstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"greengpu/internal/iofault"
)

func accept(seq uint64, kind, spec string) Record {
	return Record{Seq: seq, Op: OpAccept, Kind: kind, Spec: spec, At: int64(seq) * 1e9}
}

func finish(seq uint64, state string) Record {
	return Record{Seq: seq, Op: OpFinish, State: state, At: int64(seq)*1e9 + 1}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, pending, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh journal has %d pending", len(pending))
	}
	recs := []Record{
		accept(0, "sweep", "draws=10"),
		accept(1, "fleet", "nodes=100"),
		finish(0, "done"),
		accept(2, "sweep", "draws=20 mode=holistic"),
		finish(2, "failed"),
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, pending, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(pending) != 1 || pending[0].Seq != 1 || pending[0].Kind != "fleet" || pending[0].Spec != "nodes=100" {
		t.Fatalf("pending = %+v, want only seq 1 (fleet)", pending)
	}
	if got := j2.NextSeq(); got != 3 {
		t.Fatalf("NextSeq after replay = %d, want 3", got)
	}
}

// TestTornTailTruncation cuts the journal at every possible byte offset
// inside the last frame and verifies Open recovers the intact prefix and
// truncates the torn bytes in place.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(accept(0, "sweep", "draws=10")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(accept(1, "fleet", "nodes=100")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	path := filepath.Join(dir, journalFile)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, valid := DecodeAll(full)
	if valid != len(full) || len(recs) != 2 {
		t.Fatalf("intact journal decoded to %d records, %d/%d bytes", len(recs), valid, len(full))
	}
	frame1 := frameHeaderSize + int(binary.LittleEndian.Uint32(full))

	for cut := frame1 + 1; cut < len(full); cut++ {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, journalFile), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j, pending, err := Open(sub, nil)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(pending) != 1 || pending[0].Seq != 0 {
			t.Fatalf("cut=%d: pending = %+v, want only seq 0", cut, pending)
		}
		got, err := os.ReadFile(filepath.Join(sub, journalFile))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, full[:frame1]) {
			t.Fatalf("cut=%d: torn tail not truncated: %d bytes on disk, want %d", cut, len(got), frame1)
		}
		// The truncated journal must accept appends at the right offset.
		if err := j.Append(accept(5, "sweep", "draws=1")); err != nil {
			t.Fatalf("cut=%d: append after truncation: %v", cut, err)
		}
		j.Close()
		_, pending, err = Open(sub, nil)
		if err != nil {
			t.Fatalf("cut=%d reopen: %v", cut, err)
		}
		if len(pending) != 2 {
			t.Fatalf("cut=%d reopen: pending = %+v, want seqs 0 and 5", cut, pending)
		}
	}
}

// TestMidFileCorruption flips a byte inside the first frame and verifies
// Open drops everything from the bad frame on (alignment past it is
// unknown) rather than serving a corrupt record.
func TestMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(0); seq < 3; seq++ {
		if err := j.Append(accept(seq, "sweep", "draws=10")); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	path := filepath.Join(dir, journalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeaderSize+3] ^= 0x40 // payload byte of frame 0
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, pending, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("pending = %+v, want none after frame-0 corruption", pending)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("journal holds %d bytes after frame-0 corruption, want 0", len(got))
	}
}

func TestPendingIdempotentReplay(t *testing.T) {
	recs := []Record{
		accept(0, "sweep", "a"),
		accept(0, "sweep", "a"), // duplicated accept (retried append)
		accept(1, "fleet", "b"),
		finish(1, "done"),
		finish(1, "done"), // duplicated finish
		finish(7, "done"), // finish for unknown seq
	}
	p := Pending(recs)
	if len(p) != 1 || p[0].Seq != 0 {
		t.Fatalf("Pending = %+v, want only seq 0", p)
	}
}

// TestAppendRetriesTransientFaults injects write/sync failures at a rate
// the bounded retry should ride out, then verifies the journal decodes
// fully — no partial record behind a committed one.
func TestAppendRetriesTransientFaults(t *testing.T) {
	dir := t.TempDir()
	fsys := iofault.Wrap(iofault.Disk, iofault.Plan{
		Seed:           3,
		WriteErrRate:   0.2,
		ShortWriteRate: 0.2,
		SyncErrRate:    0.2,
	}).(*iofault.FaultFS)
	j, _, err := Open(dir, fsys)
	if err != nil {
		t.Fatal(err)
	}
	j.SetRetry(iofault.RetryPolicy{Attempts: 8, Sleep: func(time.Duration) {}})
	appended := 0
	for seq := uint64(0); seq < 50; seq++ {
		if err := j.Append(accept(seq, "sweep", "draws=10 workloads=kmeans")); err == nil {
			appended++
		}
	}
	j.Close()
	if fsys.Counts().Total() == 0 {
		t.Fatal("fault plan injected nothing; test is vacuous")
	}
	if appended == 0 {
		t.Fatal("no append survived 8 attempts at rate 0.2; retry is broken")
	}
	data, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	recs, valid := DecodeAll(data)
	if valid != len(data) {
		t.Fatalf("journal holds a partial record: %d/%d bytes valid", valid, len(data))
	}
	if len(recs) != appended {
		t.Fatalf("journal holds %d records, %d appends reported success", len(recs), appended)
	}
}

// TestAppendFailureLeavesWholeFrames exhausts the retry budget (rate 1)
// and verifies a failed Append leaves the file exactly as it was.
func TestAppendFailureLeavesWholeFrames(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(accept(0, "sweep", "draws=10")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	before, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}

	fsys := iofault.Wrap(iofault.Disk, iofault.Plan{Seed: 1, ShortWriteRate: 1})
	j2, pending, err := Open(dir, fsys)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(pending) != 1 {
		t.Fatalf("pending = %+v", pending)
	}
	j2.SetRetry(iofault.RetryPolicy{Attempts: 2, Sleep: func(time.Duration) {}})
	if err := j2.Append(accept(1, "fleet", "nodes=10")); !errors.Is(err, iofault.ErrNoSpace) {
		t.Fatalf("Append under rate-1 short writes = %v, want ErrNoSpace", err)
	}
	after, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("failed append changed the journal: %d -> %d bytes", len(before), len(after))
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(0); seq < 10; seq++ {
		if err := j.Append(accept(seq, "sweep", "draws=10")); err != nil {
			t.Fatal(err)
		}
		if seq != 4 {
			if err := j.Append(finish(seq, "done")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := j.Compact([]Record{accept(4, "sweep", "draws=10")}); err != nil {
		t.Fatal(err)
	}
	// Appends after compaction land at the new (small) offset.
	if err := j.Append(finish(4, "done")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, pending, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("pending = %+v, want none", pending)
	}
}

func TestCompactRenameFailureKeepsOriginal(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(accept(0, "sweep", "draws=10")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	fsys := iofault.Wrap(iofault.Disk, iofault.Plan{Seed: 2, RenameErrRate: 1})
	j2, pending, err := Open(dir, fsys)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Compact(pending); !errors.Is(err, iofault.ErrIO) {
		t.Fatalf("Compact under rate-1 rename faults = %v, want ErrIO", err)
	}
	j2.Close()
	_, pending, err = Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].Seq != 0 {
		t.Fatalf("pending after failed compact = %+v, want original seq 0", pending)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("failed compact left temp files: %v", ents)
	}
}

func TestAppendAfterClose(t *testing.T) {
	j, _, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	if err := j.Append(accept(0, "sweep", "x")); err == nil {
		t.Fatal("Append on closed journal succeeded")
	}
}

func TestDecodeAllOversizedLength(t *testing.T) {
	var buf [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(buf[:], MaxPayload+1)
	recs, valid := DecodeAll(buf[:])
	if len(recs) != 0 || valid != 0 {
		t.Fatalf("oversized length decoded to %d records, valid=%d", len(recs), valid)
	}
}
