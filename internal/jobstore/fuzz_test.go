package jobstore

import (
	"encoding/json"
	"testing"
)

// FuzzJournalDecode pins DecodeAll's contract on arbitrary bytes: it never
// panics, the valid prefix re-decodes to the same records (stability), and
// appending garbage after a valid journal never changes the decoded
// prefix (a torn tail cannot rewrite history).
func FuzzJournalDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	good, _ := json.Marshal(Record{Seq: 1, Op: OpAccept, Kind: "sweep", Spec: "draws=10", At: 5})
	f.Add(appendFrame(nil, good))
	f.Add(appendFrame(appendFrame(nil, good), good)[:12])
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid := DecodeAll(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid = %d out of range [0,%d]", valid, len(data))
		}
		again, validAgain := DecodeAll(data[:valid])
		if validAgain != valid || len(again) != len(recs) {
			t.Fatalf("re-decode of valid prefix unstable: %d/%d records, %d/%d bytes",
				len(again), len(recs), validAgain, valid)
		}
		for i := range recs {
			if recs[i] != again[i] {
				t.Fatalf("record %d changed on re-decode", i)
			}
		}
		// Garbage appended after the valid prefix must not change it.
		extended := append(append([]byte{}, data[:valid]...), 0xff, 0x13, 0x37)
		recs2, valid2 := DecodeAll(extended)
		if valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("trailing garbage changed the decoded prefix: %d->%d records", len(recs), len(recs2))
		}
		// Re-framing the decoded records must decode back fully (the
		// payload need not be byte-identical — JSON field order is ours —
		// but the frame layer must round-trip).
		var reframed []byte
		for _, r := range recs {
			p, err := json.Marshal(r)
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			reframed = appendFrame(reframed, p)
		}
		recs3, valid3 := DecodeAll(reframed)
		if valid3 != len(reframed) || len(recs3) != len(recs) {
			t.Fatalf("re-framed records did not decode fully")
		}
	})
}
