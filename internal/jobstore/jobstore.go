// Package jobstore is a write-ahead journal for the daemon's async jobs.
//
// The daemon accepts long sweeps and fleet studies as cancelable
// background jobs; before this package a restart silently dropped every
// job still running. Because the engines are deterministic and memoized
// through the content-addressed run cache, recovery does not need
// checkpoints: it is enough to make the *accepted request* durable and
// replay it. The journal therefore records exactly two things per job —
// an accept record (kind + spec), fsynced before the HTTP 202 leaves the
// server, and a terminal record (done/failed/canceled) appended on
// completion. Jobs with an accept but no terminal record at open are the
// pending set the daemon re-executes on startup; replay hits the warm
// cache and produces byte-identical results (pinned by the
// daemon-crash-smoke gate).
//
// # On-disk format
//
// The journal is a single append-only file of CRC-framed records:
//
//	[u32 payload length][u32 CRC-32C of payload][payload]
//
// with little-endian integers and a JSON-encoded Record as payload. A
// crash can tear the tail of the file mid-frame; Open truncates any
// trailing bytes that do not form a complete, checksum-valid frame and
// continues — a partial record is never surfaced. Corruption *before* the
// tail (a bad CRC mid-file) also truncates from the first bad frame:
// everything after it has unknown alignment. Replay is idempotent: a
// duplicated accept for a seq already seen replaces the earlier one, and
// terminal records for unknown seqs are ignored, so retried appends are
// harmless.
//
// All I/O goes through an iofault.FS, so the storage-fault suite can
// inject ENOSPC, short writes, and fsync failures underneath; transient
// failures are retried with iofault.RetryPolicy after rewinding the file
// to the last committed length, so a torn frame from a failed attempt is
// never left behind a successful one.
package jobstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"greengpu/internal/iofault"
	"greengpu/internal/telemetry"
)

// Journal metrics (see docs/OBSERVABILITY.md "Infrastructure faults").
// No-ops unless telemetry is enabled.
var (
	metricAppends = telemetry.NewCounter("greengpu_jobstore_appends_total",
		"Records durably appended to the job journal.")
	metricTornTails = telemetry.NewCounter("greengpu_jobstore_torn_tails_total",
		"Torn or corrupt journal tails truncated at open.")
)

// Record ops.
const (
	// OpAccept journals an accepted job before its 202 is written.
	OpAccept = "accept"
	// OpFinish journals a job's terminal state.
	OpFinish = "finish"
)

// Record is one journal entry. Accept records carry the replayable
// request (Kind + Spec); finish records carry the terminal State and, for
// failures, the error text.
type Record struct {
	// Seq is the job's journal-assigned sequence number; it doubles as
	// the daemon's job id so ids survive restarts.
	Seq uint64 `json:"seq"`
	// Op is OpAccept or OpFinish.
	Op string `json:"op"`
	// Kind is the job kind ("sweep" or "fleet") on accept records.
	Kind string `json:"kind,omitempty"`
	// Spec is the job's spec string on accept records — the full
	// replayable request.
	Spec string `json:"spec,omitempty"`
	// State is the terminal state ("done", "failed", "canceled") on
	// finish records.
	State string `json:"state,omitempty"`
	// Err is the failure text on failed finish records.
	Err string `json:"err,omitempty"`
	// At is the record's wall-clock time in Unix nanoseconds.
	At int64 `json:"at"`
}

// frameHeaderSize is the per-record framing overhead: u32 length + u32 CRC.
const frameHeaderSize = 8

// MaxPayload bounds a single record's JSON payload. Specs are short
// strings; anything larger in a length header is corruption, and the
// decoder treats it as such rather than allocating attacker-controlled
// sizes.
const MaxPayload = 1 << 20

// castagnoli is the CRC-32C table (same polynomial the cache's gob layer
// trusts iSCSI/ext4 with).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// DecodeAll decodes every complete, checksum-valid frame from the start
// of data. It returns the records and the byte length of the valid
// prefix; data[valid:] is the torn or corrupt tail (empty when the whole
// buffer decodes). It never panics on arbitrary input — FuzzJournalDecode
// pins that — and never returns a record from a partial frame.
func DecodeAll(data []byte) (recs []Record, valid int) {
	off := 0
	for {
		if len(data)-off < frameHeaderSize {
			return recs, off
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > MaxPayload || len(data)-off-frameHeaderSize < int(n) {
			return recs, off
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+int(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, off
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, off
		}
		recs = append(recs, rec)
		off += frameHeaderSize + int(n)
	}
}

// appendFrame appends one CRC frame for payload to buf and returns the
// extended slice.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	return append(append(buf, hdr[:]...), payload...)
}

// Pending reduces a replayed record stream to the jobs with an accept but
// no terminal record, in accept order. Duplicate accepts for one seq keep
// the last; finish records for unknown seqs are ignored (both arise from
// retried appends and are harmless).
func Pending(recs []Record) []Record {
	byseq := make(map[uint64]int, len(recs))
	var out []Record
	for _, r := range recs {
		switch r.Op {
		case OpAccept:
			if i, ok := byseq[r.Seq]; ok {
				out[i] = r
				continue
			}
			byseq[r.Seq] = len(out)
			out = append(out, r)
		case OpFinish:
			if i, ok := byseq[r.Seq]; ok {
				out[i].Op = "" // tombstone
			}
		}
	}
	pend := out[:0]
	for _, r := range out {
		if r.Op == OpAccept {
			pend = append(pend, r)
		}
	}
	return pend
}

// Journal is an open job journal. Append is safe for concurrent use; Open
// and Close are not.
type Journal struct {
	mu        sync.Mutex
	fsys      iofault.FS
	path      string
	f         iofault.File
	committed int64 // durable length: every byte below this is a whole frame
	next      uint64
	retry     iofault.RetryPolicy
	closed    bool
}

// journalFile is the journal's file name inside the state directory.
const journalFile = "jobs.journal"

// Open opens (creating if needed) the journal under dir, replays it, and
// returns the pending accept records awaiting re-execution. A torn or
// corrupt tail is truncated in place before the journal accepts new
// appends. fsys nil means iofault.Disk.
func Open(dir string, fsys iofault.FS) (*Journal, []Record, error) {
	if fsys == nil {
		fsys = iofault.Disk
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("jobstore: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	data, err := readAll(fsys, path)
	if err != nil {
		return nil, nil, fmt.Errorf("jobstore: read %s: %w", path, err)
	}
	recs, valid := DecodeAll(data)
	if valid < len(data) {
		metricTornTails.Inc()
		if err := fsys.Truncate(path, int64(valid)); err != nil {
			return nil, nil, fmt.Errorf("jobstore: truncate torn tail of %s: %w", path, err)
		}
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobstore: open %s: %w", path, err)
	}
	var next uint64
	for _, r := range recs {
		if r.Seq >= next {
			next = r.Seq + 1
		}
	}
	j := &Journal{
		fsys:      fsys,
		path:      path,
		f:         f,
		committed: int64(valid),
		next:      next,
	}
	return j, Pending(recs), nil
}

// readAll reads path fully through fsys, returning nil for a missing file.
func readAll(fsys iofault.FS, path string) ([]byte, error) {
	f, err := fsys.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// NextSeq reserves and returns the next sequence number. The daemon uses
// it as the job id it journals and returns to the client.
func (j *Journal) NextSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	seq := j.next
	j.next++
	return seq
}

// SetRetry replaces the append retry policy (default: RetryPolicy zero
// value — 3 attempts, 1ms doubling backoff capped at 50ms).
func (j *Journal) SetRetry(p iofault.RetryPolicy) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.retry = p
}

// Append durably appends rec: the frame is written and fsynced before
// Append returns nil. Transient write failures are retried under the
// journal's RetryPolicy; between attempts the file is rewound (truncated)
// to the last committed length so a torn frame from a failed attempt
// never precedes a successful one. On a returned error the journal is
// still usable and the file holds only whole frames.
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobstore: encode record: %w", err)
	}
	if len(payload) > MaxPayload {
		return fmt.Errorf("jobstore: record payload %d bytes exceeds %d", len(payload), MaxPayload)
	}
	frame := appendFrame(nil, payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("jobstore: append to closed journal")
	}
	err = j.retry.Do(func() error {
		// Rewind any torn frame a previous attempt left. O_APPEND writes
		// land at the (new) end after truncation.
		if err := j.fsys.Truncate(j.path, j.committed); err != nil {
			return err
		}
		if err := writeFull(j.f, frame); err != nil {
			return err
		}
		return j.f.Sync()
	})
	if err != nil {
		// Leave only whole frames behind even on final failure.
		if terr := j.fsys.Truncate(j.path, j.committed); terr != nil {
			return fmt.Errorf("jobstore: append failed (%w) and rewind failed (%v)", err, terr)
		}
		return fmt.Errorf("jobstore: append: %w", err)
	}
	j.committed += int64(len(frame))
	metricAppends.Inc()
	return nil
}

// writeFull drives f.Write until every byte of p is written or an error
// occurs.
func writeFull(f iofault.File, p []byte) error {
	for len(p) > 0 {
		n, err := f.Write(p)
		if err != nil {
			return err
		}
		p = p[n:]
	}
	return nil
}

// Compact rewrites the journal to hold only accept records for the given
// pending seqs (typically the still-running jobs), dropping finished
// history. It writes a temp file, fsyncs, and renames over the journal;
// on any failure the original journal is left untouched and the error
// returned. The daemon compacts at open, bounding journal growth to the
// live job set.
func (j *Journal) Compact(pending []Record) error {
	var buf []byte
	for _, r := range pending {
		payload, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("jobstore: encode record: %w", err)
		}
		buf = appendFrame(buf, payload)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("jobstore: compact closed journal")
	}
	dir := filepath.Dir(j.path)
	tmp, err := j.fsys.CreateTemp(dir, journalFile+".tmp-*")
	if err != nil {
		return fmt.Errorf("jobstore: compact: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		j.fsys.Remove(tmpName)
		return fmt.Errorf("jobstore: compact: %w", err)
	}
	if err := writeFull(tmp, buf); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := j.fsys.Rename(tmpName, j.path); err != nil {
		return fail(err)
	}
	// Reopen the append handle on the new file.
	j.f.Close()
	f, err := j.fsys.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: reopen after compact: %w", err)
	}
	j.f = f
	j.committed = int64(len(buf))
	return nil
}

// Close syncs and closes the journal. It is idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	serr := j.f.Sync()
	cerr := j.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Path returns the journal file's path (for logs and tests).
func (j *Journal) Path() string {
	return j.path
}
