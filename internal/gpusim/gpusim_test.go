package gpusim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"greengpu/internal/sim"
	"greengpu/internal/units"
)

// testConfig returns a deliberately simple device: 1 SP at IPC 1, 1 byte per
// memory cycle, so ops map 1:1 to core cycles and bytes 1:1 to memory cycles.
func testConfig(gamma float64) Config {
	return Config{
		Name:             "test-gpu",
		SMs:              1,
		SPsPerSM:         1,
		IPC:              1,
		CoreLevels:       []units.Frequency{100 * units.Megahertz, 200 * units.Megahertz},
		MemLevels:        []units.Frequency{100 * units.Megahertz, 200 * units.Megahertz},
		BytesPerMemCycle: 1,
		OverlapGamma:     gamma,
		Power: PowerParams{
			Board:         10,
			CoreClockTree: 4,
			CoreDynamic:   20,
			MemClockTree:  2,
			MemDynamic:    10,
		},
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(0)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero SMs", func(c *Config) { c.SMs = 0 }},
		{"zero SPs", func(c *Config) { c.SPsPerSM = 0 }},
		{"zero IPC", func(c *Config) { c.IPC = 0 }},
		{"no core levels", func(c *Config) { c.CoreLevels = nil }},
		{"no mem levels", func(c *Config) { c.MemLevels = nil }},
		{"zero bytes/cycle", func(c *Config) { c.BytesPerMemCycle = 0 }},
		{"gamma > 1", func(c *Config) { c.OverlapGamma = 1.5 }},
		{"gamma < 0", func(c *Config) { c.OverlapGamma = -0.1 }},
		{"descending ladder", func(c *Config) {
			c.CoreLevels = []units.Frequency{200 * units.Megahertz, 100 * units.Megahertz}
		}},
		{"duplicate level", func(c *Config) {
			c.MemLevels = []units.Frequency{100 * units.Megahertz, 100 * units.Megahertz}
		}},
		{"negative level", func(c *Config) {
			c.CoreLevels = []units.Frequency{-1}
		}},
	}
	for _, m := range mutations {
		c := testConfig(0)
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad config", m.name)
		}
	}
}

func TestBootsAtLowestLevels(t *testing.T) {
	g := New(sim.New(), testConfig(0))
	if g.CoreLevel() != 0 || g.MemLevel() != 0 {
		t.Errorf("boot levels = (%d,%d), want (0,0)", g.CoreLevel(), g.MemLevel())
	}
	if g.CoreFrequency() != 100*units.Megahertz {
		t.Errorf("boot core frequency = %v", g.CoreFrequency())
	}
}

func TestComputeOnlyKernelTiming(t *testing.T) {
	e := sim.New()
	g := New(e, testConfig(0))
	g.SetLevels(1, 1)                                            // 200 MHz core
	k := &Kernel{Name: "compute", Phases: []Phase{{Ops: 200e6}}} // 1s at 200MHz
	g.Submit(k)
	e.Run()
	if got, want := k.ExecTime(), time.Second; absDur(got-want) > time.Microsecond {
		t.Errorf("ExecTime = %v, want %v", got, want)
	}
}

func TestMemoryOnlyKernelTiming(t *testing.T) {
	e := sim.New()
	g := New(e, testConfig(0))
	// 100 MHz memory, 1 byte/cycle -> 100 MB/s.
	k := &Kernel{Name: "mem", Phases: []Phase{{Bytes: 50e6}}}
	g.Submit(k)
	e.Run()
	if got, want := k.ExecTime(), 500*time.Millisecond; absDur(got-want) > time.Microsecond {
		t.Errorf("ExecTime = %v, want %v", got, want)
	}
}

func TestMixedPhaseOverlap(t *testing.T) {
	e := sim.New()
	g := New(e, testConfig(0.5))
	// At level 0: Tc = 1s (100e6 ops @100MHz), Tm = 0.5s -> T = 1 + 0.5*0.5 = 1.25s
	k := &Kernel{Name: "mixed", Phases: []Phase{{Ops: 100e6, Bytes: 50e6}}}
	g.Submit(k)
	e.Run()
	if got, want := k.ExecTime(), 1250*time.Millisecond; absDur(got-want) > time.Microsecond {
		t.Errorf("ExecTime = %v, want %v", got, want)
	}
}

func TestUtilizationDuringPhase(t *testing.T) {
	e := sim.New()
	g := New(e, testConfig(0))
	// Tc = 1s, Tm = 0.5s, gamma=0 -> T = 1s, u_core = 1, u_mem = 0.5.
	g.Submit(&Kernel{Name: "u", Phases: []Phase{{Ops: 100e6, Bytes: 50e6}}})
	e.RunUntil(100 * time.Millisecond)
	uc, um := g.Utilization()
	if math.Abs(uc-1) > 1e-9 || math.Abs(um-0.5) > 1e-9 {
		t.Errorf("utilization = (%v,%v), want (1,0.5)", uc, um)
	}
	e.Run()
	uc, um = g.Utilization()
	if uc != 0 || um != 0 {
		t.Errorf("idle utilization = (%v,%v), want (0,0)", uc, um)
	}
}

func TestCountersWindow(t *testing.T) {
	e := sim.New()
	g := New(e, testConfig(0))
	before := g.Counters()
	g.Submit(&Kernel{Name: "w", Phases: []Phase{{Ops: 100e6, Bytes: 25e6}}}) // T=1s, uc=1, um=0.25
	e.RunUntil(2 * time.Second)                                              // busy 1s + idle 1s
	w := g.Counters().Since(before)
	if w.Duration != 2*time.Second {
		t.Fatalf("window duration = %v", w.Duration)
	}
	if math.Abs(w.CoreUtil-0.5) > 1e-6 {
		t.Errorf("window core util = %v, want 0.5", w.CoreUtil)
	}
	if math.Abs(w.MemUtil-0.125) > 1e-6 {
		t.Errorf("window mem util = %v, want 0.125", w.MemUtil)
	}
}

func TestEnergyAccounting(t *testing.T) {
	e := sim.New()
	g := New(e, testConfig(0))
	g.SetLevels(1, 1)
	// Pure compute 1s at level 1: uc=1, um=0.
	// P = 10 + 1*(4 + 20*1) + 1*(2 + 0) = 36 W busy.
	g.Submit(&Kernel{Name: "e", Phases: []Phase{{Ops: 200e6}}})
	e.Run()
	busy := g.Counters().Energy
	if math.Abs(busy.Joules()-36) > 1e-6 {
		t.Errorf("busy energy = %v J, want 36", busy.Joules())
	}
	// One idle second at peak levels: P = 10 + 4 + 2 = 16 W.
	e.RunUntil(e.Now() + time.Second)
	idle := g.Counters().Energy - busy
	if math.Abs(idle.Joules()-16) > 1e-6 {
		t.Errorf("idle energy = %v J, want 16", idle.Joules())
	}
}

func TestIdlePowerScalesWithFrequency(t *testing.T) {
	g := New(sim.New(), testConfig(0))
	low := g.InstantPower()
	g.SetLevels(1, 1)
	high := g.InstantPower()
	if low >= high {
		t.Errorf("idle power at lowest clocks (%v) should be below peak clocks (%v)", low, high)
	}
	// Exact: low = 10 + 0.5*4 + 0.5*2 = 13, high = 16.
	if math.Abs(low.Watts()-13) > 1e-9 || math.Abs(high.Watts()-16) > 1e-9 {
		t.Errorf("idle power = %v/%v, want 13/16", low, high)
	}
}

func TestFrequencyChangeMidPhase(t *testing.T) {
	e := sim.New()
	g := New(e, testConfig(0))
	g.SetCoreLevel(1) // 200 MHz
	// 400e6 ops -> 2s at 200 MHz.
	k := &Kernel{Name: "dvfs", Phases: []Phase{{Ops: 400e6}}}
	g.Submit(k)
	e.RunUntil(time.Second) // half done
	g.SetCoreLevel(0)       // 100 MHz: remaining 200e6 ops take 2s more
	e.Run()
	if got, want := k.ExecTime(), 3*time.Second; absDur(got-want) > time.Microsecond {
		t.Errorf("ExecTime = %v, want %v", got, want)
	}
}

func TestFrequencyChangeNoOp(t *testing.T) {
	e := sim.New()
	g := New(e, testConfig(0))
	k := &Kernel{Name: "noop", Phases: []Phase{{Ops: 100e6}}}
	g.Submit(k)
	e.RunUntil(300 * time.Millisecond)
	g.SetLevels(0, 0) // same levels: must not re-time
	e.Run()
	if got, want := k.ExecTime(), time.Second; absDur(got-want) > time.Microsecond {
		t.Errorf("ExecTime = %v, want %v", got, want)
	}
}

func TestMemFrequencyChangeMidMemPhase(t *testing.T) {
	e := sim.New()
	g := New(e, testConfig(0))
	g.SetMemLevel(1)                                         // 200 MB/s
	k := &Kernel{Name: "m", Phases: []Phase{{Bytes: 400e6}}} // 2s
	g.Submit(k)
	e.RunUntil(500 * time.Millisecond) // 100e6 bytes done
	g.SetMemLevel(0)                   // 100 MB/s: remaining 300e6 -> 3s
	e.Run()
	if got, want := k.ExecTime(), 3500*time.Millisecond; absDur(got-want) > time.Microsecond {
		t.Errorf("ExecTime = %v, want %v", got, want)
	}
}

func TestKernelQueueing(t *testing.T) {
	e := sim.New()
	g := New(e, testConfig(0))
	k1 := &Kernel{Name: "k1", Phases: []Phase{{Ops: 100e6}}} // 1s
	k2 := &Kernel{Name: "k2", Phases: []Phase{{Ops: 100e6}}} // 1s
	g.Submit(k1)
	g.Submit(k2)
	if g.QueueLen() != 1 {
		t.Fatalf("QueueLen = %d, want 1", g.QueueLen())
	}
	e.Run()
	if k1.QueueTime() != 0 {
		t.Errorf("k1 queue time = %v, want 0", k1.QueueTime())
	}
	if absDur(k2.QueueTime()-time.Second) > time.Microsecond {
		t.Errorf("k2 queue time = %v, want 1s", k2.QueueTime())
	}
	if absDur(k2.ExecTime()-time.Second) > time.Microsecond {
		t.Errorf("k2 exec time = %v, want 1s", k2.ExecTime())
	}
	if got := g.Counters().KernelsCompleted; got != 2 {
		t.Errorf("KernelsCompleted = %d, want 2", got)
	}
}

func TestOnCompleteCallback(t *testing.T) {
	e := sim.New()
	g := New(e, testConfig(0))
	var doneAt time.Duration
	g.Submit(&Kernel{
		Name:       "cb",
		Phases:     []Phase{{Ops: 100e6}},
		OnComplete: func() { doneAt = e.Now() },
	})
	e.Run()
	if doneAt != time.Second {
		t.Errorf("OnComplete at %v, want 1s", doneAt)
	}
}

func TestChainedSubmissionFromCallback(t *testing.T) {
	e := sim.New()
	g := New(e, testConfig(0))
	iterations := 0
	var launch func()
	launch = func() {
		if iterations >= 3 {
			return
		}
		iterations++
		g.Submit(&Kernel{Name: "iter", Phases: []Phase{{Ops: 100e6}}, OnComplete: launch})
	}
	launch()
	e.Run()
	if iterations != 3 {
		t.Errorf("iterations = %d, want 3", iterations)
	}
	if e.Now() != 3*time.Second {
		t.Errorf("finished at %v, want 3s", e.Now())
	}
}

func TestEmptyKernelCompletesImmediately(t *testing.T) {
	e := sim.New()
	g := New(e, testConfig(0))
	done := false
	g.Submit(&Kernel{Name: "empty", OnComplete: func() { done = true }})
	if !done {
		t.Error("empty kernel did not complete synchronously")
	}
	if g.Busy() {
		t.Error("device still busy after empty kernel")
	}
}

func TestZeroDemandPhaseSkipped(t *testing.T) {
	e := sim.New()
	g := New(e, testConfig(0))
	k := &Kernel{Name: "zero", Phases: []Phase{{}, {Ops: 100e6}, {}}}
	g.Submit(k)
	e.Run()
	if absDur(k.ExecTime()-time.Second) > time.Microsecond {
		t.Errorf("ExecTime = %v, want 1s", k.ExecTime())
	}
}

func TestMultiPhaseKernel(t *testing.T) {
	e := sim.New()
	g := New(e, testConfig(0))
	k := &Kernel{Name: "mp", Phases: []Phase{
		{Ops: 100e6},  // 1s, core-bound
		{Bytes: 50e6}, // 0.5s, mem-bound
	}}
	before := g.Counters()
	g.Submit(k)
	e.Run()
	if absDur(k.ExecTime()-1500*time.Millisecond) > time.Microsecond {
		t.Errorf("ExecTime = %v, want 1.5s", k.ExecTime())
	}
	w := g.Counters().Since(before)
	// core busy 1s of 1.5s, mem busy 0.5s of 1.5s.
	if math.Abs(w.CoreUtil-2.0/3) > 1e-6 || math.Abs(w.MemUtil-1.0/3) > 1e-6 {
		t.Errorf("utilizations = (%v,%v), want (0.667,0.333)", w.CoreUtil, w.MemUtil)
	}
}

func TestSubmitNilPanics(t *testing.T) {
	g := New(sim.New(), testConfig(0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Submit(nil)
}

func TestNegativeDemandPanics(t *testing.T) {
	e := sim.New()
	g := New(e, testConfig(0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Submit(&Kernel{Name: "neg", Phases: []Phase{{Ops: -1}}})
}

func TestSetLevelsOutOfRangePanics(t *testing.T) {
	g := New(sim.New(), testConfig(0))
	for _, fn := range []func(){
		func() { g.SetCoreLevel(-1) },
		func() { g.SetCoreLevel(2) },
		func() { g.SetMemLevel(-1) },
		func() { g.SetMemLevel(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range level")
				}
			}()
			fn()
		}()
	}
}

func TestPhaseTimeMatchesExecution(t *testing.T) {
	e := sim.New()
	g := New(e, testConfig(0.3))
	want := g.PhaseTime(123e6, 77e6, 0, 1, 0)
	g.SetLevels(1, 0)
	k := &Kernel{Name: "pt", Phases: []Phase{{Ops: 123e6, Bytes: 77e6}}}
	g.Submit(k)
	e.Run()
	if absDur(k.ExecTime()-want) > time.Microsecond {
		t.Errorf("ExecTime = %v, PhaseTime predicted %v", k.ExecTime(), want)
	}
}

func TestPeakBandwidth(t *testing.T) {
	g := New(sim.New(), testConfig(0))
	if got := g.PeakBandwidth(); got != units.Bandwidth(100e6) {
		t.Errorf("PeakBandwidth = %v, want 100 MB/s", got)
	}
	g.SetMemLevel(1)
	if got := g.PeakBandwidth(); got != units.Bandwidth(200e6) {
		t.Errorf("PeakBandwidth = %v, want 200 MB/s", got)
	}
}

// Property: observing the device (Counters) at arbitrary times never changes
// kernel completion time.
func TestObservationInvarianceProperty(t *testing.T) {
	f := func(probes []uint16) bool {
		e := sim.New()
		g := New(e, testConfig(0.2))
		k := &Kernel{Name: "p", Phases: []Phase{{Ops: 300e6, Bytes: 100e6}}}
		g.Submit(k)
		base := g.PhaseTime(300e6, 100e6, 0, 0, 0)
		for _, p := range probes {
			at := time.Duration(p) * time.Millisecond
			if at <= e.Now() {
				continue
			}
			if at >= base {
				break
			}
			e.RunUntil(at)
			g.Counters() // observation must be side-effect free on timing
		}
		e.Run()
		return absDur(k.ExecTime()-base) <= time.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: switching levels and immediately switching back mid-phase leaves
// total work conserved — execution time equals time spent at each rate such
// that fractions sum to 1 (here verified as: never shorter than the
// all-at-high time and never longer than the all-at-low time).
func TestDVFSBoundsProperty(t *testing.T) {
	f := func(switchMs uint16, lvl uint8) bool {
		e := sim.New()
		g := New(e, testConfig(0))
		g.SetLevels(1, 1)
		k := &Kernel{Name: "b", Phases: []Phase{{Ops: 400e6, Bytes: 100e6}}}
		g.Submit(k)
		fast := g.PhaseTime(400e6, 100e6, 0, 1, 1)
		slow := g.PhaseTime(400e6, 100e6, 0, 0, 0)
		at := time.Duration(switchMs) * time.Millisecond
		if at > 0 && at < fast {
			e.RunUntil(at)
			g.SetLevels(int(lvl)%2, int(lvl/2)%2)
		}
		e.Run()
		return k.ExecTime() >= fast-time.Microsecond && k.ExecTime() <= slow+time.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: energy integral is additive across observation windows.
func TestEnergyAdditivityProperty(t *testing.T) {
	f := func(aMs, bMs uint16) bool {
		e := sim.New()
		g := New(e, testConfig(0.1))
		g.Submit(&Kernel{Name: "e", Phases: []Phase{{Ops: 200e6, Bytes: 150e6}}})
		t1 := time.Duration(aMs) * time.Millisecond
		t2 := t1 + time.Duration(bMs)*time.Millisecond
		c0 := g.Counters()
		e.RunUntil(t1)
		c1 := g.Counters()
		e.RunUntil(t2)
		c2 := g.Counters()
		sum := (c1.Energy - c0.Energy) + (c2.Energy - c1.Energy)
		return math.Abs(float64(sum-(c2.Energy-c0.Energy))) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

func TestStallOnlyPhase(t *testing.T) {
	e := sim.New()
	g := New(e, testConfig(0))
	k := &Kernel{Name: "stall", Phases: []Phase{{Stall: 2}}}
	g.Submit(k)
	e.RunUntil(time.Second)
	uc, um := g.Utilization()
	if uc != 0 || um != 0 {
		t.Errorf("stall utilization = (%v,%v), want (0,0)", uc, um)
	}
	e.Run()
	if absDur(k.ExecTime()-2*time.Second) > time.Microsecond {
		t.Errorf("ExecTime = %v, want 2s", k.ExecTime())
	}
}

func TestStallIsFrequencyIndependent(t *testing.T) {
	run := func(level int) time.Duration {
		e := sim.New()
		g := New(e, testConfig(0))
		g.SetLevels(level, level)
		k := &Kernel{Name: "s", Phases: []Phase{{Stall: 1.5}}}
		g.Submit(k)
		e.Run()
		return k.ExecTime()
	}
	if a, b := run(0), run(1); absDur(a-b) > time.Microsecond {
		t.Errorf("stall time varies with frequency: %v vs %v", a, b)
	}
}

func TestStallDilutesUtilization(t *testing.T) {
	e := sim.New()
	g := New(e, testConfig(0))
	// Tc = 1s, Tm = 0.5s, stall 1.5s -> T = max(1, 0.5, 1.5) = 1.5s:
	// uc = 2/3, um = 1/3.
	g.Submit(&Kernel{Name: "d", Phases: []Phase{{Ops: 100e6, Bytes: 50e6, Stall: 1.5}}})
	e.RunUntil(100 * time.Millisecond)
	uc, um := g.Utilization()
	if math.Abs(uc-2.0/3) > 1e-9 || math.Abs(um-1.0/3) > 1e-9 {
		t.Errorf("utilization = (%v,%v), want (0.667,0.333)", uc, um)
	}
	e.Run()
}

func TestStallBelowCriticalPathIsFree(t *testing.T) {
	e := sim.New()
	g := New(e, testConfig(0))
	// Stall 0.5s < Tc = 1s: the latency floor hides under the compute
	// critical path and execution time is just Tc.
	k := &Kernel{Name: "hidden", Phases: []Phase{{Ops: 100e6, Bytes: 25e6, Stall: 0.5}}}
	g.Submit(k)
	e.Run()
	if absDur(k.ExecTime()-time.Second) > time.Microsecond {
		t.Errorf("ExecTime = %v, want 1s", k.ExecTime())
	}
}

func TestThrottlingUnderUtilizedDomainIsFree(t *testing.T) {
	// The paper's observation 1: while a domain's busy time is below the
	// critical path, throttling it changes energy but not execution time.
	run := func(memLevel int) time.Duration {
		e := sim.New()
		g := New(e, testConfig(0))
		g.SetLevels(1, memLevel)
		// Tc = 1s at level 1; Tm = 0.25s at mem level 1, 0.5s at level 0.
		k := &Kernel{Name: "free", Phases: []Phase{{Ops: 200e6, Bytes: 50e6}}}
		g.Submit(k)
		e.Run()
		return k.ExecTime()
	}
	if a, b := run(1), run(0); absDur(a-b) > time.Microsecond {
		t.Errorf("throttling sub-critical memory changed exec time: %v vs %v", a, b)
	}
}

func TestThrottlingPastKneeHurts(t *testing.T) {
	// Observation 2: once the throttled domain's busy time crosses the
	// critical path, execution time grows.
	run := func(coreLevel int) time.Duration {
		e := sim.New()
		g := New(e, testConfig(0))
		g.SetLevels(coreLevel, 1)
		// At core level 1: Tc = 1s; at level 0: Tc = 2s. Tm = 0.75s.
		k := &Kernel{Name: "knee", Phases: []Phase{{Ops: 200e6, Bytes: 150e6}}}
		g.Submit(k)
		e.Run()
		return k.ExecTime()
	}
	fast, slow := run(1), run(0)
	if slow <= fast {
		t.Errorf("throttling the bottleneck domain did not slow execution: %v vs %v", fast, slow)
	}
	if absDur(slow-2*time.Second) > time.Microsecond {
		t.Errorf("slow = %v, want 2s", slow)
	}
}

func TestPhaseUtilizationPrediction(t *testing.T) {
	g := New(sim.New(), testConfig(0))
	uc, um := g.PhaseUtilization(100e6, 50e6, 1.5, 0, 0)
	if math.Abs(uc-2.0/3) > 1e-9 || math.Abs(um-1.0/3) > 1e-9 {
		t.Errorf("PhaseUtilization = (%v,%v), want (0.667,0.333)", uc, um)
	}
	uc, um = g.PhaseUtilization(0, 0, 0, 0, 0)
	if uc != 0 || um != 0 {
		t.Errorf("empty PhaseUtilization = (%v,%v)", uc, um)
	}
}

func TestNegativeStallPanics(t *testing.T) {
	e := sim.New()
	g := New(e, testConfig(0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Submit(&Kernel{Name: "neg", Phases: []Phase{{Stall: -1}}})
}

func TestActiveSMsScaling(t *testing.T) {
	cfg := testConfig(0)
	cfg.SMs = 4
	run := func(sms int) time.Duration {
		e := sim.New()
		g := New(e, cfg)
		g.SetActiveSMs(sms)
		k := &Kernel{Name: "s", Phases: []Phase{{Ops: 400e6}}}
		g.Submit(k)
		e.Run()
		return k.ExecTime()
	}
	full, half := run(4), run(2)
	if absDur(half-2*full) > time.Microsecond {
		t.Errorf("halving SMs should double compute time: %v vs %v", full, half)
	}
}

func TestActiveSMsGatingPower(t *testing.T) {
	cfg := testConfig(0)
	cfg.SMs = 4
	cfg.Power.CoreGatable = 0.5
	e := sim.New()
	g := New(e, cfg)
	// Idle at lowest clocks: core term = 0.5·4 W · scale.
	full := g.InstantPower()
	g.SetActiveSMs(1)
	gated := g.InstantPower()
	if gated >= full {
		t.Errorf("gating saved no power: %v -> %v", full, gated)
	}
	// Exact: scale = 0.5 + 0.5·(1/4) = 0.625; core idle term 0.5·4 = 2 W
	// becomes 1.25 W: saving 0.75 W.
	if math.Abs(float64(full-gated)-0.75) > 1e-9 {
		t.Errorf("gating saved %v W, want 0.75", float64(full-gated))
	}
}

func TestActiveSMsNoGatableNoSaving(t *testing.T) {
	cfg := testConfig(0)
	cfg.SMs = 4 // CoreGatable defaults to 0, like the G80
	g := New(sim.New(), cfg)
	before := g.InstantPower()
	g.SetActiveSMs(1)
	if g.InstantPower() != before {
		t.Error("gating changed power on a non-gatable device")
	}
}

func TestActiveSMsMidPhaseRetiming(t *testing.T) {
	cfg := testConfig(0)
	cfg.SMs = 2
	e := sim.New()
	g := New(e, cfg)
	// 2 SMs at 100 MHz: 200e6 ops -> 1s.
	k := &Kernel{Name: "mid", Phases: []Phase{{Ops: 200e6}}}
	g.Submit(k)
	e.RunUntil(500 * time.Millisecond) // half done
	g.SetActiveSMs(1)                  // remaining 100e6 ops at 1 SM -> 1s
	e.Run()
	if absDur(k.ExecTime()-1500*time.Millisecond) > time.Microsecond {
		t.Errorf("ExecTime = %v, want 1.5s", k.ExecTime())
	}
}

func TestActiveSMsOutOfRangePanics(t *testing.T) {
	g := New(sim.New(), testConfig(0))
	for _, n := range []int{0, 2} {
		n := n
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetActiveSMs(%d) did not panic", n)
				}
			}()
			g.SetActiveSMs(n)
		}()
	}
}

func TestCoreGatableValidation(t *testing.T) {
	cfg := testConfig(0)
	cfg.Power.CoreGatable = 1.5
	if err := cfg.Validate(); err == nil {
		t.Error("CoreGatable > 1 accepted")
	}
}
