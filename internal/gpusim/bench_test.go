package gpusim

import (
	"testing"
	"time"

	"greengpu/internal/sim"
)

// BenchmarkKernelExecution measures the simulator cost of running one
// multi-phase kernel to completion — phases are O(1) regardless of the
// simulated work amount, which is what makes whole-evaluation runs take
// microseconds.
func BenchmarkKernelExecution(b *testing.B) {
	e := sim.New()
	g := New(e, testConfig(0.15))
	for i := 0; i < b.N; i++ {
		g.Submit(&Kernel{Name: "b", Phases: []Phase{
			{Ops: 1e9, Bytes: 2e8},
			{Ops: 5e8, Bytes: 6e8},
			{Ops: 2e9, Bytes: 1e8, Stall: 0.5},
		}})
		e.Run()
	}
}

// BenchmarkFrequencyChangeMidPhase measures the DVFS re-timing path:
// cancel the in-flight completion event, carry over remaining demand,
// re-time at the new clocks.
func BenchmarkFrequencyChangeMidPhase(b *testing.B) {
	e := sim.New()
	g := New(e, testConfig(0.15))
	relaunch := func() {}
	relaunch = func() {
		// ~10^7 simulated seconds per kernel: far beyond what the bench
		// loop consumes, resubmitted if it ever completes.
		g.Submit(&Kernel{Name: "long", Phases: []Phase{{Ops: 1e15}}, OnComplete: relaunch})
	}
	relaunch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunUntil(e.Now() + time.Millisecond)
		g.SetLevels(i%2, (i/2)%2)
	}
}

// BenchmarkCounters measures the utilization/energy snapshot read the
// scaling tier takes every interval.
func BenchmarkCounters(b *testing.B) {
	e := sim.New()
	g := New(e, testConfig(0.15))
	g.Submit(&Kernel{Name: "bg", Phases: []Phase{{Ops: 1e18}}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Counters()
	}
}
