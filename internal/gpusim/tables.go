package gpusim

import (
	"time"

	"greengpu/internal/units"
)

// Tables holds the per-frequency-level derived constants of a GPU
// configuration, decoupled from any live device: the same
// structure-of-arrays the GPU hot paths index, built once and shared
// read-only across a whole batch of simulation points (see internal/sweep).
//
// Entries are computed by exactly the same code the device uses (with all
// stream multiprocessors active), so timing and power derived from a Tables
// are bit-identical to what a freshly assembled device reports at the same
// levels and utilizations.
type Tables struct {
	// CoreDenom[i] is ops/s at core level i: SMs·SPsPerSM·IPC·f.
	CoreDenom []float64
	// MemDenom[j] is bytes/s at memory level j: BytesPerMemCycle·f.
	MemDenom []float64
	// CoreFRatio[i] is f_core(i)/f_core(peak).
	CoreFRatio []float64
	// MemFRatio[j] is f_mem(j)/f_mem(peak).
	MemFRatio []float64
	// CoreScale is the SM power-gating factor at full SM count (1 unless
	// the device gates, in which case it is still 1 at activeSMs == SMs).
	CoreScale float64

	gamma float64
	power PowerParams
}

// BuildTables validates cfg and derives its level tables with every stream
// multiprocessor active — the state a fresh device is in.
func BuildTables(cfg Config) (*Tables, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nc, nm := len(cfg.CoreLevels), len(cfg.MemLevels)
	t := &Tables{
		CoreDenom:  make([]float64, nc),
		MemDenom:   make([]float64, nm),
		CoreFRatio: make([]float64, nc),
		MemFRatio:  make([]float64, nm),
		gamma:      cfg.OverlapGamma,
		power:      cfg.Power,
	}
	fillCoreFRatio(&cfg, t.CoreFRatio)
	fillMemTables(&cfg, t.MemDenom, t.MemFRatio)
	t.CoreScale = fillCoreTables(&cfg, cfg.SMs, t.CoreDenom)
	return t, nil
}

// fillCoreFRatio derives the core-frequency ratios. Shared by the live
// device and BuildTables so both produce bit-identical entries.
func fillCoreFRatio(cfg *Config, coreFRatio []float64) {
	corePeak := float64(cfg.CoreLevels[len(cfg.CoreLevels)-1])
	for i, f := range cfg.CoreLevels {
		coreFRatio[i] = float64(f) / corePeak
	}
}

// fillMemTables derives the memory-domain tables. Shared by the live device
// and BuildTables so both produce bit-identical entries.
func fillMemTables(cfg *Config, memDenom, memFRatio []float64) {
	memPeak := float64(cfg.MemLevels[len(cfg.MemLevels)-1])
	for i, f := range cfg.MemLevels {
		memDenom[i] = cfg.BytesPerMemCycle * float64(f)
		memFRatio[i] = float64(f) / memPeak
	}
}

// fillCoreTables derives the active-SM-dependent core tables and returns
// the gating power scale. Shared by the live device (which rebuilds on
// SetActiveSMs) and BuildTables so both produce bit-identical entries.
func fillCoreTables(cfg *Config, activeSMs int, coreDenom []float64) float64 {
	sps := float64(activeSMs * cfg.SPsPerSM)
	for i, f := range cfg.CoreLevels {
		coreDenom[i] = sps * cfg.IPC * float64(f)
	}
	actFrac := float64(activeSMs) / float64(cfg.SMs)
	p := cfg.Power
	return (1 - p.CoreGatable) + p.CoreGatable*actFrac
}

// demandTimesAt converts raw demands into per-domain busy times given the
// level denominators. Zero demand is zero time regardless of the
// denominator.
func demandTimesAt(ops, bytes, coreDenom, memDenom float64) (tc, tm time.Duration) {
	if ops > 0 {
		tc = units.Seconds(ops / coreDenom)
	}
	if bytes > 0 {
		tm = units.Seconds(bytes / memDenom)
	}
	return tc, tm
}

// UnifyPhaseTime combines per-domain busy times into the phase's execution
// time under the roofline-with-overlap model: max(Tc, Tm, Ts) + γ·min(Tc,
// Tm), where the stall floor Ts is given in seconds. It is exported so
// batch evaluators can time phases from Tables without a live device.
func UnifyPhaseTime(tc, tm time.Duration, stall, gamma float64) time.Duration {
	lo, hi := tc, tm
	if lo > hi {
		lo, hi = hi, lo
	}
	if ts := units.Seconds(stall); ts > hi {
		hi = ts
	}
	return hi + time.Duration(gamma*float64(lo))
}

// powerAt composes card power from the tabulated ratios. Shared by the live
// device and Tables.Power so both produce bit-identical values.
func powerAt(p *PowerParams, fcR, fmR, coreScale float64, uc, um float64) units.Power {
	return p.Board +
		units.Power(fcR*coreScale)*(p.CoreClockTree+units.Power(uc)*p.CoreDynamic) +
		units.Power(fmR)*(p.MemClockTree+units.Power(um)*p.MemDynamic)
}

// DemandTimes returns the per-domain busy times of the given demands at
// frequency levels (core, mem).
func (t *Tables) DemandTimes(ops, bytes float64, core, mem int) (tc, tm time.Duration) {
	return demandTimesAt(ops, bytes, t.CoreDenom[core], t.MemDenom[mem])
}

// CoreTime returns the core-domain busy time of ops operations at core
// level core. It is the separable half of DemandTimes, for batch
// evaluators that tabulate the two domains independently.
func (t *Tables) CoreTime(ops float64, core int) time.Duration {
	tc, _ := demandTimesAt(ops, 0, t.CoreDenom[core], t.MemDenom[0])
	return tc
}

// MemTime returns the memory-domain busy time of bytes at memory level mem,
// the other separable half of DemandTimes.
func (t *Tables) MemTime(bytes float64, mem int) time.Duration {
	_, tm := demandTimesAt(0, bytes, t.CoreDenom[0], t.MemDenom[mem])
	return tm
}

// PhaseTime times a phase's demands at levels (core, mem), exactly as a
// live device at those levels would.
func (t *Tables) PhaseTime(ops, bytes, stall float64, core, mem int) time.Duration {
	tc, tm := t.DemandTimes(ops, bytes, core, mem)
	return UnifyPhaseTime(tc, tm, stall, t.gamma)
}

// Gamma returns the configuration's overlap γ.
func (t *Tables) Gamma() float64 { return t.gamma }

// Power returns card power at levels (core, mem) under utilizations
// (uc, um), exactly as a live device at those levels would report.
func (t *Tables) Power(core, mem int, uc, um float64) units.Power {
	return powerAt(&t.power, t.CoreFRatio[core], t.MemFRatio[mem], t.CoreScale, uc, um)
}
