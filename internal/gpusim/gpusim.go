// Package gpusim models a CUDA-class discrete GPU with independently
// clocked core and memory domains, in the style of the GeForce 8800 GTX used
// on the GreenGPU testbed.
//
// The model is deliberately at the granularity the GreenGPU algorithms
// observe: per-domain frequency levels, per-domain utilization counters
// (defined exactly as Nvidia defines them for nvidia-smi: core utilization is
// busy cycles over total cycles, memory utilization is achieved bandwidth
// over rated peak bandwidth), wall-clock kernel execution time, and card
// power. Kernels are sequences of phases; a phase carries a compute demand
// (arithmetic operations spread across all stream processors) and a memory
// demand (bytes moved through the device memory system). Phase execution
// time follows a roofline-with-overlap model:
//
//	Tc = ops   / (SPs · IPC · f_core)
//	Tm = bytes / (bytesPerMemCycle · f_mem)
//	T  = max(Tc, Tm, Ts) + γ·min(Tc, Tm)
//
// where γ ∈ [0,1] captures imperfect compute/memory overlap and Ts is a
// frequency-independent latency floor (memory/PCIe latency chains,
// synchronization, launch gaps) that overlaps with both domains' busy time.
// Utilizations follow as u_core = Tc/T and u_mem = Tm/T.
//
// The latency floor is what makes the model reproduce the paper's two
// motivating observations (§III-A): while a domain's busy time sits below
// the critical path (Tc < max(Tm, Ts)), throttling that domain stretches
// only its busy time — execution time is unchanged and its utilization
// simply rises, so energy is saved for free; once the busy time crosses the
// critical path the domain becomes the bottleneck and further throttling
// hurts performance proportionally — the knee. It is also what lets real
// kernels sit at "medium" or "low" utilization on both domains
// simultaneously (Table II of the paper).
//
// Frequency changes may occur mid-phase; remaining work is carried over and
// re-timed at the new clocks, so the simulation is exact under arbitrary
// DVFS schedules. All accounting (busy-time integrals and energy) is
// analytic, not sampled.
package gpusim

import (
	"fmt"
	"time"

	"greengpu/internal/sim"
	"greengpu/internal/telemetry"
	"greengpu/internal/units"
)

// Package metrics (see docs/OBSERVABILITY.md). No-ops unless telemetry is
// enabled.
var (
	metricKernels = telemetry.NewCounter("greengpu_gpusim_kernels_total",
		"GPU kernels completed across all simulated devices.")
	metricLevelSwitches = telemetry.NewCounter("greengpu_gpusim_level_switches_total",
		"Effective GPU frequency-level changes (SetLevels calls that changed a domain).")
)

// PowerParams parameterizes card power at the measurement boundary of the
// GreenGPU testbed's second meter (the dedicated ATX supply feeding the
// card, i.e. including supply losses and board overhead).
//
// Card power is composed as
//
//	P = Board + (f_core/f_core_peak)·(CoreClockTree + CoreDynamic·u_core)
//	          + (f_mem /f_mem_peak) ·(MemClockTree  + MemDynamic ·u_mem)
//
// The clock-tree terms burn power whenever the domain is clocked, even when
// idle. This is what makes frequency-only scaling (no voltage control, as on
// the 8800 GTX) save energy on under-utilized domains.
type PowerParams struct {
	Board         units.Power // supply losses, fans, VRMs, misc board logic
	CoreClockTree units.Power // core-domain clock distribution at peak clock
	CoreDynamic   units.Power // core-domain switching power at peak clock, u=1
	MemClockTree  units.Power // memory-domain clock distribution at peak clock
	MemDynamic    units.Power // memory-domain switching power at peak clock, u=1

	// CoreGatable is the fraction of core-domain power (clock tree and
	// dynamic alike) that is eliminated when stream multiprocessors are
	// power-gated, in [0,1]. Zero (the default) models a device without
	// per-SM gating, like the G80; a positive value enables the
	// core-count-throttling comparison against Hong & Kim-style
	// policies (the paper's related work [9] and [12]).
	CoreGatable float64
}

// Config describes a GPU device.
type Config struct {
	Name string

	SMs      int     // stream multiprocessors
	SPsPerSM int     // stream processors per SM
	IPC      float64 // sustained operations per SP per core cycle

	// CoreLevels and MemLevels are the selectable frequency ladders,
	// sorted ascending. The device boots at the lowest level of each
	// domain, matching the default state of the testbed card.
	CoreLevels []units.Frequency
	MemLevels  []units.Frequency

	// BytesPerMemCycle converts memory clock to rated peak bandwidth
	// (bus width × pumping). The 8800 GTX's 384-bit GDDR3 at 900 MHz
	// double-pumped gives 86.4 GB/s, i.e. 96 bytes per memory-clock cycle.
	BytesPerMemCycle float64

	// OverlapGamma is the γ in T = max + γ·min. Zero means perfect
	// compute/memory overlap; one means fully serialized.
	OverlapGamma float64

	Power PowerParams
}

// Validate reports the first problem with the configuration, if any.
func (c *Config) Validate() error {
	switch {
	case c.SMs <= 0 || c.SPsPerSM <= 0:
		return fmt.Errorf("gpusim: %q: SMs and SPsPerSM must be positive", c.Name)
	case c.IPC <= 0:
		return fmt.Errorf("gpusim: %q: IPC must be positive", c.Name)
	case len(c.CoreLevels) == 0 || len(c.MemLevels) == 0:
		return fmt.Errorf("gpusim: %q: need at least one core and one memory level", c.Name)
	case c.BytesPerMemCycle <= 0:
		return fmt.Errorf("gpusim: %q: BytesPerMemCycle must be positive", c.Name)
	case c.OverlapGamma < 0 || c.OverlapGamma > 1:
		return fmt.Errorf("gpusim: %q: OverlapGamma must be in [0,1]", c.Name)
	case c.Power.CoreGatable < 0 || c.Power.CoreGatable > 1:
		return fmt.Errorf("gpusim: %q: CoreGatable must be in [0,1]", c.Name)
	}
	for _, ladder := range [][]units.Frequency{c.CoreLevels, c.MemLevels} {
		for i, f := range ladder {
			if f <= 0 {
				return fmt.Errorf("gpusim: %q: non-positive frequency level", c.Name)
			}
			if i > 0 && ladder[i] <= ladder[i-1] {
				return fmt.Errorf("gpusim: %q: frequency levels must be strictly ascending", c.Name)
			}
		}
	}
	return nil
}

// Phase is one homogeneous stretch of kernel execution.
type Phase struct {
	Label string
	Ops   float64 // arithmetic operations, spread across all SPs
	Bytes float64 // bytes moved through device memory
	Stall float64 // frequency-independent latency floor, in seconds
}

// Kernel is a unit of work submitted to the GPU: an ordered list of phases
// plus an optional completion callback.
type Kernel struct {
	Name       string
	Phases     []Phase
	OnComplete func()

	submitted time.Duration
	started   time.Duration
	finished  time.Duration
}

// QueueTime returns how long the kernel waited before execution began.
// Valid once the kernel has started.
func (k *Kernel) QueueTime() time.Duration { return k.started - k.submitted }

// ExecTime returns the kernel's execution time (start to finish). Valid once
// the kernel has completed.
func (k *Kernel) ExecTime() time.Duration { return k.finished - k.started }

// Counters is a snapshot of the device's cumulative accounting. Utilization
// over a window is obtained by differencing two snapshots: the core
// utilization over (a,b] is (b.CoreBusy-a.CoreBusy)/(b.At-a.At), and likewise
// for memory — exactly the busy-cycles-over-total-cycles and
// achieved-over-peak-bandwidth definitions.
type Counters struct {
	At               time.Duration
	CoreBusy         time.Duration // ∫ u_core dt
	MemBusy          time.Duration // ∫ u_mem dt
	Energy           units.Energy  // ∫ P dt
	KernelsCompleted int
}

// Window summarizes device activity between two snapshots.
type Window struct {
	Duration time.Duration
	CoreUtil float64
	MemUtil  float64
	Energy   units.Energy
}

// Since returns the activity window from earlier snapshot a to snapshot c.
func (c Counters) Since(a Counters) Window {
	dt := c.At - a.At
	w := Window{Duration: dt, Energy: c.Energy - a.Energy}
	if dt > 0 {
		w.CoreUtil = units.Clamp(float64(c.CoreBusy-a.CoreBusy)/float64(dt), 0, 1)
		w.MemUtil = units.Clamp(float64(c.MemBusy-a.MemBusy)/float64(dt), 0, 1)
	}
	return w
}

// GPU is a simulated device attached to a sim.Engine.
type GPU struct {
	cfg    Config
	engine *sim.Engine

	coreLevel int
	memLevel  int
	activeSMs int

	// Per-frequency-level derived constants, built once at construction
	// (core tables rebuilt on SetActiveSMs) so advance/power hot paths do
	// table lookups instead of re-deriving multiplication chains. The
	// entries are computed with exactly the operation order the formulas
	// used inline, so results are bit-identical.
	coreDenom  []float64 // ops/s at core level: activeSMs·SPsPerSM·IPC·f
	memDenom   []float64 // bytes/s at mem level: BytesPerMemCycle·f
	coreFRatio []float64 // f_core(level)/f_core(peak)
	memFRatio  []float64 // f_mem(level)/f_mem(peak)
	coreScale  float64   // gating factor (1-CoreGatable)+CoreGatable·activeSMs/SMs

	phaseEnd func() // bound onPhaseEnd, allocated once
	execBuf  execState

	queue   []*Kernel
	running *execState

	lastUpdate time.Duration
	coreBusy   time.Duration
	memBusy    time.Duration
	energy     units.Energy
	completed  int
}

// execState tracks the in-flight phase of the head-of-queue kernel.
type execState struct {
	kernel   *Kernel
	phaseIdx int

	// Remaining demand at the start of the current timing segment.
	remOps   float64
	remBytes float64
	remStall float64

	segStart time.Duration
	segT     time.Duration
	uCore    float64
	uMem     float64

	name     string // phase event label, built once per kernel
	endEvent sim.Event
}

// New creates a GPU bound to the engine. The device boots at the lowest
// frequency level of both domains. It panics on an invalid configuration;
// use Config.Validate to check first.
func New(e *sim.Engine, cfg Config) *GPU {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	g := &GPU{cfg: cfg, engine: e, activeSMs: cfg.SMs, lastUpdate: e.Now()}
	g.phaseEnd = g.onPhaseEnd
	nc, nm := len(cfg.CoreLevels), len(cfg.MemLevels)
	buf := make([]float64, 2*nc+2*nm) // one backing array for all four tables
	g.coreDenom, buf = buf[:nc:nc], buf[nc:]
	g.coreFRatio, buf = buf[:nc:nc], buf[nc:]
	g.memDenom, buf = buf[:nm:nm], buf[nm:]
	g.memFRatio = buf[:nm:nm]
	fillCoreFRatio(&cfg, g.coreFRatio)
	fillMemTables(&cfg, g.memDenom, g.memFRatio)
	g.rebuildCoreTables()
	return g
}

// rebuildCoreTables refreshes the derived constants that depend on the
// active-SM count. Called at construction and from SetActiveSMs.
func (g *GPU) rebuildCoreTables() {
	g.coreScale = fillCoreTables(&g.cfg, g.activeSMs, g.coreDenom)
}

// Config returns the device configuration.
func (g *GPU) Config() Config { return g.cfg }

// CoreLevels returns the core-domain frequency ladder.
func (g *GPU) CoreLevels() []units.Frequency { return g.cfg.CoreLevels }

// MemLevels returns the memory-domain frequency ladder.
func (g *GPU) MemLevels() []units.Frequency { return g.cfg.MemLevels }

// CoreLevel returns the index of the current core frequency level.
func (g *GPU) CoreLevel() int { return g.coreLevel }

// MemLevel returns the index of the current memory frequency level.
func (g *GPU) MemLevel() int { return g.memLevel }

// CoreFrequency returns the current core clock.
func (g *GPU) CoreFrequency() units.Frequency { return g.cfg.CoreLevels[g.coreLevel] }

// MemFrequency returns the current memory clock.
func (g *GPU) MemFrequency() units.Frequency { return g.cfg.MemLevels[g.memLevel] }

// PeakBandwidth returns the rated bandwidth at the current memory clock.
func (g *GPU) PeakBandwidth() units.Bandwidth {
	return units.Bandwidth(g.memDenom[g.memLevel])
}

// Busy reports whether a kernel is executing.
func (g *GPU) Busy() bool { return g.running != nil }

// QueueLen returns the number of kernels waiting behind the running one.
func (g *GPU) QueueLen() int { return len(g.queue) }

// SetLevels changes the core and memory frequency levels, re-timing any
// in-flight phase. Out-of-range indices panic.
func (g *GPU) SetLevels(core, mem int) {
	if core < 0 || core >= len(g.cfg.CoreLevels) {
		panic(fmt.Sprintf("gpusim: core level %d out of range [0,%d)", core, len(g.cfg.CoreLevels)))
	}
	if mem < 0 || mem >= len(g.cfg.MemLevels) {
		panic(fmt.Sprintf("gpusim: mem level %d out of range [0,%d)", mem, len(g.cfg.MemLevels)))
	}
	if core == g.coreLevel && mem == g.memLevel {
		return
	}
	metricLevelSwitches.Inc()
	g.accrue()
	g.coreLevel, g.memLevel = core, mem
	if g.running != nil {
		g.carryOver()
		g.startSegment()
	}
}

// ActiveSMs returns the number of powered stream multiprocessors.
func (g *GPU) ActiveSMs() int { return g.activeSMs }

// SetActiveSMs power-gates all but n stream multiprocessors, re-timing any
// in-flight phase: compute throughput scales with the active count, and
// the gatable share of core-domain power disappears with the gated SMs.
// n outside [1, SMs] panics.
func (g *GPU) SetActiveSMs(n int) {
	if n < 1 || n > g.cfg.SMs {
		panic(fmt.Sprintf("gpusim: active SMs %d out of range [1,%d]", n, g.cfg.SMs))
	}
	if n == g.activeSMs {
		return
	}
	g.accrue()
	g.activeSMs = n
	g.rebuildCoreTables()
	if g.running != nil {
		g.carryOver()
		g.startSegment()
	}
}

// SetCoreLevel changes only the core frequency level.
func (g *GPU) SetCoreLevel(i int) { g.SetLevels(i, g.memLevel) }

// SetMemLevel changes only the memory frequency level.
func (g *GPU) SetMemLevel(i int) { g.SetLevels(g.coreLevel, i) }

// Submit enqueues a kernel. It starts immediately if the device is idle.
func (g *GPU) Submit(k *Kernel) {
	if k == nil {
		panic("gpusim: Submit(nil)")
	}
	k.submitted = g.engine.Now()
	if g.running == nil {
		g.start(k)
		return
	}
	g.queue = append(g.queue, k)
}

// InstantPower returns the device power draw at the current instant.
func (g *GPU) InstantPower() units.Power {
	uc, um := 0.0, 0.0
	if g.running != nil {
		uc, um = g.running.uCore, g.running.uMem
	}
	return g.power(uc, um)
}

// Counters returns a snapshot of cumulative accounting as of now.
func (g *GPU) Counters() Counters {
	g.accrue()
	return Counters{
		At:               g.lastUpdate,
		CoreBusy:         g.coreBusy,
		MemBusy:          g.memBusy,
		Energy:           g.energy,
		KernelsCompleted: g.completed,
	}
}

// Utilization returns the instantaneous core and memory utilizations.
func (g *GPU) Utilization() (core, mem float64) {
	if g.running == nil {
		return 0, 0
	}
	return g.running.uCore, g.running.uMem
}

// PhaseTime computes the execution time of a phase with the given demands at
// frequency levels (core, mem). It is exported so workload calibration can
// invert the timing model.
func (g *GPU) PhaseTime(ops, bytes, stall float64, core, mem int) time.Duration {
	tc, tm := g.demandTimes(ops, bytes, core, mem)
	return UnifyPhaseTime(tc, tm, stall, g.cfg.OverlapGamma)
}

// PhaseUtilization returns the (u_core, u_mem) a phase would exhibit at the
// given frequency levels.
func (g *GPU) PhaseUtilization(ops, bytes, stall float64, core, mem int) (float64, float64) {
	tc, tm := g.demandTimes(ops, bytes, core, mem)
	t := UnifyPhaseTime(tc, tm, stall, g.cfg.OverlapGamma)
	if t <= 0 {
		return 0, 0
	}
	return units.Clamp(tc.Seconds()/t.Seconds(), 0, 1), units.Clamp(tm.Seconds()/t.Seconds(), 0, 1)
}

func (g *GPU) demandTimes(ops, bytes float64, core, mem int) (tc, tm time.Duration) {
	return demandTimesAt(ops, bytes, g.coreDenom[core], g.memDenom[mem])
}

func (g *GPU) power(uc, um float64) units.Power {
	return powerAt(&g.cfg.Power, g.coreFRatio[g.coreLevel], g.memFRatio[g.memLevel], g.coreScale, uc, um)
}

// accrue integrates utilization and energy from lastUpdate to now.
func (g *GPU) accrue() {
	now := g.engine.Now()
	dt := now - g.lastUpdate
	if dt <= 0 {
		return
	}
	uc, um := 0.0, 0.0
	if g.running != nil {
		uc, um = g.running.uCore, g.running.uMem
	}
	g.coreBusy += time.Duration(uc * float64(dt))
	g.memBusy += time.Duration(um * float64(dt))
	g.energy += g.power(uc, um).Over(dt)
	g.lastUpdate = now
}

// carryOver folds elapsed segment progress into the remaining demand.
func (g *GPU) carryOver() {
	es := g.running
	g.engine.Cancel(es.endEvent)
	if es.segT <= 0 {
		return
	}
	frac := float64(g.engine.Now()-es.segStart) / float64(es.segT)
	frac = units.Clamp(frac, 0, 1)
	es.remOps *= 1 - frac
	es.remBytes *= 1 - frac
	es.remStall *= 1 - frac
}

func (g *GPU) start(k *Kernel) {
	g.accrue()
	k.started = g.engine.Now()
	// One kernel runs at a time, so its execution state lives in a reused
	// buffer rather than a fresh allocation, and the diagnostic event
	// label is built once per kernel rather than per phase.
	g.execBuf = execState{kernel: k, name: "gpu:" + k.Name}
	g.running = &g.execBuf
	g.loadPhase()
}

// loadPhase initializes remaining demand from the current phase index and
// starts a timing segment. Kernels with no phases complete immediately.
func (g *GPU) loadPhase() {
	es := g.running
	if es.phaseIdx >= len(es.kernel.Phases) {
		g.finishKernel()
		return
	}
	ph := es.kernel.Phases[es.phaseIdx]
	if ph.Ops < 0 || ph.Bytes < 0 || ph.Stall < 0 {
		panic(fmt.Sprintf("gpusim: kernel %q phase %d has negative demand", es.kernel.Name, es.phaseIdx))
	}
	es.remOps, es.remBytes, es.remStall = ph.Ops, ph.Bytes, ph.Stall
	g.startSegment()
}

// startSegment times the remaining demand at current clocks and schedules
// the phase-completion event.
func (g *GPU) startSegment() {
	es := g.running
	tc, tm := g.demandTimes(es.remOps, es.remBytes, g.coreLevel, g.memLevel)
	t := UnifyPhaseTime(tc, tm, es.remStall, g.cfg.OverlapGamma)
	es.segStart = g.engine.Now()
	es.segT = t
	if t <= 0 {
		es.uCore, es.uMem = 0, 0
		g.phaseDone()
		return
	}
	es.uCore = units.Clamp(tc.Seconds()/t.Seconds(), 0, 1)
	es.uMem = units.Clamp(tm.Seconds()/t.Seconds(), 0, 1)
	es.endEvent = g.engine.After(t, es.name, g.phaseEnd)
}

func (g *GPU) onPhaseEnd() {
	g.accrue()
	g.phaseDone()
}

func (g *GPU) phaseDone() {
	es := g.running
	es.remOps, es.remBytes, es.remStall = 0, 0, 0
	es.phaseIdx++
	if es.phaseIdx < len(es.kernel.Phases) {
		g.loadPhase()
		return
	}
	g.finishKernel()
}

func (g *GPU) finishKernel() {
	g.accrue()
	k := g.running.kernel
	k.finished = g.engine.Now()
	g.running = nil
	g.completed++
	metricKernels.Inc()
	if len(g.queue) > 0 {
		next := g.queue[0]
		g.queue = g.queue[1:]
		g.start(next)
	}
	if k.OnComplete != nil {
		k.OnComplete()
	}
}
