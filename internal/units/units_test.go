package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestFrequencyConversions(t *testing.T) {
	f := 576 * Megahertz
	if got := f.MHz(); got != 576 {
		t.Errorf("MHz() = %v, want 576", got)
	}
	if got := (2800 * Megahertz).GHz(); got != 2.8 {
		t.Errorf("GHz() = %v, want 2.8", got)
	}
}

func TestFrequencyString(t *testing.T) {
	cases := []struct {
		f    Frequency
		want string
	}{
		{900 * Megahertz, "900 MHz"},
		{2.8 * Gigahertz, "2.8 GHz"},
		{32 * Kilohertz, "32 kHz"},
		{60 * Hertz, "60 Hz"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.f), got, c.want)
		}
	}
}

func TestFrequencyCyclesRoundTrip(t *testing.T) {
	f := 576 * Megahertz
	d := 3 * time.Second
	cycles := f.Cycles(d)
	if want := 576e6 * 3; cycles != want {
		t.Fatalf("Cycles = %v, want %v", cycles, want)
	}
	back := f.DurationFor(cycles)
	if diff := (back - d).Abs(); diff > time.Microsecond {
		t.Errorf("DurationFor round trip off by %v", diff)
	}
}

func TestDurationForPanicsOnZeroFrequency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero frequency")
		}
	}()
	Frequency(0).DurationFor(100)
}

func TestParseFrequency(t *testing.T) {
	cases := []struct {
		in   string
		want Frequency
	}{
		{"576MHz", 576 * Megahertz},
		{"2.8 GHz", 2.8 * Gigahertz},
		{"900e6", 900 * Megahertz},
		{"100 kHz", 100 * Kilohertz},
		{"50hz", 50 * Hertz},
	}
	for _, c := range cases {
		got, err := ParseFrequency(c.in)
		if err != nil {
			t.Errorf("ParseFrequency(%q) error: %v", c.in, err)
			continue
		}
		if math.Abs(float64(got-c.want)) > 1e-6 {
			t.Errorf("ParseFrequency(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseFrequencyErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "-5MHz", "MHz", "1.2.3GHz"} {
		if _, err := ParseFrequency(in); err == nil {
			t.Errorf("ParseFrequency(%q) succeeded, want error", in)
		}
	}
}

func TestPowerOverEnergy(t *testing.T) {
	e := Power(100).Over(90 * time.Second)
	if e != 9000 {
		t.Errorf("100W over 90s = %v J, want 9000", e.Joules())
	}
	if wh := e.WattHours(); wh != 2.5 {
		t.Errorf("WattHours = %v, want 2.5", wh)
	}
}

func TestEnergyDiv(t *testing.T) {
	if p := Energy(9000).Div(90 * time.Second); p != 100 {
		t.Errorf("Div = %v, want 100", p)
	}
	if p := Energy(1).Div(0); p != 0 {
		t.Errorf("Div by zero duration = %v, want 0", p)
	}
}

func TestBandwidthTransferTime(t *testing.T) {
	bw := Bandwidth(86.4e9)
	d := bw.TransferTime(Bytes(86.4e9))
	if diff := (d - time.Second).Abs(); diff > time.Microsecond {
		t.Errorf("TransferTime = %v, want ~1s", d)
	}
}

func TestBandwidthTransferTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero bandwidth")
		}
	}()
	Bandwidth(0).TransferTime(1)
}

func TestSecondsSaturates(t *testing.T) {
	if d := Seconds(1e300); d != time.Duration(math.MaxInt64) {
		t.Errorf("Seconds(1e300) = %v, want MaxInt64", d)
	}
	if d := Seconds(-1e300); d != time.Duration(math.MinInt64) {
		t.Errorf("Seconds(-1e300) = %v, want MinInt64", d)
	}
	if d := Seconds(1.5); d != 1500*time.Millisecond {
		t.Errorf("Seconds(1.5) = %v", d)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(1, 2); got != 0.5 {
		t.Errorf("Ratio(1,2) = %v", got)
	}
	if got := Ratio(1, 0); got != 0 {
		t.Errorf("Ratio(1,0) = %v, want 0", got)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{0.5, 0, 1, 0.5},
		{-1, 0, 1, 0},
		{2, 0, 1, 1},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestStringFormatting(t *testing.T) {
	if s := Power(112.5).String(); s != "112.5 W" {
		t.Errorf("Power string = %q", s)
	}
	if s := Energy(2000).String(); s != "2 kJ" {
		t.Errorf("Energy string = %q", s)
	}
	if s := Energy(7.2e6).String(); s != "2 kWh" {
		t.Errorf("Energy kWh string = %q", s)
	}
	if s := Bytes(1536).String(); s != "1.5 KiB" {
		t.Errorf("Bytes string = %q", s)
	}
	if s := Bandwidth(86.4e9).String(); s != "86.4 GB/s" {
		t.Errorf("Bandwidth string = %q", s)
	}
	if s := Voltage(1.25).String(); s != "1.25 V" {
		t.Errorf("Voltage string = %q", s)
	}
}

// Property: Clamp always returns a value inside [lo, hi] for lo <= hi,
// and is idempotent.
func TestClampProperty(t *testing.T) {
	f := func(v, a, b float64) bool {
		if math.IsNaN(v) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		got := Clamp(v, lo, hi)
		return got >= lo && got <= hi && Clamp(got, lo, hi) == got
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Power.Over is linear in duration for non-negative power.
func TestPowerOverLinearProperty(t *testing.T) {
	f := func(p uint16, secs uint8) bool {
		pw := Power(p)
		d := time.Duration(secs) * time.Second
		e1 := pw.Over(d)
		e2 := pw.Over(2 * d)
		return math.Abs(float64(e2-2*e1)) < 1e-9*math.Max(1, float64(e2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: frequency cycle count and DurationFor are inverse operations.
func TestCyclesInverseProperty(t *testing.T) {
	f := func(mhz uint16, ms uint16) bool {
		if mhz == 0 {
			return true
		}
		freq := Frequency(mhz) * Megahertz
		d := time.Duration(ms) * time.Millisecond
		back := freq.DurationFor(freq.Cycles(d))
		return (back - d).Abs() <= time.Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
