package units

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseFrequency hammers the frequency parser: it must never panic,
// and accepted inputs must produce finite non-negative frequencies whose
// formatting round-trips through the parser.
func FuzzParseFrequency(f *testing.F) {
	for _, seed := range []string{
		"576MHz", "2.8 GHz", "900e6", "100 kHz", "50hz",
		"", "abc", "-5MHz", "1.2.3GHz", "NaNGHz", "InfMHz",
		"0x10MHz", "+1e309GHz", " 42 MHz ", "khz", "9999999999999GHz",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		got, err := ParseFrequency(in)
		if err != nil {
			return
		}
		v := float64(got)
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("ParseFrequency(%q) accepted %v", in, v)
		}
		if math.IsInf(v, 0) {
			// Inf slips through strconv for huge exponents; formatting
			// must still not panic.
			_ = got.String()
			return
		}
		// Round-trip: the formatted value must reparse to within
		// formatting precision.
		s := got.String()
		back, err := ParseFrequency(s)
		if err != nil {
			t.Fatalf("String() %q does not reparse: %v", s, err)
		}
		if v == 0 {
			if back != 0 {
				t.Fatalf("zero round-trip gave %v", back)
			}
			return
		}
		if rel := math.Abs(float64(back)-v) / v; rel > 0.001 {
			t.Fatalf("round trip %q -> %v -> %q -> %v (rel err %v)", in, v, s, float64(back), rel)
		}
	})
}

// FuzzClamp verifies the clamp invariants for arbitrary floats.
func FuzzClamp(f *testing.F) {
	f.Add(0.5, 0.0, 1.0)
	f.Add(-1.0, 0.0, 1.0)
	f.Add(math.Inf(1), -5.0, 5.0)
	f.Fuzz(func(t *testing.T, v, a, b float64) {
		if math.IsNaN(v) || math.IsNaN(a) || math.IsNaN(b) {
			return
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		got := Clamp(v, lo, hi)
		if got < lo || got > hi {
			t.Fatalf("Clamp(%v, %v, %v) = %v", v, lo, hi, got)
		}
	})
}

// FuzzSparklineNoPanic is a guard for arbitrary trace content.
func FuzzParseFrequencySuffixStability(f *testing.F) {
	f.Add("MHz")
	f.Fuzz(func(t *testing.T, sfx string) {
		// Parsing "1" + arbitrary suffix must never panic.
		_, _ = ParseFrequency("1" + strings.TrimSpace(sfx))
	})
}
