// Package units provides strongly typed physical quantities used throughout
// the GreenGPU simulator: frequency, voltage, power, energy, data size and
// bandwidth, together with parsing and human-readable formatting.
//
// All quantities are represented as float64 in SI base units (Hz, V, W, J,
// bytes, bytes/s). Simulated time uses time.Duration for interoperability
// with the standard library.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Frequency is a clock frequency in hertz.
type Frequency float64

// Common frequency scales.
const (
	Hertz     Frequency = 1
	Kilohertz Frequency = 1e3
	Megahertz Frequency = 1e6
	Gigahertz Frequency = 1e9
)

// MHz returns the frequency expressed in megahertz.
func (f Frequency) MHz() float64 { return float64(f) / 1e6 }

// GHz returns the frequency expressed in gigahertz.
func (f Frequency) GHz() float64 { return float64(f) / 1e9 }

// String formats the frequency with an auto-selected unit prefix.
func (f Frequency) String() string {
	v := float64(f)
	switch {
	case v >= 1e9:
		return trimFloat(v/1e9) + " GHz"
	case v >= 1e6:
		return trimFloat(v/1e6) + " MHz"
	case v >= 1e3:
		return trimFloat(v/1e3) + " kHz"
	default:
		return trimFloat(v) + " Hz"
	}
}

// Cycles returns the number of clock cycles elapsed over d at frequency f.
func (f Frequency) Cycles(d time.Duration) float64 {
	return float64(f) * d.Seconds()
}

// DurationFor returns the wall time needed for n cycles at frequency f.
// It panics if f is not positive.
func (f Frequency) DurationFor(cycles float64) time.Duration {
	if f <= 0 {
		panic("units: DurationFor on non-positive frequency")
	}
	return Seconds(cycles / float64(f))
}

// ParseFrequency parses strings like "576MHz", "2.8 GHz", "900e6".
func ParseFrequency(s string) (Frequency, error) {
	s = strings.TrimSpace(s)
	mult := 1.0
	lower := strings.ToLower(s)
	for _, sfx := range []struct {
		suffix string
		mult   float64
	}{
		{"ghz", 1e9}, {"mhz", 1e6}, {"khz", 1e3}, {"hz", 1},
	} {
		if strings.HasSuffix(lower, sfx.suffix) {
			mult = sfx.mult
			s = strings.TrimSpace(s[:len(s)-len(sfx.suffix)])
			break
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("units: invalid frequency %q: %w", s, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("units: non-finite frequency %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: negative frequency %q", s)
	}
	return Frequency(v * mult), nil
}

// Voltage is an electric potential in volts.
type Voltage float64

// String formats the voltage in volts.
func (v Voltage) String() string { return trimFloat(float64(v)) + " V" }

// Power is a rate of energy use in watts.
type Power float64

// Watts returns the power expressed in watts.
func (p Power) Watts() float64 { return float64(p) }

// String formats the power in watts.
func (p Power) String() string { return trimFloat(float64(p)) + " W" }

// Over returns the energy consumed at constant power p over duration d.
func (p Power) Over(d time.Duration) Energy {
	return Energy(float64(p) * d.Seconds())
}

// Energy is an amount of energy in joules.
type Energy float64

// Joules returns the energy expressed in joules.
func (e Energy) Joules() float64 { return float64(e) }

// WattHours returns the energy expressed in watt-hours.
func (e Energy) WattHours() float64 { return float64(e) / 3600 }

// String formats the energy with an auto-selected unit.
func (e Energy) String() string {
	v := float64(e)
	switch {
	case math.Abs(v) >= 3600e3:
		return trimFloat(v/3600e3) + " kWh"
	case math.Abs(v) >= 1e3:
		return trimFloat(v/1e3) + " kJ"
	default:
		return trimFloat(v) + " J"
	}
}

// Div returns the average power that spends energy e over duration d.
// It returns 0 when d is zero.
func (e Energy) Div(d time.Duration) Power {
	if d == 0 {
		return 0
	}
	return Power(float64(e) / d.Seconds())
}

// Bytes is a data size in bytes.
type Bytes float64

// Data size scales.
const (
	Byte     Bytes = 1
	Kibibyte Bytes = 1 << 10
	Mebibyte Bytes = 1 << 20
	Gibibyte Bytes = 1 << 30
)

// String formats the size with a binary unit prefix.
func (b Bytes) String() string {
	v := float64(b)
	switch {
	case v >= float64(Gibibyte):
		return trimFloat(v/float64(Gibibyte)) + " GiB"
	case v >= float64(Mebibyte):
		return trimFloat(v/float64(Mebibyte)) + " MiB"
	case v >= float64(Kibibyte):
		return trimFloat(v/float64(Kibibyte)) + " KiB"
	default:
		return trimFloat(v) + " B"
	}
}

// Bandwidth is a data transfer rate in bytes per second.
type Bandwidth float64

// GBps returns the bandwidth in gigabytes per second (decimal GB).
func (bw Bandwidth) GBps() float64 { return float64(bw) / 1e9 }

// String formats the bandwidth in GB/s or MB/s.
func (bw Bandwidth) String() string {
	v := float64(bw)
	if v >= 1e9 {
		return trimFloat(v/1e9) + " GB/s"
	}
	return trimFloat(v/1e6) + " MB/s"
}

// TransferTime returns the wall time needed to move n bytes at this
// bandwidth. It panics if the bandwidth is not positive.
func (bw Bandwidth) TransferTime(n Bytes) time.Duration {
	if bw <= 0 {
		panic("units: TransferTime on non-positive bandwidth")
	}
	return Seconds(float64(n) / float64(bw))
}

// Seconds converts a float64 second count to time.Duration, saturating at
// the representable range instead of overflowing.
func Seconds(s float64) time.Duration {
	const maxDur = float64(math.MaxInt64)
	ns := s * 1e9
	switch {
	case ns >= maxDur:
		return time.Duration(math.MaxInt64)
	case ns <= -maxDur:
		return time.Duration(math.MinInt64)
	}
	return time.Duration(ns)
}

// Ratio returns a/b, or 0 when b is zero. It is the division used for
// utilization-style metrics where an empty denominator means "no activity".
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 3, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}
