package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"greengpu/internal/jobstore"
)

// waitJob polls /v1/results/{id} until the job leaves running, returning
// the final status body.
func waitJob(t *testing.T, baseURL, id string) JobResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st JobResponse
		code, data := getBody(t, baseURL+"/v1/results/"+id)
		if code != 200 {
			t.Fatalf("status %d: %s", code, data)
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.Status != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish in time", id)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestJobsIndex(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var first, second JobResponse
	if code := postJSON(t, ts.URL+"/v1/sweep",
		`{"spec":"workloads=kmeans core=all iters=4","async":true}`, &first); code != 202 {
		t.Fatalf("status %d, want 202", code)
	}
	if code := postJSON(t, ts.URL+"/v1/fleet",
		`{"spec":"nodes=50","async":true}`, &second); code != 202 {
		t.Fatalf("status %d, want 202", code)
	}
	waitJob(t, ts.URL, first.ID)
	waitJob(t, ts.URL, second.ID)

	code, data := getBody(t, ts.URL+"/v1/jobs")
	if code != 200 {
		t.Fatalf("GET /v1/jobs: status %d: %s", code, data)
	}
	var idx JobsResponse
	if err := json.Unmarshal(data, &idx); err != nil {
		t.Fatal(err)
	}
	if len(idx.Jobs) != 2 {
		t.Fatalf("index lists %d jobs, want 2: %s", len(idx.Jobs), data)
	}
	if idx.Jobs[0].ID != first.ID || idx.Jobs[1].ID != second.ID {
		t.Fatalf("index order %q, %q; want %q, %q",
			idx.Jobs[0].ID, idx.Jobs[1].ID, first.ID, second.ID)
	}
	for _, row := range idx.Jobs {
		if row.Status != "done" {
			t.Fatalf("job %s status %q, want done", row.ID, row.Status)
		}
		if row.Created == "" || row.Finished == "" {
			t.Fatalf("job %s missing timestamps: %+v", row.ID, row)
		}
		if _, err := time.Parse(time.RFC3339Nano, row.Created); err != nil {
			t.Fatalf("job %s created %q: %v", row.ID, row.Created, err)
		}
		if row.Recovered {
			t.Fatalf("job %s marked recovered without a restart", row.ID)
		}
	}
	if idx.Jobs[0].Kind != jobSweep || idx.Jobs[1].Kind != jobFleet {
		t.Fatalf("index kinds %q, %q", idx.Jobs[0].Kind, idx.Jobs[1].Kind)
	}

	// Wrong method on the index path gets a 405 with Allow.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/jobs: status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET" {
		t.Fatalf("Allow = %q, want GET", allow)
	}
}

func TestDeleteDiscardsFinishedJob(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var accepted JobResponse
	if code := postJSON(t, ts.URL+"/v1/sweep",
		`{"spec":"workloads=kmeans core=all iters=4","async":true}`, &accepted); code != 202 {
		t.Fatalf("status %d, want 202", code)
	}
	waitJob(t, ts.URL, accepted.ID)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/results/"+accepted.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if body["status"] != "discarded" {
		t.Fatalf("DELETE on finished job = %+v, want discarded", body)
	}
	if code, _ := getBody(t, ts.URL+"/v1/results/"+accepted.ID); code != 404 {
		t.Fatalf("discarded job still served: status %d", code)
	}
	code, data := getBody(t, ts.URL+"/v1/jobs")
	if code != 200 {
		t.Fatal(code)
	}
	var idx JobsResponse
	if err := json.Unmarshal(data, &idx); err != nil {
		t.Fatal(err)
	}
	if len(idx.Jobs) != 0 {
		t.Fatalf("discarded job still indexed: %s", data)
	}
}

// TestJournalAcceptBeforeResponse pins the durability ordering a client
// can observe: by the time the 202 is in hand, the accept record is on
// disk.
func TestJournalAcceptBeforeResponse(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, func(c *Config) { c.StateDir = dir })
	var accepted JobResponse
	if code := postJSON(t, ts.URL+"/v1/sweep",
		`{"spec":"workloads=kmeans core=all iters=4","async":true}`, &accepted); code != 202 {
		t.Fatalf("status %d, want 202", code)
	}
	// Read the journal bytes directly (opening it would race the live
	// daemon's appends); the accept frame must already be durable.
	data, err := os.ReadFile(filepath.Join(dir, "jobs.journal"))
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := jobstore.DecodeAll(data)
	found := false
	for _, rec := range recs {
		if fmt.Sprint(rec.Seq) == accepted.ID && rec.Op == jobstore.OpAccept &&
			rec.Kind == jobSweep && rec.Spec == "workloads=kmeans core=all iters=4" {
			found = true
		}
	}
	if !found {
		t.Fatalf("202 in hand but no accept record on disk; journal holds %+v", recs)
	}
	waitJob(t, ts.URL, accepted.ID)
}

// TestJournalRecovery crashes a journaled daemon (by building the journal
// state a SIGKILL would leave: an accept record with no terminal record)
// and verifies a new daemon re-executes the job and serves CSV results
// byte-identical to a sync run of the same spec.
func TestJournalRecovery(t *testing.T) {
	const specText = "workloads=kmeans,hotspot core=all iters=4"
	dir := t.TempDir()
	j, _, err := jobstore.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(jobstore.Record{
		Seq: 3, Op: jobstore.OpAccept, Kind: jobSweep, Spec: specText,
		At: time.Now().Add(-time.Minute).UnixNano(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	srv, ts := newTestServer(t, func(c *Config) { c.StateDir = dir })
	if srv.RecoveredJobs() != 1 {
		t.Fatalf("RecoveredJobs = %d, want 1", srv.RecoveredJobs())
	}
	st := waitJob(t, ts.URL, "3")
	if st.Status != "done" {
		t.Fatalf("recovered job ended %q (%s)", st.Status, st.Error)
	}
	if !st.Recovered {
		t.Fatal("recovered job not marked recovered in /v1/results")
	}
	code, recoveredCSV := getBody(t, ts.URL+"/v1/results/3?format=csv")
	if code != 200 {
		t.Fatalf("csv status %d", code)
	}

	// The index marks it too, with the original accept time.
	code, data := getBody(t, ts.URL+"/v1/jobs")
	if code != 200 {
		t.Fatal(code)
	}
	var idx JobsResponse
	if err := json.Unmarshal(data, &idx); err != nil {
		t.Fatal(err)
	}
	if len(idx.Jobs) != 1 || !idx.Jobs[0].Recovered {
		t.Fatalf("index after recovery: %s", data)
	}

	// Byte-identity against an uninterrupted sync run of the same spec on
	// a fresh server (fresh cache: identity comes from determinism, not
	// from sharing a cache with the recovered run).
	_, ts2 := newTestServer(t, nil)
	resp, err := http.Post(ts2.URL+"/v1/sweep?format=csv", "application/json",
		bytes.NewReader([]byte(fmt.Sprintf(`{"spec":%q}`, specText))))
	if err != nil {
		t.Fatal(err)
	}
	syncCSV := new(bytes.Buffer)
	if _, err := syncCSV.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("sync sweep status %d", resp.StatusCode)
	}
	if !bytes.Equal(recoveredCSV, syncCSV.Bytes()) {
		t.Fatalf("recovered CSV differs from uninterrupted run: %d vs %d bytes",
			len(recoveredCSV), syncCSV.Len())
	}

	// A third open sees no pending work: the recovered job's terminal
	// record is journaled.
	srv.Close()
	j3, pending, err := jobstore.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	j3.Close()
	if len(pending) != 0 {
		t.Fatalf("journal still pending after recovery completed: %+v", pending)
	}
}

// TestRecoveryBadSpec pins that a journaled spec that no longer parses is
// journaled as failed instead of being retried on every restart.
func TestRecoveryBadSpec(t *testing.T) {
	dir := t.TempDir()
	j, _, err := jobstore.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(jobstore.Record{
		Seq: 0, Op: jobstore.OpAccept, Kind: jobSweep, Spec: "no-such-knob=1",
		At: time.Now().UnixNano(),
	}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	srv, ts := newTestServer(t, func(c *Config) { c.StateDir = dir })
	st := waitJob(t, ts.URL, "0")
	if st.Status != "failed" || st.Error == "" {
		t.Fatalf("unparsable recovered job = %+v, want failed with error", st)
	}
	srv.Close()

	srv2, _ := newTestServer(t, func(c *Config) { c.StateDir = dir })
	if srv2.RecoveredJobs() != 0 {
		t.Fatalf("failed job recovered again: RecoveredJobs = %d", srv2.RecoveredJobs())
	}
}

// TestJobStoreHammer races job submission, completion, deletion, listing
// and eviction under -race: the store mutex must make every transition
// atomic. Jobs are tiny cached sweeps so hundreds finish quickly.
func TestJobStoreHammer(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.MaxJobs = 4 // force constant eviction pressure
	})
	const (
		workers = 8
		perW    = 12
	)
	var wg sync.WaitGroup
	ids := make(chan string, workers*perW)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				var accepted JobResponse
				code := postJSON(t, ts.URL+"/v1/sweep",
					`{"spec":"workloads=kmeans iters=2","async":true}`, &accepted)
				if code == 202 {
					ids <- accepted.ID
				} else if code != http.StatusServiceUnavailable {
					t.Errorf("submit status %d", code)
				}
			}
		}()
	}
	// Deleters race the completion writes and the eviction scans.
	var del sync.WaitGroup
	done := make(chan struct{})
	for d := 0; d < 4; d++ {
		del.Add(1)
		go func() {
			defer del.Done()
			for {
				select {
				case id := <-ids:
					req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/results/"+id, nil)
					if err != nil {
						t.Error(err)
						return
					}
					resp, err := http.DefaultClient.Do(req)
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
					// 200 (canceled or discarded) and 404 (evicted first)
					// are both legal outcomes under contention.
					if resp.StatusCode != 200 && resp.StatusCode != 404 {
						t.Errorf("delete status %d", resp.StatusCode)
					}
				case <-done:
					return
				}
			}
		}()
	}
	// A lister keeps scanning the full store.
	var lst sync.WaitGroup
	lst.Add(1)
	go func() {
		defer lst.Done()
		for {
			select {
			case <-done:
				return
			default:
				code, _ := getBody(t, ts.URL+"/v1/jobs")
				if code != 200 {
					t.Errorf("list status %d", code)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(done)
	del.Wait()
	lst.Wait()
}
