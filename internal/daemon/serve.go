// Serving and graceful shutdown: the daemon drains on cancellation —
// in-flight HTTP requests and detached async jobs run to completion
// under a drain deadline, then cache and job counters are flushed.

package daemon

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// Serve accepts connections on ln until ctx is canceled (cmd/greengpud
// wires SIGINT/SIGTERM into ctx via signal.NotifyContext), then shuts
// down gracefully:
//
//  1. /healthz flips to 503 and the listener closes; in-flight requests
//     keep running.
//  2. In-flight HTTP requests and detached async jobs drain, bounded by
//     drainTimeout (0 means DefaultDrainTimeout). On a deadline hit the
//     base context is canceled, which skips every unstarted point;
//     points already evaluating complete, so the run cache stays free of
//     partial entries either way.
//  3. The run-cache counters and job tallies are flushed to logw.
//
// A clean drain returns nil, so cmd/greengpud exits 0 on SIGTERM.
func (s *Server) Serve(ctx context.Context, ln net.Listener, drainTimeout time.Duration, logw io.Writer) error {
	if drainTimeout <= 0 {
		drainTimeout = DefaultDrainTimeout
	}
	srv := &http.Server{
		Handler:     s,
		BaseContext: func(net.Listener) context.Context { return s.baseCtx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		// The listener failed before any shutdown was requested.
		return err
	case <-ctx.Done():
	}

	s.draining.Store(true)
	fmt.Fprintln(logw, "greengpud: shutdown requested, draining")
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	shutdownErr := srv.Shutdown(dctx)

	// Wait for detached async jobs under the same deadline; past it,
	// cancel the base context so their remaining points are skipped.
	jobsDone := make(chan struct{})
	go func() {
		s.bg.Wait()
		close(jobsDone)
	}()
	select {
	case <-jobsDone:
	case <-dctx.Done():
		fmt.Fprintln(logw, "greengpud: drain deadline hit, canceling remaining jobs")
		s.cancel()
		<-jobsDone
	}
	s.cancel()

	if s.journal != nil {
		// Every job has drained (or been canceled and journaled as such);
		// the journal can close cleanly.
		_ = s.journal.Close()
	}
	if s.cfg.Cache != nil {
		fmt.Fprintln(logw, "greengpud:", s.cfg.Cache.Stats())
	}
	jc := s.jobs.counts()
	fmt.Fprintf(logw, "greengpud: jobs at exit: %d running, %d done, %d failed, %d canceled\n",
		jc.Running, jc.Done, jc.Failed, jc.Canceled)
	if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
		return shutdownErr
	}
	return nil
}

// DefaultDrainTimeout bounds graceful shutdown when the caller passes no
// explicit drain timeout.
const DefaultDrainTimeout = 30 * time.Second
