// Async job store: sweep and fleet requests submitted with async=true
// detach into jobs that survive the submitting connection and are
// queried (or canceled) through /v1/results/{id}.

package daemon

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"greengpu/internal/fleet"
	"greengpu/internal/sweep"
)

// Job kinds and states, as they appear in JSON responses.
const (
	jobSweep = "sweep"
	jobFleet = "fleet"

	jobRunning  = "running"
	jobDone     = "done"
	jobFailed   = "failed"
	jobCanceled = "canceled"
)

// job is one detached evaluation. All mutable fields are guarded by the
// owning store's mutex.
type job struct {
	id     string
	kind   string
	spec   string
	cancel context.CancelFunc

	state    string
	err      string
	sweepRes []sweep.PointResult
	fleetRes *fleet.Result
}

// jobStore holds jobs by id, evicting the oldest finished jobs beyond
// the retention bound. Running jobs are never evicted.
type jobStore struct {
	mu    sync.Mutex
	next  int
	max   int
	jobs  map[string]*job
	order []string // insertion order, the eviction scan order
}

func newJobStore(max int) *jobStore {
	return &jobStore{max: max, jobs: make(map[string]*job)}
}

// add registers a new running job and returns it, evicting the oldest
// finished job when the store is over its bound.
func (st *jobStore) add(kind, spec string, cancel context.CancelFunc) *job {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.next++
	j := &job{id: fmt.Sprintf("%d", st.next), kind: kind, spec: spec,
		cancel: cancel, state: jobRunning}
	st.jobs[j.id] = j
	st.order = append(st.order, j.id)
	for len(st.order) > st.max {
		evicted := false
		for i, id := range st.order {
			if st.jobs[id].state == jobRunning {
				continue
			}
			delete(st.jobs, id)
			st.order = append(st.order[:i], st.order[i+1:]...)
			evicted = true
			break
		}
		if !evicted {
			break // every retained job is still running; keep them all
		}
	}
	return j
}

// get returns the job by id.
func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// finish records a job's outcome: canceled when its context was
// canceled, failed on any other error, done otherwise (store runs the
// result-attaching closure under the lock).
func (st *jobStore) finish(j *job, ctx context.Context, err error, attach func()) {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch {
	case ctx.Err() != nil || errors.Is(err, context.Canceled):
		j.state = jobCanceled
		metricCanceled.Inc()
	case err != nil:
		j.state = jobFailed
		j.err = err.Error()
	default:
		j.state = jobDone
		attach()
	}
}

// JobCounts tallies the store by state for /v1/stats.
type JobCounts struct {
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
}

func (st *jobStore) counts() JobCounts {
	st.mu.Lock()
	defer st.mu.Unlock()
	var c JobCounts
	for _, j := range st.jobs {
		switch j.state {
		case jobRunning:
			c.Running++
		case jobDone:
			c.Done++
		case jobFailed:
			c.Failed++
		case jobCanceled:
			c.Canceled++
		}
	}
	return c
}

// JobResponse is the GET /v1/results/{id} result (and the 202 body of an
// async submission, with only the identity fields set). Points or the
// fleet fields are present once the job is done.
type JobResponse struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Spec   string `json:"spec"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`

	Points  []SweepPoint  `json:"points,omitempty"`
	Groups  []FleetGroup  `json:"groups,omitempty"`
	Summary *FleetSummary `json:"summary,omitempty"`
}

// startJob launches run as a detached job under the server's base
// context and answers 202 with the job id. The admission slot transfers
// to the job and is released when it finishes.
func (s *Server) startJob(w http.ResponseWriter, kind, spec string, release func(), run func(ctx context.Context, j *job)) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := s.jobs.add(kind, spec, cancel)
	metricJobs.Inc()
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		defer release()
		defer cancel()
		run(ctx, j)
	}()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSONBody(w, JobResponse{ID: j.id, Kind: kind, Spec: spec, Status: jobRunning})
}

// handleResultGet serves a job's status and, once done, its results —
// JSON by default, the CLI-identical CSV with ?format=csv (sweep jobs
// render the sweep_points table; fleet jobs honor ?table like the sync
// endpoint).
func (s *Server) handleResultGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no such job %q", r.PathValue("id")))
		return
	}
	s.jobs.mu.Lock()
	resp := JobResponse{ID: j.id, Kind: j.kind, Spec: j.spec, Status: j.state, Error: j.err}
	sweepRes, fleetRes := j.sweepRes, j.fleetRes
	s.jobs.mu.Unlock()
	if resp.Status == jobDone && r.URL.Query().Get("format") == "csv" {
		if j.kind == jobSweep {
			writeCSV(w, sweep.Table(s.eng, sweepRes))
		} else {
			writeFleetCSV(w, r, fleetRes)
		}
		return
	}
	if resp.Status == jobDone {
		if j.kind == jobSweep {
			resp.Points = s.sweepPoints(sweepRes)
		} else {
			fr := fleetResponse(j.spec, fleetRes)
			resp.Groups = fr.Groups
			resp.Summary = &fr.Summary
		}
	}
	writeJSON(w, resp)
}

// handleResultDelete cancels a running job (its remaining points are
// skipped; completed points stay cached) or discards a finished one.
func (s *Server) handleResultDelete(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no such job %q", r.PathValue("id")))
		return
	}
	j.cancel()
	writeJSON(w, map[string]string{"id": j.id, "status": "cancel requested"})
}
