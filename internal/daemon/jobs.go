// Async job store: sweep and fleet requests submitted with async=true
// detach into jobs that survive the submitting connection and are
// queried (or canceled) through /v1/results/{id}, listed through
// /v1/jobs, and — when the daemon runs with -state-dir — journaled
// through internal/jobstore so a restart recovers and re-executes
// whatever was still running. Replay is deterministic: recovered jobs go
// back through the same engines and the same run cache, so their results
// are byte-identical to an uninterrupted run.

package daemon

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"greengpu/internal/fleet"
	"greengpu/internal/jobstore"
	"greengpu/internal/sweep"
)

// Job kinds and states, as they appear in JSON responses.
const (
	jobSweep = "sweep"
	jobFleet = "fleet"

	jobRunning  = "running"
	jobDone     = "done"
	jobFailed   = "failed"
	jobCanceled = "canceled"
)

// job is one detached evaluation. The identity fields (id through
// recovered) are immutable after registration; the mutable tail is
// guarded by the owning store's mutex.
type job struct {
	id        string
	seq       uint64
	kind      string
	spec      string
	cancel    context.CancelFunc
	created   time.Time
	recovered bool

	state    string
	err      string
	finished time.Time
	sweepRes []sweep.PointResult
	fleetRes *fleet.Result
}

// jobStore holds jobs by id, evicting the oldest finished jobs beyond
// the retention bound. Running jobs are never evicted, and every state
// transition — registration, eviction, completion, discard — happens
// under the one mutex, so a DELETE can never race a completion write.
type jobStore struct {
	mu    sync.Mutex
	next  uint64 // id counter when no journal assigns sequence numbers
	max   int
	jobs  map[string]*job
	order []string // insertion order, the eviction scan order
}

func newJobStore(max int) *jobStore {
	return &jobStore{max: max, jobs: make(map[string]*job)}
}

// nextSeq reserves the next id for a journal-less server (the journal's
// sequence numbers take over when one is attached).
func (st *jobStore) nextSeq() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.next++
	return st.next
}

// add registers a prepared job, evicting the oldest finished job when
// the store is over its bound.
func (st *jobStore) add(j *job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.jobs[j.id] = j
	st.order = append(st.order, j.id)
	for len(st.order) > st.max {
		evicted := false
		for i, id := range st.order {
			if st.jobs[id].state == jobRunning {
				continue
			}
			delete(st.jobs, id)
			st.order = append(st.order[:i], st.order[i+1:]...)
			evicted = true
			break
		}
		if !evicted {
			break // every retained job is still running; keep them all
		}
	}
}

// get returns the job by id.
func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// terminalState maps an evaluation outcome to a job state.
func terminalState(ctx context.Context, err error) string {
	switch {
	case ctx.Err() != nil || errors.Is(err, context.Canceled):
		return jobCanceled
	case err != nil:
		return jobFailed
	default:
		return jobDone
	}
}

// finishJob records a job's outcome. The terminal record is appended to
// the journal (when one is attached) *before* the in-memory state flips,
// so a job that became evictable as finished is always journaled as
// finished — a crash in between re-runs the job, which deterministic
// replay makes harmless. Append failures are ignored for the same
// reason. The state flip, the result attach and the finished timestamp
// all happen under the store mutex.
func (s *Server) finishJob(j *job, ctx context.Context, err error, attach func()) {
	state := terminalState(ctx, err)
	errText := ""
	if state == jobFailed {
		errText = err.Error()
	}
	now := time.Now()
	if s.journal != nil {
		_ = s.journal.Append(jobstore.Record{
			Seq: j.seq, Op: jobstore.OpFinish, State: state, Err: errText, At: now.UnixNano(),
		})
	}
	s.jobs.mu.Lock()
	defer s.jobs.mu.Unlock()
	j.state = state
	j.err = errText
	j.finished = now
	if state == jobCanceled {
		metricCanceled.Inc()
	}
	if state == jobDone && attach != nil {
		attach()
	}
}

// JobCounts tallies the store by state for /v1/stats.
type JobCounts struct {
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
}

func (st *jobStore) counts() JobCounts {
	st.mu.Lock()
	defer st.mu.Unlock()
	var c JobCounts
	for _, j := range st.jobs {
		switch j.state {
		case jobRunning:
			c.Running++
		case jobDone:
			c.Done++
		case jobFailed:
			c.Failed++
		case jobCanceled:
			c.Canceled++
		}
	}
	return c
}

// JobResponse is the GET /v1/results/{id} result (and the 202 body of an
// async submission, with only the identity fields set). Points or the
// fleet fields are present once the job is done; Recovered marks jobs
// re-executed from the journal after a restart.
type JobResponse struct {
	ID        string `json:"id"`
	Kind      string `json:"kind"`
	Spec      string `json:"spec"`
	Status    string `json:"status"`
	Recovered bool   `json:"recovered,omitempty"`
	Error     string `json:"error,omitempty"`

	Points  []SweepPoint  `json:"points,omitempty"`
	Groups  []FleetGroup  `json:"groups,omitempty"`
	Summary *FleetSummary `json:"summary,omitempty"`
}

// startJob journals the accepted request (when a journal is attached),
// launches run as a detached job under the server's base context, and
// answers 202 with the job id. The fsync happens before the 202 leaves
// the server: once a client holds an id, a crash cannot lose the job. A
// journal write failure is a 500 and the job never starts — accepting
// unjournaled work would silently drop it on restart. The admission slot
// transfers to the job and is released when it finishes.
func (s *Server) startJob(w http.ResponseWriter, kind, spec string, release func(), run func(ctx context.Context, j *job)) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := &job{kind: kind, spec: spec, cancel: cancel, created: time.Now(), state: jobRunning}
	if s.journal != nil {
		j.seq = s.journal.NextSeq()
	} else {
		j.seq = s.jobs.nextSeq()
	}
	j.id = strconv.FormatUint(j.seq, 10)
	if s.journal != nil {
		err := s.journal.Append(jobstore.Record{
			Seq: j.seq, Op: jobstore.OpAccept, Kind: kind, Spec: spec, At: j.created.UnixNano(),
		})
		if err != nil {
			cancel()
			release()
			writeError(w, http.StatusInternalServerError, "job journal write failed: "+err.Error())
			return
		}
	}
	s.jobs.add(j)
	metricJobs.Inc()
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		defer release()
		defer cancel()
		run(ctx, j)
	}()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSONBody(w, JobResponse{ID: j.id, Kind: kind, Spec: spec, Status: jobRunning})
}

// recoverJobs re-registers and re-executes the journal's pending jobs.
// Each recovered job waits for an admission slot like a fresh request
// (recovery cannot starve live traffic past MaxInflight) and runs under
// the base context, so drains treat it exactly like any other job. A
// pending record whose spec no longer parses — a daemon downgrade, a
// removed workload — is journaled as failed rather than retried forever.
func (s *Server) recoverJobs(pending []jobstore.Record) {
	for _, rec := range pending {
		rec := rec
		ctx, cancel := context.WithCancel(s.baseCtx)
		j := &job{
			seq: rec.Seq, id: strconv.FormatUint(rec.Seq, 10),
			kind: rec.Kind, spec: rec.Spec, cancel: cancel,
			created: time.Unix(0, rec.At), recovered: true, state: jobRunning,
		}
		var run func(ctx context.Context)
		switch rec.Kind {
		case jobSweep:
			spec, err := sweep.ParseSpec(rec.Spec)
			if err == nil {
				run = func(ctx context.Context) {
					results, rerr := s.eng.RunContext(ctx, spec)
					s.finishJob(j, ctx, rerr, func() { j.sweepRes = results })
				}
			} else {
				run = func(ctx context.Context) { s.finishJob(j, ctx, err, nil) }
			}
		case jobFleet:
			spec, err := fleet.ParseSpec(rec.Spec)
			if err == nil {
				run = func(ctx context.Context) {
					res, rerr := s.fleng.RunContext(ctx, spec)
					s.finishJob(j, ctx, rerr, func() { j.fleetRes = res })
				}
			} else {
				run = func(ctx context.Context) { s.finishJob(j, ctx, err, nil) }
			}
		default:
			err := fmt.Errorf("unknown journaled job kind %q", rec.Kind)
			run = func(ctx context.Context) { s.finishJob(j, ctx, err, nil) }
		}
		s.jobs.add(j)
		s.recovered++
		metricRecovered.Inc()
		s.bg.Add(1)
		go func() {
			defer s.bg.Done()
			defer cancel()
			select {
			case s.sem <- struct{}{}:
			case <-ctx.Done():
				s.finishJob(j, ctx, ctx.Err(), nil)
				return
			}
			defer func() { <-s.sem }()
			run(ctx)
		}()
	}
}

// RecoveredJobs reports how many pending jobs the server re-executed
// from its journal at startup (cmd/greengpud logs it).
func (s *Server) RecoveredJobs() int { return s.recovered }

// handleResultGet serves a job's status and, once done, its results —
// JSON by default, the CLI-identical CSV with ?format=csv (sweep jobs
// render the sweep_points table; fleet jobs honor ?table like the sync
// endpoint).
func (s *Server) handleResultGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no such job %q", r.PathValue("id")))
		return
	}
	s.jobs.mu.Lock()
	resp := JobResponse{ID: j.id, Kind: j.kind, Spec: j.spec, Status: j.state,
		Recovered: j.recovered, Error: j.err}
	sweepRes, fleetRes := j.sweepRes, j.fleetRes
	s.jobs.mu.Unlock()
	if resp.Status == jobDone && r.URL.Query().Get("format") == "csv" {
		if j.kind == jobSweep {
			writeCSV(w, sweep.Table(s.eng, sweepRes))
		} else {
			writeFleetCSV(w, r, fleetRes)
		}
		return
	}
	if resp.Status == jobDone {
		if j.kind == jobSweep {
			resp.Points = s.sweepPoints(sweepRes)
		} else {
			fr := fleetResponse(j.spec, fleetRes)
			resp.Groups = fr.Groups
			resp.Summary = &fr.Summary
		}
	}
	writeJSON(w, resp)
}

// handleResultDelete cancels a running job (its remaining points are
// skipped; completed points stay cached) or discards a finished one.
// Both happen under the store mutex: a cancel observes a consistent
// state, and a discard can never race the completion write or an
// eviction scan.
func (s *Server) handleResultDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st := s.jobs
	st.mu.Lock()
	j, ok := st.jobs[id]
	if !ok {
		st.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Sprintf("no such job %q", id))
		return
	}
	if j.state == jobRunning {
		j.cancel()
		st.mu.Unlock()
		writeJSON(w, map[string]string{"id": id, "status": "cancel requested"})
		return
	}
	delete(st.jobs, id)
	for i, oid := range st.order {
		if oid == id {
			st.order = append(st.order[:i], st.order[i+1:]...)
			break
		}
	}
	st.mu.Unlock()
	writeJSON(w, map[string]string{"id": id, "status": "discarded"})
}

// JobSummary is one row of the GET /v1/jobs index.
type JobSummary struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Status is running, done, failed or canceled.
	Status string `json:"status"`
	// Created is the accept time, RFC 3339 with nanoseconds. For
	// recovered jobs it is the *original* accept time from the journal,
	// not the restart.
	Created string `json:"created"`
	// Finished is the terminal-state time; empty while running.
	Finished string `json:"finished,omitempty"`
	// Recovered marks jobs re-executed from the journal after a restart.
	Recovered bool `json:"recovered,omitempty"`
}

// JobsResponse is the GET /v1/jobs result: every retained job, ordered
// by id.
type JobsResponse struct {
	Jobs []JobSummary `json:"jobs"`
}

// handleJobs serves the job index, closing the gap where clients had to
// remember every id they were handed.
func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	st := s.jobs
	st.mu.Lock()
	out := make([]JobSummary, 0, len(st.jobs))
	for _, j := range st.jobs {
		row := JobSummary{
			ID:        j.id,
			Kind:      j.kind,
			Status:    j.state,
			Created:   j.created.UTC().Format(time.RFC3339Nano),
			Recovered: j.recovered,
		}
		if j.state != jobRunning {
			row.Finished = j.finished.UTC().Format(time.RFC3339Nano)
		}
		out = append(out, row)
	}
	st.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		na, _ := strconv.ParseUint(out[a].ID, 10, 64)
		nb, _ := strconv.ParseUint(out[b].ID, 10, 64)
		return na < nb
	})
	writeJSON(w, JobsResponse{Jobs: out})
}
