package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"greengpu/internal/experiments"
	"greengpu/internal/fleet"
	"greengpu/internal/runcache"
	"greengpu/internal/sweep"
	"greengpu/internal/telemetry"
)

// listenLoopback binds an ephemeral loopback port for Serve tests.
func listenLoopback() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }

// safeBuffer is a mutex-guarded bytes.Buffer: Serve logs from its own
// goroutine while tests read.
type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// newTestServer builds a daemon over the default testbed environment
// with a fresh in-memory cache.
func newTestServer(t testing.TB, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	env, err := experiments.NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	cache, err := runcache.New(runcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		GPU:      env.GPUConfig,
		CPU:      env.CPUConfig,
		Bus:      env.BusConfig,
		Profiles: env.Profiles,
		Jobs:     1,
		Cache:    cache,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return srv, ts
}

// postJSON posts body and decodes the JSON response into out (skipped
// when out is nil), returning the status code.
func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestSimulateMatchesEngine(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	var got SimulateResponse
	if code := postJSON(t, ts.URL+"/v1/simulate",
		`{"workload":"kmeans","mode":"baseline","iterations":4}`, &got); code != 200 {
		t.Fatalf("status %d", code)
	}
	// The daemon must agree exactly with a direct engine evaluation of
	// the same configuration.
	spec := sweep.Spec{Workloads: []string{"kmeans"}, Iterations: 4,
		CPULevel: -1, CoreLevels: []int{len(srv.cfg.GPU.CoreLevels) - 1},
		MemLevels: []int{len(srv.cfg.GPU.MemLevels) - 1}}
	results, err := srv.eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := results[0].Result
	if got.ExecSeconds != want.TotalTime.Seconds() || got.EnergyJ != want.Energy.Joules() {
		t.Fatalf("daemon (%v s, %v J) != engine (%v s, %v J)",
			got.ExecSeconds, got.EnergyJ, want.TotalTime.Seconds(), want.Energy.Joules())
	}
	if !got.Fast {
		t.Error("baseline ladder point should take the closed-form fast path")
	}
	if got.Workload != "kmeans" || got.Mode != "baseline" || got.Iterations != 4 {
		t.Errorf("identity fields wrong: %+v", got)
	}
}

func TestSimulateValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"unknown workload", `{"workload":"nope"}`, 400},
		{"unknown mode", `{"workload":"kmeans","mode":"warp"}`, 400},
		{"core out of range", `{"workload":"kmeans","core":99}`, 400},
		{"negative mem", `{"workload":"kmeans","mem":-1}`, 400},
		{"negative iterations", `{"workload":"kmeans","iterations":-2}`, 400},
		{"malformed json", `{"workload":`, 400},
		{"unknown field", `{"workload":"kmeans","boost":true}`, 400},
	} {
		if code := postJSON(t, ts.URL+"/v1/simulate", tc.body, nil); code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		}
	}
}

func TestSweepCSVMatchesCLITable(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	const specText = "workloads=kmeans,hotspot core=all mem=all iters=4"
	resp, err := http.Post(ts.URL+"/v1/sweep?format=csv", "application/json",
		strings.NewReader(fmt.Sprintf(`{"spec":%q}`, specText)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}

	spec, err := sweep.ParseSpec(specText)
	if err != nil {
		t.Fatal(err)
	}
	results, err := srv.eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := sweep.Table(srv.eng, results).WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("daemon CSV differs from engine table:\n got: %q\nwant: %q", got, want.Bytes())
	}
}

func TestSweepJSONAndRepeatHitsCache(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	body := `{"spec":"workloads=kmeans core=all mem=all iters=4"}`
	var first SweepResponse
	if code := postJSON(t, ts.URL+"/v1/sweep", body, &first); code != 200 {
		t.Fatalf("status %d", code)
	}
	wantPoints := len(srv.cfg.GPU.CoreLevels) * len(srv.cfg.GPU.MemLevels)
	if len(first.Points) != wantPoints {
		t.Fatalf("got %d points, want %d", len(first.Points), wantPoints)
	}
	before := srv.cfg.Cache.Stats()
	var second SweepResponse
	if code := postJSON(t, ts.URL+"/v1/sweep", body, &second); code != 200 {
		t.Fatalf("status %d", code)
	}
	delta := srv.cfg.Cache.Stats().Sub(before)
	if delta.Misses != 0 || delta.Hits != uint64(wantPoints) {
		t.Errorf("repeat sweep: %d hits %d misses, want %d hits 0 misses",
			delta.Hits, delta.Misses, wantPoints)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if !bytes.Equal(a, b) {
		t.Error("repeat sweep returned different results")
	}
}

func TestSweepValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"bad spec syntax", `{"spec":"workloads"}`, 400},
		{"unknown key", `{"spec":"turbo=1"}`, 400},
		{"unknown workload", `{"spec":"workloads=nope"}`, 400},
		{"level out of range", `{"spec":"workloads=kmeans core=99"}`, 400},
	} {
		if code := postJSON(t, ts.URL+"/v1/sweep", tc.body, nil); code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		}
	}
}

func TestFleetMatchesEngine(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	const specText = "nodes=500 faults=0,1"
	var got FleetResponse
	if code := postJSON(t, ts.URL+"/v1/fleet",
		fmt.Sprintf(`{"spec":%q}`, specText), &got); code != 200 {
		t.Fatalf("status %d", code)
	}
	spec, err := fleet.ParseSpec(specText)
	if err != nil {
		t.Fatal(err)
	}
	want, err := srv.fleng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Summary.Nodes != want.Agg.Nodes || got.Summary.EnergyJ != want.Agg.Energy.Joules() {
		t.Errorf("summary mismatch: %+v vs %+v", got.Summary, want.Agg)
	}
	if got.Summary.Groups != len(want.Groups) || len(got.Groups) != len(want.Groups) {
		t.Errorf("groups mismatch: %d vs %d", len(got.Groups), len(want.Groups))
	}

	// CSV renderings must be byte-identical to the CLI's fleet tables.
	for table, render := range map[string]func(*fleet.Result) interface {
		WriteCSV(io.Writer) error
	}{
		"groups":  func(r *fleet.Result) interface{ WriteCSV(io.Writer) error } { return fleet.GroupsTable(r) },
		"summary": func(r *fleet.Result) interface{ WriteCSV(io.Writer) error } { return fleet.SummaryTable(r) },
	} {
		resp, err := http.Post(ts.URL+"/v1/fleet?format=csv&table="+table, "application/json",
			strings.NewReader(fmt.Sprintf(`{"spec":%q}`, specText)))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var wantCSV bytes.Buffer
		if err := render(want).WriteCSV(&wantCSV); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, wantCSV.Bytes()) {
			t.Errorf("fleet %s CSV differs from CLI table", table)
		}
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var accepted JobResponse
	if code := postJSON(t, ts.URL+"/v1/sweep",
		`{"spec":"workloads=kmeans core=all iters=4","async":true}`, &accepted); code != 202 {
		t.Fatalf("status %d, want 202", code)
	}
	if accepted.ID == "" || accepted.Status != "running" {
		t.Fatalf("bad 202 body: %+v", accepted)
	}
	deadline := time.Now().Add(30 * time.Second)
	var st JobResponse
	for {
		code, data := getBody(t, ts.URL+"/v1/results/"+accepted.ID)
		if code != 200 {
			t.Fatalf("status %d: %s", code, data)
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.Status != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Status != "done" {
		t.Fatalf("job ended %q (%s)", st.Status, st.Error)
	}
	if len(st.Points) == 0 {
		t.Fatal("done job carries no points")
	}
	if code, _ := getBody(t, ts.URL+"/v1/results/none"); code != 404 {
		t.Errorf("unknown job: status %d, want 404", code)
	}
}

func TestAsyncJobCancel(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var accepted JobResponse
	// A Monte Carlo holistic sweep is slow enough (full simulations) to
	// still be running when the cancel lands.
	if code := postJSON(t, ts.URL+"/v1/sweep",
		`{"spec":"draws=400 mode=holistic workloads=kmeans","async":true}`, &accepted); code != 202 {
		t.Fatalf("status %d, want 202", code)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/results/"+accepted.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st JobResponse
		code, data := getBody(t, ts.URL+"/v1/results/"+accepted.ID)
		if code != 200 {
			t.Fatalf("status %d: %s", code, data)
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.Status != "running" {
			// done is possible if the job finished before the cancel; the
			// expected outcome for a mid-run cancel is canceled.
			if st.Status != "canceled" && st.Status != "done" {
				t.Fatalf("job ended %q (%s)", st.Status, st.Error)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("canceled job never settled")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancelReleasesSlotAndCache is the request-scoped cancellation
// contract: a client disconnect mid-sweep releases the admission slot,
// leaves no partial cache entries, and the same spec then evaluates
// cleanly to the same bytes an undisturbed engine produces.
func TestCancelReleasesSlotAndCache(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) { c.MaxInflight = 1 })
	const specText = "draws=400 mode=holistic workloads=kmeans,hotspot"
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep",
		strings.NewReader(fmt.Sprintf(`{"spec":%q}`, specText)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	// Give the sweep a moment to start, then vanish like a real client.
	time.Sleep(50 * time.Millisecond)
	cancel()
	if err := <-done; err == nil {
		t.Log("request completed before the cancel landed; slot/cache checks still apply")
	}

	// The admission slot (capacity 1) must come back: a follow-up sweep
	// gets admitted rather than shed with 503.
	deadline := time.Now().Add(30 * time.Second)
	for {
		code := postJSON(t, ts.URL+"/v1/sweep", `{"spec":"workloads=kmeans core=all iters=4"}`, nil)
		if code == 200 {
			break
		}
		if code != 503 {
			t.Fatalf("follow-up sweep: status %d", code)
		}
		if time.Now().After(deadline) {
			t.Fatal("admission slot never released after cancellation")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// No partial entries: every cached point replays the full result. A
	// fresh engine (no cache) evaluates a draw subset and must agree
	// byte-for-byte with a warm daemon evaluation of the same spec.
	spec, err := sweep.ParseSpec("draws=20 mode=holistic workloads=kmeans")
	if err != nil {
		t.Fatal(err)
	}
	warm, err := srv.eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	pristine := &sweep.Engine{GPU: srv.cfg.GPU, CPU: srv.cfg.CPU, Bus: srv.cfg.Bus,
		Profiles: srv.cfg.Profiles, Jobs: 1}
	want, err := pristine.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := sweep.Table(srv.eng, warm).WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := sweep.Table(pristine, want).WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("cache state after cancellation diverges from a pristine engine")
	}
}

func TestAdmissionControl(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) { c.MaxInflight = 1 })
	// Fill the only slot manually, then watch a sweep get shed.
	srv.sem <- struct{}{}
	if code := postJSON(t, ts.URL+"/v1/sweep", `{"spec":"workloads=kmeans"}`, nil); code != 503 {
		t.Fatalf("status %d, want 503", code)
	}
	<-srv.sem
	if code := postJSON(t, ts.URL+"/v1/sweep", `{"spec":"workloads=kmeans core=all iters=4"}`, nil); code != 200 {
		t.Fatalf("after release: status %d, want 200", code)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	if code := postJSON(t, ts.URL+"/v1/sweep", `{"spec":"workloads=kmeans core=all iters=4"}`, nil); code != 200 {
		t.Fatalf("sweep status %d", code)
	}
	code, data := getBody(t, ts.URL+"/v1/stats")
	if code != 200 {
		t.Fatalf("stats status %d", code)
	}
	var st StatsResponse
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache == nil || st.Cache.Misses == 0 {
		t.Errorf("stats should report cache misses after a sweep: %s", data)
	}
	if st.MaxInflight != DefaultMaxInflight || st.InflightHeavy != 0 {
		t.Errorf("admission state wrong: %+v", st)
	}
	if code, _ := getBody(t, ts.URL+"/healthz"); code != 200 {
		t.Errorf("healthz status %d", code)
	}
	srv.draining.Store(true)
	if code, _ := getBody(t, ts.URL+"/healthz"); code != 503 {
		t.Errorf("draining healthz status %d, want 503", code)
	}
	srv.draining.Store(false)
}

func TestMetricsEndpoint(t *testing.T) {
	defer telemetry.Disable()
	telemetry.Enable()
	_, ts := newTestServer(t, nil)
	if code := postJSON(t, ts.URL+"/v1/simulate", `{"workload":"kmeans","iterations":4}`, nil); code != 200 {
		t.Fatalf("simulate status %d", code)
	}
	code, data := getBody(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	text := string(data)
	for _, want := range []string{
		"# TYPE greengpu_daemon_requests_total counter",
		"greengpu_daemon_simulate_requests_total",
		"greengpu_daemon_request_seconds_bucket",
		"greengpu_daemon_inflight_requests",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestFlightRecorderEndpoint(t *testing.T) {
	defer telemetry.Disable()
	defer telemetry.SetFlightRecorder(nil)
	rec := telemetry.NewFlightRecorder(64)
	telemetry.SetFlightRecorder(rec)
	telemetry.Enable()
	_, ts := newTestServer(t, func(c *Config) { c.Recorder = rec })
	// A holistic run exercises the DVFS controller, which stamps epochs.
	if code := postJSON(t, ts.URL+"/v1/simulate", `{"workload":"kmeans","mode":"holistic"}`, nil); code != 200 {
		t.Fatalf("simulate status %d", code)
	}
	code, data := getBody(t, ts.URL+"/v1/flightrecorder?workload=kmeans&last=5")
	if code != 200 {
		t.Fatalf("status %d: %s", code, data)
	}
	var fr FlightRecorderResponse
	if err := json.Unmarshal(data, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Cap != 64 || fr.Total == 0 || len(fr.Records) == 0 || len(fr.Records) > 5 {
		t.Errorf("bad flight recorder response: cap=%d total=%d records=%d", fr.Cap, fr.Total, len(fr.Records))
	}
	for _, r := range fr.Records {
		if r.Workload != "kmeans" {
			t.Errorf("filter leaked workload %q", r.Workload)
		}
	}
	if code, _ := getBody(t, ts.URL+"/v1/flightrecorder?last=x"); code != 400 {
		t.Errorf("bad last: status %d, want 400", code)
	}
}

func TestFlightRecorderDisabled(t *testing.T) {
	_, ts := newTestServer(t, nil)
	if code, _ := getBody(t, ts.URL+"/v1/flightrecorder"); code != 404 {
		t.Errorf("status %d, want 404", code)
	}
}

func TestUnknownEndpointAndMethod(t *testing.T) {
	_, ts := newTestServer(t, nil)
	if code, _ := getBody(t, ts.URL+"/v2/nothing"); code != 404 {
		t.Errorf("unknown path: status %d, want 404", code)
	}
	resp, err := http.Get(ts.URL + "/v1/simulate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("GET simulate: status %d, want 405", resp.StatusCode)
	}
}

func TestBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxBodyBytes = 64 })
	big := fmt.Sprintf(`{"spec":%q}`, strings.Repeat("x", 200))
	if code := postJSON(t, ts.URL+"/v1/sweep", big, nil); code != 413 {
		t.Errorf("oversized body: status %d, want 413", code)
	}
}

// TestServeGracefulDrain exercises Serve directly: cancel while an async
// job runs, and the daemon must drain it to completion and return nil.
func TestServeGracefulDrain(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	ln, err := listenLoopback()
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	var logs safeBuffer
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln, 30*time.Second, &logs) }()
	base := "http://" + ln.Addr().String()

	var accepted JobResponse
	if code := postJSON(t, base+"/v1/sweep",
		`{"spec":"workloads=kmeans core=all iters=4","async":true}`, &accepted); code != 202 {
		t.Fatalf("status %d", code)
	}
	stop()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil after clean drain", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not drain in time")
	}
	if got := logs.String(); !strings.Contains(got, "draining") || !strings.Contains(got, "jobs at exit") {
		t.Errorf("drain logs missing flush lines:\n%s", got)
	}
	// The job must have drained to done, not been abandoned.
	if c := srv.jobs.counts(); c.Running != 0 || c.Done != 1 {
		t.Errorf("jobs after drain: %+v, want the one job done", c)
	}
}
