package daemon

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// Daemon load benchmarks: real HTTP over loopback against a warm run
// cache, the capacity-planning numbers docs/SERVICE.md cites. Both
// report throughput via b.ReportMetric so cmd/benchjson can gate on it:
//
//   - req/s     completed HTTP requests per second
//   - points/s  simulation points served per second (the sweep endpoint
//     amortizes HTTP overhead across its whole batch, so its points/s
//     is the daemon's true point-serving capacity)
//
// No -benchmem here: HTTP handler allocation counts are scheduler-
// dependent and would make an alloc gate flaky.

// benchClient is a keep-alive client sized for the benchmark's
// concurrency so connection churn doesn't dominate.
func benchClient() *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 256
	tr.MaxIdleConnsPerHost = 256
	return &http.Client{Transport: tr}
}

func benchPost(b *testing.B, c *http.Client, url, body string) {
	resp, err := c.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkDaemonSimulateWarm serves repeat POST /v1/simulate points
// from the warm cache — the per-request floor of the HTTP path.
func BenchmarkDaemonSimulateWarm(b *testing.B) {
	_, ts := newTestServer(b, nil)
	c := benchClient()
	const body = `{"workload":"kmeans","mode":"baseline","iterations":4}`
	benchPost(b, c, ts.URL+"/v1/simulate", body) // warm the batch tables
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchPost(b, c, ts.URL+"/v1/simulate", body)
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkDaemonSweepWarm serves repeat POST /v1/sweep batches from the
// warm cache. points/s is requests/s times the batch size — the
// headline point-requests-per-second capacity.
func BenchmarkDaemonSweepWarm(b *testing.B) {
	_, ts := newTestServer(b, nil)
	c := benchClient()
	body := `{"spec":"workloads=kmeans,hotspot core=all mem=all iters=4"}`

	// Warm the cache and learn the batch size from the response.
	var warm SweepResponse
	resp, err := c.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("warmup status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &warm); err != nil {
		b.Fatalf("decode %q: %v", data, err)
	}
	points := len(warm.Points)
	if points == 0 {
		b.Fatal("warmup returned no points")
	}

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchPost(b, c, ts.URL+"/v1/sweep", body)
		}
	})
	b.StopTimer()
	secs := b.Elapsed().Seconds()
	b.ReportMetric(float64(b.N)/secs, "req/s")
	b.ReportMetric(float64(b.N*points)/secs, "points/s")
}
