// Package daemon implements greengpud, the long-lived simulation-as-a-
// service HTTP server (see docs/SERVICE.md for the full API reference).
//
// The daemon wraps the same engine stack the one-shot CLIs use — the
// batch sweep engine, the fleet engine, the shared run cache and the
// internal/parallel worker pool — behind an HTTP/JSON API:
//
//	POST /v1/simulate        one point through the batch evaluator
//	POST /v1/sweep           a sweep.ParseSpec batch (sync or async)
//	POST /v1/fleet           a fleet.ParseSpec fleet (sync or async)
//	GET  /v1/results/{id}    async job status and results
//	DELETE /v1/results/{id}  cancel an async job
//	GET  /v1/flightrecorder  recent DVFS-epoch records, filtered
//	GET  /v1/stats           run-cache and job counters
//	GET  /metrics            live Prometheus registry
//	GET  /healthz            liveness (503 while draining)
//
// Results are byte-identical to the equivalent cmd/experiments
// invocation: the CSV renderings (?format=csv) come from the same
// trace.Table writers, and the engines are deterministic at any worker
// count. Sync requests run under the request's context, so a client
// disconnect cancels unstarted points; started points always complete,
// which is why an attached run cache never holds partial entries.
package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"greengpu/internal/bus"
	"greengpu/internal/core"
	"greengpu/internal/cpusim"
	"greengpu/internal/fleet"
	"greengpu/internal/gpusim"
	"greengpu/internal/iofault"
	"greengpu/internal/jobstore"
	"greengpu/internal/runcache"
	"greengpu/internal/sweep"
	"greengpu/internal/telemetry"
	"greengpu/internal/workload"
)

// Package metrics (see docs/OBSERVABILITY.md "Daemon"). No-ops unless
// telemetry is enabled; cmd/greengpud enables it at startup so /metrics
// is live.
var (
	metricRequests = telemetry.NewCounter("greengpu_daemon_requests_total",
		"HTTP requests received, all endpoints.")
	metricErrors = telemetry.NewCounter("greengpu_daemon_errors_total",
		"HTTP requests answered with a 4xx or 5xx status.")
	metricInflight = telemetry.NewGauge("greengpu_daemon_inflight_requests",
		"HTTP requests currently being served.")
	metricSeconds = telemetry.NewHistogram("greengpu_daemon_request_seconds",
		"HTTP request service time in seconds.",
		telemetry.ExpBuckets(1e-5, 4, 12))
	metricSimulate = telemetry.NewCounter("greengpu_daemon_simulate_requests_total",
		"POST /v1/simulate requests received.")
	metricSweep = telemetry.NewCounter("greengpu_daemon_sweep_requests_total",
		"POST /v1/sweep requests received.")
	metricFleet = telemetry.NewCounter("greengpu_daemon_fleet_requests_total",
		"POST /v1/fleet requests received.")
	metricResults = telemetry.NewCounter("greengpu_daemon_results_requests_total",
		"GET and DELETE /v1/results/{id} requests received.")
	metricFlightReq = telemetry.NewCounter("greengpu_daemon_flightrecorder_requests_total",
		"GET /v1/flightrecorder requests received.")
	metricStatsReq = telemetry.NewCounter("greengpu_daemon_stats_requests_total",
		"GET /v1/stats and /healthz requests received.")
	metricScrapes = telemetry.NewCounter("greengpu_daemon_metrics_requests_total",
		"GET /metrics scrapes received.")
	metricJobs = telemetry.NewCounter("greengpu_daemon_jobs_total",
		"Async jobs accepted (sweep and fleet requests with async=true).")
	metricCanceled = telemetry.NewCounter("greengpu_daemon_canceled_total",
		"Sync requests or async jobs canceled before completion.")
	metricShed = telemetry.NewCounter("greengpu_daemon_shed_total",
		"Heavy requests rejected with 503 because max-inflight evaluations were already running.")
	metricJobsList = telemetry.NewCounter("greengpu_daemon_jobs_list_requests_total",
		"GET /v1/jobs requests received.")
	metricRecovered = telemetry.NewCounter("greengpu_daemon_recovered_jobs_total",
		"Pending async jobs re-executed from the journal after a restart.")
)

// Config assembles a Server. GPU, CPU, Bus and Profiles are required;
// everything else has a usable zero value.
type Config struct {
	GPU      gpusim.Config
	CPU      cpusim.Config
	Bus      bus.Config
	Profiles []*workload.Profile

	// Jobs bounds each request's worker-pool fan-out, exactly like the
	// engines' Jobs fields; 0 selects one worker per CPU.
	Jobs int

	// Cache, when non-nil, memoizes points across requests and clients
	// under the same fingerprints the CLIs use, single-flighting
	// concurrent requests for the same point onto one computation.
	Cache *runcache.Cache

	// Recorder, when non-nil, backs GET /v1/flightrecorder. The caller
	// installs it process-wide (telemetry.SetFlightRecorder); the daemon
	// only reads snapshots.
	Recorder *telemetry.FlightRecorder

	// MaxInflight bounds concurrently admitted heavy requests (sweeps and
	// fleets, sync or async); excess requests are shed with 503. 0 selects
	// DefaultMaxInflight. Single-point /v1/simulate requests are bounded
	// work and bypass the limiter.
	MaxInflight int

	// MaxBodyBytes bounds request bodies; 0 selects DefaultMaxBodyBytes.
	MaxBodyBytes int64

	// MaxJobs bounds retained async jobs; when exceeded, the oldest
	// finished job is evicted. 0 selects DefaultMaxJobs.
	MaxJobs int

	// StateDir, when non-empty, makes async jobs durable: accepted specs
	// are journaled (fsynced, CRC-framed) under this directory before the
	// 202 is returned, and New re-executes any job that had no terminal
	// record — deterministic replay through the engines and the run cache
	// makes the recovered results byte-identical to an uninterrupted run.
	// Empty keeps the pre-journal behavior: jobs die with the process.
	StateDir string

	// StateFS overrides the filesystem under the job journal; nil selects
	// the real disk. Fault-injection tests thread an iofault.FaultFS here.
	StateFS iofault.FS
}

// Defaults for the zero values of Config's limits.
const (
	DefaultMaxInflight  = 64
	DefaultMaxBodyBytes = 1 << 20
	DefaultMaxJobs      = 1024
)

// Server is the daemon's HTTP handler plus its execution state: the
// shared engines, the admission limiter, and the async job store. Create
// one with New; it is safe for concurrent use.
type Server struct {
	cfg   Config
	eng   *sweep.Engine
	fleng *fleet.Engine
	batch *sweep.Batch
	mux   *http.ServeMux
	jobs  *jobStore
	sem   chan struct{}

	// journal persists async jobs when Config.StateDir is set; nil
	// otherwise. recovered counts the pending jobs re-executed at New.
	journal   *jobstore.Journal
	recovered int

	// baseCtx parents every async job and is installed as the HTTP
	// server's base context, so cancel aborts all remaining work when a
	// drain deadline expires.
	baseCtx context.Context
	cancel  context.CancelFunc

	// bg tracks detached async jobs; Serve waits on it while draining.
	bg sync.WaitGroup
	// draining flips when a graceful shutdown starts, turning /healthz
	// into a 503 so load balancers stop routing here.
	draining atomic.Bool
}

// New validates the device configurations, precomputes the shared batch
// tables every /v1/simulate request evaluates through, and wires up the
// routes.
func New(cfg Config) (*Server, error) {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = DefaultMaxJobs
	}
	eng := &sweep.Engine{
		GPU:      cfg.GPU,
		CPU:      cfg.CPU,
		Bus:      cfg.Bus,
		Profiles: cfg.Profiles,
		Jobs:     cfg.Jobs,
		Cache:    cfg.Cache,
	}
	batch, err := eng.NewBatch()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		eng:     eng,
		fleng:   &fleet.Engine{Jobs: cfg.Jobs, Cache: cfg.Cache},
		batch:   batch,
		mux:     http.NewServeMux(),
		jobs:    newJobStore(cfg.MaxJobs),
		sem:     make(chan struct{}, cfg.MaxInflight),
		baseCtx: ctx,
		cancel:  cancel,
	}
	if cfg.StateDir != "" {
		journal, pending, err := jobstore.Open(cfg.StateDir, cfg.StateFS)
		if err != nil {
			cancel()
			return nil, err
		}
		s.journal = journal
		// Bound journal growth to the live job set; a failed compaction
		// leaves the (valid, larger) journal in place and is not fatal.
		_ = journal.Compact(pending)
		s.recoverJobs(pending)
	}
	s.route("POST /v1/simulate", metricSimulate, s.handleSimulate)
	s.route("POST /v1/sweep", metricSweep, s.handleSweep)
	s.route("POST /v1/fleet", metricFleet, s.handleFleet)
	s.route("GET /v1/jobs", metricJobsList, s.handleJobs)
	s.route("GET /v1/results/{id}", metricResults, s.handleResultGet)
	s.route("DELETE /v1/results/{id}", metricResults, s.handleResultDelete)
	s.route("GET /v1/flightrecorder", metricFlightReq, s.handleFlightRecorder)
	s.route("GET /v1/stats", metricStatsReq, s.handleStats)
	s.route("GET /healthz", metricStatsReq, s.handleHealthz)
	s.mux.Handle("GET /metrics", s.instrument(metricScrapes, telemetry.Default.Handler().ServeHTTP))
	// The catch-all gives unknown paths a JSON 404 and wrong-method
	// requests on known paths a 405 (a plain "/" pattern would otherwise
	// shadow the mux's own method matching).
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		metricRequests.Inc()
		if allow := allowedMethods(r.URL.Path); allow != "" {
			w.Header().Set("Allow", allow)
			writeError(w, http.StatusMethodNotAllowed,
				fmt.Sprintf("%s does not allow %s (allowed: %s)", r.URL.Path, r.Method, allow))
			return
		}
		writeError(w, http.StatusNotFound, fmt.Sprintf("no such endpoint %s (see docs/SERVICE.md)", r.URL.Path))
	})
	return s, nil
}

// allowedMethods returns the Allow header value for a known endpoint
// path, or "" for an unknown one.
func allowedMethods(path string) string {
	switch path {
	case "/v1/simulate", "/v1/sweep", "/v1/fleet":
		return "POST"
	case "/v1/jobs", "/v1/flightrecorder", "/v1/stats", "/healthz", "/metrics":
		return "GET"
	}
	if strings.HasPrefix(path, "/v1/results/") {
		return "GET, DELETE"
	}
	return ""
}

// ServeHTTP dispatches to the daemon's routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close cancels every async job and sync request still running and
// closes the job journal. Serve performs a graceful variant; Close is
// the teardown for tests and for drain deadlines.
func (s *Server) Close() {
	s.cancel()
	if s.journal != nil {
		_ = s.journal.Close()
	}
}

// route registers h wrapped in the standard instrumentation.
func (s *Server) route(pattern string, c *telemetry.Counter, h http.HandlerFunc) {
	s.mux.Handle(pattern, s.instrument(c, h))
}

// instrument counts the request against the endpoint counter and the
// process totals, tracks in-flight requests, observes service time, and
// counts error responses. With telemetry disabled the only overhead is
// the instruments' own atomic-load fast paths.
func (s *Server) instrument(c *telemetry.Counter, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !telemetry.Enabled() {
			h(w, r)
			return
		}
		metricRequests.Inc()
		c.Inc()
		metricInflight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		metricSeconds.Observe(time.Since(start).Seconds())
		metricInflight.Add(-1)
		if sw.status >= 400 {
			metricErrors.Inc()
		}
	})
}

// statusWriter captures the response status for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
}

// writeError sends the standard JSON error envelope.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: msg})
}

// writeJSON sends v as the 200 response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// writeJSONBody encodes v into an already-prepared response (headers and
// status written by the caller).
func writeJSONBody(w http.ResponseWriter, v any) { _ = json.NewEncoder(w).Encode(v) }

// decodeBody decodes the request body into v under the configured size
// limit, reporting malformed JSON as 400 and an oversized body as 413.
// The bool reports whether decoding succeeded (the error response has
// been written otherwise).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, "malformed request body: "+err.Error())
		return false
	}
	return true
}

// acquire admits one heavy request, or sheds it with 503 when
// MaxInflight evaluations are already running. The caller must invoke
// the release function exactly once when admitted.
func (s *Server) acquire(w http.ResponseWriter) (release func(), ok bool) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
		metricShed.Inc()
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("server at capacity (%d heavy requests in flight); retry later", cap(s.sem)))
		return nil, false
	}
}

// SimulateRequest is the POST /v1/simulate body: one workload at one
// explicit configuration. Omitted levels select the peak of their ladder
// (the best-performance baseline); for controller modes the levels are
// the starting point, exactly like core.Config.InitialLevels.
type SimulateRequest struct {
	Workload   string `json:"workload"`
	Mode       string `json:"mode,omitempty"`
	Iterations int    `json:"iterations,omitempty"`
	Core       *int   `json:"core,omitempty"`
	Mem        *int   `json:"mem,omitempty"`
	CPU        *int   `json:"cpu,omitempty"`
}

// SimulateResponse is the POST /v1/simulate result: the resolved
// configuration plus the run's scalar outcomes.
type SimulateResponse struct {
	Workload    string  `json:"workload"`
	Mode        string  `json:"mode"`
	Iterations  int     `json:"iterations"`
	Core        int     `json:"core"`
	Mem         int     `json:"mem"`
	CPU         int     `json:"cpu"`
	CoreMHz     float64 `json:"core_mhz"`
	MemMHz      float64 `json:"mem_mhz"`
	CPUMHz      float64 `json:"cpu_mhz"`
	ExecSeconds float64 `json:"exec_s"`
	EnergyJ     float64 `json:"energy_j"`
	EnergyGPUJ  float64 `json:"energy_gpu_j"`
	EnergyCPUJ  float64 `json:"energy_cpu_j"`
	EDP         float64 `json:"edp_js"`
	FinalRatio  float64 `json:"final_ratio"`
	DVFSSteps   int     `json:"dvfs_steps"`
	// Fast reports whether the closed-form batch evaluator produced the
	// result (false: full simulation, possibly via the run cache).
	Fast bool `json:"fast"`
}

// handleSimulate evaluates one point through the precomputed batch: the
// closed-form fast path for baseline ladder points, full simulation
// otherwise, memoized in the shared run cache either way.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	mode := core.Baseline
	if req.Mode != "" {
		var err error
		if mode, err = sweep.ParseMode(req.Mode); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	if req.Iterations < 0 {
		writeError(w, http.StatusBadRequest, "iterations must be non-negative")
		return
	}
	lv := core.Levels{
		Core: len(s.cfg.GPU.CoreLevels) - 1,
		Mem:  len(s.cfg.GPU.MemLevels) - 1,
		CPU:  len(s.cfg.CPU.PStates) - 1,
	}
	for _, sel := range []struct {
		req  *int
		dst  *int
		n    int
		name string
	}{
		{req.Core, &lv.Core, len(s.cfg.GPU.CoreLevels), "core"},
		{req.Mem, &lv.Mem, len(s.cfg.GPU.MemLevels), "mem"},
		{req.CPU, &lv.CPU, len(s.cfg.CPU.PStates), "cpu"},
	} {
		if sel.req == nil {
			continue
		}
		if *sel.req < 0 || *sel.req >= sel.n {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("%s level %d out of range [0,%d)", sel.name, *sel.req, sel.n))
			return
		}
		*sel.dst = *sel.req
	}
	cfg := core.DefaultConfig(mode)
	cfg.Iterations = req.Iterations
	cfg.InitialLevels = &lv
	res, fast, err := s.batch.Eval(req.Workload, cfg)
	if err != nil {
		// The batch rejects unknown workloads and invalid configs before
		// simulating; anything it reports is a request problem.
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, SimulateResponse{
		Workload:    res.Workload,
		Mode:        res.Mode.String(),
		Iterations:  len(res.Iterations),
		Core:        lv.Core,
		Mem:         lv.Mem,
		CPU:         lv.CPU,
		CoreMHz:     s.cfg.GPU.CoreLevels[lv.Core].MHz(),
		MemMHz:      s.cfg.GPU.MemLevels[lv.Mem].MHz(),
		CPUMHz:      s.cfg.CPU.PStates[lv.CPU].Frequency.MHz(),
		ExecSeconds: res.TotalTime.Seconds(),
		EnergyJ:     res.Energy.Joules(),
		EnergyGPUJ:  res.EnergyGPU.Joules(),
		EnergyCPUJ:  res.EnergyCPU.Joules(),
		EDP:         res.Energy.Joules() * res.TotalTime.Seconds(),
		FinalRatio:  res.FinalRatio,
		DVFSSteps:   res.DVFSSteps,
		Fast:        fast,
	})
}

// JobRequest is the POST /v1/sweep and /v1/fleet body: a mini-language
// spec (sweep.ParseSpec or fleet.ParseSpec) plus the async switch.
type JobRequest struct {
	Spec string `json:"spec"`
	// Async detaches the evaluation into a job: the response is 202 with
	// the job id, results arrive via GET /v1/results/{id}.
	Async bool `json:"async,omitempty"`
}

// SweepPoint is one evaluated sweep point in a JSON response. Ladder
// points carry level indices and frequencies; Monte Carlo draw points
// carry draw >= 0 and levels of -1.
type SweepPoint struct {
	Workload    string  `json:"workload"`
	Draw        int     `json:"draw"`
	Core        int     `json:"core"`
	Mem         int     `json:"mem"`
	CPU         int     `json:"cpu"`
	CoreMHz     float64 `json:"core_mhz,omitempty"`
	MemMHz      float64 `json:"mem_mhz,omitempty"`
	CPUMHz      float64 `json:"cpu_mhz,omitempty"`
	ExecSeconds float64 `json:"exec_s"`
	EnergyJ     float64 `json:"energy_j"`
	EnergyGPUJ  float64 `json:"energy_gpu_j"`
	EnergyCPUJ  float64 `json:"energy_cpu_j"`
	Fast        bool    `json:"fast"`
}

// SweepResponse is the sync POST /v1/sweep result: every point of the
// expanded spec, in the engine's deterministic Expand order.
type SweepResponse struct {
	Spec   string       `json:"spec"`
	Points []SweepPoint `json:"points"`
}

// sweepPoints converts engine results to the JSON shape.
func (s *Server) sweepPoints(results []sweep.PointResult) []SweepPoint {
	pts := make([]SweepPoint, len(results))
	for i, pr := range results {
		p := SweepPoint{
			Workload:    pr.Workload,
			Draw:        pr.Draw,
			Core:        pr.Core,
			Mem:         pr.Mem,
			CPU:         pr.CPU,
			ExecSeconds: pr.Result.TotalTime.Seconds(),
			EnergyJ:     pr.Result.Energy.Joules(),
			EnergyGPUJ:  pr.Result.EnergyGPU.Joules(),
			EnergyCPUJ:  pr.Result.EnergyCPU.Joules(),
			Fast:        pr.Fast,
		}
		if pr.Draw < 0 {
			p.CoreMHz = s.cfg.GPU.CoreLevels[pr.Core].MHz()
			p.MemMHz = s.cfg.GPU.MemLevels[pr.Mem].MHz()
			p.CPUMHz = s.cfg.CPU.PStates[pr.CPU].Frequency.MHz()
		}
		pts[i] = p
	}
	return pts
}

// handleSweep parses, validates and evaluates a sweep spec. Sync
// requests run under the request context — a client disconnect cancels
// unstarted points — and render JSON or, with ?format=csv, exactly the
// bytes cmd/experiments -sweep -out writes for the same spec.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	spec, err := sweep.ParseSpec(req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Expand re-validates against the concrete engine (workload names,
	// ladder bounds) so semantic spec errors are 400s, not mid-run 500s.
	if _, err := s.eng.Expand(spec); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	release, ok := s.acquire(w)
	if !ok {
		return
	}
	if req.Async {
		s.startJob(w, jobSweep, req.Spec, release, func(ctx context.Context, j *job) {
			results, err := s.eng.RunContext(ctx, spec)
			s.finishJob(j, ctx, err, func() { j.sweepRes = results })
		})
		return
	}
	defer release()
	results, err := s.eng.RunContext(r.Context(), spec)
	if err != nil {
		s.evalError(w, r, err)
		return
	}
	if r.URL.Query().Get("format") == "csv" {
		writeCSV(w, sweep.Table(s.eng, results))
		return
	}
	writeJSON(w, SweepResponse{Spec: req.Spec, Points: s.sweepPoints(results)})
}

// FleetGroup is one distinct node configuration in a fleet response,
// mirroring the columns of fleet.GroupsTable.
type FleetGroup struct {
	Class           string  `json:"class"`
	Workload        string  `json:"workload"`
	Mode            string  `json:"mode"`
	FaultLevel      int     `json:"fault_level"`
	Nodes           int     `json:"nodes"`
	Fast            bool    `json:"fast"`
	ExecSeconds     float64 `json:"exec_s"`
	EnergyJ         float64 `json:"energy_j"`
	EnergyGPUJ      float64 `json:"energy_gpu_j"`
	EnergyCPUJ      float64 `json:"energy_cpu_j"`
	DeadlineSeconds float64 `json:"deadline_s"`
	Miss            bool    `json:"miss"`
}

// FleetSummary carries the fleet-wide aggregates, mirroring the columns
// of fleet.SummaryTable.
type FleetSummary struct {
	Nodes          int     `json:"nodes"`
	Groups         int     `json:"groups"`
	DedupRatio     float64 `json:"dedup_ratio"`
	EnergyJ        float64 `json:"energy_j"`
	EnergyGPUJ     float64 `json:"energy_gpu_j"`
	EnergyCPUJ     float64 `json:"energy_cpu_j"`
	WallSeconds    float64 `json:"wall_s"`
	EDP            float64 `json:"edp_js"`
	DeadlineMisses uint64  `json:"deadline_misses"`
	FaultsTotal    uint64  `json:"faults_total"`
}

// FleetResponse is the sync POST /v1/fleet result.
type FleetResponse struct {
	Spec    string       `json:"spec"`
	Groups  []FleetGroup `json:"groups"`
	Summary FleetSummary `json:"summary"`
}

// fleetResponse converts a fleet result to the JSON shape.
func fleetResponse(specText string, res *fleet.Result) FleetResponse {
	out := FleetResponse{
		Spec:   specText,
		Groups: make([]FleetGroup, len(res.Groups)),
		Summary: FleetSummary{
			Nodes:          res.Agg.Nodes,
			Groups:         len(res.Groups),
			DedupRatio:     res.DedupRatio(),
			EnergyJ:        res.Agg.Energy.Joules(),
			EnergyGPUJ:     res.Agg.EnergyGPU.Joules(),
			EnergyCPUJ:     res.Agg.EnergyCPU.Joules(),
			WallSeconds:    res.Agg.Wall.Seconds(),
			EDP:            res.Agg.EDP,
			DeadlineMisses: res.Agg.DeadlineMisses,
			FaultsTotal:    res.Agg.Faults.Total(),
		},
	}
	for i := range res.Groups {
		g := &res.Groups[i]
		out.Groups[i] = FleetGroup{
			Class:           g.Class,
			Workload:        g.Workload,
			Mode:            g.Mode.String(),
			FaultLevel:      g.FaultLevel,
			Nodes:           g.Count,
			Fast:            g.Fast,
			ExecSeconds:     g.Result.TotalTime.Seconds(),
			EnergyJ:         g.Result.Energy.Joules(),
			EnergyGPUJ:      g.Result.EnergyGPU.Joules(),
			EnergyCPUJ:      g.Result.EnergyCPU.Joules(),
			DeadlineSeconds: g.Deadline.Seconds(),
			Miss:            g.Miss,
		}
	}
	return out
}

// handleFleet parses, validates and evaluates a fleet spec, sync or
// async, exactly like handleSweep. With ?format=csv the response is the
// groups table (?table=summary selects the summary), byte-identical to
// the cmd/experiments -fleet -out CSVs.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	spec, err := fleet.ParseSpec(req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	release, ok := s.acquire(w)
	if !ok {
		return
	}
	if req.Async {
		s.startJob(w, jobFleet, req.Spec, release, func(ctx context.Context, j *job) {
			res, err := s.fleng.RunContext(ctx, spec)
			s.finishJob(j, ctx, err, func() { j.fleetRes = res })
		})
		return
	}
	defer release()
	res, err := s.fleng.RunContext(r.Context(), spec)
	if err != nil {
		s.evalError(w, r, err)
		return
	}
	if r.URL.Query().Get("format") == "csv" {
		writeFleetCSV(w, r, res)
		return
	}
	writeJSON(w, fleetResponse(req.Spec, res))
}

// evalError maps a sync evaluation failure to a response: canceled
// requests get a terse 499-style close (the client is gone), everything
// else is an internal error — spec problems were rejected before
// evaluation started.
func (s *Server) evalError(w http.ResponseWriter, r *http.Request, err error) {
	if r.Context().Err() != nil || errors.Is(err, context.Canceled) {
		metricCanceled.Inc()
		// The client disconnected; nothing useful can be written. 499 is
		// nginx's convention for client-closed requests.
		w.WriteHeader(499)
		return
	}
	writeError(w, http.StatusInternalServerError, err.Error())
}

// writeCSV renders a trace table with the exact bytes Table.WriteCSV
// produces for the CLI's -out files.
func writeCSV(w http.ResponseWriter, t interface{ WriteCSV(io.Writer) error }) {
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	_ = t.WriteCSV(w)
}

// writeFleetCSV renders the requested fleet table (?table=groups, the
// default, or ?table=summary).
func writeFleetCSV(w http.ResponseWriter, r *http.Request, res *fleet.Result) {
	switch r.URL.Query().Get("table") {
	case "", "groups":
		writeCSV(w, fleet.GroupsTable(res))
	case "summary":
		writeCSV(w, fleet.SummaryTable(res))
	default:
		writeError(w, http.StatusBadRequest, "table must be groups or summary")
	}
}

// FlightRecorderResponse is the GET /v1/flightrecorder result: the
// retained DVFS-epoch records, oldest first, after filtering.
type FlightRecorderResponse struct {
	// Cap is the recorder's ring capacity; Total the retained record
	// count before filtering.
	Cap     int                     `json:"cap"`
	Total   int                     `json:"total"`
	Records []telemetry.EpochRecord `json:"records"`
}

// handleFlightRecorder serves the flight recorder ring as JSON, filtered
// by the workload, mode and last query parameters.
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	rec := s.cfg.Recorder
	if rec == nil {
		writeError(w, http.StatusNotFound,
			"flight recorder disabled; start greengpud with -flight-recorder K")
		return
	}
	q := r.URL.Query()
	last := 0
	if v := q.Get("last"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "last must be a non-negative integer")
			return
		}
		last = n
	}
	all := rec.Snapshot()
	out := FlightRecorderResponse{Cap: rec.Cap(), Total: len(all), Records: all}
	if wl := q.Get("workload"); wl != "" {
		out.Records = filterRecords(out.Records, func(e *telemetry.EpochRecord) bool { return e.Workload == wl })
	}
	if mode := q.Get("mode"); mode != "" {
		out.Records = filterRecords(out.Records, func(e *telemetry.EpochRecord) bool { return e.Mode == mode })
	}
	if last > 0 && len(out.Records) > last {
		out.Records = out.Records[len(out.Records)-last:]
	}
	if out.Records == nil {
		out.Records = []telemetry.EpochRecord{}
	}
	writeJSON(w, out)
}

// filterRecords keeps the records keep admits, preserving order.
func filterRecords(recs []telemetry.EpochRecord, keep func(*telemetry.EpochRecord) bool) []telemetry.EpochRecord {
	out := recs[:0:0]
	for i := range recs {
		if keep(&recs[i]) {
			out = append(out, recs[i])
		}
	}
	return out
}

// StatsResponse is the GET /v1/stats result: the shared run cache's
// effectiveness counters (null when the cache is disabled) plus the
// daemon's job and admission state.
type StatsResponse struct {
	Cache *runcache.Stats `json:"cache"`
	Jobs  JobCounts       `json:"jobs"`
	// InflightHeavy is how many heavy evaluations (sweeps and fleets)
	// currently hold an admission slot, out of MaxInflight.
	InflightHeavy int `json:"inflight_heavy"`
	MaxInflight   int `json:"max_inflight"`
}

// handleStats serves the run-cache and job counters.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := StatsResponse{
		Jobs:          s.jobs.counts(),
		InflightHeavy: len(s.sem),
		MaxInflight:   cap(s.sem),
	}
	if s.cfg.Cache != nil {
		st := s.cfg.Cache.Stats()
		resp.Cache = &st
	}
	writeJSON(w, resp)
}

// handleHealthz reports liveness: 200 while serving, 503 once draining.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.baseCtx.Err() != nil || s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, map[string]string{"status": "ok"})
}
