// Package cpusim models a multicore CPU with ACPI-style P-states (frequency
// plus voltage pairs), in the style of the AMD Phenom II X2 used on the
// GreenGPU testbed.
//
// The model captures what the GreenGPU controllers and the Linux ondemand
// governor observe and actuate: per-state frequency and voltage, whole-socket
// utilization, job execution time that scales with frequency, and CPU-side
// power at the measurement boundary of the testbed's first meter (the whole
// box minus the GPU card: platform components plus the processor).
//
// Two activity modes compose:
//
//   - a Job: a parallel region using up to Threads cores, whose execution
//     time is Ops / (cores · IPC · f);
//   - spinning: cores busy-waiting at 100% utilization without making
//     progress, modelling the synchronous CUDA waits that pin a pthread at
//     full utilization while the GPU computes (§VII-A of the paper). Spin
//     time and spin energy are accounted separately so that the paper's
//     Fig. 6c emulation — substituting lowest-frequency idle energy during
//     provably idle waits — can be reproduced exactly.
package cpusim

import (
	"fmt"
	"time"

	"greengpu/internal/sim"
	"greengpu/internal/telemetry"
	"greengpu/internal/units"
)

// Package metrics (see docs/OBSERVABILITY.md). No-ops unless telemetry is
// enabled.
var (
	metricJobs = telemetry.NewCounter("greengpu_cpusim_jobs_total",
		"CPU parallel-region jobs completed across all simulated processors.")
	metricLevelSwitches = telemetry.NewCounter("greengpu_cpusim_level_switches_total",
		"Effective P-state changes (SetLevel calls that changed the level).")
)

// PState is one frequency/voltage operating point.
type PState struct {
	Frequency units.Frequency
	Voltage   units.Voltage
}

// PowerParams parameterizes CPU-side power at the meter-1 boundary:
//
//	P = Platform + Σ_cores StaticPerCore·(V/Vmax) +
//	               Σ_busy  DynPerCore·(f/fmax)·(V/Vmax)²
//
// Platform covers the motherboard, DRAM and disk, which the wall meter sees
// regardless of CPU activity.
type PowerParams struct {
	Platform      units.Power
	StaticPerCore units.Power // leakage per core at Vmax
	DynPerCore    units.Power // switching power per fully busy core at fmax, Vmax
}

// Config describes a CPU device.
type Config struct {
	Name  string
	Cores int
	IPC   float64 // sustained operations per core per cycle

	// PStates is the ladder of operating points, sorted by ascending
	// frequency. The device boots at the lowest state.
	PStates []PState

	Power PowerParams
}

// Validate reports the first problem with the configuration, if any.
func (c *Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("cpusim: %q: Cores must be positive", c.Name)
	case c.IPC <= 0:
		return fmt.Errorf("cpusim: %q: IPC must be positive", c.Name)
	case len(c.PStates) == 0:
		return fmt.Errorf("cpusim: %q: need at least one P-state", c.Name)
	}
	for i, ps := range c.PStates {
		if ps.Frequency <= 0 || ps.Voltage <= 0 {
			return fmt.Errorf("cpusim: %q: P-state %d must have positive frequency and voltage", c.Name, i)
		}
		if i > 0 && ps.Frequency <= c.PStates[i-1].Frequency {
			return fmt.Errorf("cpusim: %q: P-state frequencies must be strictly ascending", c.Name)
		}
	}
	return nil
}

// Job is a parallel region executed on the CPU.
type Job struct {
	Name       string
	Ops        float64 // total operations across all threads
	Threads    int     // cores used; clamped to the core count
	OnComplete func()

	started  time.Duration
	finished time.Duration
}

// ExecTime returns the job's execution time. Valid once completed.
func (j *Job) ExecTime() time.Duration { return j.finished - j.started }

// Counters is a snapshot of cumulative CPU accounting.
type Counters struct {
	At            time.Duration
	Busy          time.Duration // ∫ utilization dt (whole-socket average)
	Energy        units.Energy
	SpinTime      time.Duration // wall time with at least one spinning core
	SpinEnergy    units.Energy  // ∫ P dt while spinning and not running a job
	JobsCompleted int
}

// Window summarizes CPU activity between two snapshots.
type Window struct {
	Duration time.Duration
	Util     float64
	Energy   units.Energy
}

// Since returns the activity window from snapshot a to snapshot c.
func (c Counters) Since(a Counters) Window {
	dt := c.At - a.At
	w := Window{Duration: dt, Energy: c.Energy - a.Energy}
	if dt > 0 {
		w.Util = units.Clamp(float64(c.Busy-a.Busy)/float64(dt), 0, 1)
	}
	return w
}

// CPU is a simulated processor attached to a sim.Engine.
type CPU struct {
	cfg    Config
	engine *sim.Engine

	level     int
	spinCores int
	job       *jobExec

	// Per-P-state derived constants, built once at construction so the
	// power and job-timing hot paths do table lookups instead of
	// re-deriving voltage/frequency ratio chains. Entries are computed
	// with exactly the operation order the formulas used inline, so
	// results are bit-identical. The busy-core and thread dimensions are
	// tabulated too (both bounded by the core count) because float
	// multiplication is non-associative: factoring the ratios out of the
	// product would change the grouping, and the last bit with it.
	// The 2-D tables are flattened row-major with stride Cores+1.
	basePower []units.Power // Platform + static leakage at P-state
	dynPower  []units.Power // [state·stride+busyCores] dynamic switching power
	jobDenom  []float64     // [state·stride+threads] ops/s: threads·IPC·f
	stride    int

	jobEnd func() // bound job-completion callback, allocated once
	jobBuf jobExec

	lastUpdate time.Duration
	busy       time.Duration
	energy     units.Energy
	spinTime   time.Duration
	spinEnergy units.Energy
	completed  int
}

type jobExec struct {
	job      *Job
	cores    int
	remOps   float64
	segStart time.Duration
	segT     time.Duration
	name     string // job event label, built once at Run
	endEvent sim.Event
}

// New creates a CPU bound to the engine, booting at the lowest P-state.
// It panics on an invalid configuration; use Config.Validate to check first.
func New(e *sim.Engine, cfg Config) *CPU {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &CPU{cfg: cfg, engine: e, lastUpdate: e.Now()}
	c.jobEnd = func() {
		c.accrue()
		c.finishJob()
	}
	var t Tables
	fillTables(&cfg, &t)
	c.basePower, c.dynPower, c.jobDenom, c.stride = t.BasePower, t.DynPower, t.JobDenom, t.Stride
	return c
}

// Config returns the device configuration.
func (c *CPU) Config() Config { return c.cfg }

// Levels returns the number of P-states.
func (c *CPU) Levels() int { return len(c.cfg.PStates) }

// Level returns the index of the current P-state.
func (c *CPU) Level() int { return c.level }

// Frequency returns the current clock frequency.
func (c *CPU) Frequency() units.Frequency { return c.cfg.PStates[c.level].Frequency }

// Voltage returns the current supply voltage.
func (c *CPU) Voltage() units.Voltage { return c.cfg.PStates[c.level].Voltage }

// Busy reports whether a job is executing.
func (c *CPU) Busy() bool { return c.job != nil }

// SetLevel changes the P-state, re-timing any in-flight job.
func (c *CPU) SetLevel(i int) {
	if i < 0 || i >= len(c.cfg.PStates) {
		panic(fmt.Sprintf("cpusim: P-state %d out of range [0,%d)", i, len(c.cfg.PStates)))
	}
	if i == c.level {
		return
	}
	metricLevelSwitches.Inc()
	c.accrue()
	c.level = i
	if c.job != nil {
		c.carryOver()
		c.startSegment()
	}
}

// SetSpin sets the number of cores busy-waiting. Spinning cores consume
// full dynamic power and show 100% utilization but make no progress.
// The count is clamped to the core count.
func (c *CPU) SetSpin(cores int) {
	if cores < 0 {
		cores = 0
	}
	if cores > c.cfg.Cores {
		cores = c.cfg.Cores
	}
	if cores == c.spinCores {
		return
	}
	c.accrue()
	c.spinCores = cores
}

// SpinCores returns the number of cores currently spinning.
func (c *CPU) SpinCores() int { return c.spinCores }

// Run starts a job. It panics if a job is already executing: the GreenGPU
// execution structure runs one parallel region at a time per device.
func (c *CPU) Run(j *Job) {
	if j == nil {
		panic("cpusim: Run(nil)")
	}
	if c.job != nil {
		panic(fmt.Sprintf("cpusim: Run(%q) while %q is executing", j.Name, c.job.job.Name))
	}
	if j.Ops < 0 {
		panic(fmt.Sprintf("cpusim: job %q has negative ops", j.Name))
	}
	cores := j.Threads
	if cores <= 0 || cores > c.cfg.Cores {
		cores = c.cfg.Cores
	}
	c.accrue()
	j.started = c.engine.Now()
	// One job runs at a time, so its execution state lives in a reused
	// buffer rather than a fresh allocation.
	c.jobBuf = jobExec{job: j, cores: cores, remOps: j.Ops, name: "cpu:" + j.Name}
	c.job = &c.jobBuf
	c.startSegment()
}

// Utilization returns the instantaneous whole-socket utilization: the
// fraction of cores either executing a job or spinning.
func (c *CPU) Utilization() float64 {
	return float64(c.busyCores()) / float64(c.cfg.Cores)
}

// MaxCoreUtilization returns the highest per-core utilization, which is what
// the ondemand governor keys off: 1 if any core is busy or spinning.
func (c *CPU) MaxCoreUtilization() float64 {
	if c.busyCores() > 0 {
		return 1
	}
	return 0
}

func (c *CPU) busyCores() int {
	n := c.spinCores
	if c.job != nil {
		n += c.job.cores
	}
	if n > c.cfg.Cores {
		n = c.cfg.Cores
	}
	return n
}

// InstantPower returns the CPU-side power draw at the current instant.
func (c *CPU) InstantPower() units.Power {
	return c.powerAt(c.level, c.busyCores())
}

// IdlePowerAt returns the CPU-side power with all cores idle at the given
// P-state. Used by the paper's Fig. 6c emulation, which substitutes this
// value (at the lowest state) for measured power during idle spin-waits.
func (c *CPU) IdlePowerAt(level int) units.Power {
	if level < 0 || level >= len(c.cfg.PStates) {
		panic(fmt.Sprintf("cpusim: P-state %d out of range", level))
	}
	return c.powerAt(level, 0)
}

func (c *CPU) powerAt(level, busyCores int) units.Power {
	return c.basePower[level] + c.dynPower[level*c.stride+busyCores]
}

// Counters returns a snapshot of cumulative accounting as of now.
func (c *CPU) Counters() Counters {
	c.accrue()
	return Counters{
		At:            c.lastUpdate,
		Busy:          c.busy,
		Energy:        c.energy,
		SpinTime:      c.spinTime,
		SpinEnergy:    c.spinEnergy,
		JobsCompleted: c.completed,
	}
}

// JobTime predicts the execution time of ops operations on the given number
// of threads at P-state level, without running anything.
func (c *CPU) JobTime(ops float64, threads, level int) time.Duration {
	if threads <= 0 || threads > c.cfg.Cores {
		threads = c.cfg.Cores
	}
	denom := c.jobDenom[level*c.stride+threads]
	if ops <= 0 {
		return 0
	}
	return units.Seconds(ops / denom)
}

func (c *CPU) accrue() {
	now := c.engine.Now()
	dt := now - c.lastUpdate
	if dt <= 0 {
		return
	}
	u := c.Utilization()
	p := c.InstantPower()
	c.busy += time.Duration(u * float64(dt))
	c.energy += p.Over(dt)
	if c.spinCores > 0 && c.job == nil {
		c.spinTime += dt
		c.spinEnergy += p.Over(dt)
	}
	c.lastUpdate = now
}

func (c *CPU) carryOver() {
	je := c.job
	c.engine.Cancel(je.endEvent)
	if je.segT <= 0 {
		return
	}
	frac := units.Clamp(float64(c.engine.Now()-je.segStart)/float64(je.segT), 0, 1)
	je.remOps *= 1 - frac
}

func (c *CPU) startSegment() {
	je := c.job
	t := c.JobTime(je.remOps, je.cores, c.level)
	je.segStart = c.engine.Now()
	je.segT = t
	if t <= 0 {
		c.finishJob()
		return
	}
	je.endEvent = c.engine.After(t, je.name, c.jobEnd)
}

func (c *CPU) finishJob() {
	c.accrue()
	j := c.job.job
	j.finished = c.engine.Now()
	c.job = nil
	c.completed++
	metricJobs.Inc()
	if j.OnComplete != nil {
		j.OnComplete()
	}
}
