package cpusim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"greengpu/internal/sim"
	"greengpu/internal/units"
)

// testConfig: 2 cores, IPC 1, two P-states at 1 GHz/1.0 V and 2 GHz/1.25 V.
func testConfig() Config {
	return Config{
		Name:  "test-cpu",
		Cores: 2,
		IPC:   1,
		PStates: []PState{
			{Frequency: 1 * units.Gigahertz, Voltage: 1.0},
			{Frequency: 2 * units.Gigahertz, Voltage: 1.25},
		},
		Power: PowerParams{
			Platform:      40,
			StaticPerCore: 5,
			DynPerCore:    25,
		},
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero cores", func(c *Config) { c.Cores = 0 }},
		{"zero IPC", func(c *Config) { c.IPC = 0 }},
		{"no p-states", func(c *Config) { c.PStates = nil }},
		{"zero freq", func(c *Config) { c.PStates[0].Frequency = 0 }},
		{"zero volt", func(c *Config) { c.PStates[1].Voltage = 0 }},
		{"descending", func(c *Config) {
			c.PStates = []PState{
				{Frequency: 2 * units.Gigahertz, Voltage: 1.25},
				{Frequency: 1 * units.Gigahertz, Voltage: 1.0},
			}
		}},
	}
	for _, m := range mutations {
		c := testConfig()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad config", m.name)
		}
	}
}

func TestBootsAtLowestPState(t *testing.T) {
	c := New(sim.New(), testConfig())
	if c.Level() != 0 {
		t.Errorf("boot level = %d, want 0", c.Level())
	}
	if c.Frequency() != 1*units.Gigahertz {
		t.Errorf("boot frequency = %v", c.Frequency())
	}
	if c.Voltage() != 1.0 {
		t.Errorf("boot voltage = %v", c.Voltage())
	}
}

func TestJobTiming(t *testing.T) {
	e := sim.New()
	c := New(e, testConfig())
	c.SetLevel(1) // 2 GHz
	// 4e9 ops on 2 cores at 2 GHz, IPC 1 -> 1s.
	j := &Job{Name: "j", Ops: 4e9, Threads: 2}
	c.Run(j)
	e.Run()
	if got := j.ExecTime(); absDur(got-time.Second) > time.Microsecond {
		t.Errorf("ExecTime = %v, want 1s", got)
	}
}

func TestSingleThreadJob(t *testing.T) {
	e := sim.New()
	c := New(e, testConfig())
	j := &Job{Name: "st", Ops: 1e9, Threads: 1} // 1 core @1GHz -> 1s
	c.Run(j)
	if u := c.Utilization(); u != 0.5 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
	e.Run()
	if absDur(j.ExecTime()-time.Second) > time.Microsecond {
		t.Errorf("ExecTime = %v, want 1s", j.ExecTime())
	}
}

func TestThreadsClampedToCores(t *testing.T) {
	e := sim.New()
	c := New(e, testConfig())
	j := &Job{Name: "wide", Ops: 2e9, Threads: 16} // clamped to 2 cores -> 1s
	c.Run(j)
	e.Run()
	if absDur(j.ExecTime()-time.Second) > time.Microsecond {
		t.Errorf("ExecTime = %v, want 1s", j.ExecTime())
	}
	// Threads <= 0 also means "all cores".
	j2 := &Job{Name: "auto", Ops: 2e9}
	c.Run(j2)
	e.Run()
	if absDur(j2.ExecTime()-time.Second) > time.Microsecond {
		t.Errorf("auto-thread ExecTime = %v, want 1s", j2.ExecTime())
	}
}

func TestPStateChangeMidJob(t *testing.T) {
	e := sim.New()
	c := New(e, testConfig())
	c.SetLevel(1)                                 // 2 GHz
	j := &Job{Name: "dvfs", Ops: 8e9, Threads: 2} // 2s at 2 GHz
	c.Run(j)
	e.RunUntil(time.Second) // half done (4e9 ops remain)
	c.SetLevel(0)           // 1 GHz -> remaining takes 2s
	e.Run()
	if absDur(j.ExecTime()-3*time.Second) > time.Microsecond {
		t.Errorf("ExecTime = %v, want 3s", j.ExecTime())
	}
}

func TestRunWhileBusyPanics(t *testing.T) {
	e := sim.New()
	c := New(e, testConfig())
	c.Run(&Job{Name: "a", Ops: 1e9})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Run(&Job{Name: "b", Ops: 1e9})
}

func TestRunNilPanics(t *testing.T) {
	c := New(sim.New(), testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Run(nil)
}

func TestNegativeOpsPanics(t *testing.T) {
	c := New(sim.New(), testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Run(&Job{Name: "neg", Ops: -5})
}

func TestSetLevelOutOfRangePanics(t *testing.T) {
	c := New(sim.New(), testConfig())
	for _, lvl := range []int{-1, 2} {
		lvl := lvl
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for level %d", lvl)
				}
			}()
			c.SetLevel(lvl)
		}()
	}
}

func TestZeroOpsJobCompletesImmediately(t *testing.T) {
	e := sim.New()
	c := New(e, testConfig())
	done := false
	c.Run(&Job{Name: "zero", Ops: 0, OnComplete: func() { done = true }})
	if !done {
		t.Error("zero-ops job did not complete synchronously")
	}
	if c.Busy() {
		t.Error("CPU still busy")
	}
}

func TestSpinAccounting(t *testing.T) {
	e := sim.New()
	c := New(e, testConfig())
	c.SetSpin(1)
	if u := c.Utilization(); u != 0.5 {
		t.Errorf("spin utilization = %v, want 0.5", u)
	}
	if got := c.MaxCoreUtilization(); got != 1 {
		t.Errorf("MaxCoreUtilization = %v, want 1", got)
	}
	e.RunUntil(2 * time.Second)
	c.SetSpin(0)
	e.RunUntil(3 * time.Second)
	cnt := c.Counters()
	if cnt.SpinTime != 2*time.Second {
		t.Errorf("SpinTime = %v, want 2s", cnt.SpinTime)
	}
	// Spin power at level 0: 40 + 2*5*(1/1.25) + 1*25*(0.5)*(0.8)^2 = 40+8+8 = 56 W.
	wantSpinE := 2.0 * 56
	if math.Abs(cnt.SpinEnergy.Joules()-wantSpinE) > 1e-6 {
		t.Errorf("SpinEnergy = %v J, want %v", cnt.SpinEnergy.Joules(), wantSpinE)
	}
	if got := c.MaxCoreUtilization(); got != 0 {
		t.Errorf("idle MaxCoreUtilization = %v, want 0", got)
	}
}

func TestSpinClamped(t *testing.T) {
	c := New(sim.New(), testConfig())
	c.SetSpin(100)
	if c.SpinCores() != 2 {
		t.Errorf("SpinCores = %d, want 2", c.SpinCores())
	}
	c.SetSpin(-4)
	if c.SpinCores() != 0 {
		t.Errorf("SpinCores = %d, want 0", c.SpinCores())
	}
}

func TestSpinDoesNotCountDuringJob(t *testing.T) {
	e := sim.New()
	c := New(e, testConfig())
	c.SetSpin(1)
	c.Run(&Job{Name: "j", Ops: 1e9, Threads: 1}) // 1s alongside spin
	e.Run()
	cnt := c.Counters()
	// Spin energy only accrues when spinning without a job.
	if cnt.SpinTime != 0 {
		t.Errorf("SpinTime = %v, want 0 while job runs", cnt.SpinTime)
	}
}

func TestPowerModel(t *testing.T) {
	e := sim.New()
	c := New(e, testConfig())
	// Idle at level 0: 40 + 2*5*(1/1.25) + 0 = 48 W.
	if p := c.InstantPower(); math.Abs(p.Watts()-48) > 1e-9 {
		t.Errorf("idle power = %v, want 48 W", p)
	}
	c.SetLevel(1)
	// Idle at level 1: 40 + 2*5 = 50 W.
	if p := c.InstantPower(); math.Abs(p.Watts()-50) > 1e-9 {
		t.Errorf("idle power = %v, want 50 W", p)
	}
	c.Run(&Job{Name: "p", Ops: 4e9, Threads: 2})
	// Busy both cores at top state: 40 + 10 + 2*25 = 100 W.
	if p := c.InstantPower(); math.Abs(p.Watts()-100) > 1e-9 {
		t.Errorf("busy power = %v, want 100 W", p)
	}
	e.Run()
}

func TestIdlePowerAt(t *testing.T) {
	c := New(sim.New(), testConfig())
	if p := c.IdlePowerAt(0); math.Abs(p.Watts()-48) > 1e-9 {
		t.Errorf("IdlePowerAt(0) = %v, want 48 W", p)
	}
	if p := c.IdlePowerAt(1); math.Abs(p.Watts()-50) > 1e-9 {
		t.Errorf("IdlePowerAt(1) = %v, want 50 W", p)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range level")
		}
	}()
	c.IdlePowerAt(5)
}

func TestEnergyIntegration(t *testing.T) {
	e := sim.New()
	c := New(e, testConfig())
	c.SetLevel(1)
	before := c.Counters()
	c.Run(&Job{Name: "e", Ops: 4e9, Threads: 2}) // 1s at 100 W
	e.Run()
	w := c.Counters().Since(before)
	if math.Abs(w.Energy.Joules()-100) > 1e-6 {
		t.Errorf("busy energy = %v J, want 100", w.Energy.Joules())
	}
	if math.Abs(w.Util-1) > 1e-9 {
		t.Errorf("window util = %v, want 1", w.Util)
	}
}

func TestJobTimePrediction(t *testing.T) {
	c := New(sim.New(), testConfig())
	if got := c.JobTime(2e9, 2, 0); absDur(got-time.Second) > time.Microsecond {
		t.Errorf("JobTime = %v, want 1s", got)
	}
	if got := c.JobTime(2e9, 1, 1); absDur(got-time.Second) > time.Microsecond {
		t.Errorf("JobTime 1-thread @2GHz = %v, want 1s", got)
	}
	if got := c.JobTime(0, 2, 0); got != 0 {
		t.Errorf("JobTime(0 ops) = %v, want 0", got)
	}
}

func TestOnCompleteAndCounters(t *testing.T) {
	e := sim.New()
	c := New(e, testConfig())
	n := 0
	c.Run(&Job{Name: "cb", Ops: 1e9, OnComplete: func() { n++ }})
	e.Run()
	if n != 1 {
		t.Errorf("OnComplete fired %d times", n)
	}
	if got := c.Counters().JobsCompleted; got != 1 {
		t.Errorf("JobsCompleted = %d", got)
	}
}

// Property: job execution time scales inversely with frequency ratio.
func TestFrequencyScalingProperty(t *testing.T) {
	f := func(opsM uint16) bool {
		if opsM == 0 {
			return true
		}
		ops := float64(opsM) * 1e6
		run := func(level int) time.Duration {
			e := sim.New()
			c := New(e, testConfig())
			c.SetLevel(level)
			j := &Job{Name: "s", Ops: ops, Threads: 2}
			c.Run(j)
			e.Run()
			return j.ExecTime()
		}
		slow, fast := run(0), run(1)
		ratio := float64(slow) / float64(fast)
		return math.Abs(ratio-2) < 0.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: energy accounting is invariant to observation points.
func TestEnergyObservationInvariance(t *testing.T) {
	f := func(probeMs uint16) bool {
		total := func(probe bool) units.Energy {
			e := sim.New()
			c := New(e, testConfig())
			c.Run(&Job{Name: "x", Ops: 3e9, Threads: 2})
			if probe {
				at := time.Duration(probeMs) * time.Millisecond
				if at > 0 && at < 1500*time.Millisecond {
					e.RunUntil(at)
					c.Counters()
				}
			}
			e.Run()
			e.RunUntil(2 * time.Second)
			return c.Counters().Energy
		}
		a, b := total(true), total(false)
		return math.Abs(float64(a-b)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
