package cpusim

import (
	"time"

	"greengpu/internal/units"
)

// Tables holds the per-P-state derived constants of a CPU configuration,
// decoupled from any live device: the same flattened tables the CPU hot
// paths index, built once and shared read-only across a whole batch of
// simulation points (see internal/sweep).
//
// Entries are computed by exactly the same code the device uses, so power
// and job timing derived from a Tables are bit-identical to what a freshly
// assembled device reports at the same level and busy-core count.
type Tables struct {
	// BasePower[l] is Platform + static leakage at P-state l.
	BasePower []units.Power
	// DynPower[l·Stride+n] is dynamic switching power with n busy cores
	// at P-state l.
	DynPower []units.Power
	// JobDenom[l·Stride+n] is ops/s of an n-thread job at P-state l:
	// n·IPC·f. Zero when n is zero.
	JobDenom []float64
	// Stride is the row stride of the 2-D tables: Cores+1.
	Stride int
}

// BuildTables validates cfg and derives its P-state tables.
func BuildTables(cfg Config) (*Tables, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Tables{}
	fillTables(&cfg, t)
	return t, nil
}

// fillTables allocates and populates the derived tables. Shared by the live
// device and BuildTables so both produce bit-identical entries: the
// busy-core and thread dimensions are tabulated (rather than factored into
// ratio products) because float multiplication is non-associative.
func fillTables(cfg *Config, t *Tables) {
	top := cfg.PStates[len(cfg.PStates)-1]
	t.Stride = cfg.Cores + 1
	t.BasePower = make([]units.Power, len(cfg.PStates))
	t.DynPower = make([]units.Power, len(cfg.PStates)*t.Stride)
	t.JobDenom = make([]float64, len(cfg.PStates)*t.Stride)
	for l, ps := range cfg.PStates {
		vr := float64(ps.Voltage) / float64(top.Voltage)
		fr := float64(ps.Frequency) / float64(top.Frequency)
		t.BasePower[l] = cfg.Power.Platform + units.Power(float64(cfg.Cores)*vr)*cfg.Power.StaticPerCore
		for n := 0; n <= cfg.Cores; n++ {
			t.DynPower[l*t.Stride+n] = units.Power(float64(n)*fr*vr*vr) * cfg.Power.DynPerCore
			if n > 0 {
				t.JobDenom[l*t.Stride+n] = float64(n) * cfg.IPC * float64(ps.Frequency)
			}
		}
	}
}

// PowerAt returns CPU-side power at P-state level with the given number of
// busy cores, exactly as a live device in that state would report.
func (t *Tables) PowerAt(level, busyCores int) units.Power {
	return t.BasePower[level] + t.DynPower[level*t.Stride+busyCores]
}

// JobTime predicts the execution time of ops operations on threads cores at
// P-state level, exactly as CPU.JobTime would.
func (t *Tables) JobTime(ops float64, threads, level int) time.Duration {
	denom := t.JobDenom[level*t.Stride+threads]
	if ops <= 0 {
		return 0
	}
	return units.Seconds(ops / denom)
}
