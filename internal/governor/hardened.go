package governor

import (
	"greengpu/internal/telemetry"
	"greengpu/internal/units"
)

var metricHardenedHolds = telemetry.NewCounter("greengpu_governor_held_samples_total",
	"CPU utilization samples replaced by the last good reading (hold-last-good).")

// Hardened wraps a Policy with sensor-fault tolerance: non-finite
// utilization readings (a dropped /proc/stat sample) are replaced by the
// last good reading instead of reaching the wrapped policy, finite
// readings are clamped to [0,1], and the returned level is clamped into
// range regardless of what the policy does. The wrapped policy therefore
// only ever sees sane inputs, and callers only ever see sane outputs.
type Hardened struct {
	policy   Policy
	lastGood float64
	holds    uint64
}

// Harden wraps a policy. The last-good reading starts at 0 (idle), the
// same fallback dvfs.sanitizeUtil uses before any sample has arrived.
func Harden(p Policy) *Hardened {
	return &Hardened{policy: p}
}

// Name implements Policy.
func (h *Hardened) Name() string { return "hardened(" + h.policy.Name() + ")" }

// Holds returns how many samples hold-last-good replaced.
func (h *Hardened) Holds() uint64 { return h.holds }

// Unwrap returns the wrapped policy.
func (h *Hardened) Unwrap() Policy { return h.policy }

// Next implements Policy.
func (h *Hardened) Next(util float64, current, nLevels int) int {
	if util != util || util-util != 0 { // NaN or ±Inf
		util = h.lastGood
		h.holds++
		metricHardenedHolds.Inc()
	} else {
		util = units.Clamp(util, 0, 1)
		h.lastGood = util
	}
	return clampLevel(h.policy.Next(util, current, nLevels), nLevels)
}
