package governor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOndemandDefaults(t *testing.T) {
	o := NewOndemand()
	if o.UpThreshold != 0.80 || o.DownThreshold != 0.30 {
		t.Errorf("defaults = %+v", o)
	}
	if err := o.Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	if o.Name() != "ondemand" {
		t.Errorf("Name = %q", o.Name())
	}
}

func TestOndemandValidate(t *testing.T) {
	bads := []Ondemand{
		{UpThreshold: 0, DownThreshold: 0},
		{UpThreshold: 1.5, DownThreshold: 0.3},
		{UpThreshold: 0.8, DownThreshold: -0.1},
		{UpThreshold: 0.8, DownThreshold: 0.8},
		{UpThreshold: 0.8, DownThreshold: 0.9},
	}
	for i, o := range bads {
		if err := o.Validate(); err == nil {
			t.Errorf("bad thresholds %d accepted: %+v", i, o)
		}
	}
}

func TestOndemandJumpsToMax(t *testing.T) {
	o := NewOndemand()
	// Above the up-threshold, jump straight to the top from any level.
	for cur := 0; cur < 4; cur++ {
		if got := o.Next(0.95, cur, 4); got != 3 {
			t.Errorf("Next(0.95, %d, 4) = %d, want 3", cur, got)
		}
	}
}

func TestOndemandStepsDownOneLevel(t *testing.T) {
	o := NewOndemand()
	if got := o.Next(0.1, 3, 4); got != 2 {
		t.Errorf("Next(0.1, 3, 4) = %d, want 2", got)
	}
	if got := o.Next(0.1, 1, 4); got != 0 {
		t.Errorf("Next(0.1, 1, 4) = %d, want 0", got)
	}
	// Already at the bottom: stay.
	if got := o.Next(0.1, 0, 4); got != 0 {
		t.Errorf("Next(0.1, 0, 4) = %d, want 0", got)
	}
}

func TestOndemandHoldsInBand(t *testing.T) {
	o := NewOndemand()
	for _, u := range []float64{0.30, 0.5, 0.79, 0.80} {
		if got := o.Next(u, 2, 4); got != 2 {
			t.Errorf("Next(%v, 2, 4) = %d, want hold at 2", u, got)
		}
	}
}

func TestOndemandSpinWaitPinsMax(t *testing.T) {
	// The paper's observation: synchronous CUDA waits keep utilization at
	// 100%, so ondemand can never throttle during GPU phases.
	o := NewOndemand()
	level := 0
	for i := 0; i < 10; i++ {
		level = o.Next(1.0, level, 4)
	}
	if level != 3 {
		t.Errorf("spin-wait level = %d, want pinned at 3", level)
	}
}

func TestOndemandDescendsWhenIdle(t *testing.T) {
	o := NewOndemand()
	level := 3
	steps := 0
	for level > 0 {
		level = o.Next(0.0, level, 4)
		steps++
		if steps > 10 {
			t.Fatal("never reached bottom")
		}
	}
	if steps != 3 {
		t.Errorf("took %d steps to descend 3 levels, want 3", steps)
	}
}

func TestOndemandClampsCurrent(t *testing.T) {
	o := NewOndemand()
	if got := o.Next(0.5, -5, 4); got != 0 {
		t.Errorf("Next with current=-5 = %d, want 0", got)
	}
	if got := o.Next(0.5, 99, 4); got != 3 {
		t.Errorf("Next with current=99 = %d, want 3", got)
	}
}

func TestOndemandZeroLevelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewOndemand().Next(0.5, 0, 0)
}

func TestBestPerformance(t *testing.T) {
	var p BestPerformance
	if p.Name() != "best-performance" {
		t.Errorf("Name = %q", p.Name())
	}
	for _, u := range []float64{0, 0.5, 1} {
		if got := p.Next(u, 0, 6); got != 5 {
			t.Errorf("Next(%v) = %d, want 5", u, got)
		}
	}
}

func TestPowerSave(t *testing.T) {
	var p PowerSave
	if p.Name() != "powersave" {
		t.Errorf("Name = %q", p.Name())
	}
	for _, u := range []float64{0, 0.5, 1} {
		if got := p.Next(u, 5, 6); got != 0 {
			t.Errorf("Next(%v) = %d, want 0", u, got)
		}
	}
}

// Property: ondemand never returns an out-of-range level and never moves
// down by more than one step per decision.
func TestOndemandInvariantsProperty(t *testing.T) {
	o := NewOndemand()
	f := func(utils []float64, n uint8) bool {
		nLevels := int(n)%8 + 1
		level := nLevels - 1
		for _, u := range utils {
			u = math.Abs(math.Mod(u, 1))
			if math.IsNaN(u) {
				u = 0
			}
			next := o.Next(u, level, nLevels)
			if next < 0 || next >= nLevels {
				return false
			}
			if next < level-1 {
				return false // dropped more than one step
			}
			level = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestConservativeDefaults(t *testing.T) {
	c := NewConservative()
	if c.UpThreshold != 0.80 || c.DownThreshold != 0.20 {
		t.Errorf("defaults = %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	if c.Name() != "conservative" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestConservativeStepsUpGradually(t *testing.T) {
	c := NewConservative()
	level := 0
	steps := 0
	for level < 3 {
		level = c.Next(1.0, level, 4)
		steps++
		if steps > 10 {
			t.Fatal("never reached the top")
		}
	}
	if steps != 3 {
		t.Errorf("took %d decisions to climb 3 levels, want one per decision", steps)
	}
	// At the top it holds.
	if got := c.Next(1.0, 3, 4); got != 3 {
		t.Errorf("Next at top = %d", got)
	}
}

func TestConservativeStepsDown(t *testing.T) {
	c := NewConservative()
	if got := c.Next(0.05, 2, 4); got != 1 {
		t.Errorf("Next(0.05, 2) = %d, want 1", got)
	}
	if got := c.Next(0.05, 0, 4); got != 0 {
		t.Errorf("Next(0.05, 0) = %d, want 0", got)
	}
}

func TestConservativeHoldsInBand(t *testing.T) {
	c := NewConservative()
	for _, u := range []float64{0.20, 0.5, 0.80} {
		if got := c.Next(u, 2, 4); got != 2 {
			t.Errorf("Next(%v, 2) = %d, want hold", u, got)
		}
	}
}

func TestConservativeValidate(t *testing.T) {
	bads := []Conservative{
		{UpThreshold: 0, DownThreshold: 0},
		{UpThreshold: 0.8, DownThreshold: 0.9},
	}
	for i, c := range bads {
		if err := c.Validate(); err == nil {
			t.Errorf("bad thresholds %d accepted", i)
		}
	}
}

// Property: conservative moves at most one level per decision.
func TestConservativeOneStepProperty(t *testing.T) {
	c := NewConservative()
	f := func(utils []float64, n uint8) bool {
		nLevels := int(n)%8 + 1
		level := 0
		for _, u := range utils {
			u = math.Abs(math.Mod(u, 1))
			if math.IsNaN(u) {
				u = 0
			}
			next := c.Next(u, level, nLevels)
			if next < 0 || next >= nLevels {
				return false
			}
			d := next - level
			if d < -1 || d > 1 {
				return false
			}
			level = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
