// Package governor implements CPU frequency governors: the Linux ondemand
// governor that GreenGPU adopts for the CPU tier (paper §IV), plus the fixed
// policies used as baselines in the evaluation.
//
// The ondemand behaviour follows Pallipadi & Starikovskiy's description,
// which the paper quotes: "If CPU utilization rises above an upper
// utilization threshold value, the ondemand governor increases the CPU
// frequency to the highest available frequency. When CPU utilization falls
// below a low utilization threshold, the governor sets the CPU to run at the
// next lowest frequency."
package governor

import (
	"fmt"

	"greengpu/internal/telemetry"
)

// Package metrics (see docs/OBSERVABILITY.md). No-ops unless telemetry is
// enabled.
var (
	metricDecisions = telemetry.NewCounter("greengpu_governor_decisions_total",
		"CPU governor sampling decisions (Policy.Next calls) across all runs.")
	metricJumpsToMax = telemetry.NewCounter("greengpu_governor_jumps_to_max_total",
		"Ondemand decisions that jumped straight to the highest P-state.")
)

// Policy decides the next frequency level from the observed utilization.
// Levels are indices into an ascending frequency ladder with nLevels
// entries; current is the level in force during the sampled interval.
type Policy interface {
	// Next returns the level to enforce for the coming interval.
	Next(util float64, current, nLevels int) int
	// Name identifies the policy in traces and experiment output.
	Name() string
}

// Ondemand is the Linux ondemand governor (linux-2.6.9 and later).
type Ondemand struct {
	// UpThreshold jumps straight to the highest level when exceeded.
	// Linux's default is 0.80.
	UpThreshold float64
	// DownThreshold steps one level down when utilization falls below it.
	// Linux derives it as UpThreshold minus a down-differential of 10
	// points by default; 0.30 matches the kernel's conservative effective
	// behaviour for mostly-idle loads and is what we default to.
	DownThreshold float64
}

// NewOndemand returns an ondemand governor with the default thresholds.
func NewOndemand() *Ondemand {
	return &Ondemand{UpThreshold: 0.80, DownThreshold: 0.30}
}

// Validate reports the first problem with the thresholds, if any.
func (o *Ondemand) Validate() error {
	if o.UpThreshold <= 0 || o.UpThreshold > 1 {
		return fmt.Errorf("governor: UpThreshold = %v, must be in (0,1]", o.UpThreshold)
	}
	if o.DownThreshold < 0 || o.DownThreshold >= o.UpThreshold {
		return fmt.Errorf("governor: DownThreshold = %v, must be in [0, UpThreshold)", o.DownThreshold)
	}
	return nil
}

// Name implements Policy.
func (o *Ondemand) Name() string { return "ondemand" }

// Next implements Policy: above UpThreshold jump to the top level; below
// DownThreshold step down one level; otherwise hold.
func (o *Ondemand) Next(util float64, current, nLevels int) int {
	if nLevels <= 0 {
		panic("governor: nLevels must be positive")
	}
	metricDecisions.Inc()
	current = clampLevel(current, nLevels)
	switch {
	case util > o.UpThreshold:
		metricJumpsToMax.Inc()
		return nLevels - 1
	case util < o.DownThreshold && current > 0:
		return current - 1
	default:
		return current
	}
}

// Conservative is the Linux conservative governor: like ondemand but it
// steps the frequency up gradually (one level per decision) instead of
// jumping straight to the maximum. The paper notes that other DVFS
// strategies can be slotted into GreenGPU's CPU tier; this is the other
// stock-kernel option.
type Conservative struct {
	UpThreshold   float64
	DownThreshold float64
}

// NewConservative returns a conservative governor with the kernel's
// default thresholds.
func NewConservative() *Conservative {
	return &Conservative{UpThreshold: 0.80, DownThreshold: 0.20}
}

// Validate reports the first problem with the thresholds, if any.
func (c *Conservative) Validate() error {
	if c.UpThreshold <= 0 || c.UpThreshold > 1 {
		return fmt.Errorf("governor: UpThreshold = %v, must be in (0,1]", c.UpThreshold)
	}
	if c.DownThreshold < 0 || c.DownThreshold >= c.UpThreshold {
		return fmt.Errorf("governor: DownThreshold = %v, must be in [0, UpThreshold)", c.DownThreshold)
	}
	return nil
}

// Name implements Policy.
func (c *Conservative) Name() string { return "conservative" }

// Next implements Policy: one step up above UpThreshold, one step down
// below DownThreshold, hold in between.
func (c *Conservative) Next(util float64, current, nLevels int) int {
	if nLevels <= 0 {
		panic("governor: nLevels must be positive")
	}
	metricDecisions.Inc()
	current = clampLevel(current, nLevels)
	switch {
	case util > c.UpThreshold && current < nLevels-1:
		return current + 1
	case util < c.DownThreshold && current > 0:
		return current - 1
	default:
		return current
	}
}

// BestPerformance always selects the highest level — the paper's
// best-performance baseline (§VII-A).
type BestPerformance struct{}

// Name implements Policy.
func (BestPerformance) Name() string { return "best-performance" }

// Next implements Policy.
func (BestPerformance) Next(_ float64, _, nLevels int) int {
	if nLevels <= 0 {
		panic("governor: nLevels must be positive")
	}
	metricDecisions.Inc()
	return nLevels - 1
}

// PowerSave always selects the lowest level.
type PowerSave struct{}

// Name implements Policy.
func (PowerSave) Name() string { return "powersave" }

// Next implements Policy.
func (PowerSave) Next(_ float64, _, nLevels int) int {
	if nLevels <= 0 {
		panic("governor: nLevels must be positive")
	}
	metricDecisions.Inc()
	return 0
}

func clampLevel(l, n int) int {
	if l < 0 {
		return 0
	}
	if l >= n {
		return n - 1
	}
	return l
}
