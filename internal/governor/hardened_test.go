package governor

import (
	"math"
	"testing"
)

// TestHardenedHoldLastGood: non-finite samples replay the last good
// utilization instead of reaching the wrapped policy.
func TestHardenedHoldLastGood(t *testing.T) {
	var seen []float64
	spy := policyFunc(func(util float64, current, nLevels int) int {
		seen = append(seen, util)
		return current
	})
	h := Harden(spy)
	h.Next(0.9, 1, 4)          // good
	h.Next(math.NaN(), 1, 4)   // dropped → replay 0.9
	h.Next(math.Inf(1), 1, 4)  // dropped → replay 0.9
	h.Next(0.2, 1, 4)          // good
	h.Next(math.Inf(-1), 1, 4) // dropped → replay 0.2
	want := []float64{0.9, 0.9, 0.9, 0.2, 0.2}
	if len(seen) != len(want) {
		t.Fatalf("policy saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("policy saw %v, want %v", seen, want)
		}
	}
	if h.Holds() != 3 {
		t.Fatalf("Holds = %d, want 3", h.Holds())
	}
}

// TestHardenedBeforeFirstGoodSample: the pre-sample fallback is idle (0),
// matching dvfs.sanitizeUtil.
func TestHardenedBeforeFirstGoodSample(t *testing.T) {
	var seen float64 = -1
	h := Harden(policyFunc(func(util float64, current, nLevels int) int {
		seen = util
		return current
	}))
	h.Next(math.NaN(), 2, 4)
	if seen != 0 {
		t.Fatalf("policy saw %v before any good sample, want 0", seen)
	}
}

// TestHardenedClampsOutput: even a misbehaving policy cannot push an
// out-of-range level past the wrapper.
func TestHardenedClampsOutput(t *testing.T) {
	h := Harden(policyFunc(func(float64, int, int) int { return 99 }))
	if got := h.Next(0.5, 1, 4); got != 3 {
		t.Fatalf("Next = %d, want clamped 3", got)
	}
	h = Harden(policyFunc(func(float64, int, int) int { return -7 }))
	if got := h.Next(0.5, 1, 4); got != 0 {
		t.Fatalf("Next = %d, want clamped 0", got)
	}
}

// TestHardenedName pins the trace label format.
func TestHardenedName(t *testing.T) {
	if got := Harden(NewOndemand()).Name(); got != "hardened(ondemand)" {
		t.Fatalf("Name = %q", got)
	}
}

// policyFunc adapts a function to Policy for tests.
type policyFunc func(util float64, current, nLevels int) int

func (f policyFunc) Next(util float64, current, nLevels int) int { return f(util, current, nLevels) }
func (policyFunc) Name() string                                  { return "spy" }

// FuzzGovernorNext feeds arbitrary utilizations and levels into every
// stock policy, hardened, and asserts no panic and in-range output.
func FuzzGovernorNext(f *testing.F) {
	f.Add(0.5, 1, 4)
	f.Add(math.NaN(), -3, 6)
	f.Add(math.Inf(1), 99, 1)
	f.Add(-2.5, 0, 3)
	policies := []*Hardened{
		Harden(NewOndemand()),
		Harden(NewConservative()),
		Harden(BestPerformance{}),
		Harden(PowerSave{}),
	}
	f.Fuzz(func(t *testing.T, util float64, current, nLevels int) {
		if nLevels <= 0 || nLevels > 64 {
			t.Skip()
		}
		for _, p := range policies {
			got := p.Next(util, current, nLevels)
			if got < 0 || got >= nLevels {
				t.Fatalf("%s.Next(%v,%d,%d) = %d out of range", p.Name(), util, current, nLevels, got)
			}
		}
	})
}
