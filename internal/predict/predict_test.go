package predict

import (
	"errors"
	"math"
	"testing"
	"time"

	"greengpu/internal/units"
)

// testLadders builds an nc×nm ladder pair spanning the testbed's frequency
// ranges.
func testLadders(nc, nm int) (core, mem []units.Frequency) {
	core = make([]units.Frequency, nc)
	mem = make([]units.Frequency, nm)
	for i := range core {
		core[i] = interp(411, 576, i, nc)
	}
	for j := range mem {
		mem[j] = interp(500, 900, j, nm)
	}
	return core, mem
}

func interp(loMHz, hiMHz, i, n int) units.Frequency {
	if n == 1 {
		return units.Frequency(hiMHz) * units.Megahertz
	}
	mhz := loMHz + (hiMHz-loMHz)*i/(n-1)
	return units.Frequency(mhz) * units.Megahertz
}

// synthetic is an exactly-linear ground truth: T = t0 + tc/fcR + tm/fmR,
// E = (e0 + e1·fcR + e2·fmR)·T + e3 — the model family itself, so Fit must
// reproduce it to numerical precision from any spanning anchor set.
type synthetic struct {
	core, mem []units.Frequency
}

func (s synthetic) timeAt(c, m int) float64 {
	fcR := float64(s.core[c]) / float64(s.core[len(s.core)-1])
	fmR := float64(s.mem[m]) / float64(s.mem[len(s.mem)-1])
	return 0.5 + 2.0/fcR + 1.2/fmR
}

func (s synthetic) energyAt(c, m int) float64 {
	fcR := float64(s.core[c]) / float64(s.core[len(s.core)-1])
	fmR := float64(s.mem[m]) / float64(s.mem[len(s.mem)-1])
	return (40 + 30*fcR + 18*fmR) * s.timeAt(c, m)
}

func (s synthetic) sample(c, m int) Sample {
	return Sample{
		Core: c, Mem: m,
		Time:   units.Seconds(s.timeAt(c, m)),
		Energy: units.Energy(s.energyAt(c, m)),
	}
}

func TestFitRecoversLinearTruth(t *testing.T) {
	core, mem := testLadders(6, 6)
	truth := synthetic{core, mem}
	var anchors []Sample
	for _, a := range Anchors(CornersCenter, core, mem) {
		anchors = append(anchors, truth.sample(a.Core, a.Mem))
	}
	m, err := Fit(core, mem, anchors)
	if err != nil {
		t.Fatal(err)
	}
	for c := range core {
		for j := range mem {
			if got, want := m.TimeSeconds(c, j), truth.timeAt(c, j); RelErr(got, want) > 1e-9 {
				t.Errorf("time(%d,%d) = %g, want %g", c, j, got, want)
			}
			if got, want := m.EnergyJoules(c, j), truth.energyAt(c, j); RelErr(got, want) > 1e-9 {
				t.Errorf("energy(%d,%d) = %g, want %g", c, j, got, want)
			}
		}
	}
}

func TestFromCoeffsRoundTrip(t *testing.T) {
	core, mem := testLadders(6, 6)
	truth := synthetic{core, mem}
	var anchors []Sample
	for _, a := range Anchors(DOptimalLite, core, mem) {
		anchors = append(anchors, truth.sample(a.Core, a.Mem))
	}
	m, err := Fit(core, mem, anchors)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := FromCoeffs(core, mem, m.Coeffs())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m2.EnergyJoules(3, 2), m.EnergyJoules(3, 2); got != want {
		t.Errorf("replayed model predicts %g, fitted %g", got, want)
	}
	if _, err := FromCoeffs(core, mem, []float64{1, 2}); err == nil {
		t.Error("FromCoeffs accepted a short coefficient vector")
	}
	if _, err := FromCoeffs(core, mem, []float64{1, 2, 3, 4, 5, 6, math.NaN()}); !errors.Is(err, ErrDegenerate) {
		t.Errorf("FromCoeffs on NaN coeffs: got %v, want ErrDegenerate", err)
	}
}

func TestFitDegenerateAnchors(t *testing.T) {
	core, mem := testLadders(6, 6)
	cases := []struct {
		name    string
		anchors []Sample
	}{
		{"empty", nil},
		{"too-few", []Sample{{Core: 0, Mem: 0, Time: time.Second, Energy: 10}}},
		{"duplicates", []Sample{
			{Core: 0, Mem: 0, Time: time.Second, Energy: 10},
			{Core: 0, Mem: 0, Time: time.Second, Energy: 10},
			{Core: 0, Mem: 0, Time: time.Second, Energy: 10},
			{Core: 0, Mem: 0, Time: time.Second, Energy: 10},
			{Core: 0, Mem: 0, Time: time.Second, Energy: 10},
		}},
		{"one-row", []Sample{ // spans neither domain: singular normal matrix
			{Core: 2, Mem: 0, Time: time.Second, Energy: 10},
			{Core: 2, Mem: 1, Time: time.Second, Energy: 10},
			{Core: 2, Mem: 2, Time: time.Second, Energy: 10},
			{Core: 2, Mem: 3, Time: time.Second, Energy: 10},
		}},
		{"nan-energy", []Sample{
			{Core: 0, Mem: 0, Time: time.Second, Energy: units.Energy(math.NaN())},
			{Core: 0, Mem: 5, Time: time.Second, Energy: 10},
			{Core: 5, Mem: 0, Time: time.Second, Energy: 10},
			{Core: 5, Mem: 5, Time: time.Second, Energy: 10},
			{Core: 2, Mem: 2, Time: time.Second, Energy: 10},
		}},
	}
	for _, tc := range cases {
		if _, err := Fit(core, mem, tc.anchors); !errors.Is(err, ErrDegenerate) {
			t.Errorf("%s: got %v, want ErrDegenerate", tc.name, err)
		}
	}
	if _, err := Fit(core, mem, []Sample{{Core: 9, Mem: 0}}); err == nil || errors.Is(err, ErrDegenerate) {
		t.Errorf("out-of-range anchor: got %v, want a plain error", err)
	}
}

func TestAnchorsStrategies(t *testing.T) {
	core, mem := testLadders(6, 6)
	for _, s := range []Strategy{CornersCenter, DOptimalLite, Adaptive} {
		as := Anchors(s, core, mem)
		if len(as) != 5 {
			t.Errorf("%v: %d anchors, want 5", s, len(as))
		}
		seen := map[Anchor]bool{}
		spanC, spanM := map[int]bool{}, map[int]bool{}
		for _, a := range as {
			if a.Core < 0 || a.Core >= 6 || a.Mem < 0 || a.Mem >= 6 {
				t.Errorf("%v: anchor %+v out of range", s, a)
			}
			if seen[a] {
				t.Errorf("%v: duplicate anchor %+v", s, a)
			}
			seen[a] = true
			spanC[a.Core] = true
			spanM[a.Mem] = true
		}
		if len(spanC) < 2 || len(spanM) < 2 {
			t.Errorf("%v: anchors do not span both domains: %+v", s, as)
		}
	}
	// Degenerate 1×1 ladder: corners collapse to a single anchor.
	c1, m1 := testLadders(1, 1)
	if as := Anchors(CornersCenter, c1, m1); len(as) != 1 {
		t.Errorf("1x1 ladder: %d anchors, want 1", len(as))
	}
}

func TestStrategyParseRoundTrip(t *testing.T) {
	for _, s := range []Strategy{CornersCenter, DOptimalLite, Adaptive} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStrategy("nope"); err == nil {
		t.Error("ParseStrategy accepted an unknown strategy")
	}
}

// TestSweetSpotMatchesBruteForce drives the search against the linear
// ground truth: the verified spot must equal the exhaustive argmin, found
// with O(anchors) evaluations.
func TestSweetSpotMatchesBruteForce(t *testing.T) {
	core, mem := testLadders(24, 24)
	truth := synthetic{core, mem}
	// Exhaustive reference, grid order, strict less-than.
	bc, bm := 0, 0
	for c := range core {
		for m := range mem {
			if truth.energyAt(c, m) < truth.energyAt(bc, bm) {
				bc, bm = c, m
			}
		}
	}
	for _, s := range []Strategy{CornersCenter, DOptimalLite, Adaptive} {
		evals := 0
		eval := func(c, m int) (Sample, error) {
			evals++
			return truth.sample(c, m), nil
		}
		out, err := SweetSpot(core, mem, eval, Options{Strategy: s})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if out.Core != bc || out.Mem != bm {
			t.Errorf("%v: spot (%d,%d), brute force (%d,%d)", s, out.Core, out.Mem, bc, bm)
		}
		if !out.Verified || out.Fallback {
			t.Errorf("%v: Verified=%v Fallback=%v, want verified non-fallback", s, out.Verified, out.Fallback)
		}
		if evals != out.FullEvals {
			t.Errorf("%v: counted %d evals, outcome says %d", s, evals, out.FullEvals)
		}
		if reduction := float64(out.Points) / float64(out.FullEvals); reduction < 50 {
			t.Errorf("%v: %d full evals for %d points (%.0fx), want >=50x", s, out.FullEvals, out.Points, reduction)
		}
		if out.Energy != units.Energy(truth.energyAt(bc, bm)) {
			t.Errorf("%v: outcome energy %v differs from measured optimum", s, out.Energy)
		}
	}
}

// TestSweetSpotUnverified pins TopM<0: the model's own argmin, marked
// unverified, with only the anchor evaluations spent.
func TestSweetSpotUnverified(t *testing.T) {
	core, mem := testLadders(6, 6)
	truth := synthetic{core, mem}
	out, err := SweetSpot(core, mem, func(c, m int) (Sample, error) {
		return truth.sample(c, m), nil
	}, Options{TopM: -1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Verified {
		t.Error("TopM<0 outcome claims to be verified")
	}
	if out.FullEvals != 5 {
		t.Errorf("unverified search spent %d evals, want the 5 anchors", out.FullEvals)
	}
}

// TestSweetSpotFallback forces a degenerate fit (constant measurements make
// the search still well-defined, NaN times make the fit impossible) and
// checks the exhaustive fallback engages and stays correct.
func TestSweetSpotFallback(t *testing.T) {
	core, mem := testLadders(4, 3)
	evals := 0
	out, err := SweetSpot(core, mem, func(c, m int) (Sample, error) {
		evals++
		e := units.Energy(100 - float64(c*3+m)) // minimum at the last grid point
		return Sample{Core: c, Mem: m, Time: units.Seconds(math.NaN()), Energy: e}, nil
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Fallback || !out.Verified {
		t.Errorf("Fallback=%v Verified=%v, want fallback verified", out.Fallback, out.Verified)
	}
	if out.FullEvals != 12 || evals != 12 {
		t.Errorf("fallback spent %d evals (outcome %d), want all 12", evals, out.FullEvals)
	}
	if out.Core != 3 || out.Mem != 2 {
		t.Errorf("fallback spot (%d,%d), want (3,2)", out.Core, out.Mem)
	}
	if out.Coeffs != nil {
		t.Error("fallback outcome carries model coefficients")
	}
}

// TestSweetSpotEvalError propagates evaluation failures.
func TestSweetSpotEvalError(t *testing.T) {
	core, mem := testLadders(6, 6)
	boom := errors.New("boom")
	if _, err := SweetSpot(core, mem, func(c, m int) (Sample, error) {
		return Sample{}, boom
	}, Options{}); !errors.Is(err, boom) {
		t.Errorf("got %v, want the eval error", err)
	}
}

// TestSweetSpotEDPObjective checks the EDP objective uses the studies' J·s
// arithmetic.
func TestSweetSpotEDPObjective(t *testing.T) {
	core, mem := testLadders(6, 6)
	truth := synthetic{core, mem}
	bc, bm := 0, 0
	bestEDP := truth.energyAt(0, 0) * truth.timeAt(0, 0)
	for c := range core {
		for m := range mem {
			if edp := truth.energyAt(c, m) * truth.timeAt(c, m); edp < bestEDP {
				bc, bm, bestEDP = c, m, edp
			}
		}
	}
	out, err := SweetSpot(core, mem, func(c, m int) (Sample, error) {
		return truth.sample(c, m), nil
	}, Options{Objective: MinEDP})
	if err != nil {
		t.Fatal(err)
	}
	if out.Core != bc || out.Mem != bm {
		t.Errorf("EDP spot (%d,%d), brute force (%d,%d)", out.Core, out.Mem, bc, bm)
	}
}

func TestStatsHelpers(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median = %g, want 2", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even Median = %g, want 2.5", got)
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) is not NaN")
	}
	if got := Max([]float64{1, 5, 2}); got != 5 {
		t.Errorf("Max = %g, want 5", got)
	}
	if got := RelErr(11, 10); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr = %g, want 0.1", got)
	}
	if got := RelErr(0.5, 0); got != 0.5 {
		t.Errorf("RelErr with zero ref = %g, want absolute 0.5", got)
	}
	if got := Spearman([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman monotone = %g, want 1", got)
	}
	if got := Spearman([]float64{1, 2, 3, 4}, []float64{4, 3, 2, 1}); math.Abs(got+1) > 1e-12 {
		t.Errorf("Spearman reversed = %g, want -1", got)
	}
	if got := Spearman([]float64{1, 1, 2, 2}, []float64{1, 1, 2, 2}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman with ties = %g, want 1", got)
	}
	if !math.IsNaN(Spearman([]float64{1, 1}, []float64{1, 2})) {
		t.Error("Spearman on a constant series is not NaN")
	}
	if !math.IsNaN(Spearman([]float64{1}, []float64{1, 2})) {
		t.Error("Spearman on mismatched lengths is not NaN")
	}
}
