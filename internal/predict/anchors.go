package predict

import (
	"fmt"

	"greengpu/internal/units"
)

// Strategy selects how a search places its anchor points on the ladder.
type Strategy int

// The anchor-selection strategies.
const (
	// CornersCenter anchors the four ladder corners plus the center: the
	// cheapest spread that spans both frequency domains. The default.
	CornersCenter Strategy = iota
	// DOptimalLite greedily picks the anchor set maximizing the
	// determinant of the runtime regression's information matrix — a
	// D-optimal design restricted to grid points, which minimizes the
	// fitted coefficients' variance under crossover noise.
	DOptimalLite
	// Adaptive starts from CornersCenter and iteratively promotes the
	// model's predicted optimum to an anchor, refitting until the
	// prediction stops moving (or the refinement budget runs out) — extra
	// anchors exactly where the search is about to trust the model most.
	Adaptive
)

// String returns the strategy's -predict-strategy flag spelling.
func (s Strategy) String() string {
	switch s {
	case CornersCenter:
		return "corners"
	case DOptimalLite:
		return "doptimal"
	case Adaptive:
		return "adaptive"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy parses a -predict-strategy flag value.
func ParseStrategy(v string) (Strategy, error) {
	switch v {
	case "corners", "corners+center":
		return CornersCenter, nil
	case "doptimal", "d-optimal":
		return DOptimalLite, nil
	case "adaptive":
		return Adaptive, nil
	}
	return 0, fmt.Errorf("predict: unknown strategy %q (corners, doptimal, adaptive)", v)
}

// Anchor is one anchor position on the ladder grid.
type Anchor struct {
	Core, Mem int
}

// Anchors returns the strategy's initial anchor set for an nc×nm ladder, in
// deterministic order with duplicates removed (degenerate one-level ladders
// collapse corners onto each other). Adaptive's refinement anchors are
// chosen during the search; its initial set is CornersCenter's.
func Anchors(s Strategy, coreFreqs, memFreqs []units.Frequency) []Anchor {
	nc, nm := len(coreFreqs), len(memFreqs)
	if s == DOptimalLite {
		return dOptimalAnchors(coreFreqs, memFreqs, 5)
	}
	raw := []Anchor{
		{0, 0},
		{0, nm - 1},
		{nc - 1, 0},
		{nc - 1, nm - 1},
		{nc / 2, nm / 2},
	}
	return dedupAnchors(raw)
}

// dedupAnchors removes duplicates, keeping first-appearance order.
func dedupAnchors(in []Anchor) []Anchor {
	seen := map[Anchor]bool{}
	out := in[:0]
	for _, a := range in {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// dOptimalAnchors greedily builds a k-point design maximizing
// det(XᵀX + εI) for the runtime features [1, Fc/fc, Fm/fm]. Each round
// scans the whole grid in expand order (core outer, memory inner) and keeps
// the first point with the strictly largest determinant gain, so the design
// is deterministic.
func dOptimalAnchors(coreFreqs, memFreqs []units.Frequency, k int) []Anchor {
	nc, nm := len(coreFreqs), len(memFreqs)
	fcPeak := float64(coreFreqs[nc-1])
	fmPeak := float64(memFreqs[nm-1])
	feat := func(c, m int) [3]float64 {
		return [3]float64{1, fcPeak / float64(coreFreqs[c]), fmPeak / float64(memFreqs[m])}
	}
	// info = XᵀX of the chosen anchors, ridge-seeded so the determinant is
	// positive before the design spans all three features.
	const ridge = 1e-9
	info := [3][3]float64{{ridge, 0, 0}, {0, ridge, 0}, {0, 0, ridge}}
	var out []Anchor
	chosen := map[Anchor]bool{}
	for len(out) < k && len(out) < nc*nm {
		best := Anchor{-1, -1}
		bestDet := -1.0
		for c := 0; c < nc; c++ {
			for m := 0; m < nm; m++ {
				a := Anchor{c, m}
				if chosen[a] {
					continue
				}
				cand := info
				v := feat(c, m)
				for i := 0; i < 3; i++ {
					for j := 0; j < 3; j++ {
						cand[i][j] += v[i] * v[j]
					}
				}
				if d := det3(&cand); d > bestDet {
					best, bestDet = a, d
				}
			}
		}
		v := feat(best.Core, best.Mem)
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				info[i][j] += v[i] * v[j]
			}
		}
		chosen[best] = true
		out = append(out, best)
	}
	return out
}

// det3 returns the determinant of a 3×3 matrix.
func det3(m *[3][3]float64) float64 {
	return m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
		m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
		m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
}
