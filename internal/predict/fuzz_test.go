package predict

import (
	"math"
	"testing"

	"greengpu/internal/units"
)

// FuzzPredictFit throws arbitrary anchor sets at Fit over arbitrary (and
// degenerate) ladders: whatever the input, Fit must either return an error
// or a model whose predictions over the whole ladder are finite. The fuzz
// engine drives the anchor geometry and measurements from a handful of
// scalars, so collinear sets, repeated points, NaN/Inf measurements and
// single-level ladders all fall out of the corpus.
func FuzzPredictFit(f *testing.F) {
	f.Add(6, 6, uint64(0), 1.0, 40.0, 5)
	f.Add(1, 1, uint64(7), 2.5, 80.0, 4)
	f.Add(24, 24, uint64(42), 0.0, 0.0, 9)
	f.Add(3, 2, uint64(999), math.Inf(1), -3.0, 6)
	f.Fuzz(func(t *testing.T, nc, nm int, seed uint64, tScale, eScale float64, k int) {
		if nc < 1 || nm < 1 || nc > 64 || nm > 64 || k < 0 || k > 32 {
			t.Skip()
		}
		core := make([]units.Frequency, nc)
		mem := make([]units.Frequency, nm)
		for i := range core {
			core[i] = units.Frequency(100+i*37) * units.Megahertz
		}
		for j := range mem {
			mem[j] = units.Frequency(200+j*53) * units.Megahertz
		}
		// Deterministic xorshift so the anchor set is a pure function of
		// the fuzz input.
		rng := seed | 1
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		anchors := make([]Sample, 0, k)
		for i := 0; i < k; i++ {
			c := int(next() % uint64(nc))
			m := int(next() % uint64(nm))
			tv := tScale * float64(next()%1000) / 100
			ev := eScale * float64(next()%1000) / 10
			anchors = append(anchors, Sample{
				Core: c, Mem: m,
				Time:   units.Seconds(tv),
				Energy: units.Energy(ev),
			})
		}
		model, err := Fit(core, mem, anchors)
		if err != nil {
			return // degenerate or invalid input, correctly refused
		}
		for c := 0; c < nc; c++ {
			for m := 0; m < nm; m++ {
				tv := model.TimeSeconds(c, m)
				ev := model.EnergyJoules(c, m)
				if math.IsNaN(tv) || math.IsInf(tv, 0) {
					t.Fatalf("non-finite time prediction %g at (%d,%d)", tv, c, m)
				}
				if math.IsNaN(ev) || math.IsInf(ev, 0) {
					t.Fatalf("non-finite energy prediction %g at (%d,%d)", ev, c, m)
				}
				if edp := model.EDP(c, m); math.IsNaN(edp) || math.IsInf(edp, 0) {
					t.Fatalf("non-finite EDP prediction %g at (%d,%d)", edp, c, m)
				}
			}
		}
	})
}
