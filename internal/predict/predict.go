// Package predict fits an analytic cross-frequency model to a handful of
// simulated anchor points and evaluates every remaining (core, memory)
// frequency pair of a DVFS ladder in closed form — turning ladder² sweet-spot
// searches from O(ladder²) simulations into O(anchors) simulations plus
// O(ladder²) arithmetic.
//
// The model follows the crossover/pipeline estimators of "GPGPU Performance
// Estimation with Core and Memory Frequency Scaling" (arXiv 1701.05308) and
// "Modeling and Chasing the Energy-Efficiency Sweet Spots in Modern GPUs"
// (arXiv 2607.00819), specialized to this simulator's timing and power
// equations (see docs/MODEL.md):
//
//	T̂(fc, fm) = t0 + tc·(Fc/fc) + tm·(Fm/fm)
//	Ê(fc, fm) = (e0 + e1·(fc/Fc) + e2·(fm/Fm))·T̂(fc, fm) + e3
//
// where Fc, Fm are the peak frequencies. Runtime is linear in the inverse
// frequency ratios because each kernel phase's busy time scales as 1/f in
// its own domain; the only model error is phase dominance crossing over
// between anchors (the max+γ·min combine switching which domain bounds a
// phase). Energy is exactly affine in (fc·T, fm·T, T) under the simulator's
// power model — busy time × frequency ratio is frequency-invariant — so the
// energy residual inherits the runtime residual and nothing else.
//
// Both fits are ordinary least squares over the anchors, solved by normal
// equations with partially pivoted Gaussian elimination. Degenerate anchor
// sets (collinear, too few, non-finite) return ErrDegenerate; searches fall
// back to exhaustive evaluation rather than trusting an unfittable model.
package predict

import (
	"errors"
	"fmt"
	"math"
	"time"

	"greengpu/internal/telemetry"
	"greengpu/internal/units"
)

// Package metrics (see docs/OBSERVABILITY.md). No-ops unless telemetry is
// enabled.
var (
	metricFits = telemetry.NewCounter(telemetry.MetricPredictFits,
		"Analytic cross-frequency models fitted from anchor points.")
	metricPoints = telemetry.NewCounter(telemetry.MetricPredictPoints,
		"Ladder points evaluated in closed form by a fitted model.")
	metricFullEvals = telemetry.NewCounter(telemetry.MetricPredictFullEvals,
		"Full point evaluations requested by predictor searches (anchors, refinements, verification).")
	metricFallbacks = telemetry.NewCounter(telemetry.MetricPredictFallbacks,
		"Predictor searches that fell back to exhaustive evaluation on a degenerate fit.")
)

// ErrDegenerate reports an anchor set the model cannot be fitted from:
// fewer than MinAnchors distinct points, anchors that do not span both
// frequency domains, or non-finite measurements.
var ErrDegenerate = errors.New("predict: degenerate anchor set")

// MinAnchors is the smallest anchor set the fit accepts: the energy
// regression has three coefficients plus an offset, so four genuinely
// distinct anchors are the floor (the default strategies use five).
const MinAnchors = 4

// Sample is one fully evaluated ladder point: the measured runtime and
// total energy at core level Core and memory level Mem of the ladder the
// model is being fitted over.
type Sample struct {
	Core, Mem int
	Time      time.Duration
	Energy    units.Energy
}

// EDP returns the sample's energy-delay product in J·s, with exactly the
// arithmetic the sweet-spot studies use (Joules × seconds, in that order).
func (s Sample) EDP() float64 { return s.Energy.Joules() * s.Time.Seconds() }

// Model is a fitted cross-frequency predictor over one (core, memory)
// frequency ladder. The zero value is not usable; obtain models from Fit.
type Model struct {
	// xc[i] = Fc/fc(i), ym[j] = Fm/fm(j): the inverse frequency ratios the
	// runtime model is linear in. fcR/fmR are the direct ratios feeding
	// the energy model.
	xc, ym   []float64
	fcR, fmR []float64
	// t: runtime coefficients [t0, tc, tm].
	t [3]float64
	// e: energy coefficients [e0, e1, e2, e3] for
	// Ê = (e0 + e1·fcR + e2·fmR)·T̂ + e3.
	e [4]float64
}

// Levels returns the ladder sizes the model was fitted over.
func (m *Model) Levels() (core, mem int) { return len(m.xc), len(m.ym) }

// Coeffs flattens the fitted coefficients, runtime first — the stable
// serialization used to memoize fits (see internal/runcache).
func (m *Model) Coeffs() []float64 {
	return []float64{m.t[0], m.t[1], m.t[2], m.e[0], m.e[1], m.e[2], m.e[3]}
}

// FromCoeffs reconstructs a fitted model from flattened coefficients (see
// Model.Coeffs) and the ladders it was fitted over — the replay path for
// memoized fits. Non-finite or wrong-length coefficients are rejected.
func FromCoeffs(coreFreqs, memFreqs []units.Frequency, coeffs []float64) (*Model, error) {
	if len(coeffs) != 7 {
		return nil, fmt.Errorf("predict: want 7 coefficients, got %d", len(coeffs))
	}
	for _, c := range coeffs {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, ErrDegenerate
		}
	}
	m, err := newModel(coreFreqs, memFreqs)
	if err != nil {
		return nil, err
	}
	copy(m.t[:], coeffs[:3])
	copy(m.e[:], coeffs[3:])
	return m, nil
}

// newModel builds the ladder-ratio tables shared by Fit and FromCoeffs.
func newModel(coreFreqs, memFreqs []units.Frequency) (*Model, error) {
	if len(coreFreqs) == 0 || len(memFreqs) == 0 {
		return nil, fmt.Errorf("predict: empty frequency ladder")
	}
	m := &Model{
		xc:  make([]float64, len(coreFreqs)),
		ym:  make([]float64, len(memFreqs)),
		fcR: make([]float64, len(coreFreqs)),
		fmR: make([]float64, len(memFreqs)),
	}
	fcPeak := float64(coreFreqs[len(coreFreqs)-1])
	fmPeak := float64(memFreqs[len(memFreqs)-1])
	if fcPeak <= 0 || fmPeak <= 0 {
		return nil, fmt.Errorf("predict: non-positive peak frequency")
	}
	for i, f := range coreFreqs {
		if f <= 0 {
			return nil, fmt.Errorf("predict: non-positive core frequency at level %d", i)
		}
		m.fcR[i] = float64(f) / fcPeak
		m.xc[i] = fcPeak / float64(f)
	}
	for j, f := range memFreqs {
		if f <= 0 {
			return nil, fmt.Errorf("predict: non-positive memory frequency at level %d", j)
		}
		m.fmR[j] = float64(f) / fmPeak
		m.ym[j] = fmPeak / float64(f)
	}
	return m, nil
}

// Fit performs both least-squares regressions over the anchors and returns
// the fitted model. The frequency slices are the full ladders (ascending,
// peak last, as device configurations order them); anchor Core/Mem values
// index them. Fit returns ErrDegenerate when the anchors cannot determine
// the coefficients, and an ordinary error on out-of-range indices.
func Fit(coreFreqs, memFreqs []units.Frequency, anchors []Sample) (*Model, error) {
	m, err := newModel(coreFreqs, memFreqs)
	if err != nil {
		return nil, err
	}

	distinct := map[[2]int]bool{}
	for _, a := range anchors {
		if a.Core < 0 || a.Core >= len(coreFreqs) || a.Mem < 0 || a.Mem >= len(memFreqs) {
			return nil, fmt.Errorf("predict: anchor (%d,%d) outside %dx%d ladder",
				a.Core, a.Mem, len(coreFreqs), len(memFreqs))
		}
		t, e := a.Time.Seconds(), a.Energy.Joules()
		if math.IsNaN(t) || math.IsInf(t, 0) || math.IsNaN(e) || math.IsInf(e, 0) {
			return nil, ErrDegenerate
		}
		distinct[[2]int{a.Core, a.Mem}] = true
	}
	if len(distinct) < MinAnchors {
		return nil, ErrDegenerate
	}

	// Runtime fit: T = t0 + tc·x + tm·y.
	rows := make([][]float64, len(anchors))
	ys := make([]float64, len(anchors))
	for i, a := range anchors {
		rows[i] = []float64{1, m.xc[a.Core], m.ym[a.Mem]}
		ys[i] = a.Time.Seconds()
	}
	tc, err := leastSquares(rows, ys)
	if err != nil {
		return nil, err
	}
	copy(m.t[:], tc)

	// Energy fit: E = e0·T + e1·fcR·T + e2·fmR·T + e3, regressed against
	// the measured anchor times (the best estimate of T available).
	for i, a := range anchors {
		t := a.Time.Seconds()
		rows[i] = []float64{t, m.fcR[a.Core] * t, m.fmR[a.Mem] * t, 1}
		ys[i] = a.Energy.Joules()
	}
	ec, err := leastSquares(rows, ys)
	if err != nil {
		return nil, err
	}
	copy(m.e[:], ec)

	for _, c := range m.Coeffs() {
		// The magnitude bound rejects near-singular systems whose huge
		// (but finite) coefficients would overflow to Inf when combined
		// at prediction time.
		if math.IsNaN(c) || math.Abs(c) > 1e150 {
			return nil, ErrDegenerate
		}
	}
	metricFits.Inc()
	return m, nil
}

// TimeSeconds predicts the runtime at ladder point (core, mem) in seconds.
func (m *Model) TimeSeconds(core, mem int) float64 {
	metricPoints.Inc()
	return m.t[0] + m.t[1]*m.xc[core] + m.t[2]*m.ym[mem]
}

// Time predicts the runtime at ladder point (core, mem).
func (m *Model) Time(core, mem int) time.Duration {
	return units.Seconds(m.TimeSeconds(core, mem))
}

// EnergyJoules predicts total energy at ladder point (core, mem) in joules.
func (m *Model) EnergyJoules(core, mem int) float64 {
	t := m.TimeSeconds(core, mem)
	return (m.e[0]+m.e[1]*m.fcR[core]+m.e[2]*m.fmR[mem])*t + m.e[3]
}

// Energy predicts total energy at ladder point (core, mem).
func (m *Model) Energy(core, mem int) units.Energy {
	return units.Energy(m.EnergyJoules(core, mem))
}

// EDP predicts the energy-delay product at ladder point (core, mem) in J·s.
func (m *Model) EDP(core, mem int) float64 {
	return m.EnergyJoules(core, mem) * m.TimeSeconds(core, mem)
}

// leastSquares solves min ‖X·β − y‖₂ by normal equations. X is rows of
// identical length; the returned coefficient vector has that length. A
// rank-deficient system returns ErrDegenerate.
func leastSquares(x [][]float64, y []float64) ([]float64, error) {
	n := len(x[0])
	// A = XᵀX (symmetric n×n), b = Xᵀy.
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for r, row := range x {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a[i][j] += row[i] * row[j]
			}
			b[i] += row[i] * y[r]
		}
	}
	return solve(a, b)
}

// solve performs Gaussian elimination with partial pivoting on the (small,
// dense) system a·β = b, mutating both arguments.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		p := a[col][col]
		if math.Abs(p) < 1e-12 || math.IsNaN(p) || math.IsInf(p, 0) {
			return nil, ErrDegenerate
		}
		for r := col + 1; r < n; r++ {
			f := a[r][col] / p
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	out := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i][j] * out[j]
		}
		out[i] = s / a[i][i]
	}
	return out, nil
}
