package predict

import (
	"math"
	"sort"
)

// RelErr returns the relative error |pred − ref| / |ref|, or the absolute
// error when ref is zero (a zero-reference point would otherwise make every
// aggregate infinite).
func RelErr(pred, ref float64) float64 {
	d := math.Abs(pred - ref)
	if ref == 0 {
		return d
	}
	return d / math.Abs(ref)
}

// Median returns the median of xs (mean of the middle pair for even
// lengths), NaN for an empty slice. The input is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Max returns the maximum of xs, NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Spearman returns the Spearman rank-correlation coefficient between a and
// b (Pearson correlation of their average-tie ranks): 1 means the model
// orders the ladder exactly like the measurements, which is all a sweet-spot
// search needs. Slices must have equal length; degenerate inputs (fewer
// than two points, or a constant series) return NaN.
func Spearman(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return math.NaN()
	}
	ra, rb := ranks(a), ranks(b)
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= float64(len(ra))
	mb /= float64(len(rb))
	var num, da, db float64
	for i := range ra {
		x, y := ra[i]-ma, rb[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return math.NaN()
	}
	return num / math.Sqrt(da*db)
}

// ranks assigns 1-based ranks with ties sharing their average rank.
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return xs[idx[i]] < xs[idx[j]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}
