package predict

import (
	"errors"
	"time"

	"greengpu/internal/units"
)

// Objective selects what the sweet-spot search minimizes.
type Objective int

// The search objectives.
const (
	// MinEnergy minimizes total energy — the paper's sweet-spot notion.
	MinEnergy Objective = iota
	// MinEDP minimizes the energy-delay product.
	MinEDP
)

// String returns the objective's flag spelling.
func (o Objective) String() string {
	if o == MinEDP {
		return "edp"
	}
	return "energy"
}

// DefaultTopM is the number of model-ranked candidates a search verifies by
// full evaluation when Options.TopM is zero. Together with the five
// CornersCenter anchors it budgets nine full evaluations per search — a 64×
// reduction on a 24×24 ladder.
const DefaultTopM = 4

// DefaultMaxRefine bounds Adaptive's refinement rounds when
// Options.MaxRefine is zero.
const DefaultMaxRefine = 3

// Options configures a sweet-spot search. The zero value selects the
// defaults: CornersCenter anchors, MinEnergy, DefaultTopM verification.
type Options struct {
	// Strategy places the anchors.
	Strategy Strategy
	// Objective is what the search minimizes.
	Objective Objective
	// TopM is how many of the model's best-ranked unevaluated candidates
	// are verified by full evaluation before the spot is chosen; 0 selects
	// DefaultTopM. A negative TopM disables verification entirely: the
	// returned spot is the model's prediction, marked Verified=false.
	TopM int
	// MaxRefine bounds Adaptive's refinement rounds; 0 selects
	// DefaultMaxRefine. Ignored by the other strategies.
	MaxRefine int
}

// topM resolves the TopM default.
func (o Options) topM() int {
	if o.TopM == 0 {
		return DefaultTopM
	}
	return o.TopM
}

// maxRefine resolves the MaxRefine default.
func (o Options) maxRefine() int {
	if o.MaxRefine == 0 {
		return DefaultMaxRefine
	}
	return o.MaxRefine
}

// Outcome is a sweet-spot search's result.
type Outcome struct {
	// Core and Mem are the chosen ladder point.
	Core, Mem int
	// Verified reports whether the chosen point's Time/Energy come from a
	// real evaluation (true for every search with TopM >= 0, and for
	// degenerate-fit fallbacks) or from the model alone.
	Verified bool
	// Fallback reports a degenerate fit: the search evaluated the whole
	// ladder exhaustively instead of trusting a model.
	Fallback bool
	// FullEvals counts eval invocations: anchors, adaptive refinements and
	// top-M verification (or the whole ladder on fallback). Deterministic
	// for a given ladder and options — caching layers above may satisfy
	// the invocations without simulating.
	FullEvals int
	// Points counts ladder points, the denominator of the evaluation-
	// reduction ratio.
	Points int
	// Time and Energy are the chosen point's runtime and total energy —
	// measured when Verified, model-predicted otherwise.
	Time   time.Duration
	Energy units.Energy
	// Coeffs are the fitted model's flattened coefficients (see
	// Model.Coeffs), nil on fallback. Stored so memoized outcomes can
	// reconstruct the model without re-evaluating anchors.
	Coeffs []float64
}

// EvalFunc fully evaluates one ladder point — in this repository, a closed-
// form fast-path simulation through internal/sweep, memoized by
// internal/runcache. Errors abort the search.
type EvalFunc func(core, mem int) (Sample, error)

// SweetSpot finds the ladder point minimizing the objective using O(anchors)
// full evaluations: fit a model from the strategy's anchors, rank every
// point in closed form, verify the top-M candidates by full evaluation, and
// return the best evaluated point. Ties and orderings follow the exhaustive
// studies' convention — grid points are visited core-outer/memory-inner and
// strict less-than keeps the earliest minimum — so when the true optimum is
// inside the verified set the outcome is identical to brute force, point
// and measurement alike.
//
// A degenerate anchor set (ErrDegenerate from Fit) falls back to exhaustive
// evaluation; any other evaluation or fit error aborts.
func SweetSpot(coreFreqs, memFreqs []units.Frequency, eval EvalFunc, opts Options) (Outcome, error) {
	nc, nm := len(coreFreqs), len(memFreqs)
	out := Outcome{Points: nc * nm}
	if nc == 0 || nm == 0 {
		return out, errors.New("predict: empty frequency ladder")
	}
	evaluated := map[Anchor]Sample{}
	evalOnce := func(a Anchor) (Sample, error) {
		if s, ok := evaluated[a]; ok {
			return s, nil
		}
		out.FullEvals++
		metricFullEvals.Inc()
		s, err := eval(a.Core, a.Mem)
		if err != nil {
			return Sample{}, err
		}
		evaluated[a] = s
		return s, nil
	}

	anchors := Anchors(opts.Strategy, coreFreqs, memFreqs)
	samples := make([]Sample, 0, len(anchors))
	for _, a := range anchors {
		s, err := evalOnce(a)
		if err != nil {
			return out, err
		}
		samples = append(samples, s)
	}

	// bruteForce is the degenerate-fit fallback: evaluate every grid point
	// (evalOnce skips the anchors already measured) and choose the best.
	bruteForce := func() (Outcome, error) {
		metricFallbacks.Inc()
		for c := 0; c < nc; c++ {
			for m := 0; m < nm; m++ {
				if _, err := evalOnce(Anchor{c, m}); err != nil {
					return out, err
				}
			}
		}
		out.Fallback = true
		out.Coeffs = nil
		chooseEvaluated(&out, nc, nm, evaluated, opts.Objective)
		return out, nil
	}

	model, err := Fit(coreFreqs, memFreqs, samples)
	if errors.Is(err, ErrDegenerate) {
		return bruteForce()
	}
	if err != nil {
		return out, err
	}

	if opts.Strategy == Adaptive {
		for round := 0; round < opts.maxRefine(); round++ {
			best := predictedArgmin(model, nc, nm, opts.Objective)
			if _, done := evaluated[best]; done {
				break
			}
			s, err := evalOnce(best)
			if err != nil {
				return out, err
			}
			samples = append(samples, s)
			refit, err := Fit(coreFreqs, memFreqs, samples)
			if errors.Is(err, ErrDegenerate) {
				return bruteForce()
			}
			if err != nil {
				return out, err
			}
			model = refit
		}
	}
	out.Coeffs = model.Coeffs()

	if opts.TopM < 0 {
		// Unverified mode: trust the model outright.
		best := predictedArgmin(model, nc, nm, opts.Objective)
		out.Core, out.Mem = best.Core, best.Mem
		out.Time = model.Time(best.Core, best.Mem)
		out.Energy = model.Energy(best.Core, best.Mem)
		return out, nil
	}

	// Verify the model's top-M unevaluated candidates, then choose the
	// best evaluated point in grid order.
	for _, a := range topCandidates(model, nc, nm, opts.Objective, evaluated, opts.topM()) {
		if _, err := evalOnce(a); err != nil {
			return out, err
		}
	}
	chooseEvaluated(&out, nc, nm, evaluated, opts.Objective)
	return out, nil
}

// predictedArgmin returns the grid point with the smallest predicted
// objective, earliest in grid order on exact ties.
func predictedArgmin(m *Model, nc, nm int, obj Objective) Anchor {
	best := Anchor{0, 0}
	bestV := objective(m, 0, 0, obj)
	for c := 0; c < nc; c++ {
		for m2 := 0; m2 < nm; m2++ {
			if c == 0 && m2 == 0 {
				continue
			}
			if v := objective(m, c, m2, obj); v < bestV {
				best, bestV = Anchor{c, m2}, v
			}
		}
	}
	return best
}

// objective evaluates the model's objective at one point.
func objective(m *Model, c, mm int, obj Objective) float64 {
	if obj == MinEDP {
		return m.EDP(c, mm)
	}
	return m.EnergyJoules(c, mm)
}

// topCandidates returns the k unevaluated grid points with the smallest
// predicted objective, by repeated grid-order scans (k is tiny; clarity
// over asymptotics). Ties keep the earliest point.
func topCandidates(m *Model, nc, nm int, obj Objective, evaluated map[Anchor]Sample, k int) []Anchor {
	picked := map[Anchor]bool{}
	var out []Anchor
	for len(out) < k {
		best := Anchor{-1, -1}
		bestV := 0.0
		for c := 0; c < nc; c++ {
			for m2 := 0; m2 < nm; m2++ {
				a := Anchor{c, m2}
				if picked[a] {
					continue
				}
				if _, done := evaluated[a]; done {
					continue
				}
				if v := objective(m, c, m2, obj); best.Core < 0 || v < bestV {
					best, bestV = a, v
				}
			}
		}
		if best.Core < 0 {
			break // everything is already evaluated
		}
		picked[best] = true
		out = append(out, best)
	}
	return out
}

// chooseEvaluated fills the outcome with the best evaluated point, visiting
// the grid core-outer/memory-inner with strict less-than — the exhaustive
// studies' exact tie-break, so a verified set containing the true optimum
// reproduces brute force byte for byte.
func chooseEvaluated(out *Outcome, nc, nm int, evaluated map[Anchor]Sample, obj Objective) {
	first := true
	var bestS Sample
	for c := 0; c < nc; c++ {
		for m2 := 0; m2 < nm; m2++ {
			s, ok := evaluated[Anchor{c, m2}]
			if !ok {
				continue
			}
			if first || less(s, bestS, obj) {
				first = false
				bestS = s
				out.Core, out.Mem = c, m2
			}
		}
	}
	out.Verified = true
	out.Time = bestS.Time
	out.Energy = bestS.Energy
}

// less compares two samples under the objective, exactly as the exhaustive
// studies do (units.Energy comparison for energy, float J·s for EDP).
func less(a, b Sample, obj Objective) bool {
	if obj == MinEDP {
		return a.EDP() < b.EDP()
	}
	return a.Energy < b.Energy
}
