package power

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"greengpu/internal/sim"
	"greengpu/internal/units"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig("m1")
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	if good.Interval != time.Second || good.Resolution != 0.1 {
		t.Errorf("DefaultConfig = %+v", good)
	}
	bad := good
	bad.Interval = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero interval accepted")
	}
	bad = good
	bad.Resolution = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative resolution accepted")
	}
}

func TestNilSourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMeter(sim.New(), DefaultConfig("x"), nil)
}

func TestSamplingCadence(t *testing.T) {
	e := sim.New()
	m := NewMeter(e, Config{Name: "m", Interval: time.Second}, func() units.Power { return 100 })
	m.Start()
	e.RunUntil(5 * time.Second)
	s := m.Samples()
	if len(s) != 6 { // t=0,1,2,3,4,5
		t.Fatalf("got %d samples, want 6", len(s))
	}
	for i, smp := range s {
		if smp.At != time.Duration(i)*time.Second {
			t.Errorf("sample %d at %v", i, smp.At)
		}
		if smp.Power != 100 {
			t.Errorf("sample %d power = %v", i, smp.Power)
		}
	}
}

func TestStartStopIdempotent(t *testing.T) {
	e := sim.New()
	m := NewMeter(e, Config{Name: "m", Interval: time.Second}, func() units.Power { return 1 })
	if m.Running() {
		t.Error("meter born running")
	}
	m.Start()
	m.Start() // no-op
	if !m.Running() {
		t.Error("meter not running after Start")
	}
	e.RunUntil(2 * time.Second)
	m.Stop()
	m.Stop() // no-op
	if m.Running() {
		t.Error("meter running after Stop")
	}
	n := len(m.Samples())
	e.RunUntil(10 * time.Second)
	if len(m.Samples()) != n {
		t.Error("meter sampled after Stop")
	}
}

func TestQuantization(t *testing.T) {
	e := sim.New()
	m := NewMeter(e, Config{Name: "m", Interval: time.Second, Resolution: 0.1},
		func() units.Power { return 112.5678 })
	m.Start()
	e.RunUntil(time.Second)
	for _, s := range m.Samples() {
		if math.Abs(s.Power.Watts()-112.6) > 1e-9 {
			t.Errorf("quantized sample = %v, want 112.6", s.Power)
		}
	}
}

func TestEnergyTrapezoid(t *testing.T) {
	e := sim.New()
	level := units.Power(100)
	m := NewMeter(e, Config{Name: "m", Interval: time.Second}, func() units.Power { return level })
	m.Start()
	e.RunUntil(2 * time.Second)
	level = 200
	e.RunUntil(4 * time.Second)
	// Samples: 100,100,100,200,200 at t=0..4.
	// Trapezoid: 100+100+150+200 = 550 J.
	if got := m.Energy().Joules(); math.Abs(got-550) > 1e-9 {
		t.Errorf("Energy = %v J, want 550", got)
	}
}

func TestEnergyFewSamples(t *testing.T) {
	e := sim.New()
	m := NewMeter(e, Config{Name: "m", Interval: time.Second}, func() units.Power { return 100 })
	if m.Energy() != 0 {
		t.Error("Energy with no samples should be 0")
	}
	m.Start() // one sample at t=0
	if m.Energy() != 0 {
		t.Error("Energy with one sample should be 0")
	}
}

func TestAverageAndPeak(t *testing.T) {
	e := sim.New()
	vals := []units.Power{100, 200, 300}
	i := 0
	m := NewMeter(e, Config{Name: "m", Interval: time.Second}, func() units.Power {
		v := vals[i%len(vals)]
		i++
		return v
	})
	m.Start()
	e.RunUntil(2 * time.Second)
	if got := m.AveragePower(); math.Abs(got.Watts()-200) > 1e-9 {
		t.Errorf("AveragePower = %v, want 200", got)
	}
	if got := m.PeakPower(); got != 300 {
		t.Errorf("PeakPower = %v, want 300", got)
	}
}

func TestEmptyStats(t *testing.T) {
	m := NewMeter(sim.New(), Config{Name: "m", Interval: time.Second}, func() units.Power { return 1 })
	if m.AveragePower() != 0 || m.PeakPower() != 0 {
		t.Error("stats on empty trace should be 0")
	}
}

func TestReset(t *testing.T) {
	e := sim.New()
	m := NewMeter(e, Config{Name: "m", Interval: time.Second}, func() units.Power { return 1 })
	m.Start()
	e.RunUntil(3 * time.Second)
	m.Reset()
	if len(m.Samples()) != 0 {
		t.Error("Reset kept samples")
	}
}

func TestIntegrateTrapezoidDisorderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	IntegrateTrapezoid([]Sample{{At: 2 * time.Second}, {At: time.Second}})
}

func TestSum(t *testing.T) {
	src := Sum(
		func() units.Power { return 10 },
		func() units.Power { return 32 },
	)
	if got := src(); got != 42 {
		t.Errorf("Sum = %v, want 42", got)
	}
	if got := Sum()(); got != 0 {
		t.Errorf("empty Sum = %v, want 0", got)
	}
}

// Property: for a constant source, sampled energy matches exact P·t.
func TestConstantSourceEnergyProperty(t *testing.T) {
	f := func(p uint8, secs uint8) bool {
		if secs < 2 {
			return true
		}
		e := sim.New()
		pw := units.Power(p)
		m := NewMeter(e, Config{Name: "m", Interval: time.Second}, func() units.Power { return pw })
		m.Start()
		d := time.Duration(secs) * time.Second
		e.RunUntil(d)
		want := pw.Over(d)
		return math.Abs(float64(m.Energy()-want)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: trapezoid integration is non-negative for non-negative traces
// and additive across a split.
func TestTrapezoidAdditivityProperty(t *testing.T) {
	f := func(powers []uint8) bool {
		if len(powers) < 3 {
			return true
		}
		samples := make([]Sample, len(powers))
		for i, p := range powers {
			samples[i] = Sample{At: time.Duration(i) * time.Second, Power: units.Power(p)}
		}
		whole := IntegrateTrapezoid(samples)
		k := len(samples) / 2
		// Split traces share the boundary sample.
		left := IntegrateTrapezoid(samples[:k+1])
		right := IntegrateTrapezoid(samples[k:])
		return whole >= 0 && math.Abs(float64(whole-(left+right))) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
