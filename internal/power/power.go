// Package power provides power metering for the simulated testbed,
// modelled on the two Wattsup Pro wall meters of the GreenGPU setup
// (paper §VI, Fig. 4): meter 1 on the CPU side of the box (motherboard,
// disk, main memory and processor), meter 2 on the dedicated ATX supply
// feeding the GPU card.
//
// A Meter periodically samples an instantaneous-power source, quantizes the
// reading to the instrument's resolution, and accumulates a trace. Energy
// can be estimated from the sample trace (as the real instrument reports
// it), which the experiments compare against the simulator's exact analytic
// energy integrals to validate sampling error.
package power

import (
	"fmt"
	"math"
	"time"

	"greengpu/internal/sim"
	"greengpu/internal/units"
)

// Sample is one meter reading.
type Sample struct {
	At    time.Duration
	Power units.Power
}

// Config describes a meter.
type Config struct {
	Name string
	// Interval is the sampling period. The Wattsup Pro logs at 1 Hz.
	Interval time.Duration
	// Resolution quantizes readings; the Wattsup Pro reports 0.1 W
	// granularity. Zero disables quantization.
	Resolution units.Power
}

// DefaultConfig returns Wattsup Pro-like settings.
func DefaultConfig(name string) Config {
	return Config{Name: name, Interval: time.Second, Resolution: 0.1}
}

// Validate reports the first problem with the configuration, if any.
func (c *Config) Validate() error {
	if c.Interval <= 0 {
		return fmt.Errorf("power: %q: Interval must be positive", c.Name)
	}
	if c.Resolution < 0 {
		return fmt.Errorf("power: %q: Resolution must be non-negative", c.Name)
	}
	return nil
}

// Meter samples a power source on a fixed interval.
type Meter struct {
	cfg     Config
	engine  *sim.Engine
	source  func() units.Power
	samples []Sample
	ticker  *sim.Ticker
}

// NewMeter creates a meter reading from source. The meter is created
// stopped; call Start to begin sampling. It panics on an invalid
// configuration or nil source.
func NewMeter(e *sim.Engine, cfg Config, source func() units.Power) *Meter {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if source == nil {
		panic(fmt.Sprintf("power: %q: nil source", cfg.Name))
	}
	return &Meter{cfg: cfg, engine: e, source: source}
}

// Name returns the meter's name.
func (m *Meter) Name() string { return m.cfg.Name }

// Start begins sampling. The first sample is taken immediately, then every
// interval. Starting a running meter is a no-op.
func (m *Meter) Start() {
	if m.ticker != nil {
		return
	}
	m.sample()
	m.ticker = m.engine.Every(m.cfg.Interval, "meter:"+m.cfg.Name, m.sample)
}

// Stop halts sampling. The trace is retained.
func (m *Meter) Stop() {
	if m.ticker == nil {
		return
	}
	m.ticker.Stop()
	m.ticker = nil
}

// Running reports whether the meter is sampling.
func (m *Meter) Running() bool { return m.ticker != nil }

func (m *Meter) sample() {
	p := m.source()
	if m.cfg.Resolution > 0 {
		p = units.Power(math.Round(float64(p/m.cfg.Resolution))) * m.cfg.Resolution
	}
	m.samples = append(m.samples, Sample{At: m.engine.Now(), Power: p})
}

// Samples returns the recorded trace.
func (m *Meter) Samples() []Sample { return m.samples }

// Reset discards the recorded trace.
func (m *Meter) Reset() { m.samples = nil }

// Energy estimates the energy observed by the meter using trapezoidal
// integration over the sample trace — the same estimate the physical
// instrument's logger produces. It returns 0 with fewer than two samples.
func (m *Meter) Energy() units.Energy {
	return IntegrateTrapezoid(m.samples)
}

// AveragePower returns the mean of the recorded samples, or 0 when empty.
func (m *Meter) AveragePower() units.Power {
	if len(m.samples) == 0 {
		return 0
	}
	var sum units.Power
	for _, s := range m.samples {
		sum += s.Power
	}
	return sum / units.Power(len(m.samples))
}

// PeakPower returns the maximum recorded sample, or 0 when empty.
func (m *Meter) PeakPower() units.Power {
	var peak units.Power
	for _, s := range m.samples {
		if s.Power > peak {
			peak = s.Power
		}
	}
	return peak
}

// IntegrateTrapezoid integrates a power trace into energy by the
// trapezoidal rule. Samples must be in non-decreasing time order; it panics
// otherwise, because a disordered trace indicates a harness bug.
func IntegrateTrapezoid(samples []Sample) units.Energy {
	var e units.Energy
	for i := 1; i < len(samples); i++ {
		dt := samples[i].At - samples[i-1].At
		if dt < 0 {
			panic("power: samples out of order")
		}
		avg := (samples[i].Power + samples[i-1].Power) / 2
		e += avg.Over(dt)
	}
	return e
}

// Sum returns a source that adds several sources — e.g. whole-system power
// as meter1 + meter2.
func Sum(sources ...func() units.Power) func() units.Power {
	return func() units.Power {
		var total units.Power
		for _, s := range sources {
			total += s()
		}
		return total
	}
}
