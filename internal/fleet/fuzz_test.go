package fleet

import (
	"reflect"
	"testing"
)

// FuzzFleetSpec drives ParseSpec with arbitrary input: parsing must never
// panic, accepted specs must validate, and parsing must be deterministic.
// Fleet evaluation itself is out of scope — the node cap alone makes a
// Run too expensive for a fuzz body — so the target pins the parse and
// validation surface the -fleet flag exposes.
func FuzzFleetSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"nodes=10000 seed=2026 classes=all workloads=all modes=baseline faults=0,1,2",
		"nodes=1000 classes=8800gtx,gtx280 modes=baseline,scaling,division,holistic deadline=1.1",
		"workloads=kmeans,nbody faults=0 iters=4",
		"nodes=99999999999",
		"faults=0,9 deadline=-1 bogus==x",
		"modes=warp classes=riva128",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted a spec that fails Validate: %v", s, verr)
		}
		again, err := ParseSpec(s)
		if err != nil || !reflect.DeepEqual(spec, again) {
			t.Fatalf("ParseSpec(%q) is not deterministic", s)
		}
		if spec.Nodes < 1 || spec.Nodes > MaxNodes {
			t.Fatalf("ParseSpec(%q) let Nodes=%d through the cap", s, spec.Nodes)
		}
	})
}
