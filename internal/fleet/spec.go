// Package fleet evaluates datacenter-scale fleets of heterogeneous
// GPU-CPU nodes in O(distinct configurations) simulations plus O(nodes)
// aggregation, instead of O(nodes) simulations.
//
// Real fleets are highly redundant: thousands of nodes share a handful of
// distinct (device class, workload, DVFS policy, fault intensity)
// configurations. The engine exploits that redundancy end to end:
//
//  1. Stateless per-node generation. Each node's configuration is drawn
//     with parallel.TaskSeed/parallel.Pick from (spec seed, node index)
//     alone, so the fleet is byte-identical at any worker count and nodes
//     never need to be materialized as structs.
//
//  2. Fingerprint dedup. Every node's configuration is canonicalized
//     through the runcache fingerprint (the same SHA-256 keys the
//     per-point studies and the sweep engine use), and nodes are grouped
//     by fingerprint. Each distinct group simulates exactly once, through
//     sweep.Batch — the closed-form fast path where the configuration is
//     expressible, a full core.Run otherwise — sharded across
//     internal/parallel workers and memoized in the shared run cache, so
//     warm fleet re-runs are near-free.
//
//  3. Zero-allocation fan-out. Group results are transposed into
//     structure-of-arrays scalar accumulators and attributed back to nodes
//     in one allocation-free O(nodes) loop, producing streaming fleet
//     aggregates: energy, EDP, deadline-miss counts, and per-class fault
//     totals.
//
// Engine.RunNaive is the deliberately dedup-free per-node loop the
// BENCH_fleet.json throughput contract measures against; its aggregates
// are byte-identical to Engine.Run's (pinned by tests).
package fleet

import (
	"fmt"
	"strconv"
	"strings"

	"greengpu/internal/bus"
	"greengpu/internal/core"
	"greengpu/internal/cpusim"
	"greengpu/internal/faultinject"
	"greengpu/internal/gpusim"
	"greengpu/internal/parallel"
	"greengpu/internal/sweep"
	"greengpu/internal/testbed"
	"greengpu/internal/units"
)

// DefaultSeed seeds fleet generation when a spec does not name one.
const DefaultSeed = 2026

// MaxNodes bounds a fleet spec. Generation and aggregation are O(nodes)
// with small constants, but an unbounded count would let a typo (or a fuzz
// input) allocate gigabytes of per-node attribution before the first
// simulation runs.
const MaxNodes = 1 << 20

// MaxFaultLevel bounds a spec's fault-intensity levels. Level 0 injects
// nothing, level 2 is the moderate all-classes default plan, and rates
// scale linearly in between and beyond (clamped to probability 1), so
// levels past a handful stop meaning anything.
const MaxFaultLevel = 8

// Class is a named device pairing a fleet draws node hardware from.
type Class struct {
	Name string
	GPU  gpusim.Config
	CPU  cpusim.Config
	Bus  bus.Config
}

// classNames lists the registered device classes in registry order —
// kept separate from Classes so Spec.Validate can check names without
// materializing device configurations.
var classNames = []string{"8800gtx", "gtx280"}

// Classes returns the registered device classes: the paper's primary
// testbed (GeForce 8800 GTX + Phenom II X2) and the portability study's
// GTX 280 pairing. Registry order is the spec default.
func Classes() []Class {
	return []Class{
		{Name: "8800gtx", GPU: testbed.GeForce8800GTX(), CPU: testbed.PhenomIIX2(), Bus: testbed.PCIe()},
		{Name: "gtx280", GPU: testbed.GTX280(), CPU: testbed.PhenomIIX2(), Bus: testbed.PCIe()},
	}
}

// ClassByName resolves a registered device class.
func ClassByName(name string) (Class, error) {
	for _, c := range Classes() {
		if c.Name == name {
			return c, nil
		}
	}
	return Class{}, fmt.Errorf("fleet: unknown device class %q (have %s)", name, strings.Join(classNames, ", "))
}

// Spec describes a fleet: how many nodes, and the per-node configuration
// axes each node draws from statelessly (class, workload, mode, fault
// intensity), seeded by Seed.
type Spec struct {
	// Nodes is the fleet size, in [1, MaxNodes].
	Nodes int

	// Seed is the base seed for every per-node draw and every
	// fault-intensity plan.
	Seed uint64

	// Classes selects device classes by name; empty selects every
	// registered class.
	Classes []string

	// Workloads selects calibrated profiles by name; empty or ["all"]
	// selects every Rodinia profile.
	Workloads []string

	// Modes are the framework modes nodes draw from; empty means baseline
	// only.
	Modes []core.Mode

	// FaultLevels are the fault-intensity levels nodes draw from, each in
	// [0, MaxFaultLevel]; empty means fault-free (level 0 only). See
	// PlanForLevel.
	FaultLevels []int

	// Iterations overrides each profile's iteration count when > 0.
	Iterations int

	// DeadlineFactor, when > 0, enables deadline accounting: a node
	// misses its deadline when its wall time exceeds DeadlineFactor times
	// the fault-free baseline-mode wall time of its (class, workload)
	// pair.
	DeadlineFactor float64
}

// Validate reports the first statically checkable problem with the spec.
// Workload names are resolved against the calibrated profiles by
// Engine.Run.
func (s *Spec) Validate() error {
	switch {
	case s.Nodes < 1:
		return fmt.Errorf("fleet: Nodes must be positive")
	case s.Nodes > MaxNodes:
		return fmt.Errorf("fleet: Nodes %d exceeds the %d cap", s.Nodes, MaxNodes)
	case s.Iterations < 0:
		return fmt.Errorf("fleet: Iterations must be non-negative")
	case s.DeadlineFactor < 0 || s.DeadlineFactor != s.DeadlineFactor:
		return fmt.Errorf("fleet: DeadlineFactor must be non-negative")
	}
	for _, name := range s.Classes {
		found := false
		for _, known := range classNames {
			if name == known {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("fleet: unknown device class %q (have %s)", name, strings.Join(classNames, ", "))
		}
	}
	for _, w := range s.Workloads {
		if strings.TrimSpace(w) == "" {
			return fmt.Errorf("fleet: empty workload name")
		}
	}
	for _, m := range s.Modes {
		if m < core.Baseline || m > core.Holistic {
			return fmt.Errorf("fleet: unknown mode %d", int(m))
		}
	}
	for _, lv := range s.FaultLevels {
		if lv < 0 || lv > MaxFaultLevel {
			return fmt.Errorf("fleet: fault level %d out of range [0,%d]", lv, MaxFaultLevel)
		}
	}
	return nil
}

// classes resolves the spec's class axis against the registry.
func (s *Spec) classes() []Class {
	if len(s.Classes) == 0 {
		return Classes()
	}
	out := make([]Class, 0, len(s.Classes))
	for _, name := range s.Classes {
		c, err := ClassByName(name)
		if err != nil {
			// Validate checked the names; an error here is a programming
			// bug, not bad input.
			panic(err)
		}
		out = append(out, c)
	}
	return out
}

// modes resolves the spec's mode axis.
func (s *Spec) modes() []core.Mode {
	if len(s.Modes) == 0 {
		return []core.Mode{core.Baseline}
	}
	return s.Modes
}

// levels resolves the spec's fault-intensity axis.
func (s *Spec) levels() []int {
	if len(s.FaultLevels) == 0 {
		return []int{0}
	}
	return s.FaultLevels
}

// faultSeedOffset separates fault-plan seeds from per-node draw seeds in
// the TaskSeed index space.
const faultSeedOffset = 1 << 32

// PlanForLevel builds the fault plan of one intensity level: nil at level
// 0, the moderate all-classes default plan with every rate and sigma
// scaled by level/2 (clamped to probability 1) above it — so level 2 is
// exactly the faultinject.Default plan the resilience study and CI chaos
// job run under. The plan's seed derives from (seed, level) only, never a
// node index, so nodes sharing a level share a fingerprint and dedup into
// one group.
func PlanForLevel(seed uint64, level int) *faultinject.Plan {
	if level <= 0 {
		return nil
	}
	p := faultinject.Default(parallel.TaskSeed(seed, faultSeedOffset+level))
	f := float64(level) / 2
	scale := func(r float64) float64 { return units.Clamp(r*f, 0, 1) }
	p.GPUNoiseSigma = scale(p.GPUNoiseSigma)
	p.GPUDropRate = scale(p.GPUDropRate)
	p.GPUStaleRate = scale(p.GPUStaleRate)
	p.CPUNoiseSigma = scale(p.CPUNoiseSigma)
	p.CPUDropRate = scale(p.CPUDropRate)
	p.CPUStaleRate = scale(p.CPUStaleRate)
	p.TransitionRejectRate = scale(p.TransitionRejectRate)
	p.TransitionDelayRate = scale(p.TransitionDelayRate)
	p.MeterDropRate = scale(p.MeterDropRate)
	p.MeterSpikeRate = scale(p.MeterSpikeRate)
	p.StragglerRate = scale(p.StragglerRate)
	return &p
}

// ParseSpec parses the cmd/experiments -fleet mini-language: whitespace
// separated key=value tokens.
//
//	nodes=10000                      fleet size                (default 1000)
//	seed=2026                        base seed                 (default 2026)
//	classes=8800gtx,gtx280 | all     device classes            (default all)
//	workloads=kmeans,nbody | all     calibrated profiles       (default all)
//	modes=baseline,scaling,holistic  framework modes           (default baseline)
//	faults=0,1,2                     fault-intensity levels    (default 0)
//	iters=4                          iterations per node       (default 4)
//	deadline=1.1                     deadline factor, 0 = off  (default 1.1)
//
// The default iteration count matches the per-point frequency studies, so
// fleet groups share run-cache keys with them and with ad-hoc sweeps.
func ParseSpec(s string) (Spec, error) {
	spec := Spec{Nodes: 1000, Seed: DefaultSeed, Iterations: 4, DeadlineFactor: 1.1}
	for _, tok := range strings.Fields(s) {
		k, v, ok := strings.Cut(tok, "=")
		if !ok || v == "" {
			return Spec{}, fmt.Errorf("fleet: token %q is not key=value", tok)
		}
		var err error
		switch k {
		case "nodes":
			spec.Nodes, err = strconv.Atoi(v)
		case "seed":
			spec.Seed, err = strconv.ParseUint(v, 10, 64)
		case "classes":
			if v != "all" {
				spec.Classes = strings.Split(v, ",")
			}
		case "workloads":
			if v != "all" {
				spec.Workloads = strings.Split(v, ",")
				for _, w := range spec.Workloads {
					if w == "" {
						return Spec{}, fmt.Errorf("fleet: empty workload in %q", tok)
					}
				}
			}
		case "modes":
			for _, name := range strings.Split(v, ",") {
				var m core.Mode
				if m, err = sweep.ParseMode(name); err != nil {
					break
				}
				spec.Modes = append(spec.Modes, m)
			}
		case "faults":
			for _, part := range strings.Split(v, ",") {
				var lv int
				if lv, err = strconv.Atoi(part); err != nil {
					break
				}
				spec.FaultLevels = append(spec.FaultLevels, lv)
			}
		case "iters":
			spec.Iterations, err = strconv.Atoi(v)
		case "deadline":
			spec.DeadlineFactor, err = strconv.ParseFloat(v, 64)
		default:
			return Spec{}, fmt.Errorf("fleet: unknown key %q", k)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("fleet: bad value in %q: %w", tok, err)
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}
