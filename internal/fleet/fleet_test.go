package fleet

import (
	"bytes"
	"reflect"
	"testing"

	"greengpu/internal/core"
	"greengpu/internal/faultinject"
	"greengpu/internal/parallel"
	"greengpu/internal/runcache"
	"greengpu/internal/trace"
)

// testSpec exercises every axis: both classes, three workloads, all four
// modes, three fault levels, deadlines on.
func testSpec(nodes int) Spec {
	return Spec{
		Nodes:          nodes,
		Seed:           DefaultSeed,
		Workloads:      []string{"kmeans", "hotspot", "lud"},
		Modes:          []core.Mode{core.Baseline, core.FreqScaling, core.Division, core.Holistic},
		FaultLevels:    []int{0, 1, 2},
		Iterations:     2,
		DeadlineFactor: 1.1,
	}
}

// render flattens a fleet result to bytes for byte-identity comparisons.
func render(t *testing.T, r *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, tb := range []*trace.Table{GroupsTable(r), SummaryTable(r)} {
		if err := tb.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestRunMatchesNaive pins the dedup engine's aggregates byte-identical to
// the naive per-node loop — including full-simulation modes and injected
// faults — with and without a cache.
func TestRunMatchesNaive(t *testing.T) {
	spec := testSpec(150)
	naive, err := (&Engine{Jobs: 1}).RunNaive(spec)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := runcache.New(runcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []*Engine{{Jobs: 8}, {Jobs: 8, Cache: cache}} {
		res, err := e.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Agg != naive {
			t.Errorf("cache=%v: dedup aggregates diverge from naive:\n dedup: %+v\n naive: %+v",
				e.Cache != nil, res.Agg, naive)
		}
	}
}

// TestRunMatchesNaiveUnderAmbientPlan repeats the byte-identity check in
// chaos mode: level-0 nodes inherit the ambient plan on both paths.
func TestRunMatchesNaiveUnderAmbientPlan(t *testing.T) {
	plan := faultinject.Default(2012)
	spec := testSpec(60)
	naive, err := (&Engine{Jobs: 1, FaultPlan: &plan}).RunNaive(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Engine{Jobs: 8, FaultPlan: &plan}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg != naive {
		t.Errorf("ambient plan: dedup aggregates diverge from naive:\n dedup: %+v\n naive: %+v", res.Agg, naive)
	}
}

// TestRunDeterminism pins the full rendered output byte-identical across
// worker counts and cache modes, cold and warm.
func TestRunDeterminism(t *testing.T) {
	spec := testSpec(500)
	base, err := (&Engine{Jobs: 1}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := render(t, base)

	cache, err := runcache.New(runcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm := &Engine{Jobs: 8, Cache: cache}
	for _, tc := range []struct {
		name string
		e    *Engine
	}{
		{"jobs=8", &Engine{Jobs: 8}},
		{"jobs=8 cold cache", warm},
		{"jobs=8 warm cache", warm},
		{"jobs=3", &Engine{Jobs: 3}},
	} {
		res, err := tc.e.Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := render(t, res); !bytes.Equal(got, want) {
			t.Errorf("%s: output diverges from jobs=1", tc.name)
		}
	}
	if s := cache.Stats(); s.Hits == 0 {
		t.Errorf("warm rerun hit the cache 0 times: %+v", s)
	}
}

// TestNodeAttribution checks the node→group mapping is stateless: each
// node's group matches an independent re-derivation of its draws.
func TestNodeAttribution(t *testing.T) {
	spec := testSpec(300)
	res, err := (&Engine{Jobs: 4}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodeGroup) != spec.Nodes {
		t.Fatalf("NodeGroup has %d entries, want %d", len(res.NodeGroup), spec.Nodes)
	}
	classes := spec.classes()
	modes, levels := spec.modes(), spec.levels()
	total := 0
	for i := range res.Groups {
		total += res.Groups[i].Count
	}
	if total != spec.Nodes {
		t.Errorf("group counts sum to %d, want %d", total, spec.Nodes)
	}
	for i := 0; i < spec.Nodes; i++ {
		s := parallel.TaskSeed(spec.Seed, i)
		g := res.Node(i)
		if want := classes[parallel.Pick(s, 0, len(classes))].Name; g.Class != want {
			t.Fatalf("node %d: class %q, want %q", i, g.Class, want)
		}
		if want := spec.Workloads[parallel.Pick(s, 1, len(spec.Workloads))]; g.Workload != want {
			t.Fatalf("node %d: workload %q, want %q", i, g.Workload, want)
		}
		if want := modes[parallel.Pick(s, 2, len(modes))]; g.Mode != want {
			t.Fatalf("node %d: mode %v, want %v", i, g.Mode, want)
		}
		if want := levels[parallel.Pick(s, 3, len(levels))]; g.FaultLevel != want {
			t.Fatalf("node %d: fault level %d, want %d", i, g.FaultLevel, want)
		}
	}
}

// TestAggregateAllocs pins the per-node aggregation loop at zero
// allocations.
func TestAggregateAllocs(t *testing.T) {
	spec := testSpec(2000)
	res, err := (&Engine{Jobs: 4}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	sc := newGroupScalars(res.Groups)
	allocs := testing.AllocsPerRun(20, func() {
		var agg Aggregates
		aggregate(res.NodeGroup, sc, &agg)
	})
	if allocs != 0 {
		t.Errorf("aggregation loop allocates %.1f times per run, want 0", allocs)
	}
}

// TestDeadlineAccounting checks the deadline model: fault-free baseline
// groups never miss (factor > 1), and disabling the factor zeroes both
// deadlines and misses.
func TestDeadlineAccounting(t *testing.T) {
	spec := testSpec(400)
	res, err := (&Engine{Jobs: 4}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Groups {
		g := &res.Groups[i]
		if g.Deadline <= 0 {
			t.Fatalf("group %d: deadline %v, want positive", i, g.Deadline)
		}
		if g.Mode == core.Baseline && g.FaultLevel == 0 && g.Miss {
			t.Errorf("fault-free baseline group %s/%s missed its own deadline", g.Class, g.Workload)
		}
	}

	spec.DeadlineFactor = 0
	res, err = (&Engine{Jobs: 4}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.DeadlineMisses != 0 {
		t.Errorf("deadline accounting off: %d misses, want 0", res.Agg.DeadlineMisses)
	}
	for i := range res.Groups {
		if res.Groups[i].Deadline != 0 {
			t.Errorf("deadline accounting off: group %d has deadline %v", i, res.Groups[i].Deadline)
		}
	}
}

// TestDedupCollapses checks the economics: a large fleet collapses to the
// axis cross product, and the dedup ratio reflects it.
func TestDedupCollapses(t *testing.T) {
	spec := testSpec(5000)
	res, err := (&Engine{Jobs: 4}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// 2 classes × 3 workloads × 4 modes × 3 levels = 72 node groups; the
	// deadline references (baseline, level 0) are all drawn by some node
	// at this fleet size, so no extra groups appear.
	if want := 72; len(res.Groups) != want {
		t.Errorf("got %d groups, want %d", len(res.Groups), want)
	}
	if r := res.DedupRatio(); r < 60 {
		t.Errorf("dedup ratio %.1f, want ≥ 60 at 5000 nodes", r)
	}
}

// TestPlanForLevel pins the intensity ladder: nil at 0, the exact default
// plan at 2, linear scaling elsewhere, and always valid.
func TestPlanForLevel(t *testing.T) {
	if p := PlanForLevel(7, 0); p != nil {
		t.Fatalf("level 0: got %+v, want nil", p)
	}
	p2 := PlanForLevel(7, 2)
	want := faultinject.Default(parallel.TaskSeed(7, faultSeedOffset+2))
	if !reflect.DeepEqual(*p2, want) {
		t.Errorf("level 2 is not the default plan:\n got: %+v\nwant: %+v", *p2, want)
	}
	p1 := PlanForLevel(7, 1)
	if got, want := p1.GPUDropRate, want.GPUDropRate/2; got != want {
		t.Errorf("level 1 GPUDropRate = %v, want %v", got, want)
	}
	for lv := 0; lv <= MaxFaultLevel; lv++ {
		p := PlanForLevel(7, lv)
		if p == nil {
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("level %d: invalid plan: %v", lv, err)
		}
		if p.TransitionRejectRate > 1 {
			t.Errorf("level %d: rate above 1 escaped the clamp", lv)
		}
	}
	if PlanForLevel(7, 1).Seed == PlanForLevel(7, 2).Seed {
		t.Error("levels 1 and 2 share a plan seed")
	}
}

// TestParseSpec covers the mini-language round trip and its error cases.
func TestParseSpec(t *testing.T) {
	got, err := ParseSpec("nodes=10000 seed=9 classes=8800gtx workloads=kmeans,lud modes=baseline,scaling faults=0,1,2 iters=3 deadline=1.5")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		Nodes: 10000, Seed: 9, Classes: []string{"8800gtx"},
		Workloads:   []string{"kmeans", "lud"},
		Modes:       []core.Mode{core.Baseline, core.FreqScaling},
		FaultLevels: []int{0, 1, 2}, Iterations: 3, DeadlineFactor: 1.5,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseSpec:\n got: %+v\nwant: %+v", got, want)
	}

	defaults, err := ParseSpec("")
	if err != nil {
		t.Fatal(err)
	}
	if defaults.Nodes != 1000 || defaults.Seed != DefaultSeed ||
		defaults.Iterations != 4 || defaults.DeadlineFactor != 1.1 {
		t.Errorf("defaults: %+v", defaults)
	}

	for _, bad := range []string{
		"nodes", "nodes=", "nodes=0", "nodes=-5", "nodes=99999999",
		"bogus=1", "classes=riva128", "modes=warp", "faults=9",
		"faults=-1", "deadline=-1", "deadline=NaN", "iters=-2",
		"workloads=a,,b", "nodes=ten",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", bad)
		}
	}
}

// TestRunRejectsUnknownWorkload checks resolution errors surface.
func TestRunRejectsUnknownWorkload(t *testing.T) {
	spec := Spec{Nodes: 10, Workloads: []string{"no-such-kernel"}}
	if _, err := (&Engine{}).Run(spec); err == nil {
		t.Error("Run accepted an unknown workload")
	}
	if _, err := (&Engine{}).RunNaive(spec); err == nil {
		t.Error("RunNaive accepted an unknown workload")
	}
}
