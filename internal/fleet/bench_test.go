package fleet

import (
	"testing"

	"greengpu/internal/runcache"
)

// benchSpec is the BENCH_fleet.json contract fleet: 10k nodes over one
// device class, all nine workloads, baseline mode, three fault
// intensities, deadlines on — 27 distinct groups, so the dedup engine
// runs 27 simulations where the naive loop runs 10,000.
func benchSpec() Spec {
	return Spec{
		Nodes:          10000,
		Seed:           DefaultSeed,
		Classes:        []string{"8800gtx"},
		FaultLevels:    []int{0, 1, 2},
		Iterations:     4,
		DeadlineFactor: 1.1,
	}
}

// BenchmarkFleetDedup measures the dedup-compressed engine end to end —
// node generation, fingerprint grouping, group simulation through the
// shared run cache, and the per-node fan-out — at 10k nodes. The
// committed BENCH_fleet.json pins its nodes/s at ≥50× BenchmarkFleetNaive
// and its dedupratio as a deterministic contract.
func BenchmarkFleetDedup(b *testing.B) {
	cache, err := runcache.New(runcache.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e := &Engine{Cache: cache}
	spec := benchSpec()
	b.ReportAllocs()
	b.ResetTimer()
	var last *Result
	for i := 0; i < b.N; i++ {
		res, err := e.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	b.ReportMetric(float64(spec.Nodes*b.N)/b.Elapsed().Seconds(), "nodes/s")
	b.ReportMetric(last.DedupRatio(), "dedupratio")
}

// BenchmarkFleetNaive measures the same fleet evaluated the pre-dedup
// way: one fresh machine and one full simulation per node, no grouping,
// no cache. Its nodes/s is the baseline of the ≥50× contract. No
// ReportAllocs: at ~629k allocs/op the count flickers by ±1 from runtime
// background allocation, which would flake benchjson's hard no-increase
// gate; ns/op and nodes/s carry the regression signal here.
func BenchmarkFleetNaive(b *testing.B) {
	e := &Engine{}
	spec := benchSpec()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunNaive(spec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(spec.Nodes*b.N)/b.Elapsed().Seconds(), "nodes/s")
}

// BenchmarkFleetAggregate isolates the zero-allocation per-node fan-out
// loop: attribution of group scalars back to 10k nodes.
func BenchmarkFleetAggregate(b *testing.B) {
	e := &Engine{}
	res, err := e.Run(benchSpec())
	if err != nil {
		b.Fatal(err)
	}
	sc := newGroupScalars(res.Groups)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var agg Aggregates
		aggregate(res.NodeGroup, sc, &agg)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(res.NodeGroup)*b.N)/b.Elapsed().Seconds(), "nodes/s")
}
