package fleet

import (
	"context"
	"fmt"
	"time"

	"greengpu/internal/core"
	"greengpu/internal/faultinject"
	"greengpu/internal/parallel"
	"greengpu/internal/runcache"
	"greengpu/internal/sweep"
	"greengpu/internal/telemetry"
	"greengpu/internal/testbed"
	"greengpu/internal/trace"
	"greengpu/internal/units"
	"greengpu/internal/workload"
)

// Package metrics: the node→group→fleet attribution hierarchy (see
// docs/OBSERVABILITY.md). No-ops unless telemetry is enabled.
var (
	metricRuns = telemetry.NewCounter(telemetry.MetricFleetRuns,
		"Fleet evaluations (fleet.Engine.Run calls).")
	metricNodes = telemetry.NewCounter(telemetry.MetricFleetNodes,
		"Fleet nodes attributed simulation results.")
	metricGroups = telemetry.NewCounter(telemetry.MetricFleetGroups,
		"Distinct fleet configuration groups actually simulated.")
	metricDedupSaved = telemetry.NewCounter(telemetry.MetricFleetDedupSaved,
		"Simulations avoided by fleet fingerprint dedup (nodes minus node-backed groups).")
)

// Engine evaluates fleet specs. The zero value runs sequentially without
// memoization; fill the fields to share the suite's worker pool, run cache
// and chaos plan.
type Engine struct {
	// Jobs bounds how many groups simulate concurrently; 0 selects one
	// worker per CPU, 1 forces sequential execution. Results are
	// byte-identical for every value.
	Jobs int

	// Cache, when non-nil, memoizes group simulations under exactly the
	// runcache keys the per-point studies and sweeps use, so fleets share
	// hits with everything else and warm re-runs are near-free.
	Cache *runcache.Cache

	// FaultPlan, when non-nil, is the ambient chaos plan: nodes at fault
	// level 0 (no plan of their own) inject this one, mirroring
	// experiments.Env.
	FaultPlan *faultinject.Plan
}

// Group is one distinct node configuration: every node whose canonical
// fingerprint matches collapses into it, and it simulates exactly once.
type Group struct {
	// Class, Workload, Mode and FaultLevel identify the configuration on
	// the spec's axes.
	Class      string
	Workload   string
	Mode       core.Mode
	FaultLevel int

	// Key is the runcache fingerprint the group's nodes collapsed under.
	Key runcache.Key

	// Count is how many nodes the group absorbed; 0 marks a
	// deadline-reference group no node drew directly.
	Count int

	// Fast reports whether the sweep engine's closed-form evaluator
	// produced the result.
	Fast bool

	// Deadline is the group's deadline (DeadlineFactor times the
	// fault-free baseline wall time of its class/workload pair); 0 when
	// deadline accounting is off. Miss reports whether the group's wall
	// time exceeds it.
	Deadline time.Duration
	Miss     bool

	// Result is the group's simulation result, shared by every node in
	// the group.
	Result *core.Result
}

// Aggregates are the fleet-wide totals, accumulated over nodes in node
// order (so they are byte-identical to a naive per-node loop).
type Aggregates struct {
	// Nodes is the fleet size.
	Nodes int
	// Energy, EnergyGPU and EnergyCPU total the per-node energies.
	Energy    units.Energy
	EnergyGPU units.Energy
	EnergyCPU units.Energy
	// Wall totals the per-node wall times.
	Wall time.Duration
	// EDP totals the per-node energy-delay products, in joule-seconds.
	EDP float64
	// DeadlineMisses counts nodes whose wall time exceeded their deadline
	// (always 0 when deadline accounting is off).
	DeadlineMisses uint64
	// Faults totals the injected faults across the fleet by class.
	Faults faultinject.Counts
}

// Result is one fleet evaluation: the distinct groups (node-backed groups
// in first-appearance order, then deadline-reference groups), the per-node
// attribution, and the fleet aggregates.
type Result struct {
	Spec      Spec
	Groups    []Group
	NodeGroup []int32
	Agg       Aggregates
}

// Node returns the group node i collapsed into.
func (r *Result) Node(i int) *Group { return &r.Groups[r.NodeGroup[i]] }

// DedupRatio is the compression the fingerprint dedup achieved: nodes per
// simulation actually run (including deadline-reference simulations).
func (r *Result) DedupRatio() float64 {
	if len(r.Groups) == 0 {
		return 0
	}
	return float64(len(r.NodeGroup)) / float64(len(r.Groups))
}

// classRT is one resolved device class: its calibrated profiles (indexed
// by the spec's workload axis) and the sweep batch that evaluates its
// groups.
type classRT struct {
	class Class
	batch *sweep.Batch
	profs []*workload.Profile
}

// resolve builds the per-class runtimes and the resolved workload-name
// axis. Every class shares one workload axis: the Rodinia calibration
// produces the same nine names for any device pair.
func (e *Engine) resolve(spec *Spec) ([]classRT, []string, error) {
	cls := spec.classes()
	rts := make([]classRT, len(cls))
	var names []string
	for i, cl := range cls {
		profiles, err := workload.Rodinia(cl.GPU, cl.CPU)
		if err != nil {
			return nil, nil, err
		}
		if i == 0 {
			names = spec.Workloads
			if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
				names = make([]string, len(profiles))
				for j, p := range profiles {
					names[j] = p.Name
				}
			}
		}
		eng := &sweep.Engine{
			GPU:       cl.GPU,
			CPU:       cl.CPU,
			Bus:       cl.Bus,
			Profiles:  profiles,
			Cache:     e.Cache,
			FaultPlan: e.FaultPlan,
		}
		batch, err := eng.NewBatch(names...)
		if err != nil {
			return nil, nil, err
		}
		profs := make([]*workload.Profile, len(names))
		for j, n := range names {
			if profs[j], err = workload.ByName(profiles, n); err != nil {
				return nil, nil, err
			}
		}
		rts[i] = classRT{class: cl, batch: batch, profs: profs}
	}
	return rts, names, nil
}

// nodeConfig builds the framework configuration of one (mode, fault plan)
// pair: the per-point studies' default config shape, so groups share
// run-cache keys with them. A nil plan inherits the engine's ambient chaos
// plan.
func (e *Engine) nodeConfig(spec *Spec, mode core.Mode, plan *faultinject.Plan) core.Config {
	cfg := core.DefaultConfig(mode)
	cfg.Iterations = spec.Iterations
	cfg.FaultPlan = plan
	if cfg.FaultPlan == nil && e.FaultPlan != nil {
		cfg.FaultPlan = e.FaultPlan
	}
	return cfg
}

// groupMeta is the evaluation-side state of a group: its exact
// configuration and its axis indices.
type groupMeta struct {
	cfg      core.Config
	class    int
	workload int
}

// Run generates the fleet, dedups it into distinct groups by runcache
// fingerprint, simulates each group exactly once (sharded across
// internal/parallel workers, memoized in the shared run cache), and fans
// the results back out into per-node attribution and fleet aggregates.
// Output is byte-identical at any Jobs value and to RunNaive.
// It is RunContext under a background context.
func (e *Engine) Run(spec Spec) (*Result, error) {
	return e.RunContext(context.Background(), spec)
}

// RunContext is Run with request-scoped cancellation: when ctx is
// canceled, groups that have not started simulating are skipped, groups
// already running complete (so an attached run cache never holds partial
// entries), and the error is ctx.Err(). The daemon routes client
// disconnects through this path.
func (e *Engine) RunContext(ctx context.Context, spec Spec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rts, wls, err := e.resolve(&spec)
	if err != nil {
		return nil, err
	}
	modes, levels := spec.modes(), spec.levels()
	plans := make([]*faultinject.Plan, len(levels))
	for i, lv := range levels {
		plans[i] = PlanForLevel(spec.Seed, lv)
	}

	// Node generation and grouping. The loop is sequential and stateless
	// per node, so group discovery order — and therefore all output — is
	// a pure function of the spec. The fingerprint is computed once per
	// distinct (class, workload, mode, level) tuple, not per node; tuples
	// whose canonical configurations coincide merge into one group.
	C, W, M, F := len(rts), len(wls), len(modes), len(levels)
	tupleGroup := make([]int32, C*W*M*F)
	for i := range tupleGroup {
		tupleGroup[i] = -1
	}
	byKey := make(map[runcache.Key]int32)
	var groups []Group
	var metas []groupMeta
	nodeGroup := make([]int32, spec.Nodes)
	for i := 0; i < spec.Nodes; i++ {
		s := parallel.TaskSeed(spec.Seed, i)
		ci := parallel.Pick(s, 0, C)
		wi := parallel.Pick(s, 1, W)
		mi := parallel.Pick(s, 2, M)
		fi := parallel.Pick(s, 3, F)
		t := ((ci*W+wi)*M+mi)*F + fi
		g := tupleGroup[t]
		if g < 0 {
			cfg := e.nodeConfig(&spec, modes[mi], plans[fi])
			g = int32(len(groups))
			if key, ok := rts[ci].batch.Key(wls[wi], cfg); ok {
				if prev, seen := byKey[key]; seen {
					g = prev
				} else {
					byKey[key] = g
				}
				if g == int32(len(groups)) {
					groups = append(groups, Group{Class: rts[ci].class.Name, Workload: wls[wi],
						Mode: modes[mi], FaultLevel: levels[fi], Key: key})
					metas = append(metas, groupMeta{cfg: cfg, class: ci, workload: wi})
				}
			} else {
				// Not cacheable (impossible for plain spec axes, kept for
				// robustness): the tuple is its own group.
				groups = append(groups, Group{Class: rts[ci].class.Name, Workload: wls[wi],
					Mode: modes[mi], FaultLevel: levels[fi]})
				metas = append(metas, groupMeta{cfg: cfg, class: ci, workload: wi})
			}
			tupleGroup[t] = g
		}
		groups[g].Count++
		nodeGroup[i] = g
	}
	nodeGroups := len(groups)

	// Deadline references: the fault-free baseline run of each (class,
	// workload) pair present in the fleet. References dedup through the
	// same fingerprint map, so they only add simulations when no node drew
	// the fault-free baseline configuration itself.
	refIdx := make([]int32, C*W)
	for i := range refIdx {
		refIdx[i] = -1
	}
	if spec.DeadlineFactor > 0 {
		for g := 0; g < nodeGroups; g++ {
			ci, wi := metas[g].class, metas[g].workload
			if refIdx[ci*W+wi] >= 0 {
				continue
			}
			cfg := e.nodeConfig(&spec, core.Baseline, nil)
			r := int32(len(groups))
			if key, ok := rts[ci].batch.Key(wls[wi], cfg); ok {
				if prev, seen := byKey[key]; seen {
					r = prev
				} else {
					byKey[key] = r
				}
				if r == int32(len(groups)) {
					groups = append(groups, Group{Class: rts[ci].class.Name, Workload: wls[wi],
						Mode: core.Baseline, FaultLevel: 0, Key: key})
					metas = append(metas, groupMeta{cfg: cfg, class: ci, workload: wi})
				}
			} else {
				groups = append(groups, Group{Class: rts[ci].class.Name, Workload: wls[wi],
					Mode: core.Baseline, FaultLevel: 0})
				metas = append(metas, groupMeta{cfg: cfg, class: ci, workload: wi})
			}
			refIdx[ci*W+wi] = r
		}
	}

	// Simulate each distinct group exactly once, sharded across workers.
	// parallel.Map preserves order, so the group list stays deterministic.
	type evalOut struct {
		res  *core.Result
		fast bool
	}
	idx := make([]int, len(groups))
	for i := range idx {
		idx[i] = i
	}
	outs, err := parallel.Map(ctx, idx,
		func(_ context.Context, _ int, g int) (evalOut, error) {
			r, fast, err := rts[metas[g].class].batch.Eval(wls[metas[g].workload], metas[g].cfg)
			return evalOut{res: r, fast: fast}, err
		}, parallel.Workers(e.Jobs))
	if err != nil {
		return nil, err
	}
	for g := range groups {
		groups[g].Result = outs[g].res
		groups[g].Fast = outs[g].fast
	}
	if spec.DeadlineFactor > 0 {
		for g := range groups {
			ref := groups[refIdx[metas[g].class*W+metas[g].workload]].Result.TotalTime
			d := time.Duration(spec.DeadlineFactor * float64(ref))
			groups[g].Deadline = d
			groups[g].Miss = groups[g].Result.TotalTime > d
		}
	}

	// Fan-out: transpose the group results into structure-of-arrays
	// scalar columns and attribute them to nodes in one allocation-free
	// O(nodes) pass.
	sc := newGroupScalars(groups)
	res := &Result{Spec: spec, Groups: groups, NodeGroup: nodeGroup}
	aggregate(nodeGroup, sc, &res.Agg)

	metricRuns.Inc()
	metricNodes.Add(uint64(spec.Nodes))
	metricGroups.Add(uint64(len(groups)))
	metricDedupSaved.Add(uint64(spec.Nodes - nodeGroups))
	return res, nil
}

// groupScalars are the structure-of-arrays accumulator columns of one
// fleet: every scalar the aggregation loop reads, one slot per group, so
// the per-node pass touches flat arrays only.
type groupScalars struct {
	energy    []units.Energy
	energyGPU []units.Energy
	energyCPU []units.Energy
	wall      []time.Duration
	edp       []float64
	miss      []bool
	faults    []faultinject.Counts
}

// newGroupScalars transposes group results into scalar columns.
func newGroupScalars(groups []Group) *groupScalars {
	n := len(groups)
	sc := &groupScalars{
		energy:    make([]units.Energy, n),
		energyGPU: make([]units.Energy, n),
		energyCPU: make([]units.Energy, n),
		wall:      make([]time.Duration, n),
		edp:       make([]float64, n),
		miss:      make([]bool, n),
		faults:    make([]faultinject.Counts, n),
	}
	for g := range groups {
		r := groups[g].Result
		sc.energy[g] = r.Energy
		sc.energyGPU[g] = r.EnergyGPU
		sc.energyCPU[g] = r.EnergyCPU
		sc.wall[g] = r.TotalTime
		sc.edp[g] = r.Energy.Joules() * r.TotalTime.Seconds()
		sc.miss[g] = groups[g].Miss
		sc.faults[g] = r.Faults
	}
	return sc
}

// aggregate attributes group scalars back to nodes, accumulating the fleet
// totals in node order. The loop allocates nothing (pinned by an
// AllocsPerRun test) and reads only the flat scalar columns.
func aggregate(nodeGroup []int32, sc *groupScalars, agg *Aggregates) {
	for _, g := range nodeGroup {
		agg.Energy += sc.energy[g]
		agg.EnergyGPU += sc.energyGPU[g]
		agg.EnergyCPU += sc.energyCPU[g]
		agg.Wall += sc.wall[g]
		agg.EDP += sc.edp[g]
		if sc.miss[g] {
			agg.DeadlineMisses++
		}
		agg.Faults = agg.Faults.Add(sc.faults[g])
	}
	agg.Nodes = len(nodeGroup)
}

// RunNaive evaluates the fleet the obvious way — one full simulation per
// node, no dedup, no cache — and returns the aggregates. It is the
// baseline the BENCH_fleet.json nodes/s contract measures Run against;
// its aggregates are byte-identical to Run's because both accumulate the
// same per-node scalars in the same node order.
func (e *Engine) RunNaive(spec Spec) (Aggregates, error) {
	if err := spec.Validate(); err != nil {
		return Aggregates{}, err
	}
	rts, wls, err := e.resolve(&spec)
	if err != nil {
		return Aggregates{}, err
	}
	modes, levels := spec.modes(), spec.levels()
	plans := make([]*faultinject.Plan, len(levels))
	for i, lv := range levels {
		plans[i] = PlanForLevel(spec.Seed, lv)
	}

	C, W, M, F := len(rts), len(wls), len(modes), len(levels)
	refWall := make([]time.Duration, C*W)
	refDone := make([]bool, C*W)
	var agg Aggregates
	for i := 0; i < spec.Nodes; i++ {
		s := parallel.TaskSeed(spec.Seed, i)
		ci := parallel.Pick(s, 0, C)
		wi := parallel.Pick(s, 1, W)
		mi := parallel.Pick(s, 2, M)
		fi := parallel.Pick(s, 3, F)
		cl := rts[ci].class
		cfg := e.nodeConfig(&spec, modes[mi], plans[fi])
		r, err := core.Run(testbed.NewFrom(cl.GPU, cl.CPU, cl.Bus), rts[ci].profs[wi], cfg)
		if err != nil {
			return Aggregates{}, err
		}
		agg.Energy += r.Energy
		agg.EnergyGPU += r.EnergyGPU
		agg.EnergyCPU += r.EnergyCPU
		agg.Wall += r.TotalTime
		agg.EDP += r.Energy.Joules() * r.TotalTime.Seconds()
		if spec.DeadlineFactor > 0 {
			idx := ci*W + wi
			if !refDone[idx] {
				refCfg := e.nodeConfig(&spec, core.Baseline, nil)
				ref, err := core.Run(testbed.NewFrom(cl.GPU, cl.CPU, cl.Bus), rts[ci].profs[wi], refCfg)
				if err != nil {
					return Aggregates{}, err
				}
				refWall[idx] = ref.TotalTime
				refDone[idx] = true
			}
			if r.TotalTime > time.Duration(spec.DeadlineFactor*float64(refWall[idx])) {
				agg.DeadlineMisses++
			}
		}
		agg.Faults = agg.Faults.Add(r.Faults)
	}
	agg.Nodes = spec.Nodes
	return agg, nil
}

// GroupsTable renders a fleet's distinct groups as the suite's standard
// trace table, one row per group with its node count and result scalars.
func GroupsTable(r *Result) *trace.Table {
	t := trace.NewTable("Fleet groups",
		"class", "workload", "mode", "fault_level", "nodes", "fast",
		"exec_s", "energy_j", "energy_gpu_j", "energy_cpu_j",
		"deadline_s", "miss")
	for i := range r.Groups {
		g := &r.Groups[i]
		t.AddRow(g.Class, g.Workload, g.Mode.String(),
			fmt.Sprintf("%d", g.FaultLevel), fmt.Sprintf("%d", g.Count),
			fmt.Sprintf("%t", g.Fast),
			fmt.Sprintf("%.6f", g.Result.TotalTime.Seconds()),
			fmt.Sprintf("%.6f", g.Result.Energy.Joules()),
			fmt.Sprintf("%.6f", g.Result.EnergyGPU.Joules()),
			fmt.Sprintf("%.6f", g.Result.EnergyCPU.Joules()),
			fmt.Sprintf("%.6f", g.Deadline.Seconds()),
			fmt.Sprintf("%t", g.Miss))
	}
	return t
}

// SummaryTable renders a fleet's aggregates as a one-row table.
func SummaryTable(r *Result) *trace.Table {
	t := trace.NewTable("Fleet summary",
		"nodes", "groups", "dedup_ratio", "energy_j", "energy_gpu_j",
		"energy_cpu_j", "wall_s", "edp_js", "deadline_misses", "faults_total")
	a := &r.Agg
	t.AddRow(fmt.Sprintf("%d", a.Nodes), fmt.Sprintf("%d", len(r.Groups)),
		fmt.Sprintf("%.2f", r.DedupRatio()),
		fmt.Sprintf("%.6f", a.Energy.Joules()),
		fmt.Sprintf("%.6f", a.EnergyGPU.Joules()),
		fmt.Sprintf("%.6f", a.EnergyCPU.Joules()),
		fmt.Sprintf("%.6f", a.Wall.Seconds()),
		fmt.Sprintf("%.6f", a.EDP),
		fmt.Sprintf("%d", a.DeadlineMisses),
		fmt.Sprintf("%d", a.Faults.Total()))
	return t
}
