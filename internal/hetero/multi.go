package hetero

import (
	"fmt"
	"sync"
	"time"

	"greengpu/internal/kernels"
	"greengpu/internal/units"
)

// MultiExecutor generalizes tier 1 to k devices — the paper's
// implementation structure ("one pthread for one GPU, one pthread for one
// core", §VI) points straight at multi-accelerator nodes. Each iteration's
// items are split across all pools with shares proportional to their
// measured processing rates (items per second, exponentially smoothed), so
// all sides finish together; this is the k-way water-filling analogue of
// the two-sided execution-time comparison.
type MultiExecutor struct {
	kernel kernels.Kernel
	pools  []*Pool
	cfg    MultiConfig

	shares []float64
	rates  []float64 // items/second EWMA, 0 = unknown
	stats  []MultiIterationStat
}

// PoolPower is one pool's power envelope for energy estimation.
type PoolPower struct {
	Busy units.Power
	Idle units.Power
}

// MultiConfig parameterizes a multi-pool run.
type MultiConfig struct {
	// Smoothing is the EWMA factor for rate estimates in (0,1]: 1 uses
	// only the latest iteration. Default 0.5.
	Smoothing float64
	// MaxIterations bounds the number of barriers; 0 runs to completion.
	MaxIterations int
	// Energy, when non-empty, enables energy estimation; it must have
	// one entry per pool.
	Energy []PoolPower
	// OnIteration, if non-nil, observes every completed iteration.
	OnIteration func(MultiIterationStat)
}

// MultiIterationStat describes one k-way iteration.
type MultiIterationStat struct {
	Index  int
	Items  int
	Shares []float64
	Counts []int
	Times  []time.Duration
	Wall   time.Duration
}

// MultiReport summarizes a multi-pool run.
type MultiReport struct {
	Kernel      string
	Pools       []string
	Iterations  []MultiIterationStat
	FinalShares []float64
	TotalWall   time.Duration
	// Busy and Wait are per-pool sums; Wait is barrier idle time.
	Busy []time.Duration
	Wait []time.Duration
	// Energy is the modelled total; zero when no model was given.
	Energy units.Energy
}

// Imbalance returns the final iteration's (max−min)/wall time spread —
// the k-way analogue of Report.Balance.
func (r *MultiReport) Imbalance() float64 {
	if len(r.Iterations) == 0 {
		return 0
	}
	last := r.Iterations[len(r.Iterations)-1]
	if last.Wall == 0 {
		return 0
	}
	lo, hi := time.Duration(1<<62), time.Duration(0)
	for i, t := range last.Times {
		if last.Counts[i] == 0 {
			continue
		}
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	if hi == 0 {
		return 0
	}
	return float64(hi-lo) / float64(last.Wall)
}

// NewMulti creates a k-way executor with equal initial shares. It panics
// on a nil kernel, fewer than two pools, or invalid pools/config.
func NewMulti(k kernels.Kernel, pools []*Pool, cfg MultiConfig) *MultiExecutor {
	if k == nil {
		panic("hetero: nil kernel")
	}
	if len(pools) < 2 {
		panic(fmt.Sprintf("hetero: need at least two pools, got %d", len(pools)))
	}
	for _, p := range pools {
		if p == nil {
			panic("hetero: nil pool")
		}
		if err := p.Validate(); err != nil {
			panic(err)
		}
	}
	if cfg.Smoothing == 0 {
		cfg.Smoothing = 0.5
	}
	if cfg.Smoothing < 0 || cfg.Smoothing > 1 {
		panic(fmt.Sprintf("hetero: Smoothing = %v, must be in (0,1]", cfg.Smoothing))
	}
	if len(cfg.Energy) != 0 && len(cfg.Energy) != len(pools) {
		panic(fmt.Sprintf("hetero: Energy has %d entries for %d pools", len(cfg.Energy), len(pools)))
	}
	x := &MultiExecutor{
		kernel: k,
		pools:  pools,
		cfg:    cfg,
		shares: make([]float64, len(pools)),
		rates:  make([]float64, len(pools)),
	}
	for i := range x.shares {
		x.shares[i] = 1 / float64(len(pools))
	}
	return x
}

// Shares returns the current share vector.
func (x *MultiExecutor) Shares() []float64 {
	out := make([]float64, len(x.shares))
	copy(out, x.shares)
	return out
}

// split turns the share vector into per-pool item counts summing to n
// (largest-remainder rounding).
func (x *MultiExecutor) split(n int) []int {
	k := len(x.pools)
	counts := make([]int, k)
	rem := make([]float64, k)
	total := 0
	for i, s := range x.shares {
		exact := s * float64(n)
		counts[i] = int(exact)
		rem[i] = exact - float64(counts[i])
		total += counts[i]
	}
	for total < n {
		best := 0
		for i := 1; i < k; i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		counts[best]++
		rem[best] = -1
		total++
	}
	return counts
}

// Run executes the kernel to completion (or MaxIterations).
func (x *MultiExecutor) Run() *MultiReport {
	k := len(x.pools)
	rep := &MultiReport{
		Kernel: x.kernel.Name(),
		Busy:   make([]time.Duration, k),
		Wait:   make([]time.Duration, k),
	}
	for _, p := range x.pools {
		rep.Pools = append(rep.Pools, p.Name)
	}
	start := time.Now()
	for iter := 0; ; iter++ {
		if x.cfg.MaxIterations > 0 && iter >= x.cfg.MaxIterations {
			break
		}
		n := x.kernel.Items()
		counts := x.split(n)

		times := make([]time.Duration, k)
		partialSets := make([][]any, k)
		iterStart := time.Now()
		var wg sync.WaitGroup
		lo := 0
		for i := 0; i < k; i++ {
			clo, chi := lo, lo+counts[i]
			lo = chi
			wg.Add(1)
			go func(i, clo, chi int) {
				defer wg.Done()
				t0 := time.Now()
				partialSets[i] = x.pools[i].Process(x.kernel, clo, chi)
				times[i] = time.Since(t0)
			}(i, clo, chi)
		}
		wg.Wait()
		wall := time.Since(iterStart)

		stat := MultiIterationStat{
			Index:  iter,
			Items:  n,
			Shares: x.Shares(),
			Counts: counts,
			Times:  times,
			Wall:   wall,
		}
		x.stats = append(x.stats, stat)
		rep.Iterations = append(rep.Iterations, stat)
		for i := 0; i < k; i++ {
			rep.Busy[i] += times[i]
			rep.Wait[i] += wall - times[i]
		}
		if x.cfg.OnIteration != nil {
			x.cfg.OnIteration(stat)
		}

		x.updateShares(counts, times)

		var partials []any
		for _, ps := range partialSets {
			partials = append(partials, ps...)
		}
		if !x.kernel.EndIteration(partials) {
			break
		}
	}
	rep.TotalWall = time.Since(start)
	rep.FinalShares = x.Shares()
	if len(x.cfg.Energy) == len(x.pools) {
		for i, pp := range x.cfg.Energy {
			rep.Energy += pp.Busy.Over(rep.Busy[i]) + pp.Idle.Over(rep.Wait[i])
		}
	}
	return rep
}

// updateShares folds the measured per-pool rates into the EWMA estimates
// and renormalizes shares proportional to rate.
func (x *MultiExecutor) updateShares(counts []int, times []time.Duration) {
	alpha := x.cfg.Smoothing
	for i := range x.pools {
		if counts[i] <= 0 || times[i] <= 0 {
			continue // no fresh measurement for this pool
		}
		rate := float64(counts[i]) / times[i].Seconds()
		if x.rates[i] == 0 {
			x.rates[i] = rate
		} else {
			x.rates[i] = alpha*rate + (1-alpha)*x.rates[i]
		}
	}
	total := 0.0
	for _, r := range x.rates {
		total += r
	}
	if total <= 0 {
		return // nothing measured yet; keep equal shares
	}
	for i := range x.shares {
		if x.rates[i] == 0 {
			// Unmeasured pool: hold a small probe share so it gets a
			// measurement next iteration.
			x.shares[i] = 0.01
			continue
		}
		x.shares[i] = x.rates[i] / total
	}
	// Renormalize (probe shares may have perturbed the sum).
	sum := 0.0
	for _, s := range x.shares {
		sum += s
	}
	for i := range x.shares {
		x.shares[i] /= sum
	}
}
