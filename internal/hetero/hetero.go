// Package hetero executes real kernels (internal/kernels) across two
// worker pools of different speeds — a stand-in for the paper's CPU +
// GPU pthread structure (§VI) — and drives GreenGPU's workload-division
// tier from measured wall-clock times.
//
// Each iteration's items are split by the current division ratio: the CPU
// pool processes the first r·n items, the accelerator pool the rest,
// concurrently. Both sides' execution times feed division.Divider, which
// rebalances the split for the next iteration exactly as on the paper's
// testbed. An optional energy model translates the measured busy and idle
// times into estimated energy, so the examples can report the idle-energy
// reduction the division tier exists to deliver.
package hetero

import (
	"fmt"
	"sync"
	"time"

	"greengpu/internal/division"
	"greengpu/internal/kernels"
	"greengpu/internal/units"
)

// Pool is a fixed-size worker pool.
type Pool struct {
	// Name labels the pool in stats ("cpu", "gpu", ...).
	Name string
	// Workers is the number of goroutines used per chunk.
	Workers int
	// ItemDelay, when non-zero, adds an artificial per-item cost. It
	// exists to give the two pools a controlled, machine-independent
	// speed asymmetry in tests and demos.
	ItemDelay time.Duration
}

// Validate reports the first problem with the pool, if any.
func (p *Pool) Validate() error {
	if p.Workers <= 0 {
		return fmt.Errorf("hetero: pool %q needs at least one worker", p.Name)
	}
	if p.ItemDelay < 0 {
		return fmt.Errorf("hetero: pool %q has negative ItemDelay", p.Name)
	}
	return nil
}

// Process runs items [lo, hi) of the kernel's current iteration on the
// pool, returning the chunks' partial results. Chunks over disjoint
// sub-ranges run concurrently on the pool's workers.
func (p *Pool) Process(k kernels.Kernel, lo, hi int) []any {
	n := hi - lo
	if n <= 0 {
		return nil
	}
	if p.ItemDelay > 0 {
		time.Sleep(time.Duration(n) * p.ItemDelay)
	}
	workers := p.Workers
	if workers > n {
		workers = n
	}
	partials := make([]any, workers)
	var wg sync.WaitGroup
	per := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		clo := lo + w*per
		chi := clo + per
		if chi > hi {
			chi = hi
		}
		if clo >= chi {
			break
		}
		wg.Add(1)
		go func(idx, clo, chi int) {
			defer wg.Done()
			partials[idx] = k.Chunk(clo, chi)
		}(w, clo, chi)
	}
	wg.Wait()
	out := partials[:0]
	for _, p := range partials {
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}

// EnergyModel translates busy/idle time into estimated energy for the
// examples' reporting. Values are device powers at the measurement
// boundaries, as in internal/testbed.
type EnergyModel struct {
	CPUBusy units.Power
	CPUIdle units.Power
	AccBusy units.Power
	AccIdle units.Power
}

// Config parameterizes an executor run.
type Config struct {
	// Division holds tier 1's parameters; zero value uses the defaults.
	Division division.Config
	// MaxIterations bounds the number of barriers; 0 runs the kernel to
	// completion.
	MaxIterations int
	// Energy, when non-nil, enables energy estimation in the report.
	Energy *EnergyModel
	// OnIteration, if non-nil, observes every completed iteration.
	OnIteration func(IterationStat)
}

// IterationStat describes one iteration barrier.
type IterationStat struct {
	Index    int
	Items    int
	CPUItems int
	R        float64
	TCPU     time.Duration
	TAcc     time.Duration
	Wall     time.Duration
}

// Report summarizes an executor run.
type Report struct {
	Kernel     string
	Iterations []IterationStat
	FinalRatio float64
	TotalWall  time.Duration
	// CPUBusy and AccBusy are the summed per-side execution times;
	// CPUWait and AccWait the summed idle time each side spent waiting
	// for the other at iteration barriers.
	CPUBusy, AccBusy time.Duration
	CPUWait, AccWait time.Duration
	// Energy is the modelled total energy; zero when no model was given.
	Energy units.Energy
}

// Balance returns the final iteration's relative imbalance
// |tcpu − tacc| / wall, the quantity the division tier minimizes.
func (r *Report) Balance() float64 {
	if len(r.Iterations) == 0 {
		return 0
	}
	last := r.Iterations[len(r.Iterations)-1]
	if last.Wall == 0 {
		return 0
	}
	d := last.TCPU - last.TAcc
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(last.Wall)
}

// Executor drives one kernel over two pools under dynamic division.
type Executor struct {
	kernel  kernels.Kernel
	cpu     *Pool
	acc     *Pool
	cfg     Config
	divider *division.Divider
}

// New creates an executor. The zero-valued Division config is replaced by
// the paper defaults. It panics on invalid pools or division parameters.
func New(k kernels.Kernel, cpu, acc *Pool, cfg Config) *Executor {
	if k == nil {
		panic("hetero: nil kernel")
	}
	for _, p := range []*Pool{cpu, acc} {
		if p == nil {
			panic("hetero: nil pool")
		}
		if err := p.Validate(); err != nil {
			panic(err)
		}
	}
	if cfg.Division == (division.Config{}) {
		cfg.Division = division.DefaultConfig()
	}
	return &Executor{
		kernel:  k,
		cpu:     cpu,
		acc:     acc,
		cfg:     cfg,
		divider: division.New(cfg.Division),
	}
}

// Ratio returns the current CPU share.
func (x *Executor) Ratio() float64 { return x.divider.Ratio() }

// Run executes the kernel to completion (or MaxIterations) and returns the
// report.
func (x *Executor) Run() *Report {
	rep := &Report{Kernel: x.kernel.Name()}
	start := time.Now()
	for iter := 0; ; iter++ {
		if x.cfg.MaxIterations > 0 && iter >= x.cfg.MaxIterations {
			break
		}
		n := x.kernel.Items()
		r := x.divider.Ratio()
		cpuN := int(r*float64(n) + 0.5)
		if cpuN > n {
			cpuN = n
		}

		var cpuParts, accParts []any
		var tCPU, tAcc time.Duration
		iterStart := time.Now()
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			cpuParts = x.cpu.Process(x.kernel, 0, cpuN)
			tCPU = time.Since(t0)
		}()
		go func() {
			defer wg.Done()
			t0 := time.Now()
			accParts = x.acc.Process(x.kernel, cpuN, n)
			tAcc = time.Since(t0)
		}()
		wg.Wait()
		wall := time.Since(iterStart)

		stat := IterationStat{
			Index:    iter,
			Items:    n,
			CPUItems: cpuN,
			R:        r,
			TCPU:     tCPU,
			TAcc:     tAcc,
			Wall:     wall,
		}
		rep.Iterations = append(rep.Iterations, stat)
		rep.CPUBusy += tCPU
		rep.AccBusy += tAcc
		if tCPU < tAcc {
			rep.CPUWait += tAcc - tCPU
		} else {
			rep.AccWait += tCPU - tAcc
		}
		if x.cfg.OnIteration != nil {
			x.cfg.OnIteration(stat)
		}

		x.divider.Observe(tCPU, tAcc)

		partials := append(cpuParts, accParts...)
		if !x.kernel.EndIteration(partials) {
			break
		}
	}
	rep.TotalWall = time.Since(start)
	rep.FinalRatio = x.divider.Ratio()
	if m := x.cfg.Energy; m != nil {
		rep.Energy = m.CPUBusy.Over(rep.CPUBusy) + m.CPUIdle.Over(rep.CPUWait) +
			m.AccBusy.Over(rep.AccBusy) + m.AccIdle.Over(rep.AccWait)
	}
	return rep
}

// History exposes the divider's decision log.
func (x *Executor) History() []division.Observation { return x.divider.History() }
