package hetero

import (
	"math"
	"testing"
	"time"

	"greengpu/internal/kernels"
	"greengpu/internal/units"
)

func TestMultiValidation(t *testing.T) {
	k := kernels.NewHotspot(8, 8, 1, 1)
	good := []*Pool{{Name: "a", Workers: 1}, {Name: "b", Workers: 1}}
	cases := []func(){
		func() { NewMulti(nil, good, MultiConfig{}) },
		func() { NewMulti(k, good[:1], MultiConfig{}) },
		func() { NewMulti(k, []*Pool{good[0], nil}, MultiConfig{}) },
		func() { NewMulti(k, []*Pool{good[0], {Name: "bad", Workers: 0}}, MultiConfig{}) },
		func() { NewMulti(k, good, MultiConfig{Smoothing: 2}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMultiInitialSharesEqual(t *testing.T) {
	k := kernels.NewHotspot(8, 8, 1, 1)
	x := NewMulti(k, []*Pool{
		{Name: "a", Workers: 1}, {Name: "b", Workers: 1}, {Name: "c", Workers: 1},
	}, MultiConfig{})
	for _, s := range x.Shares() {
		if math.Abs(s-1.0/3) > 1e-12 {
			t.Errorf("initial shares = %v", x.Shares())
		}
	}
}

func TestMultiResultsMatchSerial(t *testing.T) {
	serial := kernels.NewPathFinder(80, 240, 5)
	kernels.RunSerial(serial)
	split := kernels.NewPathFinder(80, 240, 5)
	x := NewMulti(split, []*Pool{
		{Name: "a", Workers: 1}, {Name: "b", Workers: 2}, {Name: "c", Workers: 2},
	}, MultiConfig{})
	x.Run()
	if split.BestCost() != serial.BestCost() {
		t.Errorf("3-way run cost %d != serial %d", split.BestCost(), serial.BestCost())
	}
}

func TestMultiSharesTrackPoolSpeeds(t *testing.T) {
	// Pools with per-item delays 100/200/400 µs have rates 4:2:1, so
	// shares should converge near (4/7, 2/7, 1/7).
	k := kernels.NewHotspot(64, 64, 30, 3)
	x := NewMulti(k, []*Pool{
		{Name: "fast", Workers: 1, ItemDelay: 200 * time.Microsecond},
		{Name: "mid", Workers: 1, ItemDelay: 400 * time.Microsecond},
		{Name: "slow", Workers: 1, ItemDelay: 800 * time.Microsecond},
	}, MultiConfig{})
	rep := x.Run()
	want := []float64{4.0 / 7, 2.0 / 7, 1.0 / 7}
	for i, s := range rep.FinalShares {
		if math.Abs(s-want[i]) > 0.08 {
			t.Errorf("pool %s share %.3f, want ~%.3f", rep.Pools[i], s, want[i])
		}
	}
	if imb := rep.Imbalance(); imb > 0.25 {
		t.Errorf("final imbalance %.2f, want balanced", imb)
	}
}

func TestMultiMaxIterations(t *testing.T) {
	k := kernels.NewHotspot(16, 16, 100, 5)
	x := NewMulti(k, []*Pool{{Name: "a", Workers: 1}, {Name: "b", Workers: 1}},
		MultiConfig{MaxIterations: 4})
	rep := x.Run()
	if len(rep.Iterations) != 4 {
		t.Errorf("ran %d iterations, want 4", len(rep.Iterations))
	}
}

func TestMultiObserver(t *testing.T) {
	k := kernels.NewHotspot(16, 16, 5, 7)
	seen := 0
	x := NewMulti(k, []*Pool{{Name: "a", Workers: 1}, {Name: "b", Workers: 1}},
		MultiConfig{OnIteration: func(MultiIterationStat) { seen++ }})
	x.Run()
	if seen != 5 {
		t.Errorf("observer fired %d times, want 5", seen)
	}
}

func TestMultiSplitCountsSumToItems(t *testing.T) {
	k := kernels.NewHotspot(16, 16, 3, 9)
	x := NewMulti(k, []*Pool{
		{Name: "a", Workers: 1}, {Name: "b", Workers: 1}, {Name: "c", Workers: 1},
	}, MultiConfig{})
	rep := x.Run()
	for _, it := range rep.Iterations {
		sum := 0
		for _, c := range it.Counts {
			sum += c
		}
		if sum != it.Items {
			t.Errorf("iteration %d: counts sum to %d, want %d", it.Index, sum, it.Items)
		}
	}
}

func TestMultiImbalanceEmpty(t *testing.T) {
	rep := &MultiReport{}
	if rep.Imbalance() != 0 {
		t.Error("empty report imbalance should be 0")
	}
}

func TestMultiBFSVaryingFrontier(t *testing.T) {
	b := kernels.NewBFS(2500, 3, 11)
	x := NewMulti(b, []*Pool{
		{Name: "a", Workers: 2}, {Name: "b", Workers: 2}, {Name: "c", Workers: 2},
	}, MultiConfig{})
	x.Run()
	want := b.ReferenceDistances()
	for v := 0; v < 2500; v++ {
		if int32(b.Distance(v)) != want[v] {
			t.Fatalf("distance(%d) = %d, want %d", v, b.Distance(v), want[v])
		}
	}
}

func TestMultiEnergyModel(t *testing.T) {
	k := kernels.NewHotspot(32, 32, 8, 13)
	x := NewMulti(k, []*Pool{
		{Name: "a", Workers: 1, ItemDelay: 200 * time.Microsecond},
		{Name: "b", Workers: 1, ItemDelay: 100 * time.Microsecond},
	}, MultiConfig{Energy: []PoolPower{{Busy: 100, Idle: 50}, {Busy: 140, Idle: 80}}})
	rep := x.Run()
	if rep.Energy <= 0 {
		t.Fatal("no energy modelled")
	}
	want := units.Power(100).Over(rep.Busy[0]) + units.Power(50).Over(rep.Wait[0]) +
		units.Power(140).Over(rep.Busy[1]) + units.Power(80).Over(rep.Wait[1])
	if math.Abs(float64(rep.Energy-want)) > 1e-9 {
		t.Errorf("Energy = %v, want %v", rep.Energy, want)
	}
}

func TestMultiEnergyModelWrongLengthPanics(t *testing.T) {
	k := kernels.NewHotspot(8, 8, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMulti(k, []*Pool{{Name: "a", Workers: 1}, {Name: "b", Workers: 1}},
		MultiConfig{Energy: []PoolPower{{Busy: 1, Idle: 1}}})
}
