package hetero

import (
	"math"
	"testing"
	"time"

	"greengpu/internal/division"
	"greengpu/internal/kernels"
	"greengpu/internal/units"
)

func TestPoolValidate(t *testing.T) {
	good := &Pool{Name: "cpu", Workers: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid pool rejected: %v", err)
	}
	if err := (&Pool{Name: "x", Workers: 0}).Validate(); err == nil {
		t.Error("zero workers accepted")
	}
	if err := (&Pool{Name: "x", Workers: 1, ItemDelay: -1}).Validate(); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestPoolProcessCorrectness(t *testing.T) {
	// Results must match the serial reference regardless of pool width.
	a := kernels.NewKMeans(300, 4, 2, 15, 5)
	b := kernels.NewKMeans(300, 4, 2, 15, 5)
	kernels.RunSerial(a)

	pool := &Pool{Name: "p", Workers: 4}
	for {
		parts := pool.Process(b, 0, b.Items())
		if !b.EndIteration(parts) {
			break
		}
	}
	ca, cb := a.Centroids(), b.Centroids()
	for i := range ca {
		if math.Abs(ca[i]-cb[i]) > 1e-9 {
			t.Fatalf("centroid %d differs: %v vs %v", i, ca[i], cb[i])
		}
	}
}

func TestPoolProcessEmptyRange(t *testing.T) {
	k := kernels.NewHotspot(8, 8, 2, 1)
	pool := &Pool{Name: "p", Workers: 2}
	if parts := pool.Process(k, 3, 3); parts != nil {
		t.Errorf("empty range returned partials: %v", parts)
	}
}

func TestExecutorRunsKernelToCompletion(t *testing.T) {
	k := kernels.NewHotspot(32, 32, 12, 3)
	x := New(k,
		&Pool{Name: "cpu", Workers: 1},
		&Pool{Name: "acc", Workers: 4},
		Config{})
	rep := x.Run()
	if k.Step() != 12 {
		t.Errorf("kernel ran %d steps, want 12", k.Step())
	}
	if len(rep.Iterations) != 12 {
		t.Errorf("report has %d iterations, want 12", len(rep.Iterations))
	}
	if rep.Kernel != "hotspot" {
		t.Errorf("kernel name %q", rep.Kernel)
	}
	if rep.TotalWall <= 0 {
		t.Error("no wall time recorded")
	}
}

func TestExecutorResultsMatchSerial(t *testing.T) {
	// Division must not change the computed answer.
	serial := kernels.NewPathFinder(120, 240, 9)
	kernels.RunSerial(serial)

	split := kernels.NewPathFinder(120, 240, 9)
	x := New(split,
		&Pool{Name: "cpu", Workers: 2},
		&Pool{Name: "acc", Workers: 4},
		Config{})
	x.Run()
	if split.BestCost() != serial.BestCost() {
		t.Errorf("divided run cost %d != serial %d", split.BestCost(), serial.BestCost())
	}
}

func TestExecutorRebalancesTowardFasterPool(t *testing.T) {
	// The CPU pool is made 4x slower per item; the divider must shrink
	// the CPU share from the 30% start toward ~1/5 = 20%.
	k := kernels.NewHotspot(64, 64, 40, 7)
	x := New(k,
		&Pool{Name: "cpu", Workers: 1, ItemDelay: 800 * time.Microsecond},
		&Pool{Name: "acc", Workers: 1, ItemDelay: 200 * time.Microsecond},
		Config{})
	rep := x.Run()
	if rep.FinalRatio >= 0.30 {
		t.Errorf("final CPU share %.2f did not shrink from 0.30", rep.FinalRatio)
	}
	if rep.FinalRatio < 0.05 || rep.FinalRatio > 0.30 {
		t.Errorf("final CPU share %.2f outside the plausible band around 0.20", rep.FinalRatio)
	}
}

func TestExecutorMaxIterations(t *testing.T) {
	k := kernels.NewHotspot(16, 16, 100, 11)
	x := New(k, &Pool{Name: "cpu", Workers: 1}, &Pool{Name: "acc", Workers: 2},
		Config{MaxIterations: 5})
	rep := x.Run()
	if len(rep.Iterations) != 5 {
		t.Errorf("ran %d iterations, want 5", len(rep.Iterations))
	}
}

func TestExecutorEnergyModel(t *testing.T) {
	k := kernels.NewHotspot(32, 32, 10, 13)
	model := &EnergyModel{CPUBusy: 100, CPUIdle: 50, AccBusy: 120, AccIdle: 60}
	x := New(k,
		&Pool{Name: "cpu", Workers: 1, ItemDelay: 400 * time.Microsecond},
		&Pool{Name: "acc", Workers: 1, ItemDelay: 200 * time.Microsecond},
		Config{Energy: model})
	rep := x.Run()
	if rep.Energy <= 0 {
		t.Error("energy model produced nothing")
	}
	want := units.Power(100).Over(rep.CPUBusy) + units.Power(50).Over(rep.CPUWait) +
		units.Power(120).Over(rep.AccBusy) + units.Power(60).Over(rep.AccWait)
	if math.Abs(float64(rep.Energy-want)) > 1e-9 {
		t.Errorf("energy = %v, want %v", rep.Energy, want)
	}
}

func TestExecutorObserver(t *testing.T) {
	k := kernels.NewHotspot(16, 16, 4, 17)
	seen := 0
	x := New(k, &Pool{Name: "cpu", Workers: 1}, &Pool{Name: "acc", Workers: 1},
		Config{OnIteration: func(IterationStat) { seen++ }})
	x.Run()
	if seen != 4 {
		t.Errorf("observer fired %d times, want 4", seen)
	}
}

func TestExecutorHistoryAndRatio(t *testing.T) {
	k := kernels.NewHotspot(16, 16, 6, 19)
	x := New(k, &Pool{Name: "cpu", Workers: 1}, &Pool{Name: "acc", Workers: 1}, Config{})
	if r := x.Ratio(); r != 0.30 {
		t.Errorf("initial ratio %v", r)
	}
	x.Run()
	if len(x.History()) != 6 {
		t.Errorf("history has %d entries", len(x.History()))
	}
}

func TestExecutorCustomDivisionConfig(t *testing.T) {
	cfg := division.DefaultConfig()
	cfg.Initial = 0.5
	cfg.Step = 0.1
	k := kernels.NewHotspot(16, 16, 3, 23)
	x := New(k, &Pool{Name: "cpu", Workers: 1}, &Pool{Name: "acc", Workers: 1},
		Config{Division: cfg})
	if x.Ratio() != 0.5 {
		t.Errorf("custom initial ratio not applied: %v", x.Ratio())
	}
	x.Run()
}

func TestNewPanics(t *testing.T) {
	k := kernels.NewHotspot(8, 8, 1, 1)
	cases := []func(){
		func() { New(nil, &Pool{Name: "a", Workers: 1}, &Pool{Name: "b", Workers: 1}, Config{}) },
		func() { New(k, nil, &Pool{Name: "b", Workers: 1}, Config{}) },
		func() { New(k, &Pool{Name: "a", Workers: 0}, &Pool{Name: "b", Workers: 1}, Config{}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestReportBalance(t *testing.T) {
	rep := &Report{Iterations: []IterationStat{
		{TCPU: 100 * time.Millisecond, TAcc: 80 * time.Millisecond, Wall: 100 * time.Millisecond},
	}}
	if got := rep.Balance(); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("Balance = %v, want 0.2", got)
	}
	empty := &Report{}
	if empty.Balance() != 0 {
		t.Error("empty report balance should be 0")
	}
}

func TestBFSWithVaryingItems(t *testing.T) {
	// bfs frontiers change size every level; the executor must re-query
	// Items each iteration and still match the reference distances.
	b := kernels.NewBFS(3000, 3, 29)
	x := New(b, &Pool{Name: "cpu", Workers: 2}, &Pool{Name: "acc", Workers: 4}, Config{})
	x.Run()
	want := b.ReferenceDistances()
	for v := 0; v < 3000; v++ {
		if int32(b.Distance(v)) != want[v] {
			t.Fatalf("distance(%d) = %d, want %d", v, b.Distance(v), want[v])
		}
	}
}
