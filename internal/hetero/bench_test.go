package hetero

import (
	"testing"

	"greengpu/internal/kernels"
)

// BenchmarkExecutorHotspot measures a full divided hotspot run: pool
// dispatch, chunk merge, division decisions.
func BenchmarkExecutorHotspot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := kernels.NewHotspot(128, 128, 20, uint64(i)+1)
		x := New(k, &Pool{Name: "cpu", Workers: 2}, &Pool{Name: "acc", Workers: 4}, Config{})
		x.Run()
	}
}

// BenchmarkPoolDispatch measures the pool's per-iteration goroutine
// fan-out/fan-in overhead on a tiny kernel — the division tier's fixed
// cost per barrier.
func BenchmarkPoolDispatch(b *testing.B) {
	k := kernels.NewHotspot(8, 8, 1<<30, 1)
	p := &Pool{Name: "p", Workers: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Process(k, 0, k.Items())
	}
}

// BenchmarkMultiExecutor measures a 3-way divided run.
func BenchmarkMultiExecutor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := kernels.NewHotspot(96, 96, 15, uint64(i)+1)
		x := NewMulti(k, []*Pool{
			{Name: "a", Workers: 2}, {Name: "b", Workers: 2}, {Name: "c", Workers: 2},
		}, MultiConfig{})
		x.Run()
	}
}
