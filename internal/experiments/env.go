// Package experiments regenerates every table and figure of the GreenGPU
// evaluation (paper §III and §VII) on the simulated testbed. Each
// experiment has a typed runner returning structured results plus a
// rendering helper producing the rows/series the paper reports.
//
// Experiment index:
//
//	Fig1    — exec time / energy vs per-domain frequency (nbody, SC)
//	Fig2    — system energy vs static CPU share (kmeans)
//	Fig5    — DVFS trace on streamcluster vs best-performance
//	Fig6    — frequency-scaling savings per workload (a: GPU energy,
//	          b: dynamic energy + exec time, c: CPU+GPU emulation)
//	Fig7    — workload-division convergence traces (kmeans, hotspot)
//	Fig8    — holistic vs single-tier per-iteration energy traces
//	Table2  — workload characterization
//	Sweep   — §VII-B static-division optimality study
//	Ablations — parameter sensitivity studies from DESIGN.md §6
package experiments

import (
	"context"

	"greengpu/internal/bus"
	"greengpu/internal/core"
	"greengpu/internal/cpusim"
	"greengpu/internal/faultinject"
	"greengpu/internal/gpusim"
	"greengpu/internal/parallel"
	"greengpu/internal/runcache"
	"greengpu/internal/testbed"
	"greengpu/internal/workload"
)

// Env carries the device configurations and calibrated workloads every
// experiment runs against.
//
// An Env is safe for concurrent use: the configurations and profiles are
// immutable after construction, and every run assembles its own fresh
// machine (see Machine). Experiments exploit this by fanning independent
// points out over a worker pool bounded by Jobs.
type Env struct {
	GPUConfig gpusim.Config
	CPUConfig cpusim.Config
	BusConfig bus.Config
	Profiles  []*workload.Profile

	// Jobs bounds how many experiment points run concurrently when an
	// experiment fans out over independent runs. 0 selects one worker per
	// available CPU; 1 forces sequential execution. Results are identical
	// for every value — each point runs on its own fresh machine with
	// per-task deterministic seeding — so Jobs only trades wall-clock
	// time for cores.
	Jobs int

	// FaultPlan, when non-nil, is the chaos-mode ambient fault plan: every
	// run whose configuration does not carry its own plan injects this one
	// (cmd/experiments -faults default). Per-point configs always win, so
	// studies that sweep explicit plans — the resilience study, the
	// sensor-noise ablation — are unaffected. Outputs remain byte-identical
	// at any Jobs value: the plan is plain data, fingerprinted into each
	// point's cache key, and injection inside a run is seed-deterministic.
	FaultPlan *faultinject.Plan

	// Cache, when non-nil, memoizes simulation points by content-addressed
	// fingerprint: repeated points (the best-performance baseline alone is
	// requested by Fig. 6, Fig. 8, two ablations, and three extension
	// studies) simulate once and replay from the cache, and concurrent
	// requests for the same point single-flight onto one computation.
	// Because every run is deterministic and cached results are returned
	// as private deep copies, results are bit-identical with the cache on
	// or off, cold or warm. Runs whose configuration carries observers,
	// filters, or custom policies bypass the cache (see
	// runcache.Cacheable). Derived environments share this cache: points
	// are keyed by their full device configs and recalibrated profile, so
	// an identically-configured derived env hits, a different one cannot
	// collide.
	Cache *runcache.Cache
}

// NewEnv builds the default environment: the paper's testbed devices and
// the nine Table II workloads.
func NewEnv() (*Env, error) {
	return NewEnvFrom(testbed.GeForce8800GTX(), testbed.PhenomIIX2(), testbed.PCIe())
}

// NewEnvFrom builds an environment from explicit device configurations,
// recalibrating all workloads against them.
func NewEnvFrom(gpu gpusim.Config, cpu cpusim.Config, b bus.Config) (*Env, error) {
	profiles, err := workload.Rodinia(gpu, cpu)
	if err != nil {
		return nil, err
	}
	return &Env{GPUConfig: gpu, CPUConfig: cpu, BusConfig: b, Profiles: profiles}, nil
}

// Machine assembles a fresh testbed. Every run gets its own machine so the
// exact energy accounting always starts from zero.
func (e *Env) Machine() *testbed.Machine {
	return testbed.NewFrom(e.GPUConfig, e.CPUConfig, e.BusConfig)
}

// Profile returns the named calibrated workload.
func (e *Env) Profile(name string) (*workload.Profile, error) {
	return workload.ByName(e.Profiles, name)
}

// baselineConfig is the best-performance baseline every comparison in the
// suite measures against. The contract (paper §VII: the stock driver's
// performance governor): all frequency domains pinned at their highest
// levels, no DVFS, no workload division — the fastest, most
// energy-hungry way to run the workload. iters == 0 runs the profile's
// calibrated iteration count; Fig. 5 passes an explicit shortened count.
// Every figure, ablation, and extension study must compare against this
// exact configuration, never a local variant — which also makes the
// baseline a maximally shared cache point.
func baselineConfig(iters int) core.Config {
	cfg := core.DefaultConfig(core.Baseline)
	cfg.Iterations = iters
	return cfg
}

// scalingConfig is the frequency-scaling tier (tier 2 alone: GPU DVFS at
// the paper's 3 s interval, no workload division), the second most shared
// configuration in the suite.
func scalingConfig() core.Config {
	return core.DefaultConfig(core.FreqScaling)
}

// run executes a profile on a fresh machine, propagating errors. Points go
// through the run cache when one is attached.
func (e *Env) run(name string, cfg core.Config) (*core.Result, error) {
	p, err := e.Profile(name)
	if err != nil {
		return nil, err
	}
	return e.runPoint(e.GPUConfig, e.CPUConfig, e.BusConfig, p, cfg)
}

// runPoint executes one simulation point on a fresh machine assembled from
// explicit device configurations, consulting the cache when possible. It is
// the choke point every cacheable run funnels through: callers that build
// custom machines (e.g. the CPU-capability sweep) use it directly so their
// points share the suite-wide cache too.
//
// The fresh-machine-per-point contract: a point is a pure function of
// (device configs, profile, core config), so each one gets its own machine
// built from plain-value configs — never a shared or reused machine, whose
// accumulated meter state would leak between points and break bitwise
// reproducibility.
func (e *Env) runPoint(gpu gpusim.Config, cpu cpusim.Config, b bus.Config, p *workload.Profile, cfg core.Config) (*core.Result, error) {
	e.applyFaultPlan(&cfg)
	if e.Cache == nil || !runcache.Cacheable(&cfg) {
		return core.Run(testbed.NewFrom(gpu, cpu, b), p, cfg)
	}
	key := runcache.KeyOf(&gpu, &cpu, &b, p, &cfg, "")
	v, err := e.Cache.Do(key, func() (runcache.Value, error) {
		r, err := core.Run(testbed.NewFrom(gpu, cpu, b), p, cfg)
		return runcache.Value{Result: r}, err
	})
	if err != nil {
		return nil, err
	}
	return v.Result, nil
}

// runMeteredGPU is run with the GPU card power meter attached, returning
// the per-sample power trace in watts alongside the result. Metered runs
// are fingerprinted under a distinct variant so they never share a cache
// entry with plain runs of the same configuration.
func (e *Env) runMeteredGPU(name string, cfg core.Config) (*core.Result, []float64, error) {
	p, err := e.Profile(name)
	if err != nil {
		return nil, nil, err
	}
	e.applyFaultPlan(&cfg)
	compute := func() (runcache.Value, error) {
		m := e.Machine()
		m.MeterGPU.Start()
		r, err := core.Run(m, p, cfg)
		if err != nil {
			return runcache.Value{}, err
		}
		m.MeterGPU.Stop()
		samples := m.MeterGPU.Samples()
		power := make([]float64, len(samples))
		for i, s := range samples {
			power[i] = s.Power.Watts()
		}
		return runcache.Value{Result: r, GPUPower: power}, nil
	}
	if e.Cache == nil || !runcache.Cacheable(&cfg) {
		v, err := compute()
		return v.Result, v.GPUPower, err
	}
	key := runcache.KeyOf(&e.GPUConfig, &e.CPUConfig, &e.BusConfig, p, &cfg, "gpu-meter")
	v, err := e.Cache.Do(key, compute)
	if err != nil {
		return nil, nil, err
	}
	return v.Result, v.GPUPower, nil
}

// applyFaultPlan installs the chaos-mode ambient plan on configurations
// that do not carry their own. Both run choke points (runPoint,
// runMeteredGPU) call it before cacheability is decided, so chaos runs are
// fingerprinted under the plan they actually executed.
func (e *Env) applyFaultPlan(cfg *core.Config) {
	if cfg.FaultPlan == nil && e.FaultPlan != nil {
		cfg.FaultPlan = e.FaultPlan
	}
}

// derive builds an environment from explicit device configurations like
// NewEnvFrom, carrying over this environment's execution settings (Jobs,
// Cache, chaos FaultPlan). Studies that recalibrate against other devices
// use it so one Jobs knob and one cache govern the whole experiment tree.
func (e *Env) derive(gpu gpusim.Config, cpu cpusim.Config, b bus.Config) (*Env, error) {
	env2, err := NewEnvFrom(gpu, cpu, b)
	if err != nil {
		return nil, err
	}
	env2.Jobs = e.Jobs
	env2.Cache = e.Cache
	env2.FaultPlan = e.FaultPlan
	return env2, nil
}

// mapPoints fans fn out over the items on the environment's worker pool,
// returning the results in input order. It is the single scheduling choke
// point of the experiments layer: every figure/table fan-out goes through
// it, so Jobs bounds concurrency uniformly and error selection is
// deterministic (lowest failing index wins, as in parallel.Map).
//
// fn must follow the fresh-machine contract: build all mutable state (the
// machine, policies, PRNGs) inside the task, from plain-value inputs.
func mapPoints[T, R any](e *Env, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	return parallel.Map(context.Background(), items,
		func(_ context.Context, i int, item T) (R, error) { return fn(i, item) },
		parallel.Workers(e.Jobs))
}
