// Package experiments regenerates every table and figure of the GreenGPU
// evaluation (paper §III and §VII) on the simulated testbed. Each
// experiment has a typed runner returning structured results plus a
// rendering helper producing the rows/series the paper reports.
//
// Experiment index:
//
//	Fig1    — exec time / energy vs per-domain frequency (nbody, SC)
//	Fig2    — system energy vs static CPU share (kmeans)
//	Fig5    — DVFS trace on streamcluster vs best-performance
//	Fig6    — frequency-scaling savings per workload (a: GPU energy,
//	          b: dynamic energy + exec time, c: CPU+GPU emulation)
//	Fig7    — workload-division convergence traces (kmeans, hotspot)
//	Fig8    — holistic vs single-tier per-iteration energy traces
//	Table2  — workload characterization
//	Sweep   — §VII-B static-division optimality study
//	Ablations — parameter sensitivity studies from DESIGN.md §6
package experiments

import (
	"context"

	"greengpu/internal/bus"
	"greengpu/internal/core"
	"greengpu/internal/cpusim"
	"greengpu/internal/gpusim"
	"greengpu/internal/parallel"
	"greengpu/internal/testbed"
	"greengpu/internal/workload"
)

// Env carries the device configurations and calibrated workloads every
// experiment runs against.
//
// An Env is safe for concurrent use: the configurations and profiles are
// immutable after construction, and every run assembles its own fresh
// machine (see Machine). Experiments exploit this by fanning independent
// points out over a worker pool bounded by Jobs.
type Env struct {
	GPUConfig gpusim.Config
	CPUConfig cpusim.Config
	BusConfig bus.Config
	Profiles  []*workload.Profile

	// Jobs bounds how many experiment points run concurrently when an
	// experiment fans out over independent runs. 0 selects one worker per
	// available CPU; 1 forces sequential execution. Results are identical
	// for every value — each point runs on its own fresh machine with
	// per-task deterministic seeding — so Jobs only trades wall-clock
	// time for cores.
	Jobs int
}

// NewEnv builds the default environment: the paper's testbed devices and
// the nine Table II workloads.
func NewEnv() (*Env, error) {
	return NewEnvFrom(testbed.GeForce8800GTX(), testbed.PhenomIIX2(), testbed.PCIe())
}

// NewEnvFrom builds an environment from explicit device configurations,
// recalibrating all workloads against them.
func NewEnvFrom(gpu gpusim.Config, cpu cpusim.Config, b bus.Config) (*Env, error) {
	profiles, err := workload.Rodinia(gpu, cpu)
	if err != nil {
		return nil, err
	}
	return &Env{GPUConfig: gpu, CPUConfig: cpu, BusConfig: b, Profiles: profiles}, nil
}

// Machine assembles a fresh testbed. Every run gets its own machine so the
// exact energy accounting always starts from zero.
func (e *Env) Machine() *testbed.Machine {
	return testbed.NewFrom(e.GPUConfig, e.CPUConfig, e.BusConfig)
}

// Profile returns the named calibrated workload.
func (e *Env) Profile(name string) (*workload.Profile, error) {
	return workload.ByName(e.Profiles, name)
}

// run executes a profile on a fresh machine, propagating errors.
func (e *Env) run(name string, cfg core.Config) (*core.Result, error) {
	p, err := e.Profile(name)
	if err != nil {
		return nil, err
	}
	return core.Run(e.Machine(), p, cfg)
}

// derive builds an environment from explicit device configurations like
// NewEnvFrom, carrying over this environment's execution settings (Jobs).
// Studies that recalibrate against other devices use it so one Jobs knob
// governs the whole experiment tree.
func (e *Env) derive(gpu gpusim.Config, cpu cpusim.Config, b bus.Config) (*Env, error) {
	env2, err := NewEnvFrom(gpu, cpu, b)
	if err != nil {
		return nil, err
	}
	env2.Jobs = e.Jobs
	return env2, nil
}

// mapPoints fans fn out over the items on the environment's worker pool,
// returning the results in input order. It is the single scheduling choke
// point of the experiments layer: every figure/table fan-out goes through
// it, so Jobs bounds concurrency uniformly and error selection is
// deterministic (lowest failing index wins, as in parallel.Map).
//
// fn must follow the fresh-machine contract: build all mutable state (the
// machine, policies, PRNGs) inside the task, from plain-value inputs.
func mapPoints[T, R any](e *Env, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	return parallel.Map(context.Background(), items,
		func(_ context.Context, i int, item T) (R, error) { return fn(i, item) },
		parallel.Workers(e.Jobs))
}
