package experiments

import (
	"fmt"
	"time"

	"greengpu/internal/core"
	"greengpu/internal/cpusim"
	"greengpu/internal/division"
	"greengpu/internal/dvfs"
	"greengpu/internal/testbed"
	"greengpu/internal/trace"
	"greengpu/internal/units"
	"greengpu/internal/workload"
)

// This file holds the extension studies beyond the paper's evaluation:
// the Qilin-style divider comparison (§V-B's integration point made
// concrete), genuine asynchronous-communication runs validating the
// paper's Fig. 6c emulation methodology, actuator fault injection, and a
// device-portability check on a second GPU generation.

// DividerRow compares one division policy's outcome on one workload.
type DividerRow struct {
	Workload string
	Policy   string
	// ConvergedAfter is the first iteration after which the ratio stayed
	// fixed.
	ConvergedAfter int
	FinalRatio     float64
	Energy         units.Energy
	ExecTime       time.Duration
}

// DividerComparison runs the paper's step heuristic and the Qilin-style
// adaptive mapper head-to-head under division-only mode. Every
// (workload, policy) pair is an independent run; each task builds its own
// policy instance, since division policies carry per-run learning state.
func (e *Env) DividerComparison(names ...string) ([]DividerRow, error) {
	type comparisonTask struct {
		workload string
		policy   string
	}
	var tasks []comparisonTask
	for _, name := range names {
		tasks = append(tasks,
			comparisonTask{name, "greengpu-step"},
			comparisonTask{name, "qilin-adaptive"})
	}
	return mapPoints(e, tasks, func(_ int, tk comparisonTask) (DividerRow, error) {
		cfg := core.DefaultConfig(core.Division)
		if tk.policy == "qilin-adaptive" {
			cfg.DivisionPolicy = division.NewQilin(division.DefaultQilinConfig())
		}
		r, err := e.run(tk.workload, cfg)
		if err != nil {
			return DividerRow{}, err
		}
		return DividerRow{
			Workload:       tk.workload,
			Policy:         tk.policy,
			ConvergedAfter: convergeIter(r.Iterations),
			FinalRatio:     r.FinalRatio,
			Energy:         r.Energy,
			ExecTime:       r.TotalTime,
		}, nil
	})
}

// DividerComparisonTable renders the comparison.
func DividerComparisonTable(rows []DividerRow) *trace.Table {
	t := trace.NewTable(
		"Extension — division policies head-to-head (division-only mode)",
		"workload", "policy", "converged after", "final cpu %", "energy (kJ)", "exec (s)")
	for _, r := range rows {
		t.AddRow(r.Workload, r.Policy,
			fmt.Sprintf("%d", r.ConvergedAfter),
			fmt.Sprintf("%.1f", r.FinalRatio*100),
			fmt.Sprintf("%.1f", r.Energy.Joules()/1e3),
			fmt.Sprintf("%.0f", r.ExecTime.Seconds()))
	}
	return t
}

// AsyncRow validates the Fig. 6c emulation for one workload: the paper
// replaces spin-wait CPU energy with lowest-P-state idle energy to
// predict what genuinely asynchronous GPU communication would save; we
// can actually run that configuration (blocking waits + ondemand
// throttling the truly idle CPU) and compare.
type AsyncRow struct {
	Workload string
	// SpinEnergy is the measured energy of the synchronous run.
	SpinEnergy units.Energy
	// EmulatedEnergy applies the paper's Fig. 6c substitution to it.
	EmulatedEnergy units.Energy
	// AsyncEnergy is the genuine blocking-wait run.
	AsyncEnergy units.Energy
	// EmulationError is (emulated − genuine) / genuine: positive means
	// the emulation is conservative (predicts less saving than real).
	EmulationError float64
}

// AsyncValidation runs the synchronous (spin-wait) and genuine
// asynchronous (blocking-wait) frequency-scaling configurations for each
// workload and scores the paper's emulation against the real thing.
func (e *Env) AsyncValidation(names ...string) ([]AsyncRow, error) {
	idle := e.cpuIdlePowerAtLowest()
	return mapPoints(e, names, func(_ int, name string) (AsyncRow, error) {
		sync, err := e.run(name, scalingConfig())
		if err != nil {
			return AsyncRow{}, err
		}
		acfg := scalingConfig()
		acfg.SpinWait = false
		async, err := e.run(name, acfg)
		if err != nil {
			return AsyncRow{}, err
		}
		row := AsyncRow{
			Workload:       name,
			SpinEnergy:     sync.Energy,
			EmulatedEnergy: sync.EmulatedEnergyCPUThrottled(idle),
			AsyncEnergy:    async.Energy,
		}
		row.EmulationError = float64(row.EmulatedEnergy)/float64(row.AsyncEnergy) - 1
		return row, nil
	})
}

// AsyncValidationTable renders the validation.
func AsyncValidationTable(rows []AsyncRow) *trace.Table {
	t := trace.NewTable(
		"Extension — Fig. 6c emulation vs genuine asynchronous communication",
		"workload", "sync (kJ)", "emulated (kJ)", "genuine async (kJ)", "emulation error %")
	for _, r := range rows {
		t.AddRow(r.Workload,
			fmt.Sprintf("%.1f", r.SpinEnergy.Joules()/1e3),
			fmt.Sprintf("%.1f", r.EmulatedEnergy.Joules()/1e3),
			fmt.Sprintf("%.1f", r.AsyncEnergy.Joules()/1e3),
			fmt.Sprintf("%+.2f", r.EmulationError*100))
	}
	return t
}

// FaultRow is one actuator-fault scenario's outcome.
type FaultRow struct {
	Scenario  string
	GPUSaving float64
	ExecDelta float64
}

// ActuatorFaults runs the frequency-scaling tier with injected actuator
// faults: a memory clock stuck at its boot level, a core clock that only
// reaches level 3, and a fully stuck actuator. The framework must degrade
// gracefully (bounded slowdown) in every scenario.
func (e *Env) ActuatorFaults(name string) ([]FaultRow, error) {
	base, err := e.run(name, baselineConfig(0))
	if err != nil {
		return nil, err
	}
	type faultScenario struct {
		name   string
		filter func(dvfs.Decision) dvfs.Decision
	}
	scenarios := []faultScenario{
		{"healthy", nil},
		{"mem stuck at boot level", func(d dvfs.Decision) dvfs.Decision {
			d.MemLevel = 0
			return d
		}},
		{"core capped at level 3", func(d dvfs.Decision) dvfs.Decision {
			if d.CoreLevel > 3 {
				d.CoreLevel = 3
			}
			return d
		}},
		{"both stuck at peak", func(d dvfs.Decision) dvfs.Decision {
			return dvfs.Decision{CoreLevel: 5, MemLevel: 5}
		}},
	}
	return mapPoints(e, scenarios, func(_ int, s faultScenario) (FaultRow, error) {
		cfg := scalingConfig()
		cfg.ActuatorFilter = s.filter
		r, err := e.run(name, cfg)
		if err != nil {
			return FaultRow{}, err
		}
		return FaultRow{
			Scenario:  s.name,
			GPUSaving: 1 - float64(r.EnergyGPU)/float64(base.EnergyGPU),
			ExecDelta: float64(r.TotalTime)/float64(base.TotalTime) - 1,
		}, nil
	})
}

// ActuatorFaultsTable renders the fault study.
func ActuatorFaultsTable(name string, rows []FaultRow) *trace.Table {
	t := trace.NewTable(
		fmt.Sprintf("Extension — actuator fault injection (%s, GPU-only)", name),
		"scenario", "gpu saving %", "exec delta %")
	for _, r := range rows {
		t.AddRow(r.Scenario,
			fmt.Sprintf("%.2f", r.GPUSaving*100),
			fmt.Sprintf("%+.2f", r.ExecDelta*100))
	}
	return t
}

// PortabilityRow summarizes the framework on one device configuration.
type PortabilityRow struct {
	Device           string
	AvgGPUSaving     float64
	AvgExecDelta     float64
	HolisticSaving   float64 // kmeans+hotspot average vs baseline
	KmeansConverged  float64
	HotspotConverged float64
}

// Portability recalibrates the whole workload set against a second GPU
// generation (a GTX 280-class part) and re-runs the headline experiments.
// The algorithms carry no device-specific constants besides their
// published tuning, so the savings should transfer.
func (e *Env) Portability() ([]PortabilityRow, error) {
	type deviceCase struct {
		name string
		env  func() (*Env, error)
	}
	devices := []deviceCase{
		{"GeForce 8800 GTX", func() (*Env, error) {
			return e.derive(testbed.GeForce8800GTX(), testbed.PhenomIIX2(), testbed.PCIe())
		}},
		{"GTX 280-class", func() (*Env, error) {
			return e.derive(testbed.GTX280(), testbed.PhenomIIX2(), testbed.PCIe())
		}},
	}
	return mapPoints(e, devices, func(_ int, d deviceCase) (PortabilityRow, error) {
		env, err := d.env()
		if err != nil {
			return PortabilityRow{}, err
		}
		fig6, err := env.Fig6()
		if err != nil {
			return PortabilityRow{}, err
		}
		row := PortabilityRow{
			Device:       d.name,
			AvgGPUSaving: fig6.Summary.AvgGPUSaving,
			AvgExecDelta: fig6.Summary.AvgExecDelta,
		}
		var sum float64
		for _, name := range []string{"kmeans", "hotspot"} {
			f8, err := env.Fig8(name)
			if err != nil {
				return PortabilityRow{}, err
			}
			sum += f8.SavingVsBaseline
		}
		row.HolisticSaving = sum / 2
		for _, name := range []string{"kmeans", "hotspot"} {
			f7, err := env.Fig7(name)
			if err != nil {
				return PortabilityRow{}, err
			}
			if name == "kmeans" {
				row.KmeansConverged = f7.ConvergedRatio
			} else {
				row.HotspotConverged = f7.ConvergedRatio
			}
		}
		return row, nil
	})
}

// PortabilityTable renders the cross-device study.
func PortabilityTable(rows []PortabilityRow) *trace.Table {
	t := trace.NewTable(
		"Extension — device portability (same algorithms, recalibrated workloads)",
		"device", "avg gpu saving %", "avg exec delta %", "holistic saving %", "kmeans cpu %", "hotspot cpu %")
	for _, r := range rows {
		t.AddRow(r.Device,
			fmt.Sprintf("%.2f", r.AvgGPUSaving*100),
			fmt.Sprintf("%.2f", r.AvgExecDelta*100),
			fmt.Sprintf("%.2f", r.HolisticSaving*100),
			fmt.Sprintf("%.0f", r.KmeansConverged*100),
			fmt.Sprintf("%.0f", r.HotspotConverged*100))
	}
	return t
}

// Fixed8Row compares tier 2 on the float weight table vs the §VI 8-bit
// fixed-point table for one workload.
type Fixed8Row struct {
	Workload       string
	SavingFloat    float64
	SavingFixed8   float64
	ExecDeltaFloat float64
	ExecDeltaFixed float64
}

// Fixed8Comparison validates the paper's on-chip implementation argument:
// running the whole frequency-scaling tier on 8-bit weights should match
// the float implementation's savings within a fraction of a percent.
func (e *Env) Fixed8Comparison() ([]Fixed8Row, error) {
	return mapPoints(e, e.Profiles, func(_ int, p *workload.Profile) (Fixed8Row, error) {
		base, err := e.run(p.Name, baselineConfig(0))
		if err != nil {
			return Fixed8Row{}, err
		}
		fl, err := e.run(p.Name, scalingConfig())
		if err != nil {
			return Fixed8Row{}, err
		}
		fcfg := scalingConfig()
		fcfg.Fixed8Scaler = true
		fx, err := e.run(p.Name, fcfg)
		if err != nil {
			return Fixed8Row{}, err
		}
		return Fixed8Row{
			Workload:       p.Name,
			SavingFloat:    1 - float64(fl.EnergyGPU)/float64(base.EnergyGPU),
			SavingFixed8:   1 - float64(fx.EnergyGPU)/float64(base.EnergyGPU),
			ExecDeltaFloat: float64(fl.TotalTime)/float64(base.TotalTime) - 1,
			ExecDeltaFixed: float64(fx.TotalTime)/float64(base.TotalTime) - 1,
		}, nil
	})
}

// Fixed8ComparisonTable renders the hardware-precision study.
func Fixed8ComparisonTable(rows []Fixed8Row) *trace.Table {
	t := trace.NewTable(
		"Extension — §VI on-chip sketch: float64 vs 8-bit fixed-point weight table",
		"workload", "float saving %", "fixed8 saving %", "float exec %", "fixed8 exec %")
	for _, r := range rows {
		t.AddRow(r.Workload,
			fmt.Sprintf("%.2f", r.SavingFloat*100),
			fmt.Sprintf("%.2f", r.SavingFixed8*100),
			fmt.Sprintf("%+.2f", r.ExecDeltaFloat*100),
			fmt.Sprintf("%+.2f", r.ExecDeltaFixed*100))
	}
	return t
}

// CPURow is one processor variant's division outcome.
type CPURow struct {
	CPU            string
	Workload       string
	ConvergedShare float64
	Energy         units.Energy
	ExecTime       time.Duration
}

// CPUCapability keeps the workloads fixed (calibrated against the paper's
// dual-core testbed) and swaps in a quad-core processor: with twice the
// CPU throughput the balanced division point must shift toward larger CPU
// shares (kmeans: 1/(1+4) = 20% on the X2 vs 1/(1+2) ≈ 33% on the X4),
// and the division tier must find the new point without retuning.
func (e *Env) CPUCapability(names ...string) ([]CPURow, error) {
	type cpuCase struct {
		label    string
		cfg      func() cpusim.Config
		workload string
	}
	var tasks []cpuCase
	for _, c := range []cpuCase{
		{label: "Phenom II X2 (2 cores)", cfg: testbed.PhenomIIX2},
		{label: "Phenom II X4 (4 cores)", cfg: testbed.PhenomIIX4},
	} {
		for _, name := range names {
			tasks = append(tasks, cpuCase{label: c.label, cfg: c.cfg, workload: name})
		}
	}
	return mapPoints(e, tasks, func(_ int, tk cpuCase) (CPURow, error) {
		p, err := e.Profile(tk.workload)
		if err != nil {
			return CPURow{}, err
		}
		r, err := e.runPoint(e.GPUConfig, tk.cfg(), e.BusConfig, p, core.DefaultConfig(core.Division))
		if err != nil {
			return CPURow{}, err
		}
		return CPURow{
			CPU:            tk.label,
			Workload:       tk.workload,
			ConvergedShare: r.FinalRatio,
			Energy:         r.Energy,
			ExecTime:       r.TotalTime,
		}, nil
	})
}

// CPUCapabilityTable renders the processor sweep.
func CPUCapabilityTable(rows []CPURow) *trace.Table {
	t := trace.NewTable(
		"Extension — CPU capability sweep (division-only; workloads calibrated on the X2)",
		"processor", "workload", "converged cpu %", "energy (kJ)", "exec (s)")
	for _, r := range rows {
		t.AddRow(r.CPU, r.Workload,
			fmt.Sprintf("%.0f", r.ConvergedShare*100),
			fmt.Sprintf("%.1f", r.Energy.Joules()/1e3),
			fmt.Sprintf("%.0f", r.ExecTime.Seconds()))
	}
	return t
}

// SMRow compares energy-management strategies on a gatable device for one
// workload: GreenGPU's frequency scaling, Hong & Kim-style core-count
// throttling, and both combined (the Lee et al. direction).
type SMRow struct {
	Workload       string
	FreqSaving     float64
	SMSaving       float64
	CombinedSaving float64
	FreqExecDelta  float64
	SMExecDelta    float64
}

// SMComparison runs the frequency-vs-core-count comparison on a GTX 280-
// class device with 80% of core-domain power gatable per SM. The G80
// testbed card cannot gate SMs, so this study — like the paper's related
// work it quantifies — lives on the newer device generation.
func (e *Env) SMComparison() ([]SMRow, error) {
	gcfg := testbed.GTX280()
	gcfg.Power.CoreGatable = 0.8
	env2, err := e.derive(gcfg, e.CPUConfig, e.BusConfig)
	if err != nil {
		return nil, err
	}

	peakPin := func(d dvfs.Decision) dvfs.Decision {
		n := len(gcfg.CoreLevels)
		m := len(gcfg.MemLevels)
		return dvfs.Decision{CoreLevel: n - 1, MemLevel: m - 1}
	}
	peakLevels := &core.Levels{
		Core: len(gcfg.CoreLevels) - 1,
		Mem:  len(gcfg.MemLevels) - 1,
		CPU:  len(e.CPUConfig.PStates) - 1,
	}

	return mapPoints(env2, env2.Profiles, func(_ int, p *workload.Profile) (SMRow, error) {
		base, err := env2.run(p.Name, baselineConfig(0))
		if err != nil {
			return SMRow{}, err
		}

		// Frequency scaling only (GreenGPU tier 2).
		freq, err := env2.run(p.Name, scalingConfig())
		if err != nil {
			return SMRow{}, err
		}

		// Core-count scaling only: clocks pinned at peak, SM policy on.
		smCfg := scalingConfig()
		smCfg.SMScaling = true
		smCfg.ActuatorFilter = peakPin
		smCfg.InitialLevels = peakLevels
		sm, err := env2.run(p.Name, smCfg)
		if err != nil {
			return SMRow{}, err
		}

		// Both knobs.
		bothCfg := scalingConfig()
		bothCfg.SMScaling = true
		both, err := env2.run(p.Name, bothCfg)
		if err != nil {
			return SMRow{}, err
		}

		return SMRow{
			Workload:       p.Name,
			FreqSaving:     1 - float64(freq.EnergyGPU)/float64(base.EnergyGPU),
			SMSaving:       1 - float64(sm.EnergyGPU)/float64(base.EnergyGPU),
			CombinedSaving: 1 - float64(both.EnergyGPU)/float64(base.EnergyGPU),
			FreqExecDelta:  float64(freq.TotalTime)/float64(base.TotalTime) - 1,
			SMExecDelta:    float64(sm.TotalTime)/float64(base.TotalTime) - 1,
		}, nil
	})
}

// SMComparisonTable renders the strategy comparison.
func SMComparisonTable(rows []SMRow) *trace.Table {
	t := trace.NewTable(
		"Extension — frequency scaling vs SM-count throttling (GTX 280-class, 80% gatable)",
		"workload", "freq saving %", "sm saving %", "combined saving %", "freq exec %", "sm exec %")
	for _, r := range rows {
		t.AddRow(r.Workload,
			fmt.Sprintf("%.2f", r.FreqSaving*100),
			fmt.Sprintf("%.2f", r.SMSaving*100),
			fmt.Sprintf("%.2f", r.CombinedSaving*100),
			fmt.Sprintf("%+.2f", r.FreqExecDelta*100),
			fmt.Sprintf("%+.2f", r.SMExecDelta*100))
	}
	return t
}
