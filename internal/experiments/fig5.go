package experiments

import (
	"fmt"
	"time"

	"greengpu/internal/core"
	"greengpu/internal/dvfs"
	"greengpu/internal/trace"
	"greengpu/internal/units"
)

// Fig5Sample is one scaling interval of the Fig. 5 trace.
type Fig5Sample struct {
	At       time.Duration
	CoreUtil float64
	MemUtil  float64
	CoreMHz  float64
	MemMHz   float64
}

// Fig5Result is the Fig. 5 trace: the frequency-scaling tier following the
// utilizations of a fluctuating workload, plus the power/time comparison
// against the best-performance baseline.
type Fig5Result struct {
	Workload string
	Samples  []Fig5Sample

	// Power traces sampled at 1 Hz by meter 2 (the GPU card meter),
	// for the scaled run and the best-performance baseline.
	PowerScaled []float64
	PowerBase   []float64

	ExecScaled time.Duration
	ExecBase   time.Duration

	AvgPowerScaled units.Power
	AvgPowerBase   units.Power

	EnergyScaled units.Energy
	EnergyBase   units.Energy
}

// Fig5 reproduces the frequency-scaling trace run (§VII-A, Fig. 5) on
// streamcluster: tier 2 active with the paper's 3 s interval, workload
// division disabled, starting from the card's default lowest clocks.
func (e *Env) Fig5() (*Fig5Result, error) {
	const name = "streamcluster"
	res := &Fig5Result{Workload: name}

	// Scaled run, with the DVFS observer recording the trace. The
	// observer closes over the machine (it reads live frequency tables),
	// so this run is inherently non-cacheable and stays a raw core.Run.
	p, err := e.Profile(name)
	if err != nil {
		return nil, err
	}
	m := e.Machine()
	gpu := m.GPU
	m.MeterGPU.Start()
	cfgRun := core.DefaultConfig(core.FreqScaling)
	cfgRun.Iterations = 6
	cfgRun.OnDVFS = func(at time.Duration, uc, um float64, d dvfs.Decision) {
		res.Samples = append(res.Samples, Fig5Sample{
			At:       at,
			CoreUtil: uc,
			MemUtil:  um,
			CoreMHz:  gpu.CoreLevels()[d.CoreLevel].MHz(),
			MemMHz:   gpu.MemLevels()[d.MemLevel].MHz(),
		})
	}
	scaled, err := core.Run(m, p, cfgRun)
	if err != nil {
		return nil, err
	}
	m.MeterGPU.Stop()
	for _, s := range m.MeterGPU.Samples() {
		res.PowerScaled = append(res.PowerScaled, s.Power.Watts())
	}
	res.ExecScaled = scaled.TotalTime
	res.EnergyScaled = scaled.EnergyGPU
	res.AvgPowerScaled = scaled.EnergyGPU.Div(scaled.TotalTime)

	// Best-performance baseline, with the power trace captured through
	// the metered cache variant.
	base, powerBase, err := e.runMeteredGPU(name, baselineConfig(6))
	if err != nil {
		return nil, err
	}
	res.PowerBase = powerBase
	res.ExecBase = base.TotalTime
	res.EnergyBase = base.EnergyGPU
	res.AvgPowerBase = base.EnergyGPU.Div(base.TotalTime)
	return res, nil
}

// Table renders the DVFS trace (Fig. 5a/5b).
func (r *Fig5Result) Table() *trace.Table {
	t := trace.NewTable(
		fmt.Sprintf("Fig. 5 — frequency-scaling trace on %s (exec %.0fs vs best-performance %.0fs; avg GPU power %.1fW vs %.1fW)",
			r.Workload, r.ExecScaled.Seconds(), r.ExecBase.Seconds(),
			r.AvgPowerScaled.Watts(), r.AvgPowerBase.Watts()),
		"t (s)", "core util", "core MHz", "mem util", "mem MHz")
	for _, s := range r.Samples {
		t.AddRow(
			fmt.Sprintf("%.0f", s.At.Seconds()),
			fmt.Sprintf("%.2f", s.CoreUtil),
			fmt.Sprintf("%.0f", s.CoreMHz),
			fmt.Sprintf("%.2f", s.MemUtil),
			fmt.Sprintf("%.0f", s.MemMHz))
	}
	return t
}

// Sparklines returns a compact visual rendering of the Fig. 5 trace: one
// line per signal, suitable for terminal output next to the full table.
func (r *Fig5Result) Sparklines() string {
	var uc, um, fc, fm []float64
	for _, s := range r.Samples {
		uc = append(uc, s.CoreUtil)
		um = append(um, s.MemUtil)
		fc = append(fc, s.CoreMHz)
		fm = append(fm, s.MemMHz)
	}
	return fmt.Sprintf(
		"core util  %s\ncore MHz   %s\nmem util   %s\nmem MHz    %s\npower (W)  %s\n",
		trace.Sparkline(uc), trace.Sparkline(fc),
		trace.Sparkline(um), trace.Sparkline(fm),
		trace.Sparkline(r.PowerScaled))
}

// PowerTable renders Fig. 5c: the per-second GPU power trace of the scaled
// run against the best-performance baseline.
func (r *Fig5Result) PowerTable() *trace.Table {
	t := trace.NewTable(
		fmt.Sprintf("Fig. 5c — GPU power trace (%s): scaling avg %.1f W vs best-performance %.1f W",
			r.Workload, r.AvgPowerScaled.Watts(), r.AvgPowerBase.Watts()),
		"t (s)", "power scaled (W)", "power best-perf (W)")
	n := len(r.PowerScaled)
	if len(r.PowerBase) > n {
		n = len(r.PowerBase)
	}
	for i := 0; i < n; i++ {
		scaled, base := "", ""
		if i < len(r.PowerScaled) {
			scaled = fmt.Sprintf("%.1f", r.PowerScaled[i])
		}
		if i < len(r.PowerBase) {
			base = fmt.Sprintf("%.1f", r.PowerBase[i])
		}
		t.AddRow(fmt.Sprintf("%d", i), scaled, base)
	}
	return t
}
