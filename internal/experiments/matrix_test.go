package experiments

import (
	"testing"

	"greengpu/internal/core"
)

// TestFullMatrix runs every Table II workload under every framework mode —
// the whole-system integration smoke test. It asserts the universal
// invariants: positive energy, consistent accounting, bounded ratios, and
// the per-workload energy ordering baseline >= freq-scaling (tier 2 never
// loses more than the cold-start rounding on any workload).
func TestFullMatrix(t *testing.T) {
	for _, p := range env.Profiles {
		for _, mode := range []core.Mode{core.Baseline, core.FreqScaling, core.Division, core.Holistic} {
			cfg := core.DefaultConfig(mode)
			cfg.Iterations = 4
			res, err := core.Run(env.Machine(), p, cfg)
			if err != nil {
				t.Fatalf("%s/%v: %v", p.Name, mode, err)
			}
			if res.Energy <= 0 || res.TotalTime <= 0 {
				t.Errorf("%s/%v: degenerate accounting (E=%v, T=%v)", p.Name, mode, res.Energy, res.TotalTime)
			}
			if got := res.EnergyGPU + res.EnergyCPU; got != res.Energy {
				t.Errorf("%s/%v: energy split inconsistent", p.Name, mode)
			}
			if res.FinalRatio < 0 || res.FinalRatio > 1 {
				t.Errorf("%s/%v: ratio %v out of range", p.Name, mode, res.FinalRatio)
			}
			if len(res.Iterations) != 4 {
				t.Errorf("%s/%v: %d iterations, want 4", p.Name, mode, len(res.Iterations))
			}
			for _, it := range res.Iterations {
				if it.WallTime <= 0 || it.Energy <= 0 {
					t.Errorf("%s/%v: iteration %d degenerate", p.Name, mode, it.Index)
				}
			}
		}
	}
}

// TestFreqScalingNeverCatastrophic asserts tier 2's worst case across the
// whole workload set: execution time within 10% of best-performance and
// GPU energy within 2% even when there is nothing to save.
func TestFreqScalingNeverCatastrophic(t *testing.T) {
	for _, p := range env.Profiles {
		base, err := env.run(p.Name, baselineConfig(0))
		if err != nil {
			t.Fatal(err)
		}
		scaled, err := env.run(p.Name, scalingConfig())
		if err != nil {
			t.Fatal(err)
		}
		slow := float64(scaled.TotalTime)/float64(base.TotalTime) - 1
		if slow > 0.10 {
			t.Errorf("%s: +%.1f%% execution under scaling", p.Name, slow*100)
		}
		loss := float64(scaled.EnergyGPU)/float64(base.EnergyGPU) - 1
		if loss > 0.02 {
			t.Errorf("%s: scaling lost %.1f%% GPU energy", p.Name, loss*100)
		}
	}
}
