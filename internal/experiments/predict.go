package experiments

import (
	"fmt"
	"strconv"

	"greengpu/internal/dvfs"
	"greengpu/internal/predict"
	"greengpu/internal/sweep"
	"greengpu/internal/testbed"
	"greengpu/internal/trace"
)

// PredictValidationRow is one (ladder, workload) row of the prediction
// validation study: how well the analytic cross-frequency model and its
// sweet-spot search reproduce a brute-forced ladder.
type PredictValidationRow struct {
	// Ladder names the grid: "6x6" is the paper's testbed ladder, "24x24"
	// the synthetic dense re-quantization of the same card.
	Ladder   string
	Workload string
	// Points is the ladder size; FullEvals the search's evaluation count.
	Points    int
	FullEvals int
	// SpotCoreMHz/SpotMemMHz are the search's chosen pair; BruteCoreMHz/
	// BruteMemMHz the exhaustive minimum-energy pair; SpotDist their
	// Chebyshev ladder-step distance (0 = exact hit).
	SpotCoreMHz  float64
	SpotMemMHz   float64
	BruteCoreMHz float64
	BruteMemMHz  float64
	SpotDist     int
	// EnergyRegret is the measured energy cost of the search's choice:
	// (E(spot) − E(brute)) / E(brute). On finely-quantized ladders many
	// near-optimal points have almost identical energy, so regret — not
	// step distance — is the meaningful dense-ladder criterion.
	EnergyRegret float64
	// MedRelTime/MaxRelTime and MedRelEnergy/MaxRelEnergy aggregate the
	// model's per-point relative prediction error across the whole grid.
	MedRelTime   float64
	MaxRelTime   float64
	MedRelEnergy float64
	MaxRelEnergy float64
	// SpearmanEnergy is the rank correlation between predicted and
	// measured energy across the grid — 1 means the model orders the
	// ladder exactly like the simulator.
	SpearmanEnergy float64
}

// predictStudyTopM is the verification budget the validation study (and
// therefore the CI predict gate) pins. On the 6×6 testbed ladder the
// model's piecewise-linear memory crossover can rank the true optimum as
// deep as 12th among candidates (quasirandom generator, srad_v2,
// streamcluster), so twelve verifications make every 6×6 spot byte-exact —
// still under half the ladder. On the 24×24 grid the same budget is a 34×
// evaluation reduction; there the optimum can rank hundreds deep (the
// dense basin is nearly flat, srad_v2's true best ranks 259th) so the
// study reports energy regret instead of chasing exactness. The
// throughput benchmark (BenchmarkSweepPredicted) separately exercises the
// default budget, predict.DefaultTopM.
const predictStudyTopM = 12

// PredictValidation runs the prediction validation study: brute-force the
// paper's 6×6 ladder and the synthetic dense 24×24 ladder for every
// workload, fit the analytic model from its anchor points, and compare —
// per-point relative time/energy error, energy rank correlation, and the
// sweet-spot search's chosen pair against the exhaustive minimum. The
// committed CSV is gated in CI by cmd/predictgate (spot within one ladder
// step or within 5% energy regret, median relative energy error within
// 5%).
func (e *Env) PredictValidation() ([]PredictValidationRow, error) {
	opts := predict.Options{TopM: predictStudyTopM}
	rows, err := e.predictValidateLadder("6x6", opts)
	if err != nil {
		return nil, err
	}
	dense, err := e.derive(testbed.GeForce8800GTXDense(24, 24), e.CPUConfig, e.BusConfig)
	if err != nil {
		return nil, err
	}
	denseRows, err := dense.predictValidateLadder("24x24", opts)
	if err != nil {
		return nil, err
	}
	return append(rows, denseRows...), nil
}

// predictValidateLadder brute-forces the environment's full GPU ladder at
// the peak CPU P-state, runs the analytic search on the same grid, and
// scores model and search against the exhaustive results.
func (e *Env) predictValidateLadder(label string, opts predict.Options) ([]PredictValidationRow, error) {
	eng := &sweep.Engine{
		GPU:       e.GPUConfig,
		CPU:       e.CPUConfig,
		Bus:       e.BusConfig,
		Profiles:  e.Profiles,
		Jobs:      e.Jobs,
		Cache:     e.Cache,
		FaultPlan: e.FaultPlan,
	}
	// Iterations 4 matches the sweet-spot study, so ladder points share
	// their run-cache keys with it.
	spec := sweep.Spec{Iterations: 4, CPULevel: -1}
	brute, err := eng.Run(spec)
	if err != nil {
		return nil, err
	}
	spots, err := eng.PredictSweetSpots(spec, opts)
	if err != nil {
		return nil, err
	}
	coreF, memF := e.GPUConfig.CoreLevels, e.GPUConfig.MemLevels
	nc, nm := len(coreF), len(memF)
	per := nc * nm
	if len(brute) != per*len(spots) {
		return nil, fmt.Errorf("predict validation: %d brute points for %d workloads on a %dx%d ladder",
			len(brute), len(spots), nc, nm)
	}
	anchors := predict.Anchors(opts.Strategy, coreF, memF)

	rows := make([]PredictValidationRow, 0, len(spots))
	for wi, spot := range spots {
		// Expand order keeps each workload's grid contiguous,
		// core-outer/memory-inner.
		block := brute[wi*per : (wi+1)*per]
		if block[0].Workload != spot.Workload {
			return nil, fmt.Errorf("predict validation: brute block %q vs spot %q",
				block[0].Workload, spot.Workload)
		}
		samples := make([]predict.Sample, len(anchors))
		for i, a := range anchors {
			pr := block[a.Core*nm+a.Mem]
			samples[i] = predict.Sample{Core: a.Core, Mem: a.Mem,
				Time: pr.Result.TotalTime, Energy: pr.Result.Energy}
		}
		model, err := predict.Fit(coreF, memF, samples)
		if err != nil {
			return nil, fmt.Errorf("predict validation: %s on %s: %w", spot.Workload, label, err)
		}

		relT := make([]float64, 0, per)
		relE := make([]float64, 0, per)
		predE := make([]float64, 0, per)
		actE := make([]float64, 0, per)
		best := 0
		for i, pr := range block {
			pt := model.TimeSeconds(pr.Core, pr.Mem)
			pe := model.EnergyJoules(pr.Core, pr.Mem)
			relT = append(relT, predict.RelErr(pt, pr.Result.TotalTime.Seconds()))
			relE = append(relE, predict.RelErr(pe, pr.Result.Energy.Joules()))
			predE = append(predE, pe)
			actE = append(actE, pr.Result.Energy.Joules())
			if pr.Result.Energy < block[best].Result.Energy {
				best = i
			}
		}
		oc := spot.Outcome
		rows = append(rows, PredictValidationRow{
			Ladder:       label,
			Workload:     spot.Workload,
			Points:       oc.Points,
			FullEvals:    oc.FullEvals,
			SpotCoreMHz:  coreF[oc.Core].MHz(),
			SpotMemMHz:   memF[oc.Mem].MHz(),
			BruteCoreMHz: coreF[block[best].Core].MHz(),
			BruteMemMHz:  memF[block[best].Mem].MHz(),
			SpotDist: dvfs.PairDistance(
				dvfs.Decision{CoreLevel: oc.Core, MemLevel: oc.Mem},
				dvfs.Decision{CoreLevel: block[best].Core, MemLevel: block[best].Mem}),
			EnergyRegret: (oc.Energy.Joules() - block[best].Result.Energy.Joules()) /
				block[best].Result.Energy.Joules(),
			MedRelTime:     predict.Median(relT),
			MaxRelTime:     predict.Max(relT),
			MedRelEnergy:   predict.Median(relE),
			MaxRelEnergy:   predict.Max(relE),
			SpearmanEnergy: predict.Spearman(predE, actE),
		})
	}
	return rows, nil
}

// PredictValidationTable renders the study as one table, one row per
// (ladder, workload). cmd/predictgate parses the CSV rendering by header
// name, so the column set is a compatibility surface.
func PredictValidationTable(rows []PredictValidationRow) *trace.Table {
	t := trace.NewTable(
		"Prediction validation — analytic model vs brute-forced ladders",
		"ladder", "workload", "points", "full_evals",
		"spot_core_mhz", "spot_mem_mhz", "brute_core_mhz", "brute_mem_mhz",
		"spot_dist", "energy_regret", "med_rel_time", "max_rel_time",
		"med_rel_energy", "max_rel_energy", "spearman_energy")
	for _, r := range rows {
		t.AddRow(r.Ladder, r.Workload,
			strconv.Itoa(r.Points), strconv.Itoa(r.FullEvals),
			fmt.Sprintf("%.0f", r.SpotCoreMHz), fmt.Sprintf("%.0f", r.SpotMemMHz),
			fmt.Sprintf("%.0f", r.BruteCoreMHz), fmt.Sprintf("%.0f", r.BruteMemMHz),
			strconv.Itoa(r.SpotDist), fmt.Sprintf("%.6f", r.EnergyRegret),
			fmt.Sprintf("%.6f", r.MedRelTime), fmt.Sprintf("%.6f", r.MaxRelTime),
			fmt.Sprintf("%.6f", r.MedRelEnergy), fmt.Sprintf("%.6f", r.MaxRelEnergy),
			fmt.Sprintf("%.6f", r.SpearmanEnergy))
	}
	return t
}
