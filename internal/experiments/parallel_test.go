package experiments

import (
	"reflect"
	"testing"
)

// withJobs returns a copy of the shared test environment pinned to the
// given worker count. The copy shares the immutable configs and profiles.
func withJobs(jobs int) *Env {
	e := *env
	e.Jobs = jobs
	return &e
}

// TestParallelBitIdentical is the engine's central guarantee: every
// experiment produces exactly the same result — every float, every
// ordering — whether its points run sequentially or on eight workers.
func TestParallelBitIdentical(t *testing.T) {
	seq, par := withJobs(1), withJobs(8)

	type experiment struct {
		name string
		run  func(e *Env) (any, error)
	}
	cases := []experiment{
		{"Fig1", func(e *Env) (any, error) { return e.Fig1() }},
		{"Fig6", func(e *Env) (any, error) { return e.Fig6() }},
		{"Table2", func(e *Env) (any, error) { return e.Table2() }},
		{"DivisionSweep", func(e *Env) (any, error) { return e.DivisionSweep("kmeans", 0, 0.9, 0.1, 6) }},
		{"StaticSweep", func(e *Env) (any, error) { return e.StaticSweep("kmeans", "hotspot") }},
		{"SensorNoise", func(e *Env) (any, error) { return e.AblationSensorNoise("kmeans", []float64{0, 0.05, 0.2}) }},
		{"DividerComparison", func(e *Env) (any, error) { return e.DividerComparison("kmeans", "hotspot") }},
		{"ActuatorFaults", func(e *Env) (any, error) { return e.ActuatorFaults("kmeans") }},
		{"Portability", func(e *Env) (any, error) { return e.Portability() }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			a, err := c.run(seq)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			b, err := c.run(par)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("results differ between Jobs=1 and Jobs=8:\nseq: %+v\npar: %+v", a, b)
			}
		})
	}
}

// TestSensorNoiseIndependentOfSweepComposition: each noise row is a pure
// function of (workload, sigma) — removing or reordering the other sigmas
// must not change it.
func TestSensorNoiseIndependentOfSweepComposition(t *testing.T) {
	full, err := env.AblationSensorNoise("kmeans", []float64{0, 0.1, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	alone, err := env.AblationSensorNoise("kmeans", []float64{0.4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full[2], alone[0]) {
		t.Errorf("sigma=0.4 row depends on sweep composition:\nfull:  %+v\nalone: %+v", full[2], alone[0])
	}
	reordered, err := env.AblationSensorNoise("kmeans", []float64{0.4, 0.1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full[1], reordered[1]) {
		t.Errorf("sigma=0.1 row depends on sweep order:\nasc:  %+v\ndesc: %+v", full[1], reordered[1])
	}
}

// TestDeriveCarriesJobs: recalibrating studies must run their inner
// environments under the same worker bound as the outer one.
func TestDeriveCarriesJobs(t *testing.T) {
	e := withJobs(3)
	d, err := e.derive(e.GPUConfig, e.CPUConfig, e.BusConfig)
	if err != nil {
		t.Fatal(err)
	}
	if d.Jobs != 3 {
		t.Errorf("derived env has Jobs=%d, want 3", d.Jobs)
	}
}

// TestRunStopsOnMissingWorkload: a fan-out over a bad workload name must
// surface the lookup error, not panic or hang.
func TestRunStopsOnMissingWorkload(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		e := withJobs(jobs)
		if _, err := e.StaticSweep("kmeans", "nope"); err == nil {
			t.Errorf("Jobs=%d: missing workload accepted", jobs)
		}
		if _, err := e.AblationSensorNoise("nope", []float64{0.1}); err == nil {
			t.Errorf("Jobs=%d: missing workload accepted by noise ablation", jobs)
		}
	}
}
