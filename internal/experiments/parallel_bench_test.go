package experiments

import (
	"fmt"
	"runtime"
	"testing"
)

// Benchmarks for the parallel experiment engine: the same evaluation suite
// at different worker counts. The jobs=N variants should approach N× the
// jobs=1 throughput up to the machine's core count, with byte-identical
// results (asserted separately in parallel_test.go).

func benchJobs() []int {
	jobs := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		jobs = append(jobs, n)
	}
	return jobs
}

// BenchmarkFig6 is the headline per-workload fan-out: 9 workloads × 2 runs.
func BenchmarkFig6(b *testing.B) {
	for _, jobs := range benchJobs() {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			e := withJobs(jobs)
			for i := 0; i < b.N; i++ {
				if _, err := e.Fig6(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig1 is the frequency-grid fan-out: 2 workloads × 2 domains ×
// 6 levels of fixed-frequency runs.
func BenchmarkFig1(b *testing.B) {
	for _, jobs := range benchJobs() {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			e := withJobs(jobs)
			for i := 0; i < b.N; i++ {
				if _, err := e.Fig1(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStaticSweep exercises the nested fan-out (per-workload sweeps,
// each over a 20-point grid of full-length runs).
func BenchmarkStaticSweep(b *testing.B) {
	for _, jobs := range benchJobs() {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			e := withJobs(jobs)
			for i := 0; i < b.N; i++ {
				if _, err := e.StaticSweep("kmeans", "hotspot"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
