package experiments

import (
	"fmt"
	"time"

	"greengpu/internal/core"
	"greengpu/internal/trace"
	"greengpu/internal/units"
)

// Fig1Domain selects which clock domain a sweep varies.
type Fig1Domain string

// Sweep domains.
const (
	DomainMemory Fig1Domain = "memory" // Fig. 1a/1b: memory sweep, core at peak
	DomainCore   Fig1Domain = "core"   // Fig. 1c/1d: core sweep, memory at peak
)

// Fig1Point is one bar of Fig. 1: a workload run at one fixed frequency
// level, normalized to the peak-frequency run of the same workload.
type Fig1Point struct {
	Workload string
	Domain   Fig1Domain
	Level    int
	MHz      float64
	// NormTime is exec time / exec time at peak (Fig. 1's "normalized
	// execution time"); RelEnergy is GPU energy / GPU energy at peak
	// ("relative energy").
	NormTime  float64
	RelEnergy float64
	ExecTime  time.Duration
	Energy    units.Energy
}

// Fig1Result holds both workloads' sweeps over both domains.
type Fig1Result struct {
	Points []Fig1Point
}

// fig1Workloads are the case-study workloads of §III-A: core-bounded nbody
// and memory-bounded streamcluster.
var fig1Workloads = []string{"nbody", "streamcluster"}

// Fig1 reproduces the §III-A case study: run each workload GPU-only at
// every frequency level of one domain (the other pinned at peak) and report
// execution time and GPU energy normalized to the peak-frequency run.
func (e *Env) Fig1() (*Fig1Result, error) {
	res := &Fig1Result{}
	nCore := len(e.GPUConfig.CoreLevels)
	nMem := len(e.GPUConfig.MemLevels)
	for _, name := range fig1Workloads {
		for _, domain := range []Fig1Domain{DomainMemory, DomainCore} {
			var sweep []Fig1Point
			var peak Fig1Point
			n := nMem
			if domain == DomainCore {
				n = nCore
			}
			for lvl := 0; lvl < n; lvl++ {
				levels := core.Levels{
					Core: nCore - 1,
					Mem:  nMem - 1,
					CPU:  len(e.CPUConfig.PStates) - 1,
				}
				var mhz float64
				if domain == DomainMemory {
					levels.Mem = lvl
					mhz = e.GPUConfig.MemLevels[lvl].MHz()
				} else {
					levels.Core = lvl
					mhz = e.GPUConfig.CoreLevels[lvl].MHz()
				}
				cfg := core.DefaultConfig(core.Baseline)
				cfg.InitialLevels = &levels
				cfg.Iterations = 4
				r, err := e.run(name, cfg)
				if err != nil {
					return nil, err
				}
				pt := Fig1Point{
					Workload: name,
					Domain:   domain,
					Level:    lvl,
					MHz:      mhz,
					ExecTime: r.TotalTime,
					Energy:   r.EnergyGPU,
				}
				if lvl == n-1 {
					peak = pt
				}
				sweep = append(sweep, pt)
			}
			for i := range sweep {
				sweep[i].NormTime = float64(sweep[i].ExecTime) / float64(peak.ExecTime)
				sweep[i].RelEnergy = float64(sweep[i].Energy) / float64(peak.Energy)
			}
			res.Points = append(res.Points, sweep...)
		}
	}
	return res, nil
}

// Table renders the sweep in the layout of Fig. 1's four panels.
func (r *Fig1Result) Table() *trace.Table {
	t := trace.NewTable(
		"Fig. 1 — normalized execution time and relative GPU energy vs frequency",
		"workload", "swept domain", "MHz", "norm time", "rel energy")
	for _, p := range r.Points {
		t.AddRow(p.Workload, string(p.Domain),
			fmt.Sprintf("%.0f", p.MHz),
			fmt.Sprintf("%.4f", p.NormTime),
			fmt.Sprintf("%.4f", p.RelEnergy))
	}
	return t
}

// Select returns the points of one panel (one workload, one domain),
// ordered by ascending frequency.
func (r *Fig1Result) Select(workload string, domain Fig1Domain) []Fig1Point {
	var out []Fig1Point
	for _, p := range r.Points {
		if p.Workload == workload && p.Domain == domain {
			out = append(out, p)
		}
	}
	return out
}
