package experiments

import (
	"fmt"
	"time"

	"greengpu/internal/core"
	"greengpu/internal/trace"
	"greengpu/internal/units"
)

// Fig1Domain selects which clock domain a sweep varies.
type Fig1Domain string

// Sweep domains.
const (
	DomainMemory Fig1Domain = "memory" // Fig. 1a/1b: memory sweep, core at peak
	DomainCore   Fig1Domain = "core"   // Fig. 1c/1d: core sweep, memory at peak
)

// Fig1Point is one bar of Fig. 1: a workload run at one fixed frequency
// level, normalized to the peak-frequency run of the same workload.
type Fig1Point struct {
	Workload string
	Domain   Fig1Domain
	Level    int
	MHz      float64
	// NormTime is exec time / exec time at peak (Fig. 1's "normalized
	// execution time"); RelEnergy is GPU energy / GPU energy at peak
	// ("relative energy").
	NormTime  float64
	RelEnergy float64
	ExecTime  time.Duration
	Energy    units.Energy
}

// Fig1Result holds both workloads' sweeps over both domains.
type Fig1Result struct {
	Points []Fig1Point
}

// fig1Workloads are the case-study workloads of §III-A: core-bounded nbody
// and memory-bounded streamcluster.
var fig1Workloads = []string{"nbody", "streamcluster"}

// fig1Task is one grid point of the Fig. 1 sweep: (workload, domain,
// level), with the clock operating point resolved up front so the task
// body is a pure fresh-machine run.
type fig1Task struct {
	workload string
	domain   Fig1Domain
	level    int
	mhz      float64
	levels   core.Levels
}

// Fig1 reproduces the §III-A case study: run each workload GPU-only at
// every frequency level of one domain (the other pinned at peak) and report
// execution time and GPU energy normalized to the peak-frequency run.
// All grid points are independent fixed-frequency runs, so they execute on
// the environment's worker pool.
func (e *Env) Fig1() (*Fig1Result, error) {
	nCore := len(e.GPUConfig.CoreLevels)
	nMem := len(e.GPUConfig.MemLevels)

	// Enumerate the grid in the figure's panel order (workload outer,
	// domain middle, level inner); results come back in the same order.
	var tasks []fig1Task
	for _, name := range fig1Workloads {
		for _, domain := range []Fig1Domain{DomainMemory, DomainCore} {
			n := nMem
			if domain == DomainCore {
				n = nCore
			}
			for lvl := 0; lvl < n; lvl++ {
				tk := fig1Task{
					workload: name,
					domain:   domain,
					level:    lvl,
					levels: core.Levels{
						Core: nCore - 1,
						Mem:  nMem - 1,
						CPU:  len(e.CPUConfig.PStates) - 1,
					},
				}
				if domain == DomainMemory {
					tk.levels.Mem = lvl
					tk.mhz = e.GPUConfig.MemLevels[lvl].MHz()
				} else {
					tk.levels.Core = lvl
					tk.mhz = e.GPUConfig.CoreLevels[lvl].MHz()
				}
				tasks = append(tasks, tk)
			}
		}
	}

	points, err := mapPoints(e, tasks, func(_ int, tk fig1Task) (Fig1Point, error) {
		levels := tk.levels
		cfg := core.DefaultConfig(core.Baseline)
		cfg.InitialLevels = &levels
		cfg.Iterations = 4
		r, err := e.run(tk.workload, cfg)
		if err != nil {
			return Fig1Point{}, err
		}
		return Fig1Point{
			Workload: tk.workload,
			Domain:   tk.domain,
			Level:    tk.level,
			MHz:      tk.mhz,
			ExecTime: r.TotalTime,
			Energy:   r.EnergyGPU,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	// Normalize each contiguous (workload, domain) sweep to its peak
	// (highest-level, i.e. last) point.
	res := &Fig1Result{Points: points}
	for start := 0; start < len(points); {
		end := start + 1
		for end < len(points) &&
			points[end].Workload == points[start].Workload &&
			points[end].Domain == points[start].Domain {
			end++
		}
		peak := points[end-1]
		for i := start; i < end; i++ {
			res.Points[i].NormTime = float64(points[i].ExecTime) / float64(peak.ExecTime)
			res.Points[i].RelEnergy = float64(points[i].Energy) / float64(peak.Energy)
		}
		start = end
	}
	return res, nil
}

// Table renders the sweep in the layout of Fig. 1's four panels.
func (r *Fig1Result) Table() *trace.Table {
	t := trace.NewTable(
		"Fig. 1 — normalized execution time and relative GPU energy vs frequency",
		"workload", "swept domain", "MHz", "norm time", "rel energy")
	for _, p := range r.Points {
		t.AddRow(p.Workload, string(p.Domain),
			fmt.Sprintf("%.0f", p.MHz),
			fmt.Sprintf("%.4f", p.NormTime),
			fmt.Sprintf("%.4f", p.RelEnergy))
	}
	return t
}

// Select returns the points of one panel (one workload, one domain),
// ordered by ascending frequency.
func (r *Fig1Result) Select(workload string, domain Fig1Domain) []Fig1Point {
	var out []Fig1Point
	for _, p := range r.Points {
		if p.Workload == workload && p.Domain == domain {
			out = append(out, p)
		}
	}
	return out
}
