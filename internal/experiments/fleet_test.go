package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestFleetStudy pins the study's grid shape and the invariants the dedup
// engine guarantees cell by cell: every (size, level) pair appears once,
// dedup ratios grow with fleet size, fault-free cells inject zero faults,
// and miss rates stay within [0, 1].
func TestFleetStudy(t *testing.T) {
	rows, err := env.FleetStudy()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(FleetStudySizes) * len(FleetStudyLevels); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	i := 0
	for _, nodes := range FleetStudySizes {
		for _, level := range FleetStudyLevels {
			r := rows[i]
			i++
			if r.Nodes != nodes || r.FaultLevel != level {
				t.Fatalf("row %d is (%d, %d), want (%d, %d)", i-1, r.Nodes, r.FaultLevel, nodes, level)
			}
			if r.Groups <= 0 || r.DedupRatio < float64(r.Nodes)/float64(r.Groups)-1e-9 {
				t.Errorf("row %d: groups=%d ratio=%.2f inconsistent with %d nodes", i-1, r.Groups, r.DedupRatio, r.Nodes)
			}
			if r.Energy <= 0 || r.Wall <= 0 || r.EDP <= 0 {
				t.Errorf("row %d: non-positive aggregates: %+v", i-1, r)
			}
			if level == 0 && r.Faults != 0 {
				t.Errorf("row %d: fault-free cell injected %d faults", i-1, r.Faults)
			}
			if level == 2 && r.Faults == 0 {
				t.Errorf("row %d: default-intensity cell injected no faults", i-1)
			}
			if r.MissRate < 0 || r.MissRate > 1 {
				t.Errorf("row %d: miss rate %.3f outside [0, 1]", i-1, r.MissRate)
			}
		}
	}
	// 100× the nodes over the same axes cannot shrink the dedup ratio.
	if rows[0].DedupRatio >= rows[len(rows)-1].DedupRatio {
		t.Errorf("dedup ratio fell from %.2f to %.2f as the fleet grew",
			rows[0].DedupRatio, rows[len(rows)-1].DedupRatio)
	}
}

// TestFleetStudyDeterminism requires identical rendered output at any
// Jobs value, with or without the shared run cache.
func TestFleetStudyDeterminism(t *testing.T) {
	render := func(jobs int, cached bool) string {
		e2 := *env
		e2.Jobs = jobs
		if !cached {
			e2.Cache = nil
		}
		rows, err := e2.FleetStudy()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := FleetStudyTable(rows).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq := render(1, true)
	for _, tc := range []struct {
		jobs   int
		cached bool
	}{{8, true}, {8, false}, {3, true}} {
		if got := render(tc.jobs, tc.cached); got != seq {
			t.Errorf("fleet study output differs at jobs=%d cache=%v", tc.jobs, tc.cached)
		}
	}
	if !strings.Contains(seq, "100000") {
		t.Error("fleet study table missing the 100k-node rows")
	}
}
