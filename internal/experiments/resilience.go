package experiments

import (
	"fmt"

	"greengpu/internal/core"
	"greengpu/internal/faultinject"
	"greengpu/internal/parallel"
	"greengpu/internal/trace"
)

// This file holds the fault-resilience study docs/ROBUSTNESS.md describes:
// how gracefully the hardened holistic controller degrades when the
// testbed misbehaves the way the paper's real hardware did. Each fault
// class is swept alone at increasing intensity, plus the all-classes
// default plan, and every arm is compared against the fault-free holistic
// run of the same workload. The study has no paper figure — the paper's
// §VI discussion of nvidia-smi polling and Wattsup dropouts is qualitative
// — but it is the repo's headline robustness evidence: every row
// completes, and the deltas quantify the price of each recovery path.

// ResilienceRow is one (workload, fault class, intensity) arm's outcome.
type ResilienceRow struct {
	Workload string
	// Class names the fault class swept; "none" is the fault-free
	// reference arm and "all" the moderate all-classes default plan.
	Class string
	// Intensity is the per-opportunity rate (or sigma) injected; negative
	// for the "none" arm (nothing injected) and the "all" arm, whose
	// per-class rates come from faultinject.Default.
	Intensity float64
	// Faults and Recoveries are the run's injected-fault and
	// recovery-action totals.
	Faults     faultinject.Counts
	Recoveries core.RecoveryCounts
	// EnergyDelta and ExecDelta are relative to the fault-free holistic
	// run of the same workload (0 for the reference arm itself).
	EnergyDelta float64
	ExecDelta   float64
}

// resilienceSeed is the base seed of the resilience study. Every arm's
// plan seed derives from it with parallel.TaskSeed over the arm's position
// in the sweep, so the whole study is a pure function of this constant
// under any worker count.
const resilienceSeed = 0xfa17

// resilienceIntensities is the per-class intensity sweep.
var resilienceIntensities = []float64{0.05, 0.20, 0.50}

// resilienceClasses maps each fault class to a single-class plan at
// intensity x. Classes are injected alone so a row's deltas are
// attributable; the "all" arm covers interactions.
var resilienceClasses = []struct {
	name string
	plan func(seed uint64, x float64) faultinject.Plan
}{
	{"sensor-noise", func(s uint64, x float64) faultinject.Plan {
		return faultinject.Plan{Seed: s, GPUNoiseSigma: x, CPUNoiseSigma: x}
	}},
	{"sensor-drop", func(s uint64, x float64) faultinject.Plan {
		return faultinject.Plan{Seed: s, GPUDropRate: x, CPUDropRate: x}
	}},
	{"sensor-stale", func(s uint64, x float64) faultinject.Plan {
		return faultinject.Plan{Seed: s, GPUStaleRate: x, CPUStaleRate: x}
	}},
	{"transition-reject", func(s uint64, x float64) faultinject.Plan {
		return faultinject.Plan{Seed: s, TransitionRejectRate: x}
	}},
	{"transition-delay", func(s uint64, x float64) faultinject.Plan {
		return faultinject.Plan{Seed: s, TransitionDelayRate: x, TransitionDelayEpochs: 2}
	}},
	{"meter", func(s uint64, x float64) faultinject.Plan {
		return faultinject.Plan{Seed: s, MeterDropRate: x, MeterSpikeRate: x / 2, MeterSpikeFactor: 3}
	}},
	{"straggler", func(s uint64, x float64) faultinject.Plan {
		return faultinject.Plan{Seed: s, StragglerRate: x, StragglerFactor: 1.5}
	}},
}

// FaultResilience sweeps every fault class at increasing intensity on the
// hardened holistic controller, comparing each arm against the fault-free
// holistic run of the same workload. Arms are independent simulation
// points: plans are plain data, every seed derives from the arm's stable
// sweep position, and the rows come back in sweep order — so the study is
// byte-identical at any Jobs count and memoizes through the run cache.
func (e *Env) FaultResilience(names ...string) ([]ResilienceRow, error) {
	clean, err := mapPoints(e, names, func(_ int, name string) (*core.Result, error) {
		return e.run(name, core.DefaultConfig(core.Holistic))
	})
	if err != nil {
		return nil, err
	}
	cleanByName := make(map[string]*core.Result, len(names))
	for i, name := range names {
		cleanByName[name] = clean[i]
	}

	type arm struct {
		workload  string
		class     string
		intensity float64
		plan      faultinject.Plan
	}
	var arms []arm
	next := 0
	seed := func() uint64 {
		s := parallel.TaskSeed(resilienceSeed, next)
		next++
		return s
	}
	for _, name := range names {
		for _, c := range resilienceClasses {
			for _, x := range resilienceIntensities {
				arms = append(arms, arm{name, c.name, x, c.plan(seed(), x)})
			}
		}
		arms = append(arms, arm{name, "all", -1, faultinject.Default(seed())})
	}

	faulty, err := mapPoints(e, arms, func(_ int, a arm) (ResilienceRow, error) {
		cfg := core.DefaultConfig(core.Holistic)
		plan := a.plan
		cfg.FaultPlan = &plan
		r, err := e.run(a.workload, cfg)
		if err != nil {
			return ResilienceRow{}, err
		}
		base := cleanByName[a.workload]
		return ResilienceRow{
			Workload:    a.workload,
			Class:       a.class,
			Intensity:   a.intensity,
			Faults:      r.Faults,
			Recoveries:  r.Recoveries,
			EnergyDelta: float64(r.Energy)/float64(base.Energy) - 1,
			ExecDelta:   float64(r.TotalTime)/float64(base.TotalTime) - 1,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	// Interleave: the fault-free reference row leads each workload's block.
	perWorkload := len(resilienceClasses)*len(resilienceIntensities) + 1
	var rows []ResilienceRow
	for i, name := range names {
		rows = append(rows, ResilienceRow{Workload: name, Class: "none", Intensity: -1})
		rows = append(rows, faulty[i*perWorkload:(i+1)*perWorkload]...)
	}
	return rows, nil
}

// FaultResilienceTable renders the resilience study. Every cell is a pure
// function of the deterministic rows, so the CSV is byte-identical at any
// worker count — the CI chaos job diffs -jobs 1 against -jobs 8.
func FaultResilienceTable(rows []ResilienceRow) *trace.Table {
	t := trace.NewTable("Fault resilience — hardened holistic vs fault-free",
		"workload", "fault class", "intensity", "faults", "held", "retries",
		"deferred", "watchdog trips", "energy delta %", "exec delta %")
	for _, r := range rows {
		intensity := "-"
		if r.Intensity >= 0 {
			intensity = fmt.Sprintf("%.2f", r.Intensity)
		}
		t.AddRow(
			r.Workload,
			r.Class,
			intensity,
			fmt.Sprintf("%d", r.Faults.Total()),
			fmt.Sprintf("%d", r.Recoveries.HeldSamples),
			fmt.Sprintf("%d", r.Recoveries.Retries),
			fmt.Sprintf("%d", r.Recoveries.DeferredApplies),
			fmt.Sprintf("%d", r.Recoveries.WatchdogTrips),
			fmt.Sprintf("%.2f", r.EnergyDelta*100),
			fmt.Sprintf("%.2f", r.ExecDelta*100))
	}
	return t
}
