package experiments

import (
	"math"
	"strings"
	"testing"

	"greengpu/internal/workload"
)

// env is shared across tests: the experiments are deterministic and the
// environment is immutable (every run gets a fresh machine).
var env = mustEnv()

func mustEnv() *Env {
	e, err := NewEnv()
	if err != nil {
		panic(err)
	}
	return e
}

func TestFig1Shapes(t *testing.T) {
	res, err := env.Fig1()
	if err != nil {
		t.Fatal(err)
	}

	// Panel 1a/1b (memory sweep): core-bounded nbody must save energy
	// with negligible performance loss as memory throttles.
	nbodyMem := res.Select("nbody", DomainMemory)
	if len(nbodyMem) != 6 {
		t.Fatalf("nbody memory sweep has %d points", len(nbodyMem))
	}
	lowest, peak := nbodyMem[0], nbodyMem[5]
	if lowest.NormTime > 1.06 {
		t.Errorf("nbody at lowest mem freq slowed %.1f%%, want minor", (lowest.NormTime-1)*100)
	}
	if lowest.RelEnergy >= peak.RelEnergy {
		t.Errorf("nbody memory throttle saved no energy: %.4f vs %.4f", lowest.RelEnergy, peak.RelEnergy)
	}

	// Memory-bounded streamcluster must suffer on both time and energy at
	// the lowest memory frequency.
	scMem := res.Select("streamcluster", DomainMemory)
	if scMem[0].NormTime < 1.10 {
		t.Errorf("SC at lowest mem freq slowed only %.1f%%, want substantial", (scMem[0].NormTime-1)*100)
	}

	// Panel 1c/1d (core sweep): nbody must suffer when its core throttles.
	nbodyCore := res.Select("nbody", DomainCore)
	if nbodyCore[0].NormTime < 1.10 {
		t.Errorf("nbody at lowest core freq slowed only %.1f%%", (nbodyCore[0].NormTime-1)*100)
	}
	// SC can throttle its core to the lowest level (the 410 MHz point)
	// with negligible loss and real energy savings.
	scCore := res.Select("streamcluster", DomainCore)
	if scCore[0].NormTime > 1.03 {
		t.Errorf("SC at 411 MHz core slowed %.1f%%, want negligible", (scCore[0].NormTime-1)*100)
	}
	if scCore[0].RelEnergy >= 1 {
		t.Errorf("SC core throttle saved no energy: %.4f", scCore[0].RelEnergy)
	}

	// Rendering sanity.
	var b strings.Builder
	if err := res.Table().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "nbody") {
		t.Error("table missing workload rows")
	}
}

func TestFig2UShape(t *testing.T) {
	res, err := env.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 10 {
		t.Fatalf("got %d points, want 10 (0%%..90%%)", len(res.Points))
	}
	// The paper's shape: energy decreases from 0% to the optimum at a
	// small CPU share, then increases toward 90%.
	if res.OptimalShare <= 0 || res.OptimalShare > 0.3 {
		t.Errorf("optimal CPU share = %.0f%%, want a small non-zero share (paper: 10%%)", res.OptimalShare*100)
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	var opt Fig2Point
	for _, p := range res.Points {
		if p.CPUShare == res.OptimalShare {
			opt = p
		}
	}
	if opt.Energy >= first.Energy {
		t.Errorf("cooperation (%.1f kJ) not cheaper than GPU-only (%.1f kJ)", opt.Energy.Joules()/1e3, first.Energy.Joules()/1e3)
	}
	if last.Energy <= opt.Energy {
		t.Error("energy did not climb past the optimum")
	}
	// Monotone descent before the optimum and ascent after it (U-shape).
	for i := 1; i < len(res.Points); i++ {
		a, b := res.Points[i-1], res.Points[i]
		if b.CPUShare <= res.OptimalShare && b.Energy > a.Energy {
			t.Errorf("energy rose before the optimum at %.0f%%", b.CPUShare*100)
		}
		if a.CPUShare >= res.OptimalShare && b.Energy < a.Energy {
			t.Errorf("energy fell after the optimum at %.0f%%", b.CPUShare*100)
		}
	}
}

func TestFig5Trace(t *testing.T) {
	res, err := env.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no DVFS samples recorded")
	}
	// The scaler must actually move the clocks during the fluctuating
	// workload: more than one distinct (core, mem) pair must appear.
	distinct := map[[2]float64]bool{}
	for _, s := range res.Samples {
		distinct[[2]float64{s.CoreMHz, s.MemMHz}] = true
	}
	if len(distinct) < 2 {
		t.Errorf("frequencies never moved: %v", distinct)
	}
	// Headline: lower average GPU power than best-performance at similar
	// execution time.
	if res.AvgPowerScaled >= res.AvgPowerBase {
		t.Errorf("avg power scaled (%v) not below baseline (%v)", res.AvgPowerScaled, res.AvgPowerBase)
	}
	delta := float64(res.ExecScaled)/float64(res.ExecBase) - 1
	if delta > 0.10 {
		t.Errorf("execution time inflated %.1f%%, want similar to baseline", delta*100)
	}
	if res.EnergyScaled >= res.EnergyBase {
		t.Error("scaling saved no GPU energy on streamcluster")
	}
	// The memory frequency should converge below the 900 MHz peak (the
	// paper observes 820 MHz), since SC's aggregate memory utilization
	// sits below 1.
	tail := res.Samples[len(res.Samples)-1]
	if tail.MemMHz >= 900 {
		t.Errorf("memory frequency stayed at peak (%v MHz)", tail.MemMHz)
	}
	if len(res.PowerScaled) == 0 || len(res.PowerBase) == 0 {
		t.Error("power traces missing")
	}
}

func TestFig6Savings(t *testing.T) {
	res, err := env.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("got %d rows, want 9", len(res.Rows))
	}
	byName := map[string]Fig6Row{}
	positive := 0
	for _, r := range res.Rows {
		byName[r.Workload] = r
		// High-utilization workloads have no throttling headroom: the
		// best the algorithm can do is stay at peak, and the cold-start
		// ramp (the card boots at its lowest clocks) costs a fraction
		// of a percent. Everything else must genuinely save.
		if r.GPUSaving <= -0.02 {
			t.Errorf("%s: GPU saving %.2f%%, want > -2%%", r.Workload, r.GPUSaving*100)
		}
		if r.GPUSaving > 0 {
			positive++
		}
		if r.ExecDelta > 0.10 {
			t.Errorf("%s: exec time +%.1f%%, want bounded", r.Workload, r.ExecDelta*100)
		}
	}
	if positive < 7 {
		t.Errorf("only %d/9 workloads saved GPU energy", positive)
	}
	s := res.Summary
	// Paper bands: avg 5.97% (we accept 3-12%), max 14.53% (we accept
	// ≥ 8%), dynamic avg 29.2% (≥ 15%), exec +2.95% (≤ 6%), system
	// emulated 12.48% (≥ 6%).
	if s.AvgGPUSaving < 0.03 || s.AvgGPUSaving > 0.12 {
		t.Errorf("avg GPU saving %.2f%% outside 3-12%% band (paper 5.97%%)", s.AvgGPUSaving*100)
	}
	if s.MaxGPUSaving < 0.08 {
		t.Errorf("max GPU saving %.2f%%, want >= 8%% (paper 14.53%%)", s.MaxGPUSaving*100)
	}
	if s.AvgDynamicSaving < 0.15 {
		t.Errorf("avg dynamic saving %.2f%%, want >= 15%% (paper 29.2%%)", s.AvgDynamicSaving*100)
	}
	if s.AvgExecDelta > 0.06 {
		t.Errorf("avg exec delta %.2f%%, want <= 6%% (paper 2.95%%)", s.AvgExecDelta*100)
	}
	if s.AvgSystemSaving < 0.06 {
		t.Errorf("avg CPU+GPU saving %.2f%%, want >= 6%% (paper 12.48%%)", s.AvgSystemSaving*100)
	}
	// Workload-class ordering: the low-utilization workloads (PF, lud)
	// must save more than the saturated one (bfs).
	if byName["PF"].GPUSaving <= byName["bfs"].GPUSaving {
		t.Errorf("PF (%.2f%%) should out-save bfs (%.2f%%)",
			byName["PF"].GPUSaving*100, byName["bfs"].GPUSaving*100)
	}
	if byName["lud"].GPUSaving <= byName["bfs"].GPUSaving {
		t.Errorf("lud (%.2f%%) should out-save bfs (%.2f%%)",
			byName["lud"].GPUSaving*100, byName["bfs"].GPUSaving*100)
	}
}

func TestFig7Convergence(t *testing.T) {
	kmeans, err := env.Fig7("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(kmeans.ConvergedRatio-0.20) > 0.051 {
		t.Errorf("kmeans converged to %.0f%%, want ~20%%", kmeans.ConvergedRatio*100)
	}
	if kmeans.ConvergedAfter > 6 {
		t.Errorf("kmeans took %d iterations to converge, want a handful (paper: 4)", kmeans.ConvergedAfter)
	}
	hotspot, err := env.Fig7("hotspot")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hotspot.ConvergedRatio-0.50) > 0.051 {
		t.Errorf("hotspot converged to %.0f%%, want ~50%%", hotspot.ConvergedRatio*100)
	}
	// Execution times must approach balance at convergence.
	last := kmeans.Iterations[len(kmeans.Iterations)-1]
	imbalance := math.Abs(float64(last.TC-last.TG)) / float64(last.WallTime)
	if imbalance > 0.25 {
		t.Errorf("kmeans final imbalance %.2f", imbalance)
	}
}

func TestFig8Holistic(t *testing.T) {
	for _, name := range []string{"hotspot", "kmeans"} {
		res, err := env.Fig8(name)
		if err != nil {
			t.Fatal(err)
		}
		if res.SavingVsDivision <= 0 {
			t.Errorf("%s: holistic does not beat division-only (%.2f%%)", name, res.SavingVsDivision*100)
		}
		if res.SavingVsFreqScaling <= 0 {
			t.Errorf("%s: holistic does not beat frequency-scaling-only (%.2f%%)", name, res.SavingVsFreqScaling*100)
		}
		if res.SavingVsBaseline <= 0.05 {
			t.Errorf("%s: holistic saving vs default %.2f%%, want > 5%%", name, res.SavingVsBaseline*100)
		}
		// The paper: holistic costs only 1.7% more time than division.
		if res.ExecDeltaVsDivision > 0.05 {
			t.Errorf("%s: exec +%.2f%% vs division, want small", name, res.ExecDeltaVsDivision*100)
		}
		if len(res.Iterations) == 0 {
			t.Error("no per-iteration trace")
		}
	}
}

func TestFig8AverageSaving(t *testing.T) {
	// The headline claim: 21.04% average saving for kmeans and hotspot vs
	// the Rodinia default. Accept the 15-35% band on the simulator.
	var sum float64
	for _, name := range []string{"hotspot", "kmeans"} {
		res, err := env.Fig8(name)
		if err != nil {
			t.Fatal(err)
		}
		sum += res.SavingVsBaseline
	}
	avg := sum / 2
	if avg < 0.15 || avg > 0.35 {
		t.Errorf("average holistic saving %.2f%% outside 15-35%% band (paper 21.04%%)", avg*100)
	}
}

func TestTable2Characterization(t *testing.T) {
	res, err := env.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("got %d rows, want 9", len(res.Rows))
	}
	want := map[string][2]workload.Class{
		"bfs":           {workload.High, workload.High},
		"lud":           {workload.Medium, workload.Low},
		"nbody":         {workload.High, workload.Medium},
		"PF":            {workload.Low, workload.Low},
		"srad_v2":       {workload.High, workload.Medium},
		"hotspot":       {workload.Medium, workload.Low},
		"kmeans":        {workload.Medium, workload.Low},
		"streamcluster": {workload.Low, workload.Medium},
	}
	for _, row := range res.Rows {
		if w, ok := want[row.Workload]; ok {
			if row.CoreClass != w[0] || row.MemClass != w[1] {
				t.Errorf("%s: measured classes (%v,%v), want (%v,%v)",
					row.Workload, row.CoreClass, row.MemClass, w[0], w[1])
			}
		}
		if row.Workload == "QG" || row.Workload == "streamcluster" {
			if !row.Fluctuating {
				t.Errorf("%s should be flagged fluctuating", row.Workload)
			}
		}
	}
}

func TestStaticSweepOptimality(t *testing.T) {
	res, err := env.StaticSweep("kmeans", "hotspot")
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]SweepRow{}
	for _, r := range res.Rows {
		rows[r.Workload] = r
	}
	km := rows["kmeans"]
	// Paper: optimum 15/85, converged 20/80. Band: optimum in [10,25],
	// converged within one step of it.
	if km.OptimalShare < 0.10 || km.OptimalShare > 0.25 {
		t.Errorf("kmeans optimal share %.0f%%, want 10-25%% (paper 15%%)", km.OptimalShare*100)
	}
	if math.Abs(km.ConvergedShare-km.OptimalShare) > 0.10+1e-9 {
		t.Errorf("kmeans converged %.0f%% too far from optimum %.0f%%", km.ConvergedShare*100, km.OptimalShare*100)
	}
	hs := rows["hotspot"]
	if math.Abs(hs.OptimalShare-0.50) > 0.051 {
		t.Errorf("hotspot optimal share %.0f%%, want ~50%%", hs.OptimalShare*100)
	}
	if math.Abs(hs.ConvergedShare-0.50) > 0.051 {
		t.Errorf("hotspot converged %.0f%%, want ~50%%", hs.ConvergedShare*100)
	}
	// Paper: dynamic division captures 99% of the max saving for hotspot
	// and costs 5.45% extra execution time. Accept ≥ 90% and ≤ 12%.
	if hs.SavingShare < 0.90 {
		t.Errorf("hotspot captured only %.1f%% of max saving (paper 99%%)", hs.SavingShare*100)
	}
	for _, r := range res.Rows {
		if r.ExecDeltaVsOptimal > 0.12 {
			t.Errorf("%s: dynamic exec +%.2f%% vs optimal, want <= 12%% (paper 5.45%%)", r.Workload, r.ExecDeltaVsOptimal*100)
		}
	}
}

func TestEnvHelpers(t *testing.T) {
	if _, err := env.Profile("nope"); err == nil {
		t.Error("missing profile accepted")
	}
	m := env.Machine()
	if m.GPU == nil || m.CPU == nil || m.Bus == nil {
		t.Error("machine incomplete")
	}
}

func TestFig5PowerTable(t *testing.T) {
	res, err := env.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	tab := res.PowerTable()
	if len(tab.Rows) == 0 {
		t.Fatal("power table empty")
	}
	if len(tab.Rows) < len(res.PowerScaled) {
		t.Errorf("power table truncated: %d rows for %d samples", len(tab.Rows), len(res.PowerScaled))
	}
	spark := res.Sparklines()
	for _, want := range []string{"core util", "mem MHz", "power"} {
		if !strings.Contains(spark, want) {
			t.Errorf("sparklines missing %q", want)
		}
	}
}

func TestNewEnvFromRejectsBadConfigs(t *testing.T) {
	gpu := env.GPUConfig
	gpu.SMs = 0
	if _, err := NewEnvFrom(gpu, env.CPUConfig, env.BusConfig); err == nil {
		t.Error("bad GPU config accepted")
	}
	cpu := env.CPUConfig
	cpu.Cores = 0
	if _, err := NewEnvFrom(env.GPUConfig, cpu, env.BusConfig); err == nil {
		t.Error("bad CPU config accepted")
	}
}

func TestDivisionSweepValidation(t *testing.T) {
	if _, err := env.DivisionSweep("kmeans", 0.5, 0.1, 0.1, 2); err == nil {
		t.Error("inverted sweep bounds accepted")
	}
	if _, err := env.DivisionSweep("kmeans", 0, 0.5, 0, 2); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := env.DivisionSweep("nope", 0, 0.5, 0.1, 2); err == nil {
		t.Error("missing workload accepted")
	}
}
