package experiments

import (
	"fmt"
	"time"

	"greengpu/internal/core"
	"greengpu/internal/trace"
	"greengpu/internal/units"
)

// Fig2Point is one bar of Fig. 2: total system energy for a fixed static
// division ratio.
type Fig2Point struct {
	CPUShare float64
	Energy   units.Energy
	Time     time.Duration
}

// Fig2Result is the static-division energy sweep.
type Fig2Result struct {
	Workload string
	Points   []Fig2Point
	// OptimalShare is the share with minimum energy.
	OptimalShare float64
}

// Fig2 reproduces the §III-B case study: kmeans under static division with
// the CPU share swept from 0% to 90%, all clocks at peak. The curve dips as
// the CPU relieves the GPU, bottoms at a small CPU share, and climbs as the
// slower CPU becomes the bottleneck.
func (e *Env) Fig2() (*Fig2Result, error) {
	return e.DivisionSweep("kmeans", 0, 0.9, 0.1, 6)
}

// DivisionSweep runs a static-division energy sweep over CPU shares
// [lo, hi] with the given step. iterations <= 0 uses the profile default.
// Every share is an independent fixed-ratio run on a fresh machine, so the
// sweep executes on the environment's worker pool.
func (e *Env) DivisionSweep(name string, lo, hi, step float64, iterations int) (*Fig2Result, error) {
	if step <= 0 || hi < lo {
		return nil, fmt.Errorf("experiments: invalid sweep [%v, %v] step %v", lo, hi, step)
	}
	var shares []float64
	for share := lo; share <= hi+1e-9; share += step {
		shares = append(shares, share)
	}
	points, err := mapPoints(e, shares, func(_ int, share float64) (Fig2Point, error) {
		cfg := core.DefaultConfig(core.Baseline)
		cfg.StaticRatio = &share
		if iterations > 0 {
			cfg.Iterations = iterations
		}
		r, err := e.run(name, cfg)
		if err != nil {
			return Fig2Point{}, err
		}
		return Fig2Point{
			CPUShare: share,
			Energy:   r.Energy,
			Time:     r.TotalTime,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{Workload: name, Points: points}
	energies := make([]float64, len(res.Points))
	for i, p := range res.Points {
		energies[i] = float64(p.Energy)
	}
	res.OptimalShare = res.Points[trace.ArgMin(energies)].CPUShare
	return res, nil
}

// Table renders the sweep as Fig. 2's bar heights.
func (r *Fig2Result) Table() *trace.Table {
	t := trace.NewTable(
		fmt.Sprintf("Fig. 2 — system energy vs static CPU share (%s); optimum at %.0f%%", r.Workload, r.OptimalShare*100),
		"cpu share %", "energy (kJ)", "time (s)")
	for _, p := range r.Points {
		t.AddRow(
			fmt.Sprintf("%.0f", p.CPUShare*100),
			fmt.Sprintf("%.2f", p.Energy.Joules()/1e3),
			fmt.Sprintf("%.1f", p.Time.Seconds()))
	}
	return t
}
