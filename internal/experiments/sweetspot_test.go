package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestSweetSpot pins the study's shape and markers: the full grid, exactly
// one best-energy and one best-EDP point per workload, and at least one
// scaler-pair annotation per workload (the preferred pair always lies on
// the full ladder).
func TestSweetSpot(t *testing.T) {
	e := env
	rows, err := e.SweetSpot()
	if err != nil {
		t.Fatal(err)
	}
	grid := len(e.GPUConfig.CoreLevels) * len(e.GPUConfig.MemLevels)
	if want := len(e.Profiles) * grid; len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	perWorkload := map[string]*struct{ energy, edp, scaler int }{}
	for _, r := range rows {
		c := perWorkload[r.Workload]
		if c == nil {
			c = &struct{ energy, edp, scaler int }{}
			perWorkload[r.Workload] = c
		}
		if r.BestEnergy {
			c.energy++
		}
		if r.BestEDP {
			c.edp++
		}
		if r.ScalerPair {
			c.scaler++
		}
	}
	if len(perWorkload) != len(e.Profiles) {
		t.Errorf("rows cover %d workloads, want %d", len(perWorkload), len(e.Profiles))
	}
	for name, c := range perWorkload {
		if c.energy != 1 || c.edp != 1 || c.scaler != 1 {
			t.Errorf("%s: markers = %+v, want exactly one of each", name, *c)
		}
	}
}

// TestSweetSpotDeterminism requires identical rendered output at any Jobs
// value — the study inherits the sweep engine's sharding contract.
func TestSweetSpotDeterminism(t *testing.T) {
	render := func(jobs int) string {
		e2 := *env
		e2.Jobs = jobs
		rows, err := e2.SweetSpot()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := SweetSpotTable(rows).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq, par := render(1), render(8)
	if seq != par {
		t.Error("sweet-spot output differs between Jobs=1 and Jobs=8")
	}
	if !strings.Contains(seq, "kmeans") {
		t.Error("sweet-spot table missing workload rows")
	}
}
