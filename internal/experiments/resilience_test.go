package experiments

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"greengpu/internal/core"
	"greengpu/internal/faultinject"
)

func TestFaultResilienceShape(t *testing.T) {
	rows, err := env.FaultResilience("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	want := len(resilienceClasses)*len(resilienceIntensities) + 2 // + "none" + "all"
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	if rows[0].Class != "none" || rows[0].Faults.Total() != 0 {
		t.Fatalf("first row must be the fault-free reference, got %+v", rows[0])
	}
	if last := rows[len(rows)-1]; last.Class != "all" || last.Faults.Total() == 0 {
		t.Fatalf("last row must be the all-classes default plan with faults, got %+v", last)
	}
	// Every class must inject somewhere in its sweep. (A single low-
	// intensity arm may legitimately inject nothing — a 5% transition
	// fault needs the scaler to attempt transitions — but a whole class
	// coming back empty means its channel is disconnected.)
	byClass := map[string]uint64{}
	for _, r := range rows {
		if math.IsNaN(r.EnergyDelta) || math.IsInf(r.EnergyDelta, 0) ||
			math.IsNaN(r.ExecDelta) || math.IsInf(r.ExecDelta, 0) {
			t.Errorf("%s/%s: non-finite deltas %+v", r.Workload, r.Class, r)
		}
		byClass[r.Class] += r.Faults.Total()
	}
	for _, c := range resilienceClasses {
		if byClass[c.name] == 0 {
			t.Errorf("class %s injected nothing across its whole sweep", c.name)
		}
	}
}

// TestFaultResilienceRecoveryEvidence: the sweep must actually exercise the
// recovery machinery — transition rejection causes retries or watchdog
// trips, and sensor drops engage hold-last-good.
func TestFaultResilienceRecoveryEvidence(t *testing.T) {
	rows, err := env.FaultResilience("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	var drops, rejects uint64
	for _, r := range rows {
		switch r.Class {
		case "sensor-drop":
			drops += r.Recoveries.HeldSamples
		case "transition-reject":
			rejects += r.Recoveries.Retries + r.Recoveries.WatchdogTrips
		}
	}
	if drops == 0 {
		t.Error("sensor-drop sweep never engaged hold-last-good")
	}
	if rejects == 0 {
		t.Error("transition-reject sweep never retried or tripped the watchdog")
	}
}

// TestFaultResilienceDeterministicAcrossJobs: the study must be
// byte-identical at any worker count — the property the CI chaos job
// enforces end-to-end on the emitted CSV.
func TestFaultResilienceDeterministicAcrossJobs(t *testing.T) {
	render := func(jobs int) []byte {
		e := *env
		e.Jobs = jobs
		rows, err := e.FaultResilience("kmeans", "hotspot")
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := FaultResilienceTable(rows).WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	if seq, par := render(1), render(8); !bytes.Equal(seq, par) {
		t.Fatal("fault_resilience CSV differs between Jobs=1 and Jobs=8")
	}
}

// TestChaosPlanAppliesAmbiently: an Env.FaultPlan must reach runs whose
// configs carry no plan, lose to per-point plans, and carry into derived
// environments.
func TestChaosPlanAppliesAmbiently(t *testing.T) {
	ambient := faultinject.Default(1)
	e := *env
	e.FaultPlan = &ambient

	faulty, err := e.run("kmeans", core.DefaultConfig(core.Holistic))
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Faults.Total() == 0 {
		t.Error("ambient plan did not reach a plain run")
	}
	clean, err := env.run("kmeans", core.DefaultConfig(core.Holistic))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(clean, faulty) {
		t.Error("ambient plan left the run unchanged")
	}

	// A per-point plan wins over the ambient one: the same explicit-plan
	// run must be identical with and without chaos mode.
	explicit := faultinject.Plan{Seed: 9, StragglerRate: 1, StragglerFactor: 2}
	withChaos := core.DefaultConfig(core.Baseline)
	withChaos.FaultPlan = &explicit
	a, err := e.run("kmeans", withChaos)
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.run("kmeans", withChaos)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("ambient plan overrode a per-point plan")
	}

	d, err := e.derive(e.GPUConfig, e.CPUConfig, e.BusConfig)
	if err != nil {
		t.Fatal(err)
	}
	if d.FaultPlan != e.FaultPlan {
		t.Error("derive dropped the ambient fault plan")
	}
}
