package experiments

import (
	"bytes"
	"math"
	"testing"
)

// TestPredictValidation pins the study's structural contract and — because
// the committed CSV feeds cmd/predictgate — that every row meets CI's
// exact accuracy thresholds: 6×6 spots byte-exact, dense spots within one
// step or 5% measured energy regret, median relative energy error within
// 5% everywhere.
func TestPredictValidation(t *testing.T) {
	rows, err := env.PredictValidation()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(env.Profiles); len(rows) != want {
		t.Fatalf("got %d rows, want %d (two ladders x every workload)", len(rows), want)
	}
	for _, r := range rows {
		switch r.Ladder {
		case "6x6":
			if r.Points != 36 {
				t.Errorf("%s %s: points = %d, want 36", r.Ladder, r.Workload, r.Points)
			}
			// The study's verification budget makes the testbed ladder
			// exact — the same contract the sweep tests pin byte-for-byte.
			if r.SpotDist != 0 || r.EnergyRegret != 0 {
				t.Errorf("%s %s: spot_dist = %d, regret = %v, want exact hit",
					r.Ladder, r.Workload, r.SpotDist, r.EnergyRegret)
			}
		case "24x24":
			if r.Points != 576 {
				t.Errorf("%s %s: points = %d, want 576", r.Ladder, r.Workload, r.Points)
			}
			if r.SpotDist > 1 && r.EnergyRegret > 0.05 {
				t.Errorf("%s %s: spot_dist = %d with regret %v — outside the gate",
					r.Ladder, r.Workload, r.SpotDist, r.EnergyRegret)
			}
		default:
			t.Fatalf("unknown ladder %q", r.Ladder)
		}
		if r.FullEvals >= r.Points {
			t.Errorf("%s %s: %d full evals on %d points — no reduction",
				r.Ladder, r.Workload, r.FullEvals, r.Points)
		}
		if r.MedRelEnergy > 0.05 {
			t.Errorf("%s %s: med_rel_energy = %v > 0.05", r.Ladder, r.Workload, r.MedRelEnergy)
		}
		if r.EnergyRegret < 0 {
			t.Errorf("%s %s: negative regret %v (spot better than brute force?)",
				r.Ladder, r.Workload, r.EnergyRegret)
		}
		if math.IsNaN(r.SpearmanEnergy) || r.SpearmanEnergy < 0.5 {
			t.Errorf("%s %s: spearman_energy = %v, want a strong positive rank correlation",
				r.Ladder, r.Workload, r.SpearmanEnergy)
		}
	}
}

func TestPredictValidationDeterminism(t *testing.T) {
	render := func(jobs int) string {
		e2 := *env
		e2.Jobs = jobs
		rows, err := e2.PredictValidation()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := PredictValidationTable(rows).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq, par := render(1), render(8)
	if seq != par {
		t.Error("prediction validation output differs between Jobs=1 and Jobs=8")
	}
}
