package experiments

import (
	"math"
	"testing"
)

func TestDividerComparison(t *testing.T) {
	rows, err := env.DividerComparison("kmeans", "hotspot")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	byKey := map[string]DividerRow{}
	for _, r := range rows {
		byKey[r.Workload+"/"+r.Policy] = r
		// Both policies must find the same balance point.
		var want float64
		switch r.Workload {
		case "kmeans":
			want = 0.20
		case "hotspot":
			want = 0.50
		}
		if math.Abs(r.FinalRatio-want) > 0.051 {
			t.Errorf("%s/%s final ratio %.2f, want ~%.2f", r.Workload, r.Policy, r.FinalRatio, want)
		}
		if r.ConvergedAfter < 0 {
			t.Errorf("%s/%s never settled", r.Workload, r.Policy)
		}
	}
	// Qilin's one-jump mapping must settle at least as fast as the step
	// heuristic on hotspot, where its 50% probe is the optimum.
	if byKey["hotspot/qilin-adaptive"].ConvergedAfter > byKey["hotspot/greengpu-step"].ConvergedAfter {
		t.Errorf("qilin (%d) slower than step (%d) on hotspot",
			byKey["hotspot/qilin-adaptive"].ConvergedAfter,
			byKey["hotspot/greengpu-step"].ConvergedAfter)
	}
}

func TestAsyncValidation(t *testing.T) {
	rows, err := env.AsyncValidation("kmeans", "lud")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Asynchronous communication must beat synchronous spin-waits.
		if r.AsyncEnergy >= r.SpinEnergy {
			t.Errorf("%s: async (%v) not below sync (%v)", r.Workload, r.AsyncEnergy, r.SpinEnergy)
		}
		// The paper's Fig. 6c emulation must track the genuine async run
		// closely. On this testbed model they agree exactly: execution
		// time is GPU-driven in both, and the genuinely idle CPU rests
		// at the lowest P-state — the emulation's substitution.
		if math.Abs(r.EmulationError) > 0.02 {
			t.Errorf("%s: emulation error %.2f%%, want within ±2%%", r.Workload, r.EmulationError*100)
		}
	}
}

func TestActuatorFaults(t *testing.T) {
	rows, err := env.ActuatorFaults("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d scenarios", len(rows))
	}
	for _, r := range rows {
		// Graceful degradation: no fault may blow up execution time.
		if r.ExecDelta > 0.10 {
			t.Errorf("%s: exec delta %.1f%% too high", r.Scenario, r.ExecDelta*100)
		}
	}
	// Stuck-at-peak must neutralize the scaler (≈ best-performance).
	last := rows[3]
	if math.Abs(last.GPUSaving) > 0.01 {
		t.Errorf("stuck-at-peak saving %.2f%%, want ~0", last.GPUSaving*100)
	}
}

func TestPortability(t *testing.T) {
	rows, err := env.Portability()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d devices", len(rows))
	}
	for _, r := range rows {
		if r.AvgGPUSaving <= 0.02 {
			t.Errorf("%s: avg GPU saving %.2f%%, want positive", r.Device, r.AvgGPUSaving*100)
		}
		if r.HolisticSaving <= 0.10 {
			t.Errorf("%s: holistic saving %.2f%%, want > 10%%", r.Device, r.HolisticSaving*100)
		}
		if math.Abs(r.KmeansConverged-0.20) > 0.051 || math.Abs(r.HotspotConverged-0.50) > 0.051 {
			t.Errorf("%s: convergence points moved: kmeans %.2f hotspot %.2f",
				r.Device, r.KmeansConverged, r.HotspotConverged)
		}
	}
}

func TestFixed8Comparison(t *testing.T) {
	rows, err := env.Fixed8Comparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// The §VI claim: 8-bit precision tracks the float implementation.
		if math.Abs(r.SavingFixed8-r.SavingFloat) > 0.02 {
			t.Errorf("%s: fixed8 saving %.2f%% vs float %.2f%% — more than 2 points apart",
				r.Workload, r.SavingFixed8*100, r.SavingFloat*100)
		}
		if math.Abs(r.ExecDeltaFixed-r.ExecDeltaFloat) > 0.02 {
			t.Errorf("%s: fixed8 exec %.2f%% vs float %.2f%%",
				r.Workload, r.ExecDeltaFixed*100, r.ExecDeltaFloat*100)
		}
	}
}

func TestCPUCapability(t *testing.T) {
	rows, err := env.CPUCapability("kmeans", "hotspot")
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]CPURow{}
	for _, r := range rows {
		byKey[r.CPU[:13]+"/"+r.Workload] = r
	}
	// kmeans: X2 balances at 20%, X4 (2x throughput) near 1/3.
	x2 := byKey["Phenom II X2 /kmeans"]
	x4 := byKey["Phenom II X4 /kmeans"]
	if math.Abs(x2.ConvergedShare-0.20) > 0.051 {
		t.Errorf("X2 kmeans converged to %.2f, want ~0.20", x2.ConvergedShare)
	}
	if math.Abs(x4.ConvergedShare-1.0/3) > 0.051 {
		t.Errorf("X4 kmeans converged to %.2f, want ~0.33", x4.ConvergedShare)
	}
	// The beefier CPU must shorten the run.
	if x4.ExecTime >= x2.ExecTime {
		t.Errorf("X4 run (%v) not faster than X2 (%v)", x4.ExecTime, x2.ExecTime)
	}
	// hotspot: X2 balances at 50%, X4 at 2/3.
	h4 := byKey["Phenom II X4 /hotspot"]
	if math.Abs(h4.ConvergedShare-2.0/3) > 0.051 {
		t.Errorf("X4 hotspot converged to %.2f, want ~0.67", h4.ConvergedShare)
	}
}

func TestSMComparison(t *testing.T) {
	rows, err := env.SMComparison()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SMRow{}
	for _, r := range rows {
		byName[r.Workload] = r
	}
	// Low-core-utilization PF: gating unused SMs is free energy.
	pf := byName["PF"]
	if pf.SMSaving < 0.05 {
		t.Errorf("PF SM saving %.2f%%, want > 5%%", pf.SMSaving*100)
	}
	if pf.SMExecDelta > 0.01 {
		t.Errorf("PF SM exec delta %.2f%%, want ~0", pf.SMExecDelta*100)
	}
	// Compute-bound nbody: nothing to gate, nothing gained or lost.
	nb := byName["nbody"]
	if math.Abs(nb.SMSaving) > 0.01 || nb.SMExecDelta > 0.01 {
		t.Errorf("nbody SM row = %+v, want neutral", nb)
	}
	// Combining the knobs must beat either alone on the steady
	// medium-utilization workloads.
	for _, name := range []string{"PF", "hotspot", "kmeans", "lud"} {
		r := byName[name]
		if r.CombinedSaving <= r.FreqSaving || r.CombinedSaving <= r.SMSaving {
			t.Errorf("%s: combined %.2f%% does not beat freq %.2f%% / sm %.2f%%",
				name, r.CombinedSaving*100, r.FreqSaving*100, r.SMSaving*100)
		}
	}
	// The finding: utilization-reactive core-count scaling pays a real
	// execution cost on phase-fluctuating workloads, where the WMA
	// frequency scaler stays within ~1%.
	if byName["QG"].SMExecDelta < 0.05 {
		t.Errorf("QG SM exec delta %.2f%%, expected the fluctuation penalty", byName["QG"].SMExecDelta*100)
	}
	if byName["QG"].FreqExecDelta > 0.02 {
		t.Errorf("QG freq exec delta %.2f%%, want small", byName["QG"].FreqExecDelta*100)
	}
}
