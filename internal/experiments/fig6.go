package experiments

import (
	"fmt"
	"time"

	"greengpu/internal/trace"
	"greengpu/internal/units"
	"greengpu/internal/workload"
)

// Fig6Row is one workload's frequency-scaling result, spanning the three
// panels of Fig. 6.
type Fig6Row struct {
	Workload string

	// GPUSaving is panel (a): GPU energy saved vs best-performance.
	GPUSaving float64
	// DynamicSaving is panel (b): dynamic GPU energy (runtime minus idle)
	// saved vs best-performance.
	DynamicSaving float64
	// ExecDelta is panel (b)'s companion: execution-time increase.
	ExecDelta float64
	// SystemSaving is panel (c): whole-system energy saved when both the
	// CPU and GPU are throttled, with idle spin-waits accounted at the
	// lowest CPU P-state (the paper's emulation).
	SystemSaving float64

	ExecScaled time.Duration
	ExecBase   time.Duration
	GPUScaled  units.Energy
	GPUBase    units.Energy
}

// Fig6Summary aggregates the per-workload rows.
type Fig6Summary struct {
	AvgGPUSaving     float64
	MaxGPUSaving     float64
	AvgDynamicSaving float64
	AvgExecDelta     float64
	AvgSystemSaving  float64
}

// Fig6Result holds the full Fig. 6 dataset.
type Fig6Result struct {
	Rows    []Fig6Row
	Summary Fig6Summary
}

// Fig6 reproduces §VII-A: every Table II workload run GPU-only under the
// frequency-scaling tier, compared with the best-performance policy.
// The paper's headline numbers: 5.97% average GPU energy saving (up to
// 14.53%), 29.2% average dynamic saving at 2.95% longer execution, and
// 12.48% average saving when both CPU and GPU are throttled (emulated).
func (e *Env) Fig6() (*Fig6Result, error) {
	// Idle power of the GPU at its default (lowest) clocks defines the
	// "idle energy" subtracted in panel (b); the CPU analogue feeds the
	// panel (c) emulation. Both depend only on the device configurations,
	// so they are computed once, outside the fan-out.
	idleGPU := e.gpuIdlePowerAtLowest()
	idleCPU := e.cpuIdlePowerAtLowest()

	rows, err := mapPoints(e, e.Profiles, func(_ int, p *workload.Profile) (Fig6Row, error) {
		scaled, err := e.run(p.Name, scalingConfig())
		if err != nil {
			return Fig6Row{}, err
		}
		base, err := e.run(p.Name, baselineConfig(0))
		if err != nil {
			return Fig6Row{}, err
		}

		row := Fig6Row{
			Workload:   p.Name,
			ExecScaled: scaled.TotalTime,
			ExecBase:   base.TotalTime,
			GPUScaled:  scaled.EnergyGPU,
			GPUBase:    base.EnergyGPU,
		}
		row.GPUSaving = 1 - float64(scaled.EnergyGPU)/float64(base.EnergyGPU)
		dynScaled := scaled.EnergyGPU - idleGPU.Over(scaled.TotalTime)
		dynBase := base.EnergyGPU - idleGPU.Over(base.TotalTime)
		if dynBase > 0 {
			row.DynamicSaving = 1 - float64(dynScaled)/float64(dynBase)
		}
		row.ExecDelta = float64(scaled.TotalTime)/float64(base.TotalTime) - 1

		// Panel (c): whole-system comparison with the CPU spin-wait
		// energy replaced by lowest-P-state idle energy on both sides
		// of the comparison's scaled run (the baseline keeps its real
		// measured energy, as in the paper).
		emulated := scaled.EmulatedEnergyCPUThrottled(idleCPU)
		row.SystemSaving = 1 - float64(emulated)/float64(base.Energy)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{Rows: rows}

	var gs, ds, ed, ss []float64
	for _, r := range res.Rows {
		gs = append(gs, r.GPUSaving)
		ds = append(ds, r.DynamicSaving)
		ed = append(ed, r.ExecDelta)
		ss = append(ss, r.SystemSaving)
	}
	res.Summary = Fig6Summary{
		AvgGPUSaving:     trace.Mean(gs),
		MaxGPUSaving:     trace.Max(gs),
		AvgDynamicSaving: trace.Mean(ds),
		AvgExecDelta:     trace.Mean(ed),
		AvgSystemSaving:  trace.Mean(ss),
	}
	return res, nil
}

func (e *Env) gpuIdlePowerAtLowest() units.Power {
	p := e.GPUConfig.Power
	fcR := float64(e.GPUConfig.CoreLevels[0]) / float64(e.GPUConfig.CoreLevels[len(e.GPUConfig.CoreLevels)-1])
	fmR := float64(e.GPUConfig.MemLevels[0]) / float64(e.GPUConfig.MemLevels[len(e.GPUConfig.MemLevels)-1])
	return p.Board + units.Power(fcR)*p.CoreClockTree + units.Power(fmR)*p.MemClockTree
}

func (e *Env) cpuIdlePowerAtLowest() units.Power {
	m := e.Machine()
	return m.CPU.IdlePowerAt(0)
}

// Table renders all three panels as one row per workload.
func (r *Fig6Result) Table() *trace.Table {
	t := trace.NewTable(
		fmt.Sprintf("Fig. 6 — frequency-scaling savings vs best-performance (avg GPU %.2f%%, max %.2f%%; avg dynamic %.1f%% at +%.2f%% exec; avg CPU+GPU %.2f%%)",
			r.Summary.AvgGPUSaving*100, r.Summary.MaxGPUSaving*100,
			r.Summary.AvgDynamicSaving*100, r.Summary.AvgExecDelta*100,
			r.Summary.AvgSystemSaving*100),
		"workload", "gpu saving %", "dynamic saving %", "exec delta %", "cpu+gpu saving %")
	for _, row := range r.Rows {
		t.AddRow(row.Workload,
			fmt.Sprintf("%.2f", row.GPUSaving*100),
			fmt.Sprintf("%.2f", row.DynamicSaving*100),
			fmt.Sprintf("%.2f", row.ExecDelta*100),
			fmt.Sprintf("%.2f", row.SystemSaving*100))
	}
	return t
}
