package experiments

import (
	"fmt"
	"time"

	"greengpu/internal/dvfs"
	"greengpu/internal/sweep"
	"greengpu/internal/trace"
	"greengpu/internal/units"
)

// SweetSpotRow is one (workload, core, mem) point of the ladder² study,
// annotated with the per-workload markers the table renders.
type SweetSpotRow struct {
	Workload   string
	Core, Mem  int
	CoreMHz    float64
	MemMHz     float64
	ExecTime   time.Duration
	Energy     units.Energy
	EDP        float64 // energy-delay product, J·s
	BestEnergy bool    // lowest total energy of the workload's ladder
	BestEDP    bool    // lowest EDP of the workload's ladder
	ScalerPair bool    // the pair Eq. 3 prefers for the workload's
	// aggregate utilizations — where the WMA scaler would settle.
}

// SweetSpot runs the full ladder² sweet-spot study: every workload across
// the complete (core × mem) GPU frequency ladder at the peak CPU P-state —
// the paper's Fig. 1 sweeps, extended from single-domain slices to the full
// grid. Per workload it marks the minimum-energy and minimum-EDP points,
// and the pair the Eq. 3 loss model prefers for the workload's aggregate
// utilizations (the open-loop prediction of where the tier-2 scaler
// converges). The batch goes through the sweep engine, so the grid shares
// level tables and the environment's run cache.
func (e *Env) SweetSpot() ([]SweetSpotRow, error) {
	eng := &sweep.Engine{
		GPU:       e.GPUConfig,
		CPU:       e.CPUConfig,
		Bus:       e.BusConfig,
		Profiles:  e.Profiles,
		Jobs:      e.Jobs,
		Cache:     e.Cache,
		FaultPlan: e.FaultPlan,
	}
	// Iterations 4 matches the per-point frequency studies (Fig. 1), so
	// ladder points share their run-cache keys with them.
	results, err := eng.Run(sweep.Spec{Iterations: 4, CPULevel: -1})
	if err != nil {
		return nil, err
	}

	rows := make([]SweetSpotRow, len(results))
	for i, pr := range results {
		r := pr.Result
		rows[i] = SweetSpotRow{
			Workload: pr.Workload,
			Core:     pr.Core,
			Mem:      pr.Mem,
			CoreMHz:  e.GPUConfig.CoreLevels[pr.Core].MHz(),
			MemMHz:   e.GPUConfig.MemLevels[pr.Mem].MHz(),
			ExecTime: r.TotalTime,
			Energy:   r.Energy,
			EDP:      r.Energy.Joules() * r.TotalTime.Seconds(),
		}
	}

	// Per-workload markers. Expand order groups each workload's ladder
	// contiguously; strict less-than keeps the first (lowest-level) point
	// on ties, deterministically.
	params := dvfs.DefaultParams()
	for start := 0; start < len(rows); {
		end := start + 1
		for end < len(rows) && rows[end].Workload == rows[start].Workload {
			end++
		}
		bestE, bestEDP := start, start
		for i := start + 1; i < end; i++ {
			if rows[i].Energy < rows[bestE].Energy {
				bestE = i
			}
			if rows[i].EDP < rows[bestEDP].EDP {
				bestEDP = i
			}
		}
		rows[bestE].BestEnergy = true
		rows[bestEDP].BestEDP = true

		p, err := e.Profile(rows[start].Workload)
		if err != nil {
			return nil, err
		}
		uc, um := p.AggregateUtilization()
		d := dvfs.PreferredPair(e.GPUConfig.CoreLevels, e.GPUConfig.MemLevels, params, uc, um)
		for i := start; i < end; i++ {
			if rows[i].Core == d.CoreLevel && rows[i].Mem == d.MemLevel {
				rows[i].ScalerPair = true
			}
		}
		start = end
	}
	return rows, nil
}

// SweetSpotTable renders the study as one table, one row per grid point.
// Markers render as "*" so the CSV stays greppable.
func SweetSpotTable(rows []SweetSpotRow) *trace.Table {
	t := trace.NewTable(
		"Sweet spot — full ladder² energy/EDP study (CPU at peak)",
		"workload", "core_mhz", "mem_mhz", "exec_s", "energy_j", "edp_js",
		"best_energy", "best_edp", "scaler_pair")
	mark := func(b bool) string {
		if b {
			return "*"
		}
		return ""
	}
	for _, r := range rows {
		t.AddRow(r.Workload,
			fmt.Sprintf("%.0f", r.CoreMHz),
			fmt.Sprintf("%.0f", r.MemMHz),
			fmt.Sprintf("%.6f", r.ExecTime.Seconds()),
			fmt.Sprintf("%.6f", r.Energy.Joules()),
			fmt.Sprintf("%.6f", r.EDP),
			mark(r.BestEnergy), mark(r.BestEDP), mark(r.ScalerPair))
	}
	return t
}
