package experiments

import (
	"fmt"

	"greengpu/internal/core"
	"greengpu/internal/trace"
)

// Fig7Result is one workload's division-convergence trace (paper Fig. 7):
// per-iteration CPU share and both sides' execution times, with tier 2
// disabled and all clocks at peak.
type Fig7Result struct {
	Workload string
	// Iterations carries R, TC and TG per iteration.
	Iterations []core.IterationStats
	// ConvergedRatio is the final CPU share.
	ConvergedRatio float64
	// ConvergedAfter is the first iteration index after which the ratio
	// no longer changed.
	ConvergedAfter int
}

// Fig7 runs the division trace for one workload (the paper shows kmeans,
// which converges to 20/80 after ~4 iterations from a 30% start, and
// hotspot, which converges to 50/50).
func (e *Env) Fig7(name string) (*Fig7Result, error) {
	cfg := core.DefaultConfig(core.Division)
	r, err := e.run(name, cfg)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{
		Workload:       name,
		Iterations:     r.Iterations,
		ConvergedRatio: r.FinalRatio,
	}
	res.ConvergedAfter = len(r.Iterations) - 1
	for i := len(r.Iterations) - 1; i >= 0; i-- {
		if r.Iterations[i].R != res.ConvergedRatio {
			break
		}
		res.ConvergedAfter = i
	}
	return res, nil
}

// Table renders the trace in Fig. 7's layout.
func (r *Fig7Result) Table() *trace.Table {
	t := trace.NewTable(
		fmt.Sprintf("Fig. 7 — workload division trace (%s): converged to %.0f/%.0f (CPU/GPU) after %d iterations",
			r.Workload, r.ConvergedRatio*100, (1-r.ConvergedRatio)*100, r.ConvergedAfter),
		"iteration", "cpu share %", "tc (s)", "tg (s)")
	for _, it := range r.Iterations {
		t.AddRow(
			fmt.Sprintf("%d", it.Index+1),
			fmt.Sprintf("%.0f", it.R*100),
			fmt.Sprintf("%.1f", it.TC.Seconds()),
			fmt.Sprintf("%.1f", it.TG.Seconds()))
	}
	return t
}
