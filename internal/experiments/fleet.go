package experiments

import (
	"fmt"
	"time"

	"greengpu/internal/core"
	"greengpu/internal/fleet"
	"greengpu/internal/trace"
	"greengpu/internal/units"
)

// FleetStudySizes are the fleet sizes of the canonical fleet study:
// rack-, pod- and datacenter-scale.
var FleetStudySizes = []int{1000, 10000, 100000}

// FleetStudyLevels are the fault-intensity levels of the canonical fleet
// study: fault-free, half the moderate default plan, and the default plan
// itself (the chaos-mode intensity).
var FleetStudyLevels = []int{0, 1, 2}

// FleetRow is one (fleet size, fault intensity) cell of the fleet study.
type FleetRow struct {
	Nodes      int
	FaultLevel int
	Groups     int
	DedupRatio float64
	Energy     units.Energy
	EDP        float64
	Wall       time.Duration
	Misses     uint64
	MissRate   float64
	Faults     uint64
}

// FleetStudy evaluates the canonical fleet grid — FleetStudySizes ×
// FleetStudyLevels, both device classes, every workload, the baseline /
// frequency-scaling / holistic modes, deadlines at 1.1× — through the
// dedup-compressed fleet engine. Node counts grow 100×, but each cell
// simulates only its distinct configuration groups, so the study stays
// routine where a naive per-node loop would take hours; the engine shares
// the environment's worker pool, run cache and chaos plan.
func (e *Env) FleetStudy() ([]FleetRow, error) {
	eng := &fleet.Engine{Jobs: e.Jobs, Cache: e.Cache, FaultPlan: e.FaultPlan}
	rows := make([]FleetRow, 0, len(FleetStudySizes)*len(FleetStudyLevels))
	for _, nodes := range FleetStudySizes {
		for _, level := range FleetStudyLevels {
			res, err := eng.Run(fleet.Spec{
				Nodes:          nodes,
				Seed:           fleet.DefaultSeed,
				Modes:          []core.Mode{core.Baseline, core.FreqScaling, core.Holistic},
				FaultLevels:    []int{level},
				Iterations:     4,
				DeadlineFactor: 1.1,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, FleetRow{
				Nodes:      nodes,
				FaultLevel: level,
				Groups:     len(res.Groups),
				DedupRatio: res.DedupRatio(),
				Energy:     res.Agg.Energy,
				EDP:        res.Agg.EDP,
				Wall:       res.Agg.Wall,
				Misses:     res.Agg.DeadlineMisses,
				MissRate:   float64(res.Agg.DeadlineMisses) / float64(nodes),
				Faults:     res.Agg.Faults.Total(),
			})
		}
	}
	return rows, nil
}

// FleetStudyTable renders the fleet study as the suite's standard table:
// one row per (fleet size, fault intensity) cell with its dedup economics
// and energy/deadline aggregates.
func FleetStudyTable(rows []FleetRow) *trace.Table {
	t := trace.NewTable(
		"Fleet study — energy/deadline aggregates across fleet sizes and fault intensities",
		"nodes", "fault_level", "groups", "dedup_ratio", "energy_j",
		"edp_js", "wall_s", "deadline_misses", "miss_rate", "faults_total")
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d", r.Nodes),
			fmt.Sprintf("%d", r.FaultLevel),
			fmt.Sprintf("%d", r.Groups),
			fmt.Sprintf("%.2f", r.DedupRatio),
			fmt.Sprintf("%.6f", r.Energy.Joules()),
			fmt.Sprintf("%.6f", r.EDP),
			fmt.Sprintf("%.6f", r.Wall.Seconds()),
			fmt.Sprintf("%d", r.Misses),
			fmt.Sprintf("%.6f", r.MissRate),
			fmt.Sprintf("%d", r.Faults))
	}
	return t
}
