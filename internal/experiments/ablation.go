package experiments

import (
	"fmt"
	"time"

	"greengpu/internal/core"
	"greengpu/internal/division"
	"greengpu/internal/dvfs"
	"greengpu/internal/faultinject"
	"greengpu/internal/trace"
	"greengpu/internal/units"
)

// This file holds the ablation studies DESIGN.md §6 calls out: sensitivity
// of the two tiers to their tuning constants and robustness to sensor
// faults. None of these reproduce a specific paper figure; they probe the
// design choices the paper justifies qualitatively (step size trade-off in
// §V-B, safeguard necessity, the manually tuned α/β/φ in §V-A, the
// tier-decoupling argument in §IV).

// StepRow is one division step size's outcome.
type StepRow struct {
	Step float64
	// ConvergeIters is the first iteration after which the ratio stayed
	// fixed; -1 if it never settled.
	ConvergeIters int
	// Flips counts ratio changes in the second half of the run —
	// post-convergence oscillation.
	Flips  int
	Energy units.Energy
}

// AblationDivisionStep sweeps the division step size. The paper's argument:
// small steps converge slowly, large steps oscillate; 5% balances the two.
func (e *Env) AblationDivisionStep(name string, steps []float64) ([]StepRow, error) {
	return mapPoints(e, steps, func(_ int, step float64) (StepRow, error) {
		cfg := core.DefaultConfig(core.Division)
		cfg.Division.Step = step
		r, err := e.run(name, cfg)
		if err != nil {
			return StepRow{}, err
		}
		return StepRow{
			Step:          step,
			ConvergeIters: convergeIter(r.Iterations),
			Flips:         tailFlips(r.Iterations),
			Energy:        r.Energy,
		}, nil
	})
}

// convergeTolerance treats ratios this close as settled — continuous
// policies (Qilin) refit every iteration and jitter in float noise.
const convergeTolerance = 1e-3

func convergeIter(iters []core.IterationStats) int {
	if len(iters) == 0 {
		return -1
	}
	settled := func(a, b float64) bool {
		d := a - b
		return d < convergeTolerance && d > -convergeTolerance
	}
	final := iters[len(iters)-1].R
	at := len(iters) - 1
	for i := len(iters) - 1; i >= 0; i-- {
		if !settled(iters[i].R, final) {
			break
		}
		at = i
	}
	if at == len(iters)-1 && len(iters) > 1 && !settled(iters[at].R, iters[at-1].R) {
		return -1 // still moving on the last iteration
	}
	return at
}

func tailFlips(iters []core.IterationStats) int {
	flips := 0
	for i := len(iters)/2 + 1; i < len(iters); i++ {
		if iters[i].R != iters[i-1].R {
			flips++
		}
	}
	return flips
}

// SafeguardRow compares one workload with and without the oscillation
// safeguard.
type SafeguardRow struct {
	Workload       string
	EnergyWith     units.Energy
	EnergyWithout  units.Energy
	FlipsWith      int
	FlipsWithout   int
	SafeguardHolds int // times the safeguard kept the ratio
}

// AblationSafeguard runs the §V-B safeguard A/B. The two arms are
// independent runs, so they execute concurrently.
func (e *Env) AblationSafeguard(name string) (*SafeguardRow, error) {
	row := &SafeguardRow{Workload: name}
	arms, err := mapPoints(e, []bool{true, false}, func(_ int, safeguard bool) (*core.Result, error) {
		cfg := core.DefaultConfig(core.Division)
		cfg.Division.Safeguard = safeguard
		return e.run(name, cfg)
	})
	if err != nil {
		return nil, err
	}
	with, without := arms[0], arms[1]
	row.EnergyWith = with.Energy
	row.EnergyWithout = without.Energy
	row.FlipsWith = tailFlips(with.Iterations)
	row.FlipsWithout = tailFlips(without.Iterations)
	for _, obs := range with.DivisionHistory {
		if obs.Action == division.ActionHoldSafeguard {
			row.SafeguardHolds++
		}
	}
	return row, nil
}

// ScalerParamRow is one (α_c, α_m, φ, β) variant's outcome on a GPU-only
// frequency-scaling run.
type ScalerParamRow struct {
	Params    dvfs.Params
	GPUSaving float64
	ExecDelta float64
}

// AblationScalerParams sweeps WMA constants around the paper's values on
// one workload, reporting GPU energy saving and execution cost vs
// best-performance.
func (e *Env) AblationScalerParams(name string, variants []dvfs.Params) ([]ScalerParamRow, error) {
	base, err := e.run(name, baselineConfig(0))
	if err != nil {
		return nil, err
	}
	return mapPoints(e, variants, func(_ int, p dvfs.Params) (ScalerParamRow, error) {
		cfg := core.DefaultConfig(core.FreqScaling)
		cfg.GPUScaler = p
		r, err := e.run(name, cfg)
		if err != nil {
			return ScalerParamRow{}, err
		}
		return ScalerParamRow{
			Params:    p,
			GPUSaving: 1 - float64(r.EnergyGPU)/float64(base.EnergyGPU),
			ExecDelta: float64(r.TotalTime)/float64(base.TotalTime) - 1,
		}, nil
	})
}

// DecouplingRow is one DVFS-interval setting's outcome under the holistic
// mode — probing §IV's argument that the division period must be much
// longer than the scaling period.
type DecouplingRow struct {
	DVFSInterval time.Duration
	// IterationsPerDivision is roughly how many scaling decisions fit in
	// one division interval.
	StepsPerIteration float64
	Energy            units.Energy
	ExecTime          time.Duration
	RatioFlips        int
}

// AblationDecoupling sweeps tier 2's interval under the holistic mode.
func (e *Env) AblationDecoupling(name string, intervals []time.Duration) ([]DecouplingRow, error) {
	return mapPoints(e, intervals, func(_ int, iv time.Duration) (DecouplingRow, error) {
		cfg := core.DefaultConfig(core.Holistic)
		cfg.DVFSInterval = iv
		r, err := e.run(name, cfg)
		if err != nil {
			return DecouplingRow{}, err
		}
		steps := 0.0
		if len(r.Iterations) > 0 {
			steps = float64(r.DVFSSteps) / float64(len(r.Iterations))
		}
		return DecouplingRow{
			DVFSInterval:      iv,
			StepsPerIteration: steps,
			Energy:            r.Energy,
			ExecTime:          r.TotalTime,
			RatioFlips:        tailFlips(r.Iterations),
		}, nil
	})
}

// NoiseRow is one sensor-noise level's outcome.
type NoiseRow struct {
	Sigma     float64
	GPUSaving float64
	ExecDelta float64
}

// sensorNoiseSeed is the base seed for sensor-noise injection. The fault
// injector's GPU-noise channel derives the per-sigma stream from it.
const sensorNoiseSeed = 42

// AblationSensorNoise injects uniform ±sigma noise into the utilization
// readings and measures how gracefully the scaler degrades.
//
// The noise comes from internal/faultinject's GPU-sensor noise channel,
// which preserves this ablation's original stateless derivation: sample k
// of the sigma=σ run is the same value no matter which other runs
// executed, in what order, on how many workers, or which other sigmas
// appear in the sweep. Each row is therefore a pure function of
// (workload, sigma) under any execution schedule — and, because a fault
// plan is plain data where the old SensorFilter closure was opaque code,
// the rows now memoize through the run cache too.
// TestAblationSensorNoiseGolden pins the rendered CSV byte-for-byte
// against the pre-rewire results/ablations_5.csv.
func (e *Env) AblationSensorNoise(name string, sigmas []float64) ([]NoiseRow, error) {
	base, err := e.run(name, baselineConfig(0))
	if err != nil {
		return nil, err
	}
	return mapPoints(e, sigmas, func(_ int, sigma float64) (NoiseRow, error) {
		cfg := core.DefaultConfig(core.FreqScaling)
		cfg.FaultPlan = &faultinject.Plan{Seed: sensorNoiseSeed, GPUNoiseSigma: sigma}
		r, err := e.run(name, cfg)
		if err != nil {
			return NoiseRow{}, err
		}
		return NoiseRow{
			Sigma:     sigma,
			GPUSaving: 1 - float64(r.EnergyGPU)/float64(base.EnergyGPU),
			ExecDelta: float64(r.TotalTime)/float64(base.TotalTime) - 1,
		}, nil
	})
}

// NoiseTable renders the sensor-noise ablation rows. It is the exact
// rendering AblationTables emits as its fifth table; the golden-diff test
// uses it to regenerate results/ablations_5.csv byte-for-byte.
func NoiseTable(name string, rows []NoiseRow) *trace.Table {
	t := trace.NewTable("Ablation — utilization sensor noise ("+name+", GPU-only)",
		"noise ±", "gpu saving %", "exec delta %")
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%.2f", r.Sigma),
			fmt.Sprintf("%.2f", r.GPUSaving*100),
			fmt.Sprintf("%.2f", r.ExecDelta*100))
	}
	return t
}

// GammaRow is one overlap-factor setting's Fig. 6-style summary.
type GammaRow struct {
	Gamma        float64
	AvgGPUSaving float64
	AvgExecDelta float64
}

// AblationGamma recalibrates the whole environment at different overlap
// factors and reports how the frequency-scaling savings shift — the
// sensitivity of the reproduction to the one free constant in the GPU
// timing model.
func (e *Env) AblationGamma(gammas []float64) ([]GammaRow, error) {
	return mapPoints(e, gammas, func(_ int, g float64) (GammaRow, error) {
		gcfg := e.GPUConfig
		gcfg.OverlapGamma = g
		env2, err := e.derive(gcfg, e.CPUConfig, e.BusConfig)
		if err != nil {
			return GammaRow{}, err
		}
		fig6, err := env2.Fig6()
		if err != nil {
			return GammaRow{}, err
		}
		return GammaRow{
			Gamma:        g,
			AvgGPUSaving: fig6.Summary.AvgGPUSaving,
			AvgExecDelta: fig6.Summary.AvgExecDelta,
		}, nil
	})
}

// AblationTables renders all ablations for one divisible workload into
// text tables.
func (e *Env) AblationTables(name string) ([]*trace.Table, error) {
	var tables []*trace.Table

	steps, err := e.AblationDivisionStep(name, []float64{0.01, 0.02, 0.05, 0.10, 0.20})
	if err != nil {
		return nil, err
	}
	t := trace.NewTable("Ablation — division step size ("+name+")",
		"step %", "converged after", "tail flips", "energy (kJ)")
	for _, r := range steps {
		conv := fmt.Sprintf("%d", r.ConvergeIters)
		if r.ConvergeIters < 0 {
			conv = "never"
		}
		t.AddRow(fmt.Sprintf("%.0f", r.Step*100), conv,
			fmt.Sprintf("%d", r.Flips), fmt.Sprintf("%.1f", r.Energy.Joules()/1e3))
	}
	tables = append(tables, t)

	sg, err := e.AblationSafeguard(name)
	if err != nil {
		return nil, err
	}
	t = trace.NewTable("Ablation — oscillation safeguard ("+name+")",
		"variant", "energy (kJ)", "tail flips", "safeguard holds")
	t.AddRow("with", fmt.Sprintf("%.1f", sg.EnergyWith.Joules()/1e3),
		fmt.Sprintf("%d", sg.FlipsWith), fmt.Sprintf("%d", sg.SafeguardHolds))
	t.AddRow("without", fmt.Sprintf("%.1f", sg.EnergyWithout.Joules()/1e3),
		fmt.Sprintf("%d", sg.FlipsWithout), "-")
	tables = append(tables, t)

	paper := dvfs.DefaultParams()
	variants := []dvfs.Params{
		paper,
		{AlphaCore: 0.5, AlphaMem: 0.5, Phi: paper.Phi, Beta: paper.Beta},
		{AlphaCore: 0.02, AlphaMem: 0.02, Phi: paper.Phi, Beta: paper.Beta},
		{AlphaCore: paper.AlphaCore, AlphaMem: paper.AlphaMem, Phi: 0.7, Beta: paper.Beta},
		{AlphaCore: paper.AlphaCore, AlphaMem: paper.AlphaMem, Phi: paper.Phi, Beta: 0.8},
	}
	params, err := e.AblationScalerParams(name, variants)
	if err != nil {
		return nil, err
	}
	t = trace.NewTable("Ablation — WMA constants ("+name+", GPU-only)",
		"alpha_c", "alpha_m", "phi", "beta", "gpu saving %", "exec delta %")
	for _, r := range params {
		t.AddRow(
			fmt.Sprintf("%.2f", r.Params.AlphaCore),
			fmt.Sprintf("%.2f", r.Params.AlphaMem),
			fmt.Sprintf("%.2f", r.Params.Phi),
			fmt.Sprintf("%.2f", r.Params.Beta),
			fmt.Sprintf("%.2f", r.GPUSaving*100),
			fmt.Sprintf("%.2f", r.ExecDelta*100))
	}
	tables = append(tables, t)

	dec, err := e.AblationDecoupling(name, []time.Duration{
		time.Second, 3 * time.Second, 10 * time.Second, 30 * time.Second, 60 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	t = trace.NewTable("Ablation — tier decoupling ("+name+", holistic)",
		"dvfs interval (s)", "steps/iteration", "energy (kJ)", "exec (s)", "tail flips")
	for _, r := range dec {
		t.AddRow(
			fmt.Sprintf("%.0f", r.DVFSInterval.Seconds()),
			fmt.Sprintf("%.1f", r.StepsPerIteration),
			fmt.Sprintf("%.1f", r.Energy.Joules()/1e3),
			fmt.Sprintf("%.0f", r.ExecTime.Seconds()),
			fmt.Sprintf("%d", r.RatioFlips))
	}
	tables = append(tables, t)

	noise, err := e.AblationSensorNoise(name, []float64{0, 0.05, 0.10, 0.20, 0.40})
	if err != nil {
		return nil, err
	}
	tables = append(tables, NoiseTable(name, noise))

	// γ is bounded above by the workload set's feasibility: bfs at
	// (0.85, 0.82) requires max + γ·min ≤ 1, i.e. γ ≤ 0.17 (nbody binds slightly tighter).
	gammas, err := e.AblationGamma([]float64{0, 0.05, 0.10, 0.15})
	if err != nil {
		return nil, err
	}
	t = trace.NewTable("Ablation — overlap factor γ (whole workload set)",
		"gamma", "avg gpu saving %", "avg exec delta %")
	for _, r := range gammas {
		t.AddRow(
			fmt.Sprintf("%.2f", r.Gamma),
			fmt.Sprintf("%.2f", r.AvgGPUSaving*100),
			fmt.Sprintf("%.2f", r.AvgExecDelta*100))
	}
	tables = append(tables, t)

	return tables, nil
}
