package experiments

import (
	"bytes"
	"os"
	"testing"
	"time"
)

func TestAblationDivisionStep(t *testing.T) {
	rows, err := env.AblationDivisionStep("kmeans", []float64{0.01, 0.05, 0.20})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's trade-off: a small step converges far more slowly than
	// the 5% default, and a too-large step costs energy.
	small, def, large := rows[0], rows[1], rows[2]
	if small.ConvergeIters >= 0 && def.ConvergeIters >= 0 && small.ConvergeIters <= def.ConvergeIters {
		t.Errorf("1%% step converged after %d, 5%% after %d: want slower for the small step",
			small.ConvergeIters, def.ConvergeIters)
	}
	if large.Energy <= def.Energy {
		t.Errorf("20%% step (%v) should cost more energy than 5%% (%v)", large.Energy, def.Energy)
	}
}

func TestAblationSafeguard(t *testing.T) {
	row, err := env.AblationSafeguard("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	if row.SafeguardHolds == 0 {
		t.Error("safeguard never engaged on kmeans")
	}
	if row.FlipsWithout <= row.FlipsWith {
		t.Errorf("safeguard off should oscillate more: with=%d without=%d", row.FlipsWith, row.FlipsWithout)
	}
	if row.EnergyWithout <= row.EnergyWith {
		t.Errorf("oscillation should cost energy: with=%v without=%v", row.EnergyWith, row.EnergyWithout)
	}
}

func TestAblationScalerParams(t *testing.T) {
	paper := []float64{0.15, 0.02}
	_ = paper
	rows, err := env.AblationScalerParams("kmeans", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatal("empty variant list should give no rows")
	}
}

func TestAblationSensorNoiseGracefulDegradation(t *testing.T) {
	rows, err := env.AblationSensorNoise("kmeans", []float64{0, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	clean, noisy := rows[0], rows[1]
	// Heavy noise may shrink savings but must not blow up execution time:
	// the performance-favouring loss keeps decisions near the peak.
	if noisy.ExecDelta > clean.ExecDelta+0.05 {
		t.Errorf("noise inflated exec delta: %.2f%% -> %.2f%%", clean.ExecDelta*100, noisy.ExecDelta*100)
	}
}

// TestAblationSensorNoiseGolden pins the faultinject rewire of the sensor
// noise ablation against the CSV the pre-rewire SensorFilter closure
// produced: the injector's GPU-noise channel must reproduce the historical
// seed derivation and draw order exactly, byte-for-byte.
func TestAblationSensorNoiseGolden(t *testing.T) {
	want, err := os.ReadFile("../../results/ablations_5.csv")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := env.AblationSensorNoise("kmeans", []float64{0, 0.05, 0.10, 0.20, 0.40})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := NoiseTable("kmeans", rows).WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("sensor-noise ablation diverged from committed results/ablations_5.csv\ngot:\n%swant:\n%s",
			got.String(), want)
	}
}

func TestAblationDecouplingStable(t *testing.T) {
	rows, err := env.AblationDecoupling("hotspot", []time.Duration{3 * time.Second, 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.RatioFlips > 2 {
			t.Errorf("interval %v: division destabilized (%d tail flips)", r.DVFSInterval, r.RatioFlips)
		}
	}
}

func TestAblationTablesRender(t *testing.T) {
	tables, err := env.AblationTables("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 6 {
		t.Fatalf("got %d ablation tables, want 6", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Errorf("table %q empty", tab.Title)
		}
	}
}
