package experiments

import (
	"fmt"
	"time"

	"greengpu/internal/core"
	"greengpu/internal/gpusim"
	"greengpu/internal/sim"
	"greengpu/internal/trace"
	"greengpu/internal/workload"
)

// Table2Row is one workload's measured characterization.
type Table2Row struct {
	Workload    string
	Description string
	Enlargement string
	// CoreUtil and MemUtil are measured on the simulated device at peak
	// clocks (the nvidia-smi numbers of the paper's methodology).
	CoreUtil float64
	MemUtil  float64
	// CoreClass and MemClass are the qualitative levels of Table II.
	CoreClass workload.Class
	MemClass  workload.Class
	// Fluctuating marks QG/streamcluster-style phase variability.
	Fluctuating bool
	// IterationTime is one iteration's all-GPU execution time at peak.
	IterationTime time.Duration
}

// Table2Result is the measured workload characterization.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 measures every profile on the simulated device at peak clocks and
// reports the Table II characterization. Utilizations come from the device
// counters (not the calibration targets), so this experiment also
// continuously validates the calibration round-trip.
func (e *Env) Table2() (*Table2Result, error) {
	rows, err := mapPoints(e, e.Profiles, func(_ int, p *workload.Profile) (Table2Row, error) {
		// Each measurement gets its own single-purpose simulation engine
		// and device, per the fresh-machine contract.
		eng := sim.New()
		g := gpusim.New(eng, e.GPUConfig)
		g.SetLevels(len(e.GPUConfig.CoreLevels)-1, len(e.GPUConfig.MemLevels)-1)
		before := g.Counters()
		k := p.GPUKernel(p.Name, workload.UnitsPerIteration)
		g.Submit(k)
		eng.Run()
		w := g.Counters().Since(before)
		return Table2Row{
			Workload:      p.Name,
			Description:   p.Description,
			Enlargement:   p.Enlargement,
			CoreUtil:      w.CoreUtil,
			MemUtil:       w.MemUtil,
			CoreClass:     workload.Classify(w.CoreUtil),
			MemClass:      workload.Classify(w.MemUtil),
			Fluctuating:   p.Fluctuating(),
			IterationTime: k.ExecTime(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Table2Result{Rows: rows}, nil
}

// Table renders the characterization in Table II's layout.
func (r *Table2Result) Table() *trace.Table {
	t := trace.NewTable(
		"Table II — workload characterization measured at peak clocks",
		"workload", "enlargement", "core util", "mem util", "core class", "mem class", "fluctuating", "iter time (s)", "description")
	for _, row := range r.Rows {
		t.AddRow(row.Workload,
			row.Enlargement,
			fmt.Sprintf("%.2f", row.CoreUtil),
			fmt.Sprintf("%.2f", row.MemUtil),
			row.CoreClass.String(),
			row.MemClass.String(),
			fmt.Sprintf("%v", row.Fluctuating),
			fmt.Sprintf("%.0f", row.IterationTime.Seconds()),
			row.Description)
	}
	return t
}

// SweepRow is one workload's §VII-B optimality study result.
type SweepRow struct {
	Workload string
	// OptimalShare is the static division with minimum energy (5% grid).
	OptimalShare float64
	// ConvergedShare is what the dynamic algorithm settles on.
	ConvergedShare float64
	// DynamicEnergyOverOptimal is the dynamic run's energy relative to
	// the optimal static division (1.0 = matched the optimum).
	DynamicEnergyOverOptimal float64
	// ExecDeltaVsOptimal is the dynamic run's execution-time increase
	// over the optimal static division (the paper reports 5.45%).
	ExecDeltaVsOptimal float64
	// SavingShare is the fraction of the optimal static division's
	// energy saving (vs all-GPU) that the dynamic algorithm captured
	// (the paper reports 99% for hotspot).
	SavingShare float64
}

// SweepResult is the §VII-B study across workloads.
type SweepResult struct {
	Rows []SweepRow
}

// StaticSweep reproduces §VII-B's optimality analysis for the given
// workloads: a 5%-grid static division sweep locates the true energy
// optimum, which the dynamic division run is then scored against.
func (e *Env) StaticSweep(names ...string) (*SweepResult, error) {
	rows, err := mapPoints(e, names, func(_ int, name string) (SweepRow, error) {
		// Full-length runs on both sides so the dynamic algorithm's
		// convergence transient amortizes the way it did on the
		// testbed's enlarged workloads. The 5% grid underneath fans out
		// on the same worker pool.
		sweep, err := e.DivisionSweep(name, 0, 0.95, 0.05, 0)
		if err != nil {
			return SweepRow{}, err
		}
		energies := make([]float64, len(sweep.Points))
		for i, p := range sweep.Points {
			energies[i] = float64(p.Energy)
		}
		optIdx := trace.ArgMin(energies)
		opt := sweep.Points[optIdx]
		allGPU := sweep.Points[0]

		cfg := core.DefaultConfig(core.Division)
		dyn, err := e.run(name, cfg)
		if err != nil {
			return SweepRow{}, err
		}

		row := SweepRow{
			Workload:       name,
			OptimalShare:   opt.CPUShare,
			ConvergedShare: dyn.FinalRatio,
		}
		row.DynamicEnergyOverOptimal = float64(dyn.Energy) / float64(opt.Energy)
		row.ExecDeltaVsOptimal = float64(dyn.TotalTime)/float64(opt.Time) - 1
		maxSaving := float64(allGPU.Energy - opt.Energy)
		if maxSaving > 0 {
			row.SavingShare = float64(allGPU.Energy-dyn.Energy) / maxSaving
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &SweepResult{Rows: rows}, nil
}

// Table renders the optimality study.
func (r *SweepResult) Table() *trace.Table {
	t := trace.NewTable(
		"§VII-B — dynamic division vs optimal static division (5% grid)",
		"workload", "optimal cpu %", "converged cpu %", "energy vs optimal", "exec delta %", "captured saving %")
	for _, row := range r.Rows {
		t.AddRow(row.Workload,
			fmt.Sprintf("%.0f", row.OptimalShare*100),
			fmt.Sprintf("%.0f", row.ConvergedShare*100),
			fmt.Sprintf("%.4f", row.DynamicEnergyOverOptimal),
			fmt.Sprintf("%.2f", row.ExecDeltaVsOptimal*100),
			fmt.Sprintf("%.1f", row.SavingShare*100))
	}
	return t
}
