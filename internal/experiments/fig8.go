package experiments

import (
	"fmt"

	"greengpu/internal/core"
	"greengpu/internal/trace"
	"greengpu/internal/units"
)

// Fig8Iteration is one iteration of the three-way comparison in Fig. 8.
type Fig8Iteration struct {
	Index int
	// R is GreenGPU's division ratio in that iteration.
	R float64
	// Per-iteration system energy under each configuration.
	Holistic    units.Energy
	Division    units.Energy
	FreqScaling units.Energy
}

// Fig8Result is one workload's holistic-vs-single-tier comparison.
type Fig8Result struct {
	Workload   string
	Iterations []Fig8Iteration

	TotalHolistic    units.Energy
	TotalDivision    units.Energy
	TotalFreqScaling units.Energy
	TotalBaseline    units.Energy

	// SavingVsDivision and SavingVsFreqScaling are GreenGPU's additional
	// savings over each single tier; SavingVsBaseline is against the
	// Rodinia default configuration (all GPU, all peak clocks).
	SavingVsDivision    float64
	SavingVsFreqScaling float64
	SavingVsBaseline    float64

	// ExecDeltaVsDivision is the holistic run's execution-time increase
	// over division-only (the paper reports 1.7%).
	ExecDeltaVsDivision float64
}

// Fig8 reproduces §VII-C for one workload: GreenGPU (both tiers) against
// Division-only, Frequency-scaling-only, and the Rodinia default baseline.
// The paper shows hotspot (+7.88% over division, +28.76% over frequency
// scaling) and kmeans (+1.6% and +12.05%), with 21.04% average saving vs
// the default configuration and 1.7% longer execution than division-only.
func (e *Env) Fig8(name string) (*Fig8Result, error) {
	hol, err := e.run(name, core.DefaultConfig(core.Holistic))
	if err != nil {
		return nil, err
	}
	div, err := e.run(name, core.DefaultConfig(core.Division))
	if err != nil {
		return nil, err
	}
	fs, err := e.run(name, core.DefaultConfig(core.FreqScaling))
	if err != nil {
		return nil, err
	}
	base, err := e.run(name, baselineConfig(0))
	if err != nil {
		return nil, err
	}

	res := &Fig8Result{
		Workload:         name,
		TotalHolistic:    hol.Energy,
		TotalDivision:    div.Energy,
		TotalFreqScaling: fs.Energy,
		TotalBaseline:    base.Energy,
	}
	n := len(hol.Iterations)
	for i := 0; i < n; i++ {
		it := Fig8Iteration{Index: i, R: hol.Iterations[i].R, Holistic: hol.Iterations[i].Energy}
		if i < len(div.Iterations) {
			it.Division = div.Iterations[i].Energy
		}
		if i < len(fs.Iterations) {
			it.FreqScaling = fs.Iterations[i].Energy
		}
		res.Iterations = append(res.Iterations, it)
	}
	res.SavingVsDivision = 1 - float64(hol.Energy)/float64(div.Energy)
	res.SavingVsFreqScaling = 1 - float64(hol.Energy)/float64(fs.Energy)
	res.SavingVsBaseline = 1 - float64(hol.Energy)/float64(base.Energy)
	res.ExecDeltaVsDivision = float64(hol.TotalTime)/float64(div.TotalTime) - 1
	return res, nil
}

// Table renders the per-iteration energies and the summary savings.
func (r *Fig8Result) Table() *trace.Table {
	t := trace.NewTable(
		fmt.Sprintf("Fig. 8 — holistic trace (%s): GreenGPU saves %.2f%% vs division-only, %.2f%% vs frequency-scaling-only, %.2f%% vs default (exec +%.2f%% vs division)",
			r.Workload, r.SavingVsDivision*100, r.SavingVsFreqScaling*100,
			r.SavingVsBaseline*100, r.ExecDeltaVsDivision*100),
		"iteration", "cpu share %", "greengpu (kJ)", "division (kJ)", "freq-scaling (kJ)")
	for _, it := range r.Iterations {
		t.AddRow(
			fmt.Sprintf("%d", it.Index+1),
			fmt.Sprintf("%.0f", it.R*100),
			fmt.Sprintf("%.2f", it.Holistic.Joules()/1e3),
			fmt.Sprintf("%.2f", it.Division.Joules()/1e3),
			fmt.Sprintf("%.2f", it.FreqScaling.Joules()/1e3))
	}
	return t
}
