package division

import (
	"testing"
	"time"
)

// BenchmarkObserve measures one division decision including the
// oscillation-safeguard prediction.
func BenchmarkObserve(b *testing.B) {
	d := New(DefaultConfig())
	for i := 0; i < b.N; i++ {
		// Alternate imbalance directions so every branch stays hot.
		if i%2 == 0 {
			d.Observe(4*time.Second, 2*time.Second)
		} else {
			d.Observe(2*time.Second, 4*time.Second)
		}
	}
}

// BenchmarkQilinObserve measures one adaptive-mapping decision including
// the least-squares refit.
func BenchmarkQilinObserve(b *testing.B) {
	q := NewQilin(DefaultQilinConfig())
	for i := 0; i < b.N; i++ {
		r := q.Ratio()
		tc := time.Duration(4 * r * float64(time.Second))
		tg := time.Duration((1 - r) * float64(time.Second))
		q.Observe(tc, tg)
	}
}
