package division

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestQilinConfigValidate(t *testing.T) {
	good := DefaultQilinConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bads := []QilinConfig{
		{Initial: 0.3, Probe: 0.3, Min: 0, Max: 1},   // probe == initial
		{Initial: 0.3, Probe: 0.5, Min: 0.6, Max: 1}, // initial out of bounds
		{Initial: 0.3, Probe: 1.5, Min: 0, Max: 1},   // probe out of bounds
		{Initial: 0.3, Probe: 0.5, Min: 0.9, Max: 0.1},
	}
	for i, c := range bads {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

// simulateQilin drives the divider against a linear cost model.
func simulateQilin(q *Qilin, cpuRate, gpuRate float64, iters int) []float64 {
	var traj []float64
	for i := 0; i < iters; i++ {
		r := q.Ratio()
		tc := time.Duration(cpuRate * r * float64(time.Second))
		tg := time.Duration(gpuRate * (1 - r) * float64(time.Second))
		traj = append(traj, q.Observe(tc, tg))
	}
	return traj
}

func TestQilinJumpsToBalanceAfterProfiling(t *testing.T) {
	// CPU 4x slower: balance at exactly 0.20. Qilin profiles at 0.30 and
	// 0.50, then must land on 0.20 in one move — faster than the
	// step heuristic and with no 5% grid.
	q := NewQilin(DefaultQilinConfig())
	traj := simulateQilin(q, 4, 1, 5)
	// traj[0] = probe move (0.50), traj[1] = the fitted jump.
	if math.Abs(traj[1]-0.20) > 1e-9 {
		t.Errorf("after profiling jumped to %v, want 0.20", traj[1])
	}
	for i := 2; i < len(traj); i++ {
		if math.Abs(traj[i]-0.20) > 1e-9 {
			t.Errorf("iteration %d drifted to %v", i, traj[i])
		}
	}
}

func TestQilinOffGridOptimum(t *testing.T) {
	// Balance at 1/(1+7) = 0.125 — off the 5% grid that forces the step
	// heuristic to engage its safeguard. Qilin lands on it exactly.
	q := NewQilin(DefaultQilinConfig())
	traj := simulateQilin(q, 7, 1, 5)
	final := traj[len(traj)-1]
	if math.Abs(final-0.125) > 1e-9 {
		t.Errorf("converged to %v, want 0.125", final)
	}
}

func TestQilinClampsToBounds(t *testing.T) {
	cfg := DefaultQilinConfig()
	cfg.Min = 0.25
	cfg.Initial = 0.30
	cfg.Probe = 0.50
	q := NewQilin(cfg)
	// Balance would be 0.1, below Min.
	traj := simulateQilin(q, 9, 1, 5)
	if got := traj[len(traj)-1]; got != 0.25 {
		t.Errorf("ratio %v, want clamped to 0.25", got)
	}
}

func TestQilinNegativeTimesPanic(t *testing.T) {
	q := NewQilin(DefaultQilinConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	q.Observe(-time.Second, time.Second)
}

func TestQilinHistory(t *testing.T) {
	q := NewQilin(DefaultQilinConfig())
	simulateQilin(q, 4, 1, 3)
	h := q.History()
	if len(h) != 3 {
		t.Fatalf("history = %d entries", len(h))
	}
	if h[0].R != 0.30 || h[0].NewR != 0.50 {
		t.Errorf("profiling move = %+v", h[0])
	}
}

func TestQilinHoldsOnDegenerateFit(t *testing.T) {
	// Identical times at both profiled ratios give b_c + b_g <= 0 paths;
	// the divider must hold rather than divide by ~zero.
	q := NewQilin(DefaultQilinConfig())
	q.Observe(time.Second, time.Second)      // at 0.30
	r := q.Observe(time.Second, time.Second) // at 0.50: flat lines, bc=bg=0
	if r != 0.50 {
		t.Errorf("degenerate fit moved ratio to %v", r)
	}
}

func TestFitLine(t *testing.T) {
	a, b, ok := fitLine([]float64{0, 1, 2}, []float64{1, 3, 5})
	if !ok || math.Abs(a-1) > 1e-12 || math.Abs(b-2) > 1e-12 {
		t.Errorf("fit = (%v, %v, %v), want (1, 2, true)", a, b, ok)
	}
	if _, _, ok := fitLine([]float64{2, 2}, []float64{1, 5}); ok {
		t.Error("degenerate abscissae accepted")
	}
	if _, _, ok := fitLine([]float64{1}, []float64{1}); ok {
		t.Error("single point accepted")
	}
}

// Property: against any linear cost model with positive rates, Qilin ends
// within float tolerance of the clamped balance point.
func TestQilinConvergenceProperty(t *testing.T) {
	f := func(cpuSeed, gpuSeed uint8) bool {
		cpuRate := 0.5 + float64(cpuSeed)/16
		gpuRate := 0.5 + float64(gpuSeed)/16
		q := NewQilin(DefaultQilinConfig())
		simulateQilin(q, cpuRate, gpuRate, 6)
		balance := gpuRate / (cpuRate + gpuRate)
		return math.Abs(q.Ratio()-balance) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
