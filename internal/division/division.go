// Package division implements GreenGPU's first tier: dynamic workload
// division between the CPU and GPU (paper §V-B).
//
// The divider maintains r, the fraction of each iteration's work assigned to
// the CPU (the GPU takes 1−r). After every iteration it compares the two
// sides' execution times tc and tg: if the CPU was slower it moves one step
// of work to the GPU, if the GPU was slower it moves one step to the CPU.
// Balancing the two sides minimizes the idle energy burned by whichever side
// finishes first and waits.
//
// Because divisions are discrete (the paper uses a 5% step), the optimum may
// sit between two grid points and the raw heuristic would oscillate between
// them forever, paying division overhead each flip. The oscillation
// safeguard linearly scales the previous iteration's times to the candidate
// division —
//
//	tc' = tc · r'/r,   tg' = tg · (1−r')/(1−r)
//
// — and holds the current division whenever the predicted comparison flips
// direction without improving the balance, the scheme of §V-B. (A flip that
// strictly reduces the predicted |tc − tg| is allowed: landing next to the
// optimum from the far side is convergence, not oscillation. In the paper's
// 12.5% example the two grid neighbours are symmetric around the optimum,
// so the predicted flip does not improve the balance and the ratio holds.)
package division

import (
	"fmt"
	"math"
	"time"

	"greengpu/internal/telemetry"
)

// Package metrics (see docs/OBSERVABILITY.md). No-ops unless telemetry is
// enabled.
var (
	metricObservations = telemetry.NewCounter("greengpu_division_observations_total",
		"Tier-1 end-of-iteration observations (Policy.Observe calls) across all runs.")
	metricHolds = telemetry.NewCounter("greengpu_division_holds_total",
		"Tier-1 decisions that held the current ratio (including safeguard holds).")
)

// Action describes what the divider decided after an iteration.
type Action int

// Divider decisions.
const (
	// ActionHold keeps the ratio: the sides finished together or the
	// candidate was clamped away.
	ActionHold Action = iota
	// ActionIncrease moved one step of work to the CPU.
	ActionIncrease
	// ActionDecrease moved one step of work to the GPU.
	ActionDecrease
	// ActionHoldSafeguard kept the ratio because the oscillation
	// safeguard predicted a comparison flip.
	ActionHoldSafeguard
)

// String returns a short label for traces.
func (a Action) String() string {
	switch a {
	case ActionHold:
		return "hold"
	case ActionIncrease:
		return "cpu+"
	case ActionDecrease:
		return "cpu-"
	case ActionHoldSafeguard:
		return "hold(safeguard)"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Config parameterizes the divider.
type Config struct {
	// Step is the division adjustment granularity. The paper uses 0.05:
	// smaller converges slowly, larger oscillates more.
	Step float64
	// Initial is the starting CPU share. The paper starts experiments at
	// 0.30 for faster convergence but shows convergence from any start.
	Initial float64
	// Min and Max clamp the CPU share.
	Min, Max float64
	// Safeguard enables the oscillation safeguard.
	Safeguard bool
}

// DefaultConfig returns the paper's settings: 5% step, 30% initial CPU
// share, full [0,1] range, safeguard on.
func DefaultConfig() Config {
	return Config{Step: 0.05, Initial: 0.30, Min: 0, Max: 1, Safeguard: true}
}

// Validate reports the first problem with the configuration, if any.
func (c *Config) Validate() error {
	switch {
	case c.Step <= 0 || c.Step > 0.5:
		return fmt.Errorf("division: Step = %v, must be in (0, 0.5]", c.Step)
	case c.Min < 0 || c.Max > 1 || c.Min >= c.Max:
		return fmt.Errorf("division: bounds [%v, %v] invalid", c.Min, c.Max)
	case c.Initial < c.Min || c.Initial > c.Max:
		return fmt.Errorf("division: Initial = %v outside [%v, %v]", c.Initial, c.Min, c.Max)
	}
	return nil
}

// Observation records one iteration's decision, for traces and tests.
type Observation struct {
	Iteration int
	R         float64       // CPU share in force during the iteration
	TC        time.Duration // CPU-side execution time
	TG        time.Duration // GPU-side execution time
	Action    Action
	NewR      float64 // CPU share for the next iteration
}

// Divider is the workload-division controller.
type Divider struct {
	cfg     Config
	r       float64
	iter    int
	history []Observation
}

// New creates a divider. It panics on an invalid configuration; use
// Config.Validate to check first.
func New(cfg Config) *Divider {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Divider{cfg: cfg, r: cfg.Initial}
}

// Config returns the divider's configuration.
func (d *Divider) Config() Config { return d.cfg }

// Ratio returns the CPU share to use for the next iteration.
func (d *Divider) Ratio() float64 { return d.r }

// Iterations returns how many observations have been made.
func (d *Divider) Iterations() int { return d.iter }

// History returns the recorded observations.
func (d *Divider) History() []Observation { return d.history }

// Observe feeds the execution times of the iteration that just completed
// (run at the current ratio) and returns the ratio for the next iteration.
// Negative durations panic.
func (d *Divider) Observe(tc, tg time.Duration) float64 {
	if tc < 0 || tg < 0 {
		panic(fmt.Sprintf("division: negative execution time tc=%v tg=%v", tc, tg))
	}
	obs := Observation{Iteration: d.iter, R: d.r, TC: tc, TG: tg}
	d.iter++

	action, newR := d.decide(tc, tg)
	obs.Action = action
	obs.NewR = newR
	d.history = append(d.history, obs)
	d.r = newR
	metricObservations.Inc()
	if action == ActionHold || action == ActionHoldSafeguard {
		metricHolds.Inc()
	}
	return newR
}

func (d *Divider) decide(tc, tg time.Duration) (Action, float64) {
	r := d.r
	var candidate float64
	var action Action
	switch {
	case tc > tg:
		candidate, action = r-d.cfg.Step, ActionDecrease
	case tc < tg:
		candidate, action = r+d.cfg.Step, ActionIncrease
	default:
		return ActionHold, r
	}
	if candidate < d.cfg.Min {
		candidate = d.cfg.Min
	}
	if candidate > d.cfg.Max {
		candidate = d.cfg.Max
	}
	if candidate == r {
		return ActionHold, r
	}
	if d.cfg.Safeguard && d.flipPredicted(tc, tg, r, candidate) {
		return ActionHoldSafeguard, r
	}
	return action, candidate
}

// flipPredicted linearly scales the observed times to the candidate ratio
// and reports whether the comparison direction would invert *without
// improving the balance* — the oscillation signature. When a side currently
// has no work (r = 0 or r = 1) its per-unit time is unknown and no
// prediction is possible, so the move is allowed.
func (d *Divider) flipPredicted(tc, tg time.Duration, r, candidate float64) bool {
	if r <= 0 || r >= 1 {
		return false
	}
	tcP := float64(tc) * candidate / r
	tgP := float64(tg) * (1 - candidate) / (1 - r)
	flipped := (tc < tg && tcP > tgP) || (tc > tg && tcP < tgP)
	if !flipped {
		return false
	}
	return math.Abs(tcP-tgP) >= math.Abs(float64(tc-tg))
}

// Converged reports whether the last k observations all kept the ratio
// (plain holds or safeguard holds). It returns false with fewer than k
// observations.
func (d *Divider) Converged(k int) bool {
	if k <= 0 || len(d.history) < k {
		return false
	}
	for _, obs := range d.history[len(d.history)-k:] {
		if obs.Action == ActionIncrease || obs.Action == ActionDecrease {
			return false
		}
	}
	return true
}
