package division

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if c.Step != 0.05 || c.Initial != 0.30 || !c.Safeguard {
		t.Errorf("DefaultConfig = %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	bads := []Config{
		{Step: 0, Initial: 0.3, Min: 0, Max: 1},
		{Step: 0.6, Initial: 0.3, Min: 0, Max: 1},
		{Step: 0.05, Initial: 0.3, Min: -0.1, Max: 1},
		{Step: 0.05, Initial: 0.3, Min: 0, Max: 1.1},
		{Step: 0.05, Initial: 0.3, Min: 0.5, Max: 0.4},
		{Step: 0.05, Initial: 0.9, Min: 0, Max: 0.5},
	}
	for i, c := range bads {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestCPUSlowerShrinksCPUShare(t *testing.T) {
	d := New(DefaultConfig())
	r := d.Observe(10*time.Second, 2*time.Second)
	if math.Abs(r-0.25) > 1e-12 {
		t.Errorf("ratio = %v, want 0.25", r)
	}
	if got := d.History()[0].Action; got != ActionDecrease {
		t.Errorf("action = %v, want cpu-", got)
	}
}

func TestGPUSlowerGrowsCPUShare(t *testing.T) {
	d := New(DefaultConfig())
	r := d.Observe(2*time.Second, 10*time.Second)
	if math.Abs(r-0.35) > 1e-12 {
		t.Errorf("ratio = %v, want 0.35", r)
	}
	if got := d.History()[0].Action; got != ActionIncrease {
		t.Errorf("action = %v, want cpu+", got)
	}
}

func TestEqualTimesHold(t *testing.T) {
	d := New(DefaultConfig())
	r := d.Observe(5*time.Second, 5*time.Second)
	if r != 0.30 {
		t.Errorf("ratio = %v, want unchanged 0.30", r)
	}
	if got := d.History()[0].Action; got != ActionHold {
		t.Errorf("action = %v, want hold", got)
	}
}

func TestClampingAtBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Initial = 0.02
	cfg.Safeguard = false // isolate clamping from oscillation prediction
	d := New(cfg)
	// CPU slower: candidate 0.02-0.05 clamps to Min=0.
	r := d.Observe(10*time.Second, time.Second)
	if r != 0 {
		t.Errorf("ratio = %v, want clamped to 0", r)
	}
	// At exactly Min, further decreases hold.
	r = d.Observe(10*time.Second, time.Second)
	if r != 0 {
		t.Errorf("ratio = %v, want to stay 0", r)
	}
	if got := d.History()[1].Action; got != ActionHold {
		t.Errorf("action at bound = %v, want hold", got)
	}
}

// simulate drives the divider against a linear cost model where the CPU
// processes its share at cpuRate seconds/unit and the GPU at gpuRate,
// returning the trajectory of ratios.
func simulate(d *Divider, cpuRate, gpuRate float64, iters int) []float64 {
	var traj []float64
	for i := 0; i < iters; i++ {
		r := d.Ratio()
		tc := time.Duration(cpuRate * r * float64(time.Second))
		tg := time.Duration(gpuRate * (1 - r) * float64(time.Second))
		traj = append(traj, d.Observe(tc, tg))
	}
	return traj
}

func TestConvergenceToBalancePoint(t *testing.T) {
	// GPU 4x faster than CPU: balance at r where r·4 = (1-r)·1 -> r = 0.2
	// (the paper's kmeans case, which converges to 20/80).
	d := New(DefaultConfig())
	traj := simulate(d, 4, 1, 20)
	final := traj[len(traj)-1]
	if math.Abs(final-0.20) > 1e-9 {
		t.Errorf("converged to %v, want 0.20", final)
	}
	if !d.Converged(5) {
		t.Error("divider did not report convergence")
	}
}

func TestConvergenceEqualSpeeds(t *testing.T) {
	// Equal speeds: balance at 0.5 (the paper's hotspot case).
	d := New(DefaultConfig())
	traj := simulate(d, 1, 1, 20)
	final := traj[len(traj)-1]
	if math.Abs(final-0.50) > 1e-9 {
		t.Errorf("converged to %v, want 0.50", final)
	}
}

func TestConvergenceFromAnyStart(t *testing.T) {
	// §VII-B: the algorithm converges regardless of the initial ratio.
	for _, init := range []float64{0.0, 0.1, 0.5, 0.75, 1.0} {
		cfg := DefaultConfig()
		cfg.Initial = init
		d := New(cfg)
		traj := simulate(d, 1, 1, 40)
		final := traj[len(traj)-1]
		if math.Abs(final-0.50) > 0.051 {
			t.Errorf("start %v converged to %v, want ~0.50", init, final)
		}
	}
}

func TestSafeguardStopsOscillation(t *testing.T) {
	// Optimal division at 12.5% (the paper's example): with a 5% grid the
	// raw heuristic would flip between 0.10 and 0.15 forever.
	cfg := DefaultConfig()
	cfg.Initial = 0.10
	d := New(cfg)
	// CPU rate 7, GPU rate 1: balance r* solves 7r = (1-r) -> r* = 0.125.
	traj := simulate(d, 7, 1, 15)
	// After settling, the ratio must be constant (no flip-flop).
	last5 := traj[len(traj)-5:]
	for _, r := range last5 {
		if r != last5[0] {
			t.Errorf("oscillation persisted: %v", traj)
			break
		}
	}
	// It must have engaged the safeguard at least once.
	saw := false
	for _, obs := range d.History() {
		if obs.Action == ActionHoldSafeguard {
			saw = true
		}
	}
	if !saw {
		t.Error("safeguard never engaged")
	}
	// And settled on one of the two grid neighbours of 0.125.
	final := traj[len(traj)-1]
	if math.Abs(final-0.10) > 1e-9 && math.Abs(final-0.15) > 1e-9 {
		t.Errorf("settled at %v, want 0.10 or 0.15", final)
	}
}

func TestWithoutSafeguardOscillates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Initial = 0.10
	cfg.Safeguard = false
	d := New(cfg)
	traj := simulate(d, 7, 1, 20)
	// The tail should alternate between 0.10 and 0.15.
	flips := 0
	for i := len(traj) - 6; i < len(traj)-1; i++ {
		if traj[i] != traj[i+1] {
			flips++
		}
	}
	if flips < 3 {
		t.Errorf("expected sustained oscillation without safeguard, trajectory tail %v", traj[len(traj)-6:])
	}
}

func TestSafeguardAllowsMovesFromEmptySides(t *testing.T) {
	// r = 0: no CPU time to scale from; the safeguard must not block the
	// first move onto the CPU.
	cfg := DefaultConfig()
	cfg.Initial = 0
	d := New(cfg)
	r := d.Observe(0, 10*time.Second)
	if math.Abs(r-0.05) > 1e-12 {
		t.Errorf("ratio = %v, want 0.05", r)
	}
	// r = 1: symmetric.
	cfg.Initial = 1
	d = New(cfg)
	r = d.Observe(10*time.Second, 0)
	if math.Abs(r-0.95) > 1e-12 {
		t.Errorf("ratio = %v, want 0.95", r)
	}
}

func TestNegativeTimesPanic(t *testing.T) {
	d := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Observe(-time.Second, time.Second)
}

func TestHistoryRecording(t *testing.T) {
	d := New(DefaultConfig())
	d.Observe(4*time.Second, 2*time.Second)
	d.Observe(3*time.Second, 3*time.Second)
	h := d.History()
	if len(h) != 2 {
		t.Fatalf("history length = %d", len(h))
	}
	if h[0].Iteration != 0 || h[0].R != 0.30 || h[0].TC != 4*time.Second {
		t.Errorf("h[0] = %+v", h[0])
	}
	if h[1].Iteration != 1 || h[1].Action != ActionHold {
		t.Errorf("h[1] = %+v", h[1])
	}
	if d.Iterations() != 2 {
		t.Errorf("Iterations = %d", d.Iterations())
	}
}

func TestConvergedRequiresEnoughHistory(t *testing.T) {
	d := New(DefaultConfig())
	if d.Converged(1) {
		t.Error("Converged with no history")
	}
	d.Observe(time.Second, time.Second)
	if !d.Converged(1) {
		t.Error("hold not recognized as converged")
	}
	if d.Converged(0) {
		t.Error("Converged(0) should be false")
	}
}

func TestActionString(t *testing.T) {
	cases := map[Action]string{
		ActionHold:          "hold",
		ActionIncrease:      "cpu+",
		ActionDecrease:      "cpu-",
		ActionHoldSafeguard: "hold(safeguard)",
		Action(99):          "Action(99)",
	}
	for a, want := range cases {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(a), got, want)
		}
	}
}

// Property: the ratio always stays within [Min, Max] and moves by at most
// Step per iteration.
func TestRatioInvariantsProperty(t *testing.T) {
	f := func(times []uint16) bool {
		d := New(DefaultConfig())
		prev := d.Ratio()
		for i := 0; i+1 < len(times); i += 2 {
			tc := time.Duration(times[i]) * time.Millisecond
			tg := time.Duration(times[i+1]) * time.Millisecond
			r := d.Observe(tc, tg)
			if r < 0 || r > 1 {
				return false
			}
			if math.Abs(r-prev) > 0.05+1e-12 {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: against any linear cost model the divider converges to within
// one step of the balance point and stays there.
func TestLinearModelConvergenceProperty(t *testing.T) {
	f := func(cpuRateSeed, gpuRateSeed uint8) bool {
		cpuRate := 0.5 + float64(cpuRateSeed)/16 // [0.5, 16.4]
		gpuRate := 0.5 + float64(gpuRateSeed)/16
		d := New(DefaultConfig())
		for i := 0; i < 60; i++ {
			r := d.Ratio()
			tc := time.Duration(cpuRate * r * float64(time.Second))
			tg := time.Duration(gpuRate * (1 - r) * float64(time.Second))
			d.Observe(tc, tg)
		}
		balance := gpuRate / (cpuRate + gpuRate)
		return math.Abs(d.Ratio()-balance) <= 0.05+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
