package division

import (
	"fmt"
	"time"
)

// Policy is a workload-division strategy: anything that proposes the next
// CPU share from the observed per-side execution times. GreenGPU's
// step-based Divider is one Policy; Qilin-style adaptive mapping is
// another. The framework (internal/core) accepts any Policy, which is the
// integration point §V-B of the paper mentions for "other sophisticated
// global optimal algorithms".
type Policy interface {
	// Ratio returns the CPU share for the next iteration.
	Ratio() float64
	// Observe feeds the completed iteration's per-side times and
	// returns the ratio for the next iteration.
	Observe(tc, tg time.Duration) float64
	// History returns the decision log.
	History() []Observation
}

// Divider implements Policy.
var _ Policy = (*Divider)(nil)

// QilinConfig parameterizes the adaptive-mapping divider.
type QilinConfig struct {
	// Initial is the first profiling ratio.
	Initial float64
	// Probe is the second profiling ratio; it must differ from Initial
	// so the linear fit has two distinct abscissae per side.
	Probe float64
	// Min and Max clamp the CPU share.
	Min, Max float64
}

// DefaultQilinConfig profiles at 30% and 50% CPU and allows the full
// range, mirroring Qilin's train-then-map flow at our iteration scale.
func DefaultQilinConfig() QilinConfig {
	return QilinConfig{Initial: 0.30, Probe: 0.50, Min: 0, Max: 1}
}

// Validate reports the first problem with the configuration, if any.
func (c *QilinConfig) Validate() error {
	switch {
	case c.Min < 0 || c.Max > 1 || c.Min >= c.Max:
		return fmt.Errorf("division: qilin bounds [%v, %v] invalid", c.Min, c.Max)
	case c.Initial < c.Min || c.Initial > c.Max:
		return fmt.Errorf("division: qilin Initial = %v outside bounds", c.Initial)
	case c.Probe < c.Min || c.Probe > c.Max:
		return fmt.Errorf("division: qilin Probe = %v outside bounds", c.Probe)
	case c.Probe == c.Initial:
		return fmt.Errorf("division: qilin Probe must differ from Initial")
	}
	return nil
}

// Qilin is an adaptive-mapping divider in the style of Luk, Hong & Kim
// (MICRO 2009), the paper's related work [16]: it fits linear per-side
// time models
//
//	tc(r) = a_c + b_c·r        tg(r) = a_g + b_g·(1−r)
//
// from the observed (share, time) samples and jumps directly to the
// predicted balance point r* = (a_g + b_g − a_c) / (b_c + b_g), refining
// the fit with every iteration. Compared with GreenGPU's fixed-step
// heuristic it converges in one move after profiling, at the cost of
// trusting the linear model; the comparison experiment quantifies both.
type Qilin struct {
	cfg QilinConfig
	r   float64

	// Samples for the two per-side fits: x is the side's share.
	cpuX, cpuY []float64
	gpuX, gpuY []float64

	iter    int
	history []Observation
}

// NewQilin creates an adaptive-mapping divider. It panics on an invalid
// configuration; use QilinConfig.Validate to check first.
func NewQilin(cfg QilinConfig) *Qilin {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Qilin{cfg: cfg, r: cfg.Initial}
}

// Ratio implements Policy.
func (q *Qilin) Ratio() float64 { return q.r }

// History implements Policy.
func (q *Qilin) History() []Observation { return q.history }

// Observe implements Policy.
func (q *Qilin) Observe(tc, tg time.Duration) float64 {
	if tc < 0 || tg < 0 {
		panic(fmt.Sprintf("division: negative execution time tc=%v tg=%v", tc, tg))
	}
	obs := Observation{Iteration: q.iter, R: q.r, TC: tc, TG: tg}
	q.iter++

	if q.r > 0 {
		q.cpuX, q.cpuY = pushSample(q.cpuX, q.cpuY, q.r, tc.Seconds())
	}
	if q.r < 1 {
		q.gpuX, q.gpuY = pushSample(q.gpuX, q.gpuY, 1-q.r, tg.Seconds())
	}

	next, action := q.decide()
	obs.NewR = next
	obs.Action = action
	q.history = append(q.history, obs)
	q.r = next
	metricObservations.Inc()
	if action == ActionHold || action == ActionHoldSafeguard {
		metricHolds.Inc()
	}
	return next
}

func (q *Qilin) decide() (float64, Action) {
	// Profiling phase: we need two distinct abscissae per side.
	if !distinct(q.cpuX) || !distinct(q.gpuX) {
		if q.r != q.cfg.Probe {
			if q.cfg.Probe > q.r {
				return q.cfg.Probe, ActionIncrease
			}
			return q.cfg.Probe, ActionDecrease
		}
		return q.r, ActionHold
	}
	ac, bc, ok1 := fitLine(q.cpuX, q.cpuY)
	ag, bg, ok2 := fitLine(q.gpuX, q.gpuY)
	if !ok1 || !ok2 || bc+bg <= 0 {
		return q.r, ActionHold
	}
	star := (ag + bg - ac) / (bc + bg)
	if star < q.cfg.Min {
		star = q.cfg.Min
	}
	if star > q.cfg.Max {
		star = q.cfg.Max
	}
	switch {
	case star > q.r:
		return star, ActionIncrease
	case star < q.r:
		return star, ActionDecrease
	default:
		return q.r, ActionHold
	}
}

// qilinWindow bounds the per-side fit history: a sliding window keeps the
// refit O(1) per iteration and lets the linear models track workload phase
// changes instead of averaging over the whole run.
const qilinWindow = 32

func pushSample(xs, ys []float64, x, y float64) ([]float64, []float64) {
	xs = append(xs, x)
	ys = append(ys, y)
	if len(xs) > qilinWindow {
		xs = xs[len(xs)-qilinWindow:]
		ys = ys[len(ys)-qilinWindow:]
	}
	return xs, ys
}

// distinct reports whether xs contains at least two distinct values.
func distinct(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[0] {
			return true
		}
	}
	return false
}

// fitLine least-squares fits y = a + b·x. ok is false when the abscissae
// are degenerate.
func fitLine(xs, ys []float64) (a, b float64, ok bool) {
	n := float64(len(xs))
	if n < 2 {
		return 0, 0, false
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, false
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b, true
}
