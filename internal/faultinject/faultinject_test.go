package faultinject

import (
	"math"
	"testing"

	"greengpu/internal/parallel"
	"greengpu/internal/units"
)

// TestZeroPlanInjectsNothing: the zero-value plan passes every sample and
// transition through untouched and counts nothing.
func TestZeroPlanInjectsNothing(t *testing.T) {
	var p Plan
	if !p.Zero() {
		t.Fatal("zero-value Plan is not Zero()")
	}
	in := New(p)
	for i := 0; i < 1000; i++ {
		uc, um := float64(i%7)/7, float64(i%11)/11
		gc, gm := in.GPUSensor(uc, um)
		if gc != uc || gm != um {
			t.Fatalf("GPUSensor(%v,%v) = (%v,%v) under zero plan", uc, um, gc, gm)
		}
		if cu := in.CPUSensor(uc); cu != uc {
			t.Fatalf("CPUSensor(%v) = %v under zero plan", uc, cu)
		}
		if o, d := in.GPUTransition(); o != TransitionOK || d != 0 {
			t.Fatalf("GPUTransition = (%v,%d) under zero plan", o, d)
		}
		if o, d := in.CPUTransition(); o != TransitionOK || d != 0 {
			t.Fatalf("CPUTransition = (%v,%d) under zero plan", o, d)
		}
		if f := in.Meter(); f != MeterOK {
			t.Fatalf("Meter = %v under zero plan", f)
		}
		if s := in.Straggler(); s != 1 {
			t.Fatalf("Straggler = %v under zero plan", s)
		}
	}
	if got := in.Counts(); got != (Counts{}) {
		t.Fatalf("zero plan counted faults: %+v", got)
	}
}

// TestDeterministicReplay: two injectors built from the same plan produce
// identical fault sequences; a different seed produces a different one.
func TestDeterministicReplay(t *testing.T) {
	p := Default(7)
	a, b := New(p), New(p)
	diverged := false
	other := New(Default(8))
	for i := 0; i < 2000; i++ {
		uc, um := float64(i%13)/13, float64(i%17)/17
		ac, am := a.GPUSensor(uc, um)
		bc, bm := b.GPUSensor(uc, um)
		if !same(ac, bc) || !same(am, bm) {
			t.Fatalf("draw %d: GPU sensors diverged (%v,%v) vs (%v,%v)", i, ac, am, bc, bm)
		}
		if au, bu := a.CPUSensor(uc), b.CPUSensor(uc); !same(au, bu) {
			t.Fatalf("draw %d: CPU sensors diverged (%v vs %v)", i, au, bu)
		}
		ao, ad := a.GPUTransition()
		bo, bd := b.GPUTransition()
		if ao != bo || ad != bd {
			t.Fatalf("draw %d: transitions diverged (%v,%d) vs (%v,%d)", i, ao, ad, bo, bd)
		}
		if a.Meter() != b.Meter() {
			t.Fatalf("draw %d: meters diverged", i)
		}
		if a.Straggler() != b.Straggler() {
			t.Fatalf("draw %d: stragglers diverged", i)
		}
		oc, _ := other.GPUSensor(uc, um)
		if !same(oc, ac) {
			diverged = true
		}
	}
	if a.Counts() != b.Counts() {
		t.Fatalf("counts diverged: %+v vs %+v", a.Counts(), b.Counts())
	}
	if !diverged {
		t.Fatal("seed 7 and seed 8 produced identical GPU sensor sequences")
	}
}

func same(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// TestChannelIndependence: enabling one fault class must not shift another
// class's sequence — each draws from its own salted stream.
func TestChannelIndependence(t *testing.T) {
	full := Default(3)
	only := Plan{Seed: 3, TransitionRejectRate: full.TransitionRejectRate,
		TransitionDelayRate: full.TransitionDelayRate, TransitionDelayEpochs: full.TransitionDelayEpochs}
	a, b := New(full), New(only)
	for i := 0; i < 500; i++ {
		// a also consumes sensor draws between transitions; b does not.
		a.GPUSensor(0.5, 0.5)
		a.CPUSensor(0.5)
		ao, ad := a.GPUTransition()
		bo, bd := b.GPUTransition()
		if ao != bo || ad != bd {
			t.Fatalf("attempt %d: transition stream shifted by sensor classes: (%v,%d) vs (%v,%d)",
				i, ao, ad, bo, bd)
		}
	}
}

// TestAblationNoiseCompatibility: the GPU noise channel must reproduce the
// sensor-noise ablation's historical formula exactly — same seed
// derivation, same draw order, same clamp — so results/ablations CSVs stay
// byte-identical after the ablation was rewired through this package.
func TestAblationNoiseCompatibility(t *testing.T) {
	const baseSeed = 42
	for _, sigma := range []float64{0.05, 0.10, 0.20, 0.40} {
		in := New(Plan{Seed: baseSeed, GPUNoiseSigma: sigma})
		seed := parallel.TaskSeed(baseSeed^math.Float64bits(sigma), 0)
		var k uint64
		for i := 0; i < 200; i++ {
			uc, um := float64(i%5)/5, float64(i%9)/9
			gc, gm := in.GPUSensor(uc, um)
			a := parallel.Uniform(seed, k)
			b := parallel.Uniform(seed, k+1)
			k += 2
			wc := units.Clamp(uc+(a*2-1)*sigma, 0, 1)
			wm := units.Clamp(um+(b*2-1)*sigma, 0, 1)
			if gc != wc || gm != wm {
				t.Fatalf("sigma %v draw %d: got (%v,%v), ablation formula gives (%v,%v)",
					sigma, i, gc, gm, wc, wm)
			}
		}
	}
}

// TestFaultRates: over many draws, each class fires roughly at its
// configured rate (loose 3-sigma-ish bounds; the draws are uniform).
func TestFaultRates(t *testing.T) {
	p := Default(11)
	in := New(p)
	const n = 20000
	for i := 0; i < n; i++ {
		in.GPUSensor(0.5, 0.5)
		in.CPUSensor(0.5)
		in.GPUTransition()
		in.Meter()
		in.Straggler()
	}
	c := in.Counts()
	check := func(name string, got uint64, rate float64) {
		t.Helper()
		want := rate * n
		slack := 4 * math.Sqrt(want)
		if math.Abs(float64(got)-want) > slack+5 {
			t.Errorf("%s fired %d times, want about %.0f (±%.0f)", name, got, want, slack)
		}
	}
	check("GPU drop", c.GPUSensorDropped, p.GPUDropRate)
	check("CPU drop", c.CPUSensorDropped, p.CPUDropRate)
	check("transition reject", c.TransRejected, p.TransitionRejectRate)
	check("transition delay", c.TransDelayed, p.TransitionDelayRate)
	check("meter drop", c.MeterDropouts, p.MeterDropRate)
	check("meter spike", c.MeterSpikes, p.MeterSpikeRate)
	check("straggler", c.Stragglers, p.StragglerRate)
}

// TestStaleRepeatsLastDelivered: a stale sample repeats the previous
// delivered pair, not the previous raw input.
func TestStaleRepeatsLastDelivered(t *testing.T) {
	in := New(Plan{Seed: 5, GPUStaleRate: 0.5})
	var lastC, lastM float64
	have := false
	for i := 0; i < 500; i++ {
		uc, um := float64(i%10)/10, float64((i+3)%10)/10
		gc, gm := in.GPUSensor(uc, um)
		stale := have && gc == lastC && gm == lastM && (gc != uc || gm != um)
		fresh := gc == uc && gm == um
		if !stale && !fresh {
			t.Fatalf("draw %d: (%v,%v) is neither fresh (%v,%v) nor last delivered (%v,%v)",
				i, gc, gm, uc, um, lastC, lastM)
		}
		lastC, lastM = gc, gm
		have = true
	}
	if in.Counts().GPUSensorStale == 0 {
		t.Fatal("no stale samples at rate 0.5 over 500 draws")
	}
}

// TestDropDeliversNaN: dropped samples are NaN and never update the stale
// history.
func TestDropDeliversNaN(t *testing.T) {
	in := New(Plan{Seed: 9, GPUDropRate: 1})
	gc, gm := in.GPUSensor(0.3, 0.4)
	if !math.IsNaN(gc) || !math.IsNaN(gm) {
		t.Fatalf("dropped sample delivered (%v,%v), want NaN", gc, gm)
	}
	if in.haveGPU {
		t.Fatal("dropped sample updated stale history")
	}
	if u := New(Plan{Seed: 9, CPUDropRate: 1}).CPUSensor(0.3); !math.IsNaN(u) {
		t.Fatalf("dropped CPU sample delivered %v, want NaN", u)
	}
}

// TestMeterApply pins the sample transforms.
func TestMeterApply(t *testing.T) {
	in := New(Plan{Seed: 1, MeterSpikeRate: 0.5, MeterSpikeFactor: 3})
	if got := in.ApplyMeter(MeterOK, 120); got != 120 {
		t.Fatalf("MeterOK transformed sample: %v", got)
	}
	if got := in.ApplyMeter(MeterSpiked, 120); got != 360 {
		t.Fatalf("spike factor 3 on 120 W = %v, want 360", got)
	}
	if got := in.ApplyMeter(MeterDropped, 120); !math.IsNaN(got) {
		t.Fatalf("dropped sample = %v, want NaN", got)
	}
}

// TestValidate covers the rejection cases.
func TestValidate(t *testing.T) {
	bad := []Plan{
		{GPUDropRate: -0.1},
		{GPUDropRate: 1.5},
		{GPUNoiseSigma: math.NaN()},
		{TransitionDelayEpochs: -1},
		{TransitionDelayRate: 0.1}, // delay rate without epochs
		{MeterSpikeRate: 0.1, MeterSpikeFactor: 0.5},
		{StragglerRate: 0.1, StragglerFactor: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid plan %+v", i, p)
		}
	}
	good := Default(1)
	if err := good.Validate(); err != nil {
		t.Errorf("Default plan rejected: %v", err)
	}
	var zero Plan
	if err := zero.Validate(); err != nil {
		t.Errorf("zero plan rejected: %v", err)
	}
}

// TestCountsArithmetic pins Total and Sub.
func TestCountsArithmetic(t *testing.T) {
	a := Counts{GPUSensorNoisy: 5, TransRejected: 2, Stragglers: 1}
	b := Counts{GPUSensorNoisy: 3, TransRejected: 2}
	if got := a.Total(); got != 8 {
		t.Fatalf("Total = %d, want 8", got)
	}
	d := a.Sub(b)
	if d.GPUSensorNoisy != 2 || d.TransRejected != 0 || d.Stragglers != 1 {
		t.Fatalf("Sub = %+v", d)
	}
	s := a.Add(b)
	if s.GPUSensorNoisy != 8 || s.TransRejected != 4 || s.Stragglers != 1 {
		t.Fatalf("Add = %+v", s)
	}
	if s.Total() != a.Total()+b.Total() {
		t.Fatalf("Add total = %d, want %d", s.Total(), a.Total()+b.Total())
	}
	if got := a.Add(Counts{}); got != a {
		t.Fatalf("Add(zero) = %+v, want the receiver unchanged", got)
	}
}

// TestInjectorAllocFree: the hot-path methods must not allocate — they run
// inside the simulation's DVFS tickers.
func TestInjectorAllocFree(t *testing.T) {
	in := New(Default(13))
	var i int
	allocs := testing.AllocsPerRun(1000, func() {
		uc := float64(i%7) / 7
		in.GPUSensor(uc, uc)
		in.CPUSensor(uc)
		in.GPUTransition()
		in.CPUTransition()
		in.Meter()
		in.Straggler()
		in.Counts()
		i++
	})
	if allocs != 0 {
		t.Fatalf("injector hot path allocates %.1f times per epoch, want 0", allocs)
	}
}
