// Package faultinject is a deterministic, seed-derived fault engine for the
// simulated GreenGPU testbed.
//
// The paper's controller ran against real, misbehaving hardware: nvidia-smi
// utilization samples arrive noisy, stale, or not at all; nvidia-settings
// clock writes silently fail or land late; the Wattsup meter drops samples
// and spikes; a kernel occasionally runs far longer than its siblings
// (thermal throttling, ECC retries, a contended host). The DVFS-measurement
// literature (Mei et al.; Wang & Chu — see PAPERS.md) documents exactly
// these artifacts as the dominant practical obstacle to utilization-driven
// scaling. This package reproduces them on the otherwise perfectly
// well-behaved simulator so the recovery paths in dvfs, governor, and core
// are actually exercised.
//
// # Determinism
//
// Every fault decision is a pure function of (Plan, draw index): each fault
// class owns a channel with its own seed, derived statelessly from the
// plan's base seed with parallel.TaskSeed (the same SplitMix64 derivation
// the sensor-noise ablation introduced), and consecutive decisions on a
// channel consume consecutive parallel.Uniform draws. No shared PRNG stream
// exists, so an injected fault sequence is byte-identical no matter how
// many experiment workers run concurrently or in what order runs execute.
// A Plan is plain data — the run cache fingerprints it into the point key,
// so faulty runs memoize exactly like healthy ones.
//
// The GPU-sensor noise channel keeps the exact seed derivation and draw
// order of the original sensor-noise ablation
// (TaskSeed(seed^Float64bits(sigma), 0); two draws per sample, core before
// memory), so rewiring that ablation through this package left its CSV
// byte-identical — pinned by a golden-diff test in internal/experiments.
//
// # Fault model
//
// Sensor faults (GPU core/mem utilization, CPU utilization): noisy readings
// (uniform ±sigma, clamped to [0,1]), dropped readings (delivered as NaN —
// the consumer must cope), and stale readings (the previous delivered value
// is repeated). Actuator faults: a frequency transition is rejected (the
// clock sticks at the old level) or delayed (it lands N epochs late).
// Meter faults: a power sample is dropped (NaN) or spiked (multiplied).
// Kernel stragglers: one iteration's GPU work is inflated by a factor,
// stretching its execution time. Injection perturbs only what the
// controllers observe and actuate — energy ground truth stays analytic, as
// with the real meters, whose dropouts lied about consumption without
// changing it.
package faultinject

import (
	"fmt"
	"math"

	"greengpu/internal/parallel"
	"greengpu/internal/units"
)

// Plan parameterizes every fault class. It is plain data: the zero value
// injects nothing, all randomness derives from Seed, and the run cache can
// fingerprint it field by field. Rates are per-opportunity probabilities in
// [0,1] (per sensor sample, per transition attempt, per meter sample, per
// iteration).
type Plan struct {
	// Seed is the base seed every per-class channel seed derives from.
	Seed uint64

	// GPUNoiseSigma adds uniform ±sigma noise to every delivered GPU
	// utilization sample (core and memory), clamped to [0,1].
	GPUNoiseSigma float64
	// GPUDropRate drops a GPU utilization sample entirely: both domains
	// read NaN, modelling a failed nvidia-smi poll.
	GPUDropRate float64
	// GPUStaleRate repeats the previously delivered GPU sample, modelling
	// a counter file that did not update between polls.
	GPUStaleRate float64

	// CPUNoiseSigma, CPUDropRate and CPUStaleRate are the CPU-governor
	// sensor analogues of the GPU knobs above.
	CPUNoiseSigma float64
	CPUDropRate   float64
	CPUStaleRate  float64

	// TransitionRejectRate silently fails a frequency-transition request
	// (GPU level pair or CPU P-state): the clock sticks at the old level,
	// modelling an nvidia-settings write that returned success but did
	// nothing.
	TransitionRejectRate float64
	// TransitionDelayRate delays a transition by TransitionDelayEpochs
	// scaling epochs before it takes effect.
	TransitionDelayRate float64
	// TransitionDelayEpochs is the delay length; must be positive when
	// TransitionDelayRate is.
	TransitionDelayEpochs int

	// MeterDropRate drops a power-meter sample (NaN), as Wattsup loggers
	// routinely do.
	MeterDropRate float64
	// MeterSpikeRate multiplies a power-meter sample by MeterSpikeFactor,
	// modelling serial-line glitches.
	MeterSpikeRate   float64
	MeterSpikeFactor float64

	// StragglerRate inflates one iteration's GPU work (ops, bytes and
	// stall alike) by StragglerFactor, stretching its execution time the
	// way thermal throttling or ECC retries stretch a real kernel.
	StragglerRate   float64
	StragglerFactor float64
}

// Default returns the moderate-intensity, all-classes plan the resilience
// study and the CI chaos job run under.
func Default(seed uint64) Plan {
	return Plan{
		Seed:                  seed,
		GPUNoiseSigma:         0.05,
		GPUDropRate:           0.05,
		GPUStaleRate:          0.05,
		CPUNoiseSigma:         0.05,
		CPUDropRate:           0.05,
		CPUStaleRate:          0.05,
		TransitionRejectRate:  0.10,
		TransitionDelayRate:   0.05,
		TransitionDelayEpochs: 2,
		MeterDropRate:         0.05,
		MeterSpikeRate:        0.02,
		MeterSpikeFactor:      3,
		StragglerRate:         0.05,
		StragglerFactor:       1.5,
	}
}

// Validate reports the first problem with the plan, if any.
func (p *Plan) Validate() error {
	rate := func(name string, v float64) error {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("faultinject: %s = %v, must be in [0,1]", name, v)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"GPUNoiseSigma", p.GPUNoiseSigma},
		{"GPUDropRate", p.GPUDropRate},
		{"GPUStaleRate", p.GPUStaleRate},
		{"CPUNoiseSigma", p.CPUNoiseSigma},
		{"CPUDropRate", p.CPUDropRate},
		{"CPUStaleRate", p.CPUStaleRate},
		{"TransitionRejectRate", p.TransitionRejectRate},
		{"TransitionDelayRate", p.TransitionDelayRate},
		{"MeterDropRate", p.MeterDropRate},
		{"MeterSpikeRate", p.MeterSpikeRate},
		{"StragglerRate", p.StragglerRate},
	} {
		if err := rate(c.name, c.v); err != nil {
			return err
		}
	}
	if p.TransitionDelayEpochs < 0 {
		return fmt.Errorf("faultinject: TransitionDelayEpochs = %d, must be non-negative", p.TransitionDelayEpochs)
	}
	if p.TransitionDelayRate > 0 && p.TransitionDelayEpochs == 0 {
		return fmt.Errorf("faultinject: TransitionDelayRate > 0 needs TransitionDelayEpochs > 0")
	}
	if p.MeterSpikeRate > 0 && (math.IsNaN(p.MeterSpikeFactor) || p.MeterSpikeFactor < 1) {
		return fmt.Errorf("faultinject: MeterSpikeFactor = %v, must be >= 1 when MeterSpikeRate > 0", p.MeterSpikeFactor)
	}
	if p.StragglerRate > 0 && (math.IsNaN(p.StragglerFactor) || p.StragglerFactor < 1) {
		return fmt.Errorf("faultinject: StragglerFactor = %v, must be >= 1 when StragglerRate > 0", p.StragglerFactor)
	}
	return nil
}

// Zero reports whether the plan injects nothing: every rate and sigma is
// exactly zero. A nil or Zero plan must leave a run bit-identical to one
// that never saw this package.
func (p *Plan) Zero() bool {
	return p.GPUNoiseSigma == 0 && p.GPUDropRate == 0 && p.GPUStaleRate == 0 &&
		p.CPUNoiseSigma == 0 && p.CPUDropRate == 0 && p.CPUStaleRate == 0 &&
		p.TransitionRejectRate == 0 && p.TransitionDelayRate == 0 &&
		p.MeterDropRate == 0 && p.MeterSpikeRate == 0 &&
		p.StragglerRate == 0
}

// Counts tallies injected faults by class. The zero value is empty; Sub
// yields per-interval deltas for iteration-level reporting.
type Counts struct {
	GPUSensorNoisy   uint64
	GPUSensorDropped uint64
	GPUSensorStale   uint64
	CPUSensorNoisy   uint64
	CPUSensorDropped uint64
	CPUSensorStale   uint64
	TransRejected    uint64
	TransDelayed     uint64
	MeterDropouts    uint64
	MeterSpikes      uint64
	Stragglers       uint64
}

// Total returns the number of injected faults across all classes. Noisy
// samples are included: with a non-zero sigma every delivered sample is a
// (mild) fault.
func (c Counts) Total() uint64 {
	return c.GPUSensorNoisy + c.GPUSensorDropped + c.GPUSensorStale +
		c.CPUSensorNoisy + c.CPUSensorDropped + c.CPUSensorStale +
		c.TransRejected + c.TransDelayed +
		c.MeterDropouts + c.MeterSpikes +
		c.Stragglers
}

// Sub returns the per-class difference c − earlier, for windowed counts.
func (c Counts) Sub(earlier Counts) Counts {
	return Counts{
		GPUSensorNoisy:   c.GPUSensorNoisy - earlier.GPUSensorNoisy,
		GPUSensorDropped: c.GPUSensorDropped - earlier.GPUSensorDropped,
		GPUSensorStale:   c.GPUSensorStale - earlier.GPUSensorStale,
		CPUSensorNoisy:   c.CPUSensorNoisy - earlier.CPUSensorNoisy,
		CPUSensorDropped: c.CPUSensorDropped - earlier.CPUSensorDropped,
		CPUSensorStale:   c.CPUSensorStale - earlier.CPUSensorStale,
		TransRejected:    c.TransRejected - earlier.TransRejected,
		TransDelayed:     c.TransDelayed - earlier.TransDelayed,
		MeterDropouts:    c.MeterDropouts - earlier.MeterDropouts,
		MeterSpikes:      c.MeterSpikes - earlier.MeterSpikes,
		Stragglers:       c.Stragglers - earlier.Stragglers,
	}
}

// Add returns the per-class sum c + other, for fleet-level accumulation of
// per-node fault tallies.
func (c Counts) Add(other Counts) Counts {
	return Counts{
		GPUSensorNoisy:   c.GPUSensorNoisy + other.GPUSensorNoisy,
		GPUSensorDropped: c.GPUSensorDropped + other.GPUSensorDropped,
		GPUSensorStale:   c.GPUSensorStale + other.GPUSensorStale,
		CPUSensorNoisy:   c.CPUSensorNoisy + other.CPUSensorNoisy,
		CPUSensorDropped: c.CPUSensorDropped + other.CPUSensorDropped,
		CPUSensorStale:   c.CPUSensorStale + other.CPUSensorStale,
		TransRejected:    c.TransRejected + other.TransRejected,
		TransDelayed:     c.TransDelayed + other.TransDelayed,
		MeterDropouts:    c.MeterDropouts + other.MeterDropouts,
		MeterSpikes:      c.MeterSpikes + other.MeterSpikes,
		Stragglers:       c.Stragglers + other.Stragglers,
	}
}

// TransitionOutcome is the fate of one frequency-transition attempt.
type TransitionOutcome int

// Transition outcomes.
const (
	// TransitionOK applies immediately.
	TransitionOK TransitionOutcome = iota
	// TransitionRejected sticks the clock at the old level.
	TransitionRejected
	// TransitionDelayed lands the new level N epochs late.
	TransitionDelayed
)

// MeterFault is the fate of one power-meter sample.
type MeterFault int

// Meter sample fates.
const (
	// MeterOK delivers the sample unchanged.
	MeterOK MeterFault = iota
	// MeterDropped loses the sample (NaN).
	MeterDropped
	// MeterSpiked multiplies the sample by the plan's spike factor.
	MeterSpiked
)

// Channel salts. Each fault class draws from its own stateless stream so
// that enabling one class never shifts another's sequence. The constants
// are arbitrary but frozen — changing one changes every injected sequence.
const (
	saltGPUDrop   uint64 = 0xd1ce0001
	saltGPUStale  uint64 = 0xd1ce0002
	saltCPUNoise  uint64 = 0xd1ce0003
	saltCPUDrop   uint64 = 0xd1ce0004
	saltCPUStale  uint64 = 0xd1ce0005
	saltTransGPU  uint64 = 0xd1ce0006
	saltTransCPU  uint64 = 0xd1ce0007
	saltMeter     uint64 = 0xd1ce0008
	saltStraggler uint64 = 0xd1ce0009
)

// channel is one fault class's stateless draw stream: a derived seed plus a
// draw counter. Draw k is parallel.Uniform(seed, k) — no stream state, so
// sequences replay identically under any scheduling.
type channel struct {
	seed uint64
	k    uint64
}

func newChannel(base, salt uint64) channel {
	return channel{seed: parallel.TaskSeed(base^salt, 0)}
}

// next consumes one uniform draw in [0,1).
func (c *channel) next() float64 {
	u := parallel.Uniform(c.seed, c.k)
	c.k++
	return u
}

// Injector applies one run's fault plan. It is deliberately not safe for
// concurrent use: an injector belongs to exactly one simulated machine,
// whose event loop is single-threaded. All methods are allocation-free.
type Injector struct {
	plan   Plan
	counts Counts

	gpuNoise  channel
	gpuDrop   channel
	gpuStale  channel
	cpuNoise  channel
	cpuDrop   channel
	cpuStale  channel
	transGPU  channel
	transCPU  channel
	meter     channel
	straggler channel

	// Last delivered sensor values, replayed by the stale classes.
	lastUc, lastUm float64
	haveGPU        bool
	lastCPU        float64
	haveCPU        bool
}

// New creates an injector for the plan. It panics on an invalid plan; use
// Plan.Validate to check first.
func New(p Plan) *Injector {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Injector{
		plan: p,
		// The GPU noise channel reproduces the sensor-noise ablation's
		// historical derivation exactly: sigma is mixed into the seed,
		// and the channel has no salt.
		gpuNoise:  channel{seed: parallel.TaskSeed(p.Seed^math.Float64bits(p.GPUNoiseSigma), 0)},
		gpuDrop:   newChannel(p.Seed, saltGPUDrop),
		gpuStale:  newChannel(p.Seed, saltGPUStale),
		cpuNoise:  channel{seed: parallel.TaskSeed(p.Seed^math.Float64bits(p.CPUNoiseSigma)^saltCPUNoise, 0)},
		cpuDrop:   newChannel(p.Seed, saltCPUDrop),
		cpuStale:  newChannel(p.Seed, saltCPUStale),
		transGPU:  newChannel(p.Seed, saltTransGPU),
		transCPU:  newChannel(p.Seed, saltTransCPU),
		meter:     newChannel(p.Seed, saltMeter),
		straggler: newChannel(p.Seed, saltStraggler),
	}
}

// Plan returns the injector's fault plan.
func (in *Injector) Plan() Plan { return in.plan }

// Counts returns the faults injected so far, by class.
func (in *Injector) Counts() Counts { return in.counts }

// GPUSensor transforms one (core, memory) utilization sample. A dropped
// sample returns (NaN, NaN); a stale sample repeats the previous delivered
// pair; otherwise noise (if configured) is applied and the pair delivered.
// Classes are evaluated drop, then stale, then noise — a poll that fails
// outright never reads the stale file, and noise perturbs only fresh reads.
func (in *Injector) GPUSensor(uc, um float64) (float64, float64) {
	if in.plan.GPUDropRate > 0 && in.gpuDrop.next() < in.plan.GPUDropRate {
		in.counts.GPUSensorDropped++
		return math.NaN(), math.NaN()
	}
	if in.plan.GPUStaleRate > 0 && in.gpuStale.next() < in.plan.GPUStaleRate && in.haveGPU {
		in.counts.GPUSensorStale++
		return in.lastUc, in.lastUm
	}
	if sigma := in.plan.GPUNoiseSigma; sigma > 0 {
		a := in.gpuNoise.next()
		b := in.gpuNoise.next()
		uc = units.Clamp(uc+(a*2-1)*sigma, 0, 1)
		um = units.Clamp(um+(b*2-1)*sigma, 0, 1)
		in.counts.GPUSensorNoisy++
	}
	in.lastUc, in.lastUm = uc, um
	in.haveGPU = true
	return uc, um
}

// CPUSensor transforms one CPU utilization sample, with the same
// drop → stale → noise evaluation order as GPUSensor.
func (in *Injector) CPUSensor(u float64) float64 {
	if in.plan.CPUDropRate > 0 && in.cpuDrop.next() < in.plan.CPUDropRate {
		in.counts.CPUSensorDropped++
		return math.NaN()
	}
	if in.plan.CPUStaleRate > 0 && in.cpuStale.next() < in.plan.CPUStaleRate && in.haveCPU {
		in.counts.CPUSensorStale++
		return in.lastCPU
	}
	if sigma := in.plan.CPUNoiseSigma; sigma > 0 {
		a := in.cpuNoise.next()
		u = units.Clamp(u+(a*2-1)*sigma, 0, 1)
		in.counts.CPUSensorNoisy++
	}
	in.lastCPU = u
	in.haveCPU = true
	return u
}

// GPUTransition decides the fate of one GPU frequency-transition attempt.
// delay is the epoch count for TransitionDelayed, 0 otherwise.
func (in *Injector) GPUTransition() (outcome TransitionOutcome, delay int) {
	return in.transition(&in.transGPU)
}

// CPUTransition decides the fate of one CPU P-state transition attempt.
func (in *Injector) CPUTransition() (outcome TransitionOutcome, delay int) {
	return in.transition(&in.transCPU)
}

func (in *Injector) transition(ch *channel) (TransitionOutcome, int) {
	pr := in.plan.TransitionRejectRate
	pd := in.plan.TransitionDelayRate
	if pr == 0 && pd == 0 {
		return TransitionOK, 0
	}
	u := ch.next()
	switch {
	case u < pr:
		in.counts.TransRejected++
		return TransitionRejected, 0
	case u < pr+pd:
		in.counts.TransDelayed++
		return TransitionDelayed, in.plan.TransitionDelayEpochs
	default:
		return TransitionOK, 0
	}
}

// Meter decides the fate of one power-meter sample. The decision is drawn
// whether or not anyone reads the meter this epoch, so fault counts do not
// depend on which observers happen to be attached.
func (in *Injector) Meter() MeterFault {
	pd := in.plan.MeterDropRate
	ps := in.plan.MeterSpikeRate
	if pd == 0 && ps == 0 {
		return MeterOK
	}
	u := in.meter.next()
	switch {
	case u < pd:
		in.counts.MeterDropouts++
		return MeterDropped
	case u < pd+ps:
		in.counts.MeterSpikes++
		return MeterSpiked
	default:
		return MeterOK
	}
}

// ApplyMeter applies a Meter verdict to a sample in watts: dropped samples
// become NaN, spiked samples are multiplied by the plan's spike factor.
func (in *Injector) ApplyMeter(f MeterFault, watts float64) float64 {
	switch f {
	case MeterDropped:
		return math.NaN()
	case MeterSpiked:
		return watts * in.plan.MeterSpikeFactor
	default:
		return watts
	}
}

// Straggler decides whether the next iteration's GPU work straggles,
// returning the inflation factor (1 when healthy).
func (in *Injector) Straggler() float64 {
	if in.plan.StragglerRate == 0 {
		return 1
	}
	if in.straggler.next() < in.plan.StragglerRate {
		in.counts.Stragglers++
		return in.plan.StragglerFactor
	}
	return 1
}
