package kernels

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQGRunsAllBatches(t *testing.T) {
	q := NewQG(512, 3, 8, 1)
	iters := RunSerial(q)
	if iters != 8 || q.Batch() != 8 {
		t.Errorf("ran %d batches (Batch()=%d), want 8", iters, q.Batch())
	}
}

func TestQGGaussianMoments(t *testing.T) {
	// A quasirandom gaussian stream must have near-zero mean and
	// near-unit variance — far tighter than pseudorandom at the same N.
	q := NewQG(4096, 1, 1, 1)
	RunSerial(q)
	n := 4096
	var sum, sum2 float64
	for p := 0; p < n; p++ {
		v := q.Point(p, 0)
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestQGLowDiscrepancyBeatsRandomSpacing(t *testing.T) {
	// Dimension 0 is the van der Corput sequence: the first 2^k points,
	// mapped back through the CND, must hit 2^k distinct equal-width
	// uniform strata. We verify via the empirical CDF's max deviation
	// (star discrepancy proxy) being O(1/n) rather than O(1/sqrt(n)).
	const n = 1024
	q := NewQG(n, 1, 1, 1)
	RunSerial(q)
	us := make([]float64, n)
	for p := 0; p < n; p++ {
		us[p] = cnd(q.Point(p, 0))
	}
	// Empirical discrepancy over a grid.
	worst := 0.0
	for g := 1; g <= 64; g++ {
		thr := float64(g) / 64
		count := 0
		for _, u := range us {
			if u < thr {
				count++
			}
		}
		d := math.Abs(float64(count)/n - thr)
		if d > worst {
			worst = d
		}
	}
	if worst > 8.0/n {
		t.Errorf("discrepancy %v too high for a low-discrepancy sequence (want <= %v)", worst, 8.0/n)
	}
}

// cnd is the standard normal CDF (for testing the inverse).
func cnd(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

func TestInverseCNDRoundTrip(t *testing.T) {
	for _, u := range []float64{0.001, 0.02, 0.2, 0.5, 0.8, 0.98, 0.999} {
		x := inverseCND(u)
		back := cnd(x)
		if math.Abs(back-u) > 1e-6 {
			t.Errorf("cnd(inverseCND(%v)) = %v", u, back)
		}
	}
	if !math.IsInf(inverseCND(0), -1) || !math.IsInf(inverseCND(1), 1) {
		t.Error("boundary values should map to ±Inf")
	}
}

func TestQGChunkInvariance(t *testing.T) {
	a := NewQG(1000, 2, 4, 7)
	b := NewQG(1000, 2, 4, 7)
	RunSerial(a)
	runChunked(b, 7)
	if math.Abs(a.Checksum()-b.Checksum()) > 1e-9 {
		t.Errorf("checksums differ: %v vs %v", a.Checksum(), b.Checksum())
	}
}

func TestQGBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQG(0, 1, 1, 1)
}

// Property: inverseCND is monotone increasing on (0,1).
func TestInverseCNDMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		u1 := (float64(a) + 1) / 65538
		u2 := (float64(b) + 1) / 65538
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		if u1 == u2 {
			return true
		}
		return inverseCND(u1) < inverseCND(u2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
