package kernels

import "testing"

// These benchmarks measure the real kernels' per-iteration chunk
// throughput — the actual compute the hetero executor divides.

func BenchmarkKMeansChunk(b *testing.B) {
	km := NewKMeans(10000, 8, 8, 1<<30, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		km.Chunk(0, km.Items())
	}
}

func BenchmarkHotspotChunk(b *testing.B) {
	h := NewHotspot(256, 256, 1<<30, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Chunk(0, h.Items())
	}
}

func BenchmarkNBodyChunk(b *testing.B) {
	nb := NewNBody(512, 1<<30, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nb.Chunk(0, nb.Items())
	}
}

func BenchmarkSRADChunk(b *testing.B) {
	s := NewSRAD(256, 256, 1<<30, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Chunk(0, s.Items())
	}
}

func BenchmarkPathFinderChunk(b *testing.B) {
	p := NewPathFinder(1024, 4096, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Chunk(0, p.Items())
	}
}

func BenchmarkStreamClusterChunk(b *testing.B) {
	sc := NewStreamCluster(10000, 8, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Chunk(0, sc.Items())
	}
}

func BenchmarkBFSFullRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bfs := NewBFS(20000, 4, uint64(i)+1)
		RunSerial(bfs)
	}
}

func BenchmarkLUDFullRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l := NewLUD(96, uint64(i)+1)
		RunSerial(l)
	}
}
