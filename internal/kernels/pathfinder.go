package kernels

import "fmt"

// PathFinder is the Rodinia dynamic-programming grid walk: find the
// cheapest path from the top row to the bottom row moving straight or
// diagonally down. Each row is one iteration; the columns of a row are the
// divisible items.
type PathFinder struct {
	rows, cols int
	grid       []int32 // rows × cols costs
	prev       []int64 // best cost to reach previous row's cells
	next       []int64
	row        int
}

// NewPathFinder builds a rows×cols cost grid.
func NewPathFinder(rows, cols int, seed uint64) *PathFinder {
	if rows < 2 || cols < 2 {
		panic(fmt.Sprintf("kernels: invalid pathfinder shape %dx%d", rows, cols))
	}
	rng := newSplitMix64(seed)
	p := &PathFinder{
		rows: rows,
		cols: cols,
		grid: make([]int32, rows*cols),
		prev: make([]int64, cols),
		next: make([]int64, cols),
	}
	for i := range p.grid {
		p.grid[i] = int32(rng.intn(10))
	}
	for c := 0; c < cols; c++ {
		p.prev[c] = int64(p.grid[c])
	}
	p.row = 1
	return p
}

// Name implements Kernel.
func (p *PathFinder) Name() string { return "pathfinder" }

// Items implements Kernel: one item per column.
func (p *PathFinder) Items() int { return p.cols }

// Chunk relaxes columns [lo, hi) of the current row from the previous row.
func (p *PathFinder) Chunk(lo, hi int) any {
	checkRange("pathfinder", lo, hi, p.cols)
	for c := lo; c < hi; c++ {
		best := p.prev[c]
		if c > 0 && p.prev[c-1] < best {
			best = p.prev[c-1]
		}
		if c < p.cols-1 && p.prev[c+1] < best {
			best = p.prev[c+1]
		}
		p.next[c] = best + int64(p.grid[p.row*p.cols+c])
	}
	return nil
}

// EndIteration commits the row and moves down.
func (p *PathFinder) EndIteration([]any) bool {
	p.prev, p.next = p.next, p.prev
	p.row++
	return p.row < p.rows
}

// Row returns the next row to be relaxed.
func (p *PathFinder) Row() int { return p.row }

// BestCost returns the cheapest path cost once all rows are processed.
func (p *PathFinder) BestCost() int64 {
	best := p.prev[0]
	for _, v := range p.prev[1:] {
		if v < best {
			best = v
		}
	}
	return best
}

// ReferenceBestCost recomputes the answer with an independent serial DP,
// for verification.
func (p *PathFinder) ReferenceBestCost() int64 {
	prev := make([]int64, p.cols)
	next := make([]int64, p.cols)
	for c := 0; c < p.cols; c++ {
		prev[c] = int64(p.grid[c])
	}
	for r := 1; r < p.rows; r++ {
		for c := 0; c < p.cols; c++ {
			best := prev[c]
			if c > 0 && prev[c-1] < best {
				best = prev[c-1]
			}
			if c < p.cols-1 && prev[c+1] < best {
				best = prev[c+1]
			}
			next[c] = best + int64(p.grid[r*p.cols+c])
		}
		prev, next = next, prev
	}
	best := prev[0]
	for _, v := range prev[1:] {
		if v < best {
			best = v
		}
	}
	return best
}
