package kernels

import (
	"fmt"
	"math"
)

// SRAD is speckle-reducing anisotropic diffusion (Rodinia srad_v2) over a
// synthetic speckled image. Each diffusion step is two row-parallel
// passes: first the diffusion coefficients from local gradient statistics,
// then the image update — the two-kernel structure of the CUDA original,
// each pass ending at a barrier.
type SRAD struct {
	rows, cols int
	steps      int

	img   []float64 // current image
	coeff []float64 // diffusion coefficients
	next  []float64

	lambda float64
	step   int
	phase  int // 0: coefficients, 1: update
}

// NewSRAD builds a rows×cols image with multiplicative speckle noise over
// a smooth ramp.
func NewSRAD(rows, cols, steps int, seed uint64) *SRAD {
	if rows < 3 || cols < 3 || steps <= 0 {
		panic(fmt.Sprintf("kernels: invalid srad shape %dx%d steps=%d", rows, cols, steps))
	}
	rng := newSplitMix64(seed)
	s := &SRAD{
		rows:   rows,
		cols:   cols,
		steps:  steps,
		img:    make([]float64, rows*cols),
		coeff:  make([]float64, rows*cols),
		next:   make([]float64, rows*cols),
		lambda: 0.1,
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			base := 50 + 100*float64(r)/float64(rows)
			speckle := 0.8 + 0.4*rng.float64()
			s.img[r*cols+c] = base * speckle
		}
	}
	return s
}

// Name implements Kernel.
func (s *SRAD) Name() string { return "srad" }

// Items implements Kernel: one item per image row, in both phases.
func (s *SRAD) Items() int { return s.rows }

// Chunk runs the current phase over rows [lo, hi).
func (s *SRAD) Chunk(lo, hi int) any {
	checkRange("srad", lo, hi, s.rows)
	if s.phase == 0 {
		s.coefficients(lo, hi)
	} else {
		s.update(lo, hi)
	}
	return nil
}

func (s *SRAD) clampIndex(r, c int) int {
	if r < 0 {
		r = 0
	}
	if r >= s.rows {
		r = s.rows - 1
	}
	if c < 0 {
		c = 0
	}
	if c >= s.cols {
		c = s.cols - 1
	}
	return r*s.cols + c
}

// coefficients computes the SRAD diffusion coefficient per cell from the
// instantaneous coefficient of variation.
func (s *SRAD) coefficients(lo, hi int) {
	const q0sq = 0.05
	for r := lo; r < hi; r++ {
		for c := 0; c < s.cols; c++ {
			i := r*s.cols + c
			j := s.img[i]
			if j == 0 {
				s.coeff[i] = 1
				continue
			}
			dN := s.img[s.clampIndex(r-1, c)] - j
			dS := s.img[s.clampIndex(r+1, c)] - j
			dW := s.img[s.clampIndex(r, c-1)] - j
			dE := s.img[s.clampIndex(r, c+1)] - j
			g2 := (dN*dN + dS*dS + dW*dW + dE*dE) / (j * j)
			l := (dN + dS + dW + dE) / j
			num := 0.5*g2 - (1.0/16.0)*l*l
			den := 1 + 0.25*l
			qsq := num / (den * den)
			cd := 1 / (1 + (qsq-q0sq)/(q0sq*(1+q0sq)))
			s.coeff[i] = math.Max(0, math.Min(1, cd))
		}
	}
}

// update diffuses the image using the neighbour coefficients.
func (s *SRAD) update(lo, hi int) {
	for r := lo; r < hi; r++ {
		for c := 0; c < s.cols; c++ {
			i := r*s.cols + c
			j := s.img[i]
			cN := s.coeff[i]
			cS := s.coeff[s.clampIndex(r+1, c)]
			cW := s.coeff[i]
			cE := s.coeff[s.clampIndex(r, c+1)]
			dN := s.img[s.clampIndex(r-1, c)] - j
			dS := s.img[s.clampIndex(r+1, c)] - j
			dW := s.img[s.clampIndex(r, c-1)] - j
			dE := s.img[s.clampIndex(r, c+1)] - j
			div := cN*dN + cS*dS + cW*dW + cE*dE
			s.next[i] = j + 0.25*s.lambda*div
		}
	}
}

// EndIteration advances the phase; a full diffusion step completes every
// second barrier.
func (s *SRAD) EndIteration([]any) bool {
	if s.phase == 0 {
		s.phase = 1
		return true
	}
	s.img, s.next = s.next, s.img
	s.phase = 0
	s.step++
	return s.step < s.steps
}

// Step returns the number of completed diffusion steps.
func (s *SRAD) Step() int { return s.step }

// Variation returns the image's coefficient of variation (stddev/mean);
// diffusion must reduce it.
func (s *SRAD) Variation() float64 {
	mean := 0.0
	for _, v := range s.img {
		mean += v
	}
	mean /= float64(len(s.img))
	va := 0.0
	for _, v := range s.img {
		d := v - mean
		va += d * d
	}
	va /= float64(len(s.img))
	return math.Sqrt(va) / mean
}

// Pixel returns the current value at (row, col).
func (s *SRAD) Pixel(row, col int) float64 { return s.img[row*s.cols+col] }
