package kernels

import (
	"fmt"
	"sync/atomic"
)

// BFS is level-synchronized breadth-first search over a CSR graph, the
// Rodinia bfs structure: each iteration expands the current frontier (the
// divisible items) and the next frontier forms at the barrier. Distances
// are claimed with compare-and-swap so concurrent chunks discovering the
// same vertex stay correct.
type BFS struct {
	offsets []int32
	edges   []int32
	n       int

	dist     []int32
	frontier []int32
	level    int32
}

// bfsUnvisited marks a vertex not yet reached.
const bfsUnvisited = int32(-1)

// NewBFS builds a random graph with n vertices and roughly degree edges
// per vertex (plus a ring to keep it connected), rooted at vertex 0.
func NewBFS(n, degree int, seed uint64) *BFS {
	if n <= 1 || degree < 0 {
		panic(fmt.Sprintf("kernels: invalid bfs shape n=%d degree=%d", n, degree))
	}
	rng := newSplitMix64(seed)
	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		// Ring edge guarantees connectivity.
		adj[v] = append(adj[v], int32((v+1)%n))
		for e := 0; e < degree; e++ {
			adj[v] = append(adj[v], int32(rng.intn(n)))
		}
	}
	b := &BFS{
		offsets: make([]int32, n+1),
		n:       n,
		dist:    make([]int32, n),
	}
	for v := 0; v < n; v++ {
		b.offsets[v+1] = b.offsets[v] + int32(len(adj[v]))
	}
	b.edges = make([]int32, b.offsets[n])
	for v := 0; v < n; v++ {
		copy(b.edges[b.offsets[v]:], adj[v])
	}
	for v := range b.dist {
		b.dist[v] = bfsUnvisited
	}
	b.dist[0] = 0
	b.frontier = []int32{0}
	return b
}

// Name implements Kernel.
func (b *BFS) Name() string { return "bfs" }

// Items implements Kernel: one item per frontier vertex. The count changes
// every level.
func (b *BFS) Items() int { return len(b.frontier) }

// Chunk expands frontier vertices [lo, hi), returning the chunk's share of
// the next frontier.
func (b *BFS) Chunk(lo, hi int) any {
	checkRange("bfs", lo, hi, len(b.frontier))
	next := make([]int32, 0, (hi-lo)*2)
	newDist := b.level + 1
	for _, v := range b.frontier[lo:hi] {
		for _, w := range b.edges[b.offsets[v]:b.offsets[v+1]] {
			// Claim the vertex; only one chunk wins.
			if atomic.CompareAndSwapInt32(&b.dist[w], bfsUnvisited, newDist) {
				next = append(next, w)
			}
		}
	}
	return next
}

// EndIteration concatenates the partial next frontiers and advances a
// level. BFS ends when the frontier empties.
func (b *BFS) EndIteration(partials []any) bool {
	total := 0
	for _, p := range partials {
		total += len(p.([]int32))
	}
	next := make([]int32, 0, total)
	for _, p := range partials {
		next = append(next, p.([]int32)...)
	}
	b.frontier = next
	b.level++
	return len(b.frontier) > 0
}

// Level returns the number of completed expansion levels.
func (b *BFS) Level() int { return int(b.level) }

// Distance returns vertex v's BFS distance from the root, or -1 if
// unreached.
func (b *BFS) Distance(v int) int { return int(b.dist[v]) }

// Reached returns the number of visited vertices.
func (b *BFS) Reached() int {
	n := 0
	for _, d := range b.dist {
		if d != bfsUnvisited {
			n++
		}
	}
	return n
}

// ReferenceDistances recomputes distances with a simple serial BFS over the
// same graph, for verification.
func (b *BFS) ReferenceDistances() []int32 {
	dist := make([]int32, b.n)
	for i := range dist {
		dist[i] = bfsUnvisited
	}
	dist[0] = 0
	queue := []int32{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range b.edges[b.offsets[v]:b.offsets[v+1]] {
			if dist[w] == bfsUnvisited {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}
