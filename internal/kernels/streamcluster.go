package kernels

import (
	"fmt"
	"math"
)

// StreamCluster is the gain-evaluation core of the streamcluster online
// clustering benchmark: each iteration proposes one candidate facility and
// evaluates, over all points (the divisible items), how much total cost
// opening it would save; the open/reject decision happens at the barrier.
type StreamCluster struct {
	points []float64 // n × dim
	weight []float64
	n, dim int

	centers    []int     // open facility indices
	assign     []int     // point -> index into centers
	assignCost []float64 // point -> cost to its center

	openCost   float64
	candidates []int
	iter       int
}

// scPartial carries one chunk's gain sum and the points that would switch.
type scPartial struct {
	gain     float64
	switches []int
}

// NewStreamCluster builds n weighted points in dim dimensions around a few
// latent clusters, opens point 0 as the first facility, and prepares a
// deterministic candidate schedule of the given length.
func NewStreamCluster(n, dim, iterations int, seed uint64) *StreamCluster {
	if n < 2 || dim <= 0 || iterations <= 0 {
		panic(fmt.Sprintf("kernels: invalid streamcluster shape n=%d dim=%d iters=%d", n, dim, iterations))
	}
	rng := newSplitMix64(seed)
	sc := &StreamCluster{
		points:     make([]float64, n*dim),
		weight:     make([]float64, n),
		n:          n,
		dim:        dim,
		assign:     make([]int, n),
		assignCost: make([]float64, n),
		openCost:   float64(dim) * 5,
	}
	latent := 8
	for p := 0; p < n; p++ {
		c := p % latent
		sc.weight[p] = 0.5 + rng.float64()
		for d := 0; d < dim; d++ {
			sc.points[p*dim+d] = float64(c*7) + rng.float64()*2 - 1
		}
	}
	sc.centers = []int{0}
	for p := 0; p < n; p++ {
		sc.assign[p] = 0
		sc.assignCost[p] = sc.weight[p] * sc.dist2(p, 0)
	}
	sc.candidates = make([]int, iterations)
	for i := range sc.candidates {
		sc.candidates[i] = rng.intn(n)
	}
	return sc
}

func (sc *StreamCluster) dist2(p, q int) float64 {
	d := 0.0
	for j := 0; j < sc.dim; j++ {
		diff := sc.points[p*sc.dim+j] - sc.points[q*sc.dim+j]
		d += diff * diff
	}
	return d
}

// Name implements Kernel.
func (sc *StreamCluster) Name() string { return "streamcluster" }

// Items implements Kernel: one item per point.
func (sc *StreamCluster) Items() int { return sc.n }

// Chunk evaluates the current candidate facility against points [lo, hi),
// returning the gain contribution and the points that would reassign.
func (sc *StreamCluster) Chunk(lo, hi int) any {
	checkRange("streamcluster", lo, hi, sc.n)
	cand := sc.candidates[sc.iter]
	part := &scPartial{}
	for p := lo; p < hi; p++ {
		candCost := sc.weight[p] * sc.dist2(p, cand)
		if candCost < sc.assignCost[p] {
			part.gain += sc.assignCost[p] - candCost
			part.switches = append(part.switches, p)
		}
	}
	return part
}

// EndIteration opens the candidate if its total gain beats the facility
// opening cost, reassigning the switching points.
func (sc *StreamCluster) EndIteration(partials []any) bool {
	cand := sc.candidates[sc.iter]
	gain := 0.0
	var switches []int
	for _, p := range partials {
		part := p.(*scPartial)
		gain += part.gain
		switches = append(switches, part.switches...)
	}
	if gain > sc.openCost && !sc.isCenter(cand) {
		idx := len(sc.centers)
		sc.centers = append(sc.centers, cand)
		for _, p := range switches {
			sc.assign[p] = idx
			sc.assignCost[p] = sc.weight[p] * sc.dist2(p, cand)
		}
	}
	sc.iter++
	return sc.iter < len(sc.candidates)
}

func (sc *StreamCluster) isCenter(p int) bool {
	for _, c := range sc.centers {
		if c == p {
			return true
		}
	}
	return false
}

// Iteration returns the number of completed gain evaluations.
func (sc *StreamCluster) Iteration() int { return sc.iter }

// Centers returns the currently open facilities.
func (sc *StreamCluster) Centers() []int {
	out := make([]int, len(sc.centers))
	copy(out, sc.centers)
	return out
}

// TotalCost returns the assignment cost plus facility costs — the online
// clustering objective. It must be non-increasing per accepted candidate.
func (sc *StreamCluster) TotalCost() float64 {
	cost := float64(len(sc.centers)) * sc.openCost
	for p := 0; p < sc.n; p++ {
		cost += sc.assignCost[p]
	}
	return cost
}

// MaxAssignError verifies that every point's recorded assignment cost
// matches a recomputation — a consistency invariant for the chunked path.
func (sc *StreamCluster) MaxAssignError() float64 {
	worst := 0.0
	for p := 0; p < sc.n; p++ {
		want := sc.weight[p] * sc.dist2(p, sc.centers[sc.assign[p]])
		if d := math.Abs(want - sc.assignCost[p]); d > worst {
			worst = d
		}
	}
	return worst
}
