package kernels

import "fmt"

// Hotspot is the Rodinia thermal stencil: a 2D grid of temperatures driven
// by per-cell power density, relaxed one timestep per iteration. Rows are
// the divisible items; the barrier at the end of each step is the paper's
// hotspot iteration boundary.
type Hotspot struct {
	rows, cols int
	steps      int
	step       int

	temp  []float64 // current temperatures
	next  []float64 // next-step buffer
	power []float64 // heat dissipation per cell

	// Physical coefficients (Rodinia's single-step update weights).
	cap, rx, ry, rz float64
	ambient         float64
}

// NewHotspot builds a rows×cols grid with a synthetic power map containing
// a few hot blocks (simulated functional units).
func NewHotspot(rows, cols, steps int, seed uint64) *Hotspot {
	if rows < 3 || cols < 3 || steps <= 0 {
		panic(fmt.Sprintf("kernels: invalid hotspot shape %dx%d steps=%d", rows, cols, steps))
	}
	rng := newSplitMix64(seed)
	h := &Hotspot{
		rows:    rows,
		cols:    cols,
		steps:   steps,
		temp:    make([]float64, rows*cols),
		next:    make([]float64, rows*cols),
		power:   make([]float64, rows*cols),
		cap:     0.5,
		rx:      1.0,
		ry:      1.0,
		rz:      30.0,
		ambient: 80.0,
	}
	for i := range h.temp {
		h.temp[i] = h.ambient
	}
	// A handful of hot rectangular blocks.
	for b := 0; b < 6; b++ {
		r0 := rng.intn(rows - rows/4)
		c0 := rng.intn(cols - cols/4)
		for r := r0; r < r0+rows/8+1 && r < rows; r++ {
			for c := c0; c < c0+cols/8+1 && c < cols; c++ {
				h.power[r*cols+c] = 2 + 4*rng.float64()
			}
		}
	}
	return h
}

// Name implements Kernel.
func (h *Hotspot) Name() string { return "hotspot" }

// Items implements Kernel: one item per grid row.
func (h *Hotspot) Items() int { return h.rows }

// Chunk relaxes rows [lo, hi) for the current timestep, reading the
// current grid and writing the next buffer.
func (h *Hotspot) Chunk(lo, hi int) any {
	checkRange("hotspot", lo, hi, h.rows)
	cols := h.cols
	for r := lo; r < hi; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			t := h.temp[i]
			up, down, left, right := t, t, t, t
			if r > 0 {
				up = h.temp[i-cols]
			}
			if r < h.rows-1 {
				down = h.temp[i+cols]
			}
			if c > 0 {
				left = h.temp[i-1]
			}
			if c < cols-1 {
				right = h.temp[i+1]
			}
			delta := (h.power[i] +
				(up+down-2*t)/h.ry +
				(left+right-2*t)/h.rx +
				(h.ambient-t)/h.rz) / h.cap
			h.next[i] = t + 0.01*delta
		}
	}
	return nil
}

// EndIteration swaps buffers and advances the timestep.
func (h *Hotspot) EndIteration([]any) bool {
	h.temp, h.next = h.next, h.temp
	h.step++
	return h.step < h.steps
}

// Step returns the number of completed timesteps.
func (h *Hotspot) Step() int { return h.step }

// Temperature returns the current temperature at (row, col).
func (h *Hotspot) Temperature(row, col int) float64 {
	return h.temp[row*h.cols+col]
}

// MaxTemperature returns the hottest cell.
func (h *Hotspot) MaxTemperature() float64 {
	m := h.temp[0]
	for _, t := range h.temp {
		if t > m {
			m = t
		}
	}
	return m
}

// MeanTemperature returns the grid average.
func (h *Hotspot) MeanTemperature() float64 {
	sum := 0.0
	for _, t := range h.temp {
		sum += t
	}
	return sum / float64(len(h.temp))
}
