// Package kernels provides real Go implementations of the divisible
// computations behind the GreenGPU evaluation workloads: kmeans, hotspot,
// nbody, bfs, lud, srad, pathfinder and streamcluster.
//
// These are not simulator profiles — they compute actual results. Their
// role in this repository is to demonstrate the workload-division tier on
// genuine computation: every kernel exposes the iteration-and-items
// structure the paper's division algorithm needs (§IV: "an iteration is the
// execution of a fixed amount of work... the reduction point in kmeans,
// the barrier step in hotspot"), so the hetero executor can split each
// iteration's items between two worker pools of different speeds and
// rebalance the split from measured execution times.
//
// The contract mirrors the paper's implementation sketch (§VI): kernels are
// parameterized by the data range they process, ranges are disjoint and may
// run concurrently, and partial results merge at the iteration barrier.
package kernels

import "fmt"

// Kernel is a real, splittable computation.
type Kernel interface {
	// Name identifies the kernel.
	Name() string
	// Items returns the number of work items in the current iteration.
	// It may change between iterations (e.g. bfs frontiers).
	Items() int
	// Chunk processes items [lo, hi) of the current iteration and
	// returns a partial result for the iteration barrier. Chunks over
	// disjoint ranges may run concurrently.
	Chunk(lo, hi int) any
	// EndIteration merges the partial results and advances to the next
	// iteration. It reports whether more work remains.
	EndIteration(partials []any) bool
}

// RunSerial drives a kernel to completion on a single goroutine, processing
// every iteration as one chunk. It returns the number of iterations run.
// It is the reference executor used by tests and as the baseline in the
// examples.
func RunSerial(k Kernel) int {
	iters := 0
	for {
		n := k.Items()
		var partials []any
		if n > 0 {
			partials = append(partials, k.Chunk(0, n))
		}
		iters++
		if !k.EndIteration(partials) {
			return iters
		}
	}
}

// checkRange panics on malformed chunk ranges — misuse by an executor, not
// a data error.
func checkRange(name string, lo, hi, n int) {
	if lo < 0 || hi > n || lo > hi {
		panic(fmt.Sprintf("kernels: %s: chunk [%d,%d) out of range [0,%d)", name, lo, hi, n))
	}
}

// splitMix64 is a tiny deterministic PRNG used to generate reproducible
// synthetic inputs without pulling in math/rand state.
type splitMix64 struct{ state uint64 }

func newSplitMix64(seed uint64) *splitMix64 { return &splitMix64{state: seed} }

func (s *splitMix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (s *splitMix64) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// intn returns a uniform value in [0, n).
func (s *splitMix64) intn(n int) int {
	if n <= 0 {
		panic("kernels: intn on non-positive n")
	}
	return int(s.next() % uint64(n))
}
