package kernels

import (
	"fmt"
	"math"
)

// QG is the CUDA SDK quasirandomGenerator: generate Niederreiter-style
// quasirandom points by direction-vector XOR composition, then map them
// through the inverse cumulative normal distribution (the SDK's
// inverseCND kernel). One iteration produces one batch of points; the
// batch's points are the divisible items. The two stages mirror the SDK's
// two kernels and give the workload its characteristic utilization swing
// (table-driven bit work vs transcendental-heavy mapping).
type QG struct {
	dims      int
	batch     int
	batches   int
	iter      int
	direction []uint32  // dims × qgBits direction vectors
	out       []float64 // batch × dims, gaussian-mapped
	sumCheck  float64
}

// qgBits is the direction-vector depth (as in the SDK: 32-bit integers).
const qgBits = 31

// NewQG builds a generator for `batches` batches of `batch` points in
// `dims` dimensions.
func NewQG(batch, dims, batches int, seed uint64) *QG {
	if batch <= 0 || dims <= 0 || batches <= 0 {
		panic(fmt.Sprintf("kernels: invalid qg shape batch=%d dims=%d batches=%d", batch, dims, batches))
	}
	q := &QG{
		dims:      dims,
		batch:     batch,
		batches:   batches,
		direction: make([]uint32, dims*qgBits),
		out:       make([]float64, batch*dims),
	}
	// Dimension 0 uses the van der Corput vectors (bit-reversal); higher
	// dimensions perturb them with a deterministic polynomial mix, the
	// structure (not the exact tables) of Niederreiter's construction.
	rng := newSplitMix64(seed)
	for d := 0; d < dims; d++ {
		for b := 0; b < qgBits; b++ {
			v := uint32(1) << (qgBits - 1 - b)
			if d > 0 {
				v ^= uint32(rng.next()) & (v - 1)
			}
			q.direction[d*qgBits+b] = v
		}
	}
	return q
}

// Name implements Kernel.
func (q *QG) Name() string { return "qg" }

// Items implements Kernel: one item per point of the current batch.
func (q *QG) Items() int { return q.batch }

// qgPartial carries a chunk's checksum, so the merged result is
// order-independent and testable.
type qgPartial struct{ sum float64 }

// Chunk generates points [lo, hi) of the current batch and maps them to
// gaussians.
func (q *QG) Chunk(lo, hi int) any {
	checkRange("qg", lo, hi, q.batch)
	base := q.iter * q.batch
	part := &qgPartial{}
	for p := lo; p < hi; p++ {
		n := uint32(base + p + 1) // skip the all-zero point
		for d := 0; d < q.dims; d++ {
			// XOR-compose direction vectors over set bits.
			var acc uint32
			for b, bits := 0, n; bits != 0; b, bits = b+1, bits>>1 {
				if bits&1 != 0 {
					acc ^= q.direction[d*qgBits+b]
				}
			}
			u := (float64(acc) + 0.5) / float64(uint32(1)<<qgBits)
			g := inverseCND(u)
			q.out[p*q.dims+d] = g
			part.sum += g
		}
	}
	return part
}

// EndIteration advances to the next batch.
func (q *QG) EndIteration(partials []any) bool {
	for _, p := range partials {
		q.sumCheck += p.(*qgPartial).sum
	}
	q.iter++
	return q.iter < q.batches
}

// Batch returns the number of completed batches.
func (q *QG) Batch() int { return q.iter }

// Checksum returns the running sum of all generated gaussians — near zero
// for a well-balanced quasirandom sequence.
func (q *QG) Checksum() float64 { return q.sumCheck }

// Point returns coordinate d of point p of the last generated batch.
func (q *QG) Point(p, d int) float64 { return q.out[p*q.dims+d] }

// inverseCND is the Acklam rational approximation of the inverse
// cumulative normal distribution, the same approximation the CUDA SDK
// sample uses.
func inverseCND(u float64) float64 {
	const (
		a1 = -39.6968302866538
		a2 = 220.946098424521
		a3 = -275.928510446969
		a4 = 138.357751867269
		a5 = -30.6647980661472
		a6 = 2.50662827745924

		b1 = -54.4760987982241
		b2 = 161.585836858041
		b3 = -155.698979859887
		b4 = 66.8013118877197
		b5 = -13.2806815528857

		c1 = -7.78489400243029e-03
		c2 = -0.322396458041136
		c3 = -2.40075827716184
		c4 = -2.54973253934373
		c5 = 4.37466414146497
		c6 = 2.93816398269878

		d1 = 7.78469570904146e-03
		d2 = 0.32246712907004
		d3 = 2.445134137143
		d4 = 3.75440866190742

		low  = 0.02425
		high = 1 - low
	)
	switch {
	case u <= 0:
		return math.Inf(-1)
	case u >= 1:
		return math.Inf(1)
	case u < low:
		z := math.Sqrt(-2 * math.Log(u))
		return (((((c1*z+c2)*z+c3)*z+c4)*z+c5)*z + c6) /
			((((d1*z+d2)*z+d3)*z+d4)*z + 1)
	case u > high:
		z := math.Sqrt(-2 * math.Log(1-u))
		return -(((((c1*z+c2)*z+c3)*z+c4)*z+c5)*z + c6) /
			((((d1*z+d2)*z+d3)*z+d4)*z + 1)
	default:
		z := u - 0.5
		r := z * z
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * z /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	}
}
