package kernels

import (
	"fmt"
	"math"
)

// KMeans is Lloyd's algorithm over synthetic clustered points. One
// iteration assigns every point to its nearest centroid (the divisible
// part) and recomputes centroids at the reduction point, exactly the
// iteration structure the paper uses for its kmeans division case study.
type KMeans struct {
	points    []float64 // n × dim, row-major
	n, k, dim int

	centroids []float64 // k × dim
	moved     float64
	iter      int
	maxIters  int
	tolerance float64
}

// kmPartial accumulates per-cluster sums and counts for one chunk.
type kmPartial struct {
	sums   []float64 // k × dim
	counts []int
}

// NewKMeans builds a clustered synthetic dataset with n points in dim
// dimensions around k true centers, and initializes Lloyd's algorithm with
// the first k points as centroids (the Rodinia initialization).
func NewKMeans(n, k, dim, maxIters int, seed uint64) *KMeans {
	if n <= 0 || k <= 0 || dim <= 0 || k > n {
		panic(fmt.Sprintf("kernels: invalid kmeans shape n=%d k=%d dim=%d", n, k, dim))
	}
	rng := newSplitMix64(seed)
	// The data has three times more latent blobs than requested
	// centroids, so Lloyd's algorithm must group blobs and needs a
	// non-trivial number of iterations to settle (a separable lattice
	// with one blob per centroid converges in two steps — no use as a
	// division demo or test).
	latent := 3 * k
	centers := make([]float64, latent*dim)
	for i := range centers {
		centers[i] = float64(rng.intn(10)) * 4
	}
	points := make([]float64, n*dim)
	for p := 0; p < n; p++ {
		c := p % latent
		for d := 0; d < dim; d++ {
			points[p*dim+d] = centers[c*dim+d] + rng.float64()*6 - 3
		}
	}
	km := &KMeans{
		points:    points,
		n:         n,
		k:         k,
		dim:       dim,
		maxIters:  maxIters,
		tolerance: 1e-6,
		centroids: make([]float64, k*dim),
	}
	copy(km.centroids, points[:k*dim])
	return km
}

// Name implements Kernel.
func (km *KMeans) Name() string { return "kmeans" }

// Items implements Kernel: one item per point.
func (km *KMeans) Items() int { return km.n }

// Chunk assigns points [lo, hi) to their nearest centroids and returns the
// partial per-cluster sums.
func (km *KMeans) Chunk(lo, hi int) any {
	checkRange("kmeans", lo, hi, km.n)
	part := &kmPartial{
		sums:   make([]float64, km.k*km.dim),
		counts: make([]int, km.k),
	}
	for p := lo; p < hi; p++ {
		best, bestD := 0, math.Inf(1)
		for c := 0; c < km.k; c++ {
			d := 0.0
			for j := 0; j < km.dim; j++ {
				diff := km.points[p*km.dim+j] - km.centroids[c*km.dim+j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		part.counts[best]++
		for j := 0; j < km.dim; j++ {
			part.sums[best*km.dim+j] += km.points[p*km.dim+j]
		}
	}
	return part
}

// EndIteration merges partials into new centroids. It returns false when
// centroids moved less than the tolerance or the iteration budget is spent.
func (km *KMeans) EndIteration(partials []any) bool {
	sums := make([]float64, km.k*km.dim)
	counts := make([]int, km.k)
	for _, p := range partials {
		part := p.(*kmPartial)
		for c := 0; c < km.k; c++ {
			counts[c] += part.counts[c]
			for j := 0; j < km.dim; j++ {
				sums[c*km.dim+j] += part.sums[c*km.dim+j]
			}
		}
	}
	km.moved = 0
	for c := 0; c < km.k; c++ {
		if counts[c] == 0 {
			continue // empty cluster keeps its centroid
		}
		for j := 0; j < km.dim; j++ {
			nv := sums[c*km.dim+j] / float64(counts[c])
			km.moved += math.Abs(nv - km.centroids[c*km.dim+j])
			km.centroids[c*km.dim+j] = nv
		}
	}
	km.iter++
	return km.iter < km.maxIters && km.moved > km.tolerance
}

// Iteration returns the number of completed iterations.
func (km *KMeans) Iteration() int { return km.iter }

// Centroids returns the current centroids (k × dim, row-major).
func (km *KMeans) Centroids() []float64 {
	out := make([]float64, len(km.centroids))
	copy(out, km.centroids)
	return out
}

// Cost returns the clustering inertia: the total squared distance of every
// point to its nearest centroid.
func (km *KMeans) Cost() float64 {
	total := 0.0
	for p := 0; p < km.n; p++ {
		best := math.Inf(1)
		for c := 0; c < km.k; c++ {
			d := 0.0
			for j := 0; j < km.dim; j++ {
				diff := km.points[p*km.dim+j] - km.centroids[c*km.dim+j]
				d += diff * diff
			}
			if d < best {
				best = d
			}
		}
		total += best
	}
	return total
}
