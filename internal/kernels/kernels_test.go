package kernels

import (
	"math"
	"testing"
	"testing/quick"
)

// runChunked drives a kernel to completion splitting every iteration into
// nChunks sequential chunks — the chunked-but-serial reference path used
// to prove split-invariance.
func runChunked(k Kernel, nChunks int) int {
	iters := 0
	for {
		n := k.Items()
		var partials []any
		if n > 0 {
			per := (n + nChunks - 1) / nChunks
			for lo := 0; lo < n; lo += per {
				hi := lo + per
				if hi > n {
					hi = n
				}
				partials = append(partials, k.Chunk(lo, hi))
			}
		}
		iters++
		if !k.EndIteration(partials) {
			return iters
		}
	}
}

func TestRunSerialCountsIterations(t *testing.T) {
	h := NewHotspot(16, 16, 5, 1)
	if got := RunSerial(h); got != 5 {
		t.Errorf("RunSerial = %d iterations, want 5", got)
	}
	if h.Step() != 5 {
		t.Errorf("Step = %d", h.Step())
	}
}

func TestChunkRangeChecks(t *testing.T) {
	h := NewHotspot(8, 8, 1, 1)
	for _, r := range [][2]int{{-1, 4}, {0, 9}, {5, 3}} {
		r := r
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("chunk [%d,%d) did not panic", r[0], r[1])
				}
			}()
			h.Chunk(r[0], r[1])
		}()
	}
}

// --- kmeans ---

func TestKMeansConverges(t *testing.T) {
	km := NewKMeans(600, 4, 3, 50, 7)
	initial := km.Cost()
	iters := RunSerial(km)
	if iters >= 50 {
		t.Errorf("kmeans did not converge before the iteration budget (%d)", iters)
	}
	if iters < 3 {
		t.Errorf("kmeans converged in %d iterations — the synthetic data is degenerate for a division demo", iters)
	}
	// Lloyd must improve substantially over the first-k-points init.
	if got := km.Cost(); got > 0.8*initial {
		t.Errorf("inertia barely improved: %v -> %v", initial, got)
	}
}

func TestKMeansChunkInvariance(t *testing.T) {
	a := NewKMeans(500, 5, 2, 20, 11)
	b := NewKMeans(500, 5, 2, 20, 11)
	RunSerial(a)
	runChunked(b, 7)
	ca, cb := a.Centroids(), b.Centroids()
	for i := range ca {
		if math.Abs(ca[i]-cb[i]) > 1e-9 {
			t.Fatalf("centroid %d differs between serial and chunked: %v vs %v", i, ca[i], cb[i])
		}
	}
}

func TestKMeansCostDecreasesMonotonically(t *testing.T) {
	km := NewKMeans(400, 4, 2, 30, 3)
	prev := math.Inf(1)
	for {
		more := km.EndIteration([]any{km.Chunk(0, km.Items())})
		c := km.Cost()
		if c > prev+1e-6 {
			t.Fatalf("inertia rose at iteration %d: %v -> %v", km.Iteration(), prev, c)
		}
		prev = c
		if !more {
			break
		}
	}
}

func TestKMeansBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKMeans(3, 5, 2, 10, 1) // k > n
}

// --- hotspot ---

func TestHotspotHeatsUp(t *testing.T) {
	h := NewHotspot(32, 32, 100, 5)
	start := h.MeanTemperature()
	RunSerial(h)
	if h.MeanTemperature() <= start {
		t.Errorf("powered grid did not heat: %v -> %v", start, h.MeanTemperature())
	}
	if h.MaxTemperature() > 1000 {
		t.Errorf("temperature diverged: %v", h.MaxTemperature())
	}
}

func TestHotspotChunkInvariance(t *testing.T) {
	a := NewHotspot(24, 24, 20, 9)
	b := NewHotspot(24, 24, 20, 9)
	RunSerial(a)
	runChunked(b, 5)
	for r := 0; r < 24; r++ {
		for c := 0; c < 24; c++ {
			if math.Abs(a.Temperature(r, c)-b.Temperature(r, c)) > 1e-12 {
				t.Fatalf("temperature (%d,%d) differs", r, c)
			}
		}
	}
}

func TestHotspotUnpoweredStaysAmbient(t *testing.T) {
	h := NewHotspot(16, 16, 10, 1)
	for i := range h.power {
		h.power[i] = 0
	}
	RunSerial(h)
	if math.Abs(h.MeanTemperature()-h.ambient) > 1e-9 {
		t.Errorf("unpowered grid drifted from ambient: %v", h.MeanTemperature())
	}
}

// --- nbody ---

func TestNBodyConservesMomentum(t *testing.T) {
	nb := NewNBody(64, 50, 13)
	before := nb.CenterOfMassVelocity()
	RunSerial(nb)
	after := nb.CenterOfMassVelocity()
	for d := 0; d < 3; d++ {
		if math.Abs(after[d]-before[d]) > 1e-6 {
			t.Errorf("momentum drifted on axis %d: %v -> %v", d, before[d], after[d])
		}
	}
}

func TestNBodyEnergyStable(t *testing.T) {
	nb := NewNBody(48, 100, 17)
	e0 := nb.Energy()
	RunSerial(nb)
	e1 := nb.Energy()
	if rel := math.Abs(e1-e0) / math.Abs(e0); rel > 0.05 {
		t.Errorf("energy drifted %.2f%% over 100 steps", rel*100)
	}
}

func TestNBodyChunkInvariance(t *testing.T) {
	a := NewNBody(40, 10, 23)
	b := NewNBody(40, 10, 23)
	RunSerial(a)
	runChunked(b, 3)
	for i := range a.pos {
		if math.Abs(a.pos[i]-b.pos[i]) > 1e-12 {
			t.Fatalf("position %d differs between serial and chunked", i)
		}
	}
}

// --- bfs ---

func TestBFSMatchesReference(t *testing.T) {
	b := NewBFS(2000, 3, 31)
	RunSerial(b)
	want := b.ReferenceDistances()
	for v := 0; v < 2000; v++ {
		if int32(b.Distance(v)) != want[v] {
			t.Fatalf("distance(%d) = %d, want %d", v, b.Distance(v), want[v])
		}
	}
	if b.Reached() != 2000 {
		t.Errorf("reached %d of 2000 (graph has a connectivity ring)", b.Reached())
	}
}

func TestBFSChunkedMatchesReference(t *testing.T) {
	b := NewBFS(1500, 2, 37)
	runChunked(b, 4)
	want := b.ReferenceDistances()
	for v := 0; v < 1500; v++ {
		if int32(b.Distance(v)) != want[v] {
			t.Fatalf("chunked distance(%d) = %d, want %d", v, b.Distance(v), want[v])
		}
	}
}

func TestBFSFrontierShrinksToZero(t *testing.T) {
	b := NewBFS(500, 2, 41)
	for b.EndIteration([]any{b.Chunk(0, b.Items())}) {
		if b.Level() > 500 {
			t.Fatal("bfs did not terminate")
		}
	}
	if b.Items() != 0 {
		t.Errorf("frontier not empty at end: %d", b.Items())
	}
}

// --- lud ---

func TestLUDResidual(t *testing.T) {
	l := NewLUD(48, 43)
	RunSerial(l)
	if res := l.ResidualNorm(); res > 1e-8 {
		t.Errorf("‖L·U − A‖∞ = %v, want tiny", res)
	}
}

func TestLUDChunkInvariance(t *testing.T) {
	a := NewLUD(32, 47)
	b := NewLUD(32, 47)
	RunSerial(a)
	runChunked(b, 5)
	for i := range a.a {
		if math.Abs(a.a[i]-b.a[i]) > 1e-12 {
			t.Fatalf("decomposition differs at %d", i)
		}
	}
}

func TestLUDItemsShrink(t *testing.T) {
	l := NewLUD(10, 53)
	prev := l.Items()
	for l.EndIteration([]any{l.Chunk(0, l.Items())}) {
		if l.Items() != prev-1 {
			t.Fatalf("items did not shrink by one: %d -> %d", prev, l.Items())
		}
		prev = l.Items()
	}
}

// --- srad ---

func TestSRADReducesSpeckle(t *testing.T) {
	s := NewSRAD(48, 48, 30, 59)
	before := s.Variation()
	RunSerial(s)
	after := s.Variation()
	if after >= before {
		t.Errorf("diffusion did not reduce variation: %v -> %v", before, after)
	}
	if s.Step() != 30 {
		t.Errorf("steps = %d, want 30", s.Step())
	}
}

func TestSRADChunkInvariance(t *testing.T) {
	a := NewSRAD(30, 30, 10, 61)
	b := NewSRAD(30, 30, 10, 61)
	RunSerial(a)
	runChunked(b, 4)
	for r := 0; r < 30; r++ {
		for c := 0; c < 30; c++ {
			if math.Abs(a.Pixel(r, c)-b.Pixel(r, c)) > 1e-12 {
				t.Fatalf("pixel (%d,%d) differs", r, c)
			}
		}
	}
}

// --- pathfinder ---

func TestPathFinderMatchesReference(t *testing.T) {
	p := NewPathFinder(200, 400, 67)
	RunSerial(p)
	if got, want := p.BestCost(), p.ReferenceBestCost(); got != want {
		t.Errorf("BestCost = %d, want %d", got, want)
	}
}

func TestPathFinderChunkInvariance(t *testing.T) {
	a := NewPathFinder(100, 300, 71)
	b := NewPathFinder(100, 300, 71)
	RunSerial(a)
	runChunked(b, 6)
	if a.BestCost() != b.BestCost() {
		t.Errorf("chunked best cost %d != serial %d", b.BestCost(), a.BestCost())
	}
}

// --- streamcluster ---

func TestStreamClusterOpensCenters(t *testing.T) {
	sc := NewStreamCluster(1200, 4, 40, 73)
	RunSerial(sc)
	if len(sc.Centers()) < 2 {
		t.Errorf("no facilities opened beyond the seed: %v", sc.Centers())
	}
	if err := sc.MaxAssignError(); err > 1e-9 {
		t.Errorf("assignment costs inconsistent: %v", err)
	}
}

func TestStreamClusterCostImproves(t *testing.T) {
	sc := NewStreamCluster(800, 3, 30, 79)
	start := sc.TotalCost()
	RunSerial(sc)
	if sc.TotalCost() >= start {
		t.Errorf("clustering cost did not improve: %v -> %v", start, sc.TotalCost())
	}
}

func TestStreamClusterChunkInvariance(t *testing.T) {
	a := NewStreamCluster(600, 3, 25, 83)
	b := NewStreamCluster(600, 3, 25, 83)
	RunSerial(a)
	runChunked(b, 5)
	ca, cb := a.Centers(), b.Centers()
	if len(ca) != len(cb) {
		t.Fatalf("center counts differ: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("center %d differs: %d vs %d", i, ca[i], cb[i])
		}
	}
}

// Property: every kernel produces identical results no matter how its
// iterations are chunked.
func TestChunkInvarianceProperty(t *testing.T) {
	f := func(chunksSeed uint8, seed uint16) bool {
		nChunks := int(chunksSeed)%8 + 1
		s := uint64(seed) + 1
		a := NewKMeans(200, 3, 2, 10, s)
		b := NewKMeans(200, 3, 2, 10, s)
		RunSerial(a)
		runChunked(b, nChunks)
		ca, cb := a.Centroids(), b.Centroids()
		for i := range ca {
			if math.Abs(ca[i]-cb[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: pathfinder's chunked DP equals the reference for random
// shapes.
func TestPathFinderProperty(t *testing.T) {
	f := func(r, c uint8, seed uint16) bool {
		rows := int(r)%40 + 2
		cols := int(c)%60 + 2
		p := NewPathFinder(rows, cols, uint64(seed))
		runChunked(p, 3)
		return p.BestCost() == p.ReferenceBestCost()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := newSplitMix64(99), newSplitMix64(99)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("splitmix64 not deterministic")
		}
	}
	c := newSplitMix64(100)
	same := true
	a = newSplitMix64(99)
	for i := 0; i < 10; i++ {
		if a.next() != c.next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
	if v := a.float64(); v < 0 || v >= 1 {
		t.Errorf("float64 out of range: %v", v)
	}
	defer func() {
		if recover() == nil {
			t.Error("intn(0) did not panic")
		}
	}()
	a.intn(0)
}
