package kernels

import (
	"fmt"
	"math"
)

// NBody is the all-pairs gravitational simulation of the CUDA SDK demo.
// Each timestep computes every body's acceleration against all bodies
// (the divisible O(n²) part), then integrates at the barrier — a two-phase
// update so chunked execution is deterministic regardless of the split.
type NBody struct {
	n     int
	steps int
	step  int

	mass       []float64
	pos        []float64 // n × 3
	vel        []float64 // n × 3
	newPos     []float64
	newVel     []float64
	dt         float64
	softening2 float64
}

// NewNBody builds a cold Plummer-like sphere of n bodies.
func NewNBody(n, steps int, seed uint64) *NBody {
	if n <= 1 || steps <= 0 {
		panic(fmt.Sprintf("kernels: invalid nbody shape n=%d steps=%d", n, steps))
	}
	rng := newSplitMix64(seed)
	nb := &NBody{
		n:          n,
		steps:      steps,
		mass:       make([]float64, n),
		pos:        make([]float64, n*3),
		vel:        make([]float64, n*3),
		newPos:     make([]float64, n*3),
		newVel:     make([]float64, n*3),
		dt:         1e-4,
		softening2: 1e-4,
	}
	for i := 0; i < n; i++ {
		nb.mass[i] = 0.5 + rng.float64()
		for d := 0; d < 3; d++ {
			nb.pos[i*3+d] = rng.float64()*2 - 1
			nb.vel[i*3+d] = (rng.float64()*2 - 1) * 0.01
		}
	}
	return nb
}

// Name implements Kernel.
func (nb *NBody) Name() string { return "nbody" }

// Items implements Kernel: one item per body.
func (nb *NBody) Items() int { return nb.n }

// Chunk computes forces on bodies [lo, hi) against all bodies and writes
// their integrated state into the next-step buffers.
func (nb *NBody) Chunk(lo, hi int) any {
	checkRange("nbody", lo, hi, nb.n)
	for i := lo; i < hi; i++ {
		var ax, ay, az float64
		xi, yi, zi := nb.pos[i*3], nb.pos[i*3+1], nb.pos[i*3+2]
		for j := 0; j < nb.n; j++ {
			dx := nb.pos[j*3] - xi
			dy := nb.pos[j*3+1] - yi
			dz := nb.pos[j*3+2] - zi
			d2 := dx*dx + dy*dy + dz*dz + nb.softening2
			inv := 1 / (d2 * math.Sqrt(d2))
			f := nb.mass[j] * inv
			ax += dx * f
			ay += dy * f
			az += dz * f
		}
		nb.newVel[i*3] = nb.vel[i*3] + ax*nb.dt
		nb.newVel[i*3+1] = nb.vel[i*3+1] + ay*nb.dt
		nb.newVel[i*3+2] = nb.vel[i*3+2] + az*nb.dt
		nb.newPos[i*3] = xi + nb.newVel[i*3]*nb.dt
		nb.newPos[i*3+1] = yi + nb.newVel[i*3+1]*nb.dt
		nb.newPos[i*3+2] = zi + nb.newVel[i*3+2]*nb.dt
	}
	return nil
}

// EndIteration commits the integrated state and advances the timestep.
func (nb *NBody) EndIteration([]any) bool {
	nb.pos, nb.newPos = nb.newPos, nb.pos
	nb.vel, nb.newVel = nb.newVel, nb.vel
	nb.step++
	return nb.step < nb.steps
}

// Step returns the number of completed timesteps.
func (nb *NBody) Step() int { return nb.step }

// Energy returns the system's total mechanical energy (kinetic plus
// gravitational potential), used by tests as a stability invariant.
func (nb *NBody) Energy() float64 {
	e := 0.0
	for i := 0; i < nb.n; i++ {
		v2 := nb.vel[i*3]*nb.vel[i*3] + nb.vel[i*3+1]*nb.vel[i*3+1] + nb.vel[i*3+2]*nb.vel[i*3+2]
		e += 0.5 * nb.mass[i] * v2
		for j := i + 1; j < nb.n; j++ {
			dx := nb.pos[j*3] - nb.pos[i*3]
			dy := nb.pos[j*3+1] - nb.pos[i*3+1]
			dz := nb.pos[j*3+2] - nb.pos[i*3+2]
			d := math.Sqrt(dx*dx + dy*dy + dz*dz + nb.softening2)
			e -= nb.mass[i] * nb.mass[j] / d
		}
	}
	return e
}

// CenterOfMassVelocity returns the mass-weighted mean velocity; momentum
// conservation keeps it (nearly) constant.
func (nb *NBody) CenterOfMassVelocity() [3]float64 {
	var out [3]float64
	total := 0.0
	for i := 0; i < nb.n; i++ {
		total += nb.mass[i]
		for d := 0; d < 3; d++ {
			out[d] += nb.mass[i] * nb.vel[i*3+d]
		}
	}
	for d := 0; d < 3; d++ {
		out[d] /= total
	}
	return out
}
