package kernels

import (
	"fmt"
	"math"
)

// LUD is in-place LU decomposition (Doolittle, no pivoting) of a
// diagonally dominant matrix, the Rodinia lud structure: iteration k
// eliminates column k from the trailing rows (the divisible items), with a
// barrier between columns.
type LUD struct {
	a    []float64 // n × n, decomposed in place
	orig []float64 // kept for verification
	n    int
	k    int
}

// NewLUD builds a random diagonally dominant n×n matrix (so the
// decomposition is numerically stable without pivoting).
func NewLUD(n int, seed uint64) *LUD {
	if n < 2 {
		panic(fmt.Sprintf("kernels: invalid lud size n=%d", n))
	}
	rng := newSplitMix64(seed)
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		row := 0.0
		for j := 0; j < n; j++ {
			v := rng.float64()*2 - 1
			a[i*n+j] = v
			row += math.Abs(v)
		}
		a[i*n+i] = row + 1 // dominance
	}
	orig := make([]float64, len(a))
	copy(orig, a)
	return &LUD{a: a, orig: orig, n: n}
}

// Name implements Kernel.
func (l *LUD) Name() string { return "lud" }

// Items implements Kernel: the rows below the current pivot.
func (l *LUD) Items() int { return l.n - l.k - 1 }

// Chunk eliminates column k from trailing rows [lo, hi) (relative to the
// first row below the pivot).
func (l *LUD) Chunk(lo, hi int) any {
	checkRange("lud", lo, hi, l.Items())
	n, k := l.n, l.k
	pivot := l.a[k*n+k]
	for r := lo; r < hi; r++ {
		i := k + 1 + r
		factor := l.a[i*n+k] / pivot
		l.a[i*n+k] = factor // store L
		for j := k + 1; j < n; j++ {
			l.a[i*n+j] -= factor * l.a[k*n+j]
		}
	}
	return nil
}

// EndIteration advances to the next pivot column.
func (l *LUD) EndIteration([]any) bool {
	l.k++
	return l.k < l.n-1
}

// Column returns the current pivot column index.
func (l *LUD) Column() int { return l.k }

// ResidualNorm reconstructs L·U and returns max|L·U − A|, the
// verification metric.
func (l *LUD) ResidualNorm() float64 {
	n := l.n
	worst := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// (L·U)[i][j] = Σ_k L[i][k]·U[k][j], L unit-diagonal.
			sum := 0.0
			kmax := i
			if j < i {
				kmax = j
			}
			for k := 0; k <= kmax; k++ {
				lv := l.a[i*n+k]
				if k == i {
					lv = 1
				}
				var uv float64
				if k <= j {
					uv = l.a[k*n+j]
				}
				sum += lv * uv
			}
			if d := math.Abs(sum - l.orig[i*n+j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}
