package sim

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures the engine's raw schedule/fire rate —
// the floor cost of every simulated state transition.
func BenchmarkEventThroughput(b *testing.B) {
	e := New()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+time.Microsecond, "b", func() {})
		e.Step()
	}
}

// BenchmarkTicker measures a periodic controller's steady-state cost.
func BenchmarkTicker(b *testing.B) {
	e := New()
	e.Every(time.Second, "tick", func() {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkCancel measures mid-heap cancellation, the hot path of DVFS
// re-timing in-flight kernel phases.
func BenchmarkCancel(b *testing.B) {
	e := New()
	evs := make([]*Event, 0, 1024)
	for i := 0; i < b.N; i++ {
		if len(evs) == 0 {
			for j := 0; j < 1024; j++ {
				evs = append(evs, e.Schedule(e.Now()+time.Duration(j+1)*time.Millisecond, "c", func() {}))
			}
		}
		e.Cancel(evs[len(evs)-1])
		evs = evs[:len(evs)-1]
	}
}
