package sim

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures the engine's raw schedule/fire rate —
// the floor cost of every simulated state transition.
func BenchmarkEventThroughput(b *testing.B) {
	e := New()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+time.Microsecond, "b", fn)
		e.Step()
	}
}

// BenchmarkTicker measures a periodic controller's steady-state cost.
func BenchmarkTicker(b *testing.B) {
	e := New()
	e.Every(time.Second, "tick", func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkCancel measures mid-heap cancellation, the hot path of DVFS
// re-timing in-flight kernel phases. One fill/cancel cycle before the
// timer starts populates the event pool's free list; steady state is then
// allocation-free (the refills inside the loop reuse recycled nodes).
func BenchmarkCancel(b *testing.B) {
	e := New()
	fn := func() {}
	evs := make([]Event, 0, 1024)
	fill := func() {
		for j := 0; j < 1024; j++ {
			evs = append(evs, e.Schedule(e.Now()+time.Duration(j+1)*time.Millisecond, "c", fn))
		}
	}
	fill()
	for len(evs) > 0 {
		e.Cancel(evs[len(evs)-1])
		evs = evs[:len(evs)-1]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(evs) == 0 {
			fill()
		}
		e.Cancel(evs[len(evs)-1])
		evs = evs[:len(evs)-1]
	}
}

// TestCancelDoesNotAllocate pins the pooled cancel path at zero
// allocations: once the free list is warm, cancel and reschedule recycle
// nodes without touching the heap allocator.
func TestCancelDoesNotAllocate(t *testing.T) {
	e := New()
	fn := func() {}
	evs := make([]Event, 0, 1024)
	fill := func() {
		for j := 0; j < 1024; j++ {
			evs = append(evs, e.Schedule(e.Now()+time.Duration(j+1)*time.Millisecond, "c", fn))
		}
	}
	drain := func() {
		for len(evs) > 0 {
			e.Cancel(evs[len(evs)-1])
			evs = evs[:len(evs)-1]
		}
	}
	fill()
	drain()
	if allocs := testing.AllocsPerRun(100, func() {
		fill()
		drain()
	}); allocs != 0 {
		t.Errorf("cancel path allocates %.1f times per fill/drain cycle, want 0", allocs)
	}
}

// BenchmarkScheduleCancelChurn measures the cancel-then-reschedule pattern
// the DVFS tier drives on every frequency change: the pending completion
// event is cancelled and a new one scheduled at the re-timed instant. With
// pooling this is a pure heap exercise, zero allocations.
func BenchmarkScheduleCancelChurn(b *testing.B) {
	e := New()
	fn := func() {}
	// A standing population of events keeps the heap realistically deep.
	for j := 0; j < 256; j++ {
		e.Schedule(e.Now()+time.Duration(j+1)*time.Second, "bg", fn)
	}
	ev := e.Schedule(e.Now()+time.Millisecond, "churn", fn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cancel(ev)
		ev = e.Schedule(e.Now()+time.Duration(i%1000+1)*time.Millisecond, "churn", fn)
	}
}

// BenchmarkDeepHeap measures schedule/fire with a deep standing queue,
// where the 4-ary layout's shallower sift paths matter most.
func BenchmarkDeepHeap(b *testing.B) {
	e := New()
	fn := func() {}
	for j := 0; j < 4096; j++ {
		e.Schedule(e.Now()+time.Duration(j+1)*time.Hour, "bg", fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+time.Microsecond, "hot", fn)
		e.Step()
	}
}
