// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and an event queue ordered by
// activation time. Events scheduled for the same instant fire in the order
// they were scheduled (FIFO tie-breaking by sequence number), which makes
// every simulation run exactly reproducible.
//
// The GreenGPU testbed is built entirely on this engine: devices advance
// their internal state lazily when observed, and controllers (the DVFS tier,
// the ondemand governor, the workload-division tier) run as periodic events.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// MaxTime is the largest representable simulation instant.
const MaxTime = time.Duration(math.MaxInt64)

// Engine is a discrete-event simulator. The zero value is ready to use and
// starts at time zero. An Engine must not be shared between goroutines.
type Engine struct {
	now     time.Duration
	queue   eventHeap
	seq     uint64
	stopped bool
}

// New returns a new Engine with its clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at    time.Duration
	seq   uint64
	name  string
	fn    func()
	index int // heap index, -1 once fired or cancelled
}

// Time returns the instant the event is (or was) scheduled to fire.
func (ev *Event) Time() time.Duration { return ev.at }

// Name returns the diagnostic label given at scheduling time.
func (ev *Event) Name() string { return ev.name }

// Scheduled reports whether the event is still pending.
func (ev *Event) Scheduled() bool { return ev.index >= 0 }

// Schedule registers fn to run at absolute simulation time at. Scheduling in
// the past (before Now) panics: it would silently corrupt causality.
func (e *Engine) Schedule(at time.Duration, name string, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v which is before now %v", name, at, e.now))
	}
	if fn == nil {
		panic("sim: Schedule with nil callback")
	}
	ev := &Event{at: at, seq: e.seq, name: name, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After registers fn to run d after the current time. Delays that would
// overflow the simulation clock saturate at MaxTime (an event effectively
// beyond any run's horizon) instead of wrapping into the past.
func (e *Engine) After(d time.Duration, name string, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: After(%v) with negative delay", d))
	}
	at := e.now + d
	if at < e.now { // int64 overflow
		at = MaxTime
	}
	return e.Schedule(at, name, fn)
}

// Cancel removes the event from the queue. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Step fires the single earliest pending event, advancing the clock to its
// activation time. It reports whether an event was processed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	ev.index = -1
	e.now = ev.at
	ev.fn()
	return true
}

// Run processes events until the queue is empty or Stop is called.
// It returns the number of events processed.
func (e *Engine) Run() int {
	e.stopped = false
	n := 0
	for !e.stopped && e.Step() {
		n++
	}
	return n
}

// RunUntil processes events with activation time <= t, then advances the
// clock to exactly t (even if no event fired). It returns the number of
// events processed.
func (e *Engine) RunUntil(t time.Duration) int {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) is before now %v", t, e.now))
	}
	e.stopped = false
	n := 0
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= t {
		e.Step()
		n++
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
	return n
}

// Stop makes the innermost Run or RunUntil return after the current event
// completes. It is intended to be called from inside an event callback.
func (e *Engine) Stop() { e.stopped = true }

// Ticker fires a callback at a fixed period until stopped.
type Ticker struct {
	engine  *Engine
	period  time.Duration
	name    string
	fn      func()
	ev      *Event
	stopped bool
}

// Every schedules fn to run every period, with the first firing one full
// period from now. The period must be positive.
func (e *Engine) Every(period time.Duration, name string, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every(%v) with non-positive period", period))
	}
	t := &Ticker{engine: e, period: period, name: name, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.engine.After(t.period, t.name, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future firings. A tick already being processed completes.
func (t *Ticker) Stop() {
	t.stopped = true
	t.engine.Cancel(t.ev)
}

// Period returns the ticker's firing period.
func (t *Ticker) Period() time.Duration { return t.period }

// eventHeap is a min-heap on (at, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
