// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and an event queue ordered by
// activation time. Events scheduled for the same instant fire in the order
// they were scheduled (FIFO tie-breaking by sequence number), which makes
// every simulation run exactly reproducible.
//
// The GreenGPU testbed is built entirely on this engine: devices advance
// their internal state lazily when observed, and controllers (the DVFS tier,
// the ondemand governor, the workload-division tier) run as periodic events.
//
// # Allocation-free scheduling
//
// The engine recycles event nodes through a free list, so steady-state
// Schedule/fire churn (device phase completions, controller ticks) allocates
// nothing. Schedule returns an Event handle — a small value, not a pointer
// to engine-owned memory — that carries a generation counter. When a node
// fires or is cancelled it returns to the pool and its generation is bumped;
// a handle whose generation no longer matches is stale and every operation
// on it (Cancel, Scheduled) degrades to a safe no-op. Stale handles are
// therefore detected, never dangling: cancelling an event that already fired
// cannot kill an unrelated event that happens to reuse its node.
package sim

import (
	"fmt"
	"math"
	"time"

	"greengpu/internal/telemetry"
)

// Package metrics (see docs/OBSERVABILITY.md). Deliberately coarse: the
// per-event loop is the hottest path in the repository, so events are
// tallied locally by Run/RunUntil and flushed once per call — zero added
// instructions per event. No-ops unless telemetry is enabled.
var (
	metricRuns = telemetry.NewCounter("greengpu_sim_runs_total",
		"Engine Run/RunUntil invocations across all simulations.")
	metricEvents = telemetry.NewCounter("greengpu_sim_events_total",
		"Events dispatched by Run/RunUntil across all simulations.")
)

// MaxTime is the largest representable simulation instant.
const MaxTime = time.Duration(math.MaxInt64)

// Engine is a discrete-event simulator. The zero value is ready to use and
// starts at time zero. An Engine must not be shared between goroutines.
type Engine struct {
	now     time.Duration
	queue   eventHeap
	free    []*event // recycled nodes, reused by the next Schedule
	seq     uint64
	stopped bool
}

// New returns a new Engine with its clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// event is a pooled queue node. Nodes are owned by the engine and recycled
// on fire/cancel; external code only ever sees Event handles.
type event struct {
	at    time.Duration
	seq   uint64
	fn    func()
	name  string
	index int32  // heap index, -1 while pooled
	gen   uint64 // bumped on every recycle; stale handles mismatch
}

// Event is a handle to a scheduled callback. It is a small value, safe to
// copy and to keep after the callback fires: once the event has fired or
// been cancelled the handle is stale, Scheduled reports false, and Cancel is
// a no-op — even if the engine has reused the underlying node for a newer
// event. The zero Event behaves like a handle to an already-released event.
type Event struct {
	node *event
	gen  uint64
	at   time.Duration
	name string
}

// Time returns the instant the event is (or was) scheduled to fire.
func (ev Event) Time() time.Duration { return ev.at }

// Name returns the diagnostic label given at scheduling time.
func (ev Event) Name() string { return ev.name }

// Scheduled reports whether the event is still pending.
func (ev Event) Scheduled() bool {
	return ev.node != nil && ev.node.gen == ev.gen && ev.node.index >= 0
}

// alloc takes a node from the free list, or grows the pool.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free = e.free[:n-1]
		return ev
	}
	return &event{index: -1}
}

// recycle returns a node to the pool, invalidating all outstanding handles
// to it by bumping the generation. The callback is dropped so the pool does
// not retain closures (and whatever they capture) between uses.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.name = ""
	ev.index = -1
	ev.gen++
	e.free = append(e.free, ev)
}

// Schedule registers fn to run at absolute simulation time at. Scheduling in
// the past (before Now) panics: it would silently corrupt causality.
func (e *Engine) Schedule(at time.Duration, name string, fn func()) Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v which is before now %v", name, at, e.now))
	}
	if fn == nil {
		panic("sim: Schedule with nil callback")
	}
	ev := e.alloc()
	ev.at, ev.seq, ev.name, ev.fn = at, e.seq, name, fn
	e.seq++
	e.queue.push(ev)
	return Event{node: ev, gen: ev.gen, at: at, name: name}
}

// After registers fn to run d after the current time. Delays that would
// overflow the simulation clock saturate at MaxTime (an event effectively
// beyond any run's horizon) instead of wrapping into the past.
func (e *Engine) After(d time.Duration, name string, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: After(%v) with negative delay", d))
	}
	return e.Schedule(AddTime(e.now, d), name, fn)
}

// AddTime advances a simulation timestamp by a non-negative delay with the
// same saturation rule the engine clock uses: sums that would overflow the
// int64 nanosecond range pin to MaxTime instead of wrapping into the past.
// Exported so batch evaluators (internal/sweep) replaying the clock outside
// an Engine advance it bit-identically.
func AddTime(t, d time.Duration) time.Duration {
	at := t + d
	if at < t { // int64 overflow
		at = MaxTime
	}
	return at
}

// Cancel removes the event from the queue and recycles its node.
// Cancelling an already-fired, already-cancelled, stale, or zero handle is
// a no-op.
func (e *Engine) Cancel(ev Event) {
	n := ev.node
	if n == nil || n.gen != ev.gen || n.index < 0 {
		return
	}
	e.queue.remove(int(n.index))
	e.recycle(n)
}

// Step fires the single earliest pending event, advancing the clock to its
// activation time. It reports whether an event was processed.
//
// The node is recycled before the callback runs, so a callback that
// schedules new work may be handed the node it is firing from — handles
// held by the callback's creator are already stale by then and cannot
// interfere with the new event.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.queue.pop()
	e.now = ev.at
	fn := ev.fn
	e.recycle(ev)
	fn()
	return true
}

// Run processes events until the queue is empty or Stop is called.
// It returns the number of events processed.
func (e *Engine) Run() int {
	e.stopped = false
	n := 0
	for !e.stopped && e.Step() {
		n++
	}
	metricRuns.Inc()
	metricEvents.Add(uint64(n))
	return n
}

// RunUntil processes events with activation time <= t, then advances the
// clock to exactly t (even if no event fired). It returns the number of
// events processed.
func (e *Engine) RunUntil(t time.Duration) int {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) is before now %v", t, e.now))
	}
	e.stopped = false
	n := 0
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= t {
		e.Step()
		n++
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
	metricRuns.Inc()
	metricEvents.Add(uint64(n))
	return n
}

// Stop makes the innermost Run or RunUntil return after the current event
// completes. It is intended to be called from inside an event callback.
func (e *Engine) Stop() { e.stopped = true }

// Ticker fires a callback at a fixed period until stopped.
type Ticker struct {
	engine  *Engine
	period  time.Duration
	name    string
	fn      func()
	tick    func() // bound once at Every; re-arming reuses it, no per-tick closure
	ev      Event
	stopped bool
}

// Every schedules fn to run every period, with the first firing one full
// period from now. The period must be positive.
func (e *Engine) Every(period time.Duration, name string, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every(%v) with non-positive period", period))
	}
	t := &Ticker{engine: e, period: period, name: name, fn: fn}
	t.tick = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.engine.After(t.period, t.name, t.tick)
}

// Stop cancels future firings. A tick already being processed completes.
func (t *Ticker) Stop() {
	t.stopped = true
	t.engine.Cancel(t.ev)
}

// Period returns the ticker's firing period.
func (t *Ticker) Period() time.Duration { return t.period }

// heapArity is the fan-out of the event queue. A 4-ary heap halves tree
// depth versus a binary heap: sift paths touch fewer cache lines at the
// cost of a few extra in-line comparisons per level, a good trade for the
// Schedule/Step churn the device models generate.
const heapArity = 4

// eventHeap is an indexed min-heap on (at, seq). Sifts move elements along
// the hole rather than swapping, and pop/remove reset the departing node's
// index themselves so no call site can forget to.
type eventHeap []*event

func (h eventHeap) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp moves the element at i toward the root and returns its final index.
func (h eventHeap) siftUp(i int) int {
	ev := h[i]
	for i > 0 {
		p := (i - 1) / heapArity
		if !h.less(ev, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = int32(i)
		i = p
	}
	h[i] = ev
	ev.index = int32(i)
	return i
}

// siftDown moves the element at i toward the leaves and returns its final
// index.
func (h eventHeap) siftDown(i int) int {
	ev := h[i]
	n := len(h)
	for {
		c := heapArity*i + 1
		if c >= n {
			break
		}
		m := c
		hi := c + heapArity
		if hi > n {
			hi = n
		}
		for k := c + 1; k < hi; k++ {
			if h.less(h[k], h[m]) {
				m = k
			}
		}
		if !h.less(h[m], ev) {
			break
		}
		h[i] = h[m]
		h[i].index = int32(i)
		i = m
	}
	h[i] = ev
	ev.index = int32(i)
	return i
}

func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	ev.index = int32(len(*h) - 1)
	h.siftUp(len(*h) - 1)
}

// pop removes and returns the minimum event with its index reset to -1.
func (h *eventHeap) pop() *event {
	old := *h
	top := old[0]
	n := len(old) - 1
	last := old[n]
	old[n] = nil
	*h = old[:n]
	if n > 0 {
		old[0] = last
		h.siftDown(0)
	}
	top.index = -1
	return top
}

// remove removes the event at heap index i with its index reset to -1.
func (h *eventHeap) remove(i int) *event {
	old := *h
	ev := old[i]
	n := len(old) - 1
	last := old[n]
	old[n] = nil
	*h = old[:n]
	if i < n {
		old[i] = last
		last.index = int32(i)
		if h.siftDown(i) == i {
			h.siftUp(i)
		}
	}
	ev.index = -1
	return ev
}
