package sim

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(3*time.Second, "c", func() { got = append(got, 3) })
	e.Schedule(1*time.Second, "a", func() { got = append(got, 1) })
	e.Schedule(2*time.Second, "b", func() { got = append(got, 2) })
	if n := e.Run(); n != 3 {
		t.Fatalf("Run processed %d events, want 3", n)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("order = %v, want [1 2 3]", got)
		}
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", e.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := New()
	var got []string
	at := 5 * time.Second
	for _, name := range []string{"first", "second", "third", "fourth"} {
		name := name
		e.Schedule(at, name, func() { got = append(got, name) })
	}
	e.Run()
	want := []string{"first", "second", "third", "fourth"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tie-break order = %v, want %v", got, want)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(time.Second, "x", func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.Schedule(500*time.Millisecond, "past", func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil callback")
		}
	}()
	e.Schedule(time.Second, "nil", nil)
}

func TestAfterNegativePanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative After")
		}
	}()
	e.After(-time.Second, "neg", func() {})
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(time.Second, "x", func() { fired = true })
	if !ev.Scheduled() {
		t.Fatal("event should be scheduled")
	}
	e.Cancel(ev)
	if ev.Scheduled() {
		t.Fatal("event should not be scheduled after cancel")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and zero-handle cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(Event{})
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New()
	var got []int
	evs := make([]Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.Schedule(time.Duration(i+1)*time.Second, "n", func() { got = append(got, i) })
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.Run()
	want := []int{0, 1, 2, 3, 5, 6, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Second
		e.Schedule(d, "x", func() { fired = append(fired, d) })
	}
	n := e.RunUntil(3 * time.Second)
	if n != 3 {
		t.Fatalf("RunUntil processed %d, want 3", n)
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	// Advancing to a time with no events still moves the clock.
	e2 := New()
	e2.RunUntil(10 * time.Second)
	if e2.Now() != 10*time.Second {
		t.Errorf("empty RunUntil Now = %v", e2.Now())
	}
}

func TestRunUntilPastPanics(t *testing.T) {
	e := New()
	e.RunUntil(5 * time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for RunUntil in the past")
		}
	}()
	e.RunUntil(time.Second)
}

func TestStopInsideCallback(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 5; i++ {
		e.Schedule(time.Duration(i)*time.Second, "x", func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	n := e.Run()
	if n != 2 || count != 2 {
		t.Fatalf("Run stopped after %d events (count %d), want 2", n, count)
	}
	// A subsequent Run resumes.
	n = e.Run()
	if n != 3 {
		t.Fatalf("resumed Run processed %d, want 3", n)
	}
}

func TestSchedulingFromCallback(t *testing.T) {
	e := New()
	var got []time.Duration
	e.Schedule(time.Second, "a", func() {
		got = append(got, e.Now())
		e.After(2*time.Second, "b", func() { got = append(got, e.Now()) })
	})
	e.Run()
	if len(got) != 2 || got[0] != time.Second || got[1] != 3*time.Second {
		t.Fatalf("got %v", got)
	}
}

func TestTicker(t *testing.T) {
	e := New()
	var ticks []time.Duration
	tk := e.Every(3*time.Second, "tick", func() {
		ticks = append(ticks, e.Now())
	})
	e.RunUntil(10 * time.Second)
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3: %v", len(ticks), ticks)
	}
	for i, want := range []time.Duration{3 * time.Second, 6 * time.Second, 9 * time.Second} {
		if ticks[i] != want {
			t.Errorf("tick %d at %v, want %v", i, ticks[i], want)
		}
	}
	tk.Stop()
	before := len(ticks)
	e.RunUntil(30 * time.Second)
	if len(ticks) != before {
		t.Errorf("ticker fired after Stop")
	}
	if tk.Period() != 3*time.Second {
		t.Errorf("Period = %v", tk.Period())
	}
}

func TestTickerStopFromInsideTick(t *testing.T) {
	e := New()
	count := 0
	var tk *Ticker
	tk = e.Every(time.Second, "tick", func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	e.RunUntil(10 * time.Second)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero period")
		}
	}()
	e.Every(0, "bad", func() {})
}

func TestEventAccessors(t *testing.T) {
	e := New()
	ev := e.Schedule(7*time.Second, "probe", func() {})
	if ev.Time() != 7*time.Second {
		t.Errorf("Time = %v", ev.Time())
	}
	if ev.Name() != "probe" {
		t.Errorf("Name = %q", ev.Name())
	}
}

// Property: for any multiset of schedule times, events fire in sorted order
// and the clock is monotone non-decreasing.
func TestOrderingProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		var fired []time.Duration
		for _, d := range delays {
			at := time.Duration(d) * time.Millisecond
			e.Schedule(at, "x", func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		sorted := make([]time.Duration, len(delays))
		for i, d := range delays {
			sorted[i] = time.Duration(d) * time.Millisecond
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range fired {
			if fired[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: RunUntil(t1) then RunUntil(t2>=t1) is equivalent to RunUntil(t2).
func TestRunUntilSplitProperty(t *testing.T) {
	f := func(delays []uint8, split uint8) bool {
		run := func(splitAt bool) []time.Duration {
			e := New()
			var fired []time.Duration
			for _, d := range delays {
				at := time.Duration(d) * time.Millisecond
				e.Schedule(at, "x", func() { fired = append(fired, e.Now()) })
			}
			end := 300 * time.Millisecond
			if splitAt {
				e.RunUntil(time.Duration(split) * time.Millisecond)
				e.RunUntil(end)
			} else {
				e.RunUntil(end)
			}
			return fired
		}
		a, b := run(true), run(false)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// The pooling contract: a handle to a fired event is stale, and stale
// handles are inert even after the engine reuses the node for a new event.
func TestStaleHandleAfterFire(t *testing.T) {
	e := New()
	first := e.Schedule(time.Second, "first", func() {})
	e.Run()
	if first.Scheduled() {
		t.Fatal("fired event still reports Scheduled")
	}
	// The pool reuses first's node for the next event.
	fired := false
	second := e.Schedule(2*time.Second, "second", func() { fired = true })
	if first.Scheduled() {
		t.Fatal("stale handle reports Scheduled after node reuse")
	}
	// Cancelling the stale handle must not kill the event that now owns
	// the node.
	e.Cancel(first)
	if !second.Scheduled() {
		t.Fatal("stale cancel killed an unrelated reused event")
	}
	e.Run()
	if !fired {
		t.Fatal("reused event never fired")
	}
	// Accessors on stale handles keep reporting scheduling-time values.
	if first.Time() != time.Second || first.Name() != "first" {
		t.Errorf("stale handle accessors = (%v, %q)", first.Time(), first.Name())
	}
}

// A cancelled event's node is recycled immediately; the cancelled handle
// must stay inert across reuse just like a fired one.
func TestStaleHandleAfterCancel(t *testing.T) {
	e := New()
	a := e.Schedule(time.Second, "a", func() { t.Fatal("cancelled event fired") })
	e.Cancel(a)
	ok := false
	b := e.Schedule(time.Second, "b", func() { ok = true })
	e.Cancel(a) // stale: must not cancel b
	if !b.Scheduled() {
		t.Fatal("stale double-cancel killed the reused event")
	}
	e.Run()
	if !ok {
		t.Fatal("event b never fired")
	}
}

// Steady-state Schedule/fire churn must not allocate: nodes come from the
// pool and handles are values.
func TestScheduleFireDoesNotAllocate(t *testing.T) {
	e := New()
	fn := func() {}
	// Warm the pool.
	e.Schedule(e.Now(), "warm", fn)
	e.Step()
	allocs := testing.AllocsPerRun(100, func() {
		e.Schedule(e.Now()+time.Microsecond, "x", fn)
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("Schedule+Step allocates %v objects per op, want 0", allocs)
	}
}

// Ticker ticks re-arm without allocating a closure or a node.
func TestTickerTickDoesNotAllocate(t *testing.T) {
	e := New()
	e.Every(time.Second, "tick", func() {})
	e.Step() // warm: first pooled node enters circulation
	allocs := testing.AllocsPerRun(100, func() { e.Step() })
	if allocs != 0 {
		t.Errorf("ticker tick allocates %v objects per op, want 0", allocs)
	}
}

func TestAfterSaturatesOnOverflow(t *testing.T) {
	e := New()
	e.RunUntil(time.Hour)
	ev := e.After(MaxTime, "far", func() {})
	if ev.Time() != MaxTime {
		t.Errorf("overflowing After scheduled at %v, want MaxTime", ev.Time())
	}
}
