package sim

import (
	"testing"
	"time"
)

// The fuzz test drives random interleavings of Schedule/After/Cancel/Every/
// Ticker.Stop/Step against both the engine and an obviously-correct
// reference model (a flat slice scanned for the minimum (at, seq) pair).
// Any divergence — in fire order, clock, pending count, or handle
// staleness — is a bug in the pooled engine. In particular this checks the
// pooling contract: cancelling a stale handle must never kill the unrelated
// event that reused its node, and cancelled events must never fire.

// modelEvent mirrors one scheduled callback in the reference model.
type modelEvent struct {
	at   time.Duration
	seq  uint64
	id   int
	tick *modelTicker // non-nil for a ticker firing: re-arms on fire
	live bool
}

type modelTicker struct {
	period  time.Duration
	id      int
	stopped bool
	pending *modelEvent
}

// model is the reference scheduler: no heap, no pooling, just a scan.
type model struct {
	now    time.Duration
	seq    uint64
	events []*modelEvent
}

func (m *model) schedule(at time.Duration, id int, tick *modelTicker) *modelEvent {
	ev := &modelEvent{at: at, seq: m.seq, id: id, tick: tick, live: true}
	m.seq++
	m.events = append(m.events, ev)
	return ev
}

func (m *model) pendingCount() int {
	n := 0
	for _, ev := range m.events {
		if ev.live {
			n++
		}
	}
	return n
}

// step fires the earliest live event, FIFO on ties, re-arming tickers.
func (m *model) step() (id int, ok bool) {
	var best *modelEvent
	for _, ev := range m.events {
		if !ev.live {
			continue
		}
		if best == nil || ev.at < best.at || (ev.at == best.at && ev.seq < best.seq) {
			best = ev
		}
	}
	if best == nil {
		return 0, false
	}
	m.now = best.at
	best.live = false
	if t := best.tick; t != nil && !t.stopped {
		t.pending = m.schedule(m.now+t.period, t.id, t)
	}
	return best.id, true
}

// handlePair links an engine handle to its model event so staleness can be
// cross-checked: Scheduled() must agree with the model's live flag.
type handlePair struct {
	ev    Event
	model *modelEvent
}

func FuzzEngineVsModel(f *testing.F) {
	f.Add([]byte{0, 5, 3, 3})                            // schedule, step, step-empty
	f.Add([]byte{0, 0, 0, 0, 3, 3, 3})                   // same-instant FIFO ties
	f.Add([]byte{0, 9, 2, 0, 3, 2, 0, 3})                // cancel live, then stale
	f.Add([]byte{4, 7, 3, 3, 3, 5, 0, 3})                // ticker, ticks, stop
	f.Add([]byte{0, 1, 1, 2, 2, 0, 3, 0, 0, 2, 1, 3, 3}) // mixed churn
	f.Fuzz(func(t *testing.T, script []byte) {
		// The per-op invariant sweep is quadratic in script length; cap it
		// so the fuzzer explores many interleavings instead of one long one.
		if len(script) > 512 {
			script = script[:512]
		}
		e := New()
		m := &model{}
		var got, want []int
		var handles []handlePair
		var tickers []*Ticker
		var modelTickers []*modelTicker
		nextID := 0

		record := func(id int) func() { return func() { got = append(got, id) } }

		stepBoth := func() {
			id, ok := m.step()
			if e.Step() != ok {
				t.Fatalf("Step() fired=%v, model says %v (pending %d)", !ok, ok, e.Pending())
			}
			if ok {
				want = append(want, id)
			}
		}

		i := 0
		nextByte := func() byte {
			if i >= len(script) {
				return 0
			}
			b := script[i]
			i++
			return b
		}

		for i < len(script) {
			switch op := nextByte() % 6; op {
			case 0, 1: // Schedule / After with a small delay
				d := time.Duration(nextByte()%64) * time.Millisecond
				id := nextID
				nextID++
				var ev Event
				if op == 0 {
					ev = e.Schedule(e.Now()+d, "s", record(id))
				} else {
					ev = e.After(d, "a", record(id))
				}
				handles = append(handles, handlePair{ev: ev, model: m.schedule(m.now+d, id, nil)})
			case 2: // Cancel a handle, possibly stale
				if len(handles) == 0 {
					continue
				}
				h := handles[int(nextByte())%len(handles)]
				e.Cancel(h.ev)
				h.model.live = false // no-op if already fired/cancelled, same as gen check
			case 3: // Step
				stepBoth()
			case 4: // Every
				p := time.Duration(nextByte()%16+1) * time.Millisecond
				id := nextID
				nextID++
				mt := &modelTicker{period: p, id: id}
				mt.pending = m.schedule(m.now+p, id, mt)
				tickers = append(tickers, e.Every(p, "t", record(id)))
				modelTickers = append(modelTickers, mt)
			case 5: // Ticker.Stop, possibly repeated
				if len(tickers) == 0 {
					continue
				}
				k := int(nextByte()) % len(tickers)
				tickers[k].Stop()
				mt := modelTickers[k]
				mt.stopped = true
				if mt.pending != nil {
					mt.pending.live = false
				}
			}

			// Invariants after every op.
			if e.Now() != m.now {
				t.Fatalf("clock diverged: engine %v, model %v", e.Now(), m.now)
			}
			if e.Pending() != m.pendingCount() {
				t.Fatalf("pending diverged: engine %d, model %d", e.Pending(), m.pendingCount())
			}
			for _, h := range handles {
				if h.ev.Scheduled() != h.model.live {
					t.Fatalf("handle %d: Scheduled()=%v, model live=%v",
						h.model.id, h.ev.Scheduled(), h.model.live)
				}
			}
		}

		// Drain (bounded: live tickers re-arm forever).
		for n := 0; n < 256 && e.Pending() > 0; n++ {
			stepBoth()
		}

		if len(got) != len(want) {
			t.Fatalf("fired %d events, model fired %d\n got %v\nwant %v", len(got), len(want), got, want)
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("fire order diverged at %d:\n got %v\nwant %v", k, got, want)
			}
		}
	})
}
