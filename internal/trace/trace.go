// Package trace provides the small data-wrangling layer the experiment
// harness reports through: named time series, aligned text tables, CSV
// output and summary statistics.
package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Point is one sample of a series.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points, e.g. "core frequency (MHz)" over
// simulated seconds.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// Ys returns the Y values.
func (s *Series) Ys() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Y
	}
	return out
}

// Table is a rectangular result table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row. It panics if the cell count does not match the
// header count — a harness bug that must not produce silently ragged CSVs.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("trace: row has %d cells, table %q has %d columns", len(cells), t.Title, len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row formatting each value with %v for strings and
// the given precision for floats.
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = formatFloat(x)
		case float32:
			cells[i] = formatFloat(float64(x))
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(cells...)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, wd := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", wd))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as RFC 4180-style CSV (quoting cells that
// contain commas, quotes or newlines).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the minimum, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMin returns the index of the minimum, or -1 for an empty slice.
func ArgMin(xs []float64) int {
	best, bi := math.Inf(1), -1
	for i, x := range xs {
		if x < best {
			best, bi = x, i
		}
	}
	return bi
}

// Stddev returns the population standard deviation, or 0 for fewer than
// two points.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// sparkTicks are the eight block characters used by Sparkline.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a compact unicode bar string, scaled to the
// data's min..max range. Empty input gives an empty string; a constant
// series renders at mid height.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := Min(values), Max(values)
	out := make([]rune, len(values))
	if hi == lo {
		for i := range out {
			out[i] = sparkTicks[len(sparkTicks)/2]
		}
		return string(out)
	}
	for i, v := range values {
		idx := int((v - lo) / (hi - lo) * float64(len(sparkTicks)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkTicks) {
			idx = len(sparkTicks) - 1
		}
		out[i] = sparkTicks[idx]
	}
	return string(out)
}

// WriteMarkdown renders the table as a GitHub-flavoured markdown table,
// with the title as a bold caption line.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	b.WriteString("|")
	for range t.Headers {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
