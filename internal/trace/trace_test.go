package trace

import (
	"encoding/csv"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "power"
	s.Add(0, 100)
	s.Add(1, 110)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	ys := s.Ys()
	if ys[0] != 100 || ys[1] != 110 {
		t.Errorf("Ys = %v", ys)
	}
}

func TestTableText(t *testing.T) {
	tab := NewTable("Demo", "workload", "saving %")
	tab.AddRow("kmeans", "8.0")
	tab.AddRow("hotspot", "42.7")
	var b strings.Builder
	if err := tab.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Demo", "workload", "kmeans", "42.7", "--------"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("plain", `with "quote", comma`)
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nplain,\"with \"\"quote\"\", comma\"\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestTableRaggedRowPanics(t *testing.T) {
	tab := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab.AddRow("only-one")
}

func TestAddRowf(t *testing.T) {
	tab := NewTable("", "name", "int", "float", "frac")
	tab.AddRowf("w", 42, 3.0, 0.12345)
	row := tab.Rows[0]
	if row[0] != "w" || row[1] != "42" || row[2] != "3" || row[3] != "0.1235" {
		t.Errorf("row = %v", row)
	}
}

func TestStats(t *testing.T) {
	xs := []float64{2, 4, 6}
	if got := Mean(xs); got != 4 {
		t.Errorf("Mean = %v", got)
	}
	if got := Min(xs); got != 2 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 6 {
		t.Errorf("Max = %v", got)
	}
	if got := ArgMin(xs); got != 0 {
		t.Errorf("ArgMin = %v", got)
	}
	if got := Stddev(xs); math.Abs(got-1.632993) > 1e-5 {
		t.Errorf("Stddev = %v", got)
	}
}

func TestStatsEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if !math.IsInf(Min(nil), 1) {
		t.Error("Min(nil)")
	}
	if !math.IsInf(Max(nil), -1) {
		t.Error("Max(nil)")
	}
	if ArgMin(nil) != -1 {
		t.Error("ArgMin(nil)")
	}
	if Stddev([]float64{1}) != 0 {
		t.Error("Stddev single")
	}
}

// Property: ArgMin indexes the minimum and Mean is between Min and Max.
func TestStatsProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		i := ArgMin(xs)
		if xs[i] != Min(xs) {
			return false
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	got := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	want := "▁▂▃▄▅▆▇█"
	if got != want {
		t.Errorf("ramp sparkline = %q, want %q", got, want)
	}
	flat := Sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Errorf("flat sparkline = %q", flat)
	}
	for _, r := range flat {
		if r != []rune(flat)[0] {
			t.Errorf("flat sparkline not constant: %q", flat)
		}
	}
}

func TestSparklineExtremes(t *testing.T) {
	got := []rune(Sparkline([]float64{-100, 100}))
	if got[0] != '▁' || got[1] != '█' {
		t.Errorf("extremes = %q", string(got))
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := NewTable("Caption", "a", "b")
	tab.AddRow("x", "with|pipe")
	var b strings.Builder
	if err := tab.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"**Caption**", "| a | b |", "|---|---|", "| x | with\\|pipe |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

// TestCSVRoundTripSpecialValues writes a table whose cells carry NaN/Inf
// renderings, quoting hazards (commas, quotes, newlines) and empty cells,
// then parses it back with the standard CSV reader: every cell must survive
// byte-for-byte.
func TestCSVRoundTripSpecialValues(t *testing.T) {
	tab := NewTable("edge cases", "name", "value", "note")
	rows := [][]string{
		{"nan", formatFloat(math.NaN()), "not a number"},
		{"+inf", formatFloat(math.Inf(1)), "overflow"},
		{"-inf", formatFloat(math.Inf(-1)), "underflow"},
		{"comma", "1,234", `contains a , separator`},
		{"quote", `say "hi"`, `a "quoted" word`},
		{"newline", "line1\nline2", "embedded break"},
		{"empty", "", ""},
	}
	for _, r := range rows {
		tab.AddRow(r...)
	}
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v", err)
	}
	if len(got) != len(rows)+1 {
		t.Fatalf("parsed %d records, want %d", len(got), len(rows)+1)
	}
	if !reflect.DeepEqual(got[0], tab.Headers) {
		t.Errorf("header row = %q, want %q", got[0], tab.Headers)
	}
	for i, want := range rows {
		if !reflect.DeepEqual(got[i+1], want) {
			t.Errorf("row %d = %q, want %q", i, got[i+1], want)
		}
	}
}

// TestTextRendersSpecialFloats checks the aligned-text renderer against the
// same NaN/Inf cells: alignment math must not choke on them and the values
// must appear verbatim.
func TestTextRendersSpecialFloats(t *testing.T) {
	tab := NewTable("specials", "k", "v")
	tab.AddRowf("nan", math.NaN())
	tab.AddRowf("inf", math.Inf(1))
	var b strings.Builder
	if err := tab.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"NaN", "+Inf"} {
		if !strings.Contains(out, want) {
			t.Errorf("text table missing %q:\n%s", want, out)
		}
	}
}

// TestEmptyTable renders a table with headers but no rows in every format.
func TestEmptyTable(t *testing.T) {
	tab := NewTable("empty", "a", "b")
	var text, csvOut, md strings.Builder
	if err := tab.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "a") {
		t.Error("empty table text missing headers")
	}
	if err := tab.WriteCSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(csvOut.String())).ReadAll()
	if err != nil || len(recs) != 1 {
		t.Errorf("empty table CSV = %q records (err %v), want the header only", recs, err)
	}
	if err := tab.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(md.String()), "**empty**") && !strings.Contains(md.String(), "| a") {
		t.Errorf("empty table markdown = %q", md.String())
	}
}

// TestEmptySeries pins the empty-input behavior of the series helpers.
func TestEmptySeries(t *testing.T) {
	var s Series
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
	if ys := s.Ys(); len(ys) != 0 {
		t.Errorf("Ys = %v, want empty", ys)
	}
	if got := Sparkline(nil); got != "" {
		t.Errorf("Sparkline(nil) = %q, want empty", got)
	}
}
