// Package bridge connects the repository's two execution planes: it
// characterizes a real kernel (internal/kernels) by measuring it on actual
// worker pools (internal/hetero) and emits a workload.Spec that makes the
// simulated testbed mirror the measured behaviour.
//
// This is the workflow a downstream user of GreenGPU wants: profile your
// own divisible computation once, then explore division policies, DVFS
// settings and what-if hardware configurations in simulation — where a
// thousand runs cost milliseconds — before committing to one on the real
// system.
//
// What can and cannot be measured from portable Go code:
//
//   - The CPU↔accelerator speed ratio (workload.Spec.CPUSlowdown) and the
//     per-iteration execution time ARE measured, by timing a few
//     iterations pinned entirely to each pool.
//   - GPU core/memory utilizations are NOT observable from Go (they come
//     from hardware counters on a real system), so the caller supplies the
//     utilization targets — or accepts the defaults of a medium-core,
//     low-memory kernel, the most common class in Table II.
package bridge

import (
	"fmt"
	"time"

	"greengpu/internal/hetero"
	"greengpu/internal/kernels"
	"greengpu/internal/workload"
)

// Options tunes a characterization run.
type Options struct {
	// Name labels the resulting Spec. Empty uses the kernel's name.
	Name string

	// MeasureIterations is how many iterations to time on each pool
	// (default 3). More iterations smooth scheduler jitter.
	MeasureIterations int

	// TimeScale multiplies measured wall seconds into simulated
	// IterationSeconds (default 1000: a 20 ms real iteration becomes a
	// 20 s simulated one, comfortably above the DVFS interval). The
	// scale cancels out of every ratio the framework optimizes.
	TimeScale float64

	// CoreUtil and MemUtil are the GPU-side utilization targets for the
	// simulated profile (defaults 0.60 and 0.35 — Table II's
	// medium-core/low-memory class).
	CoreUtil, MemUtil float64

	// SpecIterations is the simulated run length (default 10).
	SpecIterations int

	// TransferMB and RepartitionMB parameterize the simulated bus
	// traffic (defaults 100 and 100).
	TransferMB, RepartitionMB float64
}

func (o *Options) setDefaults(k kernels.Kernel) {
	if o.Name == "" {
		o.Name = k.Name()
	}
	if o.MeasureIterations <= 0 {
		o.MeasureIterations = 3
	}
	if o.TimeScale <= 0 {
		o.TimeScale = 1000
	}
	if o.CoreUtil == 0 && o.MemUtil == 0 {
		o.CoreUtil, o.MemUtil = 0.60, 0.35
	}
	if o.SpecIterations <= 0 {
		o.SpecIterations = 10
	}
	if o.TransferMB <= 0 {
		o.TransferMB = 100
	}
	if o.RepartitionMB <= 0 {
		o.RepartitionMB = 100
	}
}

// Measurement reports what Characterize observed.
type Measurement struct {
	// AccIteration and CPUIteration are mean measured wall times for one
	// full iteration pinned to each pool.
	AccIteration time.Duration
	CPUIteration time.Duration
	// Slowdown is CPUIteration / AccIteration.
	Slowdown float64
	// Spec is the derived simulated-workload characterization.
	Spec workload.Spec
}

// Characterize measures a kernel on the two pools and derives a simulated
// workload Spec. mk must return a fresh kernel instance per call (kernel
// state is consumed by measurement); the two instances must be built from
// the same parameters.
func Characterize(mk func() kernels.Kernel, cpu, acc *hetero.Pool, opts Options) (*Measurement, error) {
	if mk == nil {
		return nil, fmt.Errorf("bridge: nil kernel factory")
	}
	for _, p := range []*hetero.Pool{cpu, acc} {
		if p == nil {
			return nil, fmt.Errorf("bridge: nil pool")
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	probe := mk()
	if probe == nil {
		return nil, fmt.Errorf("bridge: kernel factory returned nil")
	}
	opts.setDefaults(probe)

	accT, err := measure(mk(), acc, opts.MeasureIterations)
	if err != nil {
		return nil, err
	}
	cpuT, err := measure(mk(), cpu, opts.MeasureIterations)
	if err != nil {
		return nil, err
	}
	if accT <= 0 || cpuT <= 0 {
		return nil, fmt.Errorf("bridge: degenerate measurement (acc %v, cpu %v)", accT, cpuT)
	}

	m := &Measurement{
		AccIteration: accT,
		CPUIteration: cpuT,
		Slowdown:     float64(cpuT) / float64(accT),
	}
	m.Spec = workload.Spec{
		Name:             opts.Name,
		Description:      fmt.Sprintf("characterized from real kernel %q", probe.Name()),
		IterationSeconds: accT.Seconds() * opts.TimeScale,
		Iterations:       opts.SpecIterations,
		CPUSlowdown:      m.Slowdown,
		TransferMB:       opts.TransferMB,
		RepartitionMB:    opts.RepartitionMB,
		Phases: []workload.PhaseTarget{{
			Label:    "measured",
			Fraction: 1,
			CoreUtil: opts.CoreUtil,
			MemUtil:  opts.MemUtil,
		}},
	}
	if err := m.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("bridge: derived spec invalid: %w", err)
	}
	return m, nil
}

// measure times n iterations of the kernel pinned entirely to one pool and
// returns the mean per-iteration wall time.
func measure(k kernels.Kernel, pool *hetero.Pool, n int) (time.Duration, error) {
	if k == nil {
		return 0, fmt.Errorf("bridge: kernel factory returned nil")
	}
	var total time.Duration
	measured := 0
	for i := 0; i < n; i++ {
		items := k.Items()
		t0 := time.Now()
		partials := pool.Process(k, 0, items)
		total += time.Since(t0)
		measured++
		if !k.EndIteration(partials) {
			break
		}
	}
	if measured == 0 {
		return 0, fmt.Errorf("bridge: kernel yielded no iterations")
	}
	return total / time.Duration(measured), nil
}
