package bridge

import (
	"math"
	"testing"
	"time"

	"greengpu/internal/core"
	"greengpu/internal/hetero"
	"greengpu/internal/kernels"
	"greengpu/internal/testbed"
	"greengpu/internal/workload"
)

// pools with a delay-dominated 4:1 speed asymmetry, stable across machines.
func testPools() (cpu, acc *hetero.Pool) {
	return &hetero.Pool{Name: "cpu", Workers: 1, ItemDelay: 800 * time.Microsecond},
		&hetero.Pool{Name: "acc", Workers: 1, ItemDelay: 200 * time.Microsecond}
}

func hotspotFactory() func() kernels.Kernel {
	return func() kernels.Kernel { return kernels.NewHotspot(48, 48, 50, 7) }
}

func TestCharacterizeMeasuresSlowdown(t *testing.T) {
	cpu, acc := testPools()
	m, err := Characterize(hotspotFactory(), cpu, acc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Delay-dominated pools: slowdown must be close to the 4:1 ratio.
	if m.Slowdown < 2.5 || m.Slowdown > 5.5 {
		t.Errorf("measured slowdown %.2f, want ~4", m.Slowdown)
	}
	if m.AccIteration <= 0 || m.CPUIteration <= 0 {
		t.Error("degenerate iteration times")
	}
	if err := m.Spec.Validate(); err != nil {
		t.Errorf("derived spec invalid: %v", err)
	}
	if m.Spec.Name != "hotspot" {
		t.Errorf("spec name = %q", m.Spec.Name)
	}
}

func TestCharacterizedSpecRunsOnTestbed(t *testing.T) {
	// The end-to-end loop: measure a real kernel, calibrate the derived
	// spec against the simulated testbed, run the division tier there,
	// and check the simulated convergence matches the real balance point
	// 1/(1+S).
	cpu, acc := testPools()
	m, err := Characterize(hotspotFactory(), cpu, acc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	profile, err := workload.Calibrate(m.Spec, testbed.GeForce8800GTX(), testbed.PhenomIIX2())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(core.Division)
	cfg.Iterations = 15
	res, err := core.Run(testbed.New(), profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantBalance := 1 / (1 + m.Slowdown)
	if math.Abs(res.FinalRatio-wantBalance) > 0.08 {
		t.Errorf("simulated division converged to %.2f, measured balance point %.2f", res.FinalRatio, wantBalance)
	}

	// And the REAL executor must converge near the same point.
	x := hetero.New(hotspotFactory()(), cpu, acc, hetero.Config{})
	rep := x.Run()
	if math.Abs(rep.FinalRatio-res.FinalRatio) > 0.11 {
		t.Errorf("real executor converged to %.2f, simulation to %.2f — planes diverge", rep.FinalRatio, res.FinalRatio)
	}
}

func TestCharacterizeDefaults(t *testing.T) {
	cpu, acc := testPools()
	m, err := Characterize(hotspotFactory(), cpu, acc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Spec
	if s.Iterations != 10 || s.TransferMB != 100 || s.RepartitionMB != 100 {
		t.Errorf("defaults not applied: %+v", s)
	}
	ph := s.Phases[0]
	if ph.CoreUtil != 0.60 || ph.MemUtil != 0.35 {
		t.Errorf("default utilizations = (%v, %v)", ph.CoreUtil, ph.MemUtil)
	}
	// TimeScale 1000: simulated iteration lasts ~1000x the measured one.
	wantSec := m.AccIteration.Seconds() * 1000
	if math.Abs(s.IterationSeconds-wantSec) > 1e-9 {
		t.Errorf("IterationSeconds = %v, want %v", s.IterationSeconds, wantSec)
	}
}

func TestCharacterizeCustomOptions(t *testing.T) {
	cpu, acc := testPools()
	m, err := Characterize(hotspotFactory(), cpu, acc, Options{
		Name:              "my-stencil",
		CoreUtil:          0.8,
		MemUtil:           0.5,
		SpecIterations:    7,
		MeasureIterations: 2,
		TimeScale:         500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Spec.Name != "my-stencil" || m.Spec.Iterations != 7 {
		t.Errorf("options not applied: %+v", m.Spec)
	}
	if m.Spec.Phases[0].CoreUtil != 0.8 {
		t.Errorf("utilization target not applied")
	}
}

func TestCharacterizeErrors(t *testing.T) {
	cpu, acc := testPools()
	if _, err := Characterize(nil, cpu, acc, Options{}); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := Characterize(hotspotFactory(), nil, acc, Options{}); err == nil {
		t.Error("nil pool accepted")
	}
	if _, err := Characterize(func() kernels.Kernel { return nil }, cpu, acc, Options{}); err == nil {
		t.Error("nil kernel accepted")
	}
	bad := &hetero.Pool{Name: "bad", Workers: 0}
	if _, err := Characterize(hotspotFactory(), bad, acc, Options{}); err == nil {
		t.Error("invalid pool accepted")
	}
}

func TestCharacterizeInfeasibleUtilization(t *testing.T) {
	cpu, acc := testPools()
	_, err := Characterize(hotspotFactory(), cpu, acc, Options{
		CoreUtil: 0.99, MemUtil: 0.98, // max + γ·min > 1 downstream
	})
	if err != nil {
		t.Fatal(err) // the spec itself is valid; calibration rejects it
	}
	// Calibration against the default device must reject it.
	m, _ := Characterize(hotspotFactory(), cpu, acc, Options{CoreUtil: 0.99, MemUtil: 0.98})
	if _, err := workload.Calibrate(m.Spec, testbed.GeForce8800GTX(), testbed.PhenomIIX2()); err == nil {
		t.Error("infeasible utilization calibrated")
	}
}
