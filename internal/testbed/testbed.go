// Package testbed assembles the simulated equivalent of the GreenGPU
// hardware testbed (paper §VI, Fig. 4): a Dell Optiplex 580-class desktop
// with an Nvidia GeForce 8800 GTX GPU and a dual-core AMD Phenom II X2
// processor, instrumented by two Wattsup Pro-style power meters — meter 1 on
// the CPU side of the box (motherboard, disk, main memory, processor) and
// meter 2 on the dedicated ATX supply feeding the GPU card.
//
// All constants are calibrated to public figures for the parts: the
// 8800 GTX's 128 stream processors, 576 MHz peak core clock, 900 MHz GDDR3
// clock and 86.4 GB/s rated bandwidth (the paper's exact memory ladder
// 900/820/740/660/580/500 MHz and a matching equal-distance core ladder
// whose lowest level reproduces the paper's quoted 410 MHz operating
// point); the Phenom II X2's 2.8/2.1/1.3/0.8 GHz P-states; and wall-power
// envelopes in the ranges the two meters would report for these parts.
// Absolute watts are model parameters — the experiments reproduce shapes
// and orderings, not the authors' exact instrument readings.
package testbed

import (
	"time"

	"greengpu/internal/bus"
	"greengpu/internal/cpusim"
	"greengpu/internal/gpusim"
	"greengpu/internal/power"
	"greengpu/internal/sim"
	"greengpu/internal/units"
)

// GeForce8800GTX returns the GPU configuration of the testbed card.
func GeForce8800GTX() gpusim.Config {
	return gpusim.Config{
		Name:     "GeForce 8800 GTX",
		SMs:      16,
		SPsPerSM: 8,
		IPC:      2, // MAD per SP per clock
		CoreLevels: []units.Frequency{
			411 * units.Megahertz, // the paper's quoted 410 MHz level
			444 * units.Megahertz,
			477 * units.Megahertz,
			510 * units.Megahertz,
			543 * units.Megahertz,
			576 * units.Megahertz,
		},
		MemLevels: []units.Frequency{
			500 * units.Megahertz,
			580 * units.Megahertz,
			660 * units.Megahertz,
			740 * units.Megahertz,
			820 * units.Megahertz,
			900 * units.Megahertz,
		},
		// 384-bit GDDR3, double-pumped: 96 B per memory-clock cycle,
		// 86.4 GB/s at 900 MHz.
		BytesPerMemCycle: 96,
		OverlapGamma:     0.15,
		// The split reflects the G80 generation's power profile as the
		// wall meter sees it: a large frequency-independent board floor
		// plus clock-tree power that scales with frequency even when
		// idle (the card idles hot), and comparatively modest
		// utilization-proportional switching terms. This is what makes
		// Fig. 6b's "dynamic energy" (runtime minus idle) a small slice
		// of total energy, as the paper reports.
		Power: gpusim.PowerParams{
			Board:         42, // ATX supply losses, fans, board logic
			CoreClockTree: 38,
			CoreDynamic:   28,
			MemClockTree:  24,
			MemDynamic:    16,
		},
	}
}

// GeForce8800GTXDense returns the testbed card with its two frequency
// ladders re-quantized to nc core and nm memory levels, linearly
// interpolated (at integer-MHz resolution) across the stock spans
// 411–576 MHz and 500–900 MHz. The power and timing models are per-Hz,
// so the dense card is physically the same device with a finer DVFS
// quantization — the synthetic large ladder the predictor-validation
// study brute-forces. nc and nm must be at least 2 (the stock endpoints
// must survive); the first and last levels equal the stock ladder's.
func GeForce8800GTXDense(nc, nm int) gpusim.Config {
	if nc < 2 || nm < 2 {
		panic("testbed: GeForce8800GTXDense needs at least 2 levels per ladder")
	}
	cfg := GeForce8800GTX()
	cfg.Name = "GeForce 8800 GTX (dense ladder)"
	cfg.CoreLevels = interpolateMHz(cfg.CoreLevels, nc)
	cfg.MemLevels = interpolateMHz(cfg.MemLevels, nm)
	return cfg
}

// interpolateMHz spreads n levels evenly (rounded to whole MHz) between
// the first and last entries of a stock ladder.
func interpolateMHz(stock []units.Frequency, n int) []units.Frequency {
	lo := float64(stock[0]) / float64(units.Megahertz)
	hi := float64(stock[len(stock)-1]) / float64(units.Megahertz)
	out := make([]units.Frequency, n)
	for i := range out {
		mhz := lo + (hi-lo)*float64(i)/float64(n-1)
		out[i] = units.Frequency(int(mhz+0.5)) * units.Megahertz
	}
	return out
}

// GTX280 returns a GTX 280-class GPU configuration: the next GeForce
// generation after the testbed card (30 SMs × 8 SPs, 602 MHz peak core,
// 512-bit GDDR3 at 1100 MHz ≈ 140.8 GB/s) with a proportionally heavier
// power envelope (~236 W TDP class). Used by the portability extension
// study to show the GreenGPU algorithms transfer across devices.
func GTX280() gpusim.Config {
	return gpusim.Config{
		Name:     "GTX 280-class",
		SMs:      30,
		SPsPerSM: 8,
		IPC:      2,
		CoreLevels: []units.Frequency{
			402 * units.Megahertz,
			442 * units.Megahertz,
			482 * units.Megahertz,
			522 * units.Megahertz,
			562 * units.Megahertz,
			602 * units.Megahertz,
		},
		MemLevels: []units.Frequency{
			600 * units.Megahertz,
			700 * units.Megahertz,
			800 * units.Megahertz,
			900 * units.Megahertz,
			1000 * units.Megahertz,
			1100 * units.Megahertz,
		},
		BytesPerMemCycle: 128, // 512-bit GDDR3, double-pumped
		OverlapGamma:     0.15,
		Power: gpusim.PowerParams{
			Board:         55,
			CoreClockTree: 50,
			CoreDynamic:   45,
			MemClockTree:  32,
			MemDynamic:    28,
		},
	}
}

// PhenomIIX2 returns the CPU configuration of the testbed processor.
func PhenomIIX2() cpusim.Config {
	return cpusim.Config{
		Name:  "AMD Phenom II X2",
		Cores: 2,
		IPC:   3,
		PStates: []cpusim.PState{
			{Frequency: 800 * units.Megahertz, Voltage: 1.000},
			{Frequency: 1300 * units.Megahertz, Voltage: 1.075},
			{Frequency: 2100 * units.Megahertz, Voltage: 1.200},
			{Frequency: 2800 * units.Megahertz, Voltage: 1.400},
		},
		// DynPerCore is the per-core wall-power delta of full load as
		// meter 1 sees it (silicon switching plus VRM and PSU
		// conversion losses). Note a recorded deviation: with this
		// envelope the energy-optimal static division coincides with
		// the time-balance point, whereas the paper's testbed showed
		// it slightly below (10-15% vs the 20% balance for kmeans) —
		// that gap needs a marginal CPU power above ~57 W/core, which
		// would be outside the Phenom II X2's plausible wall envelope
		// and would suppress the division savings everywhere else.
		// See EXPERIMENTS.md.
		Power: cpusim.PowerParams{
			Platform:      45, // motherboard, DRAM, disk behind meter 1
			StaticPerCore: 6,
			DynPerCore:    28,
		},
	}
}

// PhenomIIX4 returns a quad-core variant of the testbed processor (same
// P-states and per-core power envelope, twice the cores). Used by the
// CPU-capability extension study: a faster CPU shifts the balanced
// division point toward larger CPU shares.
func PhenomIIX4() cpusim.Config {
	cfg := PhenomIIX2()
	cfg.Name = "AMD Phenom II X4"
	cfg.Cores = 4
	return cfg
}

// PCIe returns the host↔device interconnect configuration (PCIe 1.1 x16
// era: ~3.2 GB/s sustained, sub-millisecond setup per DMA).
func PCIe() bus.Config {
	return bus.Config{
		Name:      "pcie-x16",
		Bandwidth: units.Bandwidth(3.2e9),
		Latency:   500 * time.Microsecond,
	}
}

// Machine is the assembled testbed.
type Machine struct {
	Engine *sim.Engine
	GPU    *gpusim.GPU
	CPU    *cpusim.CPU
	Bus    *bus.Bus

	// MeterCPU is meter 1 (CPU side of the box); MeterGPU is meter 2
	// (the GPU card's dedicated ATX supply). Both sample at 1 Hz with
	// 0.1 W resolution, like the Wattsup Pro. They are created stopped.
	MeterCPU *power.Meter
	MeterGPU *power.Meter
}

// New assembles the default testbed on a fresh simulation engine.
func New() *Machine {
	return NewFrom(GeForce8800GTX(), PhenomIIX2(), PCIe())
}

// NewFrom assembles a testbed from explicit device configurations.
func NewFrom(gpuCfg gpusim.Config, cpuCfg cpusim.Config, busCfg bus.Config) *Machine {
	e := sim.New()
	m := &Machine{
		Engine: e,
		GPU:    gpusim.New(e, gpuCfg),
		CPU:    cpusim.New(e, cpuCfg),
		Bus:    bus.New(e, busCfg),
	}
	m.MeterCPU = power.NewMeter(e, power.DefaultConfig("meter1-cpu-side"), func() units.Power {
		return m.CPU.InstantPower()
	})
	m.MeterGPU = power.NewMeter(e, power.DefaultConfig("meter2-gpu-card"), func() units.Power {
		return m.GPU.InstantPower()
	})
	return m
}

// StartMeters begins sampling on both meters.
func (m *Machine) StartMeters() {
	m.MeterCPU.Start()
	m.MeterGPU.Start()
}

// StopMeters halts sampling on both meters.
func (m *Machine) StopMeters() {
	m.MeterCPU.Stop()
	m.MeterGPU.Stop()
}

// SystemPower returns the instantaneous whole-system draw (both meters).
func (m *Machine) SystemPower() units.Power {
	return m.GPU.InstantPower() + m.CPU.InstantPower()
}

// EnergySnapshot captures the exact (analytic) cumulative energy of both
// sides at the current instant.
type EnergySnapshot struct {
	At  time.Duration
	GPU units.Energy
	CPU units.Energy
}

// Total returns the whole-system cumulative energy.
func (s EnergySnapshot) Total() units.Energy { return s.GPU + s.CPU }

// Snapshot captures cumulative energies now.
func (m *Machine) Snapshot() EnergySnapshot {
	return EnergySnapshot{
		At:  m.Engine.Now(),
		GPU: m.GPU.Counters().Energy,
		CPU: m.CPU.Counters().Energy,
	}
}

// EnergySince returns the exact energy both sides consumed since snapshot s.
func (m *Machine) EnergySince(s EnergySnapshot) units.Energy {
	cur := m.Snapshot()
	return cur.Total() - s.Total()
}

// IdlePower returns the whole-system draw with both devices idle at their
// current frequency levels.
func (m *Machine) IdlePower() units.Power {
	// The GPU contributes clock-tree and board power when idle; the CPU
	// contributes platform and leakage. Both are exactly what
	// InstantPower reports when no work is queued, but this helper is
	// meaningful even mid-run: it recomputes power at zero utilization.
	gpu := m.GPU
	cpu := m.CPU
	gcfg := gpu.Config()
	fcR := float64(gpu.CoreFrequency()) / float64(gcfg.CoreLevels[len(gcfg.CoreLevels)-1])
	fmR := float64(gpu.MemFrequency()) / float64(gcfg.MemLevels[len(gcfg.MemLevels)-1])
	gp := gcfg.Power.Board +
		units.Power(fcR)*gcfg.Power.CoreClockTree +
		units.Power(fmR)*gcfg.Power.MemClockTree
	return gp + cpu.IdlePowerAt(cpu.Level())
}
