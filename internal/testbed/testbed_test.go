package testbed

import (
	"math"
	"testing"
	"time"

	"greengpu/internal/cpusim"
	"greengpu/internal/gpusim"
	"greengpu/internal/units"
)

func TestPresetConfigsValid(t *testing.T) {
	g := GeForce8800GTX()
	if err := g.Validate(); err != nil {
		t.Errorf("GPU preset invalid: %v", err)
	}
	c := PhenomIIX2()
	if err := c.Validate(); err != nil {
		t.Errorf("CPU preset invalid: %v", err)
	}
	b := PCIe()
	if err := b.Validate(); err != nil {
		t.Errorf("bus preset invalid: %v", err)
	}
}

func TestGPUPresetMatchesPaper(t *testing.T) {
	g := GeForce8800GTX()
	if n := len(g.CoreLevels); n != 6 {
		t.Errorf("core levels = %d, want 6", n)
	}
	if n := len(g.MemLevels); n != 6 {
		t.Errorf("mem levels = %d, want 6", n)
	}
	// Paper-exact memory ladder.
	wantMem := []float64{500, 580, 660, 740, 820, 900}
	for i, f := range g.MemLevels {
		if f.MHz() != wantMem[i] {
			t.Errorf("mem level %d = %v MHz, want %v", i, f.MHz(), wantMem[i])
		}
	}
	// Peak core clock 576 MHz; lowest near the quoted 410 MHz.
	if got := g.CoreLevels[5].MHz(); got != 576 {
		t.Errorf("peak core = %v MHz, want 576", got)
	}
	if got := g.CoreLevels[0].MHz(); math.Abs(got-410) > 2 {
		t.Errorf("lowest core = %v MHz, want ~410", got)
	}
	// Equal-distance core ladder.
	step := g.CoreLevels[1] - g.CoreLevels[0]
	for i := 2; i < 6; i++ {
		if g.CoreLevels[i]-g.CoreLevels[i-1] != step {
			t.Error("core ladder not equal-distance")
		}
	}
	// Rated bandwidth 86.4 GB/s at 900 MHz.
	bw := g.BytesPerMemCycle * float64(g.MemLevels[5])
	if math.Abs(bw-86.4e9) > 1e6 {
		t.Errorf("peak bandwidth = %v, want 86.4e9", bw)
	}
	if spCount := g.SMs * g.SPsPerSM; spCount != 128 {
		t.Errorf("SP count = %d, want 128", spCount)
	}
}

// TestDenseLadderInterpolation pins the synthetic large-ladder card: stock
// endpoints preserved, strictly increasing integer-MHz levels, valid config.
func TestDenseLadderInterpolation(t *testing.T) {
	g := GeForce8800GTXDense(24, 24)
	if err := g.Validate(); err != nil {
		t.Fatalf("dense preset invalid: %v", err)
	}
	if len(g.CoreLevels) != 24 || len(g.MemLevels) != 24 {
		t.Fatalf("ladder sizes = %dx%d, want 24x24", len(g.CoreLevels), len(g.MemLevels))
	}
	stock := GeForce8800GTX()
	for _, tc := range []struct {
		name     string
		got, ref []units.Frequency
	}{
		{"core", g.CoreLevels, stock.CoreLevels},
		{"mem", g.MemLevels, stock.MemLevels},
	} {
		if tc.got[0] != tc.ref[0] || tc.got[len(tc.got)-1] != tc.ref[len(tc.ref)-1] {
			t.Errorf("%s endpoints %v..%v, want stock %v..%v",
				tc.name, tc.got[0], tc.got[len(tc.got)-1], tc.ref[0], tc.ref[len(tc.ref)-1])
		}
		for i := 1; i < len(tc.got); i++ {
			if tc.got[i] <= tc.got[i-1] {
				t.Errorf("%s ladder not strictly increasing at %d: %v <= %v",
					tc.name, i, tc.got[i], tc.got[i-1])
			}
		}
		for _, f := range tc.got {
			if mhz := f.MHz(); mhz != math.Trunc(mhz) {
				t.Errorf("%s level %v not integer MHz", tc.name, f)
			}
		}
	}
	// nc=nm=2 degenerates to the two stock endpoints.
	two := GeForce8800GTXDense(2, 2)
	if two.CoreLevels[0] != stock.CoreLevels[0] || two.CoreLevels[1] != stock.CoreLevels[5] {
		t.Errorf("2-level core ladder = %v", two.CoreLevels)
	}
	// Fewer than 2 levels must panic.
	defer func() {
		if recover() == nil {
			t.Error("GeForce8800GTXDense(1, 6) did not panic")
		}
	}()
	GeForce8800GTXDense(1, 6)
}

func TestCPUPresetMatchesPaper(t *testing.T) {
	c := PhenomIIX2()
	if c.Cores != 2 {
		t.Errorf("cores = %d, want 2 (dual-core Phenom II X2)", c.Cores)
	}
	want := []float64{800, 1300, 2100, 2800}
	if len(c.PStates) != 4 {
		t.Fatalf("P-states = %d, want 4", len(c.PStates))
	}
	for i, ps := range c.PStates {
		if ps.Frequency.MHz() != want[i] {
			t.Errorf("P-state %d = %v MHz, want %v", i, ps.Frequency.MHz(), want[i])
		}
	}
}

func TestPowerEnvelopes(t *testing.T) {
	m := New()
	// Idle at boot (lowest clocks): both sides well under load power.
	idleGPU := m.GPU.InstantPower()
	idleCPU := m.CPU.InstantPower()
	if idleGPU < 45 || idleGPU > 95 {
		t.Errorf("GPU idle power %v outside plausible 45-95 W band", idleGPU)
	}
	if idleCPU < 40 || idleCPU > 70 {
		t.Errorf("CPU idle power %v outside plausible 40-70 W band", idleCPU)
	}
	// Fully busy at peak clocks.
	m.GPU.SetLevels(5, 5)
	m.CPU.SetLevel(3)
	m.GPU.Submit(&gpusim.Kernel{Name: "burn", Phases: []gpusim.Phase{{Ops: 1e12, Bytes: 1e11}}})
	m.CPU.Run(&cpusim.Job{Name: "burn", Ops: 1e12})
	m.Engine.RunUntil(100 * time.Millisecond)
	busyGPU := m.GPU.InstantPower()
	busyCPU := m.CPU.InstantPower()
	if busyGPU < 120 || busyGPU > 200 {
		t.Errorf("GPU busy power %v outside plausible 120-200 W band", busyGPU)
	}
	if busyCPU < 90 || busyCPU > 140 {
		t.Errorf("CPU busy power %v outside plausible 90-140 W band", busyCPU)
	}
	if busyGPU <= idleGPU || busyCPU <= idleCPU {
		t.Error("busy power must exceed idle power")
	}
}

func TestMetersObserveDevices(t *testing.T) {
	m := New()
	m.StartMeters()
	m.GPU.Submit(&gpusim.Kernel{Name: "k", Phases: []gpusim.Phase{{Ops: 576e9}}}) // ~few seconds
	m.Engine.RunUntil(5 * time.Second)
	m.StopMeters()
	if len(m.MeterGPU.Samples()) != 6 {
		t.Errorf("GPU meter samples = %d, want 6", len(m.MeterGPU.Samples()))
	}
	if m.MeterGPU.AveragePower() <= 0 || m.MeterCPU.AveragePower() <= 0 {
		t.Error("meters recorded no power")
	}
	// Meter energy should approximate the exact integral.
	exact := m.GPU.Counters().Energy
	sampled := m.MeterGPU.Energy()
	if rel := math.Abs(float64(sampled-exact)) / float64(exact); rel > 0.05 {
		t.Errorf("sampled energy off by %.1f%%", rel*100)
	}
}

func TestSnapshotAndEnergySince(t *testing.T) {
	m := New()
	s0 := m.Snapshot()
	m.Engine.RunUntil(10 * time.Second)
	e := m.EnergySince(s0)
	// 10 s of idle: total idle power ~ (GPU idle + CPU idle).
	wantP := m.GPU.InstantPower() + m.CPU.InstantPower()
	want := wantP.Over(10 * time.Second)
	if math.Abs(float64(e-want)) > 1e-6 {
		t.Errorf("EnergySince = %v, want %v", e, want)
	}
	s1 := m.Snapshot()
	if s1.At != 10*time.Second {
		t.Errorf("snapshot At = %v", s1.At)
	}
	if s1.Total() != s1.GPU+s1.CPU {
		t.Error("Total() mismatch")
	}
}

func TestSystemPower(t *testing.T) {
	m := New()
	if got := m.SystemPower(); got != m.GPU.InstantPower()+m.CPU.InstantPower() {
		t.Errorf("SystemPower = %v", got)
	}
}

func TestIdlePowerTracksLevels(t *testing.T) {
	m := New()
	low := m.IdlePower()
	m.GPU.SetLevels(5, 5)
	m.CPU.SetLevel(3)
	high := m.IdlePower()
	if low >= high {
		t.Errorf("idle power at lowest (%v) should be below peak (%v)", low, high)
	}
	// IdlePower must equal InstantPower when nothing runs.
	if got := m.IdlePower(); math.Abs(float64(got-m.SystemPower())) > 1e-9 {
		t.Errorf("IdlePower %v != idle SystemPower %v", got, m.SystemPower())
	}
}

func TestGPUEnergyScalingShape(t *testing.T) {
	// Core-bound work at reduced memory frequency must use less energy
	// with (near) unchanged execution time — the Fig. 1a/1b mechanism.
	run := func(memLevel int) (time.Duration, units.Energy) {
		m := New()
		m.GPU.SetLevels(5, memLevel)
		before := m.GPU.Counters()
		k := &gpusim.Kernel{Name: "core-bound", Phases: []gpusim.Phase{{Ops: 2e12, Bytes: 5e9}}}
		m.GPU.Submit(k)
		m.Engine.Run()
		w := m.GPU.Counters().Since(before)
		return k.ExecTime(), w.Energy
	}
	tPeak, ePeak := run(5)
	tLow, eLow := run(0)
	slowdown := float64(tLow-tPeak) / float64(tPeak)
	if slowdown > 0.05 {
		t.Errorf("core-bound kernel slowed %.1f%% by memory throttle, want < 5%%", slowdown*100)
	}
	if eLow >= ePeak {
		t.Errorf("memory throttle saved no energy: %v -> %v", ePeak, eLow)
	}
}
