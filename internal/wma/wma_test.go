package wma

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, c := range []struct {
		n    int
		beta float64
	}{
		{0, 0.2}, {-1, 0.2}, {5, 0}, {5, 1}, {5, -0.3}, {5, 1.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %v) did not panic", c.n, c.beta)
				}
			}()
			New(c.n, c.beta)
		}()
	}
}

func TestInitialState(t *testing.T) {
	tab := New(4, 0.2)
	if tab.Len() != 4 {
		t.Errorf("Len = %d", tab.Len())
	}
	if tab.Beta() != 0.2 {
		t.Errorf("Beta = %v", tab.Beta())
	}
	for i := 0; i < 4; i++ {
		if tab.Weight(i) != 1 {
			t.Errorf("initial Weight(%d) = %v, want 1", i, tab.Weight(i))
		}
	}
	if tab.Best() != 0 {
		t.Errorf("initial Best = %d, want 0 (lowest-index tie-break)", tab.Best())
	}
	if tab.Rounds() != 0 {
		t.Errorf("Rounds = %d", tab.Rounds())
	}
}

func TestUpdateDiscountsLosers(t *testing.T) {
	tab := New(3, 0.2)
	// Expert 1 has zero loss; others lose maximally.
	tab.Update(func(i int) float64 {
		if i == 1 {
			return 0
		}
		return 1
	})
	if tab.Best() != 1 {
		t.Errorf("Best = %d, want 1", tab.Best())
	}
	if w := tab.Weight(1); w != 1 {
		t.Errorf("winner weight = %v, want 1", w)
	}
	// Losers: 1 - 0.8*1 = 0.2.
	if w := tab.Weight(0); math.Abs(w-0.2) > 1e-12 {
		t.Errorf("loser weight = %v, want 0.2", w)
	}
	if tab.Rounds() != 1 {
		t.Errorf("Rounds = %d", tab.Rounds())
	}
}

func TestBestSwitchesWithEvidence(t *testing.T) {
	tab := New(2, 0.2)
	// Round 1-3: expert 0 better.
	for i := 0; i < 3; i++ {
		tab.Update(func(i int) float64 { return []float64{0.1, 0.5}[i] })
	}
	if tab.Best() != 0 {
		t.Fatalf("Best = %d, want 0", tab.Best())
	}
	// Workload change: expert 1 better. Needs enough rounds to overtake.
	for i := 0; i < 10; i++ {
		tab.Update(func(i int) float64 { return []float64{0.5, 0.1}[i] })
	}
	if tab.Best() != 1 {
		t.Errorf("Best = %d after regime change, want 1", tab.Best())
	}
}

func TestLossOutOfRangePanics(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		bad := bad
		tab := New(2, 0.2)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("loss %v did not panic", bad)
				}
			}()
			tab.Update(func(int) float64 { return bad })
		}()
	}
}

func TestReset(t *testing.T) {
	tab := New(2, 0.2)
	tab.Update(func(i int) float64 { return float64(i) })
	tab.Reset()
	if tab.Weight(1) != 1 || tab.Rounds() != 0 {
		t.Errorf("Reset did not restore state")
	}
}

func TestWeightsCopy(t *testing.T) {
	tab := New(2, 0.2)
	w := tab.Weights()
	w[0] = 42
	if tab.Weight(0) == 42 {
		t.Error("Weights() aliases internal storage")
	}
}

func TestAutoRenormalization(t *testing.T) {
	tab := New(2, 0.2)
	// Drive both experts with heavy loss long enough to underflow without
	// renormalization: 0.2^k underflows around k=450.
	for i := 0; i < 5000; i++ {
		tab.Update(func(i int) float64 { return []float64{1, 0.9}[i] })
	}
	if tab.Best() != 1 {
		t.Errorf("Best = %d, want 1", tab.Best())
	}
	if w := tab.Weight(1); w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
		t.Errorf("weight degenerated to %v", w)
	}
}

func TestRenormalizePreservesArgmaxAndRatios(t *testing.T) {
	tab := New(3, 0.2)
	tab.Update(func(i int) float64 { return []float64{0.3, 0.1, 0.9}[i] })
	ratioBefore := tab.Weight(0) / tab.Weight(1)
	bestBefore := tab.Best()
	tab.Renormalize()
	if tab.Best() != bestBefore {
		t.Errorf("argmax changed: %d -> %d", bestBefore, tab.Best())
	}
	ratioAfter := tab.Weight(0) / tab.Weight(1)
	if math.Abs(ratioBefore-ratioAfter) > 1e-12 {
		t.Errorf("ratio changed: %v -> %v", ratioBefore, ratioAfter)
	}
	if m := tab.Weight(tab.Best()); math.Abs(m-1) > 1e-12 {
		t.Errorf("max weight after renormalize = %v, want 1", m)
	}
}

func TestRenormalizeAllZeroResets(t *testing.T) {
	tab := New(2, 0.5)
	// Force exact zeros: loss 1 with beta 0.5 gives factor 0.5, never zero;
	// so zero out via the panic-free path: repeated heavy decay then manual
	// weights — instead construct the corner with loss=1, beta→ (1-(1-β)) >0.
	// The all-zero case can only arise from float underflow of *all* weights
	// between renorm checks; emulate by calling Renormalize on a fresh table
	// after annihilating weights through the public API is impossible, so we
	// only verify Renormalize on a healthy table is harmless here.
	tab.Renormalize()
	if tab.Weight(0) != 1 || tab.Weight(1) != 1 {
		t.Error("Renormalize perturbed fresh table")
	}
}

// Property: weights always stay in (0, 1] and Best is always a valid index.
func TestWeightBoundsProperty(t *testing.T) {
	f := func(losses []float64, betaSeed uint8) bool {
		beta := 0.05 + 0.9*float64(betaSeed)/255
		tab := New(4, beta)
		for _, l := range losses {
			l = math.Abs(math.Mod(l, 1)) // map into [0,1)
			if math.IsNaN(l) {
				l = 0
			}
			base := l
			tab.Update(func(i int) float64 {
				v := base * float64(i+1) / 4
				if v > 1 {
					v = 1
				}
				return v
			})
		}
		b := tab.Best()
		if b < 0 || b >= tab.Len() {
			return false
		}
		for i := 0; i < tab.Len(); i++ {
			w := tab.Weight(i)
			if !(w > 0) || w > 1 || math.IsNaN(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property (WMA soundness): an expert with strictly lower loss every round
// ends with a weight at least as high as every other expert.
func TestDominantExpertWinsProperty(t *testing.T) {
	f := func(rounds uint8, winner uint8) bool {
		n := 5
		w := int(winner) % n
		tab := New(n, 0.2)
		for r := 0; r < int(rounds)%50+1; r++ {
			tab.Update(func(i int) float64 {
				if i == w {
					return 0.1
				}
				return 0.6
			})
		}
		return tab.Best() == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
