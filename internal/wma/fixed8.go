package wma

import (
	"fmt"
	"math"
)

// Fixed8Table is the on-chip variant of the WMA expert table sketched in
// the paper's §VI hardware-implementation discussion: weights are stored
// in 8 bits each (the 6×6 testbed table fits in 36 bytes), and the
// multiplicative update reduces to integer multiply-shift operations the
// paper argues synthesize to a small shift-add unit. Loss values are
// quantized to 8 fractional bits on the way in.
//
// The paper's claim — "8-bit precision is accurate enough for the purpose
// of picking up the largest weight" — is validated against the float
// Table in this package's tests and in the experiments harness.
type Fixed8Table struct {
	weights []uint16 // Q8.8 accumulators; reported weights are the top 8 bits
	beta8   uint32   // β in Q0.8
	rounds  int
}

// fixed8One is 1.0 in the table's Q8.8 representation.
const fixed8One = 1 << 8

// NewFixed8 creates a fixed-point table of n experts with update parameter
// beta (quantized to Q0.8). It panics unless n > 0 and 0 < beta < 1.
func NewFixed8(n int, beta float64) *Fixed8Table {
	if n <= 0 {
		panic(fmt.Sprintf("wma: need at least one expert, got %d", n))
	}
	if beta <= 0 || beta >= 1 {
		panic(fmt.Sprintf("wma: beta must be in (0,1), got %v", beta))
	}
	t := &Fixed8Table{
		weights: make([]uint16, n),
		beta8:   uint32(math.Round(beta * 256)),
	}
	t.Reset()
	return t
}

// Len returns the number of experts.
func (t *Fixed8Table) Len() int { return len(t.weights) }

// Rounds returns the number of Update calls since the last Reset.
func (t *Fixed8Table) Rounds() int { return t.rounds }

// Reset restores all weights to 1.0.
func (t *Fixed8Table) Reset() {
	for i := range t.weights {
		t.weights[i] = fixed8One
	}
	t.rounds = 0
}

// Weight returns expert i's weight as a float in [0, 1].
func (t *Fixed8Table) Weight(i int) float64 {
	return float64(t.weights[i]) / fixed8One
}

// Update applies one round: every expert's weight is multiplied by
// (1 − (1−β)·loss) using Q8.8 integer arithmetic. Loss values outside
// [0,1] (or NaN) panic, as in the float table.
func (t *Fixed8Table) Update(loss func(i int) float64) {
	oneMinusBeta := uint32(256) - t.beta8 // Q0.8
	for i := range t.weights {
		l := loss(i)
		if l < 0 || l > 1 || math.IsNaN(l) {
			panic(fmt.Sprintf("wma: loss for expert %d is %v, must be in [0,1]", i, l))
		}
		l8 := uint32(math.Round(l * 256)) // Q0.8
		// factor = 1 − (1−β)·loss, in Q0.8: 256 − ((1−β)·l >> 8).
		factor := uint32(256) - ((oneMinusBeta * l8) >> 8)
		t.weights[i] = uint16((uint32(t.weights[i]) * factor) >> 8)
	}
	t.rounds++
	// Renormalize when precision is running out: scale the whole table
	// so the max returns to 1.0 (a shift-free integer multiply).
	if m := t.max(); m > 0 && m < fixed8One/4 {
		scale := uint32(fixed8One) * fixed8One / uint32(m) // Q8.8 multiplier
		for i := range t.weights {
			v := (uint32(t.weights[i]) * scale) >> 8
			if v > math.MaxUint16 {
				v = math.MaxUint16
			}
			t.weights[i] = uint16(v)
		}
	} else if m == 0 {
		t.Reset()
	}
}

// Best returns the index of the highest-weighted expert, lowest index on
// ties (the energy-conservative choice, as in the float table).
func (t *Fixed8Table) Best() int {
	best, bw := 0, t.weights[0]
	for i, w := range t.weights[1:] {
		if w > bw {
			best, bw = i+1, w
		}
	}
	return best
}

func (t *Fixed8Table) max() uint16 {
	m := t.weights[0]
	for _, w := range t.weights[1:] {
		if w > m {
			m = w
		}
	}
	return m
}

// SizeBytes returns the storage footprint of the weight table — 2 bytes
// per expert in this Q8.8 software model (the paper's sketch stores 1;
// the extra byte is the renormalization guard band).
func (t *Fixed8Table) SizeBytes() int { return 2 * len(t.weights) }
