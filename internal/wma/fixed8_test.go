package wma

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFixed8Validation(t *testing.T) {
	for _, c := range []struct {
		n    int
		beta float64
	}{{0, 0.2}, {5, 0}, {5, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFixed8(%d, %v) did not panic", c.n, c.beta)
				}
			}()
			NewFixed8(c.n, c.beta)
		}()
	}
}

func TestFixed8InitialState(t *testing.T) {
	tab := NewFixed8(36, 0.2)
	if tab.Len() != 36 {
		t.Errorf("Len = %d", tab.Len())
	}
	for i := 0; i < 36; i++ {
		if tab.Weight(i) != 1 {
			t.Errorf("initial Weight(%d) = %v", i, tab.Weight(i))
		}
	}
	if tab.Best() != 0 {
		t.Errorf("initial Best = %d", tab.Best())
	}
	if tab.SizeBytes() != 72 {
		t.Errorf("SizeBytes = %d, want 72 (Q8.8, 36 experts)", tab.SizeBytes())
	}
}

func TestFixed8DiscountsLosers(t *testing.T) {
	tab := NewFixed8(3, 0.2)
	tab.Update(func(i int) float64 {
		if i == 1 {
			return 0
		}
		return 1
	})
	if tab.Best() != 1 {
		t.Errorf("Best = %d, want 1", tab.Best())
	}
	// Losers: factor = 1 − 0.8 ≈ 0.2 in Q0.8 (51/256 ≈ 0.199).
	if w := tab.Weight(0); math.Abs(w-0.2) > 0.01 {
		t.Errorf("loser weight = %v, want ~0.2", w)
	}
}

func TestFixed8LossOutOfRangePanics(t *testing.T) {
	tab := NewFixed8(2, 0.2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab.Update(func(int) float64 { return 1.5 })
}

func TestFixed8SurvivesLongRuns(t *testing.T) {
	tab := NewFixed8(2, 0.2)
	for i := 0; i < 10000; i++ {
		tab.Update(func(i int) float64 { return []float64{1, 0.9}[i] })
	}
	if tab.Best() != 1 {
		t.Errorf("Best = %d after long decay, want 1", tab.Best())
	}
	if w := tab.Weight(1); w <= 0 {
		t.Errorf("winner weight decayed to %v", w)
	}
}

func TestFixed8ResetAndRounds(t *testing.T) {
	tab := NewFixed8(2, 0.2)
	tab.Update(func(i int) float64 { return float64(i) })
	if tab.Rounds() != 1 {
		t.Errorf("Rounds = %d", tab.Rounds())
	}
	tab.Reset()
	if tab.Rounds() != 0 || tab.Weight(1) != 1 {
		t.Error("Reset incomplete")
	}
}

// Property: the paper's §VI claim — 8-bit precision is accurate enough to
// pick the largest weight. Under steady per-expert losses the fixed
// table's chosen expert must have a loss within one Q0.8 quantization step
// of the float table's choice (experts whose losses differ by less than
// 1/256 are indistinguishable to 8-bit hardware by construction).
func TestFixed8MatchesFloatArgmaxProperty(t *testing.T) {
	f := func(seed uint16, rounds uint8) bool {
		n := 9
		losses := make([]float64, n)
		s := seed
		for i := range losses {
			s = s*31421 + 6927
			losses[i] = float64(s%1000) / 1000
		}
		fl := New(n, 0.2)
		fx := NewFixed8(n, 0.2)
		r := int(rounds)%60 + 5
		for i := 0; i < r; i++ {
			fl.Update(func(i int) float64 { return losses[i] })
			fx.Update(func(i int) float64 { return losses[i] })
		}
		return losses[fx.Best()] <= losses[fl.Best()]+1.5/256
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
