// Package wma implements the multiplicative-weights expert table of the
// Weighted Majority Algorithm (Littlestone & Warmuth, Inf. Comput. 108,
// 1994), the meta-learning framework GreenGPU's frequency-scaling tier is
// built on (paper §V-A, Algorithm 1).
//
// A Table maintains one weight per expert (in GreenGPU, one per
// core×memory frequency pair). Each round, every expert suffers a loss in
// [0,1] and its weight is multiplied by (1 − (1−β)·loss); the expert with
// the highest weight is then enforced. β ∈ (0,1) trades responsiveness for
// noise immunity: the paper selects β = 0.2.
//
// Because weights decay multiplicatively and never grow, a long run would
// underflow float64. The table therefore renormalizes automatically
// (dividing all weights by the maximum) whenever the maximum drops below a
// threshold; renormalization preserves both the argmax and all weight
// ratios, so it is unobservable to the algorithm.
package wma

import (
	"fmt"
	"math"
)

// renormBelow triggers automatic renormalization when the maximum weight
// decays beneath it. Any value far above the denormal range works.
const renormBelow = 1e-100

// Table is a WMA expert table. Weights start equal (at 1), expressing no
// initial preference among experts, per the paper's initialization.
type Table struct {
	weights []float64
	beta    float64
	rounds  int
}

// New creates a table of n experts with update parameter beta.
// It panics unless n > 0 and 0 < beta < 1.
func New(n int, beta float64) *Table {
	if n <= 0 {
		panic(fmt.Sprintf("wma: need at least one expert, got %d", n))
	}
	if beta <= 0 || beta >= 1 {
		panic(fmt.Sprintf("wma: beta must be in (0,1), got %v", beta))
	}
	t := &Table{weights: make([]float64, n), beta: beta}
	t.Reset()
	return t
}

// Len returns the number of experts.
func (t *Table) Len() int { return len(t.weights) }

// Beta returns the update parameter.
func (t *Table) Beta() float64 { return t.beta }

// Rounds returns the number of Update calls since the last Reset.
func (t *Table) Rounds() int { return t.rounds }

// Reset restores all weights to 1 and zeroes the round counter.
func (t *Table) Reset() {
	for i := range t.weights {
		t.weights[i] = 1
	}
	t.rounds = 0
}

// Weight returns expert i's current weight.
func (t *Table) Weight(i int) float64 { return t.weights[i] }

// Weights returns a copy of the full weight vector.
func (t *Table) Weights() []float64 {
	out := make([]float64, len(t.weights))
	copy(out, t.weights)
	return out
}

// Update applies one round of multiplicative updates. loss(i) must return
// expert i's loss for the round, in [0,1]; values outside that range panic,
// since they would let weights grow or go negative and break the WMA regret
// guarantee.
func (t *Table) Update(loss func(i int) float64) {
	oneMinusBeta := 1 - t.beta
	max := 0.0 // weights are always > 0, so 0 seeds the max scan safely
	for i := range t.weights {
		l := loss(i)
		if l < 0 || l > 1 || math.IsNaN(l) {
			panic(fmt.Sprintf("wma: loss for expert %d is %v, must be in [0,1]", i, l))
		}
		w := t.weights[i] * (1 - oneMinusBeta*l)
		t.weights[i] = w
		if w > max {
			max = w
		}
	}
	t.rounds++
	if max < renormBelow {
		t.Renormalize()
	}
}

// Best returns the index of the highest-weighted expert. Ties break toward
// the lowest index, which for GreenGPU's level ordering means the lowest
// frequency pair — the energy-conservative choice.
func (t *Table) Best() int {
	best, bw := 0, t.weights[0]
	for i, w := range t.weights[1:] {
		if w > bw {
			best, bw = i+1, w
		}
	}
	return best
}

// Renormalize divides all weights by the current maximum, restoring the
// maximum to 1. Argmax and weight ratios are preserved exactly (up to
// floating-point rounding).
func (t *Table) Renormalize() {
	m := t.max()
	if m <= 0 {
		// All experts annihilated (every loss was 1 with beta→0);
		// restart from indifference rather than propagate zeros.
		t.Reset()
		return
	}
	for i := range t.weights {
		t.weights[i] /= m
	}
}

func (t *Table) max() float64 {
	m := t.weights[0]
	for _, w := range t.weights[1:] {
		if w > m {
			m = w
		}
	}
	return m
}
