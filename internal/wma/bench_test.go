package wma

import "testing"

// BenchmarkUpdate36 measures one WMA round over the testbed's 36 experts
// (6 core × 6 memory frequency pairs).
func BenchmarkUpdate36(b *testing.B) {
	t := New(36, 0.2)
	loss := func(i int) float64 { return float64(i%7) / 7 }
	for i := 0; i < b.N; i++ {
		t.Update(loss)
	}
}

// BenchmarkBest measures the argmax over the expert table.
func BenchmarkBest(b *testing.B) {
	t := New(36, 0.2)
	t.Update(func(i int) float64 { return float64(i%5) / 5 })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Best()
	}
}

// BenchmarkFixed8Update36 measures one fixed-point WMA round — the cost
// the paper's §VI sketch maps onto shift-add hardware.
func BenchmarkFixed8Update36(b *testing.B) {
	t := NewFixed8(36, 0.2)
	loss := func(i int) float64 { return float64(i%7) / 7 }
	for i := 0; i < b.N; i++ {
		t.Update(loss)
	}
}
