// Package workload models the benchmark applications of the GreenGPU
// evaluation (paper §VI, Table II): the Rodinia and CUDA-SDK kernels bfs,
// lud, nbody, pathfinder (PF), quasirandomGenerator (QG), srad_v2, hotspot,
// kmeans and streamcluster.
//
// A workload is a Profile: a sequence of iterations (the paper's unit of
// workload division — the reduction point in kmeans, the barrier step in
// hotspot, a data chunk for embarrassingly parallel kernels), each made of
// phases with known compute, memory and stall demands per unit of work.
// Work units are 1% granules of an iteration, so the division tier's 5%
// steps map onto integral numbers of units.
//
// Profiles are not written down as raw operation counts. Instead they are
// calibrated: a Spec states the observable characterization the paper
// reports — per-phase core and memory utilizations at peak clocks and the
// iteration's all-GPU execution time — and Calibrate inverts the gpusim
// timing model to find the per-unit demands that reproduce exactly those
// observables on the simulated device. This keeps the workload set faithful
// to Table II without access to the original binaries.
package workload

import (
	"fmt"
	"time"

	"greengpu/internal/cpusim"
	"greengpu/internal/gpusim"
	"greengpu/internal/units"
)

// UnitsPerIteration is the work granularity: one unit is 1% of an
// iteration's work.
const UnitsPerIteration = 100.0

// PhaseTarget is one phase of a Spec: a fraction of the iteration's work
// with target utilizations measured at peak clocks.
type PhaseTarget struct {
	Label    string
	Fraction float64 // share of the iteration's work units
	CoreUtil float64 // u_core at peak clocks
	MemUtil  float64 // u_mem at peak clocks
}

// Spec is the observable characterization of a workload, in the terms the
// paper reports.
type Spec struct {
	Name        string
	Description string // Table II's characterization text
	Enlargement string // Table II's data-size enlargement note

	// IterationSeconds is the all-GPU execution time of one iteration at
	// peak clocks (after the paper's data-size enlargement).
	IterationSeconds float64
	// Iterations is the default number of iterations for a full run.
	Iterations int
	// Phases partition the iteration's work. Fractions must sum to 1.
	Phases []PhaseTarget

	// CPUSlowdown is how many times longer the CPU (all cores, peak
	// frequency) takes than the GPU (peak clocks) to process the same
	// work. It determines the balanced division point r* = 1/(1+S).
	CPUSlowdown float64
	// TransferMB is the host↔device traffic per iteration for the GPU's
	// share of work, in megabytes (decimal).
	TransferMB float64
	// RepartitionMB is the data that must be reshuffled across the bus
	// per 1.0 change of the division ratio, in megabytes. It is the
	// overhead that makes division-ratio oscillation costly.
	RepartitionMB float64
}

// Validate reports the first problem with the spec, if any.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec with empty name")
	}
	if s.IterationSeconds <= 0 {
		return fmt.Errorf("workload: %s: IterationSeconds must be positive", s.Name)
	}
	if s.Iterations <= 0 {
		return fmt.Errorf("workload: %s: Iterations must be positive", s.Name)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("workload: %s: need at least one phase", s.Name)
	}
	sum := 0.0
	for i, ph := range s.Phases {
		if ph.Fraction <= 0 {
			return fmt.Errorf("workload: %s: phase %d fraction must be positive", s.Name, i)
		}
		if ph.CoreUtil < 0 || ph.CoreUtil > 1 || ph.MemUtil < 0 || ph.MemUtil > 1 {
			return fmt.Errorf("workload: %s: phase %d utilizations must be in [0,1]", s.Name, i)
		}
		sum += ph.Fraction
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("workload: %s: phase fractions sum to %v, want 1", s.Name, sum)
	}
	if s.CPUSlowdown <= 0 {
		return fmt.Errorf("workload: %s: CPUSlowdown must be positive", s.Name)
	}
	if s.TransferMB < 0 || s.RepartitionMB < 0 {
		return fmt.Errorf("workload: %s: transfer sizes must be non-negative", s.Name)
	}
	return nil
}

// PhaseSpec is a calibrated phase: per-unit demands plus its work fraction.
type PhaseSpec struct {
	Label        string
	Fraction     float64
	OpsPerUnit   float64
	BytesPerUnit float64
	StallPerUnit float64 // seconds
}

// Profile is a calibrated workload ready to run on the simulated testbed.
type Profile struct {
	Name        string
	Description string
	Enlargement string
	Iterations  int
	Phases      []PhaseSpec

	CPUOpsPerUnit        float64
	TransferBytesPerUnit float64
	RepartitionBytes     float64 // per unit change of ratio × UnitsPerIteration

	spec Spec
}

// Spec returns the characterization this profile was calibrated from.
func (p *Profile) Spec() Spec { return p.spec }

// Calibrate inverts the device timing model: it finds per-unit compute,
// memory and stall demands such that at peak clocks each phase exhibits the
// spec's target utilizations and the whole iteration takes
// spec.IterationSeconds on the GPU alone.
//
// The inversion solves, per phase with target (uc, um) and per-unit time T,
// under the device model T = max(Tc, Tm, Ts) + γ·min(Tc, Tm):
//
//	Tc = uc·T,  Tm = um·T,  Ts = T·(1 − γ·min(uc, um))
//
// which is feasible iff max(uc,um) + γ·min(uc,um) ≤ 1 (that condition is
// exactly Ts ≥ max(Tc, Tm), i.e. the latency floor is the critical path at
// the calibration point). Infeasible targets return an error rather than
// silently clipping.
func Calibrate(spec Spec, gpu gpusim.Config, cpu cpusim.Config) (*Profile, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := gpu.Validate(); err != nil {
		return nil, err
	}
	if err := cpu.Validate(); err != nil {
		return nil, err
	}

	unitT := spec.IterationSeconds / UnitsPerIteration
	sps := float64(gpu.SMs*gpu.SPsPerSM) * gpu.IPC
	fcPeak := float64(gpu.CoreLevels[len(gpu.CoreLevels)-1])
	fmPeak := float64(gpu.MemLevels[len(gpu.MemLevels)-1])

	p := &Profile{
		Name:        spec.Name,
		Description: spec.Description,
		Enlargement: spec.Enlargement,
		Iterations:  spec.Iterations,
		spec:        spec,
	}
	for i, ph := range spec.Phases {
		tc := ph.CoreUtil * unitT
		tm := ph.MemUtil * unitT
		lo, hi := tc, tm
		if lo > hi {
			lo, hi = hi, lo
		}
		ts := unitT - gpu.OverlapGamma*lo
		if ts < hi-1e-12 {
			return nil, fmt.Errorf(
				"workload: %s phase %d: targets (%.2f, %.2f) infeasible with overlap γ=%.2f: max+γ·min = %.3f > 1",
				spec.Name, i, ph.CoreUtil, ph.MemUtil, gpu.OverlapGamma, (hi+gpu.OverlapGamma*lo)/unitT)
		}
		p.Phases = append(p.Phases, PhaseSpec{
			Label:        ph.Label,
			Fraction:     ph.Fraction,
			OpsPerUnit:   tc * sps * fcPeak,
			BytesPerUnit: tm * gpu.BytesPerMemCycle * fmPeak,
			StallPerUnit: ts,
		})
	}

	// CPU cost: the whole iteration takes spec.CPUSlowdown × longer on the
	// CPU at its peak P-state with all cores.
	cpuPeak := cpu.PStates[len(cpu.PStates)-1].Frequency
	cpuUnitT := spec.CPUSlowdown * unitT
	p.CPUOpsPerUnit = cpuUnitT * float64(cpu.Cores) * cpu.IPC * float64(cpuPeak)

	p.TransferBytesPerUnit = spec.TransferMB * 1e6 / UnitsPerIteration
	p.RepartitionBytes = spec.RepartitionMB * 1e6
	return p, nil
}

// MustCalibrate is Calibrate that panics on error, for preset tables whose
// feasibility is covered by tests.
func MustCalibrate(spec Spec, gpu gpusim.Config, cpu cpusim.Config) *Profile {
	p, err := Calibrate(spec, gpu, cpu)
	if err != nil {
		panic(err)
	}
	return p
}

// GPUKernel builds the device kernel for the given number of work units of
// one iteration (e.g. (1−r)·UnitsPerIteration under division ratio r).
// Zero or negative units return an empty kernel that completes immediately.
func (p *Profile) GPUKernel(name string, workUnits float64) *gpusim.Kernel {
	k := &gpusim.Kernel{Name: name}
	if workUnits <= 0 {
		return k
	}
	for _, ph := range p.Phases {
		u := workUnits * ph.Fraction
		k.Phases = append(k.Phases, gpusim.Phase{
			Label: ph.Label,
			Ops:   ph.OpsPerUnit * u,
			Bytes: ph.BytesPerUnit * u,
			Stall: ph.StallPerUnit * u,
		})
	}
	return k
}

// CPUOps returns the CPU operation count for the given work units.
func (p *Profile) CPUOps(workUnits float64) float64 {
	if workUnits <= 0 {
		return 0
	}
	return p.CPUOpsPerUnit * workUnits
}

// TransferBytes returns the host↔device traffic for the given work units.
func (p *Profile) TransferBytes(workUnits float64) units.Bytes {
	if workUnits <= 0 {
		return 0
	}
	return units.Bytes(p.TransferBytesPerUnit * workUnits)
}

// RepartitionTraffic returns the bus traffic caused by changing the
// division ratio from oldR to newR.
func (p *Profile) RepartitionTraffic(oldR, newR float64) units.Bytes {
	d := newR - oldR
	if d < 0 {
		d = -d
	}
	return units.Bytes(d * p.RepartitionBytes)
}

// IterationTimeGPU predicts the all-GPU iteration time at the given levels.
func (p *Profile) IterationTimeGPU(g *gpusim.GPU, core, mem int) time.Duration {
	var total time.Duration
	for _, ph := range p.Phases {
		u := UnitsPerIteration * ph.Fraction
		total += g.PhaseTime(ph.OpsPerUnit*u, ph.BytesPerUnit*u, ph.StallPerUnit*u, core, mem)
	}
	return total
}

// AggregateUtilization returns the work-weighted mean utilizations of the
// profile's phases at peak clocks — the numbers Table II classifies.
func (p *Profile) AggregateUtilization() (core, mem float64) {
	for i, ph := range p.spec.Phases {
		_ = i
		core += ph.Fraction * ph.CoreUtil
		mem += ph.Fraction * ph.MemUtil
	}
	return core, mem
}

// Class is a qualitative utilization level, for rendering Table II.
type Class int

// Utilization classes.
const (
	Low Class = iota
	Medium
	High
)

// String returns the Table II wording.
func (c Class) String() string {
	switch c {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classify maps a utilization to its qualitative class using the breaks
// implied by the paper's characterization (< 0.45 low, < 0.75 medium).
func Classify(u float64) Class {
	switch {
	case u < 0.45:
		return Low
	case u < 0.75:
		return Medium
	default:
		return High
	}
}

// Fluctuating reports whether the profile's phases differ enough in
// utilization to be called "highly fluctuating" in Table II's sense
// (≥ 0.3 spread on either domain).
func (p *Profile) Fluctuating() bool {
	if len(p.spec.Phases) < 2 {
		return false
	}
	minC, maxC := 1.0, 0.0
	minM, maxM := 1.0, 0.0
	for _, ph := range p.spec.Phases {
		if ph.CoreUtil < minC {
			minC = ph.CoreUtil
		}
		if ph.CoreUtil > maxC {
			maxC = ph.CoreUtil
		}
		if ph.MemUtil < minM {
			minM = ph.MemUtil
		}
		if ph.MemUtil > maxM {
			maxM = ph.MemUtil
		}
	}
	return maxC-minC >= 0.3 || maxM-minM >= 0.3
}
