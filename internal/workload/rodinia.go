package workload

import (
	"fmt"
	"sort"

	"greengpu/internal/cpusim"
	"greengpu/internal/gpusim"
)

// Specs returns the characterization table of the nine evaluation workloads
// (paper Table II), with the data-size enlargements already folded into the
// iteration times. Utilization targets encode the published classes:
//
//	bfs            high core, high memory
//	lud            medium core, low memory
//	nbody          core-bounded (high core; memory well below core)
//	PF             low core and memory
//	QG             highly fluctuating utilizations
//	srad_v2        high core, medium memory
//	hotspot        medium core, low memory
//	kmeans         medium core, low memory
//	streamcluster  memory-bounded, highly fluctuating
//
// CPUSlowdown values set the balanced division points the paper measured:
// kmeans converges to 20/80 (slowdown 4) and hotspot to 50/50 (slowdown 1).
func Specs() []Spec {
	return []Spec{
		{
			Name:             "bfs",
			Enlargement:      "65536 iterations",
			Description:      "High core and memory utilization",
			IterationSeconds: 24,
			Iterations:       10,
			CPUSlowdown:      6,
			TransferMB:       160,
			RepartitionMB:    220,
			Phases: []PhaseTarget{
				{Label: "frontier", Fraction: 1, CoreUtil: 0.85, MemUtil: 0.82},
			},
		},
		{
			Name:             "lud",
			Enlargement:      "10 iterations; 8192 by 8192 matrix",
			Description:      "Medium core utilization, low memory utilization",
			IterationSeconds: 30,
			Iterations:       10,
			CPUSlowdown:      5,
			TransferMB:       256,
			RepartitionMB:    512,
			Phases: []PhaseTarget{
				{Label: "decompose", Fraction: 1, CoreUtil: 0.55, MemUtil: 0.25},
			},
		},
		{
			Name:             "nbody",
			Enlargement:      "50 of iterations",
			Description:      "High core utilization (core-bounded)",
			IterationSeconds: 20,
			Iterations:       12,
			CPUSlowdown:      8,
			TransferMB:       48,
			RepartitionMB:    96,
			Phases: []PhaseTarget{
				{Label: "force", Fraction: 1, CoreUtil: 0.92, MemUtil: 0.45},
			},
		},
		{
			Name:             "PF",
			Enlargement:      "2048 by 2048 dimensions",
			Description:      "Low core and memory utilization",
			IterationSeconds: 16,
			Iterations:       12,
			CPUSlowdown:      3,
			TransferMB:       128,
			RepartitionMB:    128,
			Phases: []PhaseTarget{
				{Label: "path", Fraction: 1, CoreUtil: 0.30, MemUtil: 0.25},
			},
		},
		{
			Name:             "QG",
			Enlargement:      "600 iterations; 16777216 points",
			Description:      "Utilizations highly fluctuate",
			IterationSeconds: 24,
			Iterations:       12,
			CPUSlowdown:      6,
			TransferMB:       64,
			RepartitionMB:    64,
			Phases: []PhaseTarget{
				{Label: "generate", Fraction: 0.5, CoreUtil: 0.90, MemUtil: 0.20},
				{Label: "scatter", Fraction: 0.5, CoreUtil: 0.15, MemUtil: 0.68},
			},
		},
		{
			Name:             "srad_v2",
			Enlargement:      "2048 columns by 2048 rows",
			Description:      "High core utilization, medium memory utilization",
			IterationSeconds: 28,
			Iterations:       10,
			CPUSlowdown:      6,
			TransferMB:       192,
			RepartitionMB:    256,
			Phases: []PhaseTarget{
				{Label: "diffuse", Fraction: 1, CoreUtil: 0.80, MemUtil: 0.50},
			},
		},
		{
			Name:             "hotspot",
			Enlargement:      "2048 by 2048 grids of 600 iterations",
			Description:      "Medium core utilization, low memory utilization",
			IterationSeconds: 120,
			Iterations:       20,
			CPUSlowdown:      1,
			TransferMB:       96,
			RepartitionMB:    192,
			Phases: []PhaseTarget{
				{Label: "stencil", Fraction: 1, CoreUtil: 0.55, MemUtil: 0.30},
			},
		},
		{
			Name:             "kmeans",
			Enlargement:      "988040 data points",
			Description:      "Medium core utilization, low memory utilization",
			IterationSeconds: 120,
			Iterations:       20,
			CPUSlowdown:      4,
			TransferMB:       224,
			RepartitionMB:    320,
			Phases: []PhaseTarget{
				{Label: "assign+reduce", Fraction: 1, CoreUtil: 0.60, MemUtil: 0.35},
			},
		},
		{
			Name:             "streamcluster",
			Enlargement:      "65536 points with 512 dimensions",
			Description:      "Utilizations highly fluctuate (memory-bounded)",
			IterationSeconds: 24,
			Iterations:       12,
			CPUSlowdown:      5,
			TransferMB:       128,
			RepartitionMB:    128,
			Phases: []PhaseTarget{
				{Label: "open-centers", Fraction: 0.6, CoreUtil: 0.30, MemUtil: 0.72},
				{Label: "gain", Fraction: 0.4, CoreUtil: 0.62, MemUtil: 0.45},
			},
		},
	}
}

// Rodinia calibrates the full evaluation workload set against the given
// devices and returns the profiles sorted by name.
func Rodinia(gpu gpusim.Config, cpu cpusim.Config) ([]*Profile, error) {
	specs := Specs()
	profiles := make([]*Profile, 0, len(specs))
	for _, s := range specs {
		p, err := Calibrate(s, gpu, cpu)
		if err != nil {
			return nil, err
		}
		profiles = append(profiles, p)
	}
	sort.Slice(profiles, func(i, j int) bool { return profiles[i].Name < profiles[j].Name })
	return profiles, nil
}

// ByName returns the named profile from the calibrated set.
func ByName(profiles []*Profile, name string) (*Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("workload: no profile named %q", name)
}
