package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"greengpu/internal/gpusim"
	"greengpu/internal/sim"
	"greengpu/internal/testbed"
)

func calibrated(t *testing.T, name string) *Profile {
	t.Helper()
	profiles, err := Rodinia(testbed.GeForce8800GTX(), testbed.PhenomIIX2())
	if err != nil {
		t.Fatalf("Rodinia: %v", err)
	}
	p, err := ByName(profiles, name)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	return p
}

func TestSpecsValid(t *testing.T) {
	specs := Specs()
	if len(specs) != 9 {
		t.Fatalf("got %d specs, want the 9 Table II workloads", len(specs))
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %s invalid: %v", s.Name, err)
		}
	}
}

func TestSpecValidateRejectsBadSpecs(t *testing.T) {
	base := func() Spec {
		return Spec{
			Name:             "x",
			IterationSeconds: 10,
			Iterations:       5,
			CPUSlowdown:      2,
			Phases:           []PhaseTarget{{Label: "p", Fraction: 1, CoreUtil: 0.5, MemUtil: 0.5}},
		}
	}
	muts := []struct {
		name string
		mut  func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"zero iter seconds", func(s *Spec) { s.IterationSeconds = 0 }},
		{"zero iterations", func(s *Spec) { s.Iterations = 0 }},
		{"no phases", func(s *Spec) { s.Phases = nil }},
		{"fraction sum", func(s *Spec) { s.Phases[0].Fraction = 0.5 }},
		{"negative fraction", func(s *Spec) { s.Phases[0].Fraction = -1 }},
		{"util > 1", func(s *Spec) { s.Phases[0].CoreUtil = 1.2 }},
		{"util < 0", func(s *Spec) { s.Phases[0].MemUtil = -0.2 }},
		{"zero slowdown", func(s *Spec) { s.CPUSlowdown = 0 }},
		{"negative transfer", func(s *Spec) { s.TransferMB = -1 }},
		{"negative repartition", func(s *Spec) { s.RepartitionMB = -1 }},
	}
	for _, m := range muts {
		s := base()
		m.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestCalibrationRoundTrip(t *testing.T) {
	// The calibrated profile, executed on the simulated GPU at peak
	// clocks, must exhibit exactly the spec's utilizations and iteration
	// time — this is the core guarantee of the inverse model.
	gcfg := testbed.GeForce8800GTX()
	for _, spec := range Specs() {
		p := MustCalibrate(spec, gcfg, testbed.PhenomIIX2())
		e := sim.New()
		g := gpusim.New(e, gcfg)
		g.SetLevels(len(gcfg.CoreLevels)-1, len(gcfg.MemLevels)-1)

		before := g.Counters()
		k := p.GPUKernel(spec.Name, UnitsPerIteration)
		g.Submit(k)
		e.Run()

		gotT := k.ExecTime()
		wantT := time.Duration(spec.IterationSeconds * float64(time.Second))
		if d := gotT - wantT; d < -time.Millisecond || d > time.Millisecond {
			t.Errorf("%s: iteration time %v, want %v", spec.Name, gotT, wantT)
		}

		w := g.Counters().Since(before)
		wantC, wantM := p.AggregateUtilization()
		if math.Abs(w.CoreUtil-wantC) > 0.01 {
			t.Errorf("%s: core util %v, want %v", spec.Name, w.CoreUtil, wantC)
		}
		if math.Abs(w.MemUtil-wantM) > 0.01 {
			t.Errorf("%s: mem util %v, want %v", spec.Name, w.MemUtil, wantM)
		}
	}
}

func TestCalibrateInfeasibleTargets(t *testing.T) {
	spec := Spec{
		Name:             "impossible",
		IterationSeconds: 10,
		Iterations:       5,
		CPUSlowdown:      2,
		Phases:           []PhaseTarget{{Label: "p", Fraction: 1, CoreUtil: 0.99, MemUtil: 0.95}},
	}
	_, err := Calibrate(spec, testbed.GeForce8800GTX(), testbed.PhenomIIX2())
	if err == nil {
		t.Fatal("infeasible targets accepted (max+γ·min > 1)")
	}
}

func TestMustCalibratePanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCalibrate(Spec{}, testbed.GeForce8800GTX(), testbed.PhenomIIX2())
}

func TestCPUSlowdownRealized(t *testing.T) {
	// The CPU at peak P-state must take CPUSlowdown× the GPU's iteration
	// time for the same work.
	ccfg := testbed.PhenomIIX2()
	for _, name := range []string{"kmeans", "hotspot", "nbody"} {
		p := calibrated(t, name)
		spec := p.Spec()
		cpuOps := p.CPUOps(UnitsPerIteration)
		// Time on all cores at peak.
		peak := ccfg.PStates[len(ccfg.PStates)-1].Frequency
		cpuT := cpuOps / (float64(ccfg.Cores) * ccfg.IPC * float64(peak))
		want := spec.CPUSlowdown * spec.IterationSeconds
		if math.Abs(cpuT-want) > 1e-6*want {
			t.Errorf("%s: CPU time %v s, want %v s", name, cpuT, want)
		}
	}
}

func TestKernelScalesWithUnits(t *testing.T) {
	p := calibrated(t, "kmeans")
	full := p.GPUKernel("full", UnitsPerIteration)
	half := p.GPUKernel("half", UnitsPerIteration/2)
	if len(full.Phases) != len(half.Phases) {
		t.Fatal("phase counts differ")
	}
	for i := range full.Phases {
		if math.Abs(half.Phases[i].Ops*2-full.Phases[i].Ops) > 1e-6*full.Phases[i].Ops {
			t.Errorf("phase %d ops not linear", i)
		}
	}
	empty := p.GPUKernel("none", 0)
	if len(empty.Phases) != 0 {
		t.Error("zero units should give an empty kernel")
	}
}

func TestCPUOpsAndTransfers(t *testing.T) {
	p := calibrated(t, "kmeans")
	if p.CPUOps(0) != 0 || p.CPUOps(-5) != 0 {
		t.Error("non-positive units should give zero CPU ops")
	}
	if p.TransferBytes(0) != 0 {
		t.Error("zero units should give zero transfer")
	}
	// kmeans: 224 MB per 100 units.
	got := float64(p.TransferBytes(UnitsPerIteration))
	if math.Abs(got-224e6) > 1 {
		t.Errorf("TransferBytes = %v, want 224e6", got)
	}
}

func TestRepartitionTraffic(t *testing.T) {
	p := calibrated(t, "kmeans") // 320 MB per full ratio swing
	got := float64(p.RepartitionTraffic(0.30, 0.25))
	if math.Abs(got-0.05*320e6) > 1 {
		t.Errorf("RepartitionTraffic = %v, want 16e6", got)
	}
	if p.RepartitionTraffic(0.25, 0.30) != p.RepartitionTraffic(0.30, 0.25) {
		t.Error("repartition traffic should be symmetric")
	}
}

func TestIterationTimeGPUMatchesExecution(t *testing.T) {
	gcfg := testbed.GeForce8800GTX()
	p := calibrated(t, "streamcluster")
	e := sim.New()
	g := gpusim.New(e, gcfg)
	g.SetLevels(2, 3)
	predicted := p.IterationTimeGPU(g, 2, 3)
	k := p.GPUKernel("sc", UnitsPerIteration)
	g.Submit(k)
	e.Run()
	if d := k.ExecTime() - predicted; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("predicted %v, executed %v", predicted, k.ExecTime())
	}
}

func TestTableIIClasses(t *testing.T) {
	// The calibrated profiles must reproduce Table II's qualitative
	// characterization.
	cases := []struct {
		name        string
		coreClass   Class
		memClass    Class
		fluctuating bool
	}{
		{"bfs", High, High, false},
		{"lud", Medium, Low, false},
		{"nbody", High, Medium, false},
		{"PF", Low, Low, false},
		{"QG", Medium, Low, true}, // aggregate medium; the point is fluctuation
		{"srad_v2", High, Medium, false},
		{"hotspot", Medium, Low, false},
		{"kmeans", Medium, Low, false},
		{"streamcluster", Low, Medium, true},
	}
	for _, c := range cases {
		p := calibrated(t, c.name)
		uc, um := p.AggregateUtilization()
		if got := Classify(uc); got != c.coreClass {
			t.Errorf("%s: core class %v (u=%.2f), want %v", c.name, got, uc, c.coreClass)
		}
		if got := Classify(um); got != c.memClass {
			t.Errorf("%s: mem class %v (u=%.2f), want %v", c.name, got, um, c.memClass)
		}
		if got := p.Fluctuating(); got != c.fluctuating {
			t.Errorf("%s: fluctuating = %v, want %v", c.name, got, c.fluctuating)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		u    float64
		want Class
	}{
		{0, Low}, {0.44, Low}, {0.45, Medium}, {0.74, Medium}, {0.75, High}, {1, High},
	}
	for _, c := range cases {
		if got := Classify(c.u); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.u, got, c.want)
		}
	}
}

func TestClassString(t *testing.T) {
	if Low.String() != "low" || Medium.String() != "medium" || High.String() != "high" {
		t.Error("class strings wrong")
	}
	if Class(9).String() != "Class(9)" {
		t.Errorf("unknown class string = %q", Class(9).String())
	}
}

func TestByNameMissing(t *testing.T) {
	profiles, err := Rodinia(testbed.GeForce8800GTX(), testbed.PhenomIIX2())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ByName(profiles, "doom3"); err == nil {
		t.Error("ByName on missing workload should error")
	}
}

func TestRodiniaSorted(t *testing.T) {
	profiles, err := Rodinia(testbed.GeForce8800GTX(), testbed.PhenomIIX2())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(profiles); i++ {
		if profiles[i-1].Name >= profiles[i].Name {
			t.Errorf("profiles not sorted: %s >= %s", profiles[i-1].Name, profiles[i].Name)
		}
	}
}

// Property: for any feasible utilization pair, calibration round-trips
// through the device model.
func TestCalibrationRoundTripProperty(t *testing.T) {
	gcfg := testbed.GeForce8800GTX()
	ccfg := testbed.PhenomIIX2()
	f := func(a, b uint8) bool {
		uc := float64(a) / 255 * 0.85
		um := float64(b) / 255 * 0.85
		// Keep targets feasible under γ=0.15.
		hi, lo := uc, um
		if lo > hi {
			hi, lo = lo, hi
		}
		if hi+gcfg.OverlapGamma*lo > 0.99 {
			return true
		}
		spec := Spec{
			Name:             "prop",
			IterationSeconds: 10,
			Iterations:       1,
			CPUSlowdown:      2,
			Phases:           []PhaseTarget{{Label: "p", Fraction: 1, CoreUtil: uc, MemUtil: um}},
		}
		p, err := Calibrate(spec, gcfg, ccfg)
		if err != nil {
			return false
		}
		e := sim.New()
		g := gpusim.New(e, gcfg)
		g.SetLevels(5, 5)
		before := g.Counters()
		g.Submit(p.GPUKernel("p", UnitsPerIteration))
		e.Run()
		w := g.Counters().Since(before)
		return math.Abs(w.CoreUtil-uc) < 0.02 && math.Abs(w.MemUtil-um) < 0.02 &&
			math.Abs(w.Duration.Seconds()-10) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
