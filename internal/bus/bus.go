// Package bus models the host↔device interconnect (PCIe-class) of the
// GreenGPU testbed platform: a serialized, fixed-bandwidth channel with a
// per-transfer setup latency.
//
// Workload division pays a bus cost per iteration (copying each side's data
// share in and results out), which is one of the overheads that makes
// too-frequent division and division-ratio oscillation expensive — the
// motivation for the paper's oscillation safeguard (§V-B).
package bus

import (
	"fmt"
	"time"

	"greengpu/internal/sim"
	"greengpu/internal/units"
)

// Config describes the interconnect.
type Config struct {
	Name      string
	Bandwidth units.Bandwidth // sustained transfer rate
	Latency   time.Duration   // per-transfer setup cost (DMA programming, sync)
}

// Validate reports the first problem with the configuration, if any.
func (c *Config) Validate() error {
	if c.Bandwidth <= 0 {
		return fmt.Errorf("bus: %q: Bandwidth must be positive", c.Name)
	}
	if c.Latency < 0 {
		return fmt.Errorf("bus: %q: Latency must be non-negative", c.Name)
	}
	return nil
}

// Counters is a snapshot of cumulative bus accounting.
type Counters struct {
	At        time.Duration
	Bytes     units.Bytes
	BusyTime  time.Duration
	Transfers int
}

// Bus is a serialized transfer channel attached to a sim.Engine.
type Bus struct {
	cfg    Config
	engine *sim.Engine

	busyUntil time.Duration

	bytes     units.Bytes
	busyTime  time.Duration
	transfers int
}

// New creates a Bus bound to the engine. It panics on an invalid
// configuration; use Config.Validate to check first.
func New(e *sim.Engine, cfg Config) *Bus {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Bus{cfg: cfg, engine: e}
}

// Config returns the bus configuration.
func (b *Bus) Config() Config { return b.cfg }

// TransferTime returns the service time for a transfer of n bytes,
// excluding any queueing delay.
func (b *Bus) TransferTime(n units.Bytes) time.Duration {
	if n < 0 {
		panic(fmt.Sprintf("bus: negative transfer size %v", float64(n)))
	}
	return b.cfg.Latency + b.cfg.Bandwidth.TransferTime(n)
}

// Transfer enqueues a transfer of n bytes and invokes onDone when it
// completes. Transfers are serialized FIFO: a transfer issued while the bus
// is busy starts when the channel frees up. It returns the completion time.
func (b *Bus) Transfer(n units.Bytes, name string, onDone func()) time.Duration {
	service := b.TransferTime(n)
	start := b.engine.Now()
	if b.busyUntil > start {
		start = b.busyUntil
	}
	end := start + service
	b.busyUntil = end
	b.bytes += n
	b.busyTime += service
	b.transfers++
	b.engine.Schedule(end, "bus:"+name, func() {
		if onDone != nil {
			onDone()
		}
	})
	return end
}

// Busy reports whether the bus has unfinished transfers.
func (b *Bus) Busy() bool { return b.busyUntil > b.engine.Now() }

// Counters returns a snapshot of cumulative accounting.
func (b *Bus) Counters() Counters {
	return Counters{
		At:        b.engine.Now(),
		Bytes:     b.bytes,
		BusyTime:  b.busyTime,
		Transfers: b.transfers,
	}
}
