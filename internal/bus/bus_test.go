package bus

import (
	"testing"
	"testing/quick"
	"time"

	"greengpu/internal/sim"
	"greengpu/internal/units"
)

func testConfig() Config {
	return Config{
		Name:      "pcie",
		Bandwidth: units.Bandwidth(1e9), // 1 GB/s
		Latency:   10 * time.Millisecond,
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := testConfig()
	bad.Bandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	bad = testConfig()
	bad.Latency = -time.Second
	if err := bad.Validate(); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestTransferTime(t *testing.T) {
	b := New(sim.New(), testConfig())
	// 10ms latency + 1e9 bytes / 1 GB/s = 1.01s.
	got := b.TransferTime(1e9)
	want := 1010 * time.Millisecond
	if d := got - want; d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
}

func TestNegativeSizePanics(t *testing.T) {
	b := New(sim.New(), testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.TransferTime(-1)
}

func TestTransferCompletion(t *testing.T) {
	e := sim.New()
	b := New(e, testConfig())
	var doneAt time.Duration
	b.Transfer(1e9, "h2d", func() { doneAt = e.Now() })
	e.Run()
	want := 1010 * time.Millisecond
	if doneAt != want {
		t.Errorf("completion at %v, want %v", doneAt, want)
	}
}

func TestFIFOSerialization(t *testing.T) {
	e := sim.New()
	b := New(e, testConfig())
	var order []string
	b.Transfer(1e9, "first", func() { order = append(order, "first") })     // ends 1.01s
	b.Transfer(0.5e9, "second", func() { order = append(order, "second") }) // ends 1.01+0.51
	if !b.Busy() {
		t.Error("bus should be busy")
	}
	e.Run()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v", order)
	}
	if want := 1520 * time.Millisecond; e.Now() != want {
		t.Errorf("all done at %v, want %v", e.Now(), want)
	}
	if b.Busy() {
		t.Error("bus should be idle")
	}
}

func TestCounters(t *testing.T) {
	e := sim.New()
	b := New(e, testConfig())
	b.Transfer(1e9, "a", nil)
	b.Transfer(2e9, "b", nil)
	e.Run()
	c := b.Counters()
	if c.Transfers != 2 {
		t.Errorf("Transfers = %d, want 2", c.Transfers)
	}
	if c.Bytes != 3e9 {
		t.Errorf("Bytes = %v, want 3e9", float64(c.Bytes))
	}
	wantBusy := 3020 * time.Millisecond
	if d := c.BusyTime - wantBusy; d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("BusyTime = %v, want %v", c.BusyTime, wantBusy)
	}
}

func TestNilCallback(t *testing.T) {
	e := sim.New()
	b := New(e, testConfig())
	b.Transfer(100, "nil-cb", nil)
	e.Run() // must not panic
}

func TestZeroByteTransferStillPaysLatency(t *testing.T) {
	e := sim.New()
	b := New(e, testConfig())
	var doneAt time.Duration
	b.Transfer(0, "sync", func() { doneAt = e.Now() })
	e.Run()
	if doneAt != 10*time.Millisecond {
		t.Errorf("zero-byte transfer done at %v, want 10ms", doneAt)
	}
}

// Property: completion time of back-to-back transfers equals the sum of
// their individual service times, regardless of issue pattern.
func TestSerializationProperty(t *testing.T) {
	f := func(sizesKB []uint16) bool {
		e := sim.New()
		b := New(e, testConfig())
		var total time.Duration
		for i, kb := range sizesKB {
			n := units.Bytes(kb) * 1024
			total += b.TransferTime(n)
			b.Transfer(n, "t", nil)
			_ = i
		}
		e.Run()
		diff := e.Now() - total
		if diff < 0 {
			diff = -diff
		}
		return len(sizesKB) == 0 || diff <= time.Duration(len(sizesKB))*time.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
