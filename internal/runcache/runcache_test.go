package runcache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"greengpu/internal/bus"
	"greengpu/internal/core"
	"greengpu/internal/cpusim"
	"greengpu/internal/division"
	"greengpu/internal/dvfs"
	"greengpu/internal/faultinject"
	"greengpu/internal/gpusim"
	"greengpu/internal/predict"
	"greengpu/internal/telemetry"
	"greengpu/internal/testbed"
	"greengpu/internal/units"
	"greengpu/internal/workload"
)

// fixture returns the default testbed configurations and one calibrated
// profile, the realistic inputs every fingerprint test keys on.
func fixture(t *testing.T) (gpusim.Config, cpusim.Config, bus.Config, *workload.Profile) {
	t.Helper()
	gpu, cpu, b := testbed.GeForce8800GTX(), testbed.PhenomIIX2(), testbed.PCIe()
	profiles, err := workload.Rodinia(gpu, cpu)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.ByName(profiles, "kmeans")
	if err != nil {
		t.Fatal(err)
	}
	return gpu, cpu, b, p
}

// sampleValue fabricates a fully populated value, so clone/gob tests cover
// every field that must survive the trip.
func sampleValue() Value {
	return Value{
		Result: &core.Result{
			Workload: "kmeans",
			Mode:     core.Holistic,
			Iterations: []core.IterationStats{
				{Index: 0, R: 0.3, TC: time.Second, TG: 2 * time.Second, WallTime: 2 * time.Second,
					Energy: 100, EnergyGPU: 60, EnergyCPU: 40, CoreLevel: 3, MemLevel: 2, CPULevel: 1},
				{Index: 1, R: 0.25, TC: time.Second, TG: time.Second, WallTime: time.Second,
					Energy: 80, EnergyGPU: 50, EnergyCPU: 30, CoreLevel: 4, MemLevel: 3, CPULevel: 0},
			},
			TotalTime:  3 * time.Second,
			Energy:     180,
			EnergyGPU:  110,
			EnergyCPU:  70,
			SpinTime:   time.Second / 2,
			SpinEnergy: 5,
			FinalRatio: 0.25,
			DivisionHistory: []division.Observation{
				{Iteration: 0, R: 0.3, TC: time.Second, TG: 2 * time.Second, Action: division.ActionDecrease, NewR: 0.25},
			},
			DVFSSteps: 7,
		},
		GPUPower: []float64{118.2, 120.1, 95.4},
		Predict: &predict.Outcome{
			Core: 3, Mem: 2, Verified: true,
			FullEvals: 9, Points: 36,
			Time: 3 * time.Second, Energy: 180,
			Coeffs: []float64{1, 2, 3, 4, 5, 6, 7},
		},
	}
}

func TestKeyDeterministic(t *testing.T) {
	gpu, cpu, b, p := fixture(t)
	cfg := core.DefaultConfig(core.Holistic)
	k1 := KeyOf(&gpu, &cpu, &b, p, &cfg, "")
	k2 := KeyOf(&gpu, &cpu, &b, p, &cfg, "")
	if k1 != k2 {
		t.Fatal("same inputs produced different keys")
	}
}

// TestKeySensitivity mutates every semantic dimension of the fingerprint's
// inputs and asserts each one reaches the hash. A mutation the key ignores
// would silently serve one configuration's results for another.
func TestKeySensitivity(t *testing.T) {
	gpu, cpu, b, p := fixture(t)
	base := func() core.Config { return core.DefaultConfig(core.Holistic) }
	cfg := base()
	k0 := KeyOf(&gpu, &cpu, &b, p, &cfg, "")

	mutations := []struct {
		name string
		key  func() Key
	}{
		{"variant", func() Key { c := base(); return KeyOf(&gpu, &cpu, &b, p, &c, "gpu-meter") }},
		{"mode", func() Key { c := core.DefaultConfig(core.Baseline); return KeyOf(&gpu, &cpu, &b, p, &c, "") }},
		{"iterations", func() Key { c := base(); c.Iterations = 5; return KeyOf(&gpu, &cpu, &b, p, &c, "") }},
		{"dvfs interval", func() Key { c := base(); c.DVFSInterval = time.Second; return KeyOf(&gpu, &cpu, &b, p, &c, "") }},
		{"scaler params", func() Key { c := base(); c.GPUScaler.Beta = 0.5; return KeyOf(&gpu, &cpu, &b, p, &c, "") }},
		{"fixed8", func() Key { c := base(); c.Fixed8Scaler = true; return KeyOf(&gpu, &cpu, &b, p, &c, "") }},
		{"sm scaling", func() Key { c := base(); c.SMScaling = true; return KeyOf(&gpu, &cpu, &b, p, &c, "") }},
		{"governor interval", func() Key {
			c := base()
			c.CPUGovernorInterval = 2 * time.Second
			return KeyOf(&gpu, &cpu, &b, p, &c, "")
		}},
		{"division step", func() Key { c := base(); c.Division.Step = 0.1; return KeyOf(&gpu, &cpu, &b, p, &c, "") }},
		{"safeguard", func() Key { c := base(); c.Division.Safeguard = false; return KeyOf(&gpu, &cpu, &b, p, &c, "") }},
		{"spinwait", func() Key { c := base(); c.SpinWait = false; return KeyOf(&gpu, &cpu, &b, p, &c, "") }},
		{"initial levels", func() Key {
			c := base()
			c.InitialLevels = &core.Levels{Core: 1, Mem: 1, CPU: 1}
			return KeyOf(&gpu, &cpu, &b, p, &c, "")
		}},
		{"fault plan armed", func() Key {
			c := base()
			pl := faultinject.Default(1)
			c.FaultPlan = &pl
			return KeyOf(&gpu, &cpu, &b, p, &c, "")
		}},
		{"fault plan seed", func() Key {
			c := base()
			pl := faultinject.Default(2)
			c.FaultPlan = &pl
			return KeyOf(&gpu, &cpu, &b, p, &c, "")
		}},
		{"fault plan intensity", func() Key {
			c := base()
			pl := faultinject.Default(1)
			pl.TransitionRejectRate = 0.5
			c.FaultPlan = &pl
			return KeyOf(&gpu, &cpu, &b, p, &c, "")
		}},
		{"recovery watchdog", func() Key { c := base(); c.Recovery.WatchdogK = 5; return KeyOf(&gpu, &cpu, &b, p, &c, "") }},
		{"static ratio", func() Key {
			c := core.DefaultConfig(core.FreqScaling)
			r := 0.2
			c.StaticRatio = &r
			kA := KeyOf(&gpu, &cpu, &b, p, &c, "")
			// ... and the pointed-to value matters, not just presence.
			r2 := 0.3
			c.StaticRatio = &r2
			if kA == KeyOf(&gpu, &cpu, &b, p, &c, "") {
				t.Error("static ratio value not fingerprinted")
			}
			return kA
		}},
		{"gpu config", func() Key {
			g := gpu
			g.OverlapGamma += 0.01
			c := base()
			return KeyOf(&g, &cpu, &b, p, &c, "")
		}},
		{"gpu power", func() Key {
			g := gpu
			g.Power.CoreDynamic += 1
			c := base()
			return KeyOf(&g, &cpu, &b, p, &c, "")
		}},
		{"gpu levels", func() Key {
			g := gpu
			g.CoreLevels = append([]units.Frequency(nil), g.CoreLevels...)
			g.CoreLevels[0]++
			c := base()
			return KeyOf(&g, &cpu, &b, p, &c, "")
		}},
		{"cpu config", func() Key {
			cp := cpu
			cp.Cores++
			c := base()
			return KeyOf(&gpu, &cp, &b, p, &c, "")
		}},
		{"cpu pstates", func() Key {
			cp := cpu
			cp.PStates = append([]cpusim.PState(nil), cp.PStates...)
			cp.PStates[0].Voltage += 0.01
			c := base()
			return KeyOf(&gpu, &cp, &b, p, &c, "")
		}},
		{"bus config", func() Key {
			bc := b
			bc.Latency += time.Microsecond
			c := base()
			return KeyOf(&gpu, &cpu, &bc, p, &c, "")
		}},
		{"profile", func() Key {
			p2 := *p
			p2.CPUOpsPerUnit *= 1.5
			c := base()
			return KeyOf(&gpu, &cpu, &b, &p2, &c, "")
		}},
		{"profile phases", func() Key {
			p2 := *p
			p2.Phases = append([]workload.PhaseSpec(nil), p2.Phases...)
			p2.Phases[0].OpsPerUnit++
			c := base()
			return KeyOf(&gpu, &cpu, &b, &p2, &c, "")
		}},
	}
	seen := map[Key]string{k0: "base"}
	for _, m := range mutations {
		k := m.key()
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q collides with %q", m.name, prev)
		}
		seen[k] = m.name
	}
}

func TestCacheable(t *testing.T) {
	ok := core.DefaultConfig(core.Holistic)
	if !Cacheable(&ok) {
		t.Error("default config reported non-cacheable")
	}
	cases := map[string]func(*core.Config){
		"CPUGovernor":    func(c *core.Config) { c.CPUGovernor = governorStub{} },
		"DivisionPolicy": func(c *core.Config) { c.DivisionPolicy = division.NewQilin(division.DefaultQilinConfig()) },
		"SensorFilter":   func(c *core.Config) { c.SensorFilter = func(a, b float64) (float64, float64) { return a, b } },
		"ActuatorFilter": func(c *core.Config) { c.ActuatorFilter = func(d dvfs.Decision) dvfs.Decision { return d } },
		"OnDVFS":         func(c *core.Config) { c.OnDVFS = func(time.Duration, float64, float64, dvfs.Decision) {} },
		"OnCPUGovernor":  func(c *core.Config) { c.OnCPUGovernor = func(time.Duration, float64, int) {} },
		"OnIteration":    func(c *core.Config) { c.OnIteration = func(core.IterationStats) {} },
	}
	for name, set := range cases {
		cfg := core.DefaultConfig(core.Holistic)
		set(&cfg)
		if Cacheable(&cfg) {
			t.Errorf("config with %s reported cacheable", name)
		}
	}
}

type governorStub struct{}

func (governorStub) Name() string                             { return "stub" }
func (governorStub) Next(util float64, level, levels int) int { return level }

func TestKeyOfPanicsOnNonCacheable(t *testing.T) {
	gpu, cpu, b, p := fixture(t)
	cfg := core.DefaultConfig(core.Holistic)
	cfg.OnIteration = func(core.IterationStats) {}
	defer func() {
		if recover() == nil {
			t.Error("KeyOf accepted a non-cacheable configuration")
		}
	}()
	KeyOf(&gpu, &cpu, &b, p, &cfg, "")
}

// TestSingleFlight hammers one key from many goroutines and asserts exactly
// one underlying computation ran, with every caller receiving its result.
// Run under -race this also proves the entry lifecycle is data-race free.
func TestSingleFlight(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var key Key
	key[0] = 7

	const goroutines = 64
	var computes atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{}, goroutines)

	var wg sync.WaitGroup
	results := make([]Value, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			v, err := c.Do(key, func() (Value, error) {
				computes.Add(1)
				<-release // hold the flight open until every goroutine has launched
				return sampleValue(), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = v
		}(i)
	}
	for i := 0; i < goroutines; i++ {
		<-started
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want exactly 1", n)
	}
	want := sampleValue()
	for i, v := range results {
		if !reflect.DeepEqual(v, want) {
			t.Fatalf("goroutine %d got a divergent value", i)
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Errorf("misses = %d, want 1", s.Misses)
	}
	if s.Hits+s.Waits != goroutines-1 {
		t.Errorf("hits (%d) + waits (%d) = %d, want %d", s.Hits, s.Waits, s.Hits+s.Waits, goroutines-1)
	}
	if s.Entries != 1 {
		t.Errorf("entries = %d, want 1", s.Entries)
	}
}

// TestStatsSub pins the per-phase delta helper cmd/experiments uses to
// report one pass of a cumulative cache: counters subtract, the entry
// count stays the receiver's (it is a level, not a flow).
func TestStatsSub(t *testing.T) {
	later := Stats{Hits: 10, DiskHits: 4, Misses: 6, Waits: 3, Corrupt: 1, Entries: 6}
	earlier := Stats{Hits: 7, DiskHits: 4, Misses: 2, Waits: 1, Entries: 2}
	want := Stats{Hits: 3, DiskHits: 0, Misses: 4, Waits: 2, Corrupt: 1, Entries: 6}
	if got := later.Sub(earlier); got != want {
		t.Errorf("Sub = %+v, want %+v", got, want)
	}
	if got := later.Sub(Stats{}); got != later {
		t.Errorf("Sub(zero) = %+v, want the receiver unchanged", got)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var key Key
	boom := errors.New("boom")
	if _, err := c.Do(key, func() (Value, error) { return Value{}, boom }); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	// The failed entry must not stick: the next Do retries and succeeds.
	v, err := c.Do(key, func() (Value, error) { return sampleValue(), nil })
	if err != nil {
		t.Fatalf("retry after error failed: %v", err)
	}
	if v.Result == nil {
		t.Fatal("retry returned empty value")
	}
	if s := c.Stats(); s.Entries != 1 || s.Misses != 2 {
		t.Errorf("stats after retry = %+v, want 1 entry, 2 misses", s)
	}
}

// TestResultImmutability pins the frozen-result contract: what Do returns
// is a private deep copy, so mutating it cannot corrupt what later callers
// see.
func TestResultImmutability(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var key Key
	first, err := c.Do(key, func() (Value, error) { return sampleValue(), nil })
	if err != nil {
		t.Fatal(err)
	}
	// Vandalize everything reachable from the returned value.
	first.Result.Energy = -1
	first.Result.Iterations[0].R = 99
	first.Result.DivisionHistory[0].NewR = 99
	first.GPUPower[0] = -1
	first.Predict.Core = 99
	first.Predict.Coeffs[0] = -1

	second, err := c.Do(key, func() (Value, error) {
		t.Fatal("hit recomputed")
		return Value{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second, sampleValue()) {
		t.Fatal("cached value was corrupted through a returned copy")
	}
}

// TestCloneCoversResultFields fails when core.Result (or the value struct)
// grows a field, as a reminder to extend Value.clone — a shallow-copied
// new slice field would break the immutability contract silently.
func TestCloneCoversResultFields(t *testing.T) {
	if n := reflect.TypeOf(core.Result{}).NumField(); n != 14 {
		t.Errorf("core.Result has %d fields, clone was written for 14 — update Value.clone and this count", n)
	}
	if n := reflect.TypeOf(Value{}).NumField(); n != 3 {
		t.Errorf("Value has %d fields, clone was written for 3 — update Value.clone and this count", n)
	}
	if n := reflect.TypeOf(predict.Outcome{}).NumField(); n != 9 {
		t.Errorf("predict.Outcome has %d fields, clone was written for 9 — update Value.clone and this count", n)
	}
}

// TestFingerprintCoversConfigFields fails when any fingerprinted struct
// grows a field the encoder does not know about: an unencoded field means
// two semantically different configurations could share a key. Update the
// encoder AND bump SchemaVersion, then adjust the counts.
func TestFingerprintCoversConfigFields(t *testing.T) {
	counts := []struct {
		name string
		typ  reflect.Type
		want int
	}{
		{"gpusim.Config", reflect.TypeOf(gpusim.Config{}), 9},
		{"gpusim.PowerParams", reflect.TypeOf(gpusim.PowerParams{}), 6},
		{"cpusim.Config", reflect.TypeOf(cpusim.Config{}), 5},
		{"cpusim.PowerParams", reflect.TypeOf(cpusim.PowerParams{}), 3},
		{"cpusim.PState", reflect.TypeOf(cpusim.PState{}), 2},
		{"bus.Config", reflect.TypeOf(bus.Config{}), 3},
		{"workload.Profile", reflect.TypeOf(workload.Profile{}), 9},
		{"workload.PhaseSpec", reflect.TypeOf(workload.PhaseSpec{}), 5},
		{"core.Config", reflect.TypeOf(core.Config{}), 20},
		{"core.Levels", reflect.TypeOf(core.Levels{}), 3},
		{"core.RecoveryConfig", reflect.TypeOf(core.RecoveryConfig{}), 3},
		{"faultinject.Plan", reflect.TypeOf(faultinject.Plan{}), 15},
		{"division.Config", reflect.TypeOf(division.Config{}), 5},
		{"dvfs.Params", reflect.TypeOf(dvfs.Params{}), 4},
	}
	for _, c := range counts {
		if n := c.typ.NumField(); n != c.want {
			t.Errorf("%s has %d fields, the canonical encoding was written for %d — extend the encoder, bump SchemaVersion, update this count",
				c.name, n, c.want)
		}
	}
}

func TestDiskLayerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var key Key
	key[1] = 3

	c1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want, err := c1.Do(key, func() (Value, error) { return sampleValue(), nil })
	if err != nil {
		t.Fatal(err)
	}

	// A second cache over the same directory — a fresh process — must
	// serve the point from disk without recomputing.
	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Do(key, func() (Value, error) {
		t.Fatal("disk entry recomputed")
		return Value{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("disk round trip altered the value")
	}
	s := c2.Stats()
	if s.DiskHits != 1 || s.Misses != 0 {
		t.Errorf("stats = %+v, want 1 disk hit and no misses", s)
	}
}

func TestDiskLayerVersionStamp(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var key Key
	if _, err := c.Do(key, func() (Value, error) { return sampleValue(), nil }); err != nil {
		t.Fatal(err)
	}
	// Entries must live under the version-stamped subdirectory, so a
	// schema bump orphans them instead of serving stale physics.
	versioned := filepath.Join(dir, fmt.Sprintf("v%d", SchemaVersion))
	files, err := os.ReadDir(versioned)
	if err != nil {
		t.Fatalf("version-stamped dir missing: %v", err)
	}
	gobs := 0
	for _, f := range files {
		if filepath.Ext(f.Name()) == ".gob" {
			gobs++
		}
	}
	if gobs != 1 {
		t.Fatalf("%d gob entries under %s, want 1", gobs, versioned)
	}
	// An entry filed under a different (stale) version is invisible.
	stale := filepath.Join(dir, fmt.Sprintf("v%d", SchemaVersion+1))
	if err := os.MkdirAll(stale, 0o755); err != nil {
		t.Fatal(err)
	}
	var other Key
	other[2] = 9
	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	if _, err := c2.Do(other, func() (Value, error) { ran = true; return sampleValue(), nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("unknown key served without computing")
	}
}

func TestDiskLayerCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var key Key
	key[3] = 1
	// Plant a truncated file where the entry would live.
	if err := os.WriteFile(c.path(key), []byte("not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	ran := false
	v, err := c.Do(key, func() (Value, error) { ran = true; return sampleValue(), nil })
	if err != nil {
		t.Fatal(err)
	}
	if !ran || v.Result == nil {
		t.Fatal("corrupt entry served instead of recomputed")
	}
	// The corrupt bytes must be quarantined, not destroyed, and counted.
	if _, err := os.Stat(c.path(key) + ".bad"); err != nil {
		t.Errorf("corrupt entry not quarantined: %v", err)
	}
	if got := c.Stats().Corrupt; got != 1 {
		t.Errorf("Stats.Corrupt = %d, want 1", got)
	}
	// The recomputed value must have replaced the corrupt file.
	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Do(key, func() (Value, error) {
		t.Fatal("repaired entry recomputed")
		return Value{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleValue()) {
		t.Fatal("repaired entry does not round-trip")
	}
}

// TestDiskLayerTruncatedEntry simulates the real failure: a process was
// killed mid-history and left a half-written (here: half of a previously
// valid) entry. A fresh cache must recover transparently — the run
// succeeds, the stump is quarantined to .bad, and the corruption counter
// (per-instance Stats and the process-wide telemetry metric) increments.
func TestDiskLayerTruncatedEntry(t *testing.T) {
	const metric = "greengpu_runcache_corrupt_total"
	telemetry.Enable()
	t.Cleanup(telemetry.Disable)
	before := telemetry.Default.CounterValue(metric)

	dir := t.TempDir()
	c1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var key Key
	key[5] = 7
	if _, err := c1.Do(key, func() (Value, error) { return sampleValue(), nil }); err != nil {
		t.Fatal(err)
	}

	// Truncate the valid on-disk entry to half its length.
	path := c1.path(key)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	got, err := c2.Do(key, func() (Value, error) { ran = true; return sampleValue(), nil })
	if err != nil {
		t.Fatalf("run failed on a truncated cache entry: %v", err)
	}
	if !ran {
		t.Fatal("truncated entry was served instead of recomputed")
	}
	if !reflect.DeepEqual(got, sampleValue()) {
		t.Fatal("recovered value is wrong")
	}
	if _, err := os.Stat(path + ".bad"); err != nil {
		t.Errorf("truncated entry not quarantined: %v", err)
	}
	if s := c2.Stats(); s.Corrupt != 1 {
		t.Errorf("Stats.Corrupt = %d, want 1", s.Corrupt)
	}
	if after := telemetry.Default.CounterValue(metric); after != before+1 {
		t.Errorf("%s went %d → %d, want +1", metric, before, after)
	}
	// The repaired entry must serve cleanly from disk again.
	c3, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c3.Do(key, func() (Value, error) {
		t.Fatal("repaired entry recomputed")
		return Value{}, nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxEntriesEviction(t *testing.T) {
	c, err := New(Options{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(i byte) Key { var k Key; k[0] = i; return k }
	for i := byte(1); i <= 3; i++ {
		if _, err := c.Do(mk(i), func() (Value, error) { return sampleValue(), nil }); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Entries != 2 {
		t.Fatalf("entries = %d, want bound of 2", s.Entries)
	}
	// Key 1 was least recently used and must have been evicted.
	recomputed := false
	if _, err := c.Do(mk(1), func() (Value, error) { recomputed = true; return sampleValue(), nil }); err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Error("evicted key served from memory")
	}
	// Recomputing 1 re-filled the bound, displacing 2 (now the LRU entry);
	// 3 must still be resident.
	if _, err := c.Do(mk(3), func() (Value, error) {
		t.Error("key 3 evicted despite being within the bound")
		return sampleValue(), nil
	}); err != nil {
		t.Fatal(err)
	}
}

// gobLayerSize sums the on-disk gob entries under the cache's versioned
// directory (lock and quarantine files don't count against the cap).
func gobLayerSize(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && filepath.Ext(path) == ".gob" {
			total += info.Size()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}

// TestMaxDiskBytesEviction fills the disk layer well past its byte cap and
// verifies the layer shrinks back under it, keeping the newest entry.
func TestMaxDiskBytesEviction(t *testing.T) {
	probeDir := t.TempDir()
	probe, err := New(Options{Dir: probeDir})
	if err != nil {
		t.Fatal(err)
	}
	var probeKey Key
	if _, err := probe.Do(probeKey, func() (Value, error) { return sampleValue(), nil }); err != nil {
		t.Fatal(err)
	}
	sz := gobLayerSize(t, probeDir)
	if sz == 0 {
		t.Fatal("probe entry not stored")
	}

	dir := t.TempDir()
	cap := 2*sz + sz/2 // room for two entries, not three
	c, err := New(Options{Dir: dir, MaxDiskBytes: cap})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(i byte) Key { var k Key; k[0] = i; return k }
	const n = 5
	for i := byte(0); i < n; i++ {
		if _, err := c.Do(mk(i), func() (Value, error) { return sampleValue(), nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := gobLayerSize(t, dir); got > cap {
		t.Errorf("disk layer holds %d bytes, cap is %d", got, cap)
	}

	// The most recently stored entry must have survived every sweep: a
	// fresh cache over the directory serves it without recomputing.
	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Do(mk(n-1), func() (Value, error) {
		t.Error("newest entry was evicted")
		return sampleValue(), nil
	}); err != nil {
		t.Fatal(err)
	}
	// And at least one older entry must be gone.
	recomputed := false
	for i := byte(0); i < n-1 && !recomputed; i++ {
		if _, err := c2.Do(mk(i), func() (Value, error) {
			recomputed = true
			return sampleValue(), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !recomputed {
		t.Error("no entry was evicted despite exceeding the cap")
	}
}

// TestMaxDiskBytesSingleOversizedEntry pins the degenerate case: an entry
// larger than the whole budget cannot stay on disk either.
func TestMaxDiskBytesSingleOversizedEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir, MaxDiskBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	var key Key
	if _, err := c.Do(key, func() (Value, error) { return sampleValue(), nil }); err != nil {
		t.Fatal(err)
	}
	if got := gobLayerSize(t, dir); got > 1 {
		t.Errorf("disk layer holds %d bytes under a 1-byte cap", got)
	}
}

func TestNegativeMaxDiskBytes(t *testing.T) {
	if _, err := New(Options{MaxDiskBytes: -1}); err == nil {
		t.Error("negative MaxDiskBytes accepted")
	}
}

// TestDiskLockSingleFlightAcrossCaches verifies the per-key file lock
// extends single flight across cache instances sharing a directory — the
// in-process stand-in for two concurrent processes.
func TestDiskLockSingleFlightAcrossCaches(t *testing.T) {
	dir := t.TempDir()
	var key Key
	key[0] = 9
	var computes atomic.Int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 2; i++ {
		c, err := New(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c *Cache) {
			defer wg.Done()
			<-start
			if _, err := c.Do(key, func() (Value, error) {
				computes.Add(1)
				time.Sleep(50 * time.Millisecond)
				return sampleValue(), nil
			}); err != nil {
				t.Error(err)
			}
		}(c)
	}
	close(start)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("point computed %d times across caches sharing a directory, want 1", n)
	}
}
