//go:build !unix

package runcache

import "errors"

// flockPath reports that advisory file locking is unavailable; callers
// fall back to computing without cross-process single flight.
func flockPath(path string) (func(), error) {
	return nil, errors.New("runcache: file locking unsupported on this platform")
}
