//go:build unix

package runcache

import (
	"os"
	"syscall"
)

// flockPath takes a blocking exclusive advisory lock on path, creating the
// file if needed, and returns the release function. Lock files are tiny
// and harmless; they are left in place (removing them would race other
// lockers).
func flockPath(path string) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
