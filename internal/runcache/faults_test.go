package runcache

import (
	"encoding/gob"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"greengpu/internal/iofault"
)

// TestConcurrentQuarantineSingleFlight races two goroutines into Do on a
// key whose disk entry is corrupt: the quarantine must happen on the
// leader's path and the recompute must run exactly once — the follower
// single-flights onto it instead of double-quarantining or
// double-computing.
func TestConcurrentQuarantineSingleFlight(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var key Key
	key[7] = 9
	if err := os.WriteFile(c.path(key), []byte("definitely not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	var computes atomic.Int64
	var start, done sync.WaitGroup
	start.Add(1)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		i := i
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait()
			_, errs[i] = c.Do(key, func() (Value, error) {
				computes.Add(1)
				return sampleValue(), nil
			})
		}()
	}
	start.Done()
	done.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("corrupt entry recomputed %d times, want exactly 1 (single-flight)", n)
	}
	st := c.Stats()
	if st.Corrupt != 1 {
		t.Fatalf("Stats.Corrupt = %d, want 1", st.Corrupt)
	}
	// The follower either blocked on the leader (a wait) or arrived after
	// it finished (a hit); both are single-flight, a second compute is not.
	if st.Waits+st.Hits != 1 {
		t.Fatalf("Stats.Waits = %d, Stats.Hits = %d; the follower must wait or hit exactly once",
			st.Waits, st.Hits)
	}
	if _, err := os.Stat(c.path(key) + ".bad"); err != nil {
		t.Fatalf("corrupt entry not quarantined: %v", err)
	}
	// The re-stored entry under the final name must be whole.
	assertNoPartialEntries(t, c.dir)
}

// assertNoPartialEntries fails if any *.gob under the final name fails to
// gob-decode, or if any tmp-* staging file was left behind.
func assertNoPartialEntries(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		name := de.Name()
		if strings.HasPrefix(name, "tmp-") {
			t.Errorf("staging file left behind: %s", name)
			continue
		}
		if !strings.HasSuffix(name, ".gob") {
			continue // .bad quarantines and .lock files are expected
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		var v Value
		err = gob.NewDecoder(f).Decode(&v)
		f.Close()
		if err != nil {
			t.Errorf("partial or corrupt entry under final name %s: %v", name, err)
		}
	}
}

// TestInjectedFaultsLeaveNoPartialEntry runs the disk layer under every
// iofault class at once and pins the contract the journal-equipped daemon
// leans on: whatever the storage does, an entry under its final name is
// always whole — failures cost recomputes, never corruption.
func TestInjectedFaultsLeaveNoPartialEntry(t *testing.T) {
	dir := t.TempDir()
	fsys := iofault.Wrap(iofault.Disk, iofault.Plan{
		Seed:            11,
		WriteErrRate:    0.1,
		ShortWriteRate:  0.1,
		SyncErrRate:     0.1,
		ReadCorruptRate: 0.1,
		RenameErrRate:   0.1,
	}).(*iofault.FaultFS)
	c, err := New(Options{Dir: dir, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 40
	for round := 0; round < 2; round++ {
		// Round 0 stores under injected faults; round 1 re-reads the same
		// keys through a fresh cache over the same faulty FS, exercising
		// load corruption and quarantine, then re-stores the casualties.
		if round == 1 {
			if c, err = New(Options{Dir: dir, FS: fsys}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < keys; i++ {
			var key Key
			key[0] = byte(i)
			key[1] = byte(i >> 8)
			if _, err := c.Do(key, func() (Value, error) { return sampleValue(), nil }); err != nil {
				t.Fatalf("round %d key %d: %v", round, i, err)
			}
		}
		assertNoPartialEntries(t, c.dir)
	}
	if fsys.Counts().Total() == 0 {
		t.Fatal("fault plan injected nothing; test is vacuous")
	}
	// With the faults gone, every surviving entry must serve a clean hit
	// and every casualty recompute — no error may escape to the caller.
	clean, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		var key Key
		key[0] = byte(i)
		key[1] = byte(i >> 8)
		if _, err := clean.Do(key, func() (Value, error) { return sampleValue(), nil }); err != nil {
			t.Fatalf("clean reread key %d: %v", i, err)
		}
	}
	assertNoPartialEntries(t, clean.dir)
}

// TestFaultFSStoreFailureRecomputes pins the degenerate end of the scale:
// with every write failing, the cache still serves correct values (from
// memory) and the disk layer simply stays empty.
func TestFaultFSStoreFailureRecomputes(t *testing.T) {
	dir := t.TempDir()
	fsys := iofault.Wrap(iofault.Disk, iofault.Plan{Seed: 5, WriteErrRate: 1})
	c, err := New(Options{Dir: dir, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	var key Key
	key[2] = 3
	want := sampleValue()
	got, err := c.Do(key, func() (Value, error) { return want, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got.Result == nil || got.Result.Workload != want.Result.Workload {
		t.Fatalf("value corrupted by store failure: %+v", got.Result)
	}
	assertNoPartialEntries(t, c.dir)
	// A fresh cache finds nothing on disk and recomputes.
	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	if _, err := c2.Do(key, func() (Value, error) { ran = true; return want, nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("rate-1 write failures still produced a disk entry")
	}
}

// TestOptionsFSNilIsDisk pins that the zero Options keep the exact
// pre-seam behavior: a nil FS is the real disk.
func TestOptionsFSNilIsDisk(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var key Key
	key[5] = 1
	if _, err := c.Do(key, func() (Value, error) { return sampleValue(), nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(c.path(key)); err != nil {
		t.Fatalf("nil-FS cache did not write through the real disk: %v", err)
	}
}
