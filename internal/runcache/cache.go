package runcache

import (
	"container/list"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"greengpu/internal/core"
	"greengpu/internal/division"
	"greengpu/internal/iofault"
	"greengpu/internal/predict"
	"greengpu/internal/telemetry"
)

// Package metrics (see docs/OBSERVABILITY.md). They mirror the per-Cache
// Stats counters process-wide: Stats stays the exact per-instance view the
// stderr summary prints, the metrics aggregate across every cache in the
// process and feed the flight recorder's hit/miss stamps. No-ops unless
// telemetry is enabled.
var (
	metricHits = telemetry.NewCounter(telemetry.MetricRunCacheHits,
		"Simulation points served from the in-memory cache.")
	metricDiskHits = telemetry.NewCounter("greengpu_runcache_disk_hits_total",
		"Simulation points loaded from the disk layer.")
	metricMisses = telemetry.NewCounter(telemetry.MetricRunCacheMisses,
		"Simulation points actually simulated (cache misses).")
	metricWaits = telemetry.NewCounter("greengpu_runcache_single_flight_waits_total",
		"Workers that blocked on another worker's in-flight computation of the same point.")
	metricEntries = telemetry.NewGauge("greengpu_runcache_entries",
		"Completed entries currently held in memory (last cache to finish an entry wins).")
	metricCorrupt = telemetry.NewCounter("greengpu_runcache_corrupt_total",
		"Corrupt, truncated or wrong-schema disk entries quarantined and recomputed.")
	metricDiskEvictions = telemetry.NewCounter("greengpu_runcache_disk_evictions_total",
		"Disk entries removed to keep the gob layer under MaxDiskBytes.")
)

// Value is what the cache stores per simulation point: the framework result
// plus any machine-level observations the point's flavour captured.
type Value struct {
	Result *core.Result
	// GPUPower is the per-sample GPU card power trace in watts, recorded
	// when the run flavour had meter 2 attached (KeyOf variant
	// distinguishes metered from plain runs). Nil for plain runs.
	GPUPower []float64
	// Predict is the memoized outcome of an analytic sweet-spot search
	// (internal/predict) over a whole ladder, stored under a "predict:"
	// KeyOf variant. Nil for per-point entries. The search's anchor and
	// verification evaluations flow through the ordinary per-point cache,
	// so a warm Predict entry replays the same outcome the cold search
	// computed — including its deterministic FullEvals request count.
	Predict *predict.Outcome
}

// clone deep-copies the value. Cached results are immutable by contract:
// every Do returns a private copy, so no caller can corrupt an entry other
// callers (or a warm disk cache) will observe. TestResultImmutability pins
// this; keep it in sync with the fields of core.Result.
func (v Value) clone() Value {
	out := Value{GPUPower: append([]float64(nil), v.GPUPower...)}
	if v.Result != nil {
		r := *v.Result
		r.Iterations = append([]core.IterationStats(nil), v.Result.Iterations...)
		r.DivisionHistory = append([]division.Observation(nil), v.Result.DivisionHistory...)
		out.Result = &r
	}
	if v.Predict != nil {
		p := *v.Predict
		p.Coeffs = append([]float64(nil), v.Predict.Coeffs...)
		out.Predict = &p
	}
	return out
}

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	// Hits served from the in-memory map; DiskHits additionally counts
	// entries loaded from the disk layer (a disk hit is not a Hit: the
	// point was not in memory).
	Hits     uint64 `json:"hits"`
	DiskHits uint64 `json:"disk_hits"`
	// Misses are points actually simulated.
	Misses uint64 `json:"misses"`
	// Waits counts single-flight blocks: a worker (or a concurrent daemon
	// client) needed a point another was already computing and waited for
	// it instead of duplicating the run.
	Waits uint64 `json:"waits"`
	// Corrupt counts disk entries that failed to decode and were
	// quarantined (renamed to .bad) so the point recomputed cleanly.
	Corrupt uint64 `json:"corrupt"`
	// Entries is the current in-memory entry count.
	Entries int `json:"entries"`
}

// Sub returns the counter deltas accumulated since an earlier snapshot of
// the same cache. Entries, a level not a counter, carries the receiver's
// current value unchanged.
func (s Stats) Sub(earlier Stats) Stats {
	return Stats{
		Hits:     s.Hits - earlier.Hits,
		DiskHits: s.DiskHits - earlier.DiskHits,
		Misses:   s.Misses - earlier.Misses,
		Waits:    s.Waits - earlier.Waits,
		Corrupt:  s.Corrupt - earlier.Corrupt,
		Entries:  s.Entries,
	}
}

// String renders the counters for the cmd/experiments stderr summary. The
// corruption count only appears when non-zero — it should be alarming, not
// ambient.
func (s Stats) String() string {
	out := fmt.Sprintf("run cache: %d hits (%d from disk), %d misses, %d single-flight waits, %d entries",
		s.Hits, s.DiskHits, s.Misses, s.Waits, s.Entries)
	if s.Corrupt > 0 {
		out += fmt.Sprintf(", %d corrupt entries quarantined", s.Corrupt)
	}
	return out
}

// Options configures a Cache.
type Options struct {
	// Dir, when non-empty, enables the on-disk layer: completed entries
	// are gob-encoded under Dir/v<SchemaVersion>/ and re-runs of the
	// same binary pick them up across processes. Entries written by
	// other schema versions live in sibling directories and are never
	// consulted.
	Dir string
	// MaxEntries bounds the in-memory map; 0 means unbounded. When the
	// bound is hit the least-recently-used completed entry is evicted
	// (the disk layer, if any, still holds it).
	MaxEntries int
	// MaxDiskBytes bounds the on-disk gob layer's total size in bytes; 0
	// means unbounded. After each store, oldest entries (by modification
	// time) are removed until the layer fits the budget again — the
	// freshest points survive, the stalest recompute.
	MaxDiskBytes int64
	// FS overrides the filesystem under the disk layer; nil selects the
	// real disk. Fault-injection tests thread an iofault.FaultFS here to
	// prove the quarantine-and-recompute path holds under ENOSPC, short
	// writes, fsync failures, read corruption and rename failures. (The
	// cross-process advisory locks stay on the real OS: they are a
	// liveness optimization, not a correctness seam.)
	FS iofault.FS
}

// Cache memoizes simulation points by fingerprint. It is safe for
// concurrent use by any number of goroutines.
type Cache struct {
	dir     string // versioned disk root, "" when disabled
	fsys    iofault.FS
	max     int
	maxDisk int64

	// diskMu serializes this process's eviction sweeps; cross-process
	// races are benign (a missing victim is skipped).
	diskMu sync.Mutex

	mu      sync.Mutex
	entries map[Key]*entry
	lru     *list.List // front = most recently used; holds *entry

	hits     atomic.Uint64
	diskHits atomic.Uint64
	misses   atomic.Uint64
	waits    atomic.Uint64
	corrupt  atomic.Uint64
}

// entry is one key's slot. done is closed exactly once, when val/err are
// final; waiters block on it (single-flight).
type entry struct {
	key  Key
	done chan struct{}
	elem *list.Element
	val  Value
	err  error
}

// New creates a cache. With Options.Dir set, the version-stamped directory
// is created eagerly so configuration errors surface at startup, not on
// the first store.
func New(o Options) (*Cache, error) {
	if o.MaxEntries < 0 {
		return nil, fmt.Errorf("runcache: MaxEntries must be non-negative")
	}
	if o.MaxDiskBytes < 0 {
		return nil, fmt.Errorf("runcache: MaxDiskBytes must be non-negative")
	}
	c := &Cache{
		fsys:    o.FS,
		max:     o.MaxEntries,
		maxDisk: o.MaxDiskBytes,
		entries: make(map[Key]*entry),
		lru:     list.New(),
	}
	if c.fsys == nil {
		c.fsys = iofault.Disk
	}
	if o.Dir != "" {
		c.dir = filepath.Join(o.Dir, fmt.Sprintf("v%d", SchemaVersion))
		if err := c.fsys.MkdirAll(c.dir, 0o755); err != nil {
			return nil, fmt.Errorf("runcache: %w", err)
		}
	}
	return c, nil
}

// Stats returns a snapshot of the effectiveness counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return Stats{
		Hits:     c.hits.Load(),
		DiskHits: c.diskHits.Load(),
		Misses:   c.misses.Load(),
		Waits:    c.waits.Load(),
		Corrupt:  c.corrupt.Load(),
		Entries:  n,
	}
}

// Do returns the value for key, computing it at most once per process no
// matter how many goroutines ask concurrently: the first caller runs
// compute (after consulting the disk layer) while the rest block until it
// finishes. The returned Value is a private deep copy — callers own it and
// may mutate it freely.
//
// compute errors are returned to the leader and every waiter, but are not
// cached: the next Do for the key retries.
func (c *Cache) Do(key Key, compute func() (Value, error)) (Value, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.done:
			// Completed entry: a pure in-memory hit.
			c.lru.MoveToFront(e.elem)
			c.mu.Unlock()
			c.hits.Add(1)
			metricHits.Inc()
			return e.val.clone(), e.err
		default:
			// In flight: wait for the leader.
			c.mu.Unlock()
			c.waits.Add(1)
			metricWaits.Inc()
			<-e.done
			return e.val.clone(), e.err
		}
	}
	e := &entry{key: key, done: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.mu.Unlock()

	// Leader path. A compute panic must not strand waiters on a never-
	// closed channel: record it as the outcome, then re-panic.
	completed := false
	defer func() {
		if !completed {
			c.finish(e, Value{}, fmt.Errorf("runcache: compute panicked"), false)
		}
	}()

	if v, ok := c.load(key); ok {
		c.diskHits.Add(1)
		c.hits.Add(1)
		metricDiskHits.Inc()
		metricHits.Inc()
		completed = true
		c.finish(e, v, nil, true)
		return v.clone(), nil
	}

	// Cross-process single flight: with a disk layer, hold the key's
	// advisory file lock over compute+store so concurrent processes
	// sharing the directory simulate the point once. Best effort — if the
	// platform or filesystem can't lock, compute anyway (the atomic store
	// keeps correctness; only the work is duplicated).
	if c.dir != "" {
		if unlock, lerr := flockPath(c.path(key) + ".lock"); lerr == nil {
			defer unlock()
			// Double-checked load: another process may have finished the
			// point while this one waited on its lock.
			if v, ok := c.load(key); ok {
				c.diskHits.Add(1)
				c.hits.Add(1)
				metricDiskHits.Inc()
				metricHits.Inc()
				completed = true
				c.finish(e, v, nil, true)
				return v.clone(), nil
			}
		}
	}

	v, err := compute()
	c.misses.Add(1)
	metricMisses.Inc()
	completed = true
	c.finish(e, v, err, err == nil)
	if err != nil {
		return Value{}, err
	}
	if c.dir != "" {
		c.store(key, v) // best effort; the run already succeeded
	}
	return v.clone(), nil
}

// finish publishes the entry's outcome. Failed computations are removed so
// later calls retry; successful ones stay and may trigger LRU eviction.
func (c *Cache) finish(e *entry, v Value, err error, keep bool) {
	e.val, e.err = v, err
	c.mu.Lock()
	if !keep {
		delete(c.entries, e.key)
		c.lru.Remove(e.elem)
	} else if c.max > 0 {
		for len(c.entries) > c.max {
			victim := c.oldestCompleted(e)
			if victim == nil {
				break
			}
			delete(c.entries, victim.key)
			c.lru.Remove(victim.elem)
		}
	}
	metricEntries.Set(float64(len(c.entries)))
	c.mu.Unlock()
	close(e.done)
}

// oldestCompleted returns the least-recently-used evictable entry: completed
// (waiters hold in-flight entries' channels) and not the one being
// finished. Called with c.mu held.
func (c *Cache) oldestCompleted(finishing *entry) *entry {
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		if e == finishing {
			continue
		}
		select {
		case <-e.done:
			return e
		default:
		}
	}
	return nil
}

// path maps a key to its disk file.
func (c *Cache) path(key Key) string {
	return filepath.Join(c.dir, hex.EncodeToString(key[:])+".gob")
}

// load reads one entry from the disk layer. Undecodable files — truncated
// writes from a killed process, bit rot, a foreign gob schema — are
// treated as misses and quarantined so the point recomputes cleanly: the
// run must survive a corrupt cache, and the evidence must survive the run.
func (c *Cache) load(key Key) (Value, bool) {
	if c.dir == "" {
		return Value{}, false
	}
	f, err := c.fsys.Open(c.path(key))
	if err != nil {
		return Value{}, false
	}
	defer f.Close()
	var v Value
	if err := gob.NewDecoder(f).Decode(&v); err != nil {
		c.quarantine(key)
		return Value{}, false
	}
	return v, true
}

// quarantine moves a corrupt disk entry aside (renamed to <key>.gob.bad,
// replacing any previous quarantine of the same key) so it is never
// consulted again but stays available for a postmortem. If the rename
// fails the file is removed outright — recovery must not depend on it.
func (c *Cache) quarantine(key Key) {
	c.corrupt.Add(1)
	metricCorrupt.Inc()
	p := c.path(key)
	if err := c.fsys.Rename(p, p+".bad"); err != nil {
		c.fsys.Remove(p)
	}
}

// store writes one entry to the disk layer atomically (temp file + fsync
// + rename), so concurrent processes and crashes can never expose a
// half-written entry under the final name. Every step is best effort — a
// failed store just means a recompute later — but a failure at any step
// removes the temp file: injected fault sweeps assert the layer never
// accumulates partial entries.
func (c *Cache) store(key Key, v Value) {
	f, err := c.fsys.CreateTemp(c.dir, "tmp-*.gob")
	if err != nil {
		return
	}
	tmp := f.Name()
	if err := gob.NewEncoder(f).Encode(v); err != nil {
		f.Close()
		c.fsys.Remove(tmp)
		return
	}
	// Sync before the rename: otherwise a power cut can leave the final
	// name pointing at a file whose blocks never landed — exactly the
	// quarantine churn the journal-equipped daemon must not self-inflict.
	if err := f.Sync(); err != nil {
		f.Close()
		c.fsys.Remove(tmp)
		return
	}
	if err := f.Close(); err != nil {
		c.fsys.Remove(tmp)
		return
	}
	if err := c.fsys.Rename(tmp, c.path(key)); err != nil {
		c.fsys.Remove(tmp)
		return
	}
	if c.maxDisk > 0 {
		c.enforceDiskCap(c.path(key))
	}
}

// enforceDiskCap shrinks the gob layer back under MaxDiskBytes, removing
// entries oldest-modification-first. The just-written file (keep) is
// spared unless it alone exceeds the whole budget, in which case it is
// removed too — a cap must bound the directory, not merely trim it.
func (c *Cache) enforceDiskCap(keep string) {
	c.diskMu.Lock()
	defer c.diskMu.Unlock()
	ents, err := c.fsys.ReadDir(c.dir)
	if err != nil {
		return
	}
	type file struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []file
	var total int64
	for _, de := range ents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".gob") {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with another process's eviction
		}
		f := file{filepath.Join(c.dir, de.Name()), info.Size(), info.ModTime()}
		files = append(files, f)
		total += f.size
	}
	if total <= c.maxDisk {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for _, f := range files {
		if total <= c.maxDisk {
			return
		}
		if f.path == keep {
			continue
		}
		if c.fsys.Remove(f.path) == nil {
			metricDiskEvictions.Inc()
			total -= f.size
		}
	}
	if total > c.maxDisk {
		if c.fsys.Remove(keep) == nil {
			metricDiskEvictions.Inc()
		}
	}
}
