// Package runcache is a content-addressed, concurrency-safe memoization
// layer for simulation points.
//
// Every GreenGPU figure and table is a deterministic function of the device
// configurations, the calibrated workload profile, and the framework
// configuration: running the same point twice produces bit-identical
// results. The experiment suite exploits neither fact on its own — the
// per-workload best-performance baseline alone is recomputed independently
// by Fig. 6, Fig. 8, two ablations, and three extension studies. This
// package closes that gap:
//
//   - A Key is a SHA-256 fingerprint over a canonical binary encoding of
//     (gpusim.Config, cpusim.Config, bus.Config, workload.Profile,
//     core.Config). Equal inputs fingerprint equally on every platform and
//     process; any semantic difference reaches the hash through an
//     explicitly encoded field.
//   - Cache.Do deduplicates concurrent requests for the same key
//     (single-flight): when several parallel.Map workers need the same
//     point, exactly one runs the simulation and the rest block on it.
//   - An optional on-disk layer (gob files under a version-stamped
//     directory) makes cmd/experiments re-runs incremental across
//     processes.
//
// # Canonical-encoding rules
//
// The fingerprint must be stable (same inputs → same key, forever, on every
// platform) and collision-free across semantically different inputs. The
// encoding therefore follows fixed rules:
//
//   - Every field is written in a fixed order with a leading tag byte, so
//     adjacent fields can never alias (a "" string followed by "ab" is
//     distinct from "a" followed by "b").
//   - Strings are length-prefixed. Slices are length-prefixed. Integers are
//     written as big-endian two's-complement 64-bit values. Floats are
//     written as their IEEE-754 bit patterns (math.Float64bits), so -0.0
//     and 0.0, or two NaN payloads, fingerprint differently — bitwise
//     identity is exactly the simulator's reproducibility contract.
//   - Optional pointer fields (InitialLevels, StaticRatio) encode a
//     presence byte followed by the pointed-to value.
//   - The encoding begins with schemaTag, which includes SchemaVersion.
//     Bump SchemaVersion whenever the simulation model, the calibration,
//     or this encoding changes meaning: old fingerprints (and the disk
//     entries filed under them) become unreachable rather than stale.
//
// Configurations carrying functions or interfaces (observers, filters,
// custom division policies or CPU governors) have behaviour the fingerprint
// cannot see; Cacheable reports false for them and callers must bypass the
// cache.
package runcache

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"
	"time"

	"greengpu/internal/bus"
	"greengpu/internal/core"
	"greengpu/internal/cpusim"
	"greengpu/internal/gpusim"
	"greengpu/internal/units"
	"greengpu/internal/workload"
)

// SchemaVersion stamps both the fingerprint and the on-disk layout. Bump it
// whenever simulation results for the same configuration can change: timing
// or power model edits, calibration changes, encoding changes, or new
// fields on any encoded struct. Old disk entries are then simply never
// looked up again (they live under the previous version's directory).
const SchemaVersion = 3

// Key identifies one simulation point: a SHA-256 digest of the canonical
// encoding. It is comparable and usable as a map key.
type Key [sha256.Size]byte

// Cacheable reports whether a framework configuration is fully captured by
// the fingerprint. Configurations with observer callbacks, fault-injection
// filters, or custom policy implementations carry behaviour in code the
// encoding cannot name, so their runs must bypass the cache.
func Cacheable(cfg *core.Config) bool {
	return cfg.CPUGovernor == nil &&
		cfg.DivisionPolicy == nil &&
		cfg.SensorFilter == nil &&
		cfg.ActuatorFilter == nil &&
		cfg.OnDVFS == nil &&
		cfg.OnCPUGovernor == nil &&
		cfg.OnIteration == nil
}

// KeyOf fingerprints one simulation point. The variant string distinguishes
// run flavours that share a configuration but observe the machine
// differently (e.g. a run with the GPU power meter attached); the empty
// string is the plain core.Run flavour. KeyOf panics if the configuration
// is not Cacheable — fingerprinting it would silently conflate different
// behaviours under one key.
func KeyOf(gpu *gpusim.Config, cpu *cpusim.Config, b *bus.Config, p *workload.Profile, cfg *core.Config, variant string) Key {
	if !Cacheable(cfg) {
		panic("runcache: KeyOf on a non-cacheable configuration")
	}
	e := encoder{h: sha256.New()}
	e.str(tagSchema, schemaTag)
	e.str(tagVariant, variant)
	e.gpuConfig(gpu)
	e.cpuConfig(cpu)
	e.busConfig(b)
	e.profile(p)
	e.coreConfig(cfg)
	var k Key
	e.h.Sum(k[:0])
	return k
}

// schemaTag opens every encoding. It names the format and its version so a
// digest can never be confused with one produced by a different scheme.
const schemaTag = "greengpu/runcache/v2"

// Field tags. Every encoded field leads with one; values are never adjacent
// without a tag between them. The concrete numbers are arbitrary but
// frozen: changing them is an encoding change (bump SchemaVersion).
const (
	tagSchema byte = iota + 1
	tagVariant
	tagGPUConfig
	tagCPUConfig
	tagBusConfig
	tagProfile
	tagCoreConfig
	tagStr
	tagInt
	tagFloat
	tagBool
	tagLen
	tagAbsent
	tagPresent
)

// encoder streams tagged canonical values into the digest.
type encoder struct {
	h   hash.Hash
	buf [9]byte // tag byte + 64-bit payload
}

func (e *encoder) raw(tag byte, v uint64) {
	e.buf[0] = tag
	binary.BigEndian.PutUint64(e.buf[1:], v)
	e.h.Write(e.buf[:])
}

func (e *encoder) tag(t byte)          { e.buf[0] = t; e.h.Write(e.buf[:1]) }
func (e *encoder) int(v int64)         { e.raw(tagInt, uint64(v)) }
func (e *encoder) float(v float64)     { e.raw(tagFloat, floatBits(v)) }
func (e *encoder) dur(v time.Duration) { e.raw(tagInt, uint64(v)) }

func (e *encoder) bool(v bool) {
	b := uint64(0)
	if v {
		b = 1
	}
	e.raw(tagBool, b)
}

func (e *encoder) str(tag byte, s string) {
	e.raw(tag, uint64(len(s)))
	e.h.Write([]byte(s))
}

func (e *encoder) length(n int) { e.raw(tagLen, uint64(n)) }

func (e *encoder) freqs(vs []units.Frequency) {
	e.length(len(vs))
	for _, v := range vs {
		e.float(float64(v))
	}
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }

func (e *encoder) gpuConfig(c *gpusim.Config) {
	e.tag(tagGPUConfig)
	e.str(tagStr, c.Name)
	e.int(int64(c.SMs))
	e.int(int64(c.SPsPerSM))
	e.float(c.IPC)
	e.freqs(c.CoreLevels)
	e.freqs(c.MemLevels)
	e.float(c.BytesPerMemCycle)
	e.float(c.OverlapGamma)
	e.float(float64(c.Power.Board))
	e.float(float64(c.Power.CoreClockTree))
	e.float(float64(c.Power.CoreDynamic))
	e.float(float64(c.Power.MemClockTree))
	e.float(float64(c.Power.MemDynamic))
	e.float(c.Power.CoreGatable)
}

func (e *encoder) cpuConfig(c *cpusim.Config) {
	e.tag(tagCPUConfig)
	e.str(tagStr, c.Name)
	e.int(int64(c.Cores))
	e.float(c.IPC)
	e.length(len(c.PStates))
	for _, ps := range c.PStates {
		e.float(float64(ps.Frequency))
		e.float(float64(ps.Voltage))
	}
	e.float(float64(c.Power.Platform))
	e.float(float64(c.Power.StaticPerCore))
	e.float(float64(c.Power.DynPerCore))
}

func (e *encoder) busConfig(c *bus.Config) {
	e.tag(tagBusConfig)
	e.str(tagStr, c.Name)
	e.float(float64(c.Bandwidth))
	e.dur(c.Latency)
}

func (e *encoder) profile(p *workload.Profile) {
	e.tag(tagProfile)
	e.str(tagStr, p.Name)
	e.int(int64(p.Iterations))
	e.length(len(p.Phases))
	for _, ph := range p.Phases {
		e.str(tagStr, ph.Label)
		e.float(ph.Fraction)
		e.float(ph.OpsPerUnit)
		e.float(ph.BytesPerUnit)
		e.float(ph.StallPerUnit)
	}
	e.float(p.CPUOpsPerUnit)
	e.float(p.TransferBytesPerUnit)
	e.float(p.RepartitionBytes)
}

func (e *encoder) coreConfig(c *core.Config) {
	e.tag(tagCoreConfig)
	e.int(int64(c.Mode))
	e.dur(c.DVFSInterval)
	e.float(c.GPUScaler.AlphaCore)
	e.float(c.GPUScaler.AlphaMem)
	e.float(c.GPUScaler.Phi)
	e.float(c.GPUScaler.Beta)
	e.bool(c.Fixed8Scaler)
	e.bool(c.SMScaling)
	e.dur(c.CPUGovernorInterval)
	e.float(c.Division.Step)
	e.float(c.Division.Initial)
	e.float(c.Division.Min)
	e.float(c.Division.Max)
	e.bool(c.Division.Safeguard)
	e.int(int64(c.Iterations))
	e.bool(c.SpinWait)
	if c.InitialLevels == nil {
		e.tag(tagAbsent)
	} else {
		e.tag(tagPresent)
		e.int(int64(c.InitialLevels.Core))
		e.int(int64(c.InitialLevels.Mem))
		e.int(int64(c.InitialLevels.CPU))
	}
	if c.StaticRatio == nil {
		e.tag(tagAbsent)
	} else {
		e.tag(tagPresent)
		e.float(*c.StaticRatio)
	}
	e.int(int64(c.Recovery.WatchdogK))
	e.int(int64(c.Recovery.BackoffMax))
	e.int(int64(c.Recovery.FailsafeHold))
	// The fault plan is pure data, so faulty runs stay cacheable — every
	// field reaches the hash. A nil plan and the Zero plan behave
	// identically (no injection) but fingerprint differently; callers who
	// want the shared fault-free key pass nil.
	if c.FaultPlan == nil {
		e.tag(tagAbsent)
	} else {
		e.tag(tagPresent)
		p := c.FaultPlan
		e.raw(tagInt, p.Seed)
		e.float(p.GPUNoiseSigma)
		e.float(p.GPUDropRate)
		e.float(p.GPUStaleRate)
		e.float(p.CPUNoiseSigma)
		e.float(p.CPUDropRate)
		e.float(p.CPUStaleRate)
		e.float(p.TransitionRejectRate)
		e.float(p.TransitionDelayRate)
		e.int(int64(p.TransitionDelayEpochs))
		e.float(p.MeterDropRate)
		e.float(p.MeterSpikeRate)
		e.float(p.MeterSpikeFactor)
		e.float(p.StragglerRate)
		e.float(p.StragglerFactor)
	}
}
