// Prometheus text-format and JSON snapshot emitters. Both render a
// point-in-time snapshot of a registry; neither ever writes to stdout on
// behalf of callers — cmd/experiments routes them to stderr or files so the
// deterministic experiment output stays byte-identical.

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): a # HELP and # TYPE line per metric followed by
// its sample lines, metrics sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, m := range r.Snapshot() {
		fmt.Fprintf(&b, "# HELP %s %s\n", m.Name, escapeHelp(m.Help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.Name, m.Type)
		switch m.Type {
		case "histogram":
			for _, bk := range m.Buckets {
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.Name, formatLE(bk.LE), bk.Count)
			}
			fmt.Fprintf(&b, "%s_sum %s\n", m.Name, formatValue(m.Sum))
			fmt.Fprintf(&b, "%s_count %d\n", m.Name, m.Count)
		default:
			fmt.Fprintf(&b, "%s %s\n", m.Name, formatValue(m.Value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders the registry snapshot as indented JSON: an array of
// MetricSnapshot objects sorted by name.
func (r *Registry) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// formatLE renders a bucket bound the way Prometheus expects ("+Inf" for
// the overflow bucket).
func formatLE(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return formatValue(v)
}

// formatValue renders a sample value: integers without an exponent,
// everything else in Go's shortest round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp makes a help string safe for the single-line HELP format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
