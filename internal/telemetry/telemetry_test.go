package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"strings"
	"sync"
	"testing"
)

// withTelemetry runs the test with instruments enabled and restores the
// disabled default afterwards, keeping the package-global switch from
// leaking between tests.
func withTelemetry(t *testing.T) {
	t.Helper()
	Enable()
	t.Cleanup(Disable)
}

func TestCounterDisabledIsNoop(t *testing.T) {
	c := NewCounterIn(NewRegistry(), "c_total", "help")
	Disable()
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 0 {
		t.Errorf("disabled counter recorded %d", got)
	}
}

func TestCounterEnabled(t *testing.T) {
	withTelemetry(t)
	c := NewCounterIn(NewRegistry(), "c_total", "help")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("Value = %d, want 42", got)
	}
	s := c.snapshot()
	if s.Type != "counter" || s.Value != 42 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestGauge(t *testing.T) {
	withTelemetry(t)
	g := NewGaugeIn(NewRegistry(), "g", "help")
	if g.Value() != 0 {
		t.Errorf("zero gauge = %v", g.Value())
	}
	g.Set(2.5)
	g.Set(-1.25)
	if got := g.Value(); got != -1.25 {
		t.Errorf("Value = %v, want -1.25", got)
	}
	Disable()
	g.Set(99)
	if got := g.Value(); got != -1.25 {
		t.Errorf("disabled Set changed value to %v", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	withTelemetry(t)
	h := NewHistogramIn(NewRegistry(), "h", "help", []float64{1, 10, 100})
	// Bounds are inclusive upper bounds: a sample equal to a bound lands in
	// that bound's bucket, one epsilon above spills into the next.
	for _, v := range []float64{0.5, 1, 1.5, 10, 100, 101, math.Inf(1)} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	s := h.snapshot()
	wantCum := []uint64{2, 4, 5, 7} // le=1, le=10, le=100, +Inf
	if len(s.Buckets) != len(wantCum) {
		t.Fatalf("%d buckets, want %d", len(s.Buckets), len(wantCum))
	}
	for i, want := range wantCum {
		if s.Buckets[i].Count != want {
			t.Errorf("bucket %d count = %d, want %d", i, s.Buckets[i].Count, want)
		}
	}
	if !math.IsInf(s.Buckets[3].LE, 1) {
		t.Errorf("last bucket bound = %v, want +Inf", s.Buckets[3].LE)
	}
	if h.Count() != 7 {
		t.Errorf("Count = %d, want 7 (NaN dropped)", h.Count())
	}
	if !math.IsInf(h.Sum(), 1) {
		t.Errorf("Sum = %v, want +Inf", h.Sum())
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"decreasing": {10, 1},
		"duplicate":  {1, 1},
		"nan":        {math.NaN()},
		"inf":        {math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v bounds accepted", name)
				}
			}()
			NewHistogramIn(NewRegistry(), "h", "", bounds)
		}()
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ExpBuckets = %v, want %v", got, want)
			break
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ExpBuckets(0, 2, 3) accepted")
		}
	}()
	ExpBuckets(0, 2, 3)
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	NewCounterIn(r, "dup", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate metric name accepted")
		}
	}()
	NewGaugeIn(r, "dup", "")
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	NewCounterIn(r, "zz_total", "")
	NewGaugeIn(r, "aa", "")
	s := r.Snapshot()
	if len(s) != 2 || s[0].Name != "aa" || s[1].Name != "zz_total" {
		t.Errorf("snapshot order = %+v", s)
	}
}

func TestCounterValue(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	c := NewCounterIn(r, "c_total", "")
	NewGaugeIn(r, "g", "")
	c.Add(7)
	if got := r.CounterValue("c_total"); got != 7 {
		t.Errorf("CounterValue = %d, want 7", got)
	}
	if got := r.CounterValue("missing"); got != 0 {
		t.Errorf("CounterValue(missing) = %d, want 0", got)
	}
	if got := r.CounterValue("g"); got != 0 {
		t.Errorf("CounterValue over a gauge = %d, want 0", got)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	c := NewCounterIn(r, "x_total", "counts things\nwith a newline and a \\")
	g := NewGaugeIn(r, "x_gauge", "a gauge")
	h := NewHistogramIn(r, "x_seconds", "durations", []float64{0.1, 1})
	c.Add(3)
	g.Set(1.5)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP x_total counts things\\nwith a newline and a \\\\\n",
		"# TYPE x_total counter\n",
		"x_total 3\n",
		"# TYPE x_gauge gauge\n",
		"x_gauge 1.5\n",
		"# TYPE x_seconds histogram\n",
		`x_seconds_bucket{le="0.1"} 1` + "\n",
		`x_seconds_bucket{le="1"} 1` + "\n",
		`x_seconds_bucket{le="+Inf"} 2` + "\n",
		"x_seconds_sum 5.05\n",
		"x_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	h := NewHistogramIn(r, "h_seconds", "durations", []float64{0.5})
	h.Observe(0.25)
	h.Observe(2)

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snaps []MetricSnapshot
	if err := json.Unmarshal([]byte(b.String()), &snaps); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if len(snaps) != 1 {
		t.Fatalf("%d snapshots, want 1", len(snaps))
	}
	got := snaps[0]
	if got.Name != "h_seconds" || got.Count != 2 || got.Sum != 2.25 {
		t.Errorf("round-tripped snapshot = %+v", got)
	}
	if len(got.Buckets) != 2 || got.Buckets[0].LE != 0.5 || !math.IsInf(got.Buckets[1].LE, 1) {
		t.Errorf("round-tripped buckets = %+v (+Inf bound must survive)", got.Buckets)
	}
}

// TestZeroAllocations pins the hot-path contract: no instrument operation
// allocates, whether telemetry is enabled or disabled.
func TestZeroAllocations(t *testing.T) {
	r := NewRegistry()
	c := NewCounterIn(r, "c_total", "")
	g := NewGaugeIn(r, "g", "")
	h := NewHistogramIn(r, "h", "", ExpBuckets(1e-6, 10, 6))
	fr := NewFlightRecorder(16)
	rec := EpochRecord{Workload: "w", Mode: "m", UCore: 0.5}

	ops := map[string]func(){
		"Counter.Add":           func() { c.Add(1) },
		"Gauge.Set":             func() { g.Set(1.5) },
		"Histogram.Observe":     func() { h.Observe(0.01) },
		"FlightRecorder.Record": func() { fr.Record(rec) },
	}
	for _, state := range []struct {
		name   string
		toggle func()
	}{
		{"disabled", Disable},
		{"enabled", Enable},
	} {
		state.toggle()
		for name, op := range ops {
			if allocs := testing.AllocsPerRun(200, op); allocs != 0 {
				t.Errorf("%s while %s: %v allocs/op, want 0", name, state.name, allocs)
			}
		}
	}
	Disable()
}

// TestConcurrencyHammer drives every instrument, the flight recorder, the
// enable switch and the snapshotters from concurrent goroutines. Run under
// -race this is the data-race gate for the whole package.
func TestConcurrencyHammer(t *testing.T) {
	defer Disable()
	r := NewRegistry()
	c := NewCounterIn(r, "hammer_total", "")
	g := NewGaugeIn(r, "hammer_gauge", "")
	h := NewHistogramIn(r, "hammer_seconds", "", ExpBuckets(1e-6, 10, 6))
	fr := NewFlightRecorder(64)
	SetFlightRecorder(fr)
	defer SetFlightRecorder(nil)

	const writers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%7) * 1e-5)
				if rec := Recorder(); rec != nil {
					rec.Record(EpochRecord{Workload: "hammer", Epoch: i, UCore: float64(w)})
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // toggler: instruments must tolerate mid-flight switches
		defer wg.Done()
		for i := 0; i < 500; i++ {
			Enable()
			Disable()
		}
	}()
	wg.Add(1)
	go func() { // reader: snapshots and emitters race against writers
		defer wg.Done()
		for i := 0; i < 200; i++ {
			r.Snapshot()
			fr.Snapshot()
			fr.Table(8)
			if err := r.WritePrometheus(io.Discard); err != nil {
				t.Errorf("WritePrometheus: %v", err)
			}
		}
	}()
	wg.Wait()

	// Post-join invariants: the histogram's total equals its +Inf bucket,
	// and the ring never exceeds its bound.
	s := h.snapshot()
	if last := s.Buckets[len(s.Buckets)-1].Count; last != h.Count() {
		t.Errorf("+Inf bucket %d != Count %d", last, h.Count())
	}
	if c.Value() > writers*iters {
		t.Errorf("counter %d exceeds the %d operations issued", c.Value(), writers*iters)
	}
	if fr.Len() > fr.Cap() {
		t.Errorf("ring holds %d records with capacity %d", fr.Len(), fr.Cap())
	}
}
