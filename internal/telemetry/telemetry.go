// Package telemetry is the process-wide observability layer: a metrics
// registry (counters, gauges, histograms) plus an epoch-granularity flight
// recorder for controller decisions (flight.go).
//
// # Zero cost when disabled
//
// Telemetry is off by default and must cost nothing measurable on the
// simulator's hot paths. Every instrument operation starts with a single
// atomic load of the global enabled flag and returns immediately when it is
// false; no operation allocates, constructs an interface value, or takes a
// lock on the fast path. Instruments are registered once, at package init,
// as concrete pointers held in package-level variables — call sites never
// go through an interface. AllocsPerRun tests pin the zero-allocation
// contract in both states, and the benchjson regression gate keeps the
// disabled-path cost inside the sim/dvfs hot-loop tolerances.
//
// # Naming
//
// Metric names follow the Prometheus convention
// greengpu_<package>_<what>[_total] with base units (seconds, watts) in the
// name or help string. The full catalog, one row per registered metric,
// lives in docs/OBSERVABILITY.md; keep the two in sync.
//
// # Determinism
//
// Telemetry never influences simulation results: instruments are
// write-only from the simulator's point of view, and every emitter writes
// to stderr or a file, never stdout. Experiment output stays byte-identical
// with telemetry on or off (enforced by make golden).
package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// enabled is the process-wide switch read by every instrument fast path.
var enabled atomic.Bool

// Enable turns instrument recording on process-wide.
func Enable() { enabled.Store(true) }

// Disable turns instrument recording off process-wide. Recorded values are
// kept, not reset.
func Disable() { enabled.Store(false) }

// Enabled reports whether instruments currently record. Call sites may use
// it to skip work that only feeds telemetry (e.g. reading the wall clock
// before observing a duration).
func Enabled() bool { return enabled.Load() }

// Names of metrics referenced outside their owning package: the flight
// recorder stamps run-cache effectiveness into every epoch record, so the
// names must have one source of truth.
const (
	// MetricRunCacheHits counts simulation points served from memory.
	MetricRunCacheHits = "greengpu_runcache_hits_total"
	// MetricRunCacheMisses counts simulation points actually simulated.
	MetricRunCacheMisses = "greengpu_runcache_misses_total"
	// MetricSweepPoints counts points evaluated by the batch sweep engine.
	MetricSweepPoints = "greengpu_sweep_points_total"
	// MetricSweepFastPath counts sweep points served by the closed-form
	// batch evaluator.
	MetricSweepFastPath = "greengpu_sweep_fastpath_total"
	// MetricSweepFallback counts sweep points that fell back to a full
	// per-point simulation.
	MetricSweepFallback = "greengpu_sweep_fallback_total"
	// MetricSweepBatches counts sweep batches (Engine.Run calls).
	MetricSweepBatches = "greengpu_sweep_batches_total"
	// MetricPredictFits counts analytic cross-frequency model fits.
	MetricPredictFits = "greengpu_predict_fits_total"
	// MetricPredictPoints counts ladder points evaluated in closed form by
	// a fitted model.
	MetricPredictPoints = "greengpu_predict_points_total"
	// MetricPredictFullEvals counts full point evaluations requested by
	// predictor searches (anchors, refinements, verification).
	MetricPredictFullEvals = "greengpu_predict_full_evals_total"
	// MetricPredictFallbacks counts predictor searches that fell back to
	// exhaustive evaluation on a degenerate fit.
	MetricPredictFallbacks = "greengpu_predict_fallbacks_total"
	// MetricFleetRuns counts fleet evaluations (fleet.Engine.Run calls).
	MetricFleetRuns = "greengpu_fleet_runs_total"
	// MetricFleetNodes counts fleet nodes attributed results (the node
	// level of the node→group→fleet hierarchy).
	MetricFleetNodes = "greengpu_fleet_nodes_total"
	// MetricFleetGroups counts distinct config groups actually simulated
	// (the group level of the node→group→fleet hierarchy).
	MetricFleetGroups = "greengpu_fleet_groups_total"
	// MetricFleetDedupSaved counts simulations avoided by fingerprint
	// dedup: nodes minus groups, summed over fleet runs.
	MetricFleetDedupSaved = "greengpu_fleet_dedup_saved_total"
)

// metric is the registry's view of an instrument.
type metric interface {
	// meta returns the immutable identity of the instrument.
	meta() (name, help, typ string)
	// snapshot captures the current value(s).
	snapshot() MetricSnapshot
}

// Registry holds a set of uniquely named instruments. The zero value is not
// usable; use NewRegistry. Most code uses the package-level Default
// registry through NewCounter/NewGauge/NewHistogram.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry. Tests use private registries to
// avoid name collisions with the package-level instruments.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// Default is the process-wide registry every package-level instrument
// registers into and every emitter snapshots from.
var Default = NewRegistry()

// register adds m, panicking on a duplicate name: two packages claiming one
// name is a programming error that must surface at init, not in a snapshot.
func (r *Registry) register(m metric) {
	name, _, _ := m.meta()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	r.metrics[name] = m
}

// Snapshot captures every registered instrument, sorted by name.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.RLock()
	ms := make([]metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.RUnlock()
	out := make([]MetricSnapshot, len(ms))
	for i, m := range ms {
		out[i] = m.snapshot()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CounterValue returns the current value of the named counter in this
// registry, or 0 when no such counter exists.
func (r *Registry) CounterValue(name string) uint64 {
	r.mu.RLock()
	m := r.metrics[name]
	r.mu.RUnlock()
	if c, ok := m.(*Counter); ok {
		return c.Value()
	}
	return 0
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// LE is the bucket's inclusive upper bound; math.Inf(1) for the last.
	LE float64 `json:"le"`
	// Count is the cumulative number of observations <= LE.
	Count uint64 `json:"count"`
}

// bucketJSON is Bucket's wire form: the bound travels as a string because
// JSON has no Inf literal and the overflow bucket's bound is +Inf.
type bucketJSON struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// MarshalJSON encodes the bound with the same formatting as the Prometheus
// text emitter ("+Inf" for the overflow bucket).
func (b Bucket) MarshalJSON() ([]byte, error) {
	return json.Marshal(bucketJSON{LE: formatLE(b.LE), Count: b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON, so snapshots round-trip.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var w bucketJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.LE == "+Inf" {
		b.LE = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(w.LE, 64)
		if err != nil {
			return fmt.Errorf("telemetry: bucket bound %q: %v", w.LE, err)
		}
		b.LE = v
	}
	b.Count = w.Count
	return nil
}

// MetricSnapshot is one instrument's state at snapshot time.
type MetricSnapshot struct {
	Name string `json:"name"`
	Type string `json:"type"` // "counter", "gauge", or "histogram"
	Help string `json:"help"`
	// Value carries the counter or gauge value (counters are exact to
	// 2^53, far beyond any simulation run).
	Value float64 `json:"value"`
	// Sum, Count and Buckets are populated for histograms only.
	Sum     float64  `json:"sum,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Counter is a monotonically increasing count. All methods are safe for
// concurrent use.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// NewCounter registers a counter with the Default registry and returns it.
// It panics if the name is already taken.
func NewCounter(name, help string) *Counter {
	return NewCounterIn(Default, name, help)
}

// NewCounterIn registers a counter with an explicit registry.
func NewCounterIn(r *Registry, name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Add increments the counter by n. A no-op while telemetry is disabled.
func (c *Counter) Add(n uint64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. A no-op while telemetry is disabled.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) meta() (string, string, string) { return c.name, c.help, "counter" }

func (c *Counter) snapshot() MetricSnapshot {
	return MetricSnapshot{Name: c.name, Type: "counter", Help: c.help, Value: float64(c.v.Load())}
}

// Gauge is a value that can go up and down, stored as float64 bits. All
// methods are safe for concurrent use.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// NewGauge registers a gauge with the Default registry and returns it.
// It panics if the name is already taken.
func NewGauge(name, help string) *Gauge {
	return NewGaugeIn(Default, name, help)
}

// NewGaugeIn registers a gauge with an explicit registry.
func NewGaugeIn(r *Registry, name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// Set stores v. A no-op while telemetry is disabled.
func (g *Gauge) Set(v float64) {
	if !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (negative deltas decrease it). A no-op
// while telemetry is disabled. The in-flight request gauges pair Add(1)
// with a deferred Add(-1).
func (g *Gauge) Add(delta float64) {
	if !enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the last value stored by Set or Add (0 before either).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) meta() (string, string, string) { return g.name, g.help, "gauge" }

func (g *Gauge) snapshot() MetricSnapshot {
	return MetricSnapshot{Name: g.name, Type: "gauge", Help: g.help, Value: g.Value()}
}

// Histogram counts observations into fixed buckets with inclusive upper
// bounds, Prometheus-style (an implicit +Inf bucket catches the rest). All
// methods are safe for concurrent use.
type Histogram struct {
	name, help string
	bounds     []float64 // strictly increasing upper bounds, +Inf excluded
	counts     []atomic.Uint64
	sumBits    atomic.Uint64
	count      atomic.Uint64
}

// NewHistogram registers a histogram with the Default registry and returns
// it. bounds must be strictly increasing and finite; it panics otherwise,
// or if the name is already taken.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return NewHistogramIn(Default, name, help, bounds)
}

// NewHistogramIn registers a histogram with an explicit registry.
func NewHistogramIn(r *Registry, name, help string, bounds []float64) *Histogram {
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("telemetry: histogram %q bound %v is not finite", name, b))
		}
		if i > 0 && bounds[i-1] >= b {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not strictly increasing at %d", name, i))
		}
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.register(h)
	return h
}

// ExpBuckets returns n bounds starting at start and growing by factor, the
// usual shape for duration histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one sample. A no-op while telemetry is disabled; NaN
// samples are dropped (they would poison the sum).
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() || math.IsNaN(v) {
		return
	}
	// First bucket whose upper bound admits v; len(bounds) is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) meta() (string, string, string) { return h.name, h.help, "histogram" }

func (h *Histogram) snapshot() MetricSnapshot {
	s := MetricSnapshot{Name: h.name, Type: "histogram", Help: h.help, Sum: h.Sum(), Count: h.count.Load()}
	cum := uint64(0)
	s.Buckets = make([]Bucket, len(h.counts))
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets[i] = Bucket{LE: le, Count: cum}
	}
	return s
}
