// The epoch flight recorder: a bounded ring buffer of structured DVFS-epoch
// controller decisions. Where the metrics registry answers "how often", the
// flight recorder answers "why": it keeps the last K decisions — measured
// utilizations, the levels the scaler chose, the division ratio in force,
// an instantaneous power sample, and run-cache effectiveness — so a bad
// frequency decision can be debugged after the fact without re-running
// anything. docs/OBSERVABILITY.md documents the record format and a worked
// debugging walkthrough.

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"greengpu/internal/trace"
)

// EpochRecord is one tier-2 (DVFS) epoch as the controller saw it.
type EpochRecord struct {
	// Seq is the global record sequence number, stamped by Record.
	// Concurrent runs interleave in the ring; Seq plus Workload
	// disambiguates.
	Seq uint64 `json:"seq"`
	// Workload and Mode identify the run the epoch belongs to.
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	// Epoch is the DVFS step index within the run (0-based).
	Epoch int `json:"epoch"`
	// At is the simulated time of the decision.
	At time.Duration `json:"at_ns"`
	// UCore and UMem are the utilizations fed to the scaler (after any
	// sensor filter).
	UCore float64 `json:"u_core"`
	UMem  float64 `json:"u_mem"`
	// CoreLevel/MemLevel are the enforced levels (after any actuator
	// filter); CoreMHz/MemMHz are the corresponding frequencies.
	CoreLevel int     `json:"core_level"`
	MemLevel  int     `json:"mem_level"`
	CoreMHz   float64 `json:"core_mhz"`
	MemMHz    float64 `json:"mem_mhz"`
	// CPULevel is the processor P-state in force at the epoch.
	CPULevel int `json:"cpu_level"`
	// Ratio is tier 1's CPU share in force at the epoch.
	Ratio float64 `json:"ratio"`
	// PowerW is the instantaneous whole-system power sample in watts.
	PowerW float64 `json:"power_w"`
	// CacheHits and CacheMisses are the process-wide run-cache counters
	// at record time, stamped by Record.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// Faults is the run's cumulative injected-fault count at epoch end
	// (0 when no fault plan is armed — see internal/faultinject).
	Faults uint64 `json:"faults,omitempty"`
	// Held marks an epoch whose utilization sample was replaced by the
	// guard's hold-last-good.
	Held bool `json:"held,omitempty"`
	// Failsafe marks an epoch spent pinned at the watchdog's failsafe
	// (peak) levels after consecutive transition failures.
	Failsafe bool `json:"failsafe,omitempty"`
	// Predicted marks a record whose levels came from the analytic
	// cross-frequency model (internal/predict) without simulation
	// verification. Records from full simulation — including predictor
	// candidates that were verified by simulation — leave it false.
	Predicted bool `json:"predicted,omitempty"`
}

// jsonFloat marshals non-finite values as null — JSON has no NaN/Inf, and a
// power sample dropped by a meter fault must not make the whole snapshot
// unencodable.
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// MarshalJSON implements json.Marshaler. Float fields that can carry a
// faulted (non-finite) sample encode as null rather than failing the
// marshal.
func (e EpochRecord) MarshalJSON() ([]byte, error) {
	type rec struct {
		Seq         uint64        `json:"seq"`
		Workload    string        `json:"workload"`
		Mode        string        `json:"mode"`
		Epoch       int           `json:"epoch"`
		At          time.Duration `json:"at_ns"`
		UCore       jsonFloat     `json:"u_core"`
		UMem        jsonFloat     `json:"u_mem"`
		CoreLevel   int           `json:"core_level"`
		MemLevel    int           `json:"mem_level"`
		CoreMHz     jsonFloat     `json:"core_mhz"`
		MemMHz      jsonFloat     `json:"mem_mhz"`
		CPULevel    int           `json:"cpu_level"`
		Ratio       jsonFloat     `json:"ratio"`
		PowerW      jsonFloat     `json:"power_w"`
		CacheHits   uint64        `json:"cache_hits"`
		CacheMisses uint64        `json:"cache_misses"`
		Faults      uint64        `json:"faults,omitempty"`
		Held        bool          `json:"held,omitempty"`
		Failsafe    bool          `json:"failsafe,omitempty"`
		Predicted   bool          `json:"predicted,omitempty"`
	}
	return json.Marshal(rec{
		Seq:         e.Seq,
		Workload:    e.Workload,
		Mode:        e.Mode,
		Epoch:       e.Epoch,
		At:          e.At,
		UCore:       jsonFloat(e.UCore),
		UMem:        jsonFloat(e.UMem),
		CoreLevel:   e.CoreLevel,
		MemLevel:    e.MemLevel,
		CoreMHz:     jsonFloat(e.CoreMHz),
		MemMHz:      jsonFloat(e.MemMHz),
		CPULevel:    e.CPULevel,
		Ratio:       jsonFloat(e.Ratio),
		PowerW:      jsonFloat(e.PowerW),
		CacheHits:   e.CacheHits,
		CacheMisses: e.CacheMisses,
		Faults:      e.Faults,
		Held:        e.Held,
		Failsafe:    e.Failsafe,
		Predicted:   e.Predicted,
	})
}

// FlightRecorder retains the last K epoch records in a preallocated ring
// buffer. Record is safe for concurrent use and never allocates, so leaving
// a recorder installed costs one mutex acquisition per DVFS epoch —
// thousands of simulated seconds apart, nothing on any hot path.
type FlightRecorder struct {
	mu    sync.Mutex
	seq   uint64
	buf   []EpochRecord
	next  int // ring write position
	count int // records written, saturating at len(buf)
}

// NewFlightRecorder returns a recorder retaining the last k records.
// It panics if k is not positive.
func NewFlightRecorder(k int) *FlightRecorder {
	if k <= 0 {
		panic("telemetry: NewFlightRecorder needs k > 0")
	}
	return &FlightRecorder{buf: make([]EpochRecord, k)}
}

// Cap returns the retention bound K.
func (r *FlightRecorder) Cap() int { return len(r.buf) }

// Len returns the number of records currently retained (<= Cap).
func (r *FlightRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Record stores one epoch, evicting the oldest when the ring is full. It
// stamps rec.Seq, rec.CacheHits and rec.CacheMisses itself (the run-cache
// counters are process-global, so the caller need not know them).
func (r *FlightRecorder) Record(rec EpochRecord) {
	rec.CacheHits = Default.CounterValue(MetricRunCacheHits)
	rec.CacheMisses = Default.CounterValue(MetricRunCacheMisses)
	r.mu.Lock()
	rec.Seq = r.seq
	r.seq++
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	if r.count < len(r.buf) {
		r.count++
	}
	r.mu.Unlock()
}

// Snapshot returns the retained records, oldest first.
func (r *FlightRecorder) Snapshot() []EpochRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]EpochRecord, 0, r.count)
	start := r.next - r.count
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Table renders the newest records (at most lastK; lastK <= 0 means all
// retained) as an aligned trace table, oldest first — the "what was the
// controller thinking" view dumped when a run ends in an anomaly.
func (r *FlightRecorder) Table(lastK int) *trace.Table {
	recs := r.Snapshot()
	if lastK > 0 && len(recs) > lastK {
		recs = recs[len(recs)-lastK:]
	}
	t := trace.NewTable(
		fmt.Sprintf("flight recorder: last %d DVFS epochs (oldest first)", len(recs)),
		"seq", "workload", "mode", "epoch", "t(s)", "u_core", "u_mem",
		"core", "MHz", "mem", "MHz", "cpu", "r", "power(W)", "hits", "misses",
		"faults", "flags")
	for _, e := range recs {
		flags := ""
		if e.Held {
			flags += "H"
		}
		if e.Failsafe {
			flags += "F"
		}
		if e.Predicted {
			flags += "P"
		}
		if flags == "" {
			flags = "-"
		}
		t.AddRow(
			fmt.Sprintf("%d", e.Seq),
			e.Workload,
			e.Mode,
			fmt.Sprintf("%d", e.Epoch),
			fmt.Sprintf("%.1f", e.At.Seconds()),
			fmt.Sprintf("%.3f", e.UCore),
			fmt.Sprintf("%.3f", e.UMem),
			fmt.Sprintf("%d", e.CoreLevel),
			fmt.Sprintf("%.0f", e.CoreMHz),
			fmt.Sprintf("%d", e.MemLevel),
			fmt.Sprintf("%.0f", e.MemMHz),
			fmt.Sprintf("%d", e.CPULevel),
			fmt.Sprintf("%.2f", e.Ratio),
			fmt.Sprintf("%.1f", e.PowerW),
			fmt.Sprintf("%d", e.CacheHits),
			fmt.Sprintf("%d", e.CacheMisses),
			fmt.Sprintf("%d", e.Faults),
			flags,
		)
	}
	return t
}

// WriteJSON renders the retained records (oldest first) as indented JSON.
func (r *FlightRecorder) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// active is the installed process-wide recorder, nil when flight recording
// is off. A plain atomic pointer so the per-epoch check in internal/core is
// one load and a nil test.
var active atomic.Pointer[FlightRecorder]

// SetFlightRecorder installs r as the process-wide recorder (nil
// uninstalls).
func SetFlightRecorder(r *FlightRecorder) { active.Store(r) }

// Recorder returns the installed process-wide recorder, or nil. Callers
// nil-check and skip record assembly entirely when flight recording is off.
func Recorder() *FlightRecorder { return active.Load() }
