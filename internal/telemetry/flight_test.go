package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

// Registering the run-cache counters here (the names runcache itself uses
// in production) lets these tests exercise Record's cache stamping without
// importing runcache, which would be a dependency cycle in spirit.
var (
	testCacheHits   = NewCounter(MetricRunCacheHits, "test stand-in")
	testCacheMisses = NewCounter(MetricRunCacheMisses, "test stand-in")
)

func TestNewFlightRecorderRejectsNonPositive(t *testing.T) {
	for _, k := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFlightRecorder(%d) accepted", k)
				}
			}()
			NewFlightRecorder(k)
		}()
	}
}

func TestFlightRecorderRingWrap(t *testing.T) {
	fr := NewFlightRecorder(4)
	if fr.Cap() != 4 || fr.Len() != 0 {
		t.Fatalf("fresh recorder Cap=%d Len=%d", fr.Cap(), fr.Len())
	}
	for i := 0; i < 10; i++ {
		fr.Record(EpochRecord{Epoch: i})
	}
	if fr.Len() != 4 {
		t.Errorf("Len = %d, want 4", fr.Len())
	}
	recs := fr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("snapshot has %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if want := 6 + i; rec.Epoch != want {
			t.Errorf("record %d epoch = %d, want %d (oldest first)", i, rec.Epoch, want)
		}
		if want := uint64(6 + i); rec.Seq != want {
			t.Errorf("record %d seq = %d, want %d", i, rec.Seq, want)
		}
	}
}

func TestRecordStampsCacheCounters(t *testing.T) {
	withTelemetry(t)
	fr := NewFlightRecorder(2)
	testCacheHits.Add(3)
	testCacheMisses.Add(5)
	fr.Record(EpochRecord{})
	rec := fr.Snapshot()[0]
	// The counters are cumulative across the test binary; the record must
	// carry at least what this test just added.
	if rec.CacheHits < 3 || rec.CacheMisses < 5 {
		t.Errorf("record cache counters = %d/%d, want >= 3/5", rec.CacheHits, rec.CacheMisses)
	}
}

func TestFlightRecorderTable(t *testing.T) {
	fr := NewFlightRecorder(8)
	for i := 0; i < 5; i++ {
		fr.Record(EpochRecord{
			Workload: "kmeans", Mode: "greengpu", Epoch: i,
			At:    time.Duration(i) * time.Second,
			UCore: 0.8, UMem: 0.4, CoreLevel: 2, MemLevel: 1,
			CoreMHz: 500, MemMHz: 800, CPULevel: 3, Ratio: 0.12, PowerW: 210.5,
		})
	}
	var b strings.Builder
	if err := fr.Table(3).WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "last 3 DVFS epochs") {
		t.Errorf("Table(3) did not trim to 3:\n%s", out)
	}
	if strings.Contains(out, "\n0 ") || !strings.Contains(out, "kmeans") {
		t.Errorf("table rows wrong:\n%s", out)
	}

	b.Reset()
	if err := fr.Table(0).WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "last 5 DVFS epochs") {
		t.Errorf("Table(0) did not render all retained records:\n%s", b.String())
	}
}

// TestFlightRecorderTableFlags pins the flags column: H (held), F
// (failsafe), P (predicted-only decision), composable, '-' when none.
func TestFlightRecorderTableFlags(t *testing.T) {
	for _, tc := range []struct {
		rec  EpochRecord
		want string
	}{
		{EpochRecord{}, "-"},
		{EpochRecord{Held: true}, "H"},
		{EpochRecord{Failsafe: true}, "F"},
		{EpochRecord{Predicted: true}, "P"},
		{EpochRecord{Held: true, Failsafe: true}, "HF"},
		{EpochRecord{Held: true, Failsafe: true, Predicted: true}, "HFP"},
	} {
		fr := NewFlightRecorder(1)
		fr.Record(tc.rec)
		var b strings.Builder
		if err := fr.Table(0).WriteText(&b); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
		fields := strings.Fields(lines[len(lines)-1])
		if got := fields[len(fields)-1]; got != tc.want {
			t.Errorf("record %+v rendered flags %q, want %q", tc.rec, got, tc.want)
		}
	}
}

func TestFlightRecorderWriteJSON(t *testing.T) {
	fr := NewFlightRecorder(4)
	fr.Record(EpochRecord{Workload: "lud", Epoch: 7, UCore: 0.25})
	var b strings.Builder
	if err := fr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var recs []EpochRecord
	if err := json.Unmarshal([]byte(b.String()), &recs); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if len(recs) != 1 || recs[0].Workload != "lud" || recs[0].Epoch != 7 || recs[0].UCore != 0.25 {
		t.Errorf("round-tripped records = %+v", recs)
	}
}

// TestWriteJSONSurvivesNonFiniteSamples: a power sample dropped by a meter
// fault reads NaN; the JSON emitter must encode it as null rather than fail
// the whole snapshot. Finite records must round-trip every field — which
// also keeps the marshal shadow struct in sync with EpochRecord.
func TestWriteJSONSurvivesNonFiniteSamples(t *testing.T) {
	fr := NewFlightRecorder(4)
	full := EpochRecord{
		Workload: "kmeans", Mode: "greengpu", Epoch: 3,
		At:    9 * time.Second,
		UCore: 0.9, UMem: 0.5, CoreLevel: 2, MemLevel: 1,
		CoreMHz: 576, MemMHz: 900, CPULevel: 4, Ratio: 0.12, PowerW: 231.5,
		Faults: 17, Held: true, Failsafe: true, Predicted: true,
	}
	fr.Record(full)
	fr.Record(EpochRecord{Workload: "kmeans", PowerW: math.NaN(), UCore: math.Inf(1)})
	var b strings.Builder
	if err := fr.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON with NaN/Inf samples: %v", err)
	}
	var recs []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &recs); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if v, ok := recs[1]["power_w"]; !ok || v != nil {
		t.Errorf("NaN power_w encoded as %v, want null", v)
	}
	if v, ok := recs[1]["u_core"]; !ok || v != nil {
		t.Errorf("+Inf u_core encoded as %v, want null", v)
	}

	// Round-trip the finite record through the typed struct: any field the
	// shadow struct forgets comes back as its zero value and fails here.
	var typed []EpochRecord
	if err := json.Unmarshal([]byte(b.String()), &typed); err != nil {
		t.Fatalf("typed unmarshal: %v", err)
	}
	got := typed[0]
	got.Seq = full.Seq
	got.CacheHits = full.CacheHits
	got.CacheMisses = full.CacheMisses
	if got != full {
		t.Errorf("finite record did not round-trip:\n got %+v\nwant %+v", got, full)
	}
}

func TestGlobalRecorderInstall(t *testing.T) {
	if Recorder() != nil {
		t.Fatal("recorder installed at test start")
	}
	fr := NewFlightRecorder(1)
	SetFlightRecorder(fr)
	if Recorder() != fr {
		t.Error("Recorder did not return the installed recorder")
	}
	SetFlightRecorder(nil)
	if Recorder() != nil {
		t.Error("SetFlightRecorder(nil) did not uninstall")
	}
}
