// Live-endpoint adapter: the registry as an http.Handler, so a long-lived
// process (cmd/greengpud) can serve its metrics to a Prometheus scraper
// instead of — or alongside — the stderr/file emitters.

package telemetry

import "net/http"

// Handler returns an http.Handler that renders a point-in-time snapshot of
// the registry in the Prometheus text exposition format (version 0.0.4) on
// every request. Snapshots are taken under the registry's read lock, so the
// handler is safe to serve while instruments record; like every emitter it
// is read-only and never perturbs simulation results.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Rendering buffers the whole snapshot before the first write, so a
		// failure here can only be a client disconnect — nothing to report.
		_ = r.WritePrometheus(w)
	})
}
