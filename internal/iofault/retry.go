package iofault

import (
	"fmt"
	"time"

	"greengpu/internal/telemetry"
)

// metricRetries counts re-issued storage operations across every
// RetryPolicy user (journal appends, cache stores).
var metricRetries = telemetry.NewCounter("greengpu_iofault_retries_total",
	"Storage operations re-issued after a transient failure (bounded backoff).")

// RetryPolicy is the bounded retry/backoff helper for transient storage
// failures. It carries dvfs.GuardConfig's policy shape to the
// infrastructure layer: the backoff starts at Backoff, doubles per
// failure, and is capped at BackoffMax, with a hard attempt bound instead
// of a watchdog (storage callers surface the final error; they have no
// failsafe clock to fall back to). The zero value selects the documented
// defaults.
type RetryPolicy struct {
	// Attempts is the total number of tries, including the first.
	// Default 3.
	Attempts int
	// Backoff is the sleep before the first retry; it doubles per
	// failure. Default 1ms.
	Backoff time.Duration
	// BackoffMax caps the doubling. Default 50ms.
	BackoffMax time.Duration
	// Sleep replaces time.Sleep between attempts. Tests inject a recorder
	// here; nil means time.Sleep.
	Sleep func(time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts == 0 {
		p.Attempts = 3
	}
	if p.Backoff == 0 {
		p.Backoff = time.Millisecond
	}
	if p.BackoffMax == 0 {
		p.BackoffMax = 50 * time.Millisecond
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Validate reports the first problem with the policy, if any. Zero fields
// are valid (defaults fill them in).
func (p RetryPolicy) Validate() error {
	if p.Attempts < 0 {
		return fmt.Errorf("iofault: RetryPolicy.Attempts = %d, must be non-negative", p.Attempts)
	}
	if p.Backoff < 0 {
		return fmt.Errorf("iofault: RetryPolicy.Backoff = %v, must be non-negative", p.Backoff)
	}
	if p.BackoffMax < 0 {
		return fmt.Errorf("iofault: RetryPolicy.BackoffMax = %v, must be non-negative", p.BackoffMax)
	}
	return nil
}

// Do runs op until it succeeds or the attempt bound is exhausted,
// sleeping the doubling backoff between tries. It returns nil on the
// first success and op's last error otherwise. Callers that must undo
// partial effects between attempts (a journal rewinding a torn frame) do
// so inside op itself, before re-issuing the write.
func (p RetryPolicy) Do(op func() error) error {
	p = p.withDefaults()
	backoff := p.Backoff
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if attempt > 0 {
			metricRetries.Inc()
			p.Sleep(backoff)
			backoff *= 2
			if backoff > p.BackoffMax {
				backoff = p.BackoffMax
			}
		}
		if err = op(); err == nil {
			return nil
		}
	}
	return err
}
